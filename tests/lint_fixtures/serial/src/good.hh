#ifndef FIX_SERIAL_GOOD_HH
#define FIX_SERIAL_GOOD_HH

#include <cstdint>

#include "serial_stub.hh"

/**
 * Fully covered pair, plus one of every auto-exempt member kind:
 * static, const, and reference members never travel in the stream.
 */
class Good
{
  public:
    explicit Good(Registry &registry) : reg(registry) {}

    void serialize(Serializer &s) const
    {
        s.putU64(a);
        s.putU64(b);
        s.putBool(c);
    }

    void deserialize(Deserializer &d)
    {
        a = d.getU64();
        b = d.getU64();
        c = d.getBool();
    }

  private:
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    bool c = false;
    static constexpr int streamVersion = 3;
    const int geometry = 64;
    Registry &reg;
};

#endif // FIX_SERIAL_GOOD_HH
