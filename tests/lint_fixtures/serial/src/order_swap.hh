#ifndef FIX_SERIAL_ORDER_SWAP_HH
#define FIX_SERIAL_ORDER_SWAP_HH

#include <cstdint>

#include "serial_stub.hh"

/**
 * Every member is covered in both bodies, but deserialize reads them
 * in a different order: the restored stream lands in the wrong
 * fields without any member ever being "missing".
 */
class OrderSwap
{
  public:
    void serialize(Serializer &s) const
    {
        s.putU64(x);
        s.putU64(y);
        s.putU64(z);
    }

    void deserialize(Deserializer &d)
    {
        y = d.getU64();
        x = d.getU64();
        z = d.getU64();
    }

  private:
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::uint64_t z = 0;
};

#endif // FIX_SERIAL_ORDER_SWAP_HH
