#ifndef FIX_SERIAL_EXEMPT_HH
#define FIX_SERIAL_EXEMPT_HH

#include <cstdint>

#include "serial_stub.hh"

/**
 * Template classes are exempt wholesale: member lists depend on the
 * instantiation, so the heuristic stays out.
 */
template <typename T>
class Box
{
  public:
    void serialize(Serializer &s) const
    {
        s.putU64(count);
    }

    void deserialize(Deserializer &d)
    {
        count = d.getU64();
    }

  private:
    std::uint64_t count = 0;
    T payload{}; // uncovered on purpose; templates never fire
};

/** Pure-virtual interface declarations are exempt; overriders are
 *  checked where they define state. */
class Checkpointable
{
  public:
    virtual ~Checkpointable() = default;
    virtual void serialize(Serializer &s) const = 0;
    virtual void deserialize(Deserializer &d) = 0;

  protected:
    std::uint64_t traceTag = 0; // interface-level, never streamed
};

#endif // FIX_SERIAL_EXEMPT_HH
