#ifndef FIX_SERIAL_STUB_HH
#define FIX_SERIAL_STUB_HH

#include <cstdint>

/** Just enough codec surface for the fixture classes to look real. */
class Serializer
{
  public:
    void putU64(std::uint64_t v);
    void putBool(bool v);
};

class Deserializer
{
  public:
    std::uint64_t getU64();
    bool getBool();
};

class Registry
{
};

#endif // FIX_SERIAL_STUB_HH
