#ifndef FIX_SERIAL_SPLIT_HH
#define FIX_SERIAL_SPLIT_HH

#include <cstdint>

#include "serial_stub.hh"

/** Declares the pair here; the bodies live out of line in split.cc,
 *  so coverage must be computed across files. */
class Split
{
  public:
    void serialize(Serializer &s) const;
    void deserialize(Deserializer &d);

  private:
    std::uint64_t ticks = 0;
    std::uint64_t ops = 0;
};

/** Declares serialize only: no deserialize at all is its own
 *  finding, not a per-member one. */
class WriteOnly
{
  public:
    void serialize(Serializer &s) const
    {
        s.putU64(n);
    }

  private:
    std::uint64_t n = 0;
};

#endif // FIX_SERIAL_SPLIT_HH
