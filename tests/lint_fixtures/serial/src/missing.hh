#ifndef FIX_SERIAL_MISSING_HH
#define FIX_SERIAL_MISSING_HH

#include <cstdint>

#include "serial_stub.hh"

/** One member the writer forgot: read on resume, never written. */
class MissingWrite
{
  public:
    void serialize(Serializer &s) const
    {
        s.putU64(kept);
    }

    void deserialize(Deserializer &d)
    {
        kept = d.getU64();
        dropped = d.getU64();
    }

  private:
    std::uint64_t kept = 0;
    std::uint64_t dropped = 0;
};

/** One member the reader forgot: written, never restored. */
class MissingRead
{
  public:
    void serialize(Serializer &s) const
    {
        s.putU64(kept);
        s.putU64(ghostRead);
    }

    void deserialize(Deserializer &d)
    {
        kept = d.getU64();
    }

  private:
    std::uint64_t kept = 0;
    std::uint64_t ghostRead = 0;
};

#endif // FIX_SERIAL_MISSING_HH
