#ifndef FIX_SERIAL_SKIPPED_HH
#define FIX_SERIAL_SKIPPED_HH

#include <cstdint>

#include "serial_stub.hh"

/**
 * A deliberate gap covered by the manifest: 'skip Skipped::cacheOnly'
 * in rules.txt keeps the derived cache out of the stream without any
 * inline suppression.
 */
class Skipped
{
  public:
    void serialize(Serializer &s) const
    {
        s.putU64(value);
    }

    void deserialize(Deserializer &d)
    {
        value = d.getU64();
    }

  private:
    std::uint64_t value = 0;
    std::uint64_t cacheOnly = 0; // rebuilt lazily from value
};

#endif // FIX_SERIAL_SKIPPED_HH
