#include "split.hh"

void
Split::serialize(Serializer &s) const
{
    s.putU64(ticks);
    s.putU64(ops);
}

void
Split::deserialize(Deserializer &d)
{
    ticks = d.getU64();
    ops = d.getU64();
}
