// Golden-drift fixture: an embedded JSONL golden referencing one
// event that exists (known_event) and one that does not
// (stale_event). The stat-contract builtin scans raw test text for
// "ev" keys, so the stale name below must be reported.

const char *golden =
    "{\"ev\":\"known_event\",\"inst\":100}\n"
    "{\"ev\":\"stale_event\",\"inst\":200}\n";
