// Event-contract fixture: the code knows known_event and
// undocumented_event; docs/contract.md lists known_event and a
// ghost_event that no longer exists.

enum class TraceEventType
{
    Known,
    Undocumented,
};

const char *
toString(TraceEventType t)
{
    switch (t) {
      case TraceEventType::Known:
        return "known_event";
      case TraceEventType::Undocumented:
        return "undocumented_event";
    }
    return "?";
}
