// include-hygiene fixture: primary header of inc_self.cc. The .cc
// uses nothing declared here, but a primary header is exempt from the
// unused-include check by convention.

#ifndef FIXTURE_INC_SELF_HH
#define FIXTURE_INC_SELF_HH

struct SelfOnly
{
    int x = 0;
};

#endif
