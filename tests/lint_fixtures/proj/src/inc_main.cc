// include-hygiene fixtures, consumer side:
//  - inc_used.hh: Widget is used below — must NOT fire;
//  - inc_unused.hh: Gadget appears only in this comment and in the
//    string literal below, which the stripped views hide — the
//    include MUST be reported as unused;
//  - inc_umbrella.hh: Umbrella is used (include is fine), but Cog is
//    declared only by the transitively reached inc_indirect.hh — a
//    missing-direct-include finding MUST fire for it;
//  - Twin is declared by two headers (inc_indirect.hh, inc_twin.hh),
//    so its transitive use below must NOT fire.

#include "inc_umbrella.hh"
#include "inc_unused.hh"
#include "inc_used.hh"

const char *kBanner = "no Gadget here";

int
assemble(const Widget &w, const Umbrella &u)
{
    Cog c;
    c.teeth = w.size + u.ribs;
    Twin t;
    t.id = c.teeth;
    return c.teeth + t.id;
}
