// nonfinite-gauge fixtures for guards living OUTSIDE the addGauge
// closure: the denominator is a helper call, and whether the helper's
// own body guards against zero decides the verdict.
//
// docs/contract.md documents app.helper_rate and app.helper_safe_rate.

struct Agg
{
    double sum = 0;
    double n = 0;

    // Unguarded helper: dividing by this can still be zero.
    double total() const { return n; }

    // Guarded member predicate: never returns zero.
    double safeTotal() const { return n > 0 ? n : 1.0; }
};

template <typename Registry>
void
wireHelpers(Registry &reg, Agg &a)
{
    // True positive: the closure has no guard and total()'s body has
    // none either.
    reg.addGauge("app.helper_rate", [&a] { return a.sum / a.total(); });

    // False-positive check: the guard is in safeTotal()'s body, not
    // in the closure; this must NOT fire.
    reg.addGauge("app.helper_safe_rate",
                 [&a] { return a.sum / a.safeTotal(); });
}
