// include-hygiene fixture: reached by inc_main.cc only through
// inc_umbrella.hh. Cog is declared nowhere else, so using it without
// a direct include must be reported; Twin is also declared in
// inc_twin.hh, so its use stays ambiguous and must NOT be reported.

#ifndef FIXTURE_INC_INDIRECT_HH
#define FIXTURE_INC_INDIRECT_HH

struct Cog
{
    int teeth = 0;
};

struct Twin
{
    int id = 0;
};

#endif
