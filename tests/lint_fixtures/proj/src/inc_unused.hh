// include-hygiene fixture: nothing declared here is used by
// inc_main.cc, so its direct include there must be reported.

#ifndef FIXTURE_INC_UNUSED_HH
#define FIXTURE_INC_UNUSED_HH

struct Gadget
{
    int knobs = 0;
};

int gadgetCount(const Gadget &g);

#endif
