// Fixture for the doc-contract builtin: a JSON-document writer that
// declares its key spellings in a doc-keys region. "orphan_key" is
// deliberately missing from docs/contract.md, and the docs list a
// "ghost_key" no region here declares.

namespace fixture
{

// mct-lint:doc-keys:begin
constexpr const char *kDocKeys[] = {
    "schema",
    "rows",
    "rows[].id",
    "cells.<metric>.mean",
    "orphan_key",
};
// mct-lint:doc-keys:end

const char *
firstDocKey()
{
    return kDocKeys[0];
}

} // namespace fixture
