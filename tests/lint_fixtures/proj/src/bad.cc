// Seeded pattern-rule violations for the mct_lint engine tests.
// This tree is excluded from the real repository scan by the
// `exclude tests/lint_fixtures/**` line in tools/lint/rules.txt.

#include <chrono>
#include <cstdlib>
#include <iostream>

int
noise()
{
    return rand(); // det-libc-rand fires here
}

long
wall()
{
    return std::chrono::steady_clock::now() // det-wall-clock fires here
        .time_since_epoch()
        .count();
}

void
report(long v)
{
    std::cout << "value " << v << "\n"; // io-raw-stream fires here
}

// None of the following may fire: rand() and steady_clock::now() in a
// comment, and banned tokens inside a string literal.
const char *decoy = "call rand() or std::cerr, nothing happens";
