// include-hygiene fixture: second declarer of Twin. Its existence
// makes Twin ambiguous, disqualifying it from missing-direct-include
// findings.

#ifndef FIXTURE_INC_TWIN_HH
#define FIXTURE_INC_TWIN_HH

struct Twin;

#endif
