// include-hygiene fixture: includes its primary header without using
// any name from it — must NOT be reported (self-include exemption).

#include "inc_self.hh"

int
standalone()
{
    return 7;
}
