// Allowlisted by the det-wall-clock rule in the fixture rules.txt:
// the clock below must NOT be reported.

#include <chrono>

long
sanctionedWall()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
