// Stat-contract and nonfinite-gauge fixtures. docs/contract.md
// documents app.documented, app.rate, app.safe_rate, and a ghost
// stat app.ghost that no code registers.

#include <cstdint>

struct Counters
{
    std::uint64_t documented = 0;
    std::uint64_t undocumented = 0;
    double sum = 0;
    double count = 0;
};

template <typename Registry>
void
wire(Registry &reg, Counters &c)
{
    reg.addCounter("app.documented", &c.documented);

    // Drift: registered but absent from docs/contract.md.
    reg.addCounter("app.undocumented", &c.undocumented);

    // Duplicate literal registration.
    reg.addCounter("app.documented", &c.documented);

    // Unguarded division: count can be zero at snapshot time.
    reg.addGauge("app.rate", [&c] { return c.sum / c.count; });

    // Guarded division: must NOT fire.
    reg.addGauge("app.safe_rate",
                 [&c] { return c.count > 0 ? c.sum / c.count : 0.0; });
}
