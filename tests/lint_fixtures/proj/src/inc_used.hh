// include-hygiene fixture: a header whose declared name IS used by
// the includer (inc_main.cc) — must never be reported as unused.

#ifndef FIXTURE_INC_USED_HH
#define FIXTURE_INC_USED_HH

struct Widget
{
    int size = 0;
};

#endif
