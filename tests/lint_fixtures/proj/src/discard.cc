// Discarded-result fixture: one bare call to parseThing (must fire)
// and one call whose result is consumed (must not fire).

struct [[nodiscard]] ParseResult
{
    bool ok = false;
};

ParseResult parseThing(const char *text);
void consume(const ParseResult &r);

void
caller(const char *text)
{
    parseThing(text); // discarded-result fires here

    const ParseResult r = parseThing(text);
    consume(r);
}
