// include-hygiene fixture: an umbrella header that re-exports
// inc_indirect.hh. Directly included (and used) by inc_main.cc.

#ifndef FIXTURE_INC_UMBRELLA_HH
#define FIXTURE_INC_UMBRELLA_HH

#include "inc_indirect.hh"

struct Umbrella
{
    int ribs = 0;
};

#endif
