/**
 * @file
 * Unit tests for the core timing model: exact run lengths, IPC
 * bounds, the bounded-MLP stall model, dependent-load serialization,
 * writeback backpressure, and eager-candidate pumping.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.hh"

namespace mct
{
namespace
{

/** A rig wiring one core to a private hierarchy and controller. */
struct CpuRig
{
    NvmDevice dev;
    MemController ctrl;
    CacheHierarchy hier;
    CompletionRouter router;
    std::unique_ptr<Workload> wl;
    std::unique_ptr<Core> core;

    explicit CpuRig(std::unique_ptr<Workload> workload,
                    const MellowConfig &cfg = defaultConfig(),
                    const CoreParams &cp = CoreParams{})
        : dev(NvmParams{}), ctrl(dev, MemCtrlParams{}, cfg),
          hier(HierarchyParams{}), router(ctrl), wl(std::move(workload))
    {
        core = std::make_unique<Core>(0, cp, *wl, hier, ctrl, router);
    }
};

std::unique_ptr<Workload>
mk(const PatternSpec &pt, unsigned mlp = 8, std::uint64_t seed = 3)
{
    WorkloadTraits tr{"test", mlp};
    return std::make_unique<PatternWorkload>(
        tr, std::vector<PhaseSpec>{{100000000, pt}}, seed);
}

PatternSpec
lightSpec()
{
    PatternSpec pt;
    pt.streamFrac = 1.0;
    pt.numStreams = 1;
    pt.streamBytes = 1 << 16; // fits in L1/L2: mostly cache hits
    pt.wsBytes = 1 << 16;
    pt.stride = 8;
    pt.writeFrac = 0.1;
    pt.memIntensity = 0.1;
    return pt;
}

PatternSpec
heavySpec()
{
    PatternSpec pt;
    pt.streamFrac = 0.0;
    pt.numStreams = 0;
    pt.wsBytes = 256ULL << 20; // far beyond the LLC
    pt.writeFrac = 0.3;
    pt.memIntensity = 0.3;
    pt.depProb = 0.0;
    return pt;
}

TEST(Core, RunsAtLeastRequestedInstructions)
{
    CpuRig rig(mk(lightSpec()));
    rig.core->run(50000);
    EXPECT_GE(rig.core->retired(), 50000u);
    // Exactness: overshoot bounded by one memory instruction.
    EXPECT_LE(rig.core->retired(), 50001u);
}

TEST(Core, TimeAdvancesMonotonically)
{
    CpuRig rig(mk(lightSpec()));
    Tick last = 0;
    for (int i = 0; i < 20; ++i) {
        rig.core->run(1000);
        EXPECT_GE(rig.core->now(), last);
        last = rig.core->now();
    }
    EXPECT_GT(last, 0u);
}

TEST(Core, CacheResidentWorkloadNearIssueWidth)
{
    CpuRig rig(mk(lightSpec()));
    rig.core->run(200000);
    // Nearly all hits: IPC should approach the 8-wide issue limit.
    EXPECT_GT(rig.core->ipc(), 3.0);
    EXPECT_LE(rig.core->ipc(), 8.0);
}

TEST(Core, MemoryBoundWorkloadFarBelowIssueWidth)
{
    CpuRig rig(mk(heavySpec()));
    rig.core->run(200000);
    EXPECT_LT(rig.core->ipc(), 1.5);
    EXPECT_GT(rig.core->stats().memReads, 1000u);
}

TEST(Core, DependentLoadsHurtIpc)
{
    PatternSpec dep = heavySpec();
    dep.depProb = 1.0;
    CpuRig parallel(mk(heavySpec(), 16));
    CpuRig serial(mk(dep, 16, 3));
    parallel.core->run(150000);
    serial.core->run(150000);
    EXPECT_LT(serial.core->ipc(), 0.6 * parallel.core->ipc());
}

TEST(Core, HigherMlpHelpsBandwidthBoundCode)
{
    CpuRig narrow(mk(heavySpec(), 2));
    CpuRig wide(mk(heavySpec(), 24));
    narrow.core->run(150000);
    wide.core->run(150000);
    EXPECT_GT(wide.core->ipc(), 1.2 * narrow.core->ipc());
}

TEST(Core, SlowWritesReduceIpcUnderWritePressure)
{
    PatternSpec pt = heavySpec();
    pt.writeFrac = 0.5;
    MellowConfig slow;
    slow.fastLatency = 4.0;
    CpuRig fast(mk(pt));
    CpuRig slowed(mk(pt), slow);
    fast.core->run(150000);
    slowed.core->run(150000);
    EXPECT_GT(fast.core->ipc(), slowed.core->ipc());
}

TEST(Core, WritebacksReachController)
{
    PatternSpec pt = heavySpec();
    pt.writeFrac = 0.5;
    CpuRig rig(mk(pt));
    rig.core->run(200000);
    EXPECT_GT(rig.core->stats().memWrites, 500u);
    rig.ctrl.advance(rig.ctrl.nextEventTick());
    EXPECT_GT(rig.ctrl.stats().writesCompleted, 0u);
}

TEST(Core, EagerCandidatesPumpedWhenEnabled)
{
    PatternSpec pt = heavySpec();
    pt.writeFrac = 0.5;
    pt.wsBytes = 8ULL << 20; // some LLC residency for dirty lines
    pt.reuseFrac = 0.5;
    pt.hotBytes = 1 << 20;
    MellowConfig cfg;
    cfg.eagerWritebacks = true;
    cfg.eagerThreshold = 4;
    cfg.fastLatency = 1.0;
    cfg.slowLatency = 2.0;
    CpuRig rig(mk(pt), cfg);
    rig.core->run(400000);
    EXPECT_GT(rig.core->stats().eagerSubmitted, 0u);
}

TEST(Core, NoEagerTrafficWhenDisabled)
{
    PatternSpec pt = heavySpec();
    pt.writeFrac = 0.5;
    CpuRig rig(mk(pt)); // default config: eager off
    rig.core->run(200000);
    EXPECT_EQ(rig.core->stats().eagerSubmitted, 0u);
}

TEST(Core, DeterministicAcrossRuns)
{
    CpuRig a(mk(heavySpec(), 8, 42));
    CpuRig b(mk(heavySpec(), 8, 42));
    a.core->run(100000);
    b.core->run(100000);
    EXPECT_EQ(a.core->now(), b.core->now());
    EXPECT_EQ(a.core->stats().memReads, b.core->stats().memReads);
    EXPECT_EQ(a.ctrl.stats().writesCompleted,
              b.ctrl.stats().writesCompleted);
}

TEST(Core, StatsDeltaWindows)
{
    CpuRig rig(mk(heavySpec()));
    rig.core->run(50000);
    const CoreStats snap = rig.core->stats();
    rig.core->run(50000);
    const CoreStats d = rig.core->stats().delta(snap);
    EXPECT_GE(d.instructions, 50000u);
    EXPECT_LE(d.instructions, 50001u);
    EXPECT_GT(d.memOps, 0u);
}

TEST(Router, RoutesByCoreIdBits)
{
    // Two cores share one controller; completions must go home.
    NvmDevice dev{NvmParams{}};
    MemController ctrl(dev, MemCtrlParams{}, defaultConfig());
    CompletionRouter router(ctrl);
    CacheHierarchy h0{HierarchyParams{}}, h1{HierarchyParams{}};
    auto w0 = mk(heavySpec(), 8, 1), w1 = mk(heavySpec(), 8, 2);
    Core c0(0, CoreParams{}, *w0, h0, ctrl, router);
    Core c1(1, CoreParams{}, *w1, h1, ctrl, router);
    c0.run(20000);
    c1.run(20000);
    EXPECT_GT(c0.stats().memReads, 0u);
    EXPECT_GT(c1.stats().memReads, 0u);
    // If completions crossed cores, the waits would deadlock before
    // reaching this point; additionally both clocks moved.
    EXPECT_GT(c0.now(), 0u);
    EXPECT_GT(c1.now(), 0u);
}

} // namespace
} // namespace mct
