/**
 * @file
 * Unit tests for the NVM device model: geometry, address decoding,
 * the write-latency-vs-endurance law, wear bookkeeping, and lifetime
 * computation under the cyclic-execution assumption.
 */

#include <gtest/gtest.h>

#include <set>

#include "nvm/device.hh"

namespace mct
{
namespace
{

TEST(NvmParams, Table9Defaults)
{
    NvmParams p;
    EXPECT_EQ(p.numBanks, 16u);
    EXPECT_EQ(p.capacityBytes, 4ULL << 30);
    EXPECT_EQ(p.rowBytes, 1024u);
    EXPECT_EQ(p.tRCD, 120 * tickNs);
    EXPECT_EQ(p.tCAS, Tick{2500});
    EXPECT_EQ(p.tWPBase, 150 * tickNs);
    EXPECT_DOUBLE_EQ(p.enduranceBase, 8e6);
    EXPECT_DOUBLE_EQ(p.wearLevelEff, 0.95);
    EXPECT_NO_FATAL_FAILURE(p.validate());
}

TEST(NvmParams, DerivedGeometry)
{
    NvmParams p;
    EXPECT_EQ(p.linesPerRow(), 16u);                  // 1 KB / 64 B
    EXPECT_EQ(p.linesPerBank(), (4ULL << 30) / 64 / 16);
    EXPECT_EQ(p.rowsPerBank(), p.linesPerBank() / 16);
}

TEST(NvmParams, WritePulseScalesLinearly)
{
    NvmParams p;
    EXPECT_EQ(p.writePulse(1.0), 150 * tickNs);
    EXPECT_EQ(p.writePulse(2.0), 300 * tickNs);
    EXPECT_EQ(p.writePulse(4.0), 600 * tickNs);
}

TEST(NvmParams, WearQuadraticInRatio)
{
    // Endurance = 8e6 r^2, so normalized wear per write is 1/r^2.
    EXPECT_DOUBLE_EQ(NvmParams::wearOfWrite(1.0), 1.0);
    EXPECT_DOUBLE_EQ(NvmParams::wearOfWrite(2.0), 0.25);
    EXPECT_DOUBLE_EQ(NvmParams::wearOfWrite(4.0), 0.0625);
}

TEST(NvmParams, BankWearCapacityIncludesLeveling)
{
    NvmParams p;
    EXPECT_DOUBLE_EQ(p.bankWearCapacity(),
                     static_cast<double>(p.linesPerBank()) * 8e6 * 0.95);
}

class DecodeTest : public ::testing::TestWithParam<Addr>
{
};

TEST_P(DecodeTest, RoundTripWithinGeometry)
{
    NvmDevice dev(NvmParams{});
    const NvmLocation loc = dev.decode(GetParam());
    EXPECT_LT(loc.bank, 16u);
    EXPECT_LT(loc.lineInRow, 16u);
    EXPECT_LT(loc.row, dev.params().rowsPerBank());
}

INSTANTIATE_TEST_SUITE_P(Addresses, DecodeTest,
                         ::testing::Values(0ull, 64ull, 1024ull,
                                           4096ull, 1ull << 20,
                                           (4ull << 30) - 64,
                                           (4ull << 30) + 128,
                                           0xdeadbeefc0ull));

TEST(NvmDevice, ConsecutiveLinesShareRowThenSwitchBank)
{
    NvmDevice dev{NvmParams{}};
    // Lines 0..15 live in the same row of the same bank (stream
    // locality); line 16 moves to the next bank (wear spreading).
    const NvmLocation first = dev.decode(0);
    for (unsigned i = 1; i < 16; ++i) {
        const NvmLocation loc = dev.decode(i * 64ull);
        EXPECT_EQ(loc.bank, first.bank);
        EXPECT_EQ(loc.row, first.row);
        EXPECT_EQ(loc.lineInRow, i);
    }
    const NvmLocation next = dev.decode(16 * 64ull);
    EXPECT_EQ(next.bank, (first.bank + 1) % 16);
}

TEST(NvmDevice, SequentialRowsCoverAllBanks)
{
    NvmDevice dev{NvmParams{}};
    std::set<unsigned> banks;
    for (unsigned r = 0; r < 16; ++r)
        banks.insert(dev.decode(r * 1024ull).bank);
    EXPECT_EQ(banks.size(), 16u);
}

TEST(NvmDevice, AddressesWrapAtCapacity)
{
    NvmDevice dev{NvmParams{}};
    const NvmLocation a = dev.decode(64);
    const NvmLocation b = dev.decode((4ULL << 30) + 64);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.lineInRow, b.lineInRow);
}

TEST(NvmDevice, WearAccumulatesAndTotals)
{
    NvmDevice dev{NvmParams{}};
    dev.addWear(0, 0, 1.5);
    dev.addWear(0, 0, 0.5);
    dev.addWear(3, 0, 4.0);
    EXPECT_DOUBLE_EQ(dev.bank(0).wear, 2.0);
    EXPECT_DOUBLE_EQ(dev.bank(3).wear, 4.0);
    EXPECT_DOUBLE_EQ(dev.totalWear(), 6.0);
    EXPECT_DOUBLE_EQ(dev.maxBankWear(), 4.0);
}

TEST(NvmDevice, LifetimeUsesWorstBank)
{
    NvmParams p;
    NvmDevice dev(p);
    // One bank wears twice as fast: lifetime halves. Wear values are
    // large enough to stay below the 1000-year reporting cap.
    dev.addWear(0, 0, 1e7);
    const double l1 = dev.lifetimeYears(tickSec);
    dev.reset();
    dev.addWear(0, 0, 2e7);
    const double l2 = dev.lifetimeYears(tickSec);
    EXPECT_NEAR(l1 / l2, 2.0, 1e-9);
}

TEST(NvmDevice, LifetimeFormula)
{
    NvmParams p;
    NvmDevice dev(p);
    dev.addWear(5, 0, 1e6); // 1e6 fast-equivalent writes in one second
    const double expect =
        p.bankWearCapacity() / 1e6 / secondsPerYear;
    EXPECT_NEAR(dev.lifetimeYears(tickSec), expect, expect * 1e-9);
}

TEST(NvmDevice, NoWearMeansMaxLifetime)
{
    NvmDevice dev{NvmParams{}};
    EXPECT_DOUBLE_EQ(dev.lifetimeYears(tickSec),
                     dev.params().maxLifetimeYears);
}

TEST(NvmDevice, LifetimeIsCapped)
{
    NvmDevice dev{NvmParams{}};
    dev.addWear(0, 0, 1e-9);
    EXPECT_DOUBLE_EQ(dev.lifetimeYears(tickSec),
                     dev.params().maxLifetimeYears);
}

TEST(NvmDevice, ResetClearsWearAndState)
{
    NvmDevice dev{NvmParams{}};
    dev.addWear(2, 0, 5.0);
    dev.bank(2).openRow = 7;
    dev.reset();
    EXPECT_DOUBLE_EQ(dev.totalWear(), 0.0);
    EXPECT_EQ(dev.bank(2).openRow, -1);
}

TEST(NvmDevice, SlowerWritesExtendLifetimeQuadratically)
{
    // Same write count at 2x latency must yield 4x lifetime.
    NvmParams p;
    NvmDevice fast(p), slow(p);
    for (int i = 0; i < 100; ++i) {
        fast.addWear(0, 0, 1e5 * NvmParams::wearOfWrite(1.0));
        slow.addWear(0, 0, 1e5 * NvmParams::wearOfWrite(2.0));
    }
    const double lf = fast.lifetimeYears(tickSec);
    const double ls = slow.lifetimeYears(tickSec);
    EXPECT_NEAR(ls / lf, 4.0, 1e-9);
}

TEST(Bank, QuiesceKeepsWear)
{
    Bank b;
    b.wear = 3.0;
    b.writing = true;
    b.openRow = 12;
    b.quiesce();
    EXPECT_FALSE(b.writing);
    EXPECT_EQ(b.openRow, -1);
    EXPECT_DOUBLE_EQ(b.wear, 3.0);
}

} // namespace
} // namespace mct
