/**
 * @file
 * Unit tests for the common utilities: statistics accumulators, the
 * sliding window behind the phase detector, Welch's t score, the
 * deterministic RNG, table formatting, and CSV round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace mct
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, ResetClearsEverything)
{
    RunningStat s;
    s.push(1.0);
    s.push(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStat, SingleSampleVarianceIsZero)
{
    RunningStat s;
    s.push(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SlidingWindow, EvictsOldestWhenFull)
{
    SlidingWindow w(3);
    w.push(1.0);
    w.push(2.0);
    w.push(3.0);
    EXPECT_TRUE(w.full());
    EXPECT_DOUBLE_EQ(w.mean(), 2.0);
    w.push(10.0); // evicts 1.0
    EXPECT_DOUBLE_EQ(w.mean(), 5.0);
    EXPECT_EQ(w.size(), 3u);
}

TEST(SlidingWindow, RecentMeanAndVariance)
{
    SlidingWindow w(10);
    for (double v : {1.0, 1.0, 1.0, 5.0, 5.0})
        w.push(v);
    EXPECT_DOUBLE_EQ(w.recentMean(2), 5.0);
    EXPECT_DOUBLE_EQ(w.recentVariance(2), 0.0);
    EXPECT_NEAR(w.recentMean(5), 13.0 / 5.0, 1e-12);
}

TEST(SlidingWindow, VarianceMatchesDirectComputation)
{
    SlidingWindow w(100);
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 50; ++i) {
        const double v = rng.uniform(0, 10);
        xs.push_back(v);
        w.push(v);
    }
    double mu = 0.0;
    for (double v : xs)
        mu += v;
    mu /= xs.size();
    double ss = 0.0;
    for (double v : xs)
        ss += (v - mu) * (v - mu);
    EXPECT_NEAR(w.variance(), ss / (xs.size() - 1), 1e-9);
}

TEST(SlidingWindow, ClearResets)
{
    SlidingWindow w(4);
    w.push(3.0);
    w.clear();
    EXPECT_EQ(w.size(), 0u);
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(Stats, GeomeanOfEqualValues)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Stats, GeomeanKnownValue)
{
    EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
}

TEST(Stats, GeomeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(WelchT, IdenticalSamplesScoreZero)
{
    EXPECT_DOUBLE_EQ(welchTScore(5.0, 1.0, 10, 5.0, 1.0, 100), 0.0);
}

TEST(WelchT, LargerShiftLargerScore)
{
    const double s1 = welchTScore(5.0, 1.0, 10, 6.0, 1.0, 100);
    const double s2 = welchTScore(5.0, 1.0, 10, 9.0, 1.0, 100);
    EXPECT_GT(s2, s1);
    EXPECT_GT(s1, 0.0);
}

TEST(WelchT, ZeroVarianceDifferentMeansSaturates)
{
    EXPECT_GT(welchTScore(1.0, 0.0, 10, 2.0, 0.0, 10), 1e6);
}

TEST(WelchT, EmptySampleScoresZero)
{
    EXPECT_DOUBLE_EQ(welchTScore(1.0, 1.0, 0, 2.0, 1.0, 10), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        sawLo |= v == 3;
        sawHi |= v == 5;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(13);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.push(rng.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.05);
    EXPECT_NEAR(s.variance(), 1.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.push(rng.exponential(4.0));
    EXPECT_NEAR(s.mean(), 4.0, 0.2);
}

TEST(Rng, FlipProbability)
{
    Rng rng(19);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.flip(0.25);
    EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"xxxxx", "y"});
    t.row({"1", "2"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("bbbb"), std::string::npos);
    EXPECT_NE(out.find("xxxxx"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, FmtHelpers)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmtBool(true), "True");
    EXPECT_EQ(fmtBool(false), "False");
    EXPECT_EQ(fmtOrNa(false, 3.5), "N/A");
    EXPECT_EQ(fmtOrNa(true, 3.5, 1), "3.5");
}

TEST(Csv, RoundTrip)
{
    CsvFile out;
    out.row({"app", "key", "1.5"});
    out.numericRow({1.0, 2.5, 3.25});
    const std::string path = "/tmp/mct_test_csv.csv";
    ASSERT_TRUE(out.save(path));

    CsvFile in;
    ASSERT_TRUE(in.load(path));
    ASSERT_EQ(in.data().size(), 2u);
    EXPECT_EQ(in.data()[0][0], "app");
    EXPECT_DOUBLE_EQ(CsvFile::asDouble(in.data()[1][1]), 2.5);
    std::remove(path.c_str());
}

TEST(Csv, LoadMissingFileFails)
{
    CsvFile in;
    EXPECT_FALSE(in.load("/tmp/definitely_missing_mct_file.csv"));
}

TEST(Csv, QuotedCellsRoundTrip)
{
    CsvFile out;
    out.row({"plain", "with,comma", "with \"quotes\""});
    out.row({"multi\nline", "", "trailing space "});
    out.row({"crlf\r\ncell", "comma,and\nnewline", "\"\""});
    const std::string path = "/tmp/mct_test_csv_quoted.csv";
    ASSERT_TRUE(out.save(path));

    CsvFile in;
    ASSERT_TRUE(in.load(path));
    ASSERT_EQ(in.data().size(), out.data().size());
    for (std::size_t r = 0; r < out.data().size(); ++r) {
        ASSERT_EQ(in.data()[r].size(), out.data()[r].size())
            << "row " << r;
        for (std::size_t c = 0; c < out.data()[r].size(); ++c)
            EXPECT_EQ(in.data()[r][c], out.data()[r][c])
                << "row " << r << " col " << c;
    }
    std::remove(path.c_str());
}

TEST(Csv, QuotedFieldsOnDiskParse)
{
    const std::string path = "/tmp/mct_test_csv_ondisk.csv";
    {
        std::ofstream os(path);
        os << "a,\"b,c\",\"say \"\"hi\"\"\"\n";
        os << "\"line\nbreak\",d\n";
    }
    CsvFile in;
    ASSERT_TRUE(in.load(path));
    ASSERT_EQ(in.data().size(), 2u);
    ASSERT_EQ(in.data()[0].size(), 3u);
    EXPECT_EQ(in.data()[0][1], "b,c");
    EXPECT_EQ(in.data()[0][2], "say \"hi\"");
    ASSERT_EQ(in.data()[1].size(), 2u);
    EXPECT_EQ(in.data()[1][0], "line\nbreak");
    std::remove(path.c_str());
}

TEST(Types, UnitRelations)
{
    EXPECT_EQ(tickSec, 1000 * tickMs);
    EXPECT_EQ(tickMs, 1000 * tickUs);
    EXPECT_EQ(tickUs, 1000 * tickNs);
    // 2 GHz CPU, 400 MHz memory.
    EXPECT_EQ(tickSec / cpuCyclePs, 2000000000ull);
    EXPECT_EQ(tickSec / memCyclePs, 400000000ull);
}

} // namespace
} // namespace mct
