/**
 * @file
 * Tests for the system layer: window metrics, configuration
 * switching, the evaluator, the sweep cache, the energy model, and
 * the multi-core system.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include <sstream>

#include "sim/multicore.hh"
#include "sim/stats_report.hh"
#include "sim/sweep_cache.hh"
#include "workloads/mixes.hh"

namespace mct
{
namespace
{

TEST(EnergyModel, ComponentsAddUp)
{
    EnergyParams ep;
    EnergyModel em(ep);
    // 1 ms, 1M instructions, 1000 reads, 100 fast-write units.
    const double e = em.energyJ(tickMs, 1000000, 1000, 100.0, 1);
    const double expect = 1e-3 * (ep.coreStaticW + ep.memStaticW) +
                          1e6 * ep.corePerInstJ + 1000 * ep.readJ +
                          100.0 * ep.writeBaseJ;
    EXPECT_NEAR(e, expect, expect * 1e-12);
}

TEST(EnergyModel, MoreCoresMoreStatic)
{
    EnergyModel em{EnergyParams{}};
    EXPECT_GT(em.energyJ(tickSec, 0, 0, 0.0, 4),
              em.energyJ(tickSec, 0, 0, 0.0, 1));
}

TEST(System, MetricsWindowBasics)
{
    SystemParams sp;
    System sys("stream", sp, defaultConfig());
    sys.run(100000);
    const SysSnapshot s0 = sys.snapshot();
    sys.run(200000);
    const Metrics m = sys.metricsSince(s0);
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_LE(m.ipc, 8.0);
    EXPECT_GT(m.energyJ, 0.0);
    EXPECT_GT(m.lifetimeYears, 0.0);
    EXPECT_LE(m.lifetimeYears, sp.nvm.maxLifetimeYears);
}

TEST(System, EnergyMetricIsIntensive)
{
    // Energy per million instructions should not scale with window
    // length (within noise).
    SystemParams sp;
    System sys("bwaves", sp, defaultConfig());
    sys.run(200000);
    const SysSnapshot s0 = sys.snapshot();
    sys.run(300000);
    const SysSnapshot s1 = sys.snapshot();
    sys.run(600000);
    const Metrics shortW = sys.metricsBetween(s0, s1);
    const Metrics longW = sys.metricsSince(s1);
    EXPECT_NEAR(shortW.energyJ / longW.energyJ, 1.0, 0.25);
}

TEST(System, ConfigSwitchIsLive)
{
    SystemParams sp;
    System sys("lbm", sp, defaultConfig());
    sys.run(400000);
    EXPECT_EQ(sys.config(), defaultConfig());
    sys.setConfig(staticBaselineConfig());
    EXPECT_EQ(sys.config(), staticBaselineConfig());
    sys.run(400000);
    EXPECT_GT(sys.controller().stats().slowWrites +
                  sys.controller().stats().eagerWrites,
              0u);
}

TEST(System, DeterministicForSeed)
{
    SystemParams sp;
    sp.seed = 77;
    System a("milc", sp, defaultConfig());
    System b("milc", sp, defaultConfig());
    a.run(150000);
    b.run(150000);
    EXPECT_EQ(a.now(), b.now());
    EXPECT_DOUBLE_EQ(a.device().totalWear(), b.device().totalWear());
}

TEST(Evaluator, SlowestWritesExtendLifetime)
{
    EvalParams ep;
    ep.warmupInsts = 300000;
    ep.measureInsts = 800000;
    MellowConfig fast; // 1.0x
    MellowConfig slow;
    slow.fastLatency = 4.0;
    const Metrics mf = evaluateConfig("stream", fast, ep);
    const Metrics ms = evaluateConfig("stream", slow, ep);
    EXPECT_GT(ms.lifetimeYears, 3.0 * mf.lifetimeYears);
    EXPECT_LT(ms.ipc, mf.ipc);
}

TEST(Evaluator, WearQuotaEnforcesFloorOnWriteHeavyApp)
{
    EvalParams ep;
    ep.warmupInsts = 300000;
    ep.measureInsts = 900000;
    MellowConfig cfg; // fast writes: stream fails 8 years by far
    const Metrics noQuota = evaluateConfig("stream", cfg, ep);
    ASSERT_LT(noQuota.lifetimeYears, 8.0);
    cfg.wearQuota = true;
    cfg.wearQuotaTarget = 8.0;
    const Metrics quota = evaluateConfig("stream", cfg, ep);
    // Quota converges to the budget rate from above; within a short
    // window the initial unrestricted slice still dilutes it.
    EXPECT_GT(quota.lifetimeYears, 0.5 * 8.0);
    EXPECT_GT(quota.lifetimeYears, 2.0 * noQuota.lifetimeYears);
}

TEST(Evaluator, CancellationCostsLifetime)
{
    EvalParams ep;
    ep.warmupInsts = 100000;
    ep.measureInsts = 400000;
    MellowConfig noCancel;
    noCancel.bankAware = true;
    noCancel.bankAwareThreshold = 4;
    noCancel.fastLatency = 1.0;
    noCancel.slowLatency = 4.0;
    MellowConfig cancel = noCancel;
    cancel.slowCancellation = true;
    const Metrics a = evaluateConfig("milc", noCancel, ep);
    const Metrics b = evaluateConfig("milc", cancel, ep);
    // Cancellation wastes wear => lower lifetime; buys read latency.
    EXPECT_LT(b.lifetimeYears, a.lifetimeYears);
}

TEST(SweepCache, ConfigKeyDistinguishesConfigs)
{
    EXPECT_NE(configKey(defaultConfig()),
              configKey(staticBaselineConfig()));
    MellowConfig a = staticBaselineConfig();
    MellowConfig b = a;
    b.slowLatency = 3.5;
    EXPECT_NE(configKey(a), configKey(b));
    b = a;
    b.wearQuotaTarget = 4.0;
    EXPECT_NE(configKey(a), configKey(b));
    EXPECT_EQ(configKey(a), configKey(staticBaselineConfig()));
}

TEST(SweepCache, MemoizesEvaluations)
{
    EvalParams ep;
    ep.warmupInsts = 50000;
    ep.measureInsts = 100000;
    SweepCache cache(ep, "");
    const Metrics a = cache.get("zeusmp", defaultConfig());
    EXPECT_EQ(cache.misses(), 1u);
    const Metrics b = cache.get("zeusmp", defaultConfig());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

TEST(SweepCache, PersistsAndReloads)
{
    const std::string path = "/tmp/mct_test_sweep.csv";
    std::remove(path.c_str());
    EvalParams ep;
    ep.warmupInsts = 50000;
    ep.measureInsts = 100000;
    Metrics first;
    {
        SweepCache cache(ep, path);
        first = cache.get("zeusmp", defaultConfig());
        cache.save();
    }
    SweepCache reloaded(ep, path);
    EXPECT_EQ(reloaded.size(), 1u);
    const Metrics again = reloaded.get("zeusmp", defaultConfig());
    EXPECT_EQ(reloaded.misses(), 0u);
    EXPECT_DOUBLE_EQ(again.ipc, first.ipc);
    std::remove(path.c_str());
}

TEST(MultiCore, RunsAllCores)
{
    MultiCoreParams mp;
    MultiCoreSystem sys(mixByName("mix3").apps, mp,
                        staticBaselineConfig());
    const MultiSnapshot s0 = sys.snapshot();
    sys.run(60000);
    const MultiSnapshot s1 = sys.snapshot();
    const MultiMetrics m = sys.metricsBetween(s0, s1);
    ASSERT_EQ(m.coreIpc.size(), 4u);
    for (double ipc : m.coreIpc) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LE(ipc, 8.0);
    }
    EXPECT_GT(m.geomeanIpc, 0.0);
    EXPECT_GT(m.energyJ, 0.0);
}

TEST(MultiCore, SharedMemorySeesAllCores)
{
    MultiCoreParams mp;
    MultiCoreSystem sys(mixByName("mix1").apps, mp, defaultConfig());
    sys.run(60000);
    // All four memory-intensive programs produced traffic.
    EXPECT_GT(sys.controller().stats().readsCompleted, 1000u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_GT(sys.core(i).stats().memReads, 0u);
}

TEST(MultiCore, EightGigThirtyTwoBanks)
{
    MultiCoreParams mp;
    EXPECT_EQ(mp.base.nvm.capacityBytes, 8ULL << 30);
    EXPECT_EQ(mp.base.nvm.numBanks, 32u);
    EXPECT_EQ(mp.base.caches.l3.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(mp.nCores, 4u);
}

TEST(MultiCore, CoreClocksStayClose)
{
    MultiCoreParams mp;
    MultiCoreSystem sys(mixByName("mix6").apps, mp,
                        staticBaselineConfig());
    sys.run(50000);
    // Oldest-first scheduling keeps skew within a few quanta of the
    // slowest core's progress.
    Tick lo = ~Tick{0}, hi = 0;
    for (unsigned i = 0; i < 4; ++i) {
        lo = std::min(lo, sys.core(i).now());
        hi = std::max(hi, sys.core(i).now());
    }
    EXPECT_LT(static_cast<double>(hi - lo),
              0.6 * static_cast<double>(hi));
}

/** Calibration contract per application (DESIGN.md: default fails
 *  the 8-year floor on the memory-bound apps, zeusmp passes). */
class AppCalibration
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AppCalibration, DefaultConfigCharacter)
{
    const std::string app = GetParam();
    EvalParams ep;
    ep.warmupInsts = 300000;
    ep.measureInsts = 700000;
    const Metrics m = evaluateConfig(app, defaultConfig(), ep);
    EXPECT_GT(m.ipc, 0.005);
    EXPECT_LT(m.ipc, 2.5);
    EXPECT_GT(m.energyJ, 0.0);
    if (app == "zeusmp") {
        // The one application whose default config meets the floor.
        EXPECT_GT(m.lifetimeYears, 8.0);
    } else {
        EXPECT_LT(m.lifetimeYears, 8.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppCalibration,
    ::testing::Values("lbm", "leslie3d", "zeusmp", "GemsFDTD", "milc",
                      "bwaves", "libquantum", "ocean", "gups",
                      "stream"));

TEST(StatsReport, CollectsCoherentCounters)
{
    SystemParams sp;
    System sys("milc", sp, staticBaselineConfig());
    sys.run(300000);
    const StatsReport rep = collectStats(sys);
    EXPECT_GT(rep.size(), 40u); // core + caches + ctrl + banks
    std::ostringstream os;
    rep.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core.ipc"), std::string::npos);
    EXPECT_NE(out.find("memctrl.writes_completed"),
              std::string::npos);
    EXPECT_NE(out.find("nvm.bank00.wear"), std::string::npos);
    EXPECT_NE(out.find("objective.lifetime_years"),
              std::string::npos);
}

TEST(StatsReport, BankCountersSumToControllerTotals)
{
    SystemParams sp;
    System sys("bwaves", sp, defaultConfig());
    sys.run(400000);
    std::uint64_t reads = 0, writes = 0;
    for (unsigned b = 0; b < sys.device().numBanks(); ++b) {
        reads += sys.device().bank(b).reads;
        writes += sys.device().bank(b).writes;
    }
    EXPECT_EQ(reads, sys.controller().stats().readsCompleted);
    EXPECT_EQ(writes, sys.controller().stats().writesCompleted);
}

} // namespace
} // namespace mct
