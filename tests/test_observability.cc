/**
 * @file
 * Tests for the unified instrumentation layer: StatRegistry snapshots
 * and deltas, LogHistogram bucketing, the EventTrace ring buffer and
 * its JSONL / Chrome serializations, System and MctController
 * integration, the WallProfiler, and StatsReport::print alignment.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/alerts.hh"
#include "common/instrument.hh"
#include "common/serialize.hh"
#include "mct/controller.hh"
#include "sim/stats_report.hh"
#include "sim/system.hh"

namespace mct
{
namespace
{

// --------------------------------------------------------------------
// LogHistogram
// --------------------------------------------------------------------

TEST(LogHistogram, BucketBoundaries)
{
    LogHistogram h;
    h.record(0.0);   // bucket 0
    h.record(0.5);   // bucket 0
    h.record(1.0);   // bucket 1: [1, 2)
    h.record(1.99);  // bucket 1
    h.record(2.0);   // bucket 2: [2, 4)
    h.record(1024);  // bucket 11: [1024, 2048)
    h.record(-3.0);  // negatives clamp into bucket 0

    EXPECT_EQ(h.buckets()[0], 3u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[11], 1u);
    EXPECT_EQ(h.count(), 7u);
    // The negative observation contributes 0 to the sum.
    EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 0.5 + 1.0 + 1.99 + 2.0 + 1024.0);

    EXPECT_DOUBLE_EQ(LogHistogram::bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketLow(1), 1.0);
    EXPECT_DOUBLE_EQ(LogHistogram::bucketLow(11), 1024.0);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, PercentileInterpolatesWithinBuckets)
{
    // Four observations, all in bucket 1 ([1, 2)): the rank is
    // placed uniformly within the bucket's bounds.
    LogHistogram h;
    for (int i = 0; i < 4; ++i)
        h.record(1.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 1.25);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 2.0);

    // Two buckets: two obs in bucket 0 ([0, 1)), two in bucket 2
    // ([2, 4)). p=0.25 lands mid-bucket-0, p=0.75 mid-bucket-2.
    LogHistogram g;
    g.record(0.5);
    g.record(0.5);
    g.record(2.0);
    g.record(3.0);
    EXPECT_DOUBLE_EQ(g.percentile(0.25), 0.5);
    EXPECT_DOUBLE_EQ(g.percentile(0.75), 3.0);
    EXPECT_DOUBLE_EQ(g.percentile(1.0), 4.0);

    // Monotone in p, and empty histograms read 0.
    EXPECT_LE(g.percentile(0.1), g.percentile(0.9));
    EXPECT_DOUBLE_EQ(LogHistogram{}.percentile(0.99), 0.0);
}

// --------------------------------------------------------------------
// StatRegistry
// --------------------------------------------------------------------

TEST(StatRegistry, RegistrationAndQuery)
{
    StatRegistry reg;
    std::uint64_t hits = 0;
    reg.addCounter("cache.hits", [&] { return hits; }, "cache hits");
    reg.addGauge("cache.rate", [&] { return hits * 0.5; });
    std::uint64_t &cell = reg.addCounterCell("cpu.retired");
    LogHistogram &hist = reg.addHistogram("mem.latency");

    EXPECT_EQ(reg.size(), 4u);
    EXPECT_TRUE(reg.has("cache.hits"));
    EXPECT_FALSE(reg.has("cache.misses"));
    EXPECT_EQ(reg.description("cache.hits"), "cache hits");
    EXPECT_EQ(reg.description("cache.rate"), "");

    hits = 10;
    cell = 7;
    hist.record(4.0);
    hist.record(8.0);
    EXPECT_DOUBLE_EQ(reg.value("cache.hits"), 10.0);
    EXPECT_DOUBLE_EQ(reg.value("cache.rate"), 5.0);
    EXPECT_DOUBLE_EQ(reg.value("cpu.retired"), 7.0);
    EXPECT_DOUBLE_EQ(reg.value("mem.latency"), 12.0); // the sum
    EXPECT_DOUBLE_EQ(reg.value("no.such.stat"), 0.0);
}

TEST(StatRegistry, ReRegisteringReplacesEntry)
{
    StatRegistry reg;
    reg.addCounter("x", [] { return std::uint64_t(1); });
    reg.addCounter("x", [] { return std::uint64_t(2); });
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_DOUBLE_EQ(reg.value("x"), 2.0);
}

TEST(StatRegistry, SnapshotAndDelta)
{
    StatRegistry reg;
    std::uint64_t ctr = 100;
    double level = 1.0;
    reg.addCounter("c", [&] { return ctr; });
    reg.addGauge("g", [&] { return level; });
    LogHistogram &h = reg.addHistogram("h");
    h.record(3.0);

    const StatSnapshot s0 = reg.snapshot();
    ctr = 150;
    level = 9.0;
    h.record(5.0);
    const StatSnapshot s1 = reg.snapshot();

    const StatSnapshot d = StatRegistry::delta(s0, s1);
    ASSERT_EQ(d.size(), 3u);
    // Counters and histograms subtract; gauges keep the newer value.
    EXPECT_DOUBLE_EQ(d.at("c").num, 50.0);
    EXPECT_DOUBLE_EQ(d.at("g").num, 9.0);
    EXPECT_DOUBLE_EQ(d.at("h").num, 5.0);
    EXPECT_EQ(d.at("h").count, 1u);
    // Only the second observation's bucket remains. 5.0 lands in
    // bucket 3 ([4, 8)); 3.0's bucket 2 subtracts away.
    ASSERT_EQ(d.at("h").buckets.size(), 4u);
    EXPECT_EQ(d.at("h").buckets[2], 0u);
    EXPECT_EQ(d.at("h").buckets[3], 1u);
}

TEST(StatRegistry, SnapshotJsonIsSortedAndParseable)
{
    StatRegistry reg;
    reg.addCounter("b.two", [] { return std::uint64_t(2); });
    reg.addCounter("a.one", [] { return std::uint64_t(1); });
    std::ostringstream os;
    writeSnapshotJson(os, reg.snapshot());
    EXPECT_EQ(os.str(), "{\"a.one\":1,\"b.two\":2}");
}

// --------------------------------------------------------------------
// EventTrace
// --------------------------------------------------------------------

TEST(EventTrace, DisabledRecordIsNoOp)
{
    EventTrace t;
    EXPECT_FALSE(t.enabled());
    t.record(TraceEventType::PhaseChange, 1.0);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
}

TEST(EventTrace, RingWraparound)
{
    EventTrace t;
    t.enable(4);
    for (int i = 0; i < 10; ++i)
        t.record(TraceEventType::ConfigApplied,
                 static_cast<double>(i));

    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);

    // Only the newest four events survive, oldest first.
    const auto evs = t.events();
    ASSERT_EQ(evs.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(evs[i].args[0], static_cast<double>(6 + i));

    const auto counts = t.countsByType();
    EXPECT_EQ(counts[static_cast<std::size_t>(
                  TraceEventType::ConfigApplied)],
              4u);

    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.capacity(), 4u); // capacity survives clear()
}

TEST(EventTrace, InstructionClock)
{
    EventTrace t;
    t.enable(8);
    InstCount now = 0;
    t.setClock(&now);
    t.record(TraceEventType::PhaseChange);
    now = 12345;
    t.record(TraceEventType::PhaseChange);
    const auto evs = t.events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].inst, 0u);
    EXPECT_EQ(evs[1].inst, 12345u);
}

TEST(EventTrace, JsonlGolden)
{
    EventTrace t;
    t.enable(8);
    InstCount now = 500;
    t.setClock(&now);
    t.record(TraceEventType::QuotaThrottle, 1.0, 3.0, 0.25);
    now = 900;
    t.record(TraceEventType::HealthCheckPass, 0.5, 0.4, 0.0);

    std::ostringstream os;
    t.writeJsonl(os);
    EXPECT_EQ(os.str(),
              "{\"ev\":\"quota_throttle\",\"inst\":500,"
              "\"restricted\":1,\"restricted_slices\":3,"
              "\"budget_rate\":0.25}\n"
              "{\"ev\":\"health_check_pass\",\"inst\":900,"
              "\"chosen_ipc\":0.5,\"baseline_ipc\":0.4,"
              "\"bad_checks\":0}\n");
}

TEST(EventTrace, ChromeTraceGolden)
{
    EventTrace t;
    t.enable(8);
    InstCount now = 100;
    t.setClock(&now);
    t.record(TraceEventType::SamplingRoundStart, 1.0, 77.0, 1000.0);
    now = 300;
    t.record(TraceEventType::SamplingRoundEnd, 1.0, 200.0, 0.5);

    std::ostringstream os;
    t.writeChromeTrace(os);
    EXPECT_EQ(
        os.str(),
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"sampling_round\",\"ph\":\"B\",\"ts\":100,"
        "\"pid\":0,\"tid\":0,\"args\":{\"round\":1,\"samples\":77,"
        "\"unit_insts\":1000}},"
        "{\"name\":\"sampling_round\",\"ph\":\"E\",\"ts\":300,"
        "\"pid\":0,\"tid\":0,\"args\":{\"round\":1,"
        "\"insts_used\":200,\"baseline_ipc\":0.5}}]}\n");
}

TEST(EventTrace, EveryTypeHasNameAndArgNames)
{
    for (std::size_t i = 0; i < numTraceEventTypes; ++i) {
        const auto type = static_cast<TraceEventType>(i);
        EXPECT_STRNE(toString(type), "unknown");
        for (const char *arg : traceArgNames(type))
            EXPECT_STRNE(arg, "");
    }
}

// --------------------------------------------------------------------
// System integration
// --------------------------------------------------------------------

TEST(SystemStats, ComponentsRegisterUnderDottedPaths)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    const StatRegistry &reg = sys.statRegistry();

    for (const char *path :
         {"cpu.core0.instructions", "cpu.core0.ipc",
          "cache.l1d.accesses", "cache.l2.hits", "cache.llc.hit_rate",
          "memctrl.reads_completed", "memctrl.quota.enabled",
          "nvm.total_wear", "nvm.bank00.writes", "sim.instructions",
          "sim.objective.ipc", "sim.objective.lifetime_years"}) {
        EXPECT_TRUE(reg.has(path)) << path;
    }
}

TEST(SystemStats, CountersGrowWithExecution)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    const StatSnapshot s0 = sys.statRegistry().snapshot();
    sys.run(400 * 1000);
    const StatSnapshot s1 = sys.statRegistry().snapshot();

    const StatSnapshot d = StatRegistry::delta(s0, s1);
    EXPECT_DOUBLE_EQ(d.at("cpu.core0.instructions").num,
                     400 * 1000.0);
    EXPECT_GT(d.at("cache.l1d.accesses").num, 0.0);
    EXPECT_GT(d.at("memctrl.reads_completed").num, 0.0);
    EXPECT_GT(d.at("nvm.total_wear").num, 0.0);
}

TEST(SystemStats, TraceRecordsConfigAndDrainEvents)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    sys.eventTrace().enable(1024);
    MellowConfig cfg = staticBaselineConfig();
    cfg.slowLatency = 3.0;
    sys.setConfig(cfg);
    sys.run(50 * 1000);

    const auto counts = sys.eventTrace().countsByType();
    EXPECT_GE(counts[static_cast<std::size_t>(
                  TraceEventType::ConfigApplied)],
              1u);
    // Timestamps are instruction counts: monotone and bounded by the
    // retired-instruction clock.
    for (const TraceEvent &e : sys.eventTrace().events())
        EXPECT_LE(e.inst, sys.retired());
}

TEST(SystemStats, TraceDeterministicAcrossRuns)
{
    auto run = [] {
        SystemParams sp;
        System sys("milc", sp, staticBaselineConfig());
        sys.eventTrace().enable(4096);
        sys.run(100 * 1000);
        std::ostringstream os;
        sys.eventTrace().writeJsonl(os);
        return os.str();
    };
    EXPECT_EQ(run(), run());
}

// --------------------------------------------------------------------
// SpanTrace
// --------------------------------------------------------------------

TEST(SpanTrace, SamplingGridUsesLowSequenceBits)
{
    SpanTrace t;
    EXPECT_FALSE(t.sampled(0)); // disabled: nothing samples
    t.enable(64, 1024);
    EXPECT_TRUE(t.sampled(0));
    EXPECT_TRUE(t.sampled(64));
    EXPECT_FALSE(t.sampled(65));
    // The core id in the top byte does not shift the grid.
    const std::uint64_t core1 = 1ULL << 56;
    EXPECT_TRUE(t.sampled(core1 | 128));
    EXPECT_FALSE(t.sampled(core1 | 129));
}

TEST(SpanTrace, DeterministicAcrossRuns)
{
    auto run = [] {
        SystemParams sp;
        System sys("lbm", sp, staticBaselineConfig());
        sys.enableSpans(32, 4096);
        sys.run(100 * 1000);
        std::ostringstream os;
        sys.spanTrace().writeJsonl(os);
        return os.str();
    };
    const std::string a = run();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, run());
}

TEST(SpanTrace, RingCapTruncationIsAccounted)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    sys.enableSpans(8, 16); // dense sampling, tiny ring: must wrap
    sys.run(200 * 1000);

    const SpanTrace &t = sys.spanTrace();
    ASSERT_GT(t.recorded(), 16u);
    EXPECT_EQ(t.size(), 16u);
    EXPECT_EQ(t.dropped(), t.recorded() - t.size());

    // The JSONL output holds exactly the surviving spans, and the
    // sim.spans.* gauges mirror the trace's own accounting.
    std::ostringstream os;
    t.writeJsonl(os);
    std::size_t lines = 0;
    for (char c : os.str())
        lines += c == '\n';
    EXPECT_EQ(lines, t.size());
    const StatSnapshot s = sys.statRegistry().snapshot();
    EXPECT_DOUBLE_EQ(s.at("sim.spans.recorded").num,
                     static_cast<double>(t.recorded()));
    EXPECT_DOUBLE_EQ(s.at("sim.spans.dropped").num,
                     static_cast<double>(t.dropped()));
}

TEST(SpanTrace, FeedsLatencyHistogramsAndPercentiles)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    sys.enableSpans(16, 8192);
    sys.run(200 * 1000);

    const StatSnapshot s = sys.statRegistry().snapshot();
    const StatValue &mshr = s.at("lat.mshr.ns");
    ASSERT_EQ(mshr.kind, StatKind::Histogram);
    ASSERT_GT(mshr.count, 0u);

    // Percentile gauges are positive, ordered, and bounded by the
    // histogram's top occupied bucket.
    const double p50 = s.at("lat.mshr.p50_ns").num;
    const double p90 = s.at("lat.mshr.p90_ns").num;
    const double p99 = s.at("lat.mshr.p99_ns").num;
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    ASSERT_FALSE(mshr.buckets.empty());
    EXPECT_LE(p99, LogHistogram::bucketLow(mshr.buckets.size()));
}

TEST(MctStats, ControllerRegistersAndTraces)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    sys.eventTrace().enable(64 * 1024);
    sys.run(100 * 1000);

    MctParams mp;
    MctController ctl(sys, mp);
    const StatRegistry &reg = sys.statRegistry();
    for (const char *path :
         {"mct.decisions", "mct.resamplings", "mct.health_checks",
          "mct.fallbacks", "mct.baseline.ipc",
          "mct.current.is_baseline", "mct.sampling.period_insts"}) {
        EXPECT_TRUE(reg.has(path)) << path;
    }

    ctl.runFor(1500 * 1000);
    EXPECT_DOUBLE_EQ(reg.value("mct.decisions"),
                     static_cast<double>(ctl.decisions().size()));
    EXPECT_GE(reg.value("mct.decisions"), 1.0);
    EXPECT_GT(reg.value("mct.sampling.insts"), 0.0);

    const auto counts = sys.eventTrace().countsByType();
    const auto n = [&](TraceEventType t) {
        return counts[static_cast<std::size_t>(t)];
    };
    EXPECT_GE(n(TraceEventType::SamplingRoundStart), 1u);
    EXPECT_GE(n(TraceEventType::SamplingRoundEnd), 1u);
    EXPECT_GE(n(TraceEventType::PredictionMade), 1u);
    EXPECT_GE(n(TraceEventType::ConfigApplied), 1u);
}

// --------------------------------------------------------------------
// ProvenanceRecord / ProvenanceTrace
// --------------------------------------------------------------------

// A deterministic, fully-populated record for serialization tests.
ProvenanceRecord
sampleProvenanceRecord()
{
    ProvenanceRecord rec;
    rec.seq = 4;
    rec.phase = 1;
    rec.inst = 1000;
    rec.model = "gbt";
    rec.configKey = "cfgA";
    rec.chosen = 7;
    rec.sampledConfigs = 77;
    rec.minLifetimeYears = 8;
    rec.ipcFraction = 0.95;
    rec.safetyMargin = 1.25;
    rec.objectives[0].predicted = 0.5;
    rec.objectives[0].uncertainty = 0.125;
    rec.objectives[1].predicted = 8;
    rec.objectives[2].predicted = 0.25;
    ProvenanceCandidate c;
    c.config = 3;
    c.ipc = 0.375;
    c.lifetimeYears = 16;
    c.energyJ = 0.5;
    c.feasible = true;
    rec.runnerUps.push_back(c);
    rec.bestSampledIpc = 0.75;
    return rec;
}

TEST(Provenance, CloseAttachesRealizedValuesAndRegret)
{
    ProvenanceRecord rec = sampleProvenanceRecord();
    EXPECT_EQ(closeProvenanceRecord(rec, 0.25, 4.0, 0.5, 2000), 0u);

    EXPECT_TRUE(rec.closed);
    EXPECT_EQ(rec.closeInst, InstCount(2000));
    EXPECT_TRUE(rec.objectives[0].errorValid);
    EXPECT_DOUBLE_EQ(rec.objectives[0].relError, 1.0); // |0.5-0.25|/0.25
    EXPECT_DOUBLE_EQ(rec.objectives[1].relError, 1.0); // |8-4|/4
    EXPECT_DOUBLE_EQ(rec.objectives[2].relError, 0.5); // |0.25-0.5|/0.5
    EXPECT_DOUBLE_EQ(rec.regret, 0.5); // bestSampledIpc 0.75 - 0.25
}

TEST(Provenance, ZeroOrNonfiniteRealizedValueInvalidatesError)
{
    ProvenanceRecord rec = sampleProvenanceRecord();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(closeProvenanceRecord(rec, 0.0, 4.0, nan, 2000), 2u);

    EXPECT_TRUE(rec.closed);
    EXPECT_FALSE(rec.objectives[0].errorValid); // realized ~ 0
    EXPECT_DOUBLE_EQ(rec.objectives[0].relError, 0.0);
    EXPECT_TRUE(rec.objectives[1].errorValid);
    EXPECT_DOUBLE_EQ(rec.objectives[1].relError, 1.0);
    EXPECT_FALSE(rec.objectives[2].errorValid); // realized non-finite
    EXPECT_DOUBLE_EQ(rec.objectives[2].relError, 0.0);
}

TEST(Provenance, JsonlGolden)
{
    ProvenanceRecord rec = sampleProvenanceRecord();
    closeProvenanceRecord(rec, 0.25, 4.0, 0.5, 2000);
    rec.cumRegret = 0.5;
    rec.attribution[0] = {0.75, 0.25};

    ProvenanceTrace t;
    t.enable(4);
    t.record(rec);

    std::ostringstream os;
    t.writeJsonl(os);
    EXPECT_EQ(
        os.str(),
        "{\"seq\":4,\"phase\":1,\"inst\":1000,\"close_inst\":2000,"
        "\"model\":\"gbt\",\"config\":\"cfgA\",\"chosen\":7,"
        "\"fallback\":false,\"sampled\":77,"
        "\"constraints\":{\"min_lifetime_years\":8,"
        "\"ipc_fraction\":0.95,\"safety_margin\":1.25},"
        "\"objectives\":{"
        "\"ipc\":{\"pred\":0.5,\"sigma\":0.125,\"real\":0.25,"
        "\"err\":1,\"err_valid\":true},"
        "\"lifetime\":{\"pred\":8,\"sigma\":0,\"real\":4,"
        "\"err\":1,\"err_valid\":true},"
        "\"energy\":{\"pred\":0.25,\"sigma\":0,\"real\":0.5,"
        "\"err\":0.5,\"err_valid\":true}},"
        "\"runner_ups\":[{\"config\":3,\"ipc\":0.375,"
        "\"lifetime_years\":16,\"energy_j\":0.5,\"feasible\":true}],"
        "\"best_sampled_ipc\":0.75,\"regret\":0.5,\"cum_regret\":0.5,"
        "\"attribution\":{\"ipc\":[0.75,0.25]},"
        "\"closed\":true}\n");
}

TEST(Provenance, ChromeTraceGolden)
{
    ProvenanceRecord rec = sampleProvenanceRecord();
    closeProvenanceRecord(rec, 0.25, 4.0, 0.5, 2000);

    ProvenanceTrace t;
    t.enable(4);
    t.record(rec);

    std::ostringstream os;
    t.writeChromeTrace(os);
    EXPECT_EQ(
        os.str(),
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":1,"
        "\"args\":{\"name\":\"provenance\"}},"
        "{\"name\":\"cfgA\",\"ph\":\"X\",\"ts\":1000,\"dur\":1000,"
        "\"pid\":2,\"tid\":1,"
        "\"args\":{\"seq\":4,\"model\":\"gbt\",\"pred_ipc\":0.5,"
        "\"real_ipc\":0.25,\"regret\":0.5}}]}\n");
}

TEST(Provenance, RingWraparoundIsAccounted)
{
    ProvenanceTrace t;
    t.enable(2);
    for (std::uint64_t i = 0; i < 3; ++i) {
        ProvenanceRecord rec = sampleProvenanceRecord();
        rec.seq = i;
        t.record(rec);
    }
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.recorded(), 3u);
    EXPECT_EQ(t.dropped(), 1u);
    const auto held = t.records();
    ASSERT_EQ(held.size(), 2u);
    EXPECT_EQ(held[0].seq, 1u); // oldest first; seq 0 overwritten
    EXPECT_EQ(held[1].seq, 2u);
}

// --------------------------------------------------------------------
// Controller audit lifecycle
// --------------------------------------------------------------------

TEST(MctAudit, TruncatedDecisionWindowCountsDropped)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    sys.run(100 * 1000);

    MctParams mp;
    MctController ctl(sys, mp);
    const StatRegistry &reg = sys.statRegistry();
    // Advance in slices small enough to stop right after the first
    // decision, before any window can realize its objectives.
    while (reg.value("mct.audit.decisions") < 1.0 &&
           sys.retired() < 20 * 1000 * 1000)
        ctl.runFor(10 * 1000);
    ASSERT_GE(reg.value("mct.audit.decisions"), 1.0);
    ASSERT_DOUBLE_EQ(reg.value("mct.audit.closed"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("mct.audit.dropped"), 0.0);

    ctl.finalizeAudit();
    EXPECT_DOUBLE_EQ(reg.value("mct.audit.dropped"), 1.0);
    ctl.finalizeAudit(); // idempotent: nothing left to drop
    EXPECT_DOUBLE_EQ(reg.value("mct.audit.dropped"), 1.0);
}

TEST(MctAudit, ProvenanceIsByteIdenticalAcrossRuns)
{
    const auto runOnce = [] {
        SystemParams sp;
        System sys("lbm", sp, staticBaselineConfig());
        sys.provenanceTrace().enable(64);
        sys.run(100 * 1000);
        MctParams mp;
        MctController ctl(sys, mp);
        ctl.runFor(3 * 1000 * 1000);
        ctl.finalizeAudit();
        std::ostringstream os;
        sys.provenanceTrace().writeJsonl(os);
        return os.str();
    };
    const std::string first = runOnce();
    const std::string second = runOnce();
    ASSERT_FALSE(first.empty()); // at least one closed record
    EXPECT_EQ(first, second);
}

// --------------------------------------------------------------------
// WallProfiler
// --------------------------------------------------------------------

TEST(WallProfiler, AccumulatesStages)
{
    WallProfiler p;
    p.begin("fit");
    p.end("fit");
    {
        WallProfiler::Scope scope(&p, "fit");
    }
    {
        WallProfiler::Scope scope(&p, "optimize");
    }

    const auto stages = p.stages();
    ASSERT_EQ(stages.size(), 2u);
    EXPECT_EQ(stages[0].name, "fit"); // first-use order
    EXPECT_EQ(stages[0].calls, 2u);
    EXPECT_EQ(stages[1].name, "optimize");
    EXPECT_GE(p.seconds("fit"), 0.0);
    EXPECT_DOUBLE_EQ(p.seconds("absent"), 0.0);

    std::ostringstream os;
    p.writeJson(os);
    EXPECT_NE(os.str().find("\"stages\":["), std::string::npos);
    EXPECT_NE(os.str().find("\"name\":\"fit\""), std::string::npos);
}

TEST(WallProfiler, NullScopeIsSafe)
{
    WallProfiler::Scope scope(nullptr, "anything");
}

// --------------------------------------------------------------------
// HostProfiler
// --------------------------------------------------------------------

/** Scripted clock: tests set wall/cpu/status directly between calls,
 *  so host-metric arithmetic is checked deterministically. */
class FakeHostClock : public HostClock
{
  public:
    std::uint64_t wall = 0; ///< returned by wallNs()
    std::uint64_t cpu = 0;  ///< returned by cpuNs()
    std::string status;     ///< returned by procStatus()

    std::uint64_t wallNs() const override { return wall; }
    std::uint64_t cpuNs() const override { return cpu; }
    std::string procStatus() const override { return status; }
};

TEST(HostProfiler, DisabledAndNullScopesAreSafe)
{
    { HostProfiler::Scope scope(nullptr, "anything"); }

    HostProfiler p; // never enabled
    { HostProfiler::Scope scope(&p, "anything"); }
    p.begin("x"); // disabled: no-op, not a panic
    p.end("x");
    p.addInstructions(1000);
    EXPECT_TRUE(p.stages().empty());
    EXPECT_DOUBLE_EQ(p.mips(), 0.0);
    EXPECT_DOUBLE_EQ(p.elapsedWallSeconds(), 0.0);
}

TEST(HostProfiler, MipsFromScriptedClock)
{
    FakeHostClock clk;
    HostProfiler p;
    p.enable(&clk);

    p.addInstructions(3'000'000);
    p.addInstructions(1'000'000);
    clk.wall = 2'000'000'000; // 2 wall seconds since enable
    clk.cpu = 1'500'000'000;  // 1.5 CPU seconds
    EXPECT_EQ(p.instructions(), 4'000'000u);
    EXPECT_DOUBLE_EQ(p.elapsedWallSeconds(), 2.0);
    EXPECT_DOUBLE_EQ(p.elapsedCpuSeconds(), 1.5);
    EXPECT_DOUBLE_EQ(p.mips(), 2.0); // 4M insts / 2 s
}

TEST(HostProfiler, StageWallAndCpuAccumulateFromScriptedClock)
{
    FakeHostClock clk;
    HostProfiler p;
    p.enable(&clk);

    clk.wall = 1'000'000'000;
    clk.cpu = 100'000'000;
    p.begin("fit");
    clk.wall = 3'000'000'000; // +2.0 s wall
    clk.cpu = 600'000'000;    // +0.5 s cpu
    p.end("fit");
    {
        HostProfiler::Scope scope(&p, "optimize");
        clk.wall += 500'000'000; // +0.5 s wall
        clk.cpu += 250'000'000;  // +0.25 s cpu
    }
    p.begin("fit"); // second call, no time passes
    p.end("fit");

    const auto stages = p.stages();
    ASSERT_EQ(stages.size(), 2u);
    EXPECT_EQ(stages[0].name, "fit"); // first-use order
    EXPECT_EQ(stages[0].calls, 2u);
    EXPECT_EQ(stages[1].name, "optimize");
    EXPECT_DOUBLE_EQ(p.wallSeconds("fit"), 2.0);
    EXPECT_DOUBLE_EQ(p.cpuSeconds("fit"), 0.5);
    EXPECT_DOUBLE_EQ(p.wallSeconds("optimize"), 0.5);
    EXPECT_DOUBLE_EQ(p.cpuSeconds("optimize"), 0.25);
    EXPECT_DOUBLE_EQ(p.wallSeconds("absent"), 0.0);
}

TEST(HostProfiler, CpuTimeIsMonotonicOnTheRealClock)
{
    HostProfiler p;
    p.enable(); // real host clock
    const double cpu0 = p.elapsedCpuSeconds();
    // Burn a little CPU so the second reading has something to see.
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i)
        sink += static_cast<double>(i) * 1e-9;
    (void)sink;
    const double cpu1 = p.elapsedCpuSeconds();
    EXPECT_GE(cpu0, 0.0);
    EXPECT_GE(cpu1, cpu0);
    EXPECT_GE(p.elapsedWallSeconds(), 0.0);
}

TEST(HostProfiler, ParseHostStatusReadsProcSnapshot)
{
    // Trimmed /proc/self/status fixture: unrelated keys interleaved,
    // tab-indented values, kB units.
    const HostMemory m = parseHostStatus("Name:\tmct_sim\n"
                                         "Umask:\t0022\n"
                                         "VmPeak:\t  501232 kB\n"
                                         "VmHWM:\t   98304 kB\n"
                                         "VmRSS:\t   65536 kB\n"
                                         "VmData:\t  131072 kB\n"
                                         "Threads:\t1\n");
    EXPECT_TRUE(m.valid);
    EXPECT_DOUBLE_EQ(m.rssKb, 65536.0);
    EXPECT_DOUBLE_EQ(m.hwmKb, 98304.0);
    EXPECT_DOUBLE_EQ(m.heapKb, 131072.0);

    EXPECT_FALSE(parseHostStatus("").valid);
    EXPECT_FALSE(parseHostStatus("Name:\tx\nThreads:\t4\n").valid);
}

TEST(HostProfiler, RssHighWaterSurvivesShrinkingResidentSet)
{
    FakeHostClock clk;
    clk.status = "VmRSS:\t  2048 kB\nVmHWM:\t  2048 kB\n";
    HostProfiler p;
    p.enable(&clk); // enable() takes the first memory sample
    EXPECT_DOUBLE_EQ(p.rssHighWaterKb(), 2048.0);

    clk.status = "VmRSS:\t   512 kB\nVmHWM:\t  2048 kB\n";
    p.sampleMemory();
    EXPECT_DOUBLE_EQ(p.memory().rssKb, 512.0);
    EXPECT_DOUBLE_EQ(p.rssHighWaterKb(), 2048.0); // high-water kept
}

TEST(HostProfiler, HostStatsStayOutOfSimSnapshots)
{
    FakeHostClock clk;
    HostProfiler p;
    p.enable(&clk);
    p.addInstructions(1'000'000);
    clk.wall = 1'000'000'000;

    StatRegistry reg;
    double ipc = 1.25;
    reg.addGauge("cpu.ipc", [&ipc] { return ipc; });
    p.registerStats(reg);
    EXPECT_TRUE(reg.isHost("sim.mips"));
    EXPECT_FALSE(reg.isHost("cpu.ipc"));

    const StatSnapshot sim = reg.snapshot(); // default: Sim scope
    EXPECT_EQ(sim.count("cpu.ipc"), 1u);
    EXPECT_EQ(sim.count("sim.mips"), 0u);
    EXPECT_EQ(sim.count("sim.host.wall_seconds"), 0u);

    const StatSnapshot host = reg.snapshot(StatScope::Host);
    EXPECT_EQ(host.count("cpu.ipc"), 0u);
    ASSERT_EQ(host.count("sim.mips"), 1u);
    EXPECT_DOUBLE_EQ(host.at("sim.mips").num, 1.0);

    const StatSnapshot all = reg.snapshot(StatScope::All);
    EXPECT_EQ(all.count("cpu.ipc"), 1u);
    EXPECT_EQ(all.count("sim.mips"), 1u);
}

TEST(HostProfiler, PeriodicSamplesAndTimelineCap)
{
    FakeHostClock clk;
    clk.status = "VmRSS:\t  100 kB\n";
    HostProfiler p;
    p.enable(&clk, 2); // only two timeline slices kept

    for (int i = 0; i < 3; ++i) {
        HostProfiler::Scope scope(&p, "step");
        clk.wall += 1'000'000;
    }
    EXPECT_EQ(p.timelineDropped(), 1u);

    p.addInstructions(500'000);
    clk.wall = 1'000'000'000;
    p.samplePeriodic(500'000);
    ASSERT_EQ(p.periodic().size(), 1u);
    EXPECT_EQ(p.periodic()[0].inst, 500'000u);
    EXPECT_DOUBLE_EQ(p.periodic()[0].mips, 0.5);
    EXPECT_DOUBLE_EQ(p.periodic()[0].rssKb, 100.0);
}

TEST(HostProfiler, WriteJsonEmitsHostSchemaAndStages)
{
    FakeHostClock clk;
    clk.status = "VmRSS:\t  300 kB\nVmHWM:\t  400 kB\n";
    HostProfiler p;
    p.enable(&clk);
    clk.wall = 1'000'000'000;
    clk.cpu = 500'000'000;
    p.begin("step");
    clk.wall += 1'000'000'000;
    p.end("step");
    p.addInstructions(2'000'000);

    std::ostringstream os;
    p.writeJson(os, "eval", "stream", "cfg0");
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\":\"mct-host-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"sim.mips\":"), std::string::npos);
    EXPECT_NE(doc.find("\"sim.host.rss_hwm_kb\":"), std::string::npos);
    EXPECT_NE(doc.find("\"stages\":["), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"step\""), std::string::npos);

    std::ostringstream trace;
    p.writeChromeTrace(trace);
    EXPECT_NE(trace.str().find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(trace.str().find("\"mct_sim host\""), std::string::npos);
}

// --------------------------------------------------------------------
// MetricTimeline
// --------------------------------------------------------------------

StatSnapshot
timelineWindow(double a, double b)
{
    StatSnapshot s;
    StatValue v;
    v.kind = StatKind::Gauge;
    v.num = a;
    s["sim.objective.ipc"] = v;
    v.num = b;
    s["sim.objective.lifetime_years"] = v;
    v.num = 999.0;
    s["memctrl.reads_completed"] = v; // outside the sim.* glob
    return s;
}

TEST(MetricTimeline, BindsLazilyToGlobsFromFirstWindow)
{
    MetricTimeline tl;
    tl.enable({"sim.*"}, 4);
    EXPECT_TRUE(tl.enabled());
    EXPECT_FALSE(tl.bound());
    EXPECT_TRUE(tl.metrics().empty());

    tl.observe(1000, timelineWindow(1.0, 2.0));
    EXPECT_TRUE(tl.bound());
    const std::vector<std::string> want = {"sim.objective.ipc",
                                           "sim.objective"
                                           ".lifetime_years"};
    EXPECT_EQ(tl.metrics(), want); // sorted, glob-filtered
    EXPECT_EQ(tl.size(), 1u);
}

TEST(MetricTimeline, RingWrapsWithDroppedAccounting)
{
    MetricTimeline tl;
    tl.enable({"sim.objective.ipc"}, 3);
    for (int i = 1; i <= 5; ++i)
        tl.observe(static_cast<InstCount>(i * 1000),
                   timelineWindow(static_cast<double>(i), 0.0));

    EXPECT_EQ(tl.size(), 3u);
    EXPECT_EQ(tl.recorded(), 5u);
    EXPECT_EQ(tl.dropped(), 2u);
    // The survivors are the newest three windows, oldest first.
    const std::vector<InstCount> wantInsts = {3000, 4000, 5000};
    EXPECT_EQ(tl.insts(), wantInsts);
    const std::vector<double> wantSeries = {3.0, 4.0, 5.0};
    EXPECT_EQ(tl.series(0), wantSeries);
}

TEST(MetricTimeline, RollupsCoverDroppedWindows)
{
    MetricTimeline tl;
    tl.enable({"sim.objective.ipc"}, 2);
    // 10 wraps out of the ring, but min/max/ewma saw it.
    for (const double v : {10.0, 2.0, 4.0})
        tl.observe(1, timelineWindow(v, 0.0));

    const MetricTimeline::Rollup &r = tl.rollup(0);
    EXPECT_DOUBLE_EQ(r.min, 2.0);
    EXPECT_DOUBLE_EQ(r.max, 10.0);
    // EWMA seeds at 10, then 0.25-blends: 8.0, then 7.0.
    EXPECT_DOUBLE_EQ(r.ewma, 7.0);
}

TEST(MetricTimeline, WriteJsonIsByteIdenticalAcrossRuns)
{
    const auto run = [] {
        MetricTimeline tl;
        tl.enable({"sim.*"}, 4);
        for (int i = 1; i <= 6; ++i)
            tl.observe(static_cast<InstCount>(i * 1000),
                       timelineWindow(1.0 + i, 2.0 * i));
        std::ostringstream os;
        tl.writeJson(os, "eval", "lbm", "cfg",
                     {{"alert.count.critical", 0.0}});
        return os.str();
    };
    const std::string doc = run();
    EXPECT_EQ(doc, run());
    EXPECT_NE(doc.find("\"schema\":\"mct-timeline-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"sim.timeline.dropped\":2"),
              std::string::npos);
    EXPECT_NE(doc.find("\"sim.timeline.recorded\":6"),
              std::string::npos);
    EXPECT_NE(doc.find("timeline.sim.objective.ipc.max"),
              std::string::npos);
    EXPECT_NE(doc.find("\"alert.count.critical\":0"),
              std::string::npos);
}

TEST(MetricTimeline, CheckpointRoundTripReproducesDocument)
{
    MetricTimeline a;
    a.enable({"sim.*"}, 3);
    for (int i = 1; i <= 5; ++i)
        a.observe(static_cast<InstCount>(i * 1000),
                  timelineWindow(static_cast<double>(i), 1.0));
    Serializer s;
    a.serialize(s);

    MetricTimeline b;
    b.enable({"sim.*"}, 3);
    Deserializer d(s.data());
    b.deserialize(d);
    ASSERT_TRUE(d.atEnd());

    a.observe(6000, timelineWindow(6.0, 1.0));
    b.observe(6000, timelineWindow(6.0, 1.0));
    std::ostringstream ja, jb;
    a.writeJson(ja, "eval", "lbm", "cfg", {});
    b.writeJson(jb, "eval", "lbm", "cfg", {});
    EXPECT_EQ(ja.str(), jb.str());
}

TEST(MetricTimeline, TimelineAndAlertStatsAreHostScoped)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    sys.enableTimeline({"sim.*"}, 8);
    AlertRule r;
    r.name = "smoke";
    r.glob = "sim.instructions";
    r.cond = AlertCondition::Above;
    r.threshold = 0.0;
    sys.enableAlerts({r});

    const StatRegistry &reg = sys.statRegistry();
    for (const char *path :
         {"sim.timeline.windows", "sim.timeline.recorded",
          "sim.timeline.dropped", "sim.timeline.metrics",
          "alert.raised", "alert.cleared", "alert.active",
          "alert.rules", "alert.count.critical"}) {
        ASSERT_TRUE(reg.has(path)) << path;
        EXPECT_TRUE(reg.isHost(path)) << path;
    }
    // The byte-identity contract: arming never perturbs Sim
    // snapshots, which is what observe() windows are built from.
    const StatSnapshot sim = sys.statRegistry().snapshot();
    EXPECT_EQ(sim.count("sim.timeline.windows"), 0u);
    EXPECT_EQ(sim.count("alert.raised"), 0u);
    const StatSnapshot all =
        sys.statRegistry().snapshot(StatScope::All);
    EXPECT_EQ(all.count("sim.timeline.windows"), 1u);
    EXPECT_EQ(all.count("alert.raised"), 1u);
}

// --------------------------------------------------------------------
// StatsReport::print alignment
// --------------------------------------------------------------------

TEST(StatsReport, PrintAlignsColumns)
{
    StatsReport r;
    r.add("cpu.ipc", 1.5);
    r.add("memctrl.reads", std::uint64_t(42), "completed");
    r.add("x", std::uint64_t(123456));
    ASSERT_EQ(r.size(), 3u);

    std::ostringstream os;
    r.print(os);
    // Paths left-justify to the longest path plus two; values
    // right-justify to the widest value; annotations follow "  # ".
    EXPECT_EQ(os.str(), "cpu.ipc           1.5\n"
                        "memctrl.reads      42  # completed\n"
                        "x              123456\n");
}

} // namespace
} // namespace mct
