/**
 * @file
 * Unit tests for the Mellow-Writes memory controller: queue
 * priorities, drain hysteresis, write cancellation, bank-aware slow
 * writes, eager queue behavior, wear-quota enforcement, and wear /
 * energy accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "memctrl/controller.hh"

namespace mct
{
namespace
{

/** Address that decodes to the given bank (line 0 of some row). */
Addr
addrForBank(const NvmDevice &dev, unsigned bank, unsigned row = 0)
{
    // Rows are bank-interleaved: global row = row * numBanks + bank.
    const std::uint64_t lpr = dev.params().linesPerRow();
    const std::uint64_t line =
        (static_cast<std::uint64_t>(row) * dev.numBanks() + bank) * lpr;
    const Addr addr = line * lineBytes;
    EXPECT_EQ(dev.decode(addr).bank, bank);
    return addr;
}

struct Rig
{
    NvmDevice dev;
    MemController ctrl;

    explicit Rig(const MellowConfig &cfg = defaultConfig(),
                 const MemCtrlParams &mp = MemCtrlParams{})
        : dev(NvmParams{}), ctrl(dev, mp, cfg)
    {}

    /** Run until no request remains. */
    void
    drainAll()
    {
        while (!ctrl.idle()) {
            const Tick next = ctrl.nextEventTick();
            ASSERT_NE(next, MemController::noEvent);
            ctrl.advance(next == ctrl.now() ? next + 1 : next);
        }
    }
};

TEST(WearQuotaUnit, DisabledNeverRestricts)
{
    WearQuota q(1000, 1e6);
    q.configure(false, 8.0, 0, 0.0);
    q.update(100000, 1e9);
    EXPECT_FALSE(q.restricted());
}

TEST(WearQuotaUnit, RestrictsWhenOverBudget)
{
    WearQuota q(tickMs, 1e6);
    q.configure(true, 8.0, 0, 0.0);
    // Budget per second = 1e6 / (8 years in seconds): tiny. Any real
    // wear exceeds it.
    q.update(2 * tickMs, 100.0);
    EXPECT_TRUE(q.restricted());
    EXPECT_EQ(q.restrictedSlices(), 1u);
}

TEST(WearQuotaUnit, UnrestrictsOnceUnderBudget)
{
    WearQuota q(tickMs, 1e6);
    q.configure(true, 8.0, 0, 0.0);
    q.update(2 * tickMs, 100.0);
    ASSERT_TRUE(q.restricted());
    // Budget rate is 1e6 / (8 years) ~ 4e-3 wear/s: after 1e5
    // seconds the accrued budget (~400) legalizes the 100 wear.
    q.update(static_cast<Tick>(100000) * tickSec, 100.0);
    EXPECT_FALSE(q.restricted());
}

TEST(WearQuotaUnit, WearBeforeArmingDoesNotCount)
{
    WearQuota q(tickMs, 1e6);
    q.configure(true, 8.0, tickSec, 5000.0); // armed with prior wear
    q.update(tickSec + 2 * tickMs, 5000.0);  // no new wear
    EXPECT_FALSE(q.restricted());
}

TEST(WearQuotaUnit, BudgetRateScalesWithTarget)
{
    WearQuota a(tickMs, 1e6), b(tickMs, 1e6);
    a.configure(true, 4.0, 0, 0.0);
    b.configure(true, 8.0, 0, 0.0);
    EXPECT_NEAR(a.budgetRate() / b.budgetRate(), 2.0, 1e-12);
}

TEST(WearQuotaUnit, IdleGapCatchesUpInWholeSlices)
{
    // A long idle gap must advance the slice clock to the last whole
    // boundary (not to `now`), so the budget is computed at slice
    // granularity and mid-slice updates change nothing.
    WearQuota q(tickMs, 1e6);
    q.configure(true, 8.0, 0, 0.0);
    const Tick gap = 1000 * tickMs + tickMs / 2; // 1000.5 slices
    q.update(gap, 0.0);
    const double allowedAtBoundary =
        q.budgetRate() * (1000.0 * static_cast<double>(tickMs) /
                          static_cast<double>(tickSec));
    EXPECT_NEAR(q.lastAllowed(), allowedAtBoundary,
                1e-12 * allowedAtBoundary);
    // Still inside slice 1000: another update must not re-evaluate.
    q.update(gap + tickMs / 4, 1e9);
    EXPECT_NEAR(q.lastAllowed(), allowedAtBoundary,
                1e-12 * allowedAtBoundary);
    EXPECT_FALSE(q.restricted());
}

TEST(WearQuotaUnit, ReconfigureMidRunReArmsCleanly)
{
    WearQuota q(tickMs, 1e6);
    q.configure(true, 8.0, 0, 0.0);
    q.update(2 * tickMs, 100.0);
    ASSERT_TRUE(q.restricted());
    // Re-arm mid-run at the current wear level: restriction clears,
    // counters reset, and the old 100 units are never counted again.
    q.configure(true, 8.0, 2 * tickMs, 100.0);
    EXPECT_FALSE(q.restricted());
    EXPECT_DOUBLE_EQ(q.lastUsed(), 0.0);
    EXPECT_DOUBLE_EQ(q.lastAllowed(), 0.0);
    q.update(4 * tickMs, 100.0); // no new wear since re-arm
    EXPECT_FALSE(q.restricted());
    EXPECT_DOUBLE_EQ(q.lastUsed(), 0.0);
}

TEST(WearQuotaUnit, UsedWearNeverGoesNegative)
{
    // A corrupted (shrinking) device total must clamp to zero used
    // wear, never grant unbounded budget via a negative balance.
    WearQuota q(tickMs, 1e6);
    q.configure(true, 8.0, 0, 50.0);
    q.update(2 * tickMs, 10.0); // "less wear than at arming"
    EXPECT_DOUBLE_EQ(q.lastUsed(), 0.0);
    EXPECT_FALSE(q.restricted());
}

TEST(WearQuotaUnit, NonFiniteWearHoldsLastGoodReading)
{
    WearQuota q(tickMs, 1e6);
    q.configure(true, 8.0, 0, 0.0);
    q.update(2 * tickMs, 100.0);
    ASSERT_TRUE(q.restricted());
    const double used = q.lastUsed();
    q.update(4 * tickMs, std::nan(""));
    EXPECT_DOUBLE_EQ(q.lastUsed(), used); // held, not poisoned
    q.update(6 * tickMs,
             std::numeric_limits<double>::infinity());
    EXPECT_DOUBLE_EQ(q.lastUsed(), used);
    EXPECT_TRUE(std::isfinite(q.lastAllowed()));
}

TEST(WearQuotaUnit, NonFiniteWearAtArmingIsDiscarded)
{
    WearQuota q(tickMs, 1e6);
    q.configure(true, 8.0, 0, std::nan(""));
    q.update(2 * tickMs, 100.0); // counted from 0, not from NaN
    EXPECT_DOUBLE_EQ(q.lastUsed(), 100.0);
    EXPECT_TRUE(q.restricted());
}

TEST(WearQuotaUnit, ClockSkewClampsAndRestores)
{
    WearQuota q(tickMs, 1e6);
    q.setClockSkew(1e9);
    EXPECT_DOUBLE_EQ(q.clockSkew(), 100.0);
    q.setClockSkew(1e-9);
    EXPECT_DOUBLE_EQ(q.clockSkew(), 0.01);
    q.setClockSkew(std::nan(""));
    EXPECT_DOUBLE_EQ(q.clockSkew(), 1.0);
    q.setClockSkew(-3.0);
    EXPECT_DOUBLE_EQ(q.clockSkew(), 1.0);
}

TEST(WearQuotaUnit, SkewedClockInflatesBudget)
{
    // A fast-running quota clock (skew > 1) inflates the perceived
    // budget: wear that restricts an honest quota passes a skewed one.
    WearQuota honest(tickMs, 1e6), skewed(tickMs, 1e6);
    honest.configure(true, 8.0, 0, 0.0);
    skewed.configure(true, 8.0, 0, 0.0);
    skewed.setClockSkew(100.0);
    const Tick at = static_cast<Tick>(2000) * tickSec;
    const double wear = honest.budgetRate() * 2100.0; // > honest budget
    honest.update(at, wear);
    skewed.update(at, wear);
    EXPECT_TRUE(honest.restricted());
    EXPECT_FALSE(skewed.restricted());
}

TEST(MemController, ReadCompletesWithActivateLatency)
{
    Rig rig;
    const Addr a = addrForBank(rig.dev, 0);
    ASSERT_TRUE(rig.ctrl.submitRead(a, 0, 1));
    rig.drainAll();
    ASSERT_EQ(rig.ctrl.completedReads().size(), 1u);
    const auto [id, done] = rig.ctrl.completedReads()[0];
    EXPECT_EQ(id, 1u);
    const NvmParams &np = rig.dev.params();
    EXPECT_EQ(done, np.tRCD + np.tCAS + np.tBURST);
}

TEST(MemController, RowBufferHitIsFaster)
{
    Rig rig;
    const Addr a = addrForBank(rig.dev, 0);
    ASSERT_TRUE(rig.ctrl.submitRead(a, 0, 1));
    rig.drainAll();
    const Tick first = rig.ctrl.completedReads()[0].second;
    rig.ctrl.completedReads().clear();

    // Second read to the same row: open-page hit, no tRCD.
    ASSERT_TRUE(rig.ctrl.submitRead(a + lineBytes, first, 2));
    rig.drainAll();
    const Tick second = rig.ctrl.completedReads()[0].second;
    const NvmParams &np = rig.dev.params();
    EXPECT_EQ(second - first, np.tCAS + np.tBURST);
    EXPECT_EQ(rig.ctrl.stats().rowHits, 1u);
}

TEST(MemController, ReadsToSameBankSerialize)
{
    Rig rig;
    const Addr a = addrForBank(rig.dev, 0, 0);
    const Addr b = addrForBank(rig.dev, 0, 1); // different row, bank 0
    ASSERT_TRUE(rig.ctrl.submitRead(a, 0, 1));
    ASSERT_TRUE(rig.ctrl.submitRead(b, 0, 2));
    rig.drainAll();
    ASSERT_EQ(rig.ctrl.completedReads().size(), 2u);
    const Tick t1 = rig.ctrl.completedReads()[0].second;
    const Tick t2 = rig.ctrl.completedReads()[1].second;
    EXPECT_GT(t2, t1);
}

TEST(MemController, ReadsToDifferentBanksOverlap)
{
    Rig rig;
    ASSERT_TRUE(rig.ctrl.submitRead(addrForBank(rig.dev, 0), 0, 1));
    ASSERT_TRUE(rig.ctrl.submitRead(addrForBank(rig.dev, 1), 0, 2));
    rig.drainAll();
    const Tick t1 = rig.ctrl.completedReads()[0].second;
    const Tick t2 = rig.ctrl.completedReads()[1].second;
    EXPECT_EQ(t1, t2); // fully parallel banks
}

TEST(MemController, WriteTakesWritePulse)
{
    Rig rig;
    ASSERT_TRUE(rig.ctrl.submitWrite(addrForBank(rig.dev, 0), 0));
    rig.drainAll();
    EXPECT_EQ(rig.ctrl.stats().writesCompleted, 1u);
    EXPECT_EQ(rig.ctrl.stats().fastWrites, 1u);
    EXPECT_DOUBLE_EQ(rig.ctrl.stats().wearAdded, 1.0);
}

TEST(MemController, ReadPriorityOverQueuedWrite)
{
    Rig rig;
    const Addr a = addrForBank(rig.dev, 0, 0);
    const Addr b = addrForBank(rig.dev, 0, 1);
    // Fill bank 0 with one in-flight write, then queue another write
    // and a read; when the bank frees, the read must go first.
    ASSERT_TRUE(rig.ctrl.submitWrite(a, 0));
    ASSERT_TRUE(rig.ctrl.submitWrite(b, 0));
    ASSERT_TRUE(rig.ctrl.submitRead(a, 0, 7));
    rig.drainAll();
    ASSERT_EQ(rig.ctrl.completedReads().size(), 1u);
    const Tick readDone = rig.ctrl.completedReads()[0].second;
    // Read waits only for the first write, not both.
    const NvmParams &np = rig.dev.params();
    const Tick firstWrite = np.writePulse(1.0) + np.tBURST;
    EXPECT_LT(readDone, firstWrite + np.writePulse(1.0));
    EXPECT_GE(readDone, firstWrite);
}

TEST(MemController, WriteQueueRejectsWhenFull)
{
    MemCtrlParams mp;
    mp.writeQCap = 4;
    mp.drainHigh = 4;
    mp.drainLow = 2;
    Rig rig(defaultConfig(), mp);
    // Saturate one bank so nothing drains instantly.
    const Addr base = addrForBank(rig.dev, 0, 0);
    unsigned accepted = 0;
    for (unsigned i = 0; i < 10; ++i) {
        accepted += rig.ctrl.submitWrite(
            addrForBank(rig.dev, 0, i), 0);
    }
    (void)base;
    // One write issues immediately; capacity bounds the rest.
    EXPECT_LE(rig.ctrl.writeQSize(), 4u);
    EXPECT_GT(rig.ctrl.stats().writeQRejects, 0u);
    EXPECT_LT(accepted, 10u);
}

TEST(MemController, DrainHysteresis)
{
    MemCtrlParams mp;
    mp.writeQCap = 8;
    mp.drainHigh = 8;
    mp.drainLow = 2;
    Rig rig(defaultConfig(), mp);
    for (unsigned i = 0; i < 12; ++i)
        rig.ctrl.submitWrite(addrForBank(rig.dev, 0, i), 0);
    EXPECT_TRUE(rig.ctrl.draining());
    rig.drainAll();
    EXPECT_FALSE(rig.ctrl.draining());
}

TEST(MemController, BankAwareIssuesSlowWritesWhenQueueShallow)
{
    MellowConfig cfg;
    cfg.bankAware = true;
    cfg.bankAwareThreshold = 4;
    cfg.fastLatency = 1.0;
    cfg.slowLatency = 3.0;
    ASSERT_TRUE(cfg.valid());
    Rig rig(cfg);
    ASSERT_TRUE(rig.ctrl.submitWrite(addrForBank(rig.dev, 0), 0));
    rig.drainAll();
    EXPECT_EQ(rig.ctrl.stats().slowWrites, 1u);
    // Slow 3.0x write wears 1/9.
    EXPECT_NEAR(rig.ctrl.stats().wearAdded, 1.0 / 9.0, 1e-12);
}

TEST(MemController, BankAwareFallsBackToFastWhenBacklogged)
{
    MellowConfig cfg;
    cfg.bankAware = true;
    cfg.bankAwareThreshold = 1; // slow only when no other write waits
    cfg.fastLatency = 1.0;
    cfg.slowLatency = 3.0;
    Rig rig(cfg);
    for (unsigned i = 0; i < 6; ++i)
        rig.ctrl.submitWrite(addrForBank(rig.dev, 0, i), 0);
    rig.drainAll();
    // The backlogged writes go fast; only queue-empty issues go slow.
    EXPECT_GT(rig.ctrl.stats().fastWrites, 0u);
}

TEST(MemController, EagerWritesAreSlowAndLowestPriority)
{
    MellowConfig cfg;
    cfg.eagerWritebacks = true;
    cfg.eagerThreshold = 4;
    cfg.fastLatency = 1.0;
    cfg.slowLatency = 2.0;
    Rig rig(cfg);
    ASSERT_TRUE(rig.ctrl.submitEager(addrForBank(rig.dev, 0, 0), 0));
    ASSERT_TRUE(rig.ctrl.submitEager(addrForBank(rig.dev, 0, 1), 0));
    ASSERT_TRUE(rig.ctrl.submitWrite(addrForBank(rig.dev, 0, 2), 0));
    rig.drainAll();
    EXPECT_EQ(rig.ctrl.stats().eagerWrites, 2u);
    // Eager writes at 2.0x wear 0.25 each; demand write wears 1.0.
    EXPECT_NEAR(rig.ctrl.stats().wearAdded, 1.0 + 2 * 0.25, 1e-12);
}

TEST(MemController, EagerQueueRejectsWhenFull)
{
    MemCtrlParams mp;
    mp.eagerQCap = 2;
    Rig rig(staticBaselineConfig(), mp);
    unsigned ok = 0;
    for (unsigned i = 0; i < 6; ++i)
        ok += rig.ctrl.submitEager(addrForBank(rig.dev, 0, i), 0);
    EXPECT_LE(rig.ctrl.eagerQSize(), 2u);
    EXPECT_GT(rig.ctrl.stats().eagerQRejects, 0u);
    EXPECT_LT(ok, 6u);
}

TEST(MemController, CancellationAbortsSlowWriteForRead)
{
    MellowConfig cfg;
    cfg.bankAware = true;
    cfg.bankAwareThreshold = 4;
    cfg.fastLatency = 1.0;
    cfg.slowLatency = 4.0;
    cfg.slowCancellation = true;
    Rig rig(cfg);
    const NvmParams &np = rig.dev.params();
    // Start a 4x write (600 ns) on bank 0 at t=0.
    ASSERT_TRUE(rig.ctrl.submitWrite(addrForBank(rig.dev, 0, 0), 0));
    // A read arrives at 100 ns: the write is cancelled, the read runs.
    ASSERT_TRUE(
        rig.ctrl.submitRead(addrForBank(rig.dev, 0, 1), 100 * tickNs, 9));
    rig.drainAll();
    ASSERT_EQ(rig.ctrl.stats().cancellations, 1u);
    const Tick readDone = rig.ctrl.completedReads()[0].second;
    EXPECT_EQ(readDone, 100 * tickNs + np.tRCD + np.tCAS + np.tBURST);
    // The write still completed afterwards (requeued).
    EXPECT_EQ(rig.ctrl.stats().writesCompleted, 1u);
    // Wear: partial progress of the aborted pulse plus a full redo.
    EXPECT_GT(rig.ctrl.stats().wearAdded,
              NvmParams::wearOfWrite(4.0));
}

TEST(MemController, NoCancellationWithoutPermission)
{
    MellowConfig cfg; // fast writes, no cancellation
    Rig rig(cfg);
    const NvmParams &np = rig.dev.params();
    ASSERT_TRUE(rig.ctrl.submitWrite(addrForBank(rig.dev, 0, 0), 0));
    ASSERT_TRUE(
        rig.ctrl.submitRead(addrForBank(rig.dev, 0, 1), 10 * tickNs, 4));
    rig.drainAll();
    EXPECT_EQ(rig.ctrl.stats().cancellations, 0u);
    // Read waited for the full write pulse.
    const Tick readDone = rig.ctrl.completedReads()[0].second;
    EXPECT_GE(readDone,
              np.writePulse(1.0) + np.tBURST + np.tRCD + np.tCAS);
}

TEST(MemController, NearlyFinishedWritesAreNotCancelled)
{
    MellowConfig cfg;
    cfg.fastCancellation = true;
    cfg.fastLatency = 1.0;
    Rig rig(cfg);
    const NvmParams &np = rig.dev.params();
    ASSERT_TRUE(rig.ctrl.submitWrite(addrForBank(rig.dev, 0, 0), 0));
    // Write finishes at 170 ns; a read at 160 ns is within the final
    // 25% of the pulse and must not cancel it.
    const Tick late = np.writePulse(1.0) + np.tBURST - 10 * tickNs;
    ASSERT_TRUE(rig.ctrl.submitRead(addrForBank(rig.dev, 0, 1), late, 5));
    rig.drainAll();
    EXPECT_EQ(rig.ctrl.stats().cancellations, 0u);
}

TEST(MemController, QuotaRestrictionForcesSlowestWrites)
{
    MellowConfig cfg;
    cfg.wearQuota = true;
    cfg.wearQuotaTarget = 10.0;
    MemCtrlParams mp;
    mp.quotaSliceTicks = 10 * tickUs;
    NvmDevice dev{NvmParams{}};
    MemController ctrl(dev, mp, cfg);

    // Burn way past the budget, then cross a slice boundary.
    Tick t = 0;
    for (unsigned row = 0; row < 200; ++row) {
        while (!ctrl.submitWrite(addrForBank(dev, row % 16, row / 16), t))
            t = ctrl.nextEventTick();
        ctrl.advance(t);
    }
    while (!ctrl.idle())
        ctrl.advance(ctrl.nextEventTick());
    // Next slice: restricted; writes complete at 4x.
    const Tick afterSlice = ctrl.now() + 2 * mp.quotaSliceTicks;
    ctrl.advance(afterSlice);
    ASSERT_TRUE(ctrl.submitWrite(addrForBank(dev, 0, 500), afterSlice));
    while (!ctrl.idle())
        ctrl.advance(ctrl.nextEventTick());
    EXPECT_GT(ctrl.stats().quotaWrites, 0u);
}

TEST(MemController, SetConfigRejectsInvalid)
{
    Rig rig;
    MellowConfig bad;
    bad.fastLatency = 9.0;
    EXPECT_FALSE(bad.valid());
    // mct_fatal exits; only verify valid() guards here.
    MellowConfig good = staticBaselineConfig();
    EXPECT_TRUE(good.valid());
    rig.ctrl.setConfig(good, rig.ctrl.now());
    EXPECT_EQ(rig.ctrl.config(), good);
}

TEST(MemController, StatsDeltaSubtracts)
{
    Rig rig;
    ASSERT_TRUE(rig.ctrl.submitWrite(addrForBank(rig.dev, 0), 0));
    rig.drainAll();
    const CtrlStats snap = rig.ctrl.stats();
    ASSERT_TRUE(
        rig.ctrl.submitWrite(addrForBank(rig.dev, 1), rig.ctrl.now()));
    rig.drainAll();
    const CtrlStats d = rig.ctrl.stats().delta(snap);
    EXPECT_EQ(d.writesCompleted, 1u);
    EXPECT_DOUBLE_EQ(d.wearAdded, 1.0);
}

TEST(MemController, IdleAndNextEvent)
{
    Rig rig;
    EXPECT_TRUE(rig.ctrl.idle());
    EXPECT_EQ(rig.ctrl.nextEventTick(), MemController::noEvent);
    rig.ctrl.submitRead(addrForBank(rig.dev, 0), 0, 1);
    EXPECT_FALSE(rig.ctrl.idle());
    EXPECT_NE(rig.ctrl.nextEventTick(), MemController::noEvent);
}

TEST(MemController, AvgReadLatencyTracksCompletion)
{
    Rig rig;
    rig.ctrl.submitRead(addrForBank(rig.dev, 0), 0, 1);
    rig.drainAll();
    const NvmParams &np = rig.dev.params();
    EXPECT_DOUBLE_EQ(rig.ctrl.stats().avgReadLatency(),
                     static_cast<double>(np.tRCD + np.tCAS + np.tBURST));
}

TEST(MemController, WriteEnergyUnitsFollowLaw)
{
    MellowConfig cfg;
    cfg.bankAware = true;
    cfg.bankAwareThreshold = 4;
    cfg.slowLatency = 2.0;
    Rig rig(cfg);
    rig.ctrl.submitWrite(addrForBank(rig.dev, 0), 0);
    rig.drainAll();
    // One slow write at ratio 2: energy unit 2^-0.35.
    EXPECT_NEAR(rig.ctrl.stats().writeEnergyUnits,
                std::pow(2.0, -0.35), 1e-12);
}

TEST(MemController, TFawThrottlesActivationBursts)
{
    // Five row activations to five banks at t=0: the fifth must wait
    // for the tFAW window of the first four.
    Rig rig;
    const NvmParams &np = rig.dev.params();
    for (unsigned b = 0; b < 5; ++b)
        ASSERT_TRUE(rig.ctrl.submitRead(addrForBank(rig.dev, b), 0,
                                        b + 1));
    rig.drainAll();
    ASSERT_EQ(rig.ctrl.completedReads().size(), 5u);
    Tick last = 0;
    for (const auto &[id, done] : rig.ctrl.completedReads())
        last = std::max(last, done);
    // Unthrottled, all five would finish together at ~142.5 ns; the
    // tFAW (50 ns) delays the fifth activation.
    EXPECT_GE(last, np.tFAW + np.tRCD + np.tCAS + np.tBURST);
}

TEST(MemController, EagerNeverBeatsQueuedWrite)
{
    MellowConfig cfg = staticBaselineConfig();
    cfg.wearQuota = false;
    Rig rig(cfg);
    // Same bank: an eager entry enqueued BEFORE a demand writeback
    // must still lose to it once the bank frees.
    ASSERT_TRUE(rig.ctrl.submitWrite(addrForBank(rig.dev, 3, 0), 0));
    ASSERT_TRUE(rig.ctrl.submitEager(addrForBank(rig.dev, 3, 1), 0));
    ASSERT_TRUE(rig.ctrl.submitWrite(addrForBank(rig.dev, 3, 2), 0));
    rig.drainAll();
    // All three complete; the eager one is the slow-latency one and
    // completes last (lowest priority).
    EXPECT_EQ(rig.ctrl.stats().writesCompleted, 3u);
    EXPECT_EQ(rig.ctrl.stats().eagerWrites, 1u);
}

class ConfigValidity
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(ConfigValidity, SlowMustBeAtLeastFast)
{
    const auto [fast, slow] = GetParam();
    MellowConfig cfg;
    cfg.bankAware = true;
    cfg.fastLatency = fast;
    cfg.slowLatency = slow;
    EXPECT_EQ(cfg.valid(), slow >= fast && fast >= 1.0 && slow <= 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    LatencyPairs, ConfigValidity,
    ::testing::Values(std::make_tuple(1.0, 1.0),
                      std::make_tuple(1.0, 4.0),
                      std::make_tuple(2.0, 1.5),
                      std::make_tuple(3.5, 4.0),
                      std::make_tuple(4.0, 4.0),
                      std::make_tuple(1.5, 1.0)));

} // namespace
} // namespace mct
