/**
 * @file
 * Tests for the mct_lint engine: rules.txt parsing, the
 * comment/string-stripping preprocessor, glob and pattern
 * unification, and the full analysis run against the seeded fixture
 * project under tests/lint_fixtures/proj (true positives for every
 * rule class, allowlists, and stat/event-contract drift in both
 * directions), and the serialize-contract builtin against
 * tests/lint_fixtures/serial (missed members, order asymmetry, the
 * reviewed skip manifest, and every exemption class).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace mct::lint
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << "cannot open " << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

std::string
fixtureRoot()
{
    return std::string(MCT_LINT_FIXTURES) + "/proj";
}

/** Count findings matching rule id (and optionally file). */
std::size_t
countOf(const std::vector<Finding> &fs, const std::string &rule,
        const std::string &file = "")
{
    return static_cast<std::size_t>(std::count_if(
        fs.begin(), fs.end(), [&](const Finding &f) {
            return f.rule == rule &&
                   (file.empty() || f.file == file);
        }));
}

bool
hasMessage(const std::vector<Finding> &fs, const std::string &rule,
           const std::string &needle)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding &f) {
        return f.rule == rule &&
               f.message.find(needle) != std::string::npos;
    });
}

TEST(ParseRules, ParsesRulesExcludesAndOptions)
{
    const std::string text = "# comment\n"
                             "exclude tests/fixtures/**\n"
                             "\n"
                             "rule no-foo\n"
                             "  pattern   \\bfoo\\s*\\(\n"
                             "  scope     src/**\n"
                             "  scope     bench/**\n"
                             "  allow     src/legacy.cc\n"
                             "  message   foo is banned\n"
                             "\n"
                             "rule contract\n"
                             "  builtin   stat-contract\n"
                             "  docs      docs/c.md\n"
                             "  names     parseA,parseB\n";
    RulesFile rf;
    std::string err;
    ASSERT_TRUE(parseRules(text, rf, err)) << err;
    ASSERT_EQ(rf.excludes.size(), 1u);
    EXPECT_EQ(rf.excludes[0], "tests/fixtures/**");
    ASSERT_EQ(rf.rules.size(), 2u);
    EXPECT_EQ(rf.rules[0].id, "no-foo");
    EXPECT_EQ(rf.rules[0].pattern, "\\bfoo\\s*\\(");
    ASSERT_EQ(rf.rules[0].scopes.size(), 2u);
    EXPECT_EQ(rf.rules[0].allow.size(), 1u);
    EXPECT_EQ(rf.rules[0].message, "foo is banned");
    EXPECT_EQ(rf.rules[1].builtin, "stat-contract");
    EXPECT_EQ(rf.rules[1].docs, "docs/c.md");
    ASSERT_EQ(rf.rules[1].names.size(), 2u);
    EXPECT_EQ(rf.rules[1].names[1], "parseB");
}

TEST(ParseRules, RejectsRuleWithPatternAndBuiltin)
{
    RulesFile rf;
    std::string err;
    EXPECT_FALSE(parseRules("rule both\n"
                            "  pattern x\n"
                            "  builtin stat-contract\n",
                            rf, err));
    EXPECT_NE(err.find("exactly one of pattern/builtin"),
              std::string::npos);
}

TEST(ParseRules, RejectsRuleWithNeitherPatternNorBuiltin)
{
    RulesFile rf;
    std::string err;
    EXPECT_FALSE(parseRules("rule empty\n  scope src/**\n", rf, err));
}

TEST(ParseRules, RejectsOptionOutsideRule)
{
    RulesFile rf;
    std::string err;
    EXPECT_FALSE(parseRules("pattern orphan\n", rf, err));
}

TEST(Preprocess, BlanksCommentsAndStringContents)
{
    const std::string code = "int x; // rand()\n"
                             "const char *s = \"rand()\";\n"
                             "/* std::cout */ int y;\n";
    const SourceFile f = preprocess("src/a.cc", code);
    EXPECT_EQ(f.raw.size(), f.noComments.size());
    EXPECT_EQ(f.raw.size(), f.codeOnly.size());
    // Comments are gone from both derived views.
    EXPECT_EQ(f.noComments.find("// rand"), std::string::npos);
    EXPECT_EQ(f.codeOnly.find("std::cout"), std::string::npos);
    // String contents survive in noComments but not codeOnly.
    EXPECT_NE(f.noComments.find("\"rand()\""), std::string::npos);
    EXPECT_EQ(f.codeOnly.find("\"rand()\""), std::string::npos);
    // Code survives everywhere.
    EXPECT_NE(f.codeOnly.find("int y;"), std::string::npos);
}

TEST(Preprocess, HandlesRawStringsAndEscapes)
{
    const std::string code =
        "auto a = R\"(has \"quotes\" inside)\";\n"
        "auto b = \"esc \\\" quote\";\n"
        "int z = 1; // after\n";
    const SourceFile f = preprocess("src/a.cc", code);
    EXPECT_EQ(f.raw.size(), f.codeOnly.size());
    EXPECT_EQ(f.codeOnly.find("quotes"), std::string::npos);
    EXPECT_NE(f.codeOnly.find("int z = 1;"), std::string::npos);
}

TEST(GlobMatch, StarStaysWithinSegment)
{
    EXPECT_TRUE(globMatch("src/*.cc", "src/a.cc"));
    EXPECT_FALSE(globMatch("src/*.cc", "src/sub/a.cc"));
}

TEST(GlobMatch, DoubleStarCrossesSegments)
{
    EXPECT_TRUE(globMatch("src/**", "src/a.cc"));
    EXPECT_TRUE(globMatch("src/**", "src/sub/deep/a.cc"));
    EXPECT_FALSE(globMatch("src/**", "bench/a.cc"));
    EXPECT_TRUE(globMatch("src/**/*.hh", "src/sub/a.hh"));
    EXPECT_FALSE(globMatch("src/**/*.hh", "src/sub/a.cc"));
}

TEST(PatternsUnify, HolesMatchEitherSide)
{
    EXPECT_TRUE(patternsUnify("cache.l1d.hits", "cache.l1d.hits"));
    EXPECT_TRUE(patternsUnify("*.hits", "cache.l1d.hits"));
    EXPECT_TRUE(patternsUnify("cache.*.hits", "*.hits"));
    EXPECT_FALSE(patternsUnify("cache.l1d.hits", "cache.l2.hits"));
    EXPECT_FALSE(patternsUnify("memctrl.reads", "nvm.reads"));
}

/** The full engine over the seeded fixture project. */
class FixtureRun : public ::testing::Test
{
  protected:
    static const std::vector<Finding> &
    findings()
    {
        static const std::vector<Finding> fs = [] {
            RulesFile rf;
            std::string err;
            const bool ok = parseRules(
                readFile(fixtureRoot() + "/rules.txt"), rf, err);
            EXPECT_TRUE(ok) << err;
            Linter lint(rf, fixtureRoot());
            return lint.run({"src", "tests"});
        }();
        return fs;
    }
};

TEST_F(FixtureRun, DetectsSeededPatternViolations)
{
    const auto &fs = findings();
    EXPECT_EQ(countOf(fs, "det-libc-rand", "src/bad.cc"), 1u);
    EXPECT_EQ(countOf(fs, "det-wall-clock", "src/bad.cc"), 1u);
    EXPECT_EQ(countOf(fs, "io-raw-stream", "src/bad.cc"), 1u);
}

TEST_F(FixtureRun, CommentsAndStringsDoNotFire)
{
    // bad.cc mentions rand() and std::cerr in a comment and inside a
    // string literal; only the three real statements may be reported.
    const auto &fs = findings();
    EXPECT_EQ(countOf(fs, "det-libc-rand"), 1u);
    EXPECT_EQ(countOf(fs, "io-raw-stream"), 1u);
}

TEST_F(FixtureRun, AllowlistedFileIsExempt)
{
    const auto &fs = findings();
    EXPECT_EQ(countOf(fs, "det-wall-clock", "src/timer_ok.cc"), 0u);
    // ... and the allowlist is per-rule, not per-file: a violation of
    // another rule in the same file would still be reported (none is
    // seeded, so timer_ok.cc is findings-free).
    for (const auto &f : fs)
        EXPECT_NE(f.file, "src/timer_ok.cc") << f.rule;
}

TEST_F(FixtureRun, StatContractFlagsRegisteredButUndocumented)
{
    const auto &fs = findings();
    EXPECT_TRUE(hasMessage(fs, "stat-contract",
                           "stat 'app.undocumented' is registered "
                           "but not documented"));
    // The documented stats do not drift.
    EXPECT_FALSE(hasMessage(fs, "stat-contract", "'app.documented' is "
                                                 "registered but"));
    EXPECT_FALSE(hasMessage(fs, "stat-contract",
                            "'app.rate' is registered but"));
}

TEST_F(FixtureRun, StatContractFlagsDocumentedButGone)
{
    EXPECT_TRUE(hasMessage(findings(), "stat-contract",
                           "documented stat 'app.ghost' is not "
                           "registered"));
}

TEST_F(FixtureRun, StatContractFlagsDuplicateRegistration)
{
    EXPECT_TRUE(hasMessage(findings(), "stat-contract",
                           "'app.documented' already registered"));
}

TEST_F(FixtureRun, EventContractDriftBothDirections)
{
    const auto &fs = findings();
    EXPECT_TRUE(hasMessage(fs, "stat-contract",
                           "event type 'undocumented_event' is not "
                           "documented"));
    EXPECT_TRUE(hasMessage(fs, "stat-contract",
                           "documented event 'ghost_event' does not "
                           "exist"));
    EXPECT_FALSE(hasMessage(fs, "stat-contract", "'known_event'"));
}

TEST_F(FixtureRun, GoldenReferencingDeadEventIsFlagged)
{
    const auto &fs = findings();
    EXPECT_TRUE(hasMessage(fs, "stat-contract",
                           "golden references event 'stale_event'"));
    EXPECT_EQ(countOf(fs, "stat-contract", "tests/golden_test.cc"),
              1u);
}

TEST_F(FixtureRun, DocContractFlagsDriftInBothDirections)
{
    const auto &fs = findings();
    // Declared in the dockeys.cc region but absent from the docs.
    EXPECT_TRUE(hasMessage(fs, "doc-contract",
                           "document key 'orphan_key' is declared in "
                           "code but not documented"));
    // Documented but declared by no doc-keys region.
    EXPECT_TRUE(hasMessage(fs, "doc-contract",
                           "documented document key 'ghost_key' is "
                           "not declared"));
    // Matching keys are quiet, including across '<hole>' spellings
    // ('cells.<metric>.mean' unifies on both sides).
    EXPECT_FALSE(hasMessage(fs, "doc-contract", "'schema'"));
    EXPECT_FALSE(hasMessage(fs, "doc-contract", "'rows[].id'"));
    EXPECT_FALSE(hasMessage(fs, "doc-contract", "'cells.*.mean'"));
    EXPECT_EQ(countOf(fs, "doc-contract"), 2u);
}

TEST_F(FixtureRun, NonfiniteGaugeFlagsOnlyUnguardedDivision)
{
    const auto &fs = findings();
    EXPECT_EQ(countOf(fs, "nonfinite-gauge", "src/stats.cc"), 1u);
    EXPECT_EQ(countOf(fs, "nonfinite-gauge"), 2u);
}

TEST_F(FixtureRun, NonfiniteGaugeSeesGuardsOutsideTheClosure)
{
    // stats_helpers.cc divides by helper calls: total() has no guard
    // in its body (fires), safeTotal() guards internally (must not).
    const auto &fs = findings();
    EXPECT_EQ(countOf(fs, "nonfinite-gauge", "src/stats_helpers.cc"),
              1u);
    const auto it = std::find_if(
        fs.begin(), fs.end(), [](const Finding &f) {
            return f.rule == "nonfinite-gauge" &&
                   f.file == "src/stats_helpers.cc";
        });
    ASSERT_NE(it, fs.end());
    // The surviving finding is the total() one (first addGauge call).
    EXPECT_LT(it->line, 28);
}

TEST_F(FixtureRun, DiscardedResultFlagsBareStatementOnly)
{
    const auto &fs = findings();
    EXPECT_EQ(countOf(fs, "discarded-result", "src/discard.cc"), 1u);
    EXPECT_EQ(countOf(fs, "discarded-result"), 1u);
}

TEST_F(FixtureRun, IncludeHygieneFlagsUnusedDirectInclude)
{
    const auto &fs = findings();
    // Gadget appears only in a comment and a string literal of
    // inc_main.cc — the stripped views must not count that as a use.
    EXPECT_TRUE(hasMessage(fs, "include-hygiene",
                           "include \"inc_unused.hh\" is unused"));
    // The used headers must not fire.
    EXPECT_FALSE(
        hasMessage(fs, "include-hygiene", "\"inc_used.hh\""));
    EXPECT_FALSE(
        hasMessage(fs, "include-hygiene", "\"inc_umbrella.hh\""));
}

TEST_F(FixtureRun, IncludeHygieneFlagsTransitiveTypeUse)
{
    const auto &fs = findings();
    EXPECT_TRUE(hasMessage(fs, "include-hygiene",
                           "uses 'Cog' declared in "
                           "\"src/inc_indirect.hh\""));
    // Exactly the unused + missing pair, nothing else in the file.
    EXPECT_EQ(countOf(fs, "include-hygiene", "src/inc_main.cc"), 2u);
}

TEST_F(FixtureRun, IncludeHygieneAmbiguousTypeDoesNotFire)
{
    // Twin is declared by two headers; transitively using it must not
    // produce a missing-direct-include finding.
    EXPECT_FALSE(hasMessage(findings(), "include-hygiene", "'Twin'"));
}

TEST_F(FixtureRun, IncludeHygienePrimaryHeaderIsExempt)
{
    // inc_self.cc includes its own header without using any declared
    // name from it; the self-include convention keeps it clean.
    for (const auto &f : findings())
        EXPECT_NE(f.file, "src/inc_self.cc") << f.rule;
}

TEST_F(FixtureRun, FindingsAreSortedByFileThenLine)
{
    const auto &fs = findings();
    ASSERT_GE(fs.size(), 4u); // the acceptance floor: >=4 rule classes
    for (std::size_t i = 1; i < fs.size(); ++i) {
        if (fs[i - 1].file == fs[i].file)
            EXPECT_LE(fs[i - 1].line, fs[i].line);
        else
            EXPECT_LT(fs[i - 1].file, fs[i].file);
    }
}

TEST(FixtureExtraction, StatRegsAndEventsAreExposed)
{
    RulesFile rf;
    std::string err;
    ASSERT_TRUE(parseRules(readFile(fixtureRoot() + "/rules.txt"),
                           rf, err))
        << err;
    Linter lint(rf, fixtureRoot());
    (void)lint.run({"src", "tests"});

    const auto &regs = lint.statRegs();
    const auto hasReg = [&](const std::string &pat,
                            const std::string &kind) {
        return std::any_of(regs.begin(), regs.end(),
                           [&](const StatReg &r) {
                               return r.pattern == pat &&
                                      r.kind == kind;
                           });
    };
    EXPECT_TRUE(hasReg("app.documented", "counter"));
    EXPECT_TRUE(hasReg("app.rate", "gauge"));

    const auto &events = lint.eventNames();
    EXPECT_NE(std::find(events.begin(), events.end(), "known_event"),
              events.end());
    EXPECT_NE(std::find(events.begin(), events.end(),
                        "undocumented_event"),
              events.end());
}

TEST(FixtureExtraction, TrailingLiteralBecomesDescription)
{
    const SourceFile f = preprocess(
        "src/x.cc",
        "void wire(R &reg) {\n"
        "  reg.addCounter(\"a.b\", &c, \"things counted\");\n"
        "  reg.addHistogram(\"lat.\" + stage + \".ns\",\n"
        "                   \"per-span \" + stage + \" time (ns)\");\n"
        "  reg.addGauge(\"a.c\", g);\n"
        "}\n");
    const auto regs = extractStatRegs(f);
    ASSERT_EQ(regs.size(), 3u);
    EXPECT_EQ(regs[0].desc, "things counted");
    EXPECT_EQ(regs[1].pattern, "lat.*.ns");
    EXPECT_EQ(regs[1].desc, "per-span * time (ns)");
    EXPECT_EQ(regs[2].desc, "");
}

TEST(DocTable, KeepsLiveDropsStaleAppendsNew)
{
    const std::string doc =
        "intro\n"
        "<!-- mct-lint:stat-contract:begin -->\n"
        "| Path | Kind | Meaning |\n"
        "|---|---|---|\n"
        "| `app.kept<i>` | counter | hand-written meaning |\n"
        "| `app.stale` | gauge | gone from code |\n"
        "<!-- mct-lint:stat-contract:end -->\n"
        "middle\n"
        "<!-- mct-lint:event-contract:begin -->\n"
        "| Event | Emitted when | Args |\n"
        "|---|---|---|\n"
        "| `kept_event` | sometimes | `a` |\n"
        "| `stale_event` | never | `b` |\n"
        "<!-- mct-lint:event-contract:end -->\n"
        "outro\n";
    std::vector<StatReg> regs;
    regs.push_back({"app.kept*", "src/a.cc", 1, "counter", ""});
    regs.push_back({"app.fresh", "src/a.cc", 2, "gauge", "new thing"});
    const std::vector<std::string> events = {"kept_event",
                                             "fresh_event"};
    const std::string out = regenerateDocTables(doc, regs, events);

    // Live rows survive verbatim; prose and headers are untouched.
    EXPECT_NE(out.find("hand-written meaning"), std::string::npos);
    EXPECT_NE(out.find("| `kept_event` | sometimes | `a` |"),
              std::string::npos);
    EXPECT_NE(out.find("intro\n"), std::string::npos);
    EXPECT_NE(out.find("| Path | Kind | Meaning |"),
              std::string::npos);
    // Stale rows are gone.
    EXPECT_EQ(out.find("app.stale"), std::string::npos);
    EXPECT_EQ(out.find("stale_event"), std::string::npos);
    // New registrations and events are appended with descriptions.
    EXPECT_NE(out.find("| `app.fresh` | gauge | new thing |"),
              std::string::npos);
    EXPECT_NE(out.find("| `fresh_event` | (undocumented)"),
              std::string::npos);
    // Idempotent: regenerating the regenerated text changes nothing.
    EXPECT_EQ(regenerateDocTables(out, regs, events), out);
}

/** The serialize-contract builtin over its own seeded fixture tree
 *  (tests/lint_fixtures/serial): one class per failure mode, one per
 *  exemption class, and a manifest with a live, a stale, and a
 *  malformed skip entry. */
class SerialFixtureRun : public ::testing::Test
{
  protected:
    static Linter &
    linter()
    {
        static Linter *lint = [] {
            RulesFile rf;
            std::string err;
            const std::string root =
                std::string(MCT_LINT_FIXTURES) + "/serial";
            EXPECT_TRUE(
                parseRules(readFile(root + "/rules.txt"), rf, err))
                << err;
            return new Linter(rf, root);
        }();
        return *lint;
    }

    static const std::vector<Finding> &
    findings()
    {
        static const std::vector<Finding> fs =
            linter().run({"src"});
        return fs;
    }
};

TEST_F(SerialFixtureRun, MissingWriteNamesTheMember)
{
    const auto &fs = findings();
    EXPECT_TRUE(hasMessage(fs, "serialize-contract",
                           "member 'dropped' of 'MissingWrite' is "
                           "never written"));
    // It is read on resume, so only the write side fires.
    EXPECT_FALSE(hasMessage(fs, "serialize-contract",
                            "'dropped' of 'MissingWrite' is never "
                            "read"));
    EXPECT_EQ(countOf(fs, "serialize-contract", "src/missing.hh"),
              2u);
}

TEST_F(SerialFixtureRun, MissingReadNamesTheMember)
{
    EXPECT_TRUE(hasMessage(findings(), "serialize-contract",
                           "member 'ghostRead' of 'MissingRead' is "
                           "never read"));
}

TEST_F(SerialFixtureRun, OrderAsymmetryIsOneFindingPerClass)
{
    const auto &fs = findings();
    EXPECT_TRUE(hasMessage(fs, "serialize-contract",
                           "OrderSwap::deserialize reads 'y' where "
                           "serialize wrote 'x'"));
    // The cascade after the first divergence is suppressed.
    EXPECT_EQ(countOf(fs, "serialize-contract", "src/order_swap.hh"),
              1u);
}

TEST_F(SerialFixtureRun, ManifestSkipSilencesTheMember)
{
    EXPECT_FALSE(
        hasMessage(findings(), "serialize-contract", "'cacheOnly'"));
}

TEST_F(SerialFixtureRun, StaleAndMalformedSkipsAreFindings)
{
    const auto &fs = findings();
    EXPECT_TRUE(hasMessage(fs, "serialize-contract",
                           "stale skip entry 'Stale::ghost'"));
    EXPECT_TRUE(hasMessage(fs, "serialize-contract",
                           "malformed skip entry "
                           "'not-a-valid-entry'"));
}

TEST_F(SerialFixtureRun, SerializeWithoutDeserializeIsFlagged)
{
    EXPECT_TRUE(hasMessage(findings(), "serialize-contract",
                           "class 'WriteOnly' declares "
                           "serialize(Serializer&) but no "
                           "deserialize(Deserializer&)"));
}

TEST_F(SerialFixtureRun, ExemptionsDoNotFire)
{
    const auto &fs = findings();
    // Template class with an uncovered member.
    EXPECT_FALSE(hasMessage(fs, "serialize-contract", "'Box'"));
    // Pure-virtual interface with an interface-level member.
    EXPECT_FALSE(
        hasMessage(fs, "serialize-contract", "'Checkpointable'"));
    // static constexpr / const / reference members of Good.
    EXPECT_EQ(countOf(fs, "serialize-contract", "src/good.hh"), 0u);
}

TEST_F(SerialFixtureRun, OutOfLineBodiesAreAttachedAcrossFiles)
{
    const auto &fs = findings();
    // split.hh declares the pair; split.cc holds full coverage. Both
    // a missing-body finding and per-member findings would be wrong.
    EXPECT_FALSE(hasMessage(fs, "serialize-contract",
                            "'Split' declares"));
    EXPECT_FALSE(hasMessage(fs, "serialize-contract", "'ticks'"));
    EXPECT_FALSE(hasMessage(fs, "serialize-contract", "'ops'"));
}

TEST_F(SerialFixtureRun, InventoryExposesPerMemberStatus)
{
    (void)findings(); // ensure the run happened
    const auto &classes = linter().serialClasses();
    const auto good = std::find_if(
        classes.begin(), classes.end(),
        [](const SerialClass &c) { return c.name == "Good"; });
    ASSERT_NE(good, classes.end());
    const auto status = [&](const std::string &name) -> std::string {
        for (const auto &m : good->members)
            if (m.name == name)
                return !m.exempt.empty()  ? m.exempt
                       : m.skipped        ? "skipped"
                       : m.inSerialize && m.inDeserialize
                           ? "covered"
                           : "missing";
        return "absent";
    };
    EXPECT_EQ(status("a"), "covered");
    EXPECT_EQ(status("streamVersion"), "static");
    EXPECT_EQ(status("geometry"), "const");
    EXPECT_EQ(status("reg"), "reference");

    const auto skipped = std::find_if(
        classes.begin(), classes.end(),
        [](const SerialClass &c) { return c.name == "Skipped"; });
    ASSERT_NE(skipped, classes.end());
    bool sawSkip = false;
    for (const auto &m : skipped->members)
        if (m.name == "cacheOnly")
            sawSkip = m.skipped;
    EXPECT_TRUE(sawSkip);
}

TEST(SerialMutation, DeletingOneWriteYieldsExactlyOneFinding)
{
    // The seeded-mutation acceptance check, in memory: take the clean
    // fixture class, delete the single "s.putU64(b);" line, and the
    // contract must report exactly one finding naming 'b'.
    std::string code = readFile(std::string(MCT_LINT_FIXTURES) +
                                "/serial/src/good.hh");
    const std::string victim = "s.putU64(b);";
    const auto at = code.find(victim);
    ASSERT_NE(at, std::string::npos);
    code.erase(at, victim.size());

    auto classes =
        extractSerialClasses(preprocess("src/good.hh", code));
    RuleSpec rule;
    rule.id = "serialize-contract";
    rule.builtin = "serialize-contract";
    std::vector<Finding> fs;
    checkSerialContract(rule, classes, fs);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_NE(fs[0].message.find("member 'b' of 'Good' is never "
                                 "written"),
              std::string::npos);
}

TEST(FixtureExtraction, DynamicPathsBecomeHoles)
{
    const SourceFile f = preprocess(
        "src/x.cc",
        "void wire(R &reg) {\n"
        "  reg.addCounter(prefix + \".injected.\" + toString(kind),\n"
        "                 &c);\n"
        "  reg.addGauge(\"a.b\", g);\n"
        "}\n");
    const auto regs = extractStatRegs(f);
    ASSERT_EQ(regs.size(), 2u);
    EXPECT_EQ(regs[0].pattern, "*.injected.*");
    EXPECT_EQ(regs[0].kind, "counter");
    EXPECT_EQ(regs[1].pattern, "a.b");
    EXPECT_EQ(regs[1].kind, "gauge");
}

} // namespace
} // namespace mct::lint
