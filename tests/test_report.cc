/**
 * @file
 * Tests for the mct_report library: the JSON reader, the stats /
 * span / profile loaders, the thresholds grammar, percentile
 * reconstruction from serialized buckets, and the diff gates.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/manifest.hh"
#include "report.hh"

namespace mct::report
{
namespace
{

/** Write @p text to a unique temp file; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string &text)
    {
        static int seq = 0;
        path_ = std::string(::testing::TempDir()) + "mct_report_" +
                std::to_string(++seq) + ".json";
        std::ofstream os(path_, std::ios::binary);
        os << text;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

// --------------------------------------------------------------------
// JSON reader
// --------------------------------------------------------------------

TEST(Json, ParsesScalarsContainersAndEscapes)
{
    const JsonParse p = parseJson(
        "{\"a\": 1.5, \"b\": [true, null, -2e3], "
        "\"s\": \"x\\n\\u0041\", \"o\": {\"k\": \"v\"}}");
    ASSERT_TRUE(p.ok) << p.error;
    const JsonValue &v = p.value;
    EXPECT_DOUBLE_EQ(v.num("a", 0.0), 1.5);
    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->arr.size(), 3u);
    EXPECT_EQ(b->arr[0].kind, JsonValue::Kind::Bool);
    EXPECT_TRUE(b->arr[0].boolean);
    EXPECT_EQ(b->arr[1].kind, JsonValue::Kind::Null);
    EXPECT_DOUBLE_EQ(b->arr[2].number, -2000.0);
    EXPECT_EQ(v.find("s")->str, "x\nA");
    EXPECT_EQ(v.find("o")->text("k", ""), "v");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(v.num("missing", 7.0), 7.0);
}

TEST(Json, RejectsMalformedInputWithOffset)
{
    for (const char *bad :
         {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
          "{\"a\":1} trailing", ""}) {
        const JsonParse p = parseJson(bad);
        EXPECT_FALSE(p.ok) << bad;
        EXPECT_NE(p.error.find("offset"), std::string::npos) << bad;
    }
}

// --------------------------------------------------------------------
// RunHistogram percentiles (mirrors LogHistogram::percentile)
// --------------------------------------------------------------------

TEST(RunHistogram, PercentileInterpolatesSerializedBuckets)
{
    // Four observations in bucket [1, 2).
    RunHistogram h;
    h.count = 4;
    h.buckets = {{1.0, 4}};
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 2.0);

    // Bucket 0 spans [0, 1); higher buckets double their low edge.
    RunHistogram g;
    g.count = 4;
    g.buckets = {{0.0, 2}, {2.0, 2}};
    EXPECT_DOUBLE_EQ(g.percentile(0.25), 0.5);
    EXPECT_DOUBLE_EQ(g.percentile(0.75), 3.0);

    EXPECT_DOUBLE_EQ(RunHistogram{}.percentile(0.9), 0.0);
}

// --------------------------------------------------------------------
// Loaders
// --------------------------------------------------------------------

const char *statsDoc(const char *ipc, const char *latency)
{
    static std::string doc;
    doc = std::string("{\"schema\":\"mct-stats-v1\",\"mode\":\"eval\","
                      "\"app\":\"lbm\",\"config\":\"static\","
                      "\"final\":{\"sim.objective.ipc\":") +
          ipc + ",\"memctrl.avg_read_latency_ns\":" + latency +
          ",\"lat.mshr.ns\":{\"count\":4,\"sum\":6.0,"
          "\"buckets\":[[1.0,4]]}},"
          "\"periodic\":[{\"inst\":500,\"delta\":"
          "{\"sim.instructions\":500}}],"
          "\"events\":{\"span_complete\":3},"
          "\"events_recorded\":3,\"events_dropped\":0}";
    return doc.c_str();
}

TEST(Loaders, SnapshotsSplitScalarsAndHistograms)
{
    const TempFile f(statsDoc("0.5", "200.0"));
    RunData run;
    std::string err;
    ASSERT_TRUE(loadSnapshots(f.path(), run, err)) << err;
    EXPECT_EQ(run.app, "lbm");
    EXPECT_EQ(run.mode, "eval");
    EXPECT_DOUBLE_EQ(run.finalScalars.at("sim.objective.ipc"), 0.5);
    ASSERT_EQ(run.finalHists.count("lat.mshr.ns"), 1u);
    EXPECT_EQ(run.finalHists.at("lat.mshr.ns").count, 4u);
    ASSERT_EQ(run.windows.size(), 1u);
    EXPECT_EQ(run.windows[0].inst, 500u);
    EXPECT_DOUBLE_EQ(run.eventCounts.at("span_complete"), 3.0);
}

TEST(Loaders, SnapshotsRejectWrongSchema)
{
    const TempFile f("{\"schema\":\"other-v9\",\"final\":{}}");
    RunData run;
    std::string err;
    EXPECT_FALSE(loadSnapshots(f.path(), run, err));
    EXPECT_NE(err.find("schema"), std::string::npos);
}

TEST(Loaders, SpansConvertPicosecondsToNanoseconds)
{
    const TempFile f(
        "{\"id\":64,\"addr\":4096,\"write\":0,\"hit_level\":0,"
        "\"inst\":100,\"begin_ps\":1000,\"end_ps\":209000,"
        "\"stages\":{\"l1\":[1000,2000],\"bank\":[2000,109000]}}\n");
    SpanSet set;
    std::string err;
    ASSERT_TRUE(loadSpans(f.path(), set, err)) << err;
    ASSERT_EQ(set.spans.size(), 1u);
    const SpanRow &s = set.spans[0];
    EXPECT_EQ(s.id, 64u);
    EXPECT_DOUBLE_EQ(s.totalNs, 208.0);
    EXPECT_DOUBLE_EQ(s.stageNs.at("l1"), 1.0);
    EXPECT_DOUBLE_EQ(s.stageNs.at("bank"), 107.0);
}

// --------------------------------------------------------------------
// Host-telemetry documents (mct-host-v1) and medians
// --------------------------------------------------------------------

const char *hostDoc(const char *mips, const char *stepSeconds)
{
    static std::string doc;
    doc = std::string("{\"schema\":\"mct-host-v1\",\"mode\":\"eval\","
                      "\"app\":\"lbm\",\"config\":\"static\","
                      "\"final\":{\"sim.mips\":") +
          mips +
          ",\"sim.host.wall_seconds\":2.0,"
          "\"sim.host.rss_hwm_kb\":4096},"
          "\"periodic\":[{\"inst\":500,\"delta\":"
          "{\"sim.mips\":1.0}}],"
          "\"stages\":[{\"name\":\"replay\",\"seconds\":0.5,"
          "\"cpu_seconds\":0.4,\"calls\":1},"
          "{\"name\":\"step\",\"seconds\":" +
          stepSeconds + ",\"cpu_seconds\":1.0,\"calls\":20}]}";
    return doc.c_str();
}

TEST(HostDoc, LoadsAsBothSnapshotsAndProfile)
{
    const TempFile f(hostDoc("17.5", "1.5"));

    RunData run;
    std::string err;
    ASSERT_TRUE(loadSnapshots(f.path(), run, err)) << err;
    EXPECT_EQ(run.mode, "eval");
    EXPECT_DOUBLE_EQ(run.finalScalars.at("sim.mips"), 17.5);
    EXPECT_DOUBLE_EQ(run.finalScalars.at("sim.host.rss_hwm_kb"),
                     4096.0);
    ASSERT_EQ(run.windows.size(), 1u);

    Profile prof;
    ASSERT_TRUE(loadProfile(f.path(), prof, err)) << err;
    ASSERT_EQ(prof.stages.size(), 2u);
    EXPECT_EQ(prof.stages[1].name, "step");
    EXPECT_DOUBLE_EQ(prof.stages[1].seconds, 1.5);
    EXPECT_DOUBLE_EQ(prof.stages[1].cpuSeconds, 1.0);
    EXPECT_EQ(prof.stages[1].calls, 20u);
}

TEST(HostDoc, MedianRunsTakesPerMetricMedian)
{
    const TempFile a(hostDoc("10.0", "1.0"));
    const TempFile b(hostDoc("30.0", "2.0"));
    const TempFile c(hostDoc("12.0", "9.0"));
    std::vector<RunData> runs(3);
    std::string err;
    ASSERT_TRUE(loadSnapshots(a.path(), runs[0], err)) << err;
    ASSERT_TRUE(loadSnapshots(b.path(), runs[1], err)) << err;
    ASSERT_TRUE(loadSnapshots(c.path(), runs[2], err)) << err;

    const RunData med = medianRuns(runs);
    EXPECT_EQ(med.mode, "eval");
    EXPECT_DOUBLE_EQ(med.finalScalars.at("sim.mips"), 12.0);
    EXPECT_DOUBLE_EQ(med.finalScalars.at("sim.host.wall_seconds"),
                     2.0);

    // Even count: mean of the two middles.
    runs.pop_back();
    EXPECT_DOUBLE_EQ(medianRuns(runs).finalScalars.at("sim.mips"),
                     20.0);
}

TEST(HostDoc, MedianProfilesKeepsFirstProfileOrder)
{
    const TempFile a(hostDoc("10.0", "1.0"));
    const TempFile b(hostDoc("10.0", "3.0"));
    const TempFile c(hostDoc("10.0", "2.0"));
    std::vector<Profile> profs(3);
    std::string err;
    ASSERT_TRUE(loadProfile(a.path(), profs[0], err)) << err;
    ASSERT_TRUE(loadProfile(b.path(), profs[1], err)) << err;
    ASSERT_TRUE(loadProfile(c.path(), profs[2], err)) << err;

    const Profile med = medianProfiles(profs);
    ASSERT_EQ(med.stages.size(), 2u);
    EXPECT_EQ(med.stages[0].name, "replay");
    EXPECT_EQ(med.stages[1].name, "step");
    EXPECT_DOUBLE_EQ(med.stages[1].seconds, 2.0);
    EXPECT_DOUBLE_EQ(med.stages[1].cpuSeconds, 1.0);
}

TEST(HostDoc, SimMipsGateTripsOnlyOnCatastrophicSlowdown)
{
    Thresholds th;
    std::string err;
    ASSERT_TRUE(parseThresholds("metric sim.mips\n"
                                "  direction higher\n"
                                "  rel 0.85\n",
                                th, err))
        << err;

    const TempFile base(hostDoc("10.0", "1.0"));
    RunData b;
    ASSERT_TRUE(loadSnapshots(base.path(), b, err)) << err;

    // Half the baseline rate: noisy, but within the generous slack.
    const TempFile slow(hostDoc("5.0", "2.0"));
    RunData s;
    ASSERT_TRUE(loadSnapshots(slow.path(), s, err)) << err;
    EXPECT_EQ(diffRuns(b, s, th).regressions, 0u);

    // Below 15% of baseline: the accidental-O(n^2) case.
    const TempFile dead(hostDoc("1.0", "10.0"));
    RunData d;
    ASSERT_TRUE(loadSnapshots(dead.path(), d, err)) << err;
    const DiffReport rep = diffRuns(b, d, th);
    EXPECT_EQ(rep.regressions, 1u);
    ASSERT_EQ(rep.checks.size(), 1u);
    EXPECT_EQ(rep.checks[0].metric, "sim.mips");
}

// --------------------------------------------------------------------
// Run manifests (mct-manifest-v1) + fleet rollup (mct-fleet-v1)
// --------------------------------------------------------------------

std::string
baseName(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Manifest text naming @p artifacts (kind, on-disk path) with real
 *  checksums, written next to the artifacts so relative paths hold. */
std::string
manifestText(
    const std::string &runId, const std::string &app, int seed,
    const std::vector<std::pair<std::string, std::string>> &artifacts)
{
    std::ostringstream os;
    os << "{\"schema\":\"mct-manifest-v1\",\"run_id\":\"" << runId
       << "\",\"mode\":\"eval\",\"app\":\"" << app
       << "\",\"config\":\"\",\"seed\":" << seed
       << ",\"fault_plan\":\"\",\"fingerprint\":\"fp-" << runId
       << "\",\"artifacts\":[";
    for (std::size_t i = 0; i < artifacts.size(); ++i) {
        std::uint64_t sum = 0, bytes = 0;
        EXPECT_TRUE(checksumFile(artifacts[i].second, sum, bytes));
        os << (i ? "," : "") << "{\"kind\":\"" << artifacts[i].first
           << "\",\"schema\":\"mct-stats-v1\",\"path\":\""
           << baseName(artifacts[i].second) << "\",\"bytes\":" << bytes
           << ",\"fnv1a\":\"" << checksumHex(sum) << "\"}";
    }
    os << "]}";
    return os.str();
}

/** A tiny mct-stats-v1 document with a counter, a gauge, and one
 *  histogram, plus the kinds map the aggregator recovers kinds from. */
std::string
fleetStatsDoc(const char *work, const char *ipc, const char *buckets)
{
    return std::string("{\"schema\":\"mct-stats-v1\",\"mode\":\"eval\","
                       "\"app\":\"lbm\",\"config\":\"\",\"final\":{"
                       "\"work.done\":") +
           work + ",\"sim.objective.ipc\":" + ipc +
           ",\"lat.q.ns\":{\"count\":3,\"sum\":19.0,\"buckets\":[" +
           buckets +
           "]}},\"kinds\":{\"work.done\":\"counter\","
           "\"sim.objective.ipc\":\"gauge\"}}";
}

TEST(Manifest, LoadsAndVerifiesRoundTrip)
{
    const TempFile stats(fleetStatsDoc("10", "1.0", "[1.0,3]"));
    const TempFile mf(
        manifestText("r1", "lbm", 1, {{"stats", stats.path()}}));

    ManifestData m;
    std::string err;
    ASSERT_TRUE(loadManifest(mf.path(), m, err)) << err;
    EXPECT_EQ(m.runId, "r1");
    EXPECT_EQ(m.mode, "eval");
    EXPECT_EQ(m.app, "lbm");
    EXPECT_EQ(m.seed, 1u);
    ASSERT_EQ(m.artifacts.size(), 1u);
    ASSERT_NE(m.artifact("stats"), nullptr);
    EXPECT_EQ(m.artifact("spans"), nullptr);
    EXPECT_EQ(m.artifactPath(*m.artifact("stats")), stats.path());
    EXPECT_TRUE(verifyManifest(m, err)) << err;

    std::string key;
    ASSERT_TRUE(m.groupKey("app", key));
    EXPECT_EQ(key, "lbm");
    ASSERT_TRUE(m.groupKey("seed", key));
    EXPECT_EQ(key, "1");
    EXPECT_FALSE(m.groupKey("nonsense", key));
}

TEST(Manifest, RejectsWrongSchema)
{
    const TempFile mf("{\"schema\":\"mct-stats-v1\",\"artifacts\":[]}");
    ManifestData m;
    std::string err;
    EXPECT_FALSE(loadManifest(mf.path(), m, err));
    EXPECT_NE(err.find("schema"), std::string::npos);
}

TEST(Manifest, TamperedArtifactIsANamedIntegrityError)
{
    const TempFile stats(fleetStatsDoc("10", "1.0", "[1.0,3]"));
    const TempFile mf(
        manifestText("r1", "lbm", 1, {{"stats", stats.path()}}));

    // Flip the artifact under the manifest's feet.
    std::ofstream(stats.path(), std::ios::binary) << "tampered";

    ManifestData m;
    std::string err;
    ASSERT_TRUE(loadManifest(mf.path(), m, err)) << err;
    EXPECT_FALSE(verifyManifest(m, err));
    EXPECT_EQ(err.rfind("integrity error:", 0), 0u) << err;

    // ... which aggregate surfaces verbatim (and --no-verify skips).
    FleetReport fleet;
    EXPECT_FALSE(
        aggregateManifests({mf.path()}, AggregateOptions{}, fleet, err));
    EXPECT_EQ(err.rfind("integrity error:", 0), 0u) << err;
    AggregateOptions loose;
    loose.verify = false;
    EXPECT_FALSE(
        aggregateManifests({mf.path()}, loose, fleet, err));
    EXPECT_EQ(err.find("integrity error:"), std::string::npos) << err;
}

TEST(Fleet, AggregatesMergesAndStaysPermutationIdentical)
{
    // run1 hist: 1@[0,1), 1@[2,4), 1@[8,16); run2: 2@[2,4), 1@[16,32).
    const TempFile s1(
        fleetStatsDoc("10", "1.0", "[0.0,1],[2.0,1],[8.0,1]"));
    const TempFile s2(fleetStatsDoc("32", "2.0", "[2.0,2],[16.0,1]"));
    const TempFile m1(
        manifestText("r1", "lbm", 1, {{"stats", s1.path()}}));
    const TempFile m2(
        manifestText("r2", "lbm", 2, {{"stats", s2.path()}}));

    FleetReport fleet;
    std::string err;
    ASSERT_TRUE(aggregateManifests({m1.path(), m2.path()},
                                   AggregateOptions{}, fleet, err))
        << err;
    EXPECT_EQ(fleet.runs, 2u);
    EXPECT_DOUBLE_EQ(fleet.all.merged.at("work.done").num, 42.0);
    EXPECT_DOUBLE_EQ(fleet.all.merged.at("sim.objective.ipc").num,
                     1.5);
    const StatValue &h = fleet.all.merged.at("lat.q.ns");
    EXPECT_EQ(h.count, 6u);
    // Dense log2 buckets: [0,1)=1, [2,4)=3, [8,16)=1, [16,32)=1.
    const std::vector<std::uint64_t> want{1, 0, 3, 0, 1, 1};
    EXPECT_EQ(h.buckets, want);

    std::ostringstream fwd;
    writeFleetDoc(fwd, fleet);
    FleetReport rev;
    ASSERT_TRUE(aggregateManifests({m2.path(), m1.path()},
                                   AggregateOptions{}, rev, err))
        << err;
    std::ostringstream bwd;
    writeFleetDoc(bwd, rev);
    EXPECT_EQ(fwd.str(), bwd.str());

    // The fleet document gates like any stats document: it loads
    // through the standard reader with kinds intact.
    const TempFile doc(fwd.str());
    RunData run;
    ASSERT_TRUE(loadSnapshots(doc.path(), run, err)) << err;
    EXPECT_DOUBLE_EQ(run.finalScalars.at("sim.objective.ipc"), 1.5);
    EXPECT_DOUBLE_EQ(run.finalScalars.at("sim.fleet.runs"), 2.0);
    EXPECT_DOUBLE_EQ(run.finalScalars.at("fleet.sim.objective.ipc.max"),
                     2.0);
    EXPECT_EQ(run.kinds.at("work.done"), "counter");
}

TEST(Fleet, SingleRunAggregateIsIdentity)
{
    const TempFile s1(
        fleetStatsDoc("10", "1.0", "[0.0,1],[2.0,1],[8.0,1]"));
    const TempFile m1(
        manifestText("r1", "lbm", 1, {{"stats", s1.path()}}));

    FleetReport fleet;
    std::string err;
    ASSERT_TRUE(aggregateManifests({m1.path()}, AggregateOptions{},
                                   fleet, err))
        << err;
    EXPECT_EQ(fleet.runs, 1u);
    EXPECT_DOUBLE_EQ(fleet.all.merged.at("work.done").num, 10.0);
    EXPECT_DOUBLE_EQ(fleet.all.merged.at("sim.objective.ipc").num,
                     1.0);
    EXPECT_EQ(fleet.all.merged.at("lat.q.ns").count, 3u);
    EXPECT_DOUBLE_EQ(
        fleet.all.gauges.at("sim.objective.ipc").stddev, 0.0);
    EXPECT_EQ(fleet.outliers, 0u);
}

TEST(Fleet, GroupsBySeedAndFlagsDispersionOutliers)
{
    const TempFile s1(fleetStatsDoc("1", "1.0", "[1.0,1]"));
    const TempFile s2(fleetStatsDoc("1", "1.0", "[1.0,1]"));
    const TempFile s3(fleetStatsDoc("1", "10.0", "[1.0,1]"));
    const TempFile m1(
        manifestText("r1", "lbm", 1, {{"stats", s1.path()}}));
    const TempFile m2(
        manifestText("r2", "lbm", 2, {{"stats", s2.path()}}));
    const TempFile m3(
        manifestText("r3", "lbm", 3, {{"stats", s3.path()}}));

    AggregateOptions opt;
    opt.outlierK = 1.0;
    FleetReport fleet;
    std::string err;
    ASSERT_TRUE(aggregateManifests(
        {m1.path(), m2.path(), m3.path()}, opt, fleet, err))
        << err;
    // Ungrouped: one "all" bucket; 1.0/1.0/10.0 puts only the 10.0
    // run past 1 stddev from the mean.
    ASSERT_EQ(fleet.groups.size(), 1u);
    EXPECT_EQ(fleet.groups[0].key, "all");
    EXPECT_EQ(fleet.outliers, 1u);
    bool flagged = false;
    for (const FleetOutlier &o : fleet.groups[0].outliers)
        if (o.metric == "sim.objective.ipc" && o.runId == "r3")
            flagged = true;
    EXPECT_TRUE(flagged);

    opt.groupBy = "seed";
    ASSERT_TRUE(aggregateManifests(
        {m1.path(), m2.path(), m3.path()}, opt, fleet, err))
        << err;
    ASSERT_EQ(fleet.groups.size(), 3u);
    EXPECT_EQ(fleet.groups[0].key, "1");
    EXPECT_EQ(fleet.groups[0].runIds,
              (std::vector<std::string>{"r1"}));
    // Single-run groups cannot disperse.
    EXPECT_EQ(fleet.outliers, 0u);
}

TEST(Fleet, DocKeySetsCoverTheEmittedSpellings)
{
    EXPECT_NE(std::find(manifestDocKeys().begin(),
                        manifestDocKeys().end(), "artifacts[].fnv1a"),
              manifestDocKeys().end());
    EXPECT_NE(std::find(fleetDocKeys().begin(), fleetDocKeys().end(),
                        "sim.fleet.runs"),
              fleetDocKeys().end());
}

// --------------------------------------------------------------------
// Thresholds grammar
// --------------------------------------------------------------------

TEST(Thresholds, ParsesBlocksAndDefaults)
{
    Thresholds th;
    std::string err;
    ASSERT_TRUE(parseThresholds("# gate\n"
                                "metric sim.objective.ipc\n"
                                "  direction higher\n"
                                "  rel 0.10\n"
                                "metric cache.*.hit_rate\n"
                                "  direction higher\n"
                                "  abs 0.005\n",
                                th, err))
        << err;
    ASSERT_EQ(th.rules.size(), 2u);
    EXPECT_TRUE(th.rules[0].higherIsBetter);
    EXPECT_DOUBLE_EQ(th.rules[0].rel, 0.10);
    EXPECT_DOUBLE_EQ(th.rules[1].abs, 0.005);

    // The built-in defaults must themselves parse.
    Thresholds dflt;
    EXPECT_TRUE(parseThresholds(defaultThresholdsText(), dflt, err))
        << err;
    EXPECT_FALSE(dflt.rules.empty());
}

TEST(Thresholds, ErrorsCarryLineNumbers)
{
    Thresholds th;
    std::string err;
    // Key outside a metric block.
    EXPECT_FALSE(parseThresholds("direction higher\n", th, err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    // Missing required direction.
    EXPECT_FALSE(parseThresholds("metric a.b\n  rel 0.1\n", th, err));
    // Unknown key and bad number.
    EXPECT_FALSE(parseThresholds(
        "metric a\n  direction higher\n  frobnicate 3\n", th, err));
    EXPECT_FALSE(parseThresholds(
        "metric a\n  direction higher\n  rel quick\n", th, err));
    EXPECT_FALSE(parseThresholds(
        "metric a\n  direction sideways\n", th, err));
}

TEST(Thresholds, GlobMatchesSubstringsNotDots)
{
    EXPECT_TRUE(metricGlobMatch("cache.*.hit_rate",
                                "cache.l1d.hit_rate"));
    EXPECT_TRUE(metricGlobMatch("sim.objective.ipc",
                                "sim.objective.ipc"));
    EXPECT_FALSE(metricGlobMatch("sim.objective.ipc",
                                 "sim.objective.ipcX"));
    EXPECT_TRUE(metricGlobMatch("lat.*", "lat.mshr.p99_ns"));
    EXPECT_FALSE(metricGlobMatch("lat.*", "latency"));
}

// --------------------------------------------------------------------
// Diff gates
// --------------------------------------------------------------------

Thresholds ipcAndLatencyGates()
{
    Thresholds th;
    std::string err;
    EXPECT_TRUE(parseThresholds("metric sim.objective.ipc\n"
                                "  direction higher\n"
                                "  rel 0.05\n"
                                "metric memctrl.avg_read_latency_ns\n"
                                "  direction lower\n"
                                "  rel 0.10\n",
                                th, err))
        << err;
    return th;
}

TEST(Diff, CleanWhenWithinThresholds)
{
    const TempFile base(statsDoc("0.500", "200.0"));
    const TempFile cur(statsDoc("0.495", "210.0")); // -1%, +5%
    RunData b, c;
    std::string err;
    ASSERT_TRUE(loadSnapshots(base.path(), b, err)) << err;
    ASSERT_TRUE(loadSnapshots(cur.path(), c, err)) << err;

    const DiffReport rep = diffRuns(b, c, ipcAndLatencyGates());
    EXPECT_EQ(rep.regressions, 0u);
    ASSERT_EQ(rep.checks.size(), 2u);
    for (const CheckResult &r : rep.checks)
        EXPECT_FALSE(r.regressed) << r.metric;
}

TEST(Diff, FlagsSlipsPastTheGateInEitherDirection)
{
    const TempFile base(statsDoc("0.500", "200.0"));
    const TempFile cur(statsDoc("0.400", "250.0")); // -20%, +25%
    RunData b, c;
    std::string err;
    ASSERT_TRUE(loadSnapshots(base.path(), b, err)) << err;
    ASSERT_TRUE(loadSnapshots(cur.path(), c, err)) << err;

    const DiffReport rep = diffRuns(b, c, ipcAndLatencyGates());
    EXPECT_EQ(rep.regressions, 2u);

    // Improvements never regress, however large.
    const TempFile better(statsDoc("0.900", "100.0"));
    RunData g;
    ASSERT_TRUE(loadSnapshots(better.path(), g, err)) << err;
    EXPECT_EQ(diffRuns(b, g, ipcAndLatencyGates()).regressions, 0u);
}

TEST(Diff, ReportsMetricsMissingFromBase)
{
    const TempFile base(statsDoc("0.5", "200.0"));
    RunData b, c;
    std::string err;
    ASSERT_TRUE(loadSnapshots(base.path(), b, err)) << err;
    c = b;
    c.finalScalars["memctrl.avg_write_latency_ns"] = 1.0;

    Thresholds th;
    ASSERT_TRUE(parseThresholds(
        "metric memctrl.avg_*\n  direction lower\n", th, err))
        << err;
    const DiffReport rep = diffRuns(b, c, th);
    ASSERT_EQ(rep.missingInBase.size(), 1u);
    EXPECT_EQ(rep.missingInBase[0], "memctrl.avg_write_latency_ns");
    EXPECT_EQ(rep.regressions, 0u);
}

TEST(Diff, BenchReportRoundTripsThroughTheJsonReader)
{
    const TempFile base(statsDoc("0.500", "200.0"));
    const TempFile cur(statsDoc("0.400", "250.0"));
    RunData b, c;
    std::string err;
    ASSERT_TRUE(loadSnapshots(base.path(), b, err)) << err;
    ASSERT_TRUE(loadSnapshots(cur.path(), c, err)) << err;
    const DiffReport rep = diffRuns(b, c, ipcAndLatencyGates());

    std::ostringstream os;
    writeBenchReport(os, b, c, rep);
    const JsonParse p = parseJson(os.str());
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.value.text("schema", ""), "mct-bench-report-v1");
    EXPECT_DOUBLE_EQ(p.value.num("regressions", -1.0), 2.0);
    const JsonValue *passed = p.value.find("passed");
    ASSERT_NE(passed, nullptr);
    EXPECT_FALSE(passed->boolean);
    ASSERT_NE(p.value.find("checks"), nullptr);
    EXPECT_EQ(p.value.find("checks")->arr.size(), rep.checks.size());
}

} // namespace
} // namespace mct::report
