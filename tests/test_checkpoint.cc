/**
 * @file
 * Crash-safe checkpoint/restore tests: the binary codec and its FNV
 * checksum, atomic file publication, the double-buffered
 * CheckpointStore (sequence continuation, corrupt-slot quarantine,
 * version skew), per-component state round-trips, and end-to-end
 * resume equivalence — a run restored mid-flight must re-produce the
 * uninterrupted run's state byte for byte.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/alerts.hh"
#include "common/atomic_file.hh"
#include "common/instrument.hh"
#include "common/serialize.hh"
#include "mct/controller.hh"
#include "sim/checkpoint.hh"
#include "sim/fault_injector.hh"
#include "sim/system.hh"

namespace mct
{
namespace
{

/** Fresh per-test path inside the gtest temp dir. */
std::string
tmpPath(const std::string &name)
{
    const std::string p = std::string(::testing::TempDir()) +
                          "mct_ckpt_" + name;
    std::remove(p.c_str());
    std::remove((p + ".0").c_str());
    std::remove((p + ".1").c_str());
    std::remove((p + ".0.corrupt").c_str());
    std::remove((p + ".1.corrupt").c_str());
    return p;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
exists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path));
}

TEST(Fnv1a, ReferenceVectors)
{
    EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(SerializeCodec, RoundTripAllTypes)
{
    Serializer s;
    s.putU8(0xab);
    s.putBool(true);
    s.putBool(false);
    s.putU32(0xdeadbeefU);
    s.putU64(0x0123456789abcdefULL);
    s.putI64(-42);
    s.putF64(-1234.5678);
    const std::string nul("hello\0world", 11);
    s.putStr(nul); // embedded NUL must survive
    s.putStr("");

    Deserializer d(s.data().data(), s.size());
    EXPECT_EQ(d.getU8(), 0xab);
    EXPECT_TRUE(d.getBool());
    EXPECT_FALSE(d.getBool());
    EXPECT_EQ(d.getU32(), 0xdeadbeefU);
    EXPECT_EQ(d.getU64(), 0x0123456789abcdefULL);
    EXPECT_EQ(d.getI64(), -42);
    EXPECT_EQ(d.getF64(), -1234.5678);
    EXPECT_EQ(d.getStr(), nul);
    EXPECT_EQ(d.getStr(), "");
    EXPECT_TRUE(d.atEnd());
}

TEST(SerializeCodec, UnderrunFailsCleanly)
{
    Serializer s;
    s.putU32(7);
    Deserializer d(s.data().data(), s.size());
    EXPECT_EQ(d.getU64(), 0u); // 4 bytes short
    EXPECT_FALSE(d.ok());
    EXPECT_FALSE(d.atEnd());
}

TEST(AtomicFileTest, CommitPublishesContent)
{
    const std::string path = tmpPath("atomic.txt");
    AtomicFile f(path);
    f.stream() << "line one\n";
    ASSERT_TRUE(f.commit());
    EXPECT_EQ(slurp(path), "line one\n");
    EXPECT_FALSE(exists(path + ".tmp"));
}

TEST(AtomicFileTest, NoCommitLeavesTargetUntouched)
{
    const std::string path = tmpPath("atomic_keep.txt");
    ASSERT_TRUE(writeFileAtomic(path, "original"));
    {
        AtomicFile f(path);
        f.stream() << "discarded";
    }
    EXPECT_EQ(slurp(path), "original");
}

TEST(CheckpointStoreTest, SaveLoadRoundTrip)
{
    CheckpointStore store(tmpPath("rt"));
    ASSERT_TRUE(store.save("fp-1", "payload-bytes"));
    const CheckpointLoadResult r = store.load();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.payload, "payload-bytes");
    EXPECT_EQ(r.fingerprint, "fp-1");
    EXPECT_EQ(r.sequence, 1u);
    EXPECT_FALSE(r.corruptRejected);
    EXPECT_EQ(store.writes(), 1u);
}

TEST(CheckpointStoreTest, DoubleBufferKeepsPreviousSlot)
{
    const std::string base = tmpPath("db");
    CheckpointStore store(base);
    ASSERT_TRUE(store.save("fp", "first"));
    ASSERT_TRUE(store.save("fp", "second"));
    ASSERT_TRUE(store.save("fp", "third"));
    // Slots alternate; both files must exist and load() must pick the
    // highest sequence.
    EXPECT_TRUE(exists(base + ".0"));
    EXPECT_TRUE(exists(base + ".1"));
    const CheckpointLoadResult r = store.load();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.payload, "third");
    EXPECT_EQ(r.sequence, 3u);
}

TEST(CheckpointStoreTest, SequenceContinuesAcrossRestart)
{
    const std::string base = tmpPath("seq");
    {
        CheckpointStore store(base);
        ASSERT_TRUE(store.save("fp", "one"));
        ASSERT_TRUE(store.save("fp", "two"));
    }
    // A new store over the same base (a resumed process) must not
    // reuse sequence numbers or clobber the newest slot first.
    CheckpointStore store(base);
    ASSERT_TRUE(store.save("fp", "three"));
    const CheckpointLoadResult r = store.load();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.sequence, 3u);
    EXPECT_EQ(r.payload, "three");
}

TEST(CheckpointStoreTest, TruncatedSlotQuarantinedWithFallback)
{
    const std::string base = tmpPath("trunc");
    CheckpointStore store(base);
    ASSERT_TRUE(store.save("fp", "good-old"));
    ASSERT_TRUE(store.save("fp", "newest"));
    const std::string newest = store.newestSlot();
    const std::string body = slurp(newest);
    {
        std::ofstream out(newest,
                          std::ios::binary | std::ios::trunc);
        out << body.substr(0, body.size() / 2);
    }
    const CheckpointLoadResult r = store.load();
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.corruptRejected);
    EXPECT_EQ(r.payload, "good-old");
    EXPECT_EQ(r.sequence, 1u);
    EXPECT_EQ(store.corruptLoads(), 1u);
    EXPECT_TRUE(exists(newest + ".corrupt"));
    EXPECT_FALSE(exists(newest));
}

TEST(CheckpointStoreTest, BitFlipRejectedByChecksum)
{
    const std::string base = tmpPath("flip");
    CheckpointStore store(base);
    ASSERT_TRUE(store.save("fp", "older"));
    ASSERT_TRUE(store.save("fp", "newer"));
    const std::string newest = store.newestSlot();
    std::string body = slurp(newest);
    body[body.size() / 3] ^= 0x04;
    {
        std::ofstream out(newest,
                          std::ios::binary | std::ios::trunc);
        out << body;
    }
    const CheckpointLoadResult r = store.load();
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.corruptRejected);
    EXPECT_EQ(r.payload, "older");
    EXPECT_EQ(store.corruptLoads(), 1u);
}

TEST(CheckpointStoreTest, FaultInjectorCorruptionIsRejected)
{
    const std::string base = tmpPath("inj");
    CheckpointStore store(base);
    ASSERT_TRUE(store.save("fp", "older"));
    ASSERT_TRUE(store.save("fp", "newer"));

    const FaultPlanParse plan = parseFaultPlan("corrupt-ckpt");
    ASSERT_TRUE(plan.ok) << plan.error;
    FaultInjector inj(plan.plan, 7);
    EXPECT_TRUE(inj.wantsCkptCorruption());
    EXPECT_TRUE(inj.corruptCheckpointFile(store.newestSlot()));
    EXPECT_EQ(inj.injected(FaultKind::CkptCorrupt), 1u);

    const CheckpointLoadResult r = store.load();
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.corruptRejected);
    EXPECT_EQ(r.payload, "older");
}

/** Build a checkpoint file with an arbitrary format version. */
void
writeVersionSkewed(const std::string &file, std::uint32_t version)
{
    static constexpr char magic[8] = {'M', 'C', 'T', 'C',
                                      'K', 'P', 'T', '\0'};
    Serializer s;
    for (const char c : magic)
        s.putU8(static_cast<std::uint8_t>(c));
    s.putU32(version);
    s.putU64(1);
    s.putStr("fp");
    s.putStr("payload");
    s.putU64(fnv1a(s.data().data(), s.size()));
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out << s.data();
}

TEST(CheckpointStoreTest, FutureFormatVersionRejected)
{
    const std::string base = tmpPath("ver");
    writeVersionSkewed(base + ".0",
                       checkpointFormatVersion + 1);
    CheckpointStore store(base);
    const CheckpointLoadResult r = store.load();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("format version"), std::string::npos)
        << r.error;
    EXPECT_EQ(store.corruptLoads(), 1u);
    EXPECT_TRUE(exists(base + ".0.corrupt"));
}

TEST(CheckpointStoreTest, MissingCheckpointReportsError)
{
    CheckpointStore store(tmpPath("missing"));
    const CheckpointLoadResult r = store.load();
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
    EXPECT_EQ(store.corruptLoads(), 0u); // missing is not corrupt
}

TEST(CheckpointStoreTest, HostScopedStats)
{
    CheckpointStore store(tmpPath("stats"));
    ASSERT_TRUE(store.save("fp", "x"));
    store.noteResume();
    StatRegistry reg;
    store.registerStats(reg);
    const StatSnapshot sim = reg.snapshot(StatScope::Sim);
    EXPECT_EQ(sim.count("ckpt.writes"), 0u)
        << "ckpt stats must not leak into deterministic snapshots";
    const StatSnapshot host = reg.snapshot(StatScope::Host);
    ASSERT_EQ(host.count("ckpt.writes"), 1u);
    EXPECT_EQ(host.at("ckpt.writes").num, 1.0);
    EXPECT_EQ(host.at("ckpt.resumes").num, 1.0);
}

/** Serialize the full deterministic state of @p sys. */
std::string
stateBytes(const System &sys)
{
    Serializer s;
    sys.serialize(s);
    return s.data();
}

TEST(SystemRoundTrip, RestoreReproducesStateBytes)
{
    SystemParams sp;
    const MellowConfig cfg = staticBaselineConfig();
    System a("lbm", sp, cfg);
    a.eventTrace().enable(1024);
    a.enableSpans(64, 512);
    a.run(120 * 1000);

    const std::string bytes = stateBytes(a);
    System b("lbm", sp, cfg);
    b.eventTrace().enable(1024);
    b.enableSpans(64, 512);
    Deserializer d(bytes);
    b.deserialize(d);
    EXPECT_TRUE(d.atEnd());
    EXPECT_EQ(stateBytes(b), bytes);
    EXPECT_EQ(b.retired(), a.retired());
    EXPECT_EQ(b.now(), a.now());
    Serializer snapA;
    Serializer snapB;
    serializeSnapshot(snapA, a.statRegistry().snapshot());
    serializeSnapshot(snapB, b.statRegistry().snapshot());
    EXPECT_EQ(snapB.data(), snapA.data());
}

TEST(SystemRoundTrip, RestoredRunMatchesUninterrupted)
{
    SystemParams sp;
    const MellowConfig cfg = staticBaselineConfig();

    // Uninterrupted reference: 100k then 150k more.
    System a("lbm", sp, cfg);
    a.eventTrace().enable(512);
    a.run(100 * 1000);
    const std::string mid = stateBytes(a);
    a.run(150 * 1000);

    // "Crashed" at 100k, restored into a fresh system, run forward.
    System b("lbm", sp, cfg);
    b.eventTrace().enable(512);
    Deserializer d(mid);
    b.deserialize(d);
    ASSERT_TRUE(d.atEnd());
    b.run(150 * 1000);

    EXPECT_EQ(stateBytes(b), stateBytes(a));
    EXPECT_EQ(b.retired(), a.retired());
}

/** Scaled-down runtime parameters so controller tests stay quick. */
MctParams
fastParams()
{
    MctParams p;
    p.sampling.unitInsts = 2000;
    p.sampling.settleInsts = 1000;
    p.sampling.rounds = 2;
    p.healthCheckPeriod = 300 * 1000;
    return p;
}

/** Serialize system + controller exactly as the driver does. */
std::string
fullStateBytes(const System &sys, const MctController &ctl)
{
    Serializer s;
    sys.serialize(s);
    ctl.serialize(s);
    return s.data();
}

TEST(ControllerRoundTrip, RestoredRunMatchesUninterrupted)
{
    SystemParams sp;
    const MctParams mp = fastParams();

    System sysA("lbm", sp, staticBaselineConfig());
    sysA.eventTrace().enable(1024);
    sysA.provenanceTrace().enable(256);
    sysA.run(50 * 1000);
    MctController ctlA(sysA, mp);
    ctlA.runFor(300 * 1000);
    const std::string mid = fullStateBytes(sysA, ctlA);
    ctlA.runFor(200 * 1000);

    // Restore order mirrors the driver: construct, overlay system,
    // overlay controller, then continue.
    System sysB("lbm", sp, staticBaselineConfig());
    sysB.eventTrace().enable(1024);
    sysB.provenanceTrace().enable(256);
    MctController ctlB(sysB, mp);
    Deserializer d(mid);
    sysB.deserialize(d);
    ctlB.deserialize(d);
    ASSERT_TRUE(d.atEnd());
    ctlB.runFor(200 * 1000);

    EXPECT_EQ(fullStateBytes(sysB, ctlB),
              fullStateBytes(sysA, ctlA));
    EXPECT_EQ(ctlB.decisions().size(), ctlA.decisions().size());
    EXPECT_EQ(toString(ctlB.currentConfig()),
              toString(ctlA.currentConfig()));
}

TEST(ControllerRoundTrip, KillAtEveryChunkBoundaryResumesIdentically)
{
    SystemParams sp;
    const MctParams mp = fastParams();
    constexpr InstCount chunk = 100 * 1000;
    constexpr int chunks = 4;

    // The uninterrupted run, checkpointing at every chunk boundary.
    System sysA("lbm", sp, staticBaselineConfig());
    sysA.run(50 * 1000);
    MctController ctlA(sysA, mp);
    std::vector<std::string> snaps;
    for (int k = 0; k < chunks; ++k) {
        ctlA.runFor(chunk);
        snaps.push_back(fullStateBytes(sysA, ctlA));
    }

    // Kill after chunk K, restore, run the remainder: the final state
    // must match the uninterrupted run's for every K.
    for (int k = 0; k < chunks - 1; ++k) {
        System sysB("lbm", sp, staticBaselineConfig());
        MctController ctlB(sysB, mp);
        Deserializer d(snaps[static_cast<std::size_t>(k)]);
        sysB.deserialize(d);
        ctlB.deserialize(d);
        ASSERT_TRUE(d.atEnd());
        for (int r = k + 1; r < chunks; ++r)
            ctlB.runFor(chunk);
        EXPECT_EQ(fullStateBytes(sysB, ctlB), snaps.back())
            << "kill after chunk " << k;
    }
}

/** The alert rule set for resume-identity tests: guaranteed to raise
 *  (instructions always flow) so the log ring, streaks, and counters
 *  all carry nontrivial state across the checkpoint. */
std::vector<AlertRule>
smokeAlertRules()
{
    AlertRule r;
    r.name = "insts-flowing";
    r.glob = "sim.instructions";
    r.cond = AlertCondition::Above;
    r.threshold = 0.0;
    r.windows = 2;
    return {r};
}

void
armObservability(System &sys)
{
    // Capacity 3 < the 4 windows observed, so the resume also has to
    // reproduce ring wraparound and dropped-window accounting.
    sys.enableTimeline({"sim.objective.*", "sim.instructions"}, 3);
    sys.enableAlerts(smokeAlertRules());
}

/** The two telemetry surfaces a resumed run must reproduce
 *  byte-for-byte: the timeline document and the alert log. */
std::string
observabilityBytes(const System &sys)
{
    std::ostringstream os;
    std::map<std::string, double> fin;
    sys.alerts().appendFinal(fin);
    sys.timeline().writeJson(os, "mct", "lbm", "cfg", fin);
    sys.alerts().writeJsonl(os);
    return os.str();
}

TEST(ControllerRoundTrip, KillAtEveryChunkBoundaryKeepsTimelineAlerts)
{
    SystemParams sp;
    const MctParams mp = fastParams();
    constexpr InstCount chunk = 100 * 1000;
    constexpr int chunks = 4;

    // The uninterrupted run, observing a timeline/alert window at
    // every chunk boundary exactly as the driver does, checkpointing
    // the full payload plus the driver's previous-snapshot cursor.
    System sysA("lbm", sp, staticBaselineConfig());
    armObservability(sysA);
    sysA.run(50 * 1000);
    MctController ctlA(sysA, mp);
    StatSnapshot prevA = sysA.statRegistry().snapshot();
    std::vector<std::string> snaps;
    for (int k = 0; k < chunks; ++k) {
        ctlA.runFor(chunk);
        StatSnapshot cur = sysA.statRegistry().snapshot();
        sysA.observeWindow(sysA.retired(),
                           StatRegistry::delta(prevA, cur));
        prevA = std::move(cur);
        Serializer s;
        sysA.serialize(s);
        ctlA.serialize(s);
        serializeSnapshot(s, prevA);
        snaps.push_back(s.data());
    }
    ASSERT_GT(sysA.alerts().raised(), 0u);
    ASSERT_GT(sysA.timeline().dropped(), 0u);
    const std::string want = observabilityBytes(sysA);

    // Kill after chunk K, restore into a freshly armed system, run
    // the remainder with the same window cadence: both telemetry
    // surfaces must be byte-identical for every K.
    for (int k = 0; k < chunks - 1; ++k) {
        System sysB("lbm", sp, staticBaselineConfig());
        armObservability(sysB);
        MctController ctlB(sysB, mp);
        Deserializer d(snaps[static_cast<std::size_t>(k)]);
        sysB.deserialize(d);
        ctlB.deserialize(d);
        StatSnapshot prevB = deserializeSnapshot(d);
        ASSERT_TRUE(d.atEnd());
        for (int r = k + 1; r < chunks; ++r) {
            ctlB.runFor(chunk);
            StatSnapshot cur = sysB.statRegistry().snapshot();
            sysB.observeWindow(sysB.retired(),
                               StatRegistry::delta(prevB, cur));
            prevB = std::move(cur);
        }
        EXPECT_EQ(observabilityBytes(sysB), want)
            << "kill after chunk " << k;
    }
}

TEST(ControllerRoundTrip, DriverPayloadThroughStore)
{
    // Full payload through the store, exactly one process hand-off.
    SystemParams sp;
    const MctParams mp = fastParams();
    System sysA("lbm", sp, staticBaselineConfig());
    sysA.run(50 * 1000);
    MctController ctlA(sysA, mp);
    ctlA.runFor(150 * 1000);

    const std::string base = tmpPath("driver");
    {
        CheckpointStore store(base);
        ASSERT_TRUE(
            store.save("fp-driver", fullStateBytes(sysA, ctlA)));
    }
    CheckpointStore reopened(base);
    const CheckpointLoadResult r = reopened.load();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.fingerprint, "fp-driver");

    System sysB("lbm", sp, staticBaselineConfig());
    MctController ctlB(sysB, mp);
    Deserializer d(r.payload);
    sysB.deserialize(d);
    ctlB.deserialize(d);
    ASSERT_TRUE(d.atEnd());

    ctlA.runFor(100 * 1000);
    ctlB.runFor(100 * 1000);
    EXPECT_EQ(fullStateBytes(sysB, ctlB),
              fullStateBytes(sysA, ctlA));
}

TEST(FaultRoundTrip, InjectorStateSurvivesRestore)
{
    const FaultPlanParse plan =
        parseFaultPlan("latency_drift@20k+60k:mag=3");
    ASSERT_TRUE(plan.ok);

    SystemParams sp;
    const MellowConfig cfg = staticBaselineConfig();
    System a("lbm", sp, cfg);
    FaultInjector injA(plan.plan, 11);
    a.attachFaultInjector(&injA);
    // Land inside the fault window so armed state is checkpointed.
    for (int i = 0; i < 8; ++i)
        a.run(5 * 1000);

    Serializer s;
    a.serialize(s);
    injA.serialize(s);

    System b("lbm", sp, cfg);
    FaultInjector injB(plan.plan, 11);
    b.attachFaultInjector(&injB);
    Deserializer d(s.data());
    b.deserialize(d);
    injB.deserialize(d);
    ASSERT_TRUE(d.atEnd());
    EXPECT_EQ(injB.injected(FaultKind::LatencyDrift),
              injA.injected(FaultKind::LatencyDrift));

    // Both continue through the window close identically.
    for (int i = 0; i < 16; ++i) {
        a.run(5 * 1000);
        b.run(5 * 1000);
    }
    EXPECT_EQ(stateBytes(b), stateBytes(a));
}

} // namespace
} // namespace mct
