/**
 * @file
 * Unit and property tests for the learning library: linear algebra,
 * scalers, OLS/ridge, lasso (sparsity recovery), quadratic feature
 * expansion, regression trees, gradient boosting, the offline
 * predictor, the hierarchical Bayesian model, and Eq. 3 accuracy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/gradient_boosting.hh"
#include "ml/hierarchical_bayes.hh"
#include "ml/lasso.hh"
#include "ml/linear_regression.hh"
#include "ml/metrics.hh"
#include "ml/offline_predictor.hh"
#include "ml/quadratic_features.hh"
#include "ml/regression_tree.hh"
#include "ml/scaler.hh"

namespace mct::ml
{
namespace
{

Matrix
randomMatrix(std::size_t n, std::size_t d, Rng &rng, double lo = -1,
             double hi = 1)
{
    Matrix x(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            x(r, c) = rng.uniform(lo, hi);
    return x;
}

TEST(Linalg, MultiplyKnown)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Vector y = a.multiply({1, 1});
    EXPECT_DOUBLE_EQ(y[0], 3);
    EXPECT_DOUBLE_EQ(y[1], 7);
    const Vector yt = a.multiplyTransposed({1, 1});
    EXPECT_DOUBLE_EQ(yt[0], 4);
    EXPECT_DOUBLE_EQ(yt[1], 6);
}

TEST(Linalg, GramIsSymmetricPsd)
{
    Rng rng(5);
    Matrix x = randomMatrix(20, 6, rng);
    Matrix g = x.gram();
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_GE(g(i, i), 0.0);
        for (std::size_t j = 0; j < 6; ++j)
            EXPECT_NEAR(g(i, j), g(j, i), 1e-12);
    }
}

TEST(Linalg, CholeskySolvesKnownSystem)
{
    Matrix a = Matrix::fromRows({{4, 2}, {2, 3}});
    const Vector x = choleskySolve(a, {8, 7});
    // Solution of [[4,2],[2,3]] x = [8,7] is [1.25, 1.5].
    EXPECT_NEAR(x[0], 1.25, 1e-9);
    EXPECT_NEAR(x[1], 1.5, 1e-9);
}

TEST(Linalg, CholeskySurvivesRankDeficiency)
{
    // Duplicate columns: solution exists up to the shared subspace.
    Matrix a = Matrix::fromRows({{2, 2}, {2, 2}});
    const Vector x = choleskySolve(a, {4, 4});
    EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(Linalg, DotProduct)
{
    EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(Scaler, StandardizesColumns)
{
    Rng rng(7);
    Matrix x = randomMatrix(200, 3, rng, 5, 15);
    StandardScaler sc;
    const Matrix z = sc.fitTransform(x);
    for (std::size_t c = 0; c < 3; ++c) {
        double mu = 0, ss = 0;
        for (std::size_t r = 0; r < z.rows(); ++r)
            mu += z(r, c);
        mu /= z.rows();
        for (std::size_t r = 0; r < z.rows(); ++r)
            ss += (z(r, c) - mu) * (z(r, c) - mu);
        EXPECT_NEAR(mu, 0.0, 1e-9);
        EXPECT_NEAR(ss / z.rows(), 1.0, 1e-9);
    }
}

TEST(Scaler, ConstantColumnStaysFinite)
{
    Matrix x = Matrix::fromRows({{1, 5}, {2, 5}, {3, 5}});
    StandardScaler sc;
    const Matrix z = sc.fitTransform(x);
    for (std::size_t r = 0; r < 3; ++r)
        EXPECT_TRUE(std::isfinite(z(r, 1)));
}

TEST(LinearRegression, RecoversExactLinearFunction)
{
    Rng rng(11);
    Matrix x = randomMatrix(50, 3, rng);
    Vector y(50);
    for (std::size_t r = 0; r < 50; ++r)
        y[r] = 2.0 * x(r, 0) - 3.0 * x(r, 1) + 0.5 * x(r, 2) + 7.0;
    LinearRegression lr;
    lr.fit(x, y);
    EXPECT_NEAR(lr.weights()[0], 2.0, 1e-6);
    EXPECT_NEAR(lr.weights()[1], -3.0, 1e-6);
    EXPECT_NEAR(lr.weights()[2], 0.5, 1e-6);
    EXPECT_NEAR(lr.intercept(), 7.0, 1e-6);
    EXPECT_NEAR(lr.predict({1, 1, 1}), 6.5, 1e-6);
}

TEST(LinearRegression, RidgeShrinksWeights)
{
    Rng rng(13);
    Matrix x = randomMatrix(30, 2, rng);
    Vector y(30);
    for (std::size_t r = 0; r < 30; ++r)
        y[r] = 5.0 * x(r, 0) + rng.gaussian() * 0.01;
    LinearRegression ols(0.0), ridge(100.0);
    ols.fit(x, y);
    ridge.fit(x, y);
    EXPECT_LT(std::fabs(ridge.weights()[0]),
              std::fabs(ols.weights()[0]));
}

TEST(Lasso, RecoversSparseSignal)
{
    Rng rng(17);
    Matrix x = randomMatrix(80, 10, rng);
    Vector y(80);
    for (std::size_t r = 0; r < 80; ++r)
        y[r] = 3.0 * x(r, 2) - 2.0 * x(r, 7) + 0.05 * rng.gaussian();
    LassoParams lp;
    lp.lambdaFrac = 0.1;
    LassoRegression lasso(lp);
    lasso.fit(x, y);
    const auto sel = lasso.selectedFeatures(1e-3);
    // Features 2 and 7 must survive; most others must be zeroed.
    EXPECT_NE(std::find(sel.begin(), sel.end(), 2u), sel.end());
    EXPECT_NE(std::find(sel.begin(), sel.end(), 7u), sel.end());
    EXPECT_LE(sel.size(), 5u);
}

TEST(Lasso, StrongerPenaltyZeroesEverything)
{
    Rng rng(19);
    Matrix x = randomMatrix(40, 4, rng);
    Vector y(40);
    for (std::size_t r = 0; r < 40; ++r)
        y[r] = x(r, 0) + x(r, 1);
    LassoParams lp;
    lp.lambdaFrac = 1.5; // above lambda_max
    LassoRegression lasso(lp);
    lasso.fit(x, y);
    EXPECT_TRUE(lasso.selectedFeatures().empty());
}

TEST(Lasso, PredictsWellOnLinearData)
{
    Rng rng(23);
    Matrix x = randomMatrix(60, 5, rng);
    Vector y(60);
    for (std::size_t r = 0; r < 60; ++r)
        y[r] = 4.0 * x(r, 1) - x(r, 3) + 2.0;
    LassoRegression lasso;
    lasso.fit(x, y);
    const Vector pred = lasso.predictAll(x);
    EXPECT_GT(coefficientOfDetermination(pred, y), 0.98);
}

TEST(Quadratic, TenToSixtyFive)
{
    // The paper: 10 inputs expand to 65 quadratic features.
    std::vector<std::string> names(10);
    for (int i = 0; i < 10; ++i)
        names[i] = "x" + std::to_string(i);
    QuadraticFeatureMap qmap(names);
    EXPECT_EQ(qmap.outputDim(), 65u);
}

TEST(Quadratic, ValuesAndNames)
{
    QuadraticFeatureMap qmap({"a", "b"});
    ASSERT_EQ(qmap.outputDim(), 5u); // a, b, a^2, b^2, a*b
    const Vector e = qmap.expand({2.0, 3.0});
    EXPECT_DOUBLE_EQ(e[0], 2.0);
    EXPECT_DOUBLE_EQ(e[1], 3.0);
    EXPECT_DOUBLE_EQ(e[2], 4.0);
    EXPECT_DOUBLE_EQ(e[3], 9.0);
    EXPECT_DOUBLE_EQ(e[4], 6.0);
    EXPECT_EQ(qmap.name(2), "a^2");
    EXPECT_EQ(qmap.name(4), "a * b");
}

TEST(Tree, FitsStepFunction)
{
    Matrix x(100, 1);
    Vector y(100);
    for (int i = 0; i < 100; ++i) {
        x(i, 0) = i;
        y[i] = i < 50 ? 1.0 : 5.0;
    }
    RegressionTree tree(TreeParams{2, 1});
    tree.fit(x, y);
    EXPECT_NEAR(tree.predict({10}), 1.0, 1e-9);
    EXPECT_NEAR(tree.predict({90}), 5.0, 1e-9);
}

TEST(Tree, RespectsMaxDepth)
{
    Rng rng(29);
    Matrix x = randomMatrix(200, 2, rng);
    Vector y(200);
    for (std::size_t r = 0; r < 200; ++r)
        y[r] = std::sin(3 * x(r, 0)) + x(r, 1);
    RegressionTree shallow(TreeParams{1, 1});
    shallow.fit(x, y);
    // Depth 1 => at most 3 nodes (root + 2 leaves).
    EXPECT_LE(shallow.nodeCount(), 3u);
}

TEST(Tree, ConstantTargetsSingleLeaf)
{
    Matrix x(10, 1);
    Vector y(10, 3.0);
    for (int i = 0; i < 10; ++i)
        x(i, 0) = i;
    RegressionTree tree;
    tree.fit(x, y);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_DOUBLE_EQ(tree.predict({4}), 3.0);
}

TEST(Boosting, BeatsSingleTreeOnSmoothFunction)
{
    Rng rng(31);
    Matrix x = randomMatrix(150, 2, rng);
    Vector y(150);
    for (std::size_t r = 0; r < 150; ++r)
        y[r] = std::sin(3 * x(r, 0)) * std::cos(2 * x(r, 1));
    RegressionTree tree(TreeParams{3, 2});
    tree.fit(x, y);
    GradientBoosting gbt;
    gbt.fit(x, y);
    const double treeR2 =
        coefficientOfDetermination(tree.predictAll(x), y);
    const double gbtR2 =
        coefficientOfDetermination(gbt.predictAll(x), y);
    EXPECT_GT(gbtR2, treeR2);
    EXPECT_GT(gbtR2, 0.9);
}

TEST(Boosting, PredictionsBoundedByTargetRange)
{
    Rng rng(37);
    Matrix x = randomMatrix(100, 3, rng);
    Vector y(100);
    for (std::size_t r = 0; r < 100; ++r)
        y[r] = rng.uniform(2.0, 4.0);
    GradientBoosting gbt;
    gbt.fit(x, y);
    Matrix probe = randomMatrix(50, 3, rng, -2, 2);
    for (double v : gbt.predictAll(probe)) {
        EXPECT_GE(v, 1.5);
        EXPECT_LE(v, 4.5);
    }
}

TEST(Boosting, DeterministicForSeed)
{
    Rng rng(41);
    Matrix x = randomMatrix(60, 2, rng);
    Vector y(60);
    for (std::size_t r = 0; r < 60; ++r)
        y[r] = x(r, 0) * x(r, 1);
    GradientBoosting a, b;
    a.fit(x, y);
    b.fit(x, y);
    EXPECT_DOUBLE_EQ(a.predict({0.5, 0.5}), b.predict({0.5, 0.5}));
}

TEST(Offline, AveragesLibraryRows)
{
    Matrix lib = Matrix::fromRows({{1, 2, 3}, {3, 4, 5}});
    OfflinePredictor off;
    off.fit(lib);
    EXPECT_DOUBLE_EQ(off.predict(0), 2.0);
    EXPECT_DOUBLE_EQ(off.predict(2), 4.0);
}

TEST(HierBayes, RecoversLowRankStructure)
{
    // Library: applications are scalings of two latent profiles.
    Rng rng(43);
    const std::size_t nCfg = 200;
    Vector p1(nCfg), p2(nCfg);
    for (std::size_t c = 0; c < nCfg; ++c) {
        p1[c] = std::sin(0.1 * c);
        p2[c] = 0.01 * c;
    }
    std::vector<Vector> apps;
    for (int a = 0; a < 8; ++a) {
        const double w1 = rng.uniform(0.5, 2.0);
        const double w2 = rng.uniform(-1.0, 1.0);
        Vector row(nCfg);
        for (std::size_t c = 0; c < nCfg; ++c)
            row[c] = w1 * p1[c] + w2 * p2[c];
        apps.push_back(row);
    }
    HierarchicalBayesPredictor hb;
    hb.fitOffline(Matrix::fromRows(apps));

    // A new application from the same family, observed at 20 points.
    Vector truth(nCfg);
    for (std::size_t c = 0; c < nCfg; ++c)
        truth[c] = 1.3 * p1[c] - 0.4 * p2[c];
    std::vector<std::size_t> obsIdx;
    Vector obsY;
    for (std::size_t c = 0; c < nCfg; c += 10) {
        obsIdx.push_back(c);
        obsY.push_back(truth[c]);
    }
    const Vector pred = hb.infer(obsIdx, obsY);
    EXPECT_GT(coefficientOfDetermination(pred, truth), 0.95);
}

TEST(HierBayes, UncorrelatedLibraryPredictsPoorly)
{
    Rng rng(47);
    const std::size_t nCfg = 100;
    std::vector<Vector> apps;
    for (int a = 0; a < 6; ++a) {
        Vector row(nCfg);
        for (auto &v : row)
            v = rng.gaussian();
        apps.push_back(row);
    }
    HierarchicalBayesPredictor hb;
    hb.fitOffline(Matrix::fromRows(apps));
    Vector truth(nCfg);
    for (auto &v : truth)
        v = rng.gaussian();
    std::vector<std::size_t> obsIdx = {0, 10, 20, 30};
    Vector obsY = {truth[0], truth[10], truth[20], truth[30]};
    const Vector pred = hb.infer(obsIdx, obsY);
    // Accuracy requires correlated training applications (paper
    // Section 4.3); random noise gives none.
    EXPECT_LT(coefficientOfDetermination(pred, truth), 0.5);
}

TEST(MetricsEq3, PerfectPredictionIsOne)
{
    EXPECT_DOUBLE_EQ(
        coefficientOfDetermination({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(MetricsEq3, MeanPredictionIsZero)
{
    EXPECT_DOUBLE_EQ(
        coefficientOfDetermination({2, 2, 2}, {1, 2, 3}), 0.0);
}

TEST(MetricsEq3, ClampedAtZeroForTerriblePredictions)
{
    // Eq. 3 takes max(0, .): worse-than-mean predictors score 0.
    EXPECT_DOUBLE_EQ(
        coefficientOfDetermination({30, -10, 50}, {1, 2, 3}), 0.0);
}

TEST(MetricsEq3, ErrorMetrics)
{
    EXPECT_DOUBLE_EQ(meanAbsoluteError({1, 3}, {2, 2}), 1.0);
    EXPECT_DOUBLE_EQ(rootMeanSquaredError({1, 3}, {2, 2}), 1.0);
}

} // namespace
} // namespace mct::ml
