/**
 * @file
 * Tests for the extension subsystems beyond the paper's enumerated
 * space: Start-Gap wear leveling (the scheme Table 9 assumes), write
 * pausing (the cancellation alternative from Section 2's citations),
 * and the remaining Table 1 trade-offs — short-retention writes and
 * fast disturbing reads, both serviced by forced scrub writes.
 */

#include <gtest/gtest.h>

#include <set>

#include "memctrl/controller.hh"
#include "nvm/start_gap.hh"
#include "sim/evaluator.hh"
#include "common/rng.hh"
#include "sim/sweep_cache.hh"

namespace mct
{
namespace
{

Addr
addrForBank(const NvmDevice &dev, unsigned bank, unsigned row = 0)
{
    const std::uint64_t lpr = dev.params().linesPerRow();
    const std::uint64_t line =
        (static_cast<std::uint64_t>(row) * dev.numBanks() + bank) * lpr;
    return line * lineBytes;
}

void
drainAll(MemController &ctrl)
{
    while (!ctrl.idle()) {
        const Tick next = ctrl.nextEventTick();
        ASSERT_NE(next, MemController::noEvent);
        ctrl.advance(next == ctrl.now() ? next + 1 : next);
    }
}

TEST(StartGapUnit, MappingIsInjective)
{
    StartGap sg(16, 4);
    for (int step = 0; step < 200; ++step) {
        std::set<std::uint64_t> imgs;
        for (std::uint64_t r = 0; r < 16; ++r) {
            const std::uint64_t p = sg.mapRow(r);
            EXPECT_LE(p, 16u); // 17 physical rows: 0..16
            imgs.insert(p);
        }
        EXPECT_EQ(imgs.size(), 16u);
        sg.onWrite();
    }
}

TEST(StartGapUnit, GapMovesEveryPeriodWrites)
{
    StartGap sg(8, 10);
    for (int i = 0; i < 9; ++i)
        EXPECT_LT(sg.onWrite(), 0);
    EXPECT_GE(sg.onWrite(), 0); // 10th write moves the gap
    EXPECT_EQ(sg.gapMoves(), 1u);
}

TEST(StartGapUnit, RotationVisitsEveryPhysicalRow)
{
    // With enough writes, logical row 0 must occupy many distinct
    // physical rows (the leveling action).
    StartGap sg(8, 1); // gap moves on every write
    std::set<std::uint64_t> placements;
    for (int i = 0; i < 200; ++i) {
        placements.insert(sg.mapRow(0));
        sg.onWrite();
    }
    EXPECT_GE(placements.size(), 8u);
}

TEST(StartGapUnit, WrapIncrementsStart)
{
    StartGap sg(4, 1);
    // 4 moves bring the gap 4->0; the 5th wraps with a start bump.
    for (int i = 0; i < 5; ++i)
        sg.onWrite();
    EXPECT_EQ(sg.rotations(), 1u);
}

TEST(RowWear, TracksWorstAndEfficiency)
{
    RowWearTable t(2, 10);
    t.add(0, 1, 4.0);
    t.add(0, 2, 2.0);
    t.add(1, 3, 2.0);
    EXPECT_DOUBLE_EQ(t.maxRowWear(), 4.0);
    EXPECT_DOUBLE_EQ(t.total(), 8.0);
    // Average over touched rows = 8/3; efficiency = avg/worst.
    EXPECT_NEAR(t.levelingEfficiency(), (8.0 / 3.0) / 4.0, 1e-12);
}

/** Small-geometry device so rotations complete within a test: 16
 *  banks x 64 rows x 1 KB. Start-Gap levels over full rotations
 *  (rows+1 gap movements), i.e. over device-lifetime write counts at
 *  real geometry. */
NvmParams
smallStartGapParams(std::uint64_t gapPeriod)
{
    NvmParams p;
    p.capacityBytes = 16ull * 64 * 1024;
    p.wearLevelMode = WearLevelMode::StartGap;
    p.startGapPeriod = gapPeriod;
    return p;
}

TEST(StartGapDevice, LevelsSkewedWrites)
{
    // Hammer a single logical row; over tens of rotations Start-Gap
    // must spread the wear far below the single-row bound.
    NvmDevice dev(smallStartGapParams(8));
    for (int i = 0; i < 20000; ++i)
        dev.addWear(0, 5, 1.0);
    const double years = dev.lifetimeYears(tickSec);
    const double singleRowYears =
        dev.params().rowWearCapacity() / 20000.0 / secondsPerYear;
    EXPECT_GT(years, 5.0 * singleRowYears);
    EXPECT_GT(dev.levelingEfficiency(), 0.2);
}

TEST(StartGapDevice, UniformWritesStayEfficient)
{
    NvmDevice dev(smallStartGapParams(16));
    Rng rng(3);
    for (int i = 0; i < 50000; ++i)
        dev.addWear(0, rng.below(64), 1.0);
    EXPECT_GT(dev.levelingEfficiency(), 0.3);
}

TEST(StartGapDevice, GapCopiesAreChargedAsWear)
{
    NvmDevice dev(smallStartGapParams(10));
    for (int i = 0; i < 100; ++i)
        dev.addWear(0, 1, 1.0);
    // 10 gap moves x 16-line row copies on top of the 100 writes.
    EXPECT_NEAR(dev.totalWear(), 100.0 + 10.0 * 16.0, 1e-6);
}

TEST(Pausing, WriteCompletesWithSingleWearCharge)
{
    MellowConfig cfg;
    cfg.bankAware = true;
    cfg.bankAwareThreshold = 4;
    cfg.fastLatency = 1.0;
    cfg.slowLatency = 4.0;
    cfg.slowCancellation = true;
    cfg.pauseInsteadOfCancel = true;
    NvmDevice dev{NvmParams{}};
    MemController ctrl(dev, MemCtrlParams{}, cfg);

    ASSERT_TRUE(ctrl.submitWrite(addrForBank(dev, 0, 0), 0));
    // Interrupt mid-pulse with a read.
    ASSERT_TRUE(
        ctrl.submitRead(addrForBank(dev, 0, 1), 100 * tickNs, 1));
    drainAll(ctrl);
    EXPECT_EQ(ctrl.stats().pausedWrites, 1u);
    EXPECT_EQ(ctrl.stats().cancellations, 0u);
    EXPECT_EQ(ctrl.stats().writesCompleted, 1u);
    // Pausing preserves work: total wear is exactly one slow write.
    EXPECT_NEAR(ctrl.stats().wearAdded, NvmParams::wearOfWrite(4.0),
                1e-9);
}

TEST(Pausing, ReadStillServedPromptly)
{
    MellowConfig cfg;
    cfg.bankAware = true;
    cfg.bankAwareThreshold = 4;
    cfg.slowLatency = 4.0;
    cfg.slowCancellation = true;
    cfg.pauseInsteadOfCancel = true;
    NvmDevice dev{NvmParams{}};
    MemController ctrl(dev, MemCtrlParams{}, cfg);
    const NvmParams &np = dev.params();

    ASSERT_TRUE(ctrl.submitWrite(addrForBank(dev, 0, 0), 0));
    ASSERT_TRUE(
        ctrl.submitRead(addrForBank(dev, 0, 1), 100 * tickNs, 1));
    drainAll(ctrl);
    const Tick readDone = ctrl.completedReads()[0].second;
    EXPECT_EQ(readDone,
              100 * tickNs + np.tRCD + np.tCAS + np.tBURST);
}

TEST(Pausing, LessWearThanCancellationSameScenario)
{
    auto runScenario = [](bool pause) {
        MellowConfig cfg;
        cfg.bankAware = true;
        cfg.bankAwareThreshold = 4;
        cfg.slowLatency = 4.0;
        cfg.slowCancellation = true;
        cfg.pauseInsteadOfCancel = pause;
        NvmDevice dev{NvmParams{}};
        MemController ctrl(dev, MemCtrlParams{}, cfg);
        Tick t = 0;
        for (unsigned i = 0; i < 20; ++i) {
            ctrl.submitWrite(addrForBank(dev, 0, 2 * i), t);
            t += 100 * tickNs;
            ctrl.submitRead(addrForBank(dev, 0, 2 * i + 1), t, i);
            t += 700 * tickNs;
        }
        while (!ctrl.idle())
            ctrl.advance(ctrl.nextEventTick());
        return ctrl.stats().wearAdded;
    };
    EXPECT_LT(runScenario(true), runScenario(false));
}

TEST(Retention, ShortWritesTriggerScrubs)
{
    MellowConfig cfg;
    cfg.shortRetentionWrites = true;
    NvmParams np;
    np.retentionTime = 100 * tickUs;
    NvmDevice dev(np);
    MemController ctrl(dev, MemCtrlParams{}, cfg);

    for (unsigned i = 0; i < 8; ++i)
        ctrl.submitWrite(addrForBank(dev, i % 4, i / 4), 0);
    drainAll(ctrl);
    const auto writesBefore = ctrl.stats().writesCompleted;
    EXPECT_EQ(ctrl.stats().scrubWrites, 0u);
    // Jump past the retention deadline: scrubs must be issued.
    ctrl.advance(ctrl.now() + 2 * np.retentionTime);
    drainAll(ctrl);
    EXPECT_EQ(ctrl.stats().scrubWrites, 8u);
    EXPECT_EQ(ctrl.stats().writesCompleted, writesBefore + 8);
}

TEST(Retention, ShortWritesAreFaster)
{
    NvmDevice dev{NvmParams{}};
    MellowConfig normal;
    MellowConfig shortRet = normal;
    shortRet.shortRetentionWrites = true;

    MemController a(dev, MemCtrlParams{}, normal);
    a.submitWrite(addrForBank(dev, 0, 0), 0);
    drainAll(a);
    const Tick normalDone = a.now();

    NvmDevice dev2{NvmParams{}};
    MemController b(dev2, MemCtrlParams{}, shortRet);
    b.submitWrite(addrForBank(dev2, 0, 0), 0);
    drainAll(b);
    EXPECT_LT(b.now(), normalDone);
}

TEST(Disturbance, FastReadsScrubAtThreshold)
{
    MellowConfig cfg;
    cfg.fastDisturbingReads = true;
    NvmParams np;
    np.disturbThreshold = 8;
    NvmDevice dev(np);
    MemController ctrl(dev, MemCtrlParams{}, cfg);

    Tick t = 0;
    for (unsigned i = 0; i < 8; ++i) {
        ASSERT_TRUE(ctrl.submitRead(addrForBank(dev, 0, 0), t, i));
        while (!ctrl.idle())
            ctrl.advance(ctrl.nextEventTick());
        t = ctrl.now() + tickUs;
    }
    drainAll(ctrl);
    EXPECT_EQ(ctrl.stats().scrubWrites, 1u);
}

TEST(Disturbance, WriteResetsTheCounter)
{
    MellowConfig cfg;
    cfg.fastDisturbingReads = true;
    NvmParams np;
    np.disturbThreshold = 8;
    NvmDevice dev(np);
    MemController ctrl(dev, MemCtrlParams{}, cfg);

    Tick t = 0;
    for (unsigned i = 0; i < 6; ++i) {
        ctrl.submitRead(addrForBank(dev, 0, 0), t, i);
        while (!ctrl.idle())
            ctrl.advance(ctrl.nextEventTick());
        t = ctrl.now() + tickUs;
    }
    // A write restores the row before the threshold.
    ctrl.submitWrite(addrForBank(dev, 0, 0), t);
    drainAll(ctrl);
    t = ctrl.now() + tickUs;
    for (unsigned i = 0; i < 6; ++i) {
        ctrl.submitRead(addrForBank(dev, 0, 0), t, 100 + i);
        while (!ctrl.idle())
            ctrl.advance(ctrl.nextEventTick());
        t = ctrl.now() + tickUs;
    }
    EXPECT_EQ(ctrl.stats().scrubWrites, 0u);
}

TEST(Disturbance, FastReadsReduceActivateLatency)
{
    NvmParams np;
    NvmDevice dev(np);
    MellowConfig fast;
    fast.fastDisturbingReads = true;
    MemController ctrl(dev, MemCtrlParams{}, fast);
    ctrl.submitRead(addrForBank(dev, 0, 0), 0, 1);
    drainAll(ctrl);
    EXPECT_EQ(ctrl.completedReads()[0].second,
              np.tRCDFast + np.tCAS + np.tBURST);
}

TEST(ExtensionsEndToEnd, Table1TradeoffDirections)
{
    // Measured directions must match Table 1's qualitative claims on
    // a write-heavy workload.
    EvalParams ep;
    ep.warmupInsts = 200000;
    ep.measureInsts = 600000;
    const Metrics base = evaluateConfig("lbm", defaultConfig(), ep);

    MellowConfig retention = defaultConfig();
    retention.shortRetentionWrites = true;
    const Metrics ret = evaluateConfig("lbm", retention, ep);
    // Short-retention writes: performance up, lifetime down.
    EXPECT_GT(ret.ipc, base.ipc * 0.98);
    EXPECT_LT(ret.lifetimeYears, base.lifetimeYears);

    MellowConfig fastRead = defaultConfig();
    fastRead.fastDisturbingReads = true;
    const Metrics fr = evaluateConfig("lbm", fastRead, ep);
    // Fast disturbing reads: performance up, lifetime down.
    EXPECT_GT(fr.ipc, base.ipc);
    EXPECT_LT(fr.lifetimeYears, base.lifetimeYears);
}

TEST(ExtensionsEndToEnd, ConfigKeysDistinguishExtensions)
{
    MellowConfig a = defaultConfig();
    MellowConfig b = a;
    b.pauseInsteadOfCancel = true;
    MellowConfig c = a;
    c.shortRetentionWrites = true;
    MellowConfig d = a;
    d.fastDisturbingReads = true;
    std::set<std::string> keys = {configKey(a), configKey(b),
                                  configKey(c), configKey(d)};
    EXPECT_EQ(keys.size(), 4u);
}

} // namespace
} // namespace mct
