/**
 * @file
 * Randomized property tests: the controller and the full system are
 * driven with randomized traffic / configurations, and structural
 * invariants are asserted. Parameterized over seeds so each instance
 * explores a different trajectory (deterministically).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mct/config_space.hh"
#include "sim/sweep_cache.hh"
#include "sim/multicore.hh"
#include "sim/system.hh"
#include "workloads/mixes.hh"

namespace mct
{
namespace
{

class ControllerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ControllerFuzz, RandomTrafficPreservesInvariants)
{
    Rng rng(GetParam());
    // Random (valid) configuration from the full space.
    const auto space = enumerateSpace();
    const MellowConfig cfg = space[rng.below(space.size())];
    NvmDevice dev{NvmParams{}};
    MemController ctrl(dev, MemCtrlParams{}, cfg);

    Tick t = 0;
    std::uint64_t submittedReads = 0, submittedWrites = 0;
    std::uint64_t acceptedReads = 0, acceptedWrites = 0;
    std::uint64_t id = 0;
    for (int i = 0; i < 4000; ++i) {
        t += rng.below(400) * tickNs;
        const Addr addr = rng.below(1 << 20) * lineBytes;
        if (rng.flip(0.6)) {
            ++submittedReads;
            acceptedReads += ctrl.submitRead(addr, t, ++id);
        } else {
            ++submittedWrites;
            acceptedWrites += ctrl.submitWrite(addr, t);
        }
        // Queue occupancies never exceed capacity plus the single
        // transient re-queue slot per bank.
        EXPECT_LE(ctrl.readQSize(), 64u);
        EXPECT_LE(ctrl.writeQSize(),
                  64u + dev.numBanks()); // cancel re-queues + scrubs
        EXPECT_LE(ctrl.eagerQSize(), 32u + dev.numBanks());
    }
    // Drain everything: the controller must reach idle.
    int guard = 2000000;
    while (!ctrl.idle() && guard-- > 0) {
        const Tick next = ctrl.nextEventTick();
        ASSERT_NE(next, MemController::noEvent);
        ctrl.advance(next == ctrl.now() ? next + 1 : next);
    }
    ASSERT_TRUE(ctrl.idle()) << "controller failed to drain";

    // Conservation: every accepted request completed exactly once.
    EXPECT_EQ(ctrl.stats().readsCompleted, acceptedReads);
    EXPECT_EQ(ctrl.stats().writesCompleted, acceptedWrites);
    EXPECT_EQ(ctrl.completedReads().size(), acceptedReads);

    // Wear is consistent: every completed write wears at least the
    // slowest-write amount and at most fast-write wear per attempt
    // (cancellations add partial attempts on top).
    const double minWear = acceptedWrites * NvmParams::wearOfWrite(4.0);
    EXPECT_GE(ctrl.stats().wearAdded, minWear - 1e-9);
    EXPECT_DOUBLE_EQ(ctrl.stats().wearAdded, dev.totalWear());

    // Write classification partitions completions.
    EXPECT_EQ(ctrl.stats().fastWrites + ctrl.stats().slowWrites +
                  ctrl.stats().quotaWrites,
              ctrl.stats().writesCompleted);

    // Time accounting: busy ticks cannot exceed elapsed * banks.
    EXPECT_LE(ctrl.stats().bankBusyTicks,
              ctrl.now() * dev.numBanks());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

class SystemFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SystemFuzz, RandomConfigSwitchingStaysSane)
{
    Rng rng(GetParam());
    const auto space = enumerateSpace();
    SystemParams sp;
    sp.seed = GetParam();
    const auto &apps = workloadNames();
    System sys(apps[rng.below(apps.size())], sp,
               staticBaselineConfig());
    sys.run(50000);

    Tick lastTime = sys.now();
    InstCount lastInsts = sys.retired();
    for (int i = 0; i < 12; ++i) {
        sys.setConfig(space[rng.below(space.size())]);
        const SysSnapshot s0 = sys.snapshot();
        sys.run(10000);
        const Metrics m = sys.metricsSince(s0);
        // Objectives stay physical under any configuration switch.
        EXPECT_GT(m.ipc, 0.0);
        EXPECT_LE(m.ipc, 8.0);
        EXPECT_GT(m.energyJ, 0.0);
        EXPECT_GT(m.lifetimeYears, 0.0);
        EXPECT_LE(m.lifetimeYears, sp.nvm.maxLifetimeYears);
        // Time and instructions advance monotonically.
        EXPECT_GT(sys.now(), lastTime);
        EXPECT_GT(sys.retired(), lastInsts);
        lastTime = sys.now();
        lastInsts = sys.retired();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

class EnduranceLaw : public ::testing::TestWithParam<double>
{
};

TEST_P(EnduranceLaw, WearMatchesQuadraticLawEndToEnd)
{
    // Run the same workload with one uniform write latency; total
    // wear must equal completed writes times 1/r^2 (no cancellation,
    // no techniques).
    const double r = GetParam();
    EvalParams ep;
    ep.warmupInsts = 50000;
    ep.measureInsts = 150000;
    MellowConfig cfg;
    cfg.fastLatency = r;
    SystemParams sp = ep.sys;
    System sys("milc", sp, cfg);
    sys.run(ep.warmupInsts + ep.measureInsts);
    sys.controller().advance(sys.now() + tickMs); // settle queues
    const auto &st = sys.controller().stats();
    ASSERT_GT(st.writesCompleted, 0u);
    EXPECT_NEAR(st.wearAdded,
                st.writesCompleted * NvmParams::wearOfWrite(r),
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(Ratios, EnduranceLaw,
                         ::testing::Values(1.0, 1.5, 2.5, 4.0));

class MultiCoreFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MultiCoreFuzz, RandomConfigSwitchingStaysSane)
{
    Rng rng(GetParam());
    const auto &mixes = multiProgramMixes();
    const MixSpec &mix = mixes[rng.below(mixes.size())];
    const auto space = enumerateSpace();
    MultiCoreParams mp;
    mp.base.seed = GetParam();
    MultiCoreSystem sys(mix.apps, mp, staticBaselineConfig());
    sys.run(30000);

    for (int i = 0; i < 6; ++i) {
        sys.setConfig(space[rng.below(space.size())]);
        const MultiSnapshot s0 = sys.snapshot();
        sys.run(8000);
        const MultiMetrics m = sys.metricsBetween(s0, sys.snapshot());
        ASSERT_EQ(m.coreIpc.size(), 4u);
        for (double ipc : m.coreIpc) {
            EXPECT_GT(ipc, 0.0);
            EXPECT_LE(ipc, 8.0);
        }
        EXPECT_GT(m.energyJ, 0.0);
        EXPECT_GT(m.lifetimeYears, 0.0);
    }
    // Write classification partitions completions on the shared
    // controller as well.
    EXPECT_EQ(sys.controller().stats().fastWrites +
                  sys.controller().stats().slowWrites +
                  sys.controller().stats().quotaWrites,
              sys.controller().stats().writesCompleted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiCoreFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(SweepDeterminism, IdenticalEvaluationsByteForByte)
{
    EvalParams ep;
    ep.warmupInsts = 60000;
    ep.measureInsts = 120000;
    for (const char *app : {"lbm", "gups"}) {
        const Metrics a =
            evaluateConfig(app, staticBaselineConfig(), ep);
        const Metrics b =
            evaluateConfig(app, staticBaselineConfig(), ep);
        EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
        EXPECT_DOUBLE_EQ(a.lifetimeYears, b.lifetimeYears);
        EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    }
}

} // namespace
} // namespace mct
