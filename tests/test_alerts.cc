/**
 * @file
 * AlertEngine unit tests: alerts.txt grammar, condition math against
 * scripted window series, streak raise/clear semantics, the log ring,
 * escalation wiring, and checkpoint round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/alerts.hh"
#include "common/instrument.hh"
#include "common/serialize.hh"

namespace mct
{
namespace
{

// --------------------------------------------------------------------
// Grammar
// --------------------------------------------------------------------

std::vector<AlertRule>
mustParse(const std::string &text)
{
    std::vector<AlertRule> rules;
    std::string err;
    EXPECT_TRUE(parseAlerts(text, rules, err)) << err;
    return rules;
}

std::string
mustFail(const std::string &text)
{
    std::vector<AlertRule> rules;
    std::string err;
    EXPECT_FALSE(parseAlerts(text, rules, err));
    EXPECT_FALSE(err.empty());
    return err;
}

TEST(AlertGrammar, ParsesFullRule)
{
    const auto rules = mustParse("# comment\n"
                                 "alert drift\n"
                                 "  metric memctrl.avg_read_latency_ns\n"
                                 "  condition above   # trailing\n"
                                 "  threshold 420\n"
                                 "  windows 2\n"
                                 "  severity critical\n");
    ASSERT_EQ(rules.size(), 1u);
    EXPECT_EQ(rules[0].name, "drift");
    EXPECT_EQ(rules[0].glob, "memctrl.avg_read_latency_ns");
    EXPECT_EQ(rules[0].cond, AlertCondition::Above);
    EXPECT_DOUBLE_EQ(rules[0].threshold, 420.0);
    EXPECT_EQ(rules[0].windows, 2u);
    EXPECT_EQ(rules[0].severity, AlertSeverity::Critical);
}

TEST(AlertGrammar, DefaultsAreOneWindowWarn)
{
    const auto rules = mustParse("alert a\n"
                                 "  metric sim.*\n"
                                 "  condition stuck\n");
    ASSERT_EQ(rules.size(), 1u);
    EXPECT_EQ(rules[0].windows, 1u);
    EXPECT_EQ(rules[0].severity, AlertSeverity::Warn);
}

TEST(AlertGrammar, ParsesEveryConditionAndSeverity)
{
    const auto rules = mustParse(
        "alert a\n metric m\n condition above\n threshold 1\n"
        " severity info\n"
        "alert b\n metric m\n condition below\n threshold 1\n"
        " severity warn\n"
        "alert c\n metric m\n condition ewma-dev\n threshold 0.5\n"
        " severity critical\n"
        "alert d\n metric m\n condition stuck\n"
        "alert e\n metric m\n condition nonfinite\n");
    ASSERT_EQ(rules.size(), 5u);
    EXPECT_EQ(rules[0].cond, AlertCondition::Above);
    EXPECT_EQ(rules[0].severity, AlertSeverity::Info);
    EXPECT_EQ(rules[1].cond, AlertCondition::Below);
    EXPECT_EQ(rules[2].cond, AlertCondition::EwmaDev);
    EXPECT_EQ(rules[2].severity, AlertSeverity::Critical);
    EXPECT_EQ(rules[3].cond, AlertCondition::Stuck);
    EXPECT_EQ(rules[4].cond, AlertCondition::Nonfinite);
}

TEST(AlertGrammar, RejectsMalformedInputWithLineNumbers)
{
    // Keyword outside any alert block.
    EXPECT_NE(mustFail("metric sim.*\n").find("line 1"),
              std::string::npos);
    // Missing metric.
    EXPECT_NE(mustFail("alert a\n condition stuck\n").find("no metric"),
              std::string::npos);
    // Missing condition.
    EXPECT_NE(mustFail("alert a\n metric m\n").find("no condition"),
              std::string::npos);
    // Unknown condition / severity / keyword.
    EXPECT_NE(mustFail("alert a\n metric m\n condition sideways\n")
                  .find("unknown condition"),
              std::string::npos);
    EXPECT_NE(mustFail("alert a\n metric m\n condition stuck\n"
                       " severity mild\n")
                  .find("unknown severity"),
              std::string::npos);
    EXPECT_NE(mustFail("alert a\n metric m\n condition stuck\n"
                       " cheese brie\n")
                  .find("unknown keyword"),
              std::string::npos);
    // Bad numbers.
    EXPECT_NE(mustFail("alert a\n metric m\n condition above\n"
                       " threshold many\n")
                  .find("bad threshold"),
              std::string::npos);
    EXPECT_NE(mustFail("alert a\n metric m\n condition above\n"
                       " threshold 1\n windows 0\n")
                  .find("integer >= 1"),
              std::string::npos);
    // Multi-token name / glob.
    EXPECT_NE(mustFail("alert a b\n").find("single-token"),
              std::string::npos);
    EXPECT_NE(mustFail("alert a\n metric m n\n").find("single glob"),
              std::string::npos);
}

TEST(AlertGrammar, ThresholdPresenceMatchesCondition)
{
    EXPECT_NE(mustFail("alert a\n metric m\n condition above\n")
                  .find("requires a threshold"),
              std::string::npos);
    EXPECT_NE(mustFail("alert a\n metric m\n condition stuck\n"
                       " threshold 3\n")
                  .find("takes no threshold"),
              std::string::npos);
}

TEST(AlertGrammar, RejectsDuplicateNames)
{
    EXPECT_NE(mustFail("alert a\n metric m\n condition stuck\n"
                       "alert a\n metric m\n condition stuck\n")
                  .find("duplicate alert 'a'"),
              std::string::npos);
}

TEST(AlertGrammar, CanonicalRenderingIsStable)
{
    const auto rules =
        mustParse("alert a\n metric sim.*\n condition above\n"
                  " threshold 1.5\n windows 3\n severity critical\n"
                  "alert b\n metric m\n condition nonfinite\n");
    EXPECT_EQ(canonicalAlertRules(rules),
              "a|sim.*|above|1.5|3|critical;b|m|nonfinite|0|1|warn;");
}

// --------------------------------------------------------------------
// Condition math against scripted window series
// --------------------------------------------------------------------

StatSnapshot
window(double v)
{
    StatSnapshot s;
    StatValue sv;
    sv.kind = StatKind::Gauge;
    sv.num = v;
    s["m.value"] = sv;
    return s;
}

AlertRule
rule(AlertCondition cond, double threshold, std::uint32_t windows = 1,
     AlertSeverity sev = AlertSeverity::Warn)
{
    AlertRule r;
    r.name = "r";
    r.glob = "m.*";
    r.cond = cond;
    r.threshold = threshold;
    r.windows = windows;
    r.severity = sev;
    return r;
}

/** Feed @p series one window at a time; return active() after each. */
std::vector<bool>
drive(AlertEngine &eng, const std::vector<double> &series)
{
    std::vector<bool> active;
    for (std::size_t i = 0; i < series.size(); ++i) {
        eng.observe(static_cast<InstCount>((i + 1) * 1000),
                    window(series[i]));
        active.push_back(eng.active() > 0);
    }
    return active;
}

TEST(AlertConditions, AboveRaisesAfterStreakAndClears)
{
    AlertEngine eng;
    eng.enable({rule(AlertCondition::Above, 10.0, 2)});
    const auto active = drive(eng, {15, 5, 15, 15, 15, 5});
    //                 streak:      1  0   1   2(raise)  (clear)
    const std::vector<bool> want = {false, false, false,
                                    true,  true,  false};
    EXPECT_EQ(active, want);
    EXPECT_EQ(eng.raised(), 1u);
    EXPECT_EQ(eng.cleared(), 1u);
    const auto log = eng.log();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_TRUE(log[0].raisedEv);
    EXPECT_EQ(log[0].window, 3u);
    EXPECT_DOUBLE_EQ(log[0].value, 15.0);
    EXPECT_FALSE(log[1].raisedEv);
    EXPECT_EQ(log[1].windowsActive, 2u); // active windows 4 and 5
}

TEST(AlertConditions, BelowIsStrict)
{
    AlertEngine eng;
    eng.enable({rule(AlertCondition::Below, 10.0)});
    drive(eng, {10.0}); // not strictly below
    EXPECT_EQ(eng.raised(), 0u);
    drive(eng, {9.9});
    EXPECT_EQ(eng.raised(), 1u);
}

TEST(AlertConditions, EwmaDevNeverFiresOnFirstWindowAndUsesPreUpdate)
{
    AlertEngine eng;
    eng.enable({rule(AlertCondition::EwmaDev, 0.5)});
    // Window 0: no history, a wild value cannot fire.
    eng.observe(1, window(1000.0));
    EXPECT_EQ(eng.raised(), 0u);
    // EWMA is now 1000 (seeded from window 0). A flat continuation
    // stays within 50% of the trend...
    eng.observe(2, window(900.0));
    EXPECT_EQ(eng.raised(), 0u);
    // ...and a collapse beyond 50% of the pre-update EWMA fires.
    // EWMA after window 1 = 0.25*900 + 0.75*1000 = 975; 400 deviates
    // by 575 > 0.5 * 975.
    eng.observe(3, window(400.0));
    EXPECT_EQ(eng.raised(), 1u);
}

TEST(AlertConditions, StuckNeedsARepeatNotAFirstValue)
{
    AlertEngine eng;
    eng.enable({rule(AlertCondition::Stuck, 0.0, 2)});
    const auto active = drive(eng, {7, 7, 7, 8, 8, 9});
    // Window 0 has no prev; streaks: -,1,2(raise),0(clear),1,0.
    const std::vector<bool> want = {false, false, true,
                                    false, false, false};
    EXPECT_EQ(active, want);
    EXPECT_EQ(eng.raised(), 1u);
    EXPECT_EQ(eng.cleared(), 1u);
}

TEST(AlertConditions, NonfiniteCatchesNanAndInf)
{
    AlertEngine eng;
    eng.enable({rule(AlertCondition::Nonfinite, 0.0)});
    drive(eng, {1.0, std::numeric_limits<double>::quiet_NaN()});
    EXPECT_EQ(eng.raised(), 1u);
    drive(eng, {1.0}); // finite again: clears
    EXPECT_EQ(eng.cleared(), 1u);
    drive(eng, {std::numeric_limits<double>::infinity()});
    EXPECT_EQ(eng.raised(), 2u);
}

TEST(AlertConditions, MissingMetricEvaluatesAsZero)
{
    AlertEngine eng;
    eng.enable({rule(AlertCondition::Below, 1.0)});
    eng.observe(1, window(5.0)); // binds m.value
    EXPECT_EQ(eng.raised(), 0u);
    eng.observe(2, StatSnapshot{}); // vanished metric reads 0 < 1
    EXPECT_EQ(eng.raised(), 1u);
}

// --------------------------------------------------------------------
// Binding, stats, log ring, escalation
// --------------------------------------------------------------------

TEST(AlertEngineTest, FirstMatchingRuleWinsPerMetric)
{
    AlertRule specific = rule(AlertCondition::Above, 100.0);
    specific.name = "specific";
    specific.glob = "m.value";
    AlertRule catchall = rule(AlertCondition::Above, 0.0);
    catchall.name = "catchall";
    catchall.glob = "*";
    AlertEngine eng;
    eng.enable({specific, catchall});
    eng.observe(1, window(50.0));
    // m.value bound to 'specific' (threshold 100), so 50 is quiet;
    // had 'catchall' won the bind, it would have raised.
    EXPECT_EQ(eng.instances(), 1u);
    EXPECT_EQ(eng.raised(), 0u);
}

TEST(AlertEngineTest, RaiseCountsBySeverityAndAppendFinal)
{
    AlertRule crit = rule(AlertCondition::Above, 10.0, 1,
                          AlertSeverity::Critical);
    AlertEngine eng;
    eng.enable({crit});
    drive(eng, {20, 20, 5, 20});
    EXPECT_EQ(eng.raised(), 2u);
    EXPECT_EQ(eng.raisedBySeverity(AlertSeverity::Critical), 2u);
    EXPECT_EQ(eng.raisedBySeverity(AlertSeverity::Warn), 0u);
    std::map<std::string, double> fin;
    eng.appendFinal(fin);
    EXPECT_DOUBLE_EQ(fin.at("alert.count.critical"), 2.0);
    EXPECT_DOUBLE_EQ(fin.at("alert.raised"), 2.0);
    EXPECT_DOUBLE_EQ(fin.at("alert.cleared"), 1.0);
    EXPECT_DOUBLE_EQ(fin.at("alert.active"), 1.0);
    EXPECT_DOUBLE_EQ(fin.at("alert.windows"), 4.0);
    EXPECT_DOUBLE_EQ(fin.at("alert.instances"), 1.0);
    EXPECT_DOUBLE_EQ(fin.at("alert.log_dropped"), 0.0);
}

TEST(AlertEngineTest, EscalationHookFiresOnCriticalRaisesOnly)
{
    AlertRule warn = rule(AlertCondition::Above, 10.0);
    warn.name = "warn-rule";
    warn.glob = "m.value";
    AlertRule crit = rule(AlertCondition::Above, 10.0, 1,
                          AlertSeverity::Critical);
    crit.name = "crit-rule";
    crit.glob = "m.other";
    AlertEngine eng;
    eng.enable({warn, crit});
    std::vector<std::string> escalated;
    eng.setEscalation(
        [&escalated](const AlertRule &r, const std::string &metric) {
            escalated.push_back(r.name + ":" + metric);
        });
    StatSnapshot s = window(50.0);
    StatValue sv;
    sv.num = 50.0;
    s["m.other"] = sv;
    eng.observe(1, s);
    EXPECT_EQ(eng.raised(), 2u);
    // Only the critical rule escalates.
    ASSERT_EQ(escalated.size(), 1u);
    EXPECT_EQ(escalated[0], "crit-rule:m.other");
}

TEST(AlertEngineTest, LogRingWrapsWithDroppedAccounting)
{
    AlertEngine eng;
    eng.enable({rule(AlertCondition::Above, 10.0)}, 4);
    // Alternate 20/5: every pair of windows is one raise + one clear.
    std::vector<double> series;
    for (int i = 0; i < 5; ++i) {
        series.push_back(20.0);
        series.push_back(5.0);
    }
    drive(eng, series);
    EXPECT_EQ(eng.raised(), 5u);
    EXPECT_EQ(eng.cleared(), 5u);
    const auto log = eng.log();
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(eng.logDropped(), 6u);
    // The survivors are the newest four events, oldest first.
    EXPECT_TRUE(log[0].raisedEv);
    EXPECT_EQ(log[0].window, 6u);
    EXPECT_FALSE(log[3].raisedEv);
    EXPECT_EQ(log[3].window, 9u);
}

TEST(AlertEngineTest, WriteJsonlShape)
{
    AlertEngine eng;
    eng.enable({rule(AlertCondition::Above, 10.0, 1,
                     AlertSeverity::Critical)});
    drive(eng, {20, 5});
    std::ostringstream os;
    eng.writeJsonl(os);
    std::istringstream is(os.str());
    std::string l1, l2;
    ASSERT_TRUE(std::getline(is, l1));
    ASSERT_TRUE(std::getline(is, l2));
    EXPECT_NE(l1.find("\"ev\":\"alert_raised\""), std::string::npos);
    EXPECT_NE(l1.find("\"rule\":\"r\""), std::string::npos);
    EXPECT_NE(l1.find("\"metric\":\"m.value\""), std::string::npos);
    EXPECT_NE(l1.find("\"severity\":\"critical\""), std::string::npos);
    EXPECT_EQ(l1.find("windows_active"), std::string::npos);
    EXPECT_NE(l2.find("\"ev\":\"alert_cleared\""), std::string::npos);
    EXPECT_NE(l2.find("\"windows_active\":1"), std::string::npos);
}

TEST(AlertEngineTest, DisarmedObserveIsANoOp)
{
    AlertEngine eng;
    eng.observe(1, window(1e9));
    EXPECT_FALSE(eng.enabled());
    EXPECT_EQ(eng.raised(), 0u);
    EXPECT_EQ(eng.instances(), 0u);
    EXPECT_EQ(eng.windowsSeen(), 0u);
}

// --------------------------------------------------------------------
// Checkpointing
// --------------------------------------------------------------------

TEST(AlertCheckpoint, RoundTripPreservesStreaksAndLog)
{
    AlertEngine a;
    a.enable({rule(AlertCondition::Above, 10.0, 3)}, 8);
    drive(a, {20, 20}); // mid-streak (2 of 3), nothing raised yet
    Serializer s;
    a.serialize(s);

    AlertEngine b;
    b.enable({rule(AlertCondition::Above, 10.0, 3)}, 8);
    Deserializer d(s.data());
    b.deserialize(d);
    ASSERT_TRUE(d.atEnd());

    // Both continue identically: the restored streak raises on the
    // very next window.
    a.observe(3000, window(20.0));
    b.observe(3000, window(20.0));
    EXPECT_EQ(a.raised(), 1u);
    EXPECT_EQ(b.raised(), 1u);
    std::ostringstream ja, jb;
    a.writeJsonl(ja);
    b.writeJsonl(jb);
    EXPECT_EQ(ja.str(), jb.str());
    Serializer sa, sb;
    a.serialize(sa);
    b.serialize(sb);
    EXPECT_EQ(sa.data(), sb.data());
}

TEST(AlertCheckpointDeathTest, ConfigMismatchPanics)
{
    AlertEngine a;
    a.enable({rule(AlertCondition::Above, 10.0)}, 8);
    Serializer s;
    a.serialize(s);

    // Different rule count.
    AlertEngine b;
    b.enable({rule(AlertCondition::Above, 10.0),
              rule(AlertCondition::Below, 0.0)},
             8);
    Deserializer d1(s.data());
    EXPECT_DEATH(b.deserialize(d1), "configuration mismatch");

    // Different log capacity.
    AlertEngine c;
    c.enable({rule(AlertCondition::Above, 10.0)}, 16);
    Deserializer d2(s.data());
    EXPECT_DEATH(c.deserialize(d2), "configuration mismatch");
}

} // namespace
} // namespace mct
