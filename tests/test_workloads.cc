/**
 * @file
 * Unit tests for the synthetic workload models: determinism, address
 * bounds, write fractions, burst modulation, phase cycling, rmw
 * pairing, and the application registry.
 */

#include <gtest/gtest.h>

#include <set>

#include <sstream>

#include "sim/system.hh"
#include "workloads/mixes.hh"
#include "workloads/trace.hh"
#include "workloads/workload.hh"

namespace mct
{
namespace
{

PatternSpec
simpleSpec()
{
    PatternSpec pt;
    pt.streamFrac = 0.5;
    pt.numStreams = 2;
    pt.streamBytes = 1 << 20;
    pt.wsBytes = 4 << 20;
    pt.writeFrac = 0.3;
    pt.memIntensity = 0.2;
    return pt;
}

TEST(PatternWorkload, DeterministicForSameSeed)
{
    WorkloadTraits tr{"t", 8};
    PatternWorkload a(tr, {{100000, simpleSpec()}}, 5);
    PatternWorkload b(tr, {{100000, simpleSpec()}}, 5);
    WorkloadOp oa, ob;
    for (int i = 0; i < 5000; ++i) {
        a.next(oa);
        b.next(ob);
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.gap, ob.gap);
        EXPECT_EQ(oa.isWrite, ob.isWrite);
    }
}

TEST(PatternWorkload, ResetRestartsStream)
{
    WorkloadTraits tr{"t", 8};
    PatternWorkload w(tr, {{100000, simpleSpec()}}, 5);
    WorkloadOp first;
    w.next(first);
    for (int i = 0; i < 100; ++i)
        w.next(first);
    w.reset(5);
    WorkloadOp again;
    w.next(again);
    PatternWorkload fresh(tr, {{100000, simpleSpec()}}, 5);
    WorkloadOp ref;
    fresh.next(ref);
    EXPECT_EQ(again.addr, ref.addr);
}

TEST(PatternWorkload, AddressesLineAlignedAndBounded)
{
    WorkloadTraits tr{"t", 8};
    PatternSpec pt = simpleSpec();
    PatternWorkload w(tr, {{100000, pt}}, 7);
    WorkloadOp op;
    for (int i = 0; i < 10000; ++i) {
        w.next(op);
        EXPECT_EQ(op.addr % lineBytes, 0u);
        // Streams span numStreams regions; random spans wsBytes.
        EXPECT_LT(op.addr,
                  std::max<std::uint64_t>(
                      pt.wsBytes,
                      pt.numStreams * pt.streamBytes));
    }
}

TEST(PatternWorkload, AddrBaseOffsetsEverything)
{
    WorkloadTraits tr{"t", 8};
    PatternWorkload w(tr, {{100000, simpleSpec()}}, 7);
    const Addr base = 1ULL << 33;
    w.setAddrBase(base);
    WorkloadOp op;
    for (int i = 0; i < 1000; ++i) {
        w.next(op);
        EXPECT_GE(op.addr, base);
    }
}

TEST(PatternWorkload, WriteFractionRoughlyHonored)
{
    WorkloadTraits tr{"t", 8};
    PatternSpec pt = simpleSpec();
    pt.writeFrac = 0.4;
    PatternWorkload w(tr, {{10000000, pt}}, 11);
    WorkloadOp op;
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        w.next(op);
        writes += op.isWrite;
    }
    EXPECT_NEAR(writes / double(n), 0.4, 0.03);
}

TEST(PatternWorkload, GapMatchesIntensity)
{
    WorkloadTraits tr{"t", 8};
    PatternSpec pt = simpleSpec();
    pt.memIntensity = 0.25; // one mem op per 4 instructions
    pt.burstDuty = 1.0;
    PatternWorkload w(tr, {{100000000, pt}}, 13);
    WorkloadOp op;
    double totalInsts = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        w.next(op);
        totalInsts += op.gap + 1;
    }
    EXPECT_NEAR(n / totalInsts, 0.25, 0.02);
}

TEST(PatternWorkload, BurstsModulateIntensity)
{
    WorkloadTraits tr{"t", 8};
    PatternSpec pt = simpleSpec();
    pt.memIntensity = 0.3;
    pt.burstDuty = 0.5;
    pt.burstPeriod = 50000;
    pt.idleScale = 0.05;
    PatternWorkload w(tr, {{1000000000, pt}}, 17);
    // Count ops falling in first vs second half of each period.
    WorkloadOp op;
    std::uint64_t insts = 0;
    std::uint64_t burstOps = 0, idleOps = 0;
    for (int i = 0; i < 30000; ++i) {
        w.next(op);
        insts += op.gap + 1;
        if (insts % pt.burstPeriod <
            static_cast<std::uint64_t>(pt.burstDuty * pt.burstPeriod))
            ++burstOps;
        else
            ++idleOps;
    }
    EXPECT_GT(burstOps, 4 * idleOps);
}

TEST(PatternWorkload, PhasesCycle)
{
    WorkloadTraits tr{"t", 8};
    PatternSpec a = simpleSpec(), b = simpleSpec();
    b.writeFrac = 0.9;
    PatternWorkload w(tr, {{5000, a}, {5000, b}}, 19);
    WorkloadOp op;
    std::set<std::size_t> seen;
    for (int i = 0; i < 20000; ++i) {
        w.next(op);
        seen.insert(w.currentPhase());
    }
    EXPECT_EQ(seen.size(), 2u);
}

TEST(PatternWorkload, RmwPairsReadThenWriteSameAddress)
{
    WorkloadTraits tr{"gups-like", 2};
    PatternSpec pt = simpleSpec();
    pt.rmw = true;
    pt.streamFrac = 0.0;
    pt.numStreams = 0;
    PatternWorkload w(tr, {{1000000, pt}}, 23);
    WorkloadOp op;
    for (int i = 0; i < 1000; ++i) {
        w.next(op);
        ASSERT_FALSE(op.isWrite);
        ASSERT_TRUE(op.dependent);
        const Addr read = op.addr;
        w.next(op);
        ASSERT_TRUE(op.isWrite);
        ASSERT_EQ(op.addr, read);
        ASSERT_EQ(op.gap, 0u);
    }
}

TEST(Registry, AllTenApplicationsExist)
{
    const auto &names = workloadNames();
    ASSERT_EQ(names.size(), 10u);
    for (const auto &n : names) {
        EXPECT_TRUE(isWorkloadName(n));
        auto w = makeWorkload(n, 1);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->traits().name, n);
        EXPECT_GE(w->traits().mlp, 1u);
        WorkloadOp op;
        for (int i = 0; i < 100; ++i)
            w->next(op);
    }
}

TEST(Registry, PaperApplicationSet)
{
    const auto &names = workloadNames();
    const std::set<std::string> expect = {
        "lbm", "leslie3d", "zeusmp", "GemsFDTD", "milc",
        "bwaves", "libquantum", "ocean", "gups", "stream"};
    EXPECT_EQ(std::set<std::string>(names.begin(), names.end()),
              expect);
}

TEST(Registry, UnknownNameIsNotAWorkload)
{
    EXPECT_FALSE(isWorkloadName("mcf"));
}

TEST(Registry, OceanHasMultiplePhases)
{
    auto w = makeWorkload("ocean", 3);
    WorkloadOp op;
    auto *pw = dynamic_cast<PatternWorkload *>(w.get());
    ASSERT_NE(pw, nullptr);
    std::set<std::size_t> phases;
    for (int i = 0; i < 600000; ++i) {
        w->next(op);
        phases.insert(pw->currentPhase());
    }
    EXPECT_GE(phases.size(), 3u);
}

TEST(Mixes, Table11Definitions)
{
    const auto &mixes = multiProgramMixes();
    ASSERT_EQ(mixes.size(), 6u);
    for (const auto &mix : mixes) {
        EXPECT_EQ(mix.apps.size(), 4u);
        for (const auto &app : mix.apps)
            EXPECT_TRUE(isWorkloadName(app));
    }
    EXPECT_EQ(mixByName("mix1").apps[0], "lbm");
    EXPECT_EQ(mixByName("mix4").apps[3], "GemsFDTD");
}

TEST(Trace, ParseRoundTrip)
{
    std::istringstream in(
        "# a comment\n"
        "3 R 0x1000\n"
        "0 W 4096\n"
        "10 R 0x2040 D\n"
        "\n"
        "2 w 0x80\n");
    const auto ops = TraceWorkload::parse(in);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].gap, 3u);
    EXPECT_FALSE(ops[0].isWrite);
    EXPECT_EQ(ops[0].addr, 0x1000u);
    EXPECT_TRUE(ops[1].isWrite);
    EXPECT_EQ(ops[1].addr, 4096u);
    EXPECT_TRUE(ops[2].dependent);
    EXPECT_TRUE(ops[3].isWrite);

    std::ostringstream out;
    TraceWorkload::write(out, ops);
    std::istringstream in2(out.str());
    const auto ops2 = TraceWorkload::parse(in2);
    ASSERT_EQ(ops2.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        EXPECT_EQ(ops2[i].gap, ops[i].gap);
        EXPECT_EQ(ops2[i].addr, ops[i].addr);
        EXPECT_EQ(ops2[i].isWrite, ops[i].isWrite);
        EXPECT_EQ(ops2[i].dependent, ops[i].dependent);
    }
}

TEST(Trace, LoopsForever)
{
    std::vector<WorkloadOp> ops = {
        {1, false, 0x40, false},
        {2, true, 0x80, false},
    };
    TraceWorkload w("t", ops, 8);
    WorkloadOp op;
    for (int i = 0; i < 10; ++i)
        w.next(op);
    EXPECT_EQ(w.loops(), 5u);
    // Fifth loop ended exactly; the next op is the first record.
    w.next(op);
    EXPECT_EQ(op.addr, 0x40u);
}

TEST(Trace, AddrBaseApplied)
{
    std::vector<WorkloadOp> ops = {{0, false, 0x40, false}};
    TraceWorkload w("t", ops, 8);
    w.setAddrBase(1ULL << 30);
    WorkloadOp op;
    w.next(op);
    EXPECT_EQ(op.addr, (1ULL << 30) + 0x40);
}

TEST(Trace, CaptureFromSyntheticModel)
{
    auto src = makeWorkload("milc", 5);
    const auto ops = captureTrace(*src, 500);
    ASSERT_EQ(ops.size(), 500u);
    TraceWorkload replay("milc-cap", ops, src->traits().mlp);
    // Replay reproduces the captured stream exactly.
    auto src2 = makeWorkload("milc", 5);
    WorkloadOp a, b;
    for (int i = 0; i < 500; ++i) {
        src2->next(a);
        replay.next(b);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.gap, b.gap);
        EXPECT_EQ(a.isWrite, b.isWrite);
    }
}

TEST(Trace, DrivesAFullSystem)
{
    auto src = makeWorkload("bwaves", 9);
    auto trace = std::make_unique<TraceWorkload>(
        "bwaves-trace", captureTrace(*src, 20000), 16);
    SystemParams sp;
    System sys(std::move(trace), sp, defaultConfig());
    sys.run(100000);
    EXPECT_GT(sys.core().ipc(), 0.0);
    EXPECT_GT(sys.controller().stats().readsCompleted, 0u);
}

} // namespace
} // namespace mct
