/**
 * @file
 * End-to-end integration tests: the full MCT runtime loop on live
 * systems, its guarantees (lifetime floor via the wear-quota fixup,
 * never-much-worse-than-baseline via health checks), phase-triggered
 * re-sampling, and the cyclic sampler's bookkeeping.
 */

#include <gtest/gtest.h>

#include "mct/controller.hh"
#include "mct/samplers.hh"
#include "mct/cyclic_sampler.hh"
#include "mct/multicore_controller.hh"
#include "sim/evaluator.hh"
#include "sim/sweep_cache.hh"

namespace mct
{
namespace
{

MctParams
fastParams()
{
    MctParams p;
    // Shrink the schedule so integration tests stay quick.
    p.sampling.unitInsts = 2000;
    p.sampling.settleInsts = 1000;
    p.sampling.rounds = 2;
    p.healthCheckPeriod = 300 * 1000;
    return p;
}

TEST(CyclicSampler, AccumulatesDisjointWindows)
{
    SystemParams sp;
    System sys("bwaves", sp, staticBaselineConfig());
    sys.run(100000);
    CyclicSamplerParams cp;
    cp.unitInsts = 2000;
    cp.rounds = 2;
    CyclicSampler sampler(sys, cp);
    const auto samples = featureBasedSamples(1);
    const auto metrics = sampler.run(samples);
    ASSERT_EQ(metrics.size(), samples.size());
    // Total sampled instructions = units * rounds * samples.
    EXPECT_GE(sampler.instsUsed(), 2000u * 2 * samples.size());
    for (const auto &m : metrics) {
        EXPECT_GT(m.ipc, 0.0);
        EXPECT_GT(m.energyJ, 0.0);
    }
}

TEST(CyclicSampler, AnchorMeasuredInRotation)
{
    SystemParams sp;
    System sys("milc", sp, staticBaselineConfig());
    sys.run(100000);
    CyclicSamplerParams cp;
    cp.unitInsts = 1500;
    cp.rounds = 2;
    CyclicSampler sampler(sys, cp);
    const auto samples = featureBasedSamples(2);
    const auto [anchor, metrics] =
        sampler.runWithAnchor(staticBaselineConfig(), samples);
    EXPECT_EQ(metrics.size(), samples.size());
    EXPECT_GT(anchor.ipc, 0.0);
}

TEST(MctRuntime, MakesADecisionAndAppliesFixup)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    sys.run(200000);
    MctParams mp = fastParams();
    MctController ctl(sys, mp);
    ctl.runFor(800000);
    ASSERT_GE(ctl.decisions().size(), 1u);
    const Decision &d = ctl.decisions().front();
    // Section 5.3: the fixup arms wear quota at the lifetime target.
    EXPECT_TRUE(d.config.wearQuota);
    EXPECT_DOUBLE_EQ(d.config.wearQuotaTarget, 8.0);
    EXPECT_TRUE(ctl.currentConfig().valid());
}

TEST(MctRuntime, SamplingAndTestingAccounted)
{
    SystemParams sp;
    System sys("leslie3d", sp, staticBaselineConfig());
    sys.run(150000);
    MctParams mp = fastParams();
    MctController ctl(sys, mp);
    ctl.runFor(1500000);
    EXPECT_GT(ctl.samplingAccum().insts, 0u);
    EXPECT_GT(ctl.testingAccum().insts, 0u);
    // Sampling covers rounds * (settle + unit) * (samples + anchor).
    EXPECT_GE(ctl.samplingAccum().insts, 2u * 3000 * 78);
}

TEST(MctRuntime, LearningSpaceExcludesWearQuota)
{
    SystemParams sp;
    System sys("milc", sp, staticBaselineConfig());
    MctParams mp = fastParams();
    MctController ctl(sys, mp);
    for (const auto &cfg : ctl.space())
        EXPECT_FALSE(cfg.wearQuota);
    EXPECT_EQ(ctl.samples().size(), 77u);
}

TEST(MctRuntime, ChosenConfigMeetsLifetimeFloorEndToEnd)
{
    // Run MCT on a write-heavy app, then evaluate its final chosen
    // configuration from scratch: the wear-quota fixup must hold the
    // 8-year floor (within quota slice granularity).
    SystemParams sp;
    System sys("stream", sp, staticBaselineConfig());
    sys.run(200000);
    MctParams mp = fastParams();
    MctController ctl(sys, mp);
    ctl.runFor(1000000);
    ASSERT_GE(ctl.decisions().size(), 1u);

    EvalParams ep;
    ep.warmupInsts = 300000;
    ep.measureInsts = 1000000;
    const Metrics m =
        evaluateConfig("stream", ctl.currentConfig(), ep);
    // The quota's first unrestricted slices dilute short-window
    // lifetime; the floor is approached from below as the window
    // grows (EXPERIMENTS.md quantifies this).
    EXPECT_GT(m.lifetimeYears, 0.5 * 8.0);
}

TEST(MctRuntime, NeverMuchWorseThanBaseline)
{
    // Health checking (Section 5.4) bounds regressions: final MCT
    // throughput must come close to the always-baseline run.
    SystemParams sp;
    System sysMct("GemsFDTD", sp, staticBaselineConfig());
    sysMct.run(200000);
    MctParams mp = fastParams();
    MctController ctl(sysMct, mp);
    const SysSnapshot s0 = sysMct.snapshot();
    ctl.runFor(1500000);
    const Metrics withMct = sysMct.metricsSince(s0);

    System sysBase("GemsFDTD", sp, staticBaselineConfig());
    sysBase.run(200000);
    const SysSnapshot b0 = sysBase.snapshot();
    sysBase.run(1500000);
    const Metrics baseline = sysBase.metricsSince(b0);

    EXPECT_GT(withMct.ipc, 0.85 * baseline.ipc);
}

TEST(MctRuntime, PhaseChangeTriggersResampling)
{
    // ocean's coarse phases must trip the detector and cause at least
    // one re-sampling over a long run.
    SystemParams sp;
    System sys("ocean", sp, staticBaselineConfig());
    sys.run(150000);
    MctParams mp = fastParams();
    mp.phase.scoreThreshold = 10.0;
    MctController ctl(sys, mp);
    ctl.runFor(5000000);
    EXPECT_GE(ctl.decisions().size(), 2u);
    EXPECT_GE(ctl.resamplings(), 1u);
}

TEST(MctRuntime, QuadraticLassoVariantRuns)
{
    SystemParams sp;
    System sys("bwaves", sp, staticBaselineConfig());
    sys.run(150000);
    MctParams mp = fastParams();
    mp.predictor = PredictorKind::QuadraticLasso;
    MctController ctl(sys, mp);
    ctl.runFor(700000);
    EXPECT_GE(ctl.decisions().size(), 1u);
}

TEST(MctRuntime, AlternativeLifetimeTargets)
{
    SystemParams sp;
    for (double target : {4.0, 10.0}) {
        System sys("lbm", sp, staticBaselineConfig());
        sys.run(150000);
        MctParams mp = fastParams();
        mp.objective.minLifetimeYears = target;
        MctController ctl(sys, mp);
        ctl.runFor(700000);
        ASSERT_GE(ctl.decisions().size(), 1u);
        EXPECT_DOUBLE_EQ(ctl.decisions()[0].config.wearQuotaTarget,
                         target);
    }
}

TEST(CyclicSampler, PairedScheduleMeasuresBothSides)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    sys.run(150000);
    CyclicSamplerParams cp;
    cp.unitInsts = 1500;
    cp.settleInsts = 500;
    cp.rounds = 2;
    CyclicSampler sampler(sys, cp);
    const auto samples = featureBasedSamples(3);
    const auto res =
        sampler.runPaired(staticBaselineConfig(), samples);
    ASSERT_EQ(res.sample.size(), samples.size());
    ASSERT_EQ(res.pairedAnchor.size(), samples.size());
    EXPECT_GT(res.anchor.ipc, 0.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_GT(res.sample[i].ipc, 0.0);
        EXPECT_GT(res.pairedAnchor[i].ipc, 0.0);
    }
    // Paired schedule: anchor unit + sample unit per sample per
    // round, each preceded by a settle.
    EXPECT_GE(sampler.instsUsed(),
              2u * 2 * samples.size() * (1500 + 500));
}

TEST(MctRuntime, SteadyMeasureSourceDrivesDecisions)
{
    // With a steady-state oracle that makes exactly one configuration
    // dominate, the controller must select it.
    SystemParams sp;
    System sys("milc", sp, staticBaselineConfig());
    sys.run(150000);
    MctParams mp = fastParams();
    mp.liveSamplingOverhead = false; // pure steady-measure path
    // The winner must be one of the configurations the controller
    // actually samples (seed 42 is the MctParams default).
    const MellowConfig winner = featureBasedSamples(42)[20];
    const std::string winnerKey = configKey(winner);
    mp.steadyMeasure = [&](const MellowConfig &cfg) {
        Metrics m;
        const bool isWinner = configKey(cfg) == winnerKey;
        m.ipc = isWinner ? 2.0 : 0.5;
        m.lifetimeYears = 20.0;
        m.energyJ = 1.0;
        return m;
    };
    MctController ctl(sys, mp);
    ctl.runFor(400000);
    ASSERT_GE(ctl.decisions().size(), 1u);
    const MellowConfig &chosen = ctl.decisions()[0].config;
    // The chosen config is the winner plus the wear-quota fixup.
    MellowConfig expect = winner;
    expect.wearQuota = true;
    expect.wearQuotaTarget = 8.0;
    EXPECT_EQ(configKey(chosen), configKey(expect));
}

TEST(MctRuntime, SteadyMeasureInfeasibleFallsBackToBaseline)
{
    SystemParams sp;
    System sys("milc", sp, staticBaselineConfig());
    sys.run(150000);
    MctParams mp = fastParams();
    mp.liveSamplingOverhead = false;
    mp.steadyMeasure = [](const MellowConfig &) {
        return Metrics{1.0, 2.0, 1.0}; // nothing reaches 8 years
    };
    MctController ctl(sys, mp);
    ctl.runFor(400000);
    ASSERT_GE(ctl.decisions().size(), 1u);
    EXPECT_FALSE(ctl.decisions()[0].feasible);
    // Baseline + fixup.
    MellowConfig expect = staticBaselineConfig();
    expect.wearQuota = true;
    expect.wearQuotaTarget = 8.0;
    EXPECT_EQ(configKey(ctl.decisions()[0].config),
              configKey(expect));
}

TEST(MultiCoreMct, SelectsAndFixesUp)
{
    // Shrink the space and measurement so the test stays fast.
    MultiCoreParams mp;
    MultiMctParams params;
    params.spaceOpts.latencies = {1.0, 2.0, 3.0};
    params.spaceOpts.bankThresholds = {2};
    params.spaceOpts.eagerThresholds = {8};
    params.sampleWarmup = 20 * 1000;
    params.sampleMeasure = 30 * 1000;
    const MultiMctResult res = chooseMultiCoreConfig(
        {"zeusmp", "milc", "bwaves", "GemsFDTD"}, mp, params);
    EXPECT_TRUE(res.chosen.valid());
    EXPECT_TRUE(res.chosen.wearQuota); // fixup applied
    EXPECT_FALSE(res.sampled.empty());
    EXPECT_GT(res.baselineMeasured.ipc, 0.0);
    for (const auto &m : res.sampled)
        EXPECT_GT(m.ipc, 0.0);
}

} // namespace
} // namespace mct
