/**
 * @file
 * Unit and property tests for the MCT framework: the Eq. 1 vector
 * encoding, the configuration-space enumeration and its constraints,
 * feature compression, the 77-sample feature-based sampler, the
 * phase detector, the optimizer, and the predictor interface.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "mct/config.hh"
#include "mct/config_space.hh"
#include "mct/feature_compressor.hh"
#include "mct/feature_selection.hh"
#include "mct/optimizer.hh"
#include "mct/phase_detector.hh"
#include "mct/predictors.hh"
#include "mct/samplers.hh"
#include "ml/metrics.hh"
#include "sim/sweep_cache.hh"

namespace mct
{
namespace
{

TEST(ConfigVector, TenDimensions)
{
    EXPECT_EQ(configDims, 10u);
    EXPECT_EQ(configDimNames().size(), 10u);
    EXPECT_EQ(configToVector(defaultConfig()).size(), 10u);
}

TEST(ConfigVector, PaperExampleEncoding)
{
    // Paper Section 4.1.1: [1,1,1,32,0,0,1.5,3.0,0,1] is bank-aware
    // threshold 1, eager threshold 32, fast 1.5x / slow 3.0x, write
    // cancellation on slow writes only.
    MellowConfig cfg;
    cfg.bankAware = true;
    cfg.bankAwareThreshold = 1;
    cfg.eagerWritebacks = true;
    cfg.eagerThreshold = 32;
    cfg.fastLatency = 1.5;
    cfg.slowLatency = 3.0;
    cfg.slowCancellation = true;
    const ml::Vector v = configToVector(cfg);
    const ml::Vector expect = {1, 1, 1, 32, 0, 0, 1.5, 3.0, 0, 1};
    ASSERT_EQ(v.size(), expect.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_DOUBLE_EQ(v[i], expect[i]) << "dim " << i;
}

TEST(ConfigVector, TableRowShapes)
{
    EXPECT_EQ(configTableHeader().size(), 10u);
    EXPECT_EQ(configTableRow(defaultConfig()).size(), 10u);
    EXPECT_EQ(configTableRow(defaultConfig())[1], "N/A");
}

class SpaceRoundTrip : public ::testing::TestWithParam<std::size_t>
{
  protected:
    static const std::vector<MellowConfig> &
    space()
    {
        static const auto s = enumerateSpace();
        return s;
    }
};

TEST_P(SpaceRoundTrip, VectorEncodingRoundTrips)
{
    const MellowConfig &cfg = space()[GetParam() % space().size()];
    ASSERT_TRUE(cfg.valid());
    const MellowConfig back = configFromVector(configToVector(cfg));
    EXPECT_EQ(configKey(back), configKey(cfg));
}

INSTANTIATE_TEST_SUITE_P(SampledConfigs, SpaceRoundTrip,
                         ::testing::Range<std::size_t>(0, 3052, 97));

TEST(ConfigSpace, MagnitudeMatchesPaper)
{
    // Paper: 3,164 configurations; the unpublished discretization
    // means we match the magnitude, not the exact count.
    const auto space = enumerateSpace();
    EXPECT_EQ(space.size(), 3052u);
    EXPECT_NEAR(static_cast<double>(space.size()), 3164.0, 320.0);
    EXPECT_EQ(enumerateNoQuotaSpace().size(), 1526u);
}

TEST(ConfigSpace, AllConfigurationsValidAndUnique)
{
    const auto space = enumerateSpace();
    std::set<std::string> keys;
    for (const auto &cfg : space) {
        EXPECT_TRUE(cfg.valid());
        keys.insert(configKey(cfg));
    }
    EXPECT_EQ(keys.size(), space.size());
}

TEST(ConfigSpace, ConstraintsHold)
{
    for (const auto &cfg : enumerateSpace()) {
        if (cfg.usesSlowWrites()) {
            EXPECT_GT(cfg.slowLatency, cfg.fastLatency);
        }
        if (cfg.fastCancellation && cfg.usesSlowWrites()) {
            EXPECT_TRUE(cfg.slowCancellation);
        }
    }
}

TEST(ConfigSpace, ContainsPaperReferenceConfigs)
{
    const auto space = enumerateSpace();
    auto contains = [&](const MellowConfig &c) {
        const std::string key = configKey(c);
        for (const auto &s : space)
            if (configKey(s) == key)
                return true;
        return false;
    };
    EXPECT_TRUE(contains(defaultConfig()));
    EXPECT_TRUE(contains(staticBaselineConfig()));
}

TEST(ConfigSpace, NoQuotaSubspaceHasNoQuota)
{
    for (const auto &cfg : enumerateNoQuotaSpace())
        EXPECT_FALSE(cfg.wearQuota);
}

TEST(Compressor, FiveFeatures)
{
    EXPECT_EQ(compressedDims, 5u);
    EXPECT_EQ(compressedFeatureNames().size(), 5u);
    EXPECT_EQ(primaryFeatureIndices(),
              (std::vector<std::size_t>{2, 3, 4}));
}

TEST(Compressor, MergesUsageAndAggressiveness)
{
    MellowConfig cfg;
    cfg.bankAware = true;
    cfg.bankAwareThreshold = 3;
    cfg.eagerWritebacks = true;
    cfg.eagerThreshold = 16;
    cfg.fastLatency = 1.5;
    cfg.slowLatency = 2.5;
    cfg.slowCancellation = true;
    const ml::Vector v = compressConfig(cfg);
    EXPECT_DOUBLE_EQ(v[0], 3.0); // bank level
    EXPECT_DOUBLE_EQ(v[1], 3.0); // eager level: 16 -> 3
    EXPECT_DOUBLE_EQ(v[2], 1.5);
    EXPECT_DOUBLE_EQ(v[3], 2.5);
    EXPECT_DOUBLE_EQ(v[4], 1.0); // slow-only cancellation
}

TEST(Compressor, OffTechniquesAreZero)
{
    const ml::Vector v = compressConfig(defaultConfig());
    EXPECT_DOUBLE_EQ(v[0], 0.0);
    EXPECT_DOUBLE_EQ(v[1], 0.0);
    EXPECT_DOUBLE_EQ(v[3], 0.0);
    EXPECT_DOUBLE_EQ(v[4], 0.0);
}

TEST(Compressor, EagerLevelsDistinct)
{
    std::set<double> levels;
    for (int thr : {4, 8, 16, 32}) {
        MellowConfig cfg;
        cfg.eagerWritebacks = true;
        cfg.eagerThreshold = thr;
        cfg.slowLatency = 2.0;
        levels.insert(compressConfig(cfg)[1]);
    }
    EXPECT_EQ(levels.size(), 4u);
    // And all distinct from "off" (level 0).
    EXPECT_EQ(levels.count(0.0), 0u);
}

TEST(Sampler, SeventySevenFeatureBasedSamples)
{
    const auto samples = featureBasedSamples(42);
    EXPECT_EQ(samples.size(), 77u); // paper Section 4.4
    std::set<std::string> keys;
    for (const auto &s : samples) {
        EXPECT_TRUE(s.valid());
        EXPECT_FALSE(s.wearQuota); // excluded from learning
        keys.insert(configKey(s));
    }
    EXPECT_EQ(keys.size(), 77u); // no duplicates
}

TEST(Sampler, SamplesGridThePrimaryFeatures)
{
    const auto samples = featureBasedSamples(1);
    std::set<std::pair<double, double>> latPairs;
    for (const auto &s : samples)
        latPairs.insert({s.fastLatency,
                         s.usesSlowWrites() ? s.slowLatency : 0.0});
    // 21 slow pairs + 7 fast-only = 28 distinct latency points.
    EXPECT_EQ(latPairs.size(), 28u);
}

TEST(Sampler, SamplesLieInsideLearningSpace)
{
    const auto space = enumerateNoQuotaSpace();
    const auto samples = featureBasedSamples(7);
    const auto idx = indicesInSpace(space, samples);
    ASSERT_EQ(idx.size(), samples.size());
    for (std::size_t k = 0; k < idx.size(); ++k)
        EXPECT_EQ(configKey(space[idx[k]]), configKey(samples[k]));
}

TEST(Sampler, RandomSamplesUniqueAndInSpace)
{
    const auto space = enumerateNoQuotaSpace();
    const auto rs = randomSamples(space, 77, 9);
    EXPECT_EQ(rs.size(), 77u);
    std::set<std::string> keys;
    for (const auto &s : rs)
        keys.insert(configKey(s));
    EXPECT_EQ(keys.size(), 77u);
}

TEST(Sampler, DifferentSeedsDifferentSecondaryKnobs)
{
    const auto a = featureBasedSamples(1);
    const auto b = featureBasedSamples(2);
    int differing = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        differing += configKey(a[i]) != configKey(b[i]);
    EXPECT_GT(differing, 10);
}

TEST(PhaseDetector, QuietStreamNoPhases)
{
    PhaseDetector det;
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        EXPECT_FALSE(det.push(100.0 + rng.gaussian()));
    EXPECT_EQ(det.phasesDetected(), 0u);
}

TEST(PhaseDetector, DetectsDramaticShift)
{
    PhaseDetector det;
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        det.push(100.0 + rng.gaussian());
    bool detected = false;
    for (int i = 0; i < 30 && !detected; ++i)
        detected = det.push(500.0 + rng.gaussian());
    EXPECT_TRUE(detected);
    EXPECT_EQ(det.phasesDetected(), 1u);
}

TEST(PhaseDetector, ToleratesBurstyNoise)
{
    // Alternating bursts within the recent window should not trip the
    // detector: the windowed means stay comparable.
    PhaseDetectorParams pp;
    PhaseDetector det(pp);
    Rng rng(7);
    std::uint64_t phases = 0;
    for (int i = 0; i < 400; ++i) {
        const double v = (i % 2 == 0) ? 150.0 : 50.0;
        det.push(v + rng.gaussian());
    }
    phases = det.phasesDetected();
    EXPECT_EQ(phases, 0u);
}

TEST(PhaseDetector, HistoryRestartsAfterDetection)
{
    PhaseDetector det;
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        det.push(100.0 + rng.gaussian());
    for (int i = 0; i < 40; ++i)
        det.push(1000.0 + rng.gaussian());
    ASSERT_GE(det.phasesDetected(), 1u);
    EXPECT_LT(det.windowsInPhase(), 50u);
    // The new level is now normal: no further detections.
    const auto before = det.phasesDetected();
    for (int i = 0; i < 200; ++i)
        det.push(1000.0 + rng.gaussian());
    EXPECT_EQ(det.phasesDetected(), before);
}

TEST(PhaseDetector, ScoreThresholdRespected)
{
    PhaseDetectorParams loose;
    loose.scoreThreshold = 1e9;
    PhaseDetector det(loose);
    Rng rng(11);
    for (int i = 0; i < 100; ++i)
        det.push(10.0 + rng.gaussian());
    for (int i = 0; i < 100; ++i)
        det.push(1000.0 + rng.gaussian());
    EXPECT_EQ(det.phasesDetected(), 0u);
}

Metrics
mk(double ipc, double life, double energy)
{
    return Metrics{ipc, life, energy};
}

TEST(Optimizer, PaperObjectiveSelection)
{
    // Config 1 is fastest but short-lived; config 2 is feasible and
    // fast; config 3 is feasible, within 95% of P*, and cheapest.
    const std::vector<Metrics> pred = {
        mk(1.0, 4.0, 5.0),
        mk(0.8, 9.0, 6.0),
        mk(0.77, 10.0, 4.0),
    };
    const int best = chooseOptimal(pred, LifetimeObjective{8.0, 0.95});
    EXPECT_EQ(best, 2);
}

TEST(Optimizer, IpcFractionGuardsEnergyChoice)
{
    // The cheap config is below 95% of P*: must not be chosen.
    const std::vector<Metrics> pred = {
        mk(0.8, 9.0, 6.0),
        mk(0.7, 10.0, 1.0),
    };
    EXPECT_EQ(chooseOptimal(pred, LifetimeObjective{8.0, 0.95}), 0);
}

TEST(Optimizer, InfeasibleReturnsMinusOne)
{
    const std::vector<Metrics> pred = {mk(1.0, 2.0, 1.0),
                                       mk(0.9, 7.9, 1.0)};
    EXPECT_EQ(chooseOptimal(pred, LifetimeObjective{8.0, 0.95}), -1);
    EXPECT_EQ(chooseMostDurable(pred), 1);
}

TEST(Optimizer, SafetyMarginRaisesTheFloor)
{
    const std::vector<Metrics> pred = {
        mk(1.0, 8.5, 3.0),  // feasible at 8y, not at 8y * 1.15
        mk(0.8, 10.0, 3.5), // feasible under both
    };
    EXPECT_EQ(chooseOptimal(pred, LifetimeObjective{8.0, 0.95, 1.0}),
              0);
    EXPECT_EQ(chooseOptimal(pred, LifetimeObjective{8.0, 0.95, 1.15}),
              1);
}

TEST(Optimizer, LifetimeTargetShiftsChoice)
{
    const std::vector<Metrics> pred = {
        mk(1.0, 4.5, 3.0),
        mk(0.8, 6.5, 3.5),
        mk(0.6, 10.5, 4.0),
    };
    EXPECT_EQ(chooseOptimal(pred, LifetimeObjective{4.0, 0.95}), 0);
    EXPECT_EQ(chooseOptimal(pred, LifetimeObjective{6.0, 0.95}), 1);
    EXPECT_EQ(chooseOptimal(pred, LifetimeObjective{10.0, 0.95}), 2);
}

TEST(Optimizer, PerfTargetMinimizesEnergy)
{
    const std::vector<Metrics> pred = {
        mk(1.0, 5.0, 9.0),
        mk(0.9, 5.0, 4.0),
        mk(0.5, 5.0, 1.0),
    };
    EXPECT_EQ(chooseForPerfTarget(pred, PerfTargetObjective{0.85}), 1);
    // Infeasible target: fall back to max IPC.
    EXPECT_EQ(chooseForPerfTarget(pred, PerfTargetObjective{2.0}), 0);
}

TEST(Optimizer, EnergyCapMaximizesPerf)
{
    const std::vector<Metrics> pred = {
        mk(1.0, 5.0, 9.0),
        mk(0.9, 5.0, 4.0),
        mk(0.8, 5.0, 3.0),
    };
    EXPECT_EQ(chooseForEnergyCap(pred, EnergyCapObjective{5.0, 0.0}),
              1);
    EXPECT_EQ(chooseForEnergyCap(pred, EnergyCapObjective{1.0, 0.0}),
              -1);
}

TEST(Predictors, AllKindsHaveNames)
{
    EXPECT_EQ(allPredictorKinds().size(), 7u); // Table 7 rows
    for (auto kind : allPredictorKinds())
        EXPECT_FALSE(toString(kind).empty());
}

TEST(Predictors, OfflineNeedsLibrary)
{
    EXPECT_TRUE(needsOfflineData(PredictorKind::Offline));
    EXPECT_TRUE(needsOfflineData(PredictorKind::HierBayes));
    EXPECT_FALSE(needsOfflineData(PredictorKind::GradientBoosting));
    EXPECT_FALSE(needsOfflineData(PredictorKind::QuadraticLasso));
}

class PredictorExactness : public ::testing::TestWithParam<PredictorKind>
{
};

TEST_P(PredictorExactness, LearnsLinearFunctionOfConfigVector)
{
    // Synthetic target: a noiseless linear function of the Eq. 1
    // vector. Every online model must achieve high accuracy on the
    // unsampled configurations.
    const auto space = enumerateNoQuotaSpace();
    const ml::Matrix xAll = encodeSpace(space);
    ml::Vector truth(space.size());
    for (std::size_t i = 0; i < space.size(); ++i) {
        truth[i] = 2.0 - 0.3 * xAll(i, 6) - 0.15 * xAll(i, 7) +
                   0.1 * xAll(i, 9);
    }
    TrainData data;
    data.space = &space;
    const auto samples = featureBasedSamples(3);
    data.sampleIdx = indicesInSpace(space, samples);
    data.sampleY.resize(data.sampleIdx.size());
    for (std::size_t k = 0; k < data.sampleIdx.size(); ++k)
        data.sampleY[k] = truth[data.sampleIdx[k]];

    const ml::Vector pred = predictAllConfigs(GetParam(), data);
    EXPECT_GT(ml::coefficientOfDetermination(pred, truth), 0.85);
}

INSTANTIATE_TEST_SUITE_P(
    OnlineModels, PredictorExactness,
    ::testing::Values(PredictorKind::Linear, PredictorKind::LinearLasso,
                      PredictorKind::Quadratic,
                      PredictorKind::QuadraticLasso,
                      PredictorKind::GradientBoosting));

TEST(Predictors, HierBayesUsesLibraryStructure)
{
    const auto space = enumerateNoQuotaSpace();
    const ml::Matrix xAll = encodeSpace(space);
    // Library apps: scalings of one latency-driven profile.
    std::vector<ml::Vector> rows;
    for (int a = 1; a <= 6; ++a) {
        ml::Vector row(space.size());
        for (std::size_t i = 0; i < space.size(); ++i)
            row[i] = a * (3.0 - 0.4 * xAll(i, 6));
        rows.push_back(row);
    }
    const ml::Matrix lib = ml::Matrix::fromRows(rows);

    ml::Vector truth(space.size());
    for (std::size_t i = 0; i < space.size(); ++i)
        truth[i] = 2.5 * (3.0 - 0.4 * xAll(i, 6));

    TrainData data;
    data.space = &space;
    data.library = &lib;
    const auto samples = featureBasedSamples(5);
    data.sampleIdx = indicesInSpace(space, samples);
    data.sampleY.resize(data.sampleIdx.size());
    for (std::size_t k = 0; k < data.sampleIdx.size(); ++k)
        data.sampleY[k] = truth[data.sampleIdx[k]];
    const ml::Vector pred =
        predictAllConfigs(PredictorKind::HierBayes, data);
    EXPECT_GT(ml::coefficientOfDetermination(pred, truth), 0.9);
}

TEST(FeatureSelection, FindsPlantedPrimaryFeatures)
{
    // Synthetic objectives driven only by the primary features.
    const auto space = enumerateNoQuotaSpace();
    std::vector<Metrics> measured(space.size());
    for (std::size_t i = 0; i < space.size(); ++i) {
        const ml::Vector v = compressConfig(space[i]);
        measured[i].ipc = 3.0 - 0.5 * v[2] - 0.2 * v[3] + 0.1 * v[4];
        measured[i].lifetimeYears = 1.0 + v[2] + 0.5 * v[3] - 0.3 * v[4];
        measured[i].energyJ = 2.0 + 0.3 * v[2];
    }
    const FeatureSelectionResult res = selectFeatures(space, measured);
    ASSERT_EQ(res.coefficients.size(), 3u);
    // Exactly the primary features must survive.
    EXPECT_EQ(res.primary, primaryFeatureIndices());
}

TEST(FeatureSelection, TopQuadraticFeaturesNamed)
{
    const auto space = enumerateNoQuotaSpace();
    const ml::Matrix xAll = encodeSpace(space);
    ml::Vector y(space.size());
    for (std::size_t i = 0; i < space.size(); ++i)
        y[i] = -1.0 * xAll(i, 6) + 0.5 * xAll(i, 6) * xAll(i, 6);
    const auto ranked = topQuadraticFeatures(space, y, 3);
    ASSERT_GE(ranked.size(), 1u);
    // fast_latency terms must dominate.
    EXPECT_NE(ranked[0].name.find("fast_latency"), std::string::npos);
}

} // namespace
} // namespace mct
