/**
 * @file
 * Unit tests for the set-associative cache and the three-level
 * hierarchy: LRU behavior, dirty writebacks, victim address
 * reconstruction, the stack-position hit histogram, the "useless
 * positions" rule, and eager-candidate collection.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"

namespace mct
{
namespace
{

/** A tiny direct-mapped-ish cache: 4 sets x 2 ways of 64 B lines. */
CacheParams
tinyParams()
{
    return CacheParams{"tiny", 4 * 2 * 64, 2};
}

/** Address for (set, tag) in the tiny cache. */
Addr
tinyAddr(std::uint64_t set, std::uint64_t tag)
{
    return (tag * 4 + set) * 64;
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyParams());
    Victim v;
    EXPECT_FALSE(c.access(tinyAddr(0, 0), false, v));
    EXPECT_TRUE(c.access(tinyAddr(0, 0), false, v));
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, EvictsLeastRecentlyUsed)
{
    Cache c(tinyParams());
    Victim v;
    c.access(tinyAddr(0, 1), false, v); // way A
    c.access(tinyAddr(0, 2), false, v); // way B
    c.access(tinyAddr(0, 1), false, v); // touch A
    c.access(tinyAddr(0, 3), false, v); // evicts B (LRU)
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, tinyAddr(0, 2));
    EXPECT_TRUE(c.contains(tinyAddr(0, 1)));
    EXPECT_FALSE(c.contains(tinyAddr(0, 2)));
}

TEST(Cache, VictimAddressReconstruction)
{
    Cache c(tinyParams());
    Victim v;
    for (std::uint64_t tag = 0; tag < 3; ++tag)
        c.access(tinyAddr(2, tag), true, v);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.addr, tinyAddr(2, 0));
}

TEST(Cache, WritesMakeLinesDirty)
{
    Cache c(tinyParams());
    Victim v;
    c.access(tinyAddr(1, 0), true, v);
    EXPECT_TRUE(c.isDirty(tinyAddr(1, 0)));
    c.access(tinyAddr(1, 1), false, v);
    EXPECT_FALSE(c.isDirty(tinyAddr(1, 1)));
}

TEST(Cache, DirtyEvictionCounted)
{
    Cache c(tinyParams());
    Victim v;
    c.access(tinyAddr(0, 0), true, v);
    c.access(tinyAddr(0, 1), false, v);
    c.access(tinyAddr(0, 2), false, v); // evicts dirty tag 0
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, WritebackMarksExistingLineDirty)
{
    Cache c(tinyParams());
    Victim v;
    c.access(tinyAddr(0, 0), false, v);
    c.writeback(tinyAddr(0, 0), v);
    EXPECT_FALSE(v.valid);
    EXPECT_TRUE(c.isDirty(tinyAddr(0, 0)));
}

TEST(Cache, WritebackAllocatesNearLruEnd)
{
    Cache c(tinyParams());
    Victim v;
    c.access(tinyAddr(0, 1), false, v);
    c.access(tinyAddr(0, 2), false, v);
    // Writeback-allocate tag 3: set full, evicts LRU (tag 1).
    c.writeback(tinyAddr(0, 3), v);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, tinyAddr(0, 1));
    // The allocated line is itself next in line for eviction.
    c.access(tinyAddr(0, 4), false, v);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.addr, tinyAddr(0, 3));
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, HistogramTracksStackPositions)
{
    Cache c(tinyParams());
    Victim v;
    c.access(tinyAddr(0, 0), false, v);
    c.access(tinyAddr(0, 1), false, v);
    c.access(tinyAddr(0, 1), false, v); // MRU hit -> position 0
    c.access(tinyAddr(0, 0), false, v); // LRU hit -> position 1
    EXPECT_EQ(c.positionHits()[0], 1u);
    EXPECT_EQ(c.positionHits()[1], 1u);
}

class UselessPositions : public ::testing::TestWithParam<int>
{
};

TEST_P(UselessPositions, ThresholdControlsDeadRegion)
{
    // 8-way cache with a constructed hit profile: almost all hits at
    // MRU, a trickle at the LRU end.
    Cache c(CacheParams{"u", 8 * 64 * 4, 8});
    Victim v;
    // Fill one set with 8 lines.
    for (std::uint64_t t = 0; t < 8; ++t)
        c.access((t * 4) * 64, false, v);
    // 96 MRU hits.
    for (int i = 0; i < 96; ++i)
        c.access((7 * 4) * 64, false, v);
    const int thr = GetParam();
    const unsigned dead = c.uselessPositions(thr);
    // All positions except MRU received ~1 hit each (from the fill
    // pattern's promotion chain); the dead region must shrink as the
    // threshold grows (1/thr gets stricter).
    EXPECT_LE(dead, 7u);
    if (thr >= 32) {
        EXPECT_LE(dead, c.uselessPositions(4));
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, UselessPositions,
                         ::testing::Values(4, 8, 16, 32));

TEST(Cache, UselessPositionsMonotoneInThreshold)
{
    Cache c(CacheParams{"u", 8 * 64 * 16, 8});
    Victim v;
    // Mixed traffic over a few sets.
    for (std::uint64_t i = 0; i < 4000; ++i)
        c.access(((i * 37) % 512) * 64, i % 3 == 0, v);
    unsigned prev = 8;
    for (int thr : {4, 8, 16, 32}) {
        const unsigned dead = c.uselessPositions(thr);
        EXPECT_LE(dead, prev); // stricter budget, smaller region
        prev = dead;
    }
}

TEST(Cache, NoHitsMeansNoDeadRegion)
{
    Cache c(tinyParams());
    EXPECT_EQ(c.uselessPositions(4), 0u);
}

TEST(Cache, EagerCandidatesAreDirtyLruLines)
{
    Cache c(CacheParams{"e", 8 * 64 * 4, 8});
    Victim v;
    // One set: 8 lines, first 4 dirty; heavy MRU hits so the LRU end
    // is dead under threshold 4.
    for (std::uint64_t t = 0; t < 8; ++t)
        c.access(t * 4 * 64, t < 4, v);
    for (int i = 0; i < 200; ++i)
        c.access(7 * 4 * 64, false, v);

    std::vector<Addr> out;
    const unsigned n = c.collectEagerCandidates(4, 16, out);
    EXPECT_EQ(n, out.size());
    EXPECT_GT(n, 0u);
    for (Addr a : out) {
        EXPECT_TRUE(c.contains(a));
        EXPECT_FALSE(c.isDirty(a)); // cleaned on collection
    }
    EXPECT_EQ(c.stats().eagerCleaned, n);
}

TEST(Cache, RewriteAfterEagerCleanCounted)
{
    Cache c(CacheParams{"e", 8 * 64 * 4, 8});
    Victim v;
    for (std::uint64_t t = 0; t < 8; ++t)
        c.access(t * 4 * 64, true, v);
    for (int i = 0; i < 200; ++i)
        c.access(7 * 4 * 64, false, v);
    std::vector<Addr> out;
    ASSERT_GT(c.collectEagerCandidates(4, 4, out), 0u);
    const Addr victim = out[0];
    c.access(victim, true, v); // re-dirty
    EXPECT_EQ(c.stats().rewrites, 1u);
    EXPECT_TRUE(c.isDirty(victim));
}

TEST(Cache, ResetClearsState)
{
    Cache c(tinyParams());
    Victim v;
    c.access(0, true, v);
    c.reset();
    EXPECT_FALSE(c.contains(0));
    EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Hierarchy, MissesAllLevelsOnColdAccess)
{
    CacheHierarchy h{HierarchyParams{}};
    AccessOutcome out;
    h.access(0x1234000, false, out);
    EXPECT_EQ(out.hitLevel, 0);
    EXPECT_TRUE(out.writebacks.empty());
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h{HierarchyParams{}};
    AccessOutcome out;
    h.access(0x1234000, false, out);
    h.access(0x1234000, false, out);
    EXPECT_EQ(out.hitLevel, 1);
}

TEST(Hierarchy, L1EvictionLeavesLineInL2)
{
    HierarchyParams hp;
    CacheHierarchy h(hp);
    AccessOutcome out;
    const Addr target = 0;
    h.access(target, false, out);
    // Evict target from L1: walk many conflicting lines. L1 32 KB
    // 4-way => 128 sets; addresses with the same set index conflict.
    for (int i = 1; i <= 16; ++i)
        h.access(target + static_cast<Addr>(i) * 128 * 64, false, out);
    EXPECT_FALSE(h.l1d().contains(target));
    h.access(target, false, out);
    EXPECT_GE(out.hitLevel, 2); // L2 or L3, not memory
    EXPECT_NE(out.hitLevel, 0);
}

TEST(Hierarchy, DirtyDataFlowsDownToMemory)
{
    // Use a small hierarchy so evictions happen quickly.
    HierarchyParams hp;
    hp.l1 = CacheParams{"L1", 2 * 1024, 2};
    hp.l2 = CacheParams{"L2", 4 * 1024, 2};
    hp.l3 = CacheParams{"L3", 8 * 1024, 2};
    CacheHierarchy h(hp);
    AccessOutcome out;
    std::size_t memWritebacks = 0;
    // Stream writes over 64 KB: far beyond every level.
    for (Addr a = 0; a < 64 * 1024; a += 64) {
        h.access(a, true, out);
        memWritebacks += out.writebacks.size();
    }
    EXPECT_GT(memWritebacks, 100u);
}

TEST(Hierarchy, SharedL3SeesBothCores)
{
    HierarchyParams hp;
    auto shared = std::make_shared<Cache>(hp.l3);
    CacheHierarchy a(hp, shared), b(hp, shared);
    AccessOutcome out;
    a.access(0x5000, false, out);
    EXPECT_EQ(out.hitLevel, 0);
    // Core b misses privately but hits the shared L3.
    b.access(0x5000, false, out);
    EXPECT_EQ(out.hitLevel, 3);
}

TEST(Hierarchy, ResetInvalidatesEverything)
{
    CacheHierarchy h{HierarchyParams{}};
    AccessOutcome out;
    h.access(0x42000, true, out);
    h.reset();
    h.access(0x42000, false, out);
    EXPECT_EQ(out.hitLevel, 0);
}

TEST(Hierarchy, Table8Geometry)
{
    HierarchyParams hp;
    EXPECT_EQ(hp.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(hp.l1.ways, 4u);
    EXPECT_EQ(hp.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(hp.l2.ways, 8u);
    EXPECT_EQ(hp.l3.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(hp.l3.ways, 16u);
}

} // namespace
} // namespace mct
