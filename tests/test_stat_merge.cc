/**
 * @file
 * Tests for StatMerge: per-kind merge semantics (counters sum, gauges
 * collapse to dispersion cells, histograms add bucket-wise), exactness
 * of merged histograms against the concatenated observation stream,
 * and bit-level permutation invariance — the property the fleet
 * document's byte-identity promise rests on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/instrument.hh"
#include "common/stat_merge.hh"

namespace mct
{
namespace
{

StatValue
counter(double v)
{
    StatValue s;
    s.kind = StatKind::Counter;
    s.num = v;
    return s;
}

StatValue
gauge(double v)
{
    StatValue s;
    s.kind = StatKind::Gauge;
    s.num = v;
    return s;
}

/** Snapshot form of @p h: sum in num, trailing-zero-trimmed buckets. */
StatValue
hist(const LogHistogram &h)
{
    StatValue s;
    s.kind = StatKind::Histogram;
    s.num = h.sum();
    s.count = h.count();
    s.buckets.assign(h.buckets().begin(), h.buckets().end());
    while (!s.buckets.empty() && s.buckets.back() == 0)
        s.buckets.pop_back();
    return s;
}

std::string
bytesOf(const StatSnapshot &snap)
{
    std::ostringstream os;
    writeSnapshotJson(os, snap);
    return os.str();
}

TEST(StatMerge, CountersSumGaugesAverageHistogramsAdd)
{
    LogHistogram h1, h2;
    h1.record(1.0);
    h1.record(5.0);
    h2.record(300.0);

    StatSnapshot a{{"work.done", counter(10.0)},
                   {"sim.objective.ipc", gauge(1.0)},
                   {"lat.q.ns", hist(h1)}};
    StatSnapshot b{{"work.done", counter(32.0)},
                   {"sim.objective.ipc", gauge(3.0)},
                   {"lat.q.ns", hist(h2)}};

    StatMerge m;
    m.add("r1", a);
    m.add("r2", b);
    const StatMerge::Result r = m.merge();

    EXPECT_EQ(r.runs, 2u);
    EXPECT_EQ(r.merged.at("work.done").kind, StatKind::Counter);
    EXPECT_DOUBLE_EQ(r.merged.at("work.done").num, 42.0);
    EXPECT_EQ(r.merged.at("sim.objective.ipc").kind, StatKind::Gauge);
    EXPECT_DOUBLE_EQ(r.merged.at("sim.objective.ipc").num, 2.0);

    const StatValue &h = r.merged.at("lat.q.ns");
    EXPECT_EQ(h.kind, StatKind::Histogram);
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.num, 306.0);

    const StatMerge::GaugeCells &g = r.gauges.at("sim.objective.ipc");
    EXPECT_EQ(g.count, 2u);
    EXPECT_DOUBLE_EQ(g.mean, 2.0);
    EXPECT_DOUBLE_EQ(g.min, 1.0);
    EXPECT_DOUBLE_EQ(g.max, 3.0);
    EXPECT_DOUBLE_EQ(g.stddev, std::sqrt(2.0));
    // Counters get no dispersion cells.
    EXPECT_EQ(r.gauges.count("work.done"), 0u);
}

TEST(StatMerge, MergedHistogramEqualsConcatenatedStream)
{
    // Two disjoint observation streams vs. both recorded into one
    // histogram: the merged buckets must match the concatenated
    // reference exactly, which makes any percentile of the merge the
    // true percentile of the pooled observations.
    const std::vector<double> sa{0.2, 1.5, 3.0, 3.1, 700.0};
    const std::vector<double> sb{0.9, 2.0, 64.0, 64.5};
    LogHistogram ha, hb, ref;
    for (double v : sa) {
        ha.record(v);
        ref.record(v);
    }
    for (double v : sb) {
        hb.record(v);
        ref.record(v);
    }

    StatMerge m;
    m.add("a", {{"lat.x.ns", hist(ha)}});
    m.add("b", {{"lat.x.ns", hist(hb)}});
    const StatValue merged = m.merge().merged.at("lat.x.ns");
    const StatValue expect = hist(ref);

    EXPECT_EQ(merged.count, expect.count);
    EXPECT_DOUBLE_EQ(merged.num, expect.num);
    EXPECT_EQ(merged.buckets, expect.buckets);
}

TEST(StatMerge, SingleRunIsIdentity)
{
    LogHistogram h;
    h.record(2.5);
    h.record(17.0);
    StatSnapshot snap{{"work.done", counter(7.0)},
                      {"sim.objective.ipc", gauge(0.75)},
                      {"lat.q.ns", hist(h)}};

    StatMerge m;
    m.add("only", snap);
    const StatMerge::Result r = m.merge();

    EXPECT_EQ(r.runs, 1u);
    EXPECT_EQ(bytesOf(r.merged), bytesOf(snap));
    const StatMerge::GaugeCells &g = r.gauges.at("sim.objective.ipc");
    EXPECT_EQ(g.count, 1u);
    EXPECT_DOUBLE_EQ(g.mean, 0.75);
    EXPECT_DOUBLE_EQ(g.min, 0.75);
    EXPECT_DOUBLE_EQ(g.max, 0.75);
    EXPECT_DOUBLE_EQ(g.stddev, 0.0);
}

TEST(StatMerge, KeysPresentInOnlySomeRunsMergeOverCarriers)
{
    StatSnapshot a{{"only.in.a", counter(5.0)},
                   {"shared.gauge", gauge(1.0)}};
    StatSnapshot b{{"shared.gauge", gauge(2.0)}};
    StatSnapshot c{{"only.in.c", gauge(9.0)}};

    StatMerge m;
    m.add("a", a);
    m.add("b", b);
    m.add("c", c);
    const StatMerge::Result r = m.merge();

    EXPECT_DOUBLE_EQ(r.merged.at("only.in.a").num, 5.0);
    EXPECT_DOUBLE_EQ(r.merged.at("shared.gauge").num, 1.5);
    EXPECT_EQ(r.gauges.at("shared.gauge").count, 2u);
    EXPECT_EQ(r.gauges.at("only.in.c").count, 1u);
}

TEST(StatMerge, MergeIsPermutationInvariantBitwise)
{
    // Values chosen to make floating-point accumulation order visible
    // (0.1 and 1/3 are not exactly representable); bit-identity then
    // proves the canonical internal ordering, not luck.
    LogHistogram h1, h2, h3;
    h1.record(0.1);
    h2.record(1.0 / 3.0);
    h2.record(250.0);
    h3.record(9.0);
    StatSnapshot a{{"c", counter(0.1)},
                   {"g", gauge(1.0 / 3.0)},
                   {"h", hist(h1)}};
    StatSnapshot b{{"c", counter(0.2)},
                   {"g", gauge(0.1)},
                   {"h", hist(h2)}};
    StatSnapshot c{{"c", counter(0.3)},
                   {"g", gauge(2.0 / 3.0)},
                   {"h", hist(h3)}};

    const std::vector<std::vector<int>> perms{
        {0, 1, 2}, {0, 2, 1}, {1, 0, 2},
        {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
    const std::vector<std::pair<std::string, StatSnapshot>> runs{
        {"r1", a}, {"r2", b}, {"r3", c}};

    std::string firstBytes;
    StatMerge::GaugeCells firstCells;
    for (const auto &p : perms) {
        StatMerge m;
        for (int i : p)
            m.add(runs[static_cast<std::size_t>(i)].first,
                  runs[static_cast<std::size_t>(i)].second);
        const StatMerge::Result r = m.merge();
        const std::string bytes = bytesOf(r.merged);
        const StatMerge::GaugeCells cells = r.gauges.at("g");
        if (firstBytes.empty()) {
            firstBytes = bytes;
            firstCells = cells;
            continue;
        }
        EXPECT_EQ(bytes, firstBytes);
        // GaugeCells carry doubles that never pass through the JSON
        // writer; compare them bit-for-bit too.
        EXPECT_EQ(cells.count, firstCells.count);
        EXPECT_EQ(cells.mean, firstCells.mean);
        EXPECT_EQ(cells.min, firstCells.min);
        EXPECT_EQ(cells.max, firstCells.max);
        EXPECT_EQ(cells.stddev, firstCells.stddev);
    }
}

} // namespace
} // namespace mct
