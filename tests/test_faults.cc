/**
 * @file
 * Fault-injection harness and graceful-degradation tests: the fault
 * plan grammar, the injector's deterministic hooks, per-fault-class
 * survival scenarios for the MCT runtime (quarantine, prediction
 * sanity bounds, escalation ladder, emergency wear clamp), corrupt
 * sweep-cache recovery, and seeded chaos property tests over every
 * built-in plan.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/fault_plan.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "mct/controller.hh"
#include "sim/fault_injector.hh"
#include "sim/sweep_cache.hh"

namespace mct
{
namespace
{

/** Scaled-down runtime parameters so fault scenarios stay quick. */
MctParams
fastParams()
{
    MctParams p;
    p.sampling.unitInsts = 2000;
    p.sampling.settleInsts = 1000;
    p.sampling.rounds = 2;
    p.healthCheckPeriod = 300 * 1000;
    return p;
}

/** Parse a plan the test requires to be valid. */
FaultPlan
mustParse(const std::string &text)
{
    const FaultPlanParse r = parseFaultPlan(text);
    EXPECT_TRUE(r.ok) << text << ": " << r.error;
    return r.plan;
}

/** Run in small chunks so the injector sees window transitions. */
void
runChunked(System &sys, InstCount insts)
{
    while (insts > 0) {
        const InstCount step = std::min<InstCount>(insts, 50 * 1000);
        sys.run(step);
        insts -= step;
    }
}

bool
finiteMetrics(const Metrics &m)
{
    return std::isfinite(m.ipc) && std::isfinite(m.lifetimeYears) &&
           std::isfinite(m.energyJ);
}

TEST(FaultPlan, ParsesEveryBuiltinName)
{
    for (const std::string &name : builtinFaultPlanNames()) {
        const FaultPlanParse r = parseFaultPlan(name);
        EXPECT_TRUE(r.ok) << name << ": " << r.error;
        EXPECT_FALSE(r.plan.empty()) << name;
        EXPECT_FALSE(builtinFaultPlanText(name).empty());
    }
    EXPECT_TRUE(builtinFaultPlanText("no-such-plan").empty());
}

TEST(FaultPlan, ParsesGrammarWithSuffixes)
{
    const FaultPlan plan =
        mustParse("latency_drift@500k+1m:mag=3;"
                  "bank_degrade@2g:mag=4,bank=2;"
                  "counter_corrupt:prob=0.25");
    ASSERT_EQ(plan.specs.size(), 3u);
    EXPECT_EQ(plan.specs[0].kind, FaultKind::LatencyDrift);
    EXPECT_EQ(plan.specs[0].startInst, 500000u);
    EXPECT_EQ(plan.specs[0].durationInsts, 1000000u);
    EXPECT_DOUBLE_EQ(plan.specs[0].magnitude, 3.0);
    EXPECT_EQ(plan.specs[1].startInst, 2000000000u);
    EXPECT_EQ(plan.specs[1].durationInsts, 0u); // forever
    EXPECT_EQ(plan.specs[1].bank, 2);
    EXPECT_EQ(plan.specs[2].startInst, 0u);
    EXPECT_DOUBLE_EQ(plan.specs[2].prob, 0.25);
    EXPECT_TRUE(plan.has(FaultKind::BankDegrade));
    EXPECT_FALSE(plan.has(FaultKind::WearClockSkew));
}

TEST(FaultPlan, RejectsMalformedSpecsWithTypedErrors)
{
    const char *bad[] = {
        "bogus_kind",                      // unknown kind
        "latency_drift@xyz",               // bad start
        "latency_drift@1k+zz",             // bad duration
        "latency_drift:mag=nope",          // bad value
        "latency_drift:mag=-2",            // magnitude must be > 0
        "counter_corrupt:prob=1.5",        // probability out of range
        "bank_degrade:bank=1.5",           // bank must be an integer
        "latency_drift:wat=1",             // unknown key
        "",                                // empty plan
    };
    for (const char *text : bad) {
        const FaultPlanParse r = parseFaultPlan(text);
        EXPECT_FALSE(r.ok) << "accepted: " << text;
        EXPECT_FALSE(r.error.empty()) << text;
    }
}

TEST(FaultPlan, SummaryRoundTrips)
{
    for (const std::string &name : builtinFaultPlanNames()) {
        const FaultPlan plan = mustParse(name);
        const FaultPlan again = mustParse(plan.summary());
        ASSERT_EQ(again.specs.size(), plan.specs.size()) << name;
        for (std::size_t i = 0; i < plan.specs.size(); ++i) {
            EXPECT_EQ(again.specs[i].kind, plan.specs[i].kind);
            EXPECT_EQ(again.specs[i].startInst,
                      plan.specs[i].startInst);
            EXPECT_EQ(again.specs[i].durationInsts,
                      plan.specs[i].durationInsts);
            EXPECT_DOUBLE_EQ(again.specs[i].prob, plan.specs[i].prob);
            EXPECT_DOUBLE_EQ(again.specs[i].magnitude,
                             plan.specs[i].magnitude);
            EXPECT_EQ(again.specs[i].bank, plan.specs[i].bank);
        }
    }
}

TEST(FaultPlan, ActiveWindows)
{
    FaultSpec s;
    s.startInst = 100;
    s.durationInsts = 50;
    EXPECT_FALSE(s.activeAt(99));
    EXPECT_TRUE(s.activeAt(100));
    EXPECT_TRUE(s.activeAt(149));
    EXPECT_FALSE(s.activeAt(150));
    s.durationInsts = 0; // forever
    EXPECT_TRUE(s.activeAt(100));
    EXPECT_TRUE(s.activeAt(1u << 30));
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    resetJsonNonfiniteCount();
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNonfiniteCount(), 3u);
    EXPECT_EQ(jsonNumber(1.5), "1.5"); // finite values don't count
    EXPECT_EQ(jsonNonfiniteCount(), 3u);
    resetJsonNonfiniteCount();
    EXPECT_EQ(jsonNonfiniteCount(), 0u);
}

TEST(Csv, TryDoubleAcceptsNumbersRejectsGarbage)
{
    double v = 0.0;
    EXPECT_TRUE(CsvFile::tryDouble("1.25", v));
    EXPECT_DOUBLE_EQ(v, 1.25);
    EXPECT_TRUE(CsvFile::tryDouble("-3e2", v));
    EXPECT_DOUBLE_EQ(v, -300.0);
    EXPECT_TRUE(CsvFile::tryDouble("7 ", v)); // trailing blanks ok
    EXPECT_FALSE(CsvFile::tryDouble("", v));
    EXPECT_FALSE(CsvFile::tryDouble("abc", v));
    EXPECT_FALSE(CsvFile::tryDouble("1.5x", v));
    EXPECT_FALSE(CsvFile::tryDouble("###", v));
}

TEST(SweepCacheFaults, CorruptRowsAreSkippedAndRecomputed)
{
    const std::string path = "test_faults_cache.csv";
    {
        std::ofstream os(path);
        os << "lbm,k1,0.5,2.0,1.0\n";       // good
        os << "lbm,k2,abc,2.0,1.0\n";       // non-numeric
        os << "lbm,k3,inf,2.0,1.0\n";       // non-finite
        os << "lbm,k4,0.4\n";               // wrong arity
        os << "lbm,k5,0.6,nan,1.0\n";       // NaN lifetime
    }
    EvalParams ep;
    SweepCache cache(ep, path);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.recoveredLoads(), 4u);
    std::remove(path.c_str());
}

TEST(SweepCacheFaults, InjectorCorruptionSurvivesReload)
{
    const std::string path = "test_faults_cache2.csv";
    {
        std::ofstream os(path);
        for (int i = 0; i < 40; ++i) {
            os << "lbm,cfg" << i << "," << 0.1 * i << ",2.0,1.0\n";
        }
    }
    FaultInjector inj(mustParse("sweep_corrupt"), 5);
    ASSERT_TRUE(inj.wantsSweepCorruption());
    ASSERT_TRUE(inj.corruptCsvFile(path));
    EXPECT_EQ(inj.injected(FaultKind::SweepCacheCorrupt), 1u);

    EvalParams ep;
    SweepCache cache(ep, path); // must load without aborting
    EXPECT_GE(cache.recoveredLoads(), 1u);
    EXPECT_LT(cache.size(), 40u);
    std::remove(path.c_str());

    // A missing file is left alone.
    EXPECT_FALSE(inj.corruptCsvFile("no_such_file_at_all.csv"));
}

TEST(FaultInjector, StochasticHooksAreDeterministic)
{
    const FaultPlan plan =
        mustParse("counter_corrupt:prob=1;predictor_garbage:prob=1");
    FaultInjector a(plan, 42), b(plan, 42);
    Metrics ma, mb;
    ma.ipc = mb.ipc = 1.0;
    ma.lifetimeYears = mb.lifetimeYears = 2.0;
    ma.energyJ = mb.energyJ = 3.0;
    EXPECT_TRUE(a.corruptMetrics(ma));
    EXPECT_TRUE(b.corruptMetrics(mb));
    // Same seed, same draw: bit-identical corruption (NaN included).
    EXPECT_TRUE(
        (ma.ipc == mb.ipc) ||
        (std::isnan(ma.ipc) && std::isnan(mb.ipc)));
    EXPECT_TRUE((ma.lifetimeYears == mb.lifetimeYears) ||
                (std::isnan(ma.lifetimeYears) &&
                 std::isnan(mb.lifetimeYears)));

    std::vector<double> pa(16, 1.0), pb(16, 1.0);
    EXPECT_EQ(a.corruptPredictions(pa), 16u);
    EXPECT_EQ(b.corruptPredictions(pb), 16u);
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_TRUE((pa[i] == pb[i]) ||
                    (std::isnan(pa[i]) && std::isnan(pb[i])));
    }
    EXPECT_GT(a.injectedTotal(), 0u);
}

TEST(FaultInjector, HooksRespectTheArmedWindow)
{
    const FaultPlan plan =
        mustParse("counter_corrupt@1000+500:prob=1");
    FaultInjector inj(plan, 1);
    InstCount clock = 0;
    inj.setClock(&clock);
    Metrics m;
    m.ipc = 1.0;
    EXPECT_FALSE(inj.corruptMetrics(m)); // before the window
    clock = 1200;
    EXPECT_TRUE(inj.corruptMetrics(m)); // inside
    clock = 1500;
    Metrics m2;
    m2.ipc = 1.0;
    EXPECT_FALSE(inj.corruptMetrics(m2)); // after
    EXPECT_DOUBLE_EQ(m2.ipc, 1.0);
}

TEST(FaultSystem, LatencyDriftLowersIpc)
{
    SystemParams sp;
    System clean("lbm", sp, staticBaselineConfig());
    runChunked(clean, 300 * 1000);
    const SysSnapshot c0 = clean.snapshot();
    runChunked(clean, 500 * 1000);
    const Metrics cm = clean.metricsSince(c0);

    System faulty("lbm", sp, staticBaselineConfig());
    FaultInjector inj(mustParse("latency_drift:mag=3"), 1);
    faulty.attachFaultInjector(&inj);
    runChunked(faulty, 300 * 1000);
    const SysSnapshot f0 = faulty.snapshot();
    runChunked(faulty, 500 * 1000);
    const Metrics fm = faulty.metricsSince(f0);

    EXPECT_EQ(inj.injected(FaultKind::LatencyDrift), 1u);
    EXPECT_LT(fm.ipc, cm.ipc);
    // fault.* stats are registered on attach.
    EXPECT_GE(faulty.statRegistry().value("fault.injected.total"), 1.0);
    EXPECT_GE(faulty.statRegistry().value("fault.active"), 1.0);
}

TEST(FaultSystem, BankDegradeSkewsTargetedBankWear)
{
    SystemParams sp;
    System faulty("stream", sp, staticBaselineConfig());
    FaultInjector inj(mustParse("bank_degrade:mag=4,bank=0"), 1);
    faulty.attachFaultInjector(&inj);
    runChunked(faulty, 800 * 1000);
    const NvmDevice &dev = faulty.device();
    ASSERT_GE(dev.numBanks(), 2u);
    double others = 0.0;
    for (unsigned b = 1; b < dev.numBanks(); ++b)
        others = std::max(others, dev.bank(b).wear);
    // The degraded bank accrues disproportionate wear.
    EXPECT_GT(dev.bank(0).wear, 1.5 * others);
}

TEST(FaultRuntime, SurvivesCounterCorruption)
{
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    FaultInjector inj(mustParse("counter_corrupt:prob=0.3,mag=1e6"), 3);
    sys.attachFaultInjector(&inj);
    sys.run(200 * 1000);
    MctParams mp = fastParams();
    MctController ctl(sys, mp);
    const SysSnapshot s0 = sys.snapshot();
    ctl.runFor(1600 * 1000);
    EXPECT_GE(ctl.decisions().size(), 1u);
    // Corrupt windows were quarantined or the baseline was repaired,
    // never fed into the fit.
    EXPECT_GT(ctl.quarantinedSamples() + ctl.baselineRepairs(), 0u);
    EXPECT_TRUE(finiteMetrics(sys.metricsSince(s0)));
    EXPECT_TRUE(finiteMetrics(ctl.baselineMetrics()));
    EXPECT_GT(inj.injected(FaultKind::CounterCorrupt), 0u);
}

TEST(FaultRuntime, PredictorGarbageFallsBackThenRecovers)
{
    // Garbage predictions for the first 2M instructions, clean after:
    // the runtime must reject the poisoned rounds, run the baseline
    // through a cooldown, and return to an optimizer-chosen
    // configuration once the fault clears.
    SystemParams sp;
    System sys("lbm", sp, staticBaselineConfig());
    FaultInjector inj(
        mustParse("predictor_garbage@0+2m:prob=1,mag=1e5"), 3);
    sys.attachFaultInjector(&inj);
    sys.run(200 * 1000);
    MctParams mp = fastParams();
    mp.objective.minLifetimeYears = 0.5; // feasible in scaled windows
    mp.recovery.maxSampleRetries = 0;
    mp.recovery.cooldownInsts = 100 * 1000;
    MctController ctl(sys, mp);
    const SysSnapshot s0 = sys.snapshot();
    ctl.runFor(6 * 1000 * 1000);
    ASSERT_GE(ctl.decisions().size(), 2u);
    // While poisoned: the round is rejected and the baseline holds.
    EXPECT_GT(ctl.rejectedPredictions(), 0u);
    EXPECT_FALSE(ctl.decisions().front().feasible);
    EXPECT_EQ(ctl.decisions().front().config, mp.baseline);
    EXPECT_GE(ctl.reengagements(), 1u);
    // After the window closes: a real choice again.
    EXPECT_TRUE(ctl.decisions().back().feasible);
    EXPECT_TRUE(finiteMetrics(sys.metricsSince(s0)));
}

TEST(FaultRuntime, EscalationLadderFallsBackToBaseline)
{
    // Satellite: stub predictor makes the fastest-wearing
    // configuration look fabulous; under a strict lifetime floor its
    // fixup quota throttles it hard on a write-heavy workload, so
    // measured health checks climb the ladder
    // (strike -> resample -> fallback + cooldown).
    SystemParams sp;
    System sys("stream", sp, staticBaselineConfig());
    sys.run(200 * 1000);
    MctParams mp = fastParams();
    mp.objective.minLifetimeYears = 10.0; // strict: fixup quota bites
    mp.healthCheckPeriod = 100 * 1000;
    mp.recovery.cooldownInsts = 50 * 1000 * 1000; // park after falling
    // Find the fastest-wearing bare configuration: minimum write
    // latencies, no wear-saving techniques.
    const auto space = enumerateNoQuotaSpace(mp.spaceOpts);
    std::size_t worst = space.size();
    double bestLat = 1e9;
    for (std::size_t i = 0; i < space.size(); ++i) {
        const MellowConfig &c = space[i];
        if (c.bankAware || c.eagerWritebacks)
            continue;
        const double lat = c.fastLatency + c.slowLatency;
        if (lat < bestLat) {
            bestLat = lat;
            worst = i;
        }
    }
    ASSERT_LT(worst, space.size());
    const std::size_t spaceSize = space.size();
    mp.predictOverride = [worst, spaceSize](const TrainData &,
                                            const char *objective) {
        ml::Vector v(spaceSize, 1.0);
        if (std::string(objective) == "ipc")
            v[worst] = 3.0; // irresistible, and wrong
        if (std::string(objective) == "lifetime")
            v[worst] = 50.0; // stays feasible across resamples
        return v;
    };
    MctController ctl(sys, mp);
    for (int i = 0; i < 60 && ctl.fallbacks() == 0; ++i)
        ctl.runFor(200 * 1000);
    ASSERT_GE(ctl.fallbacks(), 1u);
    // The ladder was climbed: records at levels 1, 2, and the
    // fell-back record at 3.
    unsigned maxLadder = 0;
    bool sawFellBack = false;
    for (const HealthRecord &h : ctl.healthHistory()) {
        maxLadder = std::max(maxLadder, h.ladder);
        sawFellBack = sawFellBack || h.fellBack;
    }
    EXPECT_TRUE(sawFellBack);
    EXPECT_GE(maxLadder, 3u);
    // Fallback restored the baseline and benched the optimizer.
    EXPECT_EQ(ctl.currentConfig(), mp.baseline);
    EXPECT_TRUE(ctl.inCooldown());
    EXPECT_EQ(ctl.ladderLevel(), 0u);
}

TEST(FaultRuntime, EmergencyClampEngagesAndHoldsSafestConfig)
{
    // With an absurd margin the wear projection always "violates" the
    // floor: the clamp must engage right after the first decision and
    // pin the safest configuration.
    SystemParams sp;
    System sys("stream", sp, staticBaselineConfig());
    sys.run(200 * 1000);
    MctParams mp = fastParams();
    mp.recovery.emergencyMargin = 1e9;
    mp.recovery.emergencyRelease = 2e9; // never released
    mp.recovery.emergencyWindowInsts = 60 * 1000;
    MctController ctl(sys, mp);
    ctl.runFor(2 * 1000 * 1000);
    EXPECT_GE(ctl.emergencyClamps(), 1u);
    EXPECT_TRUE(ctl.emergencyEngaged());
    EXPECT_EQ(ctl.currentConfig(), ctl.safestConfig());
    EXPECT_TRUE(ctl.currentConfig().wearQuota);
}

TEST(FaultRuntime, EmergencyClampReleasesAndReengages)
{
    // Engage instantly, release instantly: the controller must cycle
    // clamp -> release -> fresh sampling without wedging.
    SystemParams sp;
    System sys("stream", sp, staticBaselineConfig());
    sys.run(200 * 1000);
    MctParams mp = fastParams();
    mp.recovery.emergencyMargin = 1e9;
    mp.recovery.emergencyRelease = 1e-9;
    mp.recovery.emergencyWindowInsts = 60 * 1000;
    MctController ctl(sys, mp);
    ctl.runFor(3 * 1000 * 1000);
    EXPECT_GE(ctl.emergencyClamps(), 1u);
    EXPECT_GE(ctl.reengagements(), 1u);
    EXPECT_GE(ctl.decisions().size(), 1u);
}

TEST(FaultChaos, EveryBuiltinPlanSurvives)
{
    for (const std::string &name : builtinFaultPlanNames()) {
        SCOPED_TRACE(name);
        SystemParams sp;
        System sys("lbm", sp, staticBaselineConfig());
        FaultInjector inj(mustParse(name), 7);
        sys.attachFaultInjector(&inj);
        sys.run(200 * 1000);
        MctParams mp = fastParams();
        MctController ctl(sys, mp);
        const SysSnapshot s0 = sys.snapshot();
        ctl.runFor(2 * 1000 * 1000);
        const Metrics m = sys.metricsSince(s0);
        // The run completes with sane objectives and the lifetime
        // mechanism (wear quota) engaged, whatever the plan did.
        EXPECT_TRUE(finiteMetrics(m));
        EXPECT_GT(m.ipc, 0.0);
        EXPECT_TRUE(ctl.currentConfig().wearQuota);
        EXPECT_TRUE(ctl.currentConfig().valid());
        EXPECT_TRUE(finiteMetrics(ctl.baselineMetrics()));
    }
}

TEST(FaultChaos, RandomizedPlansSurvive)
{
    // Seeded random plans: a reproducible storm of window and
    // stochastic faults. The runtime must always complete with finite
    // objectives.
    for (std::uint64_t seed : {11u, 23u}) {
        SCOPED_TRACE(seed);
        Rng rng(seed);
        FaultPlan plan;
        const std::size_t nSpecs = 4 + rng.below(3);
        for (std::size_t i = 0; i < nSpecs; ++i) {
            FaultSpec s;
            s.kind = static_cast<FaultKind>(rng.below(numFaultKinds));
            s.startInst = rng.below(1200 * 1000);
            s.durationInsts = rng.below(2) ? rng.below(900 * 1000) : 0;
            s.prob = rng.uniform(0.05, 1.0);
            s.magnitude = rng.uniform(1.5, 60.0);
            s.bank = rng.below(2) ? -1
                                  : static_cast<int>(rng.below(4));
            plan.specs.push_back(s);
        }
        // The summary of any generated plan must round-trip.
        const FaultPlanParse again = parseFaultPlan(plan.summary());
        ASSERT_TRUE(again.ok) << plan.summary() << ": " << again.error;
        ASSERT_EQ(again.plan.specs.size(), plan.specs.size());

        SystemParams sp;
        System sys("milc", sp, staticBaselineConfig());
        FaultInjector inj(plan, seed);
        sys.attachFaultInjector(&inj);
        sys.run(150 * 1000);
        MctParams mp = fastParams();
        MctController ctl(sys, mp);
        const SysSnapshot s0 = sys.snapshot();
        ctl.runFor(2 * 1000 * 1000);
        const Metrics m = sys.metricsSince(s0);
        EXPECT_TRUE(finiteMetrics(m));
        EXPECT_GT(m.ipc, 0.0);
        EXPECT_TRUE(ctl.currentConfig().valid());
        EXPECT_TRUE(ctl.currentConfig().wearQuota);
    }
}

} // namespace
} // namespace mct
