/**
 * @file
 * Tradeoff explorer: sweep a slice of the Mellow-Writes configuration
 * space for one application and print the IPC / lifetime / energy
 * Pareto frontier, illustrating the tension the paper's Section 2
 * describes (write cancellation and eager writebacks buy IPC at
 * lifetime cost; slow writes buy lifetime at IPC cost).
 *
 * Usage: tradeoff_explorer [app]
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "mct/config.hh"
#include "mct/config_space.hh"
#include "sim/evaluator.hh"

int
main(int argc, char **argv)
{
    using namespace mct;

    const std::string app = argc > 1 ? argv[1] : "libquantum";
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown application '%s'\n", app.c_str());
        return 1;
    }

    // A coarse slice: every latency pair, cancellation on/off, the
    // techniques at one aggressiveness each.
    SpaceOptions opts;
    opts.latencies = {1.0, 2.0, 3.0, 4.0};
    opts.bankThresholds = {2};
    opts.eagerThresholds = {8};
    opts.quotaTargets = {};
    const auto slice = enumerateSpace(opts);

    EvalParams ep;
    ep.warmupInsts = 200 * 1000;
    ep.measureInsts = 500 * 1000;

    struct Point
    {
        MellowConfig cfg;
        Metrics m;
    };
    std::vector<Point> points;
    std::printf("Evaluating %zu configurations on %s...\n",
                slice.size(), app.c_str());
    for (const auto &cfg : slice)
        points.push_back({cfg, evaluateConfig(app, cfg, ep)});

    // Pareto frontier: maximize IPC and lifetime, minimize energy.
    auto dominates = [](const Metrics &a, const Metrics &b) {
        return a.ipc >= b.ipc && a.lifetimeYears >= b.lifetimeYears &&
               a.energyJ <= b.energyJ &&
               (a.ipc > b.ipc || a.lifetimeYears > b.lifetimeYears ||
                a.energyJ < b.energyJ);
    };
    std::vector<Point> frontier;
    for (const auto &p : points) {
        bool dominated = false;
        for (const auto &q : points) {
            if (dominates(q.m, p.m)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(p);
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const Point &a, const Point &b) {
                  return a.m.ipc > b.m.ipc;
              });

    std::printf("\nPareto frontier (%zu of %zu configurations):\n",
                frontier.size(), points.size());
    std::printf("%8s %12s %10s   %s\n", "IPC", "life (y)", "J/Minst",
                "config");
    for (const auto &p : frontier) {
        std::printf("%8.3f %12.2f %10.4f   %s\n", p.m.ipc,
                    p.m.lifetimeYears, p.m.energyJ,
                    toString(p.cfg).c_str());
    }
    return 0;
}
