/**
 * @file
 * Embedded-system objective example (paper Section 3.2): enforce a
 * constraint on energy while maximizing performance and lifetime.
 * The same predicted (IPC, lifetime, energy) triples feed a
 * different selector — `chooseForEnergyCap` — showing that MCT's
 * objectives are user-defined functions, not baked into the
 * framework.
 *
 * Usage: embedded_budget [app] [energy_cap_J_per_Minst]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mct/config.hh"
#include "mct/config_space.hh"
#include "mct/optimizer.hh"
#include "mct/predictors.hh"
#include "mct/samplers.hh"
#include "sim/evaluator.hh"

int
main(int argc, char **argv)
{
    using namespace mct;

    const std::string app = argc > 1 ? argv[1] : "milc";
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown application '%s'\n", app.c_str());
        return 1;
    }

    // Measure the 77 feature-guided samples and the baseline.
    EvalParams ep;
    const auto space = enumerateNoQuotaSpace();
    const auto samples = featureBasedSamples(42);
    const auto idx = indicesInSpace(space, samples);
    const Metrics base =
        evaluateConfig(app, staticBaselineConfig(), ep);
    std::printf("Measuring %zu sample configurations on %s...\n",
                samples.size(), app.c_str());
    std::vector<Metrics> sampled;
    for (const auto &cfg : samples)
        sampled.push_back(evaluateConfig(app, cfg, ep));

    // Gradient-boosting predictions for the whole space, per
    // objective, normalized by the baseline (Section 4.4).
    TrainData d;
    d.space = &space;
    d.sampleIdx = idx;
    auto predict = [&](auto pick) {
        const double b = std::max(pick(base), 1e-12);
        d.sampleY.clear();
        for (const auto &m : sampled)
            d.sampleY.push_back(pick(m) / b);
        ml::Vector out =
            predictAllConfigs(PredictorKind::GradientBoosting, d);
        for (auto &v : out)
            v *= b;
        return out;
    };
    const ml::Vector pIpc =
        predict([](const Metrics &m) { return m.ipc; });
    const ml::Vector pLife =
        predict([](const Metrics &m) { return m.lifetimeYears; });
    const ml::Vector pEnergy =
        predict([](const Metrics &m) { return m.energyJ; });
    std::vector<Metrics> predicted(space.size());
    for (std::size_t i = 0; i < space.size(); ++i)
        predicted[i] = Metrics{pIpc[i], pLife[i], pEnergy[i]};

    // Embedded objective: cap energy below a fraction of the
    // baseline's, keep >= 4 years of lifetime, maximize IPC.
    const double cap = argc > 2 ? std::atof(argv[2])
                                : 0.9 * base.energyJ;
    EnergyCapObjective obj{cap, 4.0};
    const int pick = chooseForEnergyCap(predicted, obj);

    std::printf("\nBaseline: IPC %.3f, %.2f years, %.4f J/Minst\n",
                base.ipc, base.lifetimeYears, base.energyJ);
    std::printf("Objective: energy <= %.4f J/Minst, lifetime >= "
                "%.1f years, maximize IPC\n",
                obj.maxEnergyJ, obj.minLifetimeYears);
    if (pick < 0) {
        std::printf("No configuration satisfies the budget.\n");
        return 0;
    }
    const MellowConfig &cfg = space[static_cast<std::size_t>(pick)];
    const Metrics real = evaluateConfig(app, cfg, ep);
    std::printf("\nChosen: %s\n", toString(cfg).c_str());
    std::printf("  predicted: IPC %.3f, %.2f years, %.4f J/Minst\n",
                predicted[pick].ipc, predicted[pick].lifetimeYears,
                predicted[pick].energyJ);
    std::printf("  measured:  IPC %.3f, %.2f years, %.4f J/Minst\n",
                real.ipc, real.lifetimeYears, real.energyJ);
    return 0;
}
