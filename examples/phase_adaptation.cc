/**
 * @file
 * Phase-adaptation example (paper Sections 5.1-5.2, Fig 6): run the
 * full MCT loop on ocean, whose coarse program phases trip the
 * Student's-t phase detector and trigger re-sampling, producing a
 * fresh configuration choice per phase. Prints the timeline of
 * detections and decisions.
 *
 * Usage: phase_adaptation [insts_millions]
 */

#include <cstdio>
#include <cstdlib>

#include "mct/controller.hh"
#include "sim/evaluator.hh"

int
main(int argc, char **argv)
{
    using namespace mct;

    const InstCount total =
        (argc > 1 ? std::atoll(argv[1]) : 12) * 1000000ull;

    SystemParams sp;
    System sys("ocean", sp, staticBaselineConfig());
    sys.run(300 * 1000);

    MctParams mp;
    // A steady measurement source keeps sampling cheap; the phase
    // detector and the re-sampling logic are the point here.
    EvalParams sampleEval;
    mp.steadyMeasure = [&](const MellowConfig &cfg) {
        return evaluateConfig("ocean", cfg, sampleEval);
    };
    mp.liveSamplingOverhead = false;
    mp.phase.scoreThreshold = 12.0; // slightly eager for the demo
    MctController mct(sys, mp);

    std::printf("Running MCT on ocean for %llu M instructions; its "
                "program phases cycle every ~3.3 M.\n\n",
                static_cast<unsigned long long>(total / 1000000));
    mct.runFor(total);

    std::printf("decision timeline (instruction, configuration):\n");
    for (const auto &d : mct.decisions()) {
        std::printf("  @%-9llu %s\n",
                    static_cast<unsigned long long>(d.atInstruction),
                    toString(d.config).c_str());
    }
    std::printf("\nphase-triggered re-samplings: %llu\n",
                static_cast<unsigned long long>(mct.resamplings()));
    std::printf("detector phases seen:          %llu\n",
                static_cast<unsigned long long>(
                    mct.detector().phasesDetected()));
    const Metrics testing = mct.testingAccum().metrics(sys);
    std::printf("testing-period IPC:            %.3f\n", testing.ipc);
    std::printf("testing-period lifetime:       %.2f years\n",
                testing.lifetimeYears);
    return 0;
}
