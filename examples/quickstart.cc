/**
 * @file
 * Quickstart: build a simulated NVM system, run a workload under two
 * configurations, and print the three objectives (IPC, lifetime,
 * energy). This is the smallest useful program against the public
 * API.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "sim/evaluator.hh"

int
main()
{
    using namespace mct;

    // The simulated machine: Tables 8 & 9 defaults (2 GHz OoO core,
    // 3-level caches, 4 GB / 16-bank ReRAM main memory).
    EvalParams ep;
    ep.warmupInsts = 200 * 1000;
    ep.measureInsts = 1000 * 1000;

    // Two configurations: the unprotected default (fast writes only)
    // and the Mellow-Writes static baseline from the paper.
    const MellowConfig fast = defaultConfig();
    const MellowConfig baseline = staticBaselineConfig();

    std::printf("%-12s %-10s %8s %14s %12s\n", "app", "config", "IPC",
                "lifetime (y)", "J / Minst");
    for (const char *app : {"lbm", "stream", "zeusmp"}) {
        const Metrics mf = evaluateConfig(app, fast, ep);
        const Metrics mb = evaluateConfig(app, baseline, ep);
        std::printf("%-12s %-10s %8.3f %14.2f %12.4f\n", app,
                    "default", mf.ipc, mf.lifetimeYears, mf.energyJ);
        std::printf("%-12s %-10s %8.3f %14.2f %12.4f\n", app,
                    "static", mb.ipc, mb.lifetimeYears, mb.energyJ);
    }
    std::printf("\nNote how the default is fast but wears the memory "
                "out early,\nwhile the static Mellow-Writes policy "
                "trades IPC for the 8-year floor.\n");
    return 0;
}
