/**
 * @file
 * Lifetime-guarantee example: run the full MCT runtime (phase
 * detection, cyclic sampling, gradient-boosting prediction,
 * constrained optimization, wear-quota fixup) on a write-heavy
 * application and show that the adaptive configuration honors a
 * user-selected lifetime target while recovering performance the
 * static policy leaves on the table.
 *
 * Usage: lifetime_guarantee [app] [target_years]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "mct/controller.hh"
#include "sim/evaluator.hh"

int
main(int argc, char **argv)
{
    using namespace mct;

    const std::string app = argc > 1 ? argv[1] : "lbm";
    const double target = argc > 2 ? std::atof(argv[2]) : 8.0;
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown application '%s'\n", app.c_str());
        return 1;
    }

    SystemParams sp;
    System sys(app, sp, staticBaselineConfig());
    sys.run(300 * 1000); // warm the caches

    MctParams mp;
    mp.objective.minLifetimeYears = target;
    // Short steady-state measurements of each sample configuration
    // stand in for the paper's billion-instruction sampling windows
    // (see MctParams::steadyMeasure and DESIGN.md); the live cyclic
    // sampler still runs and is charged as overhead below.
    EvalParams sampleEval; // standard lengths: shorter windows sit
                           // in the LLC-fill transient and overstate
                           // lifetime (no evictions -> no writes)
    mp.steadyMeasure = [&](const MellowConfig &cfg) {
        return evaluateConfig(app, cfg, sampleEval);
    };
    MctController mct(sys, mp);

    std::printf("Running MCT on %s with a %.1f-year lifetime floor\n",
                app.c_str(), target);
    mct.runFor(5 * 1000 * 1000);

    std::printf("\nDecisions made: %zu (resamplings: %llu, "
                "fallbacks: %llu)\n",
                mct.decisions().size(),
                static_cast<unsigned long long>(mct.resamplings()),
                static_cast<unsigned long long>(mct.fallbacks()));
    for (const auto &d : mct.decisions()) {
        std::printf("  @%-10llu chose %s\n",
                    static_cast<unsigned long long>(d.atInstruction),
                    toString(d.config).c_str());
        std::printf("     predicted: IPC %.3f, lifetime %.1f y, "
                    "%.4f J/Minst%s\n",
                    d.predicted.ipc, d.predicted.lifetimeYears,
                    d.predicted.energyJ,
                    d.feasible ? "" : "  [infeasible: baseline]");
    }
    const Metrics sampling = mct.samplingAccum().metrics(sys);
    const Metrics testing = mct.testingAccum().metrics(sys);
    std::printf("\nSampling period (exploration cost, Fig 9):\n");
    std::printf("  IPC %.3f over %llu kinsts\n", sampling.ipc,
                static_cast<unsigned long long>(
                    mct.samplingAccum().insts / 1000));
    std::printf("Testing period (the chosen configuration):\n");
    std::printf("  IPC %.3f over %llu kinsts, lifetime %.2f years, "
                "%.4f J/Minst\n",
                testing.ipc,
                static_cast<unsigned long long>(
                    mct.testingAccum().insts / 1000),
                testing.lifetimeYears, testing.energyJ);

    // A fresh steady-state evaluation of the final configuration.
    EvalParams ep;
    const Metrics fresh = evaluateConfig(app, mct.currentConfig(), ep);
    std::printf("Chosen configuration, evaluated from scratch:\n");
    std::printf("  IPC %.3f, lifetime %.2f years (target %.1f), "
                "%.4f J/Minst\n",
                fresh.ipc, fresh.lifetimeYears, target, fresh.energyJ);
    return 0;
}
