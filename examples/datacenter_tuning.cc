/**
 * @file
 * Data-center objective example (paper Section 3.2): instead of the
 * default "min energy s.t. lifetime and near-max IPC", guarantee a
 * performance target while minimizing energy. Demonstrates that the
 * framework's objectives are user-defined functions over the same
 * predicted (IPC, lifetime, energy) triples — here evaluated on a
 * 4-core multi-program mix.
 */

#include <cstdio>

#include "mct/config.hh"
#include "mct/config_space.hh"
#include "mct/optimizer.hh"
#include "mct/samplers.hh"
#include "sim/multicore.hh"
#include "workloads/mixes.hh"

int
main()
{
    using namespace mct;

    const MixSpec &mix = mixByName("mix1");
    std::printf("Mix %s:", mix.name.c_str());
    for (const auto &app : mix.apps)
        std::printf(" %s", app.c_str());
    std::printf("\n\n");

    // Exercise a small set of candidate configurations directly on
    // the 4-core machine (brute force over the full space would be
    // intractable here, as the paper notes in Section 6.2.5).
    const auto candidates = featureBasedSamples(123);
    MultiCoreParams mp;
    MultiCoreSystem sys(mix.apps, mp, staticBaselineConfig());
    sys.run(100 * 1000); // warm-up per core

    std::vector<Metrics> results;
    std::vector<MellowConfig> configs;
    for (std::size_t i = 0; i < candidates.size(); i += 7) {
        MellowConfig cfg = candidates[i];
        cfg.wearQuota = true; // keep the floor while exploring
        cfg.wearQuotaTarget = 8.0;
        sys.setConfig(cfg);
        const MultiSnapshot s0 = sys.snapshot();
        sys.run(40 * 1000);
        const MultiMetrics m = sys.metricsBetween(s0, sys.snapshot());
        results.push_back(
            Metrics{m.geomeanIpc, m.lifetimeYears, m.energyJ});
        configs.push_back(cfg);
    }

    // Data-center objective: hold >= 90% of the best observed
    // geomean IPC, minimize energy.
    double bestIpc = 0.0;
    for (const auto &m : results)
        bestIpc = std::max(bestIpc, m.ipc);
    PerfTargetObjective obj{0.9 * bestIpc};
    const int pick = chooseForPerfTarget(results, obj);

    std::printf("%-4s %-55s %8s %10s %10s\n", "#", "config",
                "gm-IPC", "life (y)", "J/Minst");
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("%-4zu %-55s %8.3f %10.1f %10.4f%s\n", i,
                    toString(configs[i]).c_str(), results[i].ipc,
                    results[i].lifetimeYears, results[i].energyJ,
                    static_cast<int>(i) == pick ? "  <== chosen" : "");
    }
    std::printf("\nObjective: IPC >= %.3f (90%% of best), minimize "
                "energy.\n", obj.minIpc);
    return 0;
}
