/**
 * @file
 * Ablations of MCT's design choices (DESIGN.md Section 5, paper
 * Sections 4.4 / 5.3 / 5.4):
 *
 *  1. Wear-quota fixup on/off: without the fixup, lifetime
 *     overestimation lets chosen configurations violate the floor.
 *  2. Write pausing vs write cancellation as the chosen
 *     configuration's interruption policy (extension study).
 *  3. Wear-leveling assumption vs explicit Start-Gap: the measured
 *     leveling efficiency validates Table 9's 95% assumption.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/stats.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    SweepCache cache = openCache();

    banner("Ablation 1: wear-quota fixup (Section 5.3)");
    {
        TextTable t;
        t.header({"app", "chosen life w/o fixup", "with fixup",
                  "floor (8y) w/o", "with"});
        int violationsWithout = 0, violationsWith = 0;
        for (const std::string app :
             {"lbm", "libquantum", "stream", "ocean"}) {
            SystemParams sp;

            auto runOnce = [&](bool fixup, MellowConfig &chosenOut) {
                System sys(app, sp, staticBaselineConfig());
                sys.run(standardEvalParams().warmupInsts);
                MctParams mp;
                mp.wearQuotaFixup = fixup;
                // The paper's literal constraint (no safety margin):
                // the optimizer picks configurations right at the
                // floor, which is where lifetime overestimation makes
                // the fixup earn its keep.
                mp.objective.safetyMargin = 1.0;
                mp.steadyMeasure = [&](const MellowConfig &cfg) {
                    return cache.get(app, cfg);
                };
                mp.liveSamplingOverhead = false;
                MctController ctl(sys, mp);
                ctl.runFor(600 * 1000);
                chosenOut = ctl.currentConfig();
                return cache.get(app, chosenOut);
            };
            MellowConfig cfgWithout, cfgWith;
            const Metrics without = runOnce(false, cfgWithout);
            const Metrics with = runOnce(true, cfgWith);
            cache.save();
            // Quota-bearing lifetimes under-read ~20-30% in short
            // windows (EXPERIMENTS.md), so the floor is read with a
            // 0.7x margin for them; quota-free configurations have
            // no such bias and are read literally (5% tolerance).
            auto floorMet = [](const MellowConfig &cfg,
                               const Metrics &m) {
                const double margin = cfg.wearQuota ? 0.7 : 0.95;
                return m.lifetimeYears >= margin * 8.0;
            };
            const bool okWithout = floorMet(cfgWithout, without);
            const bool okWith = floorMet(cfgWith, with);
            violationsWithout += !okWithout;
            violationsWith += !okWith;
            t.row({app, fmt(without.lifetimeYears, 2),
                   fmt(with.lifetimeYears, 2), okWithout ? "met" : "VIOLATED",
                   okWith ? "met" : "VIOLATED"});
        }
        t.print(std::cout);
        std::printf("\nfloor violations: %d without fixup, %d with "
                    "(paper: the fixup is the last resort that "
                    "guarantees the target)\n",
                    violationsWithout, violationsWith);
    }

    banner("Ablation 2: write pausing vs write cancellation "
           "(extension)");
    {
        TextTable t;
        t.header({"app", "IPC cancel", "IPC pause", "life cancel",
                  "life pause"});
        EvalParams ep = standardEvalParams();
        for (const char *app : {"lbm", "milc", "stream"}) {
            MellowConfig cancel;
            cancel.bankAware = true;
            cancel.bankAwareThreshold = 4;
            cancel.slowLatency = 3.0;
            cancel.slowCancellation = true;
            MellowConfig pause = cancel;
            pause.pauseInsteadOfCancel = true;
            const Metrics c = evaluateConfig(app, cancel, ep);
            const Metrics p = evaluateConfig(app, pause, ep);
            t.row({app, fmt(c.ipc, 3), fmt(p.ipc, 3),
                   fmt(c.lifetimeYears, 2), fmt(p.lifetimeYears, 2)});
        }
        t.print(std::cout);
        std::printf("\nexpected shape: pausing preserves in-flight "
                    "work, so it keeps (or improves) lifetime at "
                    "similar IPC.\n");
    }

    banner("Ablation 3: assumed 95% leveling vs explicit Start-Gap "
           "(Table 9 assumption)");
    {
        // Start-Gap levels over full rotations, i.e. over
        // device-lifetime write volumes; validating the Table 9
        // assumption therefore uses a device-level write stress (a
        // 64 MB device, 4 M writes) rather than the scaled system
        // windows every other experiment runs in.
        // Leveling completes once the rotation count approaches the
        // row count: rotations = writes / (period * rows). The demo
        // device is sized so ~250 rotations cover its 256 rows per
        // bank within a 4M-write stress (at 4 GB scale the same
        // ratio is reached over the device lifetime).
        NvmParams base;
        base.capacityBytes = 4ULL << 20; // 256 rows per bank
        struct Pattern
        {
            const char *name;
            double hotFraction; // share of writes to one hot row
        };
        const Pattern patterns[] = {
            {"uniform rows", 0.0},
            {"80% of writes to 1% of rows", 0.8},
            {"single hot row", 1.0},
        };
        TextTable t;
        t.header({"write pattern", "leveling eff (start-gap)",
                  "life vs assumed-95%", "life vs no leveling"});
        for (const Pattern &pat : patterns) {
            NvmParams p = base;
            p.wearLevelMode = WearLevelMode::StartGap;
            p.startGapPeriod = 64;
            NvmDevice dev(p);
            Rng rng(17);
            const std::uint64_t rows = p.rowsPerBank();
            const std::uint64_t hotRows =
                std::max<std::uint64_t>(1, rows / 100);
            const std::uint64_t writes = 4 * 1000 * 1000;
            double worstNoLevel = 0.0;
            std::vector<double> rowWearNoLevel(rows, 0.0);
            for (std::uint64_t i = 0; i < writes; ++i) {
                std::uint64_t row;
                if (pat.hotFraction >= 1.0)
                    row = 7;
                else if (rng.uniform() < pat.hotFraction)
                    row = rng.below(hotRows);
                else
                    row = rng.below(rows);
                dev.addWear(0, row, 1.0);
                rowWearNoLevel[row] += 1.0;
                worstNoLevel =
                    std::max(worstNoLevel, rowWearNoLevel[row]);
            }
            // Lifetime ratios at equal write rates cancel the time
            // term: life ~ capacity / worst-row wear.
            const double lifeSg =
                p.rowWearCapacity() /
                std::max(dev.maxRowWear(), 1e-9);
            const double lifeAssumed =
                p.bankWearCapacity() / static_cast<double>(writes);
            const double lifeNoLevel =
                p.rowWearCapacity() / worstNoLevel;
            t.row({pat.name,
                   fmt(dev.levelingEfficiency(), 3),
                   fmt(lifeSg / lifeAssumed, 3),
                   fmt(lifeSg / lifeNoLevel, 1) + "x"});
        }
        t.print(std::cout);
        std::printf("\nShape: under skew, Start-Gap recovers orders "
                    "of magnitude of lifetime versus no leveling and "
                    "lands near the assumed-efficiency model "
                    "(gap-copy wear keeps it slightly below 1.0).\n");
    }
    return 0;
}
