/**
 * @file
 * Figure 6: phase detection on ocean. The memory workload (demand
 * reads + writebacks) is monitored per window of I instructions; the
 * Student's-t score against the window history spikes at ocean's
 * coarse phase boundaries, while fine-grained bursts stay below the
 * threshold. Prints the workload/score series and the detected phase
 * positions, plus a false-positive check on a phase-free workload.
 */

#include "bench_common.hh"
#include "mct/phase_detector.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Figure 6: phase detection (ocean, threshold 15)");

    SystemParams sp;
    System sys("ocean", sp, staticBaselineConfig());
    sys.run(100 * 1000); // warm-up

    const InstCount window = 20 * 1000; // I, scaled (paper: 1M)
    PhaseDetectorParams pp;             // threshold 15, 100-window
    PhaseDetector det(pp);

    std::printf("%-8s %-12s %-10s %s\n", "window", "mem-workload",
                "t-score", "phase?");
    std::vector<std::size_t> phaseAt;
    SysSnapshot prev = sys.snapshot();
    for (std::size_t w = 0; w < 400; ++w) {
        sys.run(window);
        const SysSnapshot cur = sys.snapshot();
        const CoreStats d = cur.core.delta(prev.core);
        prev = cur;
        const double workload =
            static_cast<double>(d.memReads + d.memWrites);
        const bool phase = det.push(workload);
        if (phase)
            phaseAt.push_back(w);
        // Print a decimated series plus every detection row.
        if (w % 10 == 0 || phase) {
            std::printf("%-8zu %-12.0f %-10.2f %s\n", w, workload,
                        det.lastScore(), phase ? "<== NEW PHASE" : "");
        }
    }

    std::printf("\ndetected phases: %zu at windows [",
                phaseAt.size());
    for (std::size_t i = 0; i < phaseAt.size(); ++i)
        std::printf("%s%zu", i ? ", " : "", phaseAt[i]);
    std::printf("]\n");
    std::printf("ocean cycles 4 program phases every ~105 windows at "
                "this scale;\nthe detector should fire a few times "
                "per cycle boundary, not per burst.\n");

    // Control: stream has no coarse phases; the detector must stay
    // quiet on it.
    System flat("stream", sp, staticBaselineConfig());
    flat.run(1200 * 1000); // past the cold LLC-fill transition
    PhaseDetector det2(pp);
    std::size_t falsePositives = 0;
    SysSnapshot fprev = flat.snapshot();
    for (std::size_t w = 0; w < 200; ++w) {
        flat.run(window);
        const SysSnapshot cur = flat.snapshot();
        const CoreStats d = cur.core.delta(fprev.core);
        fprev = cur;
        falsePositives += det2.push(
            static_cast<double>(d.memReads + d.memWrites));
    }
    std::printf("\ncontrol (stream, no phases): %zu detections in "
                "200 windows (expect 0)\n",
                falsePositives);
    return 0;
}
