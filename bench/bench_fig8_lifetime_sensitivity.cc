/**
 * @file
 * Figure 8: sensitivity to the lifetime target. For targets of 4, 6,
 * 8, and 10 years, compare the static baseline, MCT with gradient
 * boosting, and the ideal policy on four representative applications.
 * Expected shape (paper): higher targets push the chosen
 * configurations toward lower IPC and higher energy; MCT tracks the
 * trend and stays between static and ideal, with the wear-quota
 * fixup catching lifetime overestimates.
 */

#include <iostream>

#include "bench_common.hh"
#include "mct/config.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Figure 8: sensitivity to lifetime targets (4-10 years)");

    SweepCache cache = openCache();
    const auto space = enumerateSpace();
    const std::vector<std::string> apps = {"lbm", "leslie3d",
                                           "GemsFDTD", "stream"};

    for (const auto &app : apps) {
        const auto truth = sweep(cache, app, space);
        const Metrics stat = cache.get(app, staticBaselineConfig());
        cache.save();

        std::printf("\n-- %s (static: IPC %.3f, life %.1f y, "
                    "%.4f J/Mi) --\n",
                    app.c_str(), stat.ipc, stat.lifetimeYears,
                    stat.energyJ);
        TextTable t;
        t.header({"target", "IPC mct", "IPC ideal", "life mct",
                  "life ideal", "J/Mi mct", "J/Mi ideal",
                  "mct config"});
        for (double target : {4.0, 6.0, 8.0, 10.0}) {
            const Metrics ideal = truth[static_cast<std::size_t>(
                idealIndex(truth, target))];
            const MctRunResult mct = runMct(
                cache, app, PredictorKind::GradientBoosting, target);
            cache.save();
            t.row({fmt(target, 0) + "y",
                   fmt(mct.chosenEvaluated.ipc, 3), fmt(ideal.ipc, 3),
                   fmt(mct.chosenEvaluated.lifetimeYears, 1),
                   fmt(ideal.lifetimeYears, 1),
                   fmt(mct.chosenEvaluated.energyJ, 4),
                   fmt(ideal.energyJ, 4),
                   toString(mct.chosen)});
        }
        t.print(std::cout);
    }

    std::printf("\nExpected shape: ideal IPC is non-increasing in the "
                "target; MCT follows with\nsmall deviations "
                "(discontinuities also appear in the paper, Section "
                "6.2.2),\nand the wear-quota fixup keeps measured "
                "lifetime near or above each target.\n");
    return 0;
}
