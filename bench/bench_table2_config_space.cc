/**
 * @file
 * Tables 2 & 3: the combined-technique configuration space — the
 * techniques, their parameters and value grids, the constraint set,
 * and the resulting enumeration size (paper: 3,164 configurations;
 * our grid yields the same magnitude).
 */

#include <map>

#include <iostream>

#include "bench_common.hh"
#include "mct/config.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Table 2: Techniques of the evaluated combined technique");
    {
        TextTable t;
        t.header({"technique", "value", "discrete parameters",
                  "continuous parameters"});
        t.row({"Default", "N/A", "fast_cancellation", "fast_latency"});
        t.row({"Bank-Aware Mellow Writes (bank_aware)", "true/false",
               "slow_cancellation",
               "slow_latency, bank_aware_threshold"});
        t.row({"Eager Mellow Writes (eager_writebacks)", "true/false",
               "slow_cancellation", "slow_latency, eager_threshold"});
        t.row({"Wear Quota (wear_quota)", "true/false", "",
               "wear_quota_target"});
        t.print(std::cout);
    }

    banner("Table 3: Parameters of the evaluated combined technique");
    {
        TextTable t;
        t.header({"parameter", "values"});
        t.row({"fast_cancellation", "true/false"});
        t.row({"slow_cancellation",
               "true/false (true if fast_cancellation)"});
        t.row({"fast_latency", "{1.0, 1.5, ..., 4.0}"});
        t.row({"slow_latency", "{1.0, ..., 4.0} (> fast_latency)"});
        t.row({"bank_aware_threshold", "{1, 2, 3, 4} entries/bank"});
        t.row({"eager_threshold", "{4, 8, 16, 32}"});
        t.row({"wear_quota_target", "{8.0} years (space), "
                                    "4..10 as fixup"});
        t.print(std::cout);
    }

    banner("Configuration space enumeration");
    const auto space = enumerateSpace();
    const auto noQuota = enumerateNoQuotaSpace();
    std::printf("full space:        %zu configurations "
                "(paper reports 3,164 on its grid)\n",
                space.size());
    std::printf("learning subspace: %zu configurations "
                "(wear quota excluded, Section 4.4)\n",
                noQuota.size());

    // Breakdown by enabled techniques.
    std::map<std::string, std::size_t> byTech;
    for (const auto &cfg : space) {
        std::string key;
        key += cfg.bankAware ? "bank+" : "";
        key += cfg.eagerWritebacks ? "eager+" : "";
        key += cfg.wearQuota ? "quota+" : "";
        if (key.empty())
            key = "default-only+";
        key.pop_back();
        ++byTech[key];
    }
    TextTable t;
    t.header({"enabled techniques", "configurations"});
    for (const auto &[k, n] : byTech)
        t.row({k, std::to_string(n)});
    t.print(std::cout);

    // Constraint audit.
    std::size_t violations = 0;
    for (const auto &cfg : space)
        violations += !cfg.valid();
    std::printf("constraint violations: %zu (must be 0)\n", violations);
    return violations == 0 ? 0 : 1;
}
