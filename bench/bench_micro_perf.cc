/**
 * @file
 * Google-Benchmark microbenchmarks of the library's hot paths: cache
 * accesses, controller request servicing, whole-system simulation
 * throughput, feature encoding, and the online predictors' fit +
 * predict cost over the full learning space (the engineering data
 * behind Table 7's overhead column).
 *
 * Run with --benchmark_filter=... like any Google Benchmark binary.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "mct/predictors.hh"
#include "mct/samplers.hh"
#include "sim/system.hh"

namespace
{

using namespace mct;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheParams{"L3", 2 * 1024 * 1024, 16});
    Rng rng(7);
    Victim v;
    const std::uint64_t lines = 256 * 1024; // 16 MB working set
    for (auto _ : state) {
        const Addr addr = rng.below(lines) * lineBytes;
        benchmark::DoNotOptimize(cache.access(addr, rng.flip(0.3), v));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyAccess(benchmark::State &state)
{
    CacheHierarchy hier{HierarchyParams{}};
    Rng rng(9);
    AccessOutcome out;
    const std::uint64_t lines = 1024 * 1024; // 64 MB working set
    for (auto _ : state) {
        hier.access(rng.below(lines) * lineBytes, rng.flip(0.3), out);
        benchmark::DoNotOptimize(out.hitLevel);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess);

void
BM_ControllerReadService(benchmark::State &state)
{
    NvmDevice dev{NvmParams{}};
    MemController ctrl(dev, MemCtrlParams{}, defaultConfig());
    Rng rng(11);
    Tick t = 0;
    std::uint64_t id = 0;
    for (auto _ : state) {
        const Addr addr = rng.below(1 << 22) * lineBytes;
        while (!ctrl.submitRead(addr, t, ++id))
            ctrl.advance(ctrl.nextEventTick());
        t += 200 * tickNs;
        ctrl.advance(t);
        ctrl.completedReads().clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerReadService);

void
BM_SystemSimulation(benchmark::State &state)
{
    // Simulated instructions per second of wall clock; the quantity
    // that sizes sweeps (items = simulated instructions).
    SystemParams sp;
    System sys("milc", sp, staticBaselineConfig());
    sys.run(100 * 1000); // warm
    constexpr InstCount chunk = 20 * 1000;
    for (auto _ : state)
        sys.run(chunk);
    state.SetItemsProcessed(state.iterations() * chunk);
}
BENCHMARK(BM_SystemSimulation)->Unit(benchmark::kMillisecond);

void
BM_ConfigEncoding(benchmark::State &state)
{
    const auto space = enumerateNoQuotaSpace();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            configToVector(space[i++ % space.size()]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConfigEncoding);

/** Table 7 overhead column, measured properly: fit on 77 samples and
 *  predict the whole learning space. */
void
BM_PredictorFitPredict(benchmark::State &state)
{
    const auto kind =
        static_cast<PredictorKind>(state.range(0));
    static const auto space = enumerateNoQuotaSpace();
    static const auto samples = featureBasedSamples(42);
    static const auto idx = indicesInSpace(space, samples);
    static const ml::Matrix xAll = encodeSpace(space);

    // A synthetic smooth target over the configuration vector.
    TrainData d;
    d.space = &space;
    d.sampleIdx = idx;
    d.sampleY.clear();
    for (auto i : idx) {
        d.sampleY.push_back(2.0 - 0.3 * xAll(i, 6) -
                            0.1 * xAll(i, 7) + 0.05 * xAll(i, 9));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(predictAllConfigs(kind, d));
}
BENCHMARK(BM_PredictorFitPredict)
    ->Arg(static_cast<int>(PredictorKind::Linear))
    ->Arg(static_cast<int>(PredictorKind::LinearLasso))
    ->Arg(static_cast<int>(PredictorKind::Quadratic))
    ->Arg(static_cast<int>(PredictorKind::QuadraticLasso))
    ->Arg(static_cast<int>(PredictorKind::GradientBoosting))
    ->Unit(benchmark::kMillisecond);

void
BM_FeatureBasedSampling(benchmark::State &state)
{
    std::uint64_t seed = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(featureBasedSamples(seed++));
}
BENCHMARK(BM_FeatureBasedSampling);

void
BM_SpaceEnumeration(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(enumerateSpace());
}
BENCHMARK(BM_SpaceEnumeration);

} // namespace

BENCHMARK_MAIN();
