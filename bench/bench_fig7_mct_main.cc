/**
 * @file
 * Figure 7 + Table 10: the headline result. Per application, under
 * the default objective (8-year lifetime floor, IPC within 95% of
 * max, minimal energy):
 *
 *   default       no mellow-writes techniques;
 *   static        the best static policy from prior work;
 *   MCT (gbt)     the runtime with gradient boosting;
 *   MCT (q-lasso) the runtime with quadratic lasso;
 *   ideal         brute force over the full space.
 *
 * Expected shapes (paper): default is fast/cheap but misses the
 * lifetime floor almost everywhere; static meets it but trails ideal
 * badly on several apps (lbm, leslie3d, libquantum, stream); MCT
 * lands between static and ideal on IPC and energy (paper: +9.24%
 * IPC, -7.95% energy vs static; 94.49% of ideal IPC with +5.3%
 * energy, geomean).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/stats.hh"
#include "mct/config.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Figure 7: MCT vs baseline systems (8-year objective)");

    SweepCache cache = openCache();
    const auto space = enumerateSpace();

    TextTable t;
    t.header({"app", "IPC dflt", "IPC stat", "IPC gbt", "IPC qls",
              "IPC ideal", "life dflt", "life stat", "life gbt",
              "life qls", "life ideal", "J/Mi stat", "J/Mi gbt",
              "J/Mi qls", "J/Mi ideal"});

    std::vector<double> gbtOverStaticIpc, gbtOverStaticEnergy;
    std::vector<double> gbtOverIdealIpc, gbtOverIdealEnergy;
    std::vector<double> qlsOverStaticIpc, qlsOverStaticEnergy;
    std::vector<double> qlsOverIdealIpc, qlsOverIdealEnergy;
    std::vector<std::pair<std::string, MellowConfig>> chosenGbt;

    for (const auto &app : workloadNames()) {
        const Metrics dflt = cache.get(app, defaultConfig());
        const Metrics stat = cache.get(app, staticBaselineConfig());
        const auto truth = sweep(cache, app, space);
        const Metrics ideal =
            truth[static_cast<std::size_t>(idealIndex(truth, 8.0))];
        cache.save();

        const MctRunResult gbt = runMct(
            cache, app, PredictorKind::GradientBoosting, 8.0);
        const MctRunResult qls = runMct(
            cache, app, PredictorKind::QuadraticLasso, 8.0);
        cache.save();
        chosenGbt.emplace_back(app, gbt.chosen);

        t.row({app, fmt(dflt.ipc, 3), fmt(stat.ipc, 3),
               fmt(gbt.chosenEvaluated.ipc, 3),
               fmt(qls.chosenEvaluated.ipc, 3), fmt(ideal.ipc, 3),
               fmt(dflt.lifetimeYears, 1), fmt(stat.lifetimeYears, 1),
               fmt(gbt.chosenEvaluated.lifetimeYears, 1),
               fmt(qls.chosenEvaluated.lifetimeYears, 1),
               fmt(ideal.lifetimeYears, 1), fmt(stat.energyJ, 4),
               fmt(gbt.chosenEvaluated.energyJ, 4),
               fmt(qls.chosenEvaluated.energyJ, 4),
               fmt(ideal.energyJ, 4)});

        gbtOverStaticIpc.push_back(gbt.chosenEvaluated.ipc / stat.ipc);
        gbtOverStaticEnergy.push_back(gbt.chosenEvaluated.energyJ /
                                      stat.energyJ);
        gbtOverIdealIpc.push_back(gbt.chosenEvaluated.ipc / ideal.ipc);
        gbtOverIdealEnergy.push_back(gbt.chosenEvaluated.energyJ /
                                     ideal.energyJ);
        qlsOverStaticIpc.push_back(qls.chosenEvaluated.ipc / stat.ipc);
        qlsOverStaticEnergy.push_back(qls.chosenEvaluated.energyJ /
                                      stat.energyJ);
        qlsOverIdealIpc.push_back(qls.chosenEvaluated.ipc / ideal.ipc);
        qlsOverIdealEnergy.push_back(qls.chosenEvaluated.energyJ /
                                     ideal.energyJ);
    }
    t.print(std::cout);

    std::printf("\ngeomean summary (paper's headline numbers in "
                "parentheses):\n");
    std::printf("  MCT(gbt) IPC vs static:      %+.2f%%   (+9.24%%)\n",
                (geomean(gbtOverStaticIpc) - 1.0) * 100);
    std::printf("  MCT(gbt) energy vs static:   %+.2f%%   (-7.95%%)\n",
                (geomean(gbtOverStaticEnergy) - 1.0) * 100);
    std::printf("  MCT(gbt) IPC of ideal:       %.2f%%    (94.49%%)\n",
                geomean(gbtOverIdealIpc) * 100);
    std::printf("  MCT(gbt) energy vs ideal:    %+.2f%%   (+5.3%%)\n",
                (geomean(gbtOverIdealEnergy) - 1.0) * 100);
    std::printf("  MCT(q-lasso) IPC vs static:  %+.2f%%   (+6%%)\n",
                (geomean(qlsOverStaticIpc) - 1.0) * 100);
    std::printf("  MCT(q-lasso) energy vs stat: %+.2f%%   (-5.3%%)\n",
                (geomean(qlsOverStaticEnergy) - 1.0) * 100);
    std::printf("  MCT(q-lasso) IPC of ideal:   %.2f%%    (91.69%%)\n",
                geomean(qlsOverIdealIpc) * 100);

    banner("Table 10: optimal configurations selected by MCT "
           "(gradient boosting)");
    TextTable t10;
    auto header = configTableHeader();
    header.insert(header.begin(), "app");
    t10.header(header);
    {
        auto row = configTableRow(staticBaselineConfig());
        row.insert(row.begin(), "static");
        t10.row(row);
    }
    for (const auto &[app, cfg] : chosenGbt) {
        auto row = configTableRow(cfg);
        row.insert(row.begin(), app);
        t10.row(row);
    }
    t10.print(std::cout);
    return 0;
}
