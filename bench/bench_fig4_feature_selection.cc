/**
 * @file
 * Figure 4: feature selection.
 *
 *  (a) Linear-lasso coefficients over the 5 compressed features, per
 *      application and objective: bank_aware and eager_writebacks
 *      collapse to ~zero, leaving fast_latency, slow_latency, and
 *      cancellation as the primary features.
 *  (b) Feature-based sampling (77 samples gridding the primary
 *      features) vs random sampling of the same size: gradient
 *      boosting gains accuracy (paper: ~3% on average).
 */

#include <iostream>

#include "bench_common.hh"
#include "mct/samplers.hh"
#include "common/stats.hh"
#include "mct/feature_selection.hh"
#include "mct/feature_compressor.hh"
#include "ml/metrics.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    SweepCache cache = openCache();
    const auto space = enumerateNoQuotaSpace();

    banner("Figure 4a: linear-lasso coefficients on the 5 compressed "
           "features (standardized targets)");
    TextTable t;
    std::vector<std::string> head = {"app", "objective"};
    for (const auto &n : compressedFeatureNames())
        head.push_back(n);
    t.header(head);

    RunningStat primaryMag, secondaryMag;
    int primaryCorrect = 0, appCount = 0;
    for (const auto &app : workloadNames()) {
        const auto truth = sweep(cache, app, space);
        cache.save();
        const FeatureSelectionResult res = selectFeatures(space, truth);
        const char *objNames[3] = {"IPC", "lifetime", "energy"};
        for (int obj = 0; obj < 3; ++obj) {
            std::vector<std::string> row = {app, objNames[obj]};
            for (std::size_t f = 0; f < compressedDims; ++f) {
                row.push_back(fmt(res.coefficients[obj][f], 3));
                const double mag =
                    std::abs(res.coefficients[obj][f]);
                if (f == 0 || f == 1)
                    secondaryMag.push(mag);
                else
                    primaryMag.push(mag);
            }
            t.row(row);
        }
        ++appCount;
        // Does the survivor set contain only primary features?
        bool onlyPrimary = true;
        for (auto f : res.primary)
            onlyPrimary &= f >= 2;
        primaryCorrect += onlyPrimary;
    }
    t.print(std::cout);
    std::printf("\nmean |coef| of primary features "
                "(fast/slow/cancel): %.3f\n",
                primaryMag.mean());
    std::printf("mean |coef| of bank_aware/eager features: %.3f "
                "(paper Fig 4a: near zero)\n",
                secondaryMag.mean());
    std::printf("apps where lasso keeps only the primary features: "
                "%d/%d\n",
                primaryCorrect, appCount);

    banner("Figure 4b: feature-based vs random sampling "
           "(gradient boosting, 77 samples)");
    TextTable t2;
    t2.header({"app", "obj", "rand@77", "feat@77", "gain@77",
               "rand@39", "feat@39", "gain@39"});
    RunningStat gain, gainSmall;
    for (const auto &app : workloadNames()) {
        const auto truth = sweep(cache, app, space);
        const Metrics base = cache.get(app, staticBaselineConfig());
        for (int obj = 0; obj < 3; ++obj) {
            auto val = [&](const Metrics &m) {
                const double v = obj == 0   ? m.ipc
                                 : obj == 1 ? m.lifetimeYears
                                            : m.energyJ;
                const double b = obj == 0   ? base.ipc
                                 : obj == 1 ? base.lifetimeYears
                                            : base.energyJ;
                return v / std::max(b, 1e-12);
            };
            ml::Vector truthVec;
            for (const auto &m : truth)
                truthVec.push_back(val(m));

            auto accuracyOf = [&](const std::vector<MellowConfig>
                                      &samples) {
                TrainData d;
                d.space = &space;
                d.sampleIdx = indicesInSpace(space, samples);
                for (auto idx : d.sampleIdx)
                    d.sampleY.push_back(truthVec[idx]);
                const auto pred = predictAllConfigs(
                    PredictorKind::GradientBoosting, d);
                return ml::coefficientOfDetermination(pred, truthVec);
            };

            // Average random sampling over a few seeds for fairness.
            RunningStat randAcc;
            for (std::uint64_t seed : {11u, 22u, 33u})
                randAcc.push(
                    accuracyOf(randomSamples(space, 77, seed)));
            const double featAcc =
                accuracyOf(featureBasedSamples(42));

            // Tighter budget: every 2nd grid sample (39) vs random
            // 39, to probe below the 77-sample operating point.
            const auto full = featureBasedSamples(42);
            std::vector<MellowConfig> strided;
            for (std::size_t k = 0; k < full.size(); k += 2)
                strided.push_back(full[k]);
            RunningStat randSmall;
            for (std::uint64_t seed : {44u, 55u, 66u})
                randSmall.push(accuracyOf(
                    randomSamples(space, strided.size(), seed)));
            const double featSmall = accuracyOf(strided);

            const char *objNames[3] = {"IPC", "lifetime", "energy"};
            t2.row({app, objNames[obj], fmt(randAcc.mean(), 3),
                    fmt(featAcc, 3), fmt(featAcc - randAcc.mean(), 3),
                    fmt(randSmall.mean(), 3), fmt(featSmall, 3),
                    fmt(featSmall - randSmall.mean(), 3)});
            gain.push(featAcc - randAcc.mean());
            gainSmall.push(featSmall - randSmall.mean());
        }
    }
    t2.print(std::cout);
    std::printf("\nmean gain from feature-based sampling @77: %.3f "
                "(paper: ~0.03)\n",
                gain.mean());
    std::printf("mean gain @39 samples: %.3f\n", gainSmall.mean());
    std::printf("\nDeviation from the paper: on this substrate both "
                "sampling schemes reach the\nmodel accuracy ceiling "
                "(R2 ~0.95) at 77 samples and the feature-guided "
                "grid's\n+3%% advantage does not replicate "
                "(EXPERIMENTS.md).\n");
    return 0;
}
