/**
 * @file
 * Figure 10 + Table 11: MCT on multi-program workloads. Six random
 * 4-app mixes run on the 4-core machine (8 MB shared L3, 8 GB /
 * 32-bank memory). As in the paper, no brute-force ideal exists here
 * (the design space is computationally intractable on a 4-core
 * machine), so MCT is compared against the default and static
 * policies only. The MCT loop is the same recipe as single-core:
 * cyclic sampling with a rotating static anchor, gradient-boosting
 * prediction of geomean IPC / lifetime / energy, constrained
 * optimization, and the wear-quota fixup.
 *
 * Expected shape (paper): ~20% geomean IPC gain over static with the
 * 8-year floor still satisfied; default violates the floor.
 */

#include <numeric>

#include <iostream>

#include "bench_common.hh"
#include "mct/samplers.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "mct/multicore_controller.hh"
#include "sim/multicore.hh"
#include "workloads/mixes.hh"

using namespace mct;
using namespace mct::bench;

namespace
{

struct MixResult
{
    double geomeanIpc = 0.0;
    double lifetime = 0.0;
    double energy = 0.0;
};

MixResult
measure(MultiCoreSystem &sys, InstCount instsPerCore)
{
    const MultiSnapshot s0 = sys.snapshot();
    sys.run(instsPerCore);
    const MultiMetrics m = sys.metricsBetween(s0, sys.snapshot());
    return {m.geomeanIpc, m.lifetimeYears, m.energyJ};
}

/** Sampling + prediction + selection on the 4-core machine (the
 *  library routine of mct/multicore_controller.hh). */
MixResult
runMultiMct(const MixSpec &mix, const MultiCoreParams &mp,
            MellowConfig &chosenOut)
{
    MultiMctParams params;
    // Quasi-steady sample windows must get past the shared-LLC fill
    // transient; a stride keeps the total sampling cost bounded.
    params.sampleWarmup = 300 * 1000;
    params.sampleMeasure = 300 * 1000;
    params.sampleStride = 3;
    const MultiMctResult sel =
        chooseMultiCoreConfig(mix.apps, mp, params);
    chosenOut = sel.chosen;

    MultiCoreSystem sys(mix.apps, mp, sel.chosen);
    sys.run(300 * 1000);
    return measure(sys, 500 * 1000);
}

} // namespace

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Table 11: multi-program workloads");
    TextTable t11;
    t11.header({"mix", "applications"});
    for (const auto &mix : multiProgramMixes()) {
        std::string apps;
        for (const auto &a : mix.apps)
            apps += (apps.empty() ? "" : ", ") + a;
        t11.row({mix.name, apps});
    }
    t11.print(std::cout);

    banner("Figure 10: MCT in multi-core environments "
           "(normalized to static policy)");
    MultiCoreParams mp;
    // The paper's multi-core machine has an 8 MB shared L3; at our
    // scaled run lengths that cache never leaves its fill transient
    // (no evictions -> no NVM writes -> no trade-off to optimize), so
    // the shared L3 is scaled with everything else.
    mp.base.caches.l3 = CacheParams{"L3", 2 * 1024 * 1024, 16};
    std::printf("(shared L3 scaled to 2 MB for the scaled-down run "
                "lengths; see DESIGN.md)\n");
    TextTable t;
    t.header({"mix", "IPC dflt", "IPC mct", "life dflt (y)",
              "life stat (y)", "life mct (y)", "mct config"});
    std::vector<double> normIpcDflt, normIpcMct, lives;
    for (const auto &mix : multiProgramMixes()) {
        MultiCoreSystem dfltSys(mix.apps, mp, defaultConfig());
        dfltSys.run(300 * 1000);
        const MixResult dflt = measure(dfltSys, 500 * 1000);

        MultiCoreSystem statSys(mix.apps, mp, staticBaselineConfig());
        statSys.run(300 * 1000);
        const MixResult stat = measure(statSys, 500 * 1000);

        MellowConfig chosen;
        const MixResult mct = runMultiMct(mix, mp, chosen);

        t.row({mix.name, fmt(dflt.geomeanIpc / stat.geomeanIpc, 3),
               fmt(mct.geomeanIpc / stat.geomeanIpc, 3),
               fmt(dflt.lifetime, 1), fmt(stat.lifetime, 1),
               fmt(mct.lifetime, 1), toString(chosen)});
        normIpcDflt.push_back(dflt.geomeanIpc / stat.geomeanIpc);
        normIpcMct.push_back(mct.geomeanIpc / stat.geomeanIpc);
        lives.push_back(mct.lifetime);
    }
    t.print(std::cout);

    std::printf("\ngeomean MCT IPC vs static: %+.2f%% "
                "(paper: ~+20%%)\n",
                (geomean(normIpcMct) - 1.0) * 100);
    std::printf("geomean default IPC vs static: %+.2f%%\n",
                (geomean(normIpcDflt) - 1.0) * 100);
    int floorMet = 0;
    for (double l : lives)
        floorMet += l >= 0.75 * 8.0;
    std::printf("mixes meeting the 8-year floor under MCT "
                "(within quota granularity): %d/6\n",
                floorMet);
    return 0;
}
