/**
 * @file
 * Figure 1 + Table 5: per-application comparison of the *default*
 * system (no mellow writes), the *baseline* static policy, and the
 * brute-force *ideal* policy under the default objective (8-year
 * floor, IPC within 95% of maximum, minimal energy), plus the ideal
 * configuration table showing that no two applications share one.
 */

#include <set>

#include <iostream>

#include "bench_common.hh"
#include "common/stats.hh"
#include "mct/config.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Figure 1: IPC, lifetime and energy of default / baseline "
           "/ ideal configurations (8-year objective)");

    SweepCache cache = openCache();
    const auto space = enumerateSpace();

    TextTable t;
    t.header({"app", "IPC dflt", "IPC base", "IPC ideal", "life dflt",
              "life base", "life ideal", "J/Mi dflt", "J/Mi base",
              "J/Mi ideal"});
    std::vector<double> ipcGainIdeal, energyIdealOverBase;
    std::vector<int> idealIdxPerApp;
    for (const auto &app : workloadNames()) {
        const Metrics dflt = cache.get(app, defaultConfig());
        const Metrics base = cache.get(app, staticBaselineConfig());
        const auto truth = sweep(cache, app, space);
        const int idx = idealIndex(truth, 8.0);
        idealIdxPerApp.push_back(idx);
        const Metrics &ideal = truth[static_cast<std::size_t>(idx)];
        t.row({app, fmt(dflt.ipc, 3), fmt(base.ipc, 3),
               fmt(ideal.ipc, 3), fmt(dflt.lifetimeYears, 2),
               fmt(base.lifetimeYears, 2), fmt(ideal.lifetimeYears, 2),
               fmt(dflt.energyJ, 4), fmt(base.energyJ, 4),
               fmt(ideal.energyJ, 4)});
        ipcGainIdeal.push_back(ideal.ipc / base.ipc);
        energyIdealOverBase.push_back(ideal.energyJ / base.energyJ);
        cache.save();
    }
    t.print(std::cout);
    std::printf("\ngeomean ideal/baseline IPC: %.4f  "
                "(paper: ideal clearly above baseline on ~half the "
                "apps)\n",
                geomean(ipcGainIdeal));
    std::printf("geomean ideal/baseline energy: %.4f\n",
                geomean(energyIdealOverBase));

    banner("Table 5: Ideal configurations for different applications");
    TextTable t5;
    auto header = configTableHeader();
    header.insert(header.begin(), "app");
    t5.header(header);
    {
        auto row = configTableRow(defaultConfig());
        row.insert(row.begin(), "default");
        t5.row(row);
        row = configTableRow(staticBaselineConfig());
        row.insert(row.begin(), "baseline");
        t5.row(row);
    }
    std::set<std::string> distinct;
    std::size_t appI = 0;
    for (const auto &app : workloadNames()) {
        const auto &cfg = space[static_cast<std::size_t>(
            idealIdxPerApp[appI++])];
        auto row = configTableRow(cfg);
        row.insert(row.begin(), app + "_ideal");
        t5.row(row);
        distinct.insert(configKey(cfg));
    }
    t5.print(std::cout);
    std::printf("\ndistinct ideal configurations across 10 apps: %zu "
                "(paper: none of the ten share one)\n",
                distinct.size());
    return 0;
}
