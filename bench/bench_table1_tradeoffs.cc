/**
 * @file
 * Table 1 (measured): the five NVM trade-offs and their impacts on
 * performance and lifetime. The paper states each direction
 * qualitatively; this bench measures every row on two contrasting
 * applications (write-heavy lbm, read-stream bwaves) and checks the
 * directions. The retention and read-disturbance rows exercise the
 * extension techniques built beyond the paper's evaluated space
 * (Section 8 notes the framework generalizes to them).
 */

#include <iostream>

#include "bench_common.hh"

using namespace mct;
using namespace mct::bench;

namespace
{

struct Row
{
    const char *tradeoff;
    const char *paperPerf;
    const char *paperLife;
    MellowConfig on;
    MellowConfig off;
};

const char *
arrow(double delta, double eps = 0.002)
{
    if (delta > eps)
        return "up";
    if (delta < -eps)
        return "down";
    return "flat";
}

} // namespace

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Table 1 (measured): trade-offs of NVM and their impacts");
    BenchSummary::instance().start("bench_table1_tradeoffs");

    MellowConfig wcOff;
    wcOff.bankAware = true;
    wcOff.bankAwareThreshold = 4;
    wcOff.slowLatency = 3.0;
    MellowConfig wcOn = wcOff;
    wcOn.slowCancellation = true;

    // Eager writeback in isolation: eager writes at the same latency
    // as demand writes, so only the paper's claimed mechanism (extra
    // rewrites of eagerly-cleaned lines) remains.
    MellowConfig eagerOff;
    MellowConfig eagerOn = eagerOff;
    eagerOn.eagerWritebacks = true;
    eagerOn.eagerThreshold = 4;
    eagerOn.slowLatency = 1.0;

    MellowConfig slowOff; // fast writes only
    MellowConfig slowOn;
    slowOn.fastLatency = 3.0;

    MellowConfig retOff;
    MellowConfig retOn = retOff;
    retOn.shortRetentionWrites = true;

    MellowConfig distOff;
    MellowConfig distOn = distOff;
    distOn.fastDisturbingReads = true;

    const Row rows[] = {
        {"write cancellation", "up", "down", wcOn, wcOff},
        {"eager/early writeback", "up", "down", eagerOn, eagerOff},
        {"long-latency-high-endurance writes", "down", "up", slowOn,
         slowOff},
        {"short-latency-short-retention writes", "up", "down", retOn,
         retOff},
        {"short-latency-high-disturbance reads", "up", "down", distOn,
         distOff},
    };

    EvalParams ep = standardEvalParams();
    int matches = 0, checks = 0;
    for (const char *app : {"lbm", "bwaves"}) {
        std::printf("\n-- %s --\n", app);
        TextTable t;
        t.header({"trade-off", "dIPC", "dLife", "perf", "paper perf",
                  "life", "paper life"});
        for (const Row &row : rows) {
            const Metrics off = evaluateConfig(app, row.off, ep);
            const Metrics on = evaluateConfig(app, row.on, ep);
            const double dIpc = on.ipc / off.ipc - 1.0;
            const double dLife =
                on.lifetimeYears / off.lifetimeYears - 1.0;
            const char *perfDir = arrow(dIpc);
            const char *lifeDir = arrow(dLife, 0.01);
            t.row({row.tradeoff, fmt(dIpc * 100, 1) + "%",
                   fmt(dLife * 100, 1) + "%", perfDir, row.paperPerf,
                   lifeDir, row.paperLife});
            checks += 2;
            matches += std::string(perfDir) == row.paperPerf;
            matches += std::string(lifeDir) == row.paperLife;
        }
        t.print(std::cout);
    }
    std::printf("\ndirections matching Table 1: %d/%d\n", matches,
                checks);
    BenchSummary::instance().metric("directions_matched", matches);
    BenchSummary::instance().metric("directions_checked", checks);
    std::printf("(reads: 'up'/'down' relative to the same "
                "configuration with the technique disabled)\n");
    return 0;
}
