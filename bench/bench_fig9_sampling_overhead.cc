/**
 * @file
 * Figure 9: sampling overhead. During the sampling period MCT
 * exercises suboptimal configurations; the loss is recovered during
 * the testing period. Reports (a) aggregate sampling-period vs
 * testing-period IPC and energy, normalized by the static policy,
 * and (b) the Eq. 4 extrapolation of total IPC/energy over the
 * testing:sampling length ratio alpha.
 *
 * Expected shape (paper): sampling aggregate IPC ~0.94x of static,
 * testing ~1.09x; at alpha=10 the total still nets ~+8% IPC and ~-7%
 * energy.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/stats.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Figure 9a: sampling-period vs testing-period, "
           "normalized by the static policy");

    SweepCache cache = openCache();

    TextTable t;
    t.header({"app", "sampling IPC", "testing IPC", "sampling J/Mi",
              "testing J/Mi"});
    std::vector<double> sampIpcN, testIpcN, sampEnN, testEnN;
    for (const auto &app : workloadNames()) {
        // Position-matched static references: the sampling period
        // runs early in an execution, the testing period late (past
        // the cold-cache transient), so each normalizes against a
        // static window at the same position.
        const Metrics statEarly =
            cache.get(app, staticBaselineConfig());
        SystemParams sp;
        System statSys(app, sp, staticBaselineConfig());
        statSys.run(3 * 1000 * 1000);
        const SysSnapshot st0 = statSys.snapshot();
        statSys.run(5 * 1000 * 1000);
        const Metrics statLate = statSys.metricsSince(st0);

        const MctRunResult r = runMct(
            cache, app, PredictorKind::GradientBoosting, 8.0);
        cache.save();
        const double si = r.samplingPeriod.ipc / statEarly.ipc;
        const double ti = r.testingPeriod.ipc / statLate.ipc;
        const double se =
            r.samplingPeriod.energyJ / statEarly.energyJ;
        const double te = r.testingPeriod.energyJ / statLate.energyJ;
        t.row({app, fmt(si, 3), fmt(ti, 3), fmt(se, 3), fmt(te, 3)});
        sampIpcN.push_back(si);
        testIpcN.push_back(ti);
        sampEnN.push_back(se);
        testEnN.push_back(te);
    }
    t.print(std::cout);

    const double gSampIpc = geomean(sampIpcN);
    const double gTestIpc = geomean(testIpcN);
    const double gSampEn = geomean(sampEnN);
    const double gTestEn = geomean(testEnN);
    std::printf("\ngeomean sampling IPC vs static: %.4f "
                "(paper: 0.9432)\n", gSampIpc);
    std::printf("geomean testing IPC vs static:  %.4f "
                "(paper: 1.09)\n", gTestIpc);
    std::printf("geomean sampling energy:        %.4f "
                "(paper: 1.05)\n", gSampEn);
    std::printf("geomean testing energy:         %.4f "
                "(paper: 0.9205)\n", gTestEn);

    banner("Figure 9b: Eq. 4 extrapolation over alpha = "
           "testing / sampling length");
    TextTable t2;
    t2.header({"alpha", "total IPC vs static", "total J/Mi vs static"});
    for (double alpha : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
        // IPC_total = (IPC_s + alpha IPC_t) / (1 + alpha)   (Eq. 4)
        const double ipc =
            (gSampIpc + alpha * gTestIpc) / (1.0 + alpha);
        const double energy =
            (gSampEn + alpha * gTestEn) / (1.0 + alpha);
        t2.row({fmt(alpha, 0), fmt(ipc, 4), fmt(energy, 4)});
    }
    t2.print(std::cout);
    std::printf("\npaper reference at alpha=10: +7.93%% IPC, -6.7%% "
                "energy vs static.\n");
    return 0;
}
