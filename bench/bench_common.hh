/**
 * @file
 * Shared plumbing for the table/figure regeneration binaries: the
 * standard evaluation parameters (kept identical across benches so
 * the on-disk sweep cache is shared), ideal-policy search, library
 * assembly for the offline models, and a canned MCT runtime run.
 */

#ifndef MCT_BENCH_BENCH_COMMON_HH
#define MCT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/alerts.hh"
#include "common/atomic_file.hh"
#include "common/instrument.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/manifest.hh"
#include "common/table.hh"
#include "mct/config_space.hh"
#include "mct/controller.hh"
#include "mct/optimizer.hh"
#include "sim/sweep_cache.hh"

namespace mct::bench
{

/**
 * Per-process wall-clock stage profiler shared by the bench binaries
 * (trace replay vs. sampling vs. fit vs. optimize, Fig 9 context).
 * The accumulated stage timings are dumped as JSON at exit when a
 * destination was named, either with the --profile-out harness flag
 * (initHarness) or the historical MCT_BENCH_PROFILE env var fallback.
 */
inline WallProfiler &profiler();

namespace detail
{

// These singletons are intentionally leaked: the at-exit dump
// handlers read them, and atexit handlers interleave with static
// destructors in reverse registration order, so a destructible
// static registered after a handler would be dead when it runs.

/** At-exit stage-dump destination ("" = no dump armed yet). */
inline std::string &
profileDumpPath()
{
    static std::string &path = *new std::string;
    return path;
}

/** At-exit run-manifest destination ("" = no manifest armed yet). */
inline std::string &
manifestDumpPath()
{
    static std::string &path = *new std::string;
    return path;
}

/** Bench name for the manifest ("?" until BenchSummary::start). */
inline std::string &
manifestBenchName()
{
    static std::string &name = *new std::string("?");
    return name;
}

/**
 * Arm the one at-exit manifest dump (idempotent). Must be armed
 * before the profile/summary dumps are registered: std::atexit runs
 * handlers in reverse registration order, and the manifest has to run
 * last so it can checksum the published artifact bytes.
 */
inline void
armManifestDump()
{
    static bool armed = false;
    if (armed)
        return;
    armed = true;
    std::atexit(+[] {
        const std::string &path = manifestDumpPath();
        if (path.empty())
            return;
        RunManifest m;
        m.mode = "bench";
        m.app = manifestBenchName();
        const char *summary = std::getenv("MCT_BENCH_JSON");
        m.fingerprint = "mct-bench-fp-v1;bench=" + m.app +
                        ";profile=" + profileDumpPath() +
                        ";summary=" + (summary ? summary : "");
        m.runId = manifestRunId(m.fingerprint);
        const auto note = [&](const char *kind, const char *schema,
                              const std::string &artifact) {
            if (artifact.empty())
                return;
            ManifestArtifact a;
            a.kind = kind;
            a.schema = schema;
            if (!checksumFile(artifact, a.checksum, a.bytes))
                return; // dump never happened; keep the manifest honest
            a.path = manifestRelative(path, artifact);
            m.artifacts.push_back(std::move(a));
        };
        note("profile", "", profileDumpPath());
        note("bench_summary", "mct-bench-summary-v1",
             summary ? summary : "");
        AtomicFile f(path);
        writeManifestJson(f.stream(), m);
        if (!f.commit())
            std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    });
}

/** Arm the one at-exit profile dump (idempotent). */
inline void
armProfileDump()
{
    static bool armed = false;
    if (armed)
        return;
    armed = true;
    std::atexit(+[] {
        const std::string &path = profileDumpPath();
        if (path.empty())
            return;
        std::ofstream os(path);
        if (os)
            profiler().writeJson(os);
    });
}

} // namespace detail

inline WallProfiler &
profiler()
{
    // Benches that never call initHarness (or are driven by scripts
    // predating the flags) keep the env-var behavior. Manifest before
    // profile: reverse atexit order makes the manifest dump run last.
    static const bool envFallback = [] {
        if (detail::manifestDumpPath().empty())
            if (const char *env = std::getenv("MCT_BENCH_MANIFEST"))
                detail::manifestDumpPath() = env;
        if (!detail::manifestDumpPath().empty())
            detail::armManifestDump();
        if (detail::profileDumpPath().empty())
            if (const char *env = std::getenv("MCT_BENCH_PROFILE"))
                detail::profileDumpPath() = env;
        if (!detail::profileDumpPath().empty())
            detail::armProfileDump();
        return true;
    }();
    (void)envFallback;
    static WallProfiler &p = *new WallProfiler; // leaked, see detail above
    return p;
}

/**
 * Parse the shared bench harness command line. The flags are
 *
 *   --profile-out FILE   dump the WallProfiler stage timings to FILE
 *                        at exit (JSON; mct_report show --profile)
 *   --manifest-out FILE  write an mct-manifest-v1 run manifest to
 *                        FILE at exit, listing the profile/summary
 *                        artifacts with sizes and FNV-1a checksums
 *                        (docs/observability.md; mct_report aggregate)
 *
 * which promote the historical MCT_BENCH_PROFILE / MCT_BENCH_MANIFEST
 * env vars; the env vars remain the fallback when a flag is absent.
 * Unknown flags are fatal (exit 2) so a typo cannot silently run an
 * unprofiled bench.
 */
inline void
initHarness(int argc, char **argv)
{
    std::string path;
    std::string manifest;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--profile-out" && i + 1 < argc) {
            path = argv[++i];
        } else if (arg == "--manifest-out" && i + 1 < argc) {
            manifest = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--profile-out FILE] "
                         "[--manifest-out FILE]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (path.empty())
        if (const char *env = std::getenv("MCT_BENCH_PROFILE"))
            path = env;
    if (manifest.empty())
        if (const char *env = std::getenv("MCT_BENCH_MANIFEST"))
            manifest = env;
    if (!manifest.empty()) {
        // Armed first: atexit runs in reverse order, so the manifest
        // dump then runs after the artifacts it checksums are final.
        detail::manifestDumpPath() = manifest;
        detail::armManifestDump();
    }
    if (path.empty())
        return;
    detail::profileDumpPath() = path;
    detail::armProfileDump();
}

/**
 * Machine-readable outcome of a bench binary. Benches record their
 * headline numbers with metric(); when the MCT_BENCH_JSON environment
 * variable names a file, the summary — metrics plus the WallProfiler
 * stage timings — is written there as JSON at exit, in the BENCH_*.json
 * shape the CI perf-smoke job archives and mct_report consumes.
 */
class BenchSummary
{
  public:
    static BenchSummary &
    instance()
    {
        static BenchSummary s;
        return s;
    }

    /** Name the bench (once, near banner()). Arms the at-exit dump. */
    void
    start(const std::string &benchName)
    {
        name = benchName;
        detail::manifestBenchName() = benchName;
        static const bool armed = [] {
            if (!std::getenv("MCT_BENCH_JSON"))
                return false;
            std::atexit(+[] {
                const char *path = std::getenv("MCT_BENCH_JSON");
                if (!path)
                    return;
                std::ofstream os(path);
                if (os)
                    instance().writeJson(os);
            });
            return true;
        }();
        (void)armed;
    }

    /** Record one headline number (insertion order is kept). */
    void
    metric(const std::string &key, double value)
    {
        metrics.emplace_back(key, value);
    }

    /** Fold one run's fired-alert counts and timeline EWMA rollups
     *  into the summary under @p prefix. Disarmed surfaces record
     *  nothing, so benches that never arm alerting keep their
     *  historical metric list. */
    void
    observability(const System &sys, const std::string &prefix)
    {
        if (sys.alerts().enabled()) {
            const AlertEngine &ae = sys.alerts();
            metric(prefix + ".alerts.raised",
                   static_cast<double>(ae.raised()));
            metric(prefix + ".alerts.critical",
                   static_cast<double>(ae.raisedBySeverity(
                       AlertSeverity::Critical)));
            metric(prefix + ".alerts.warn",
                   static_cast<double>(
                       ae.raisedBySeverity(AlertSeverity::Warn)));
        }
        const MetricTimeline &tl = sys.timeline();
        for (std::size_t i = 0; i < tl.metrics().size(); ++i)
            metric(prefix + ".ewma." + tl.metrics()[i],
                   tl.rollup(i).ewma);
    }

    void
    writeJson(std::ostream &os) const
    {
        JsonWriter w(os);
        w.beginObject();
        w.kv("schema", "mct-bench-summary-v1");
        w.kv("bench", name);
        w.key("metrics").beginObject();
        for (const auto &[k, v] : metrics)
            w.kv(k, v);
        w.endObject();
        w.key("profile").beginObject();
        w.key("stages").beginArray();
        for (const WallProfiler::Stage &s : profiler().stages()) {
            w.beginObject();
            w.kv("name", s.name);
            w.kv("seconds", s.seconds);
            w.kv("calls", s.calls);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        w.endObject();
        os << '\n';
    }

  private:
    std::string name = "?";
    std::vector<std::pair<std::string, double>> metrics;
};

/** Standard evaluation run lengths (every bench must agree so the
 *  sweep cache stays coherent). */
inline EvalParams
standardEvalParams()
{
    return EvalParams{}; // 200k warm-up, 1M measured
}

/** Open the shared on-disk sweep cache (MCT_SWEEP_CACHE overrides). */
inline SweepCache
openCache()
{
    return SweepCache(standardEvalParams(), SweepCache::defaultPath());
}

/** Sweep one application over a space, with progress on stderr. */
inline std::vector<Metrics>
sweep(SweepCache &cache, const std::string &app,
      const std::vector<MellowConfig> &space)
{
    WallProfiler::Scope scope(&profiler(), "sweep");
    return cache.getAll(app, space, true);
}

/** Index of the ideal configuration (brute force, paper Section 6.2). */
inline int
idealIndex(const std::vector<Metrics> &truth, double lifetimeTarget)
{
    const int i =
        chooseOptimal(truth, LifetimeObjective{lifetimeTarget, 0.95});
    return i >= 0 ? i : chooseMostDurable(truth);
}

/**
 * Offline library over @p space for the offline/HBM models: one row
 * per application except @p excludeApp; the selector picks the
 * objective (0 IPC, 1 lifetime, 2 energy), normalized per-app by its
 * static-baseline value so magnitudes are comparable across apps.
 */
inline ml::Matrix
buildLibrary(SweepCache &cache, const std::vector<MellowConfig> &space,
             const std::string &excludeApp, int objective,
             bool normalize = true)
{
    std::vector<ml::Vector> rows;
    for (const auto &app : workloadNames()) {
        if (app == excludeApp)
            continue;
        const Metrics base = cache.get(app, staticBaselineConfig());
        ml::Vector row;
        row.reserve(space.size());
        for (const auto &cfg : space) {
            const Metrics m = cache.get(app, cfg);
            double v = objective == 0   ? m.ipc
                       : objective == 1 ? m.lifetimeYears
                                        : m.energyJ;
            if (normalize) {
                const double b = objective == 0   ? base.ipc
                                 : objective == 1 ? base.lifetimeYears
                                                  : base.energyJ;
                v /= std::max(b, 1e-12);
            }
            row.push_back(v);
        }
        rows.push_back(std::move(row));
    }
    return ml::Matrix::fromRows(rows);
}

/** Outcome of one live MCT run. */
struct MctRunResult
{
    MellowConfig chosen;
    Metrics chosenEvaluated; ///< fresh evaluation of the final config
    Metrics samplingPeriod;  ///< cost during sampling (Fig 9)
    Metrics testingPeriod;   ///< measured post-selection execution
    double samplingInsts = 0;
    double testingInsts = 0;
    std::size_t decisions = 0;
    std::uint64_t fallbacks = 0;
};

/**
 * Run the MCT runtime on @p app and evaluate its final configuration
 * with the standard evaluator (so MCT rows compare apples-to-apples
 * with default/static/ideal rows).
 */
inline MctRunResult
runMct(SweepCache &cache, const std::string &app, PredictorKind kind,
       double lifetimeTarget, InstCount totalInsts = 8 * 1000 * 1000)
{
    SystemParams sp;
    System sys(app, sp, staticBaselineConfig());
    {
        WallProfiler::Scope scope(&profiler(), "replay");
        sys.run(standardEvalParams().warmupInsts);
    }

    MctParams mp;
    mp.predictor = kind;
    mp.objective.minLifetimeYears = lifetimeTarget;
    mp.profiler = &profiler();
    // Scaled-run substitution (MctParams::steadyMeasure): sample
    // objectives come from steady-state evaluations of the same 77
    // configurations, standing in for the paper's long (1B-insn)
    // sampling windows; the live cyclic sampler still runs and is
    // charged as overhead. A lighter live schedule keeps the Fig 9
    // sampling:testing ratio near the paper's 1:2.
    mp.steadyMeasure = [&cache, &app](const MellowConfig &cfg) {
        return cache.get(app, cfg);
    };
    mp.sampling.rounds = 6;
    MctController ctl(sys, mp);
    ctl.runFor(totalInsts);

    MctRunResult r;
    r.chosen = ctl.currentConfig();
    r.chosenEvaluated = cache.get(app, r.chosen);
    r.samplingPeriod = ctl.samplingAccum().metrics(sys);
    r.testingPeriod = ctl.testingAccum().metrics(sys);
    r.samplingInsts = static_cast<double>(ctl.samplingAccum().insts);
    r.testingInsts = static_cast<double>(ctl.testingAccum().insts);
    r.decisions = ctl.decisions().size();
    r.fallbacks = ctl.fallbacks();
    return r;
}

/** Print a one-line banner for a bench binary. Also raises the log
 *  level so sweep progress (reported via mct_inform) stays visible
 *  while a cold cache populates. */
inline void
banner(const std::string &what)
{
    if (logLevel() < LogLevel::Inform)
        setLogLevel(LogLevel::Inform);
    std::printf("==============================================="
                "=============\n%s\n"
                "==============================================="
                "=============\n",
                what.c_str());
}

} // namespace mct::bench

#endif // MCT_BENCH_BENCH_COMMON_HH
