# One binary per paper table/figure, plus ablations and Google-
# Benchmark microbenchmarks. Included from the top-level CMakeLists
# (not add_subdirectory) so ${CMAKE_BINARY_DIR}/bench holds ONLY the
# bench executables: the canonical run command is
#     for b in build/bench/*; do $b; done
# and must not trip over CMake bookkeeping files.

function(mct_add_bench name)
    add_executable(${name} ${CMAKE_CURRENT_LIST_DIR}/${name}.cc)
    target_link_libraries(${name} PRIVATE mct_core benchmark::benchmark)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

mct_add_bench(bench_table1_tradeoffs)
mct_add_bench(bench_table2_config_space)
mct_add_bench(bench_table4_lifetime_constraints)
mct_add_bench(bench_fig1_ideal_configs)
mct_add_bench(bench_table6_effective_features)
mct_add_bench(bench_table7_fig2_models)
mct_add_bench(bench_fig3_wear_quota)
mct_add_bench(bench_fig4_feature_selection)
mct_add_bench(bench_fig6_phase_detection)
mct_add_bench(bench_fig7_mct_main)
mct_add_bench(bench_fig8_lifetime_sensitivity)
mct_add_bench(bench_fig9_sampling_overhead)
mct_add_bench(bench_fig10_multiprogram)
mct_add_bench(bench_ablation_mct)
mct_add_bench(bench_micro_perf)
mct_add_bench(bench_faults)
