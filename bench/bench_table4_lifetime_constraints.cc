/**
 * @file
 * Table 4: ideal configurations of leslie3d under different minimal
 * lifetime constraints (4 / 6 / 8 / 10 years). Like the paper, this
 * table explores the wear-quota-free subspace; the ideal knobs shift
 * toward slower writes as the lifetime floor rises.
 */

#include <iostream>

#include "bench_common.hh"
#include "mct/config.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Table 4: Ideal configurations vs minimal lifetime "
           "constraint (leslie3d, no wear quota)");

    SweepCache cache = openCache();
    const auto space = enumerateNoQuotaSpace();
    const auto truth = sweep(cache, "leslie3d", space);

    TextTable t;
    auto header = configTableHeader();
    header.insert(header.begin(), "target");
    header.push_back("IPC");
    header.push_back("life (y)");
    header.push_back("J/Minst");
    t.header(header);

    for (double target : {4.0, 6.0, 8.0, 10.0}) {
        const int idx = idealIndex(truth, target);
        auto row = configTableRow(space[static_cast<std::size_t>(idx)]);
        row.insert(row.begin(), fmt(target, 1) + " years");
        const Metrics &m = truth[static_cast<std::size_t>(idx)];
        row.push_back(fmt(m.ipc, 3));
        row.push_back(fmt(m.lifetimeYears, 2));
        row.push_back(fmt(m.energyJ, 4));
        t.row(row);
    }
    t.print(std::cout);
    cache.save();

    std::printf("\nExpected shape (paper Table 4): higher targets "
                "push the ideal toward\nslower slow writes and lower "
                "aggressiveness; the chosen configurations differ\n"
                "across targets.\n");
    return 0;
}
