/**
 * @file
 * Table 7 + Figure 2: comparison of the predictor family.
 *
 *  - Table 7: offline/online data requirements and measured
 *    computation overhead (fit + predict-all at 77 samples).
 *  - Figure 2: convergence — coefficient of determination (Eq. 3) on
 *    the full learning space vs number of random training samples,
 *    averaged over the 10 applications, per objective.
 *
 * Expected shapes (paper): gradient boosting and quadratic-lasso are
 * the most accurate with low cost; quadratic without regularization
 * converges slowly (65 features vs few samples); linear trails the
 * quadratic models; offline averaging is weakest; the hierarchical
 * Bayesian model is accurate on lifetime (high app correlation) but
 * by far the most expensive.
 *
 * A final cross-check joins this offline view with the online one:
 * live MCT runs (decision-provenance audit enabled) report the
 * realized per-objective relative error of the two runtime models, so
 * the steady-state Eq. 3 accuracy can be sanity-checked against what
 * the running controller actually experiences.
 */

#include <array>
#include <map>

#include <iostream>

#include "bench_common.hh"
#include "mct/samplers.hh"
#include "common/stats.hh"
#include "ml/metrics.hh"

using namespace mct;
using namespace mct::bench;

namespace
{

struct ObjData
{
    ml::Vector truth;   // normalized objective over the space
    double base = 1.0;
};

double
objectiveOf(const Metrics &m, int obj)
{
    return obj == 0 ? m.ipc : obj == 1 ? m.lifetimeYears : m.energyJ;
}

} // namespace

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    BenchSummary::instance().start("bench_table7_fig2_models");
    SweepCache cache = openCache();
    const auto space = enumerateNoQuotaSpace();
    const auto &apps = workloadNames();
    const char *objNames[3] = {"IPC", "lifetime", "energy"};

    // Ground truth per app per objective, normalized by the static
    // baseline (Section 4.4 normalization).
    std::map<std::string, std::array<ObjData, 3>> truth;
    for (const auto &app : apps) {
        const auto metrics = sweep(cache, app, space);
        const Metrics base = cache.get(app, staticBaselineConfig());
        for (int obj = 0; obj < 3; ++obj) {
            ObjData d;
            d.base = std::max(objectiveOf(base, obj), 1e-12);
            d.truth.reserve(space.size());
            for (const auto &m : metrics)
                d.truth.push_back(objectiveOf(m, obj) / d.base);
            truth[app][obj] = std::move(d);
        }
        cache.save();
    }

    // Offline libraries per (excluded app, objective).
    std::map<std::string, std::array<ml::Matrix, 3>> libs;
    for (const auto &app : apps) {
        for (int obj = 0; obj < 3; ++obj)
            libs[app][obj] = buildLibrary(cache, space, app, obj);
    }

    const std::vector<std::size_t> sampleCounts = {10, 20, 40, 77,
                                                   120, 200};
    const auto &kinds = allPredictorKinds();

    // accuracy[kind][objective][countIdx] averaged over apps.
    std::map<PredictorKind,
             std::array<std::vector<double>, 3>> accuracy;
    std::map<PredictorKind, double> overheadMs;

    for (auto kind : kinds) {
        for (int obj = 0; obj < 3; ++obj)
            accuracy[kind][obj].assign(sampleCounts.size(), 0.0);

        for (std::size_t ci = 0; ci < sampleCounts.size(); ++ci) {
            const std::size_t n = sampleCounts[ci];
            for (int obj = 0; obj < 3; ++obj) {
                RunningStat acc;
                for (const auto &app : apps) {
                    const auto samples = randomSamples(
                        space, n, 1000 + 7 * n);
                    TrainData data;
                    data.space = &space;
                    data.sampleIdx = indicesInSpace(space, samples);
                    data.sampleY.clear();
                    for (auto idx : data.sampleIdx)
                        data.sampleY.push_back(
                            truth[app][obj].truth[idx]);
                    data.library = &libs[app][obj];

                    // Fit+predict cost via the sanctioned wall-clock
                    // source (WallProfiler); raw std::chrono clocks
                    // are banned by mct_lint's det-wall-clock rule.
                    const double before =
                        profiler().seconds("model_fit");
                    ml::Vector pred;
                    {
                        WallProfiler::Scope scope(&profiler(),
                                                  "model_fit");
                        pred = predictAllConfigs(kind, data);
                    }
                    if (n == 77 && obj == 0) {
                        overheadMs[kind] +=
                            (profiler().seconds("model_fit") -
                             before) *
                            1000.0 /
                            static_cast<double>(apps.size());
                    }
                    acc.push(ml::coefficientOfDetermination(
                        pred, truth[app][obj].truth));
                }
                accuracy[kind][obj][ci] = acc.mean();
            }
        }
    }

    banner("Table 7: Comparison of different models");
    {
        TextTable t;
        t.header({"predictor", "needs offline?", "needs online?",
                  "overhead (ms, fit+predict @77)"});
        for (auto kind : kinds) {
            t.row({toString(kind),
                   needsOfflineData(kind) ? "Yes" : "No",
                   kind == PredictorKind::Offline ? "No" : "Yes",
                   fmt(overheadMs[kind], 2)});
        }
        t.print(std::cout);
    }

    banner("Figure 2: convergence (Eq. 3 accuracy vs random samples, "
           "mean over 10 apps)");
    for (int obj = 0; obj < 3; ++obj) {
        std::printf("\n-- objective: %s --\n", objNames[obj]);
        TextTable t;
        std::vector<std::string> head = {"predictor"};
        for (auto n : sampleCounts)
            head.push_back("n=" + std::to_string(n));
        t.header(head);
        for (auto kind : kinds) {
            std::vector<std::string> row = {toString(kind)};
            for (std::size_t ci = 0; ci < sampleCounts.size(); ++ci)
                row.push_back(fmt(accuracy[kind][obj][ci], 3));
            t.row(row);
        }
        t.print(std::cout);
    }

    // Headline checks from the paper's narrative.
    const auto at77 = [&](PredictorKind k, int obj) {
        // Index of 77 in sampleCounts.
        std::size_t ci = 0;
        for (std::size_t i = 0; i < sampleCounts.size(); ++i)
            if (sampleCounts[i] == 77)
                ci = i;
        return accuracy[k][obj][ci];
    };
    std::printf("\nchecks (paper narrative):\n");
    std::printf("  gbt >= linear on IPC @77:        %s "
                "(%.3f vs %.3f)\n",
                at77(PredictorKind::GradientBoosting, 0) >=
                        at77(PredictorKind::Linear, 0)
                    ? "yes"
                    : "NO",
                at77(PredictorKind::GradientBoosting, 0),
                at77(PredictorKind::Linear, 0));
    std::printf("  quad-lasso >= quad (few samples): %s "
                "(%.3f vs %.3f @n=20)\n",
                accuracy[PredictorKind::QuadraticLasso][0][1] >=
                        accuracy[PredictorKind::Quadratic][0][1]
                    ? "yes"
                    : "NO",
                accuracy[PredictorKind::QuadraticLasso][0][1],
                accuracy[PredictorKind::Quadratic][0][1]);
    std::printf("  offline weakest on IPC @77:       %s (%.3f)\n",
                at77(PredictorKind::Offline, 0) <=
                        at77(PredictorKind::GradientBoosting, 0)
                    ? "yes"
                    : "NO",
                at77(PredictorKind::Offline, 0));
    std::printf("  HBM strong on lifetime @77:       %.3f\n",
                at77(PredictorKind::HierBayes, 1));

    banner("Cross-check: offline accuracy vs online audit error");
    // Live runs with the decision-provenance audit on: every closed
    // record carries |pred-real|/real per objective for the decision
    // the controller actually took. High offline accuracy with high
    // online error means the steady-state view is flattering the
    // model (window noise, phase drift, stale normalization anchor).
    {
        const std::string app = "lbm";
        TextTable t;
        t.header({"predictor", "decisions", "err_ipc", "err_life",
                  "err_energy", "regret", "R2_ipc@77"});
        for (auto kind : {PredictorKind::GradientBoosting,
                          PredictorKind::QuadraticLasso}) {
            SystemParams sp;
            System sys(app, sp, staticBaselineConfig());
            sys.provenanceTrace().enable(1024);
            sys.run(standardEvalParams().warmupInsts);
            MctParams mp;
            mp.predictor = kind;
            mp.profiler = &profiler();
            MctController ctl(sys, mp);
            {
                WallProfiler::Scope scope(&profiler(), "mct_run");
                ctl.runFor(4 * 1000 * 1000);
            }
            ctl.finalizeAudit();
            std::array<RunningStat, 3> err;
            for (const ProvenanceRecord &rec :
                 sys.provenanceTrace().records()) {
                if (!rec.closed)
                    continue;
                for (std::size_t o = 0; o < 3; ++o)
                    if (rec.objectives[o].errorValid)
                        err[o].push(rec.objectives[o].relError);
            }
            t.row({toString(kind),
                   std::to_string(ctl.auditClosed()),
                   fmt(err[0].mean(), 3), fmt(err[1].mean(), 3),
                   fmt(err[2].mean(), 3),
                   fmt(ctl.cumulativeRegret(), 3),
                   fmt(at77(kind, 0), 3)});
            const std::string tag = predictorTag(kind);
            BenchSummary::instance().metric(
                "online." + tag + ".err_ipc", err[0].mean());
            BenchSummary::instance().metric(
                "online." + tag + ".err_lifetime", err[1].mean());
            BenchSummary::instance().metric(
                "online." + tag + ".err_energy", err[2].mean());
            BenchSummary::instance().metric(
                "online." + tag + ".regret", ctl.cumulativeRegret());
            BenchSummary::instance().metric(
                "offline." + tag + ".r2_ipc_77", at77(kind, 0));
        }
        t.print(std::cout);
    }
    return 0;
}
