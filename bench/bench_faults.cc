/**
 * @file
 * Robustness: the live MCT runtime under every built-in fault plan.
 *
 * For each plan the controller runs on a write-heavy workload with
 * the fault injector attached and the table reports the measured
 * outcome next to the recovery work it took to get there (quarantined
 * samples, rejected predictions, fallbacks, emergency clamps). The
 * invariants the chaos tests assert — finite metrics, wear quota
 * engaged at the end — are checked here too, so a regression shows up
 * as a FAIL cell rather than a crash.
 */

#include <cmath>

#include <iostream>

#include "bench_common.hh"
#include "common/fault_plan.hh"
#include "sim/fault_injector.hh"

using namespace mct;
using namespace mct::bench;

namespace
{

/** Run in short chunks so windowed faults inside long spans fire,
 *  observing a timeline/alert window at every chunk boundary. */
void
runChunked(System &sys, MctController &ctl, InstCount insts)
{
    const InstCount chunk = 50 * 1000;
    StatSnapshot prev = sys.statRegistry().snapshot();
    for (InstCount done = 0; done < insts; done += chunk) {
        ctl.runFor(std::min(chunk, insts - done));
        StatSnapshot cur = sys.statRegistry().snapshot();
        sys.observeWindow(sys.retired(),
                          StatRegistry::delta(prev, cur));
        prev = std::move(cur);
    }
}

/** The watchdog rules every plan runs under: a non-finite objective
 *  is always a bug (critical; the table's finite check would go FAIL
 *  with it), and a sharp break from the smoothed IPC trend flags the
 *  plans that visibly disturb execution (warn, informational). */
std::vector<AlertRule>
watchdogRules()
{
    AlertRule nonfinite;
    nonfinite.name = "objective-nonfinite";
    nonfinite.glob = "sim.objective.*";
    nonfinite.cond = AlertCondition::Nonfinite;
    nonfinite.severity = AlertSeverity::Critical;
    AlertRule collapse;
    collapse.name = "ipc-collapse";
    collapse.glob = "sim.objective.ipc";
    collapse.cond = AlertCondition::EwmaDev;
    collapse.threshold = 0.5;
    collapse.severity = AlertSeverity::Warn;
    return {nonfinite, collapse};
}

} // namespace

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    const std::string app = "stream";
    const InstCount totalInsts = 4 * 1000 * 1000;

    banner("Robustness: live MCT runtime under built-in fault plans "
           "(" + app + ", 4M insts)");
    BenchSummary::instance().start("bench_faults");

    TextTable t;
    t.header({"plan", "injected", "IPC", "life(y)", "quarant",
              "rejected", "fallbk", "clamps", "reeng", "alerts",
              "ok"});

    std::vector<std::string> plans = {"(clean)"};
    for (const std::string &name : builtinFaultPlanNames())
        plans.push_back(name);

    for (const std::string &name : plans) {
        SystemParams sp;
        System sys(app, sp, staticBaselineConfig());

        FaultPlan plan;
        if (name != "(clean)") {
            const FaultPlanParse parsed =
                parseFaultPlan(builtinFaultPlanText(name));
            plan = parsed.plan;
        }
        FaultInjector inj(plan, 42);
        sys.attachFaultInjector(&inj);
        sys.enableTimeline({"sim.objective.*"}, 128);
        sys.enableAlerts(watchdogRules());

        sys.run(standardEvalParams().warmupInsts);

        MctParams mp;
        mp.sampling.unitInsts = 2000;
        mp.sampling.settleInsts = 1000;
        mp.sampling.rounds = 2;
        MctController ctl(sys, mp);
        sys.alerts().setEscalation(
            [&ctl](const AlertRule &, const std::string &) {
                ctl.noteCriticalAlert();
            });

        const SysSnapshot s0 = sys.snapshot();
        runChunked(sys, ctl, totalInsts);
        const Metrics m = sys.metricsSince(s0);

        const bool finite = std::isfinite(m.ipc) &&
                            std::isfinite(m.energyJ) &&
                            std::isfinite(m.lifetimeYears);
        const bool quotaOn = ctl.currentConfig().wearQuota;
        t.row({name, fmt(double(inj.injectedTotal()), 0),
               fmt(m.ipc, 3), fmt(m.lifetimeYears, 2),
               fmt(double(ctl.quarantinedSamples()), 0),
               fmt(double(ctl.rejectedPredictions()), 0),
               fmt(double(ctl.fallbacks()), 0),
               fmt(double(ctl.emergencyClamps()), 0),
               fmt(double(ctl.reengagements()), 0),
               fmt(double(sys.alerts().raised()), 0),
               finite && quotaOn ? "ok" : "FAIL"});
        BenchSummary::instance().metric(name + ".ipc", m.ipc);
        BenchSummary::instance().metric(name + ".lifetime_years",
                                        m.lifetimeYears);
        BenchSummary::instance().observability(sys, name);
    }
    t.print(std::cout);
    return 0;
}
