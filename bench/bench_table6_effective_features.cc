/**
 * @file
 * Table 6: the top-3 most effective quadratic features per
 * application, ranked by quadratic-lasso weight magnitude on the IPC
 * objective. The paper's observations to reproduce: knob *pairs*
 * appear among the top features (correlation matters), the ranking
 * differs across applications, and single knobs act nonlinearly
 * (square terms rank highly).
 */

#include <set>

#include <iostream>

#include "bench_common.hh"
#include "mct/feature_selection.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    banner("Table 6: Most effective quadratic features "
           "(quadratic lasso on IPC)");

    SweepCache cache = openCache();
    const auto space = enumerateNoQuotaSpace();

    TextTable t;
    t.header({"application", "top-3 features (sign = effect on IPC)"});
    int pairsSeen = 0, squaresSeen = 0;
    std::set<std::string> topFeatureSets;
    for (const std::string app :
         {"lbm", "leslie3d", "GemsFDTD", "stream"}) {
        const auto truth = sweep(cache, app, space);
        ml::Vector y(truth.size());
        for (std::size_t i = 0; i < truth.size(); ++i)
            y[i] = truth[i].ipc;
        const auto ranked = topQuadraticFeatures(space, y, 3);
        std::string cell;
        std::string keyset;
        for (const auto &rf : ranked) {
            if (!cell.empty())
                cell += ",  ";
            cell += (rf.weight >= 0 ? "+" : "-") + rf.name;
            keyset += rf.name + "|";
            if (rf.name.find(" * ") != std::string::npos)
                ++pairsSeen;
            if (rf.name.find("^2") != std::string::npos)
                ++squaresSeen;
        }
        topFeatureSets.insert(keyset);
        t.row({app, cell});
        cache.save();
    }
    t.print(std::cout);

    std::printf("\nknob-pair features in the top-3 lists: %d\n",
                pairsSeen);
    std::printf("square (nonlinear) features in the top-3 lists: %d\n",
                squaresSeen);
    std::printf("distinct top-3 sets across the 4 apps: %zu "
                "(paper: rankings differ per app)\n",
                topFeatureSets.size());
    return 0;
}
