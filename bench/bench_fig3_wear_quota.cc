/**
 * @file
 * Figure 3: including wear quota in the learning space adds
 * complexity and degrades prediction accuracy (paper: by 2-6%).
 *
 * Two experiments, following Section 4.4 / Section 6.2.3:
 *  1. The per-configuration IPC/energy curves of lbm's feature-based
 *     samples with and without wear quota: quota kinks the curves at
 *     the fast end (quota triggers) while the slow end is
 *     intrinsically slow.
 *  2. Gradient-boosting accuracy when the training samples and test
 *     space include quota configurations vs when they exclude them.
 */

#include <iostream>

#include "bench_common.hh"
#include "mct/samplers.hh"
#include "common/stats.hh"
#include "ml/metrics.hh"

using namespace mct;
using namespace mct::bench;

int
main(int argc, char **argv)
{
    initHarness(argc, argv);
    SweepCache cache = openCache();
    const auto noQuota = enumerateNoQuotaSpace();
    SpaceOptions withQuotaOpts;
    withQuotaOpts.includeQuotaOff = false; // quota-on variants only
    const auto quotaOnly = enumerateSpace(withQuotaOpts);
    const auto full = enumerateSpace();

    banner("Figure 3 (top): lbm sample configurations with vs "
           "without wear quota");
    {
        // The 28 fast/slow latency grid points of the feature-based
        // samples, cancellation (off,off): IPC and energy with and
        // without an 8-year quota.
        TextTable t;
        t.header({"fast", "slow", "IPC no-quota", "IPC quota",
                  "J/Mi no-quota", "J/Mi quota"});
        SpaceOptions opts;
        for (std::size_t fi = 0; fi < opts.latencies.size(); ++fi) {
            for (std::size_t si = fi; si < opts.latencies.size();
                 si += 3) {
                MellowConfig cfg;
                cfg.fastLatency = opts.latencies[fi];
                if (si > fi) {
                    cfg.bankAware = true;
                    cfg.bankAwareThreshold = 2;
                    cfg.slowLatency = opts.latencies[si];
                }
                const Metrics a = cache.get("lbm", cfg);
                cfg.wearQuota = true;
                cfg.wearQuotaTarget = 8.0;
                const Metrics b = cache.get("lbm", cfg);
                t.row({fmt(cfg.fastLatency, 1),
                       cfg.usesSlowWrites() ? fmt(cfg.slowLatency, 1)
                                            : "-",
                       fmt(a.ipc, 3), fmt(b.ipc, 3),
                       fmt(a.energyJ, 4), fmt(b.energyJ, 4)});
            }
        }
        t.print(std::cout);
        cache.save();
    }

    banner("Figure 3 (bottom): prediction accuracy including vs "
           "excluding wear quota (gradient boosting, 77 samples)");
    TextTable t;
    t.header({"app", "obj", "acc excl quota", "acc incl quota",
              "degradation"});
    RunningStat degradation;
    for (const std::string app : {"lbm", "leslie3d", "stream",
                                  "GemsFDTD"}) {
        const auto truthNo = sweep(cache, app, noQuota);
        const auto truthFull = sweep(cache, app, full);
        const Metrics base = cache.get(app, staticBaselineConfig());
        cache.save();

        for (int obj = 0; obj < 3; ++obj) {
            auto val = [&](const Metrics &m) {
                const double v = obj == 0   ? m.ipc
                                 : obj == 1 ? m.lifetimeYears
                                            : m.energyJ;
                const double b = obj == 0   ? base.ipc
                                 : obj == 1 ? base.lifetimeYears
                                            : base.energyJ;
                return v / std::max(b, 1e-12);
            };

            // Excluding quota: train 77 feature-based samples, test
            // on the quota-free space.
            const auto samples = featureBasedSamples(42);
            TrainData d;
            d.space = &noQuota;
            d.sampleIdx = indicesInSpace(noQuota, samples);
            d.sampleY.clear();
            for (auto idx : d.sampleIdx)
                d.sampleY.push_back(val(truthNo[idx]));
            const auto predNo = predictAllConfigs(
                PredictorKind::GradientBoosting, d);
            ml::Vector truthVecNo;
            for (const auto &m : truthNo)
                truthVecNo.push_back(val(m));
            const double accNo = ml::coefficientOfDetermination(
                predNo, truthVecNo);

            // Including quota: same latency grid but half the samples
            // carry an 8-year quota; test on the full space.
            std::vector<MellowConfig> mixed = samples;
            for (std::size_t i = 0; i < mixed.size(); i += 2) {
                mixed[i].wearQuota = true;
                mixed[i].wearQuotaTarget = 8.0;
            }
            TrainData d2;
            d2.space = &full;
            d2.sampleIdx = indicesInSpace(full, mixed);
            d2.sampleY.clear();
            for (auto idx : d2.sampleIdx)
                d2.sampleY.push_back(val(truthFull[idx]));
            const auto predFull = predictAllConfigs(
                PredictorKind::GradientBoosting, d2);
            ml::Vector truthVecFull;
            for (const auto &m : truthFull)
                truthVecFull.push_back(val(m));
            const double accFull = ml::coefficientOfDetermination(
                predFull, truthVecFull);

            const char *objName = obj == 0   ? "IPC"
                                  : obj == 1 ? "lifetime"
                                             : "energy";
            t.row({app, objName, fmt(accNo, 3), fmt(accFull, 3),
                   fmt(accNo - accFull, 3)});
            degradation.push(accNo - accFull);
        }
    }
    t.print(std::cout);
    std::printf("\nmean accuracy degradation when including wear "
                "quota: %.3f (paper: 0.02-0.06)\n",
                degradation.mean());
    return 0;
}
