file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_phase_detection.dir/bench/bench_fig6_phase_detection.cc.o"
  "CMakeFiles/bench_fig6_phase_detection.dir/bench/bench_fig6_phase_detection.cc.o.d"
  "bench/bench_fig6_phase_detection"
  "bench/bench_fig6_phase_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_phase_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
