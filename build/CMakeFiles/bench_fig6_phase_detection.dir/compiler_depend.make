# Empty compiler generated dependencies file for bench_fig6_phase_detection.
# This may be replaced when dependencies are built.
