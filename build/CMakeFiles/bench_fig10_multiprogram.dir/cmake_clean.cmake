file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_multiprogram.dir/bench/bench_fig10_multiprogram.cc.o"
  "CMakeFiles/bench_fig10_multiprogram.dir/bench/bench_fig10_multiprogram.cc.o.d"
  "bench/bench_fig10_multiprogram"
  "bench/bench_fig10_multiprogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_multiprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
