# Empty dependencies file for bench_fig10_multiprogram.
# This may be replaced when dependencies are built.
