file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mct_main.dir/bench/bench_fig7_mct_main.cc.o"
  "CMakeFiles/bench_fig7_mct_main.dir/bench/bench_fig7_mct_main.cc.o.d"
  "bench/bench_fig7_mct_main"
  "bench/bench_fig7_mct_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mct_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
