# Empty compiler generated dependencies file for bench_fig7_mct_main.
# This may be replaced when dependencies are built.
