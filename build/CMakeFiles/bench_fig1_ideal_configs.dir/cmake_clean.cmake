file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_ideal_configs.dir/bench/bench_fig1_ideal_configs.cc.o"
  "CMakeFiles/bench_fig1_ideal_configs.dir/bench/bench_fig1_ideal_configs.cc.o.d"
  "bench/bench_fig1_ideal_configs"
  "bench/bench_fig1_ideal_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ideal_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
