# Empty dependencies file for bench_fig1_ideal_configs.
# This may be replaced when dependencies are built.
