# Empty dependencies file for bench_table6_effective_features.
# This may be replaced when dependencies are built.
