file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_effective_features.dir/bench/bench_table6_effective_features.cc.o"
  "CMakeFiles/bench_table6_effective_features.dir/bench/bench_table6_effective_features.cc.o.d"
  "bench/bench_table6_effective_features"
  "bench/bench_table6_effective_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_effective_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
