# Empty dependencies file for bench_ablation_mct.
# This may be replaced when dependencies are built.
