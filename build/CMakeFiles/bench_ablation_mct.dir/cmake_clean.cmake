file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mct.dir/bench/bench_ablation_mct.cc.o"
  "CMakeFiles/bench_ablation_mct.dir/bench/bench_ablation_mct.cc.o.d"
  "bench/bench_ablation_mct"
  "bench/bench_ablation_mct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
