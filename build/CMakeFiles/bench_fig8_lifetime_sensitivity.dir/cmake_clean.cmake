file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_lifetime_sensitivity.dir/bench/bench_fig8_lifetime_sensitivity.cc.o"
  "CMakeFiles/bench_fig8_lifetime_sensitivity.dir/bench/bench_fig8_lifetime_sensitivity.cc.o.d"
  "bench/bench_fig8_lifetime_sensitivity"
  "bench/bench_fig8_lifetime_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_lifetime_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
