# Empty compiler generated dependencies file for bench_table2_config_space.
# This may be replaced when dependencies are built.
