file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_config_space.dir/bench/bench_table2_config_space.cc.o"
  "CMakeFiles/bench_table2_config_space.dir/bench/bench_table2_config_space.cc.o.d"
  "bench/bench_table2_config_space"
  "bench/bench_table2_config_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_config_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
