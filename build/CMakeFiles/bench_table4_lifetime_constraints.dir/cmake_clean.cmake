file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lifetime_constraints.dir/bench/bench_table4_lifetime_constraints.cc.o"
  "CMakeFiles/bench_table4_lifetime_constraints.dir/bench/bench_table4_lifetime_constraints.cc.o.d"
  "bench/bench_table4_lifetime_constraints"
  "bench/bench_table4_lifetime_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lifetime_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
