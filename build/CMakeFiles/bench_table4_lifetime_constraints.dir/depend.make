# Empty dependencies file for bench_table4_lifetime_constraints.
# This may be replaced when dependencies are built.
