# Empty compiler generated dependencies file for bench_fig3_wear_quota.
# This may be replaced when dependencies are built.
