file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_wear_quota.dir/bench/bench_fig3_wear_quota.cc.o"
  "CMakeFiles/bench_fig3_wear_quota.dir/bench/bench_fig3_wear_quota.cc.o.d"
  "bench/bench_fig3_wear_quota"
  "bench/bench_fig3_wear_quota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_wear_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
