# Empty dependencies file for bench_fig9_sampling_overhead.
# This may be replaced when dependencies are built.
