file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sampling_overhead.dir/bench/bench_fig9_sampling_overhead.cc.o"
  "CMakeFiles/bench_fig9_sampling_overhead.dir/bench/bench_fig9_sampling_overhead.cc.o.d"
  "bench/bench_fig9_sampling_overhead"
  "bench/bench_fig9_sampling_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sampling_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
