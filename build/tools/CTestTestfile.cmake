# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/mct_sim" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_eval "/root/repo/build/tools/mct_sim" "eval" "--app" "zeusmp" "--warmup" "30000" "--measure" "60000")
set_tests_properties(cli_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_roundtrip "sh" "-c" "/root/repo/build/tools/mct_sim trace --app milc --ops 5000 --out /root/repo/build/milc_smoke.trace && /root/repo/build/tools/mct_sim eval --trace /root/repo/build/milc_smoke.trace --warmup 20000 --measure 40000")
set_tests_properties(cli_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
