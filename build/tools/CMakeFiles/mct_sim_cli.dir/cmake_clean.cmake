file(REMOVE_RECURSE
  "CMakeFiles/mct_sim_cli.dir/mct_sim.cc.o"
  "CMakeFiles/mct_sim_cli.dir/mct_sim.cc.o.d"
  "mct_sim"
  "mct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
