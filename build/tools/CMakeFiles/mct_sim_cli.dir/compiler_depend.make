# Empty compiler generated dependencies file for mct_sim_cli.
# This may be replaced when dependencies are built.
