# Empty dependencies file for mct_cache.
# This may be replaced when dependencies are built.
