file(REMOVE_RECURSE
  "CMakeFiles/mct_cache.dir/cache/cache.cc.o"
  "CMakeFiles/mct_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/mct_cache.dir/cache/hierarchy.cc.o"
  "CMakeFiles/mct_cache.dir/cache/hierarchy.cc.o.d"
  "libmct_cache.a"
  "libmct_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
