file(REMOVE_RECURSE
  "libmct_cache.a"
)
