file(REMOVE_RECURSE
  "CMakeFiles/mct_workloads.dir/workloads/mixes.cc.o"
  "CMakeFiles/mct_workloads.dir/workloads/mixes.cc.o.d"
  "CMakeFiles/mct_workloads.dir/workloads/spec_models.cc.o"
  "CMakeFiles/mct_workloads.dir/workloads/spec_models.cc.o.d"
  "CMakeFiles/mct_workloads.dir/workloads/trace.cc.o"
  "CMakeFiles/mct_workloads.dir/workloads/trace.cc.o.d"
  "CMakeFiles/mct_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/mct_workloads.dir/workloads/workload.cc.o.d"
  "libmct_workloads.a"
  "libmct_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
