# Empty compiler generated dependencies file for mct_workloads.
# This may be replaced when dependencies are built.
