
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/mixes.cc" "src/CMakeFiles/mct_workloads.dir/workloads/mixes.cc.o" "gcc" "src/CMakeFiles/mct_workloads.dir/workloads/mixes.cc.o.d"
  "/root/repo/src/workloads/spec_models.cc" "src/CMakeFiles/mct_workloads.dir/workloads/spec_models.cc.o" "gcc" "src/CMakeFiles/mct_workloads.dir/workloads/spec_models.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/CMakeFiles/mct_workloads.dir/workloads/trace.cc.o" "gcc" "src/CMakeFiles/mct_workloads.dir/workloads/trace.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/mct_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/mct_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
