file(REMOVE_RECURSE
  "libmct_workloads.a"
)
