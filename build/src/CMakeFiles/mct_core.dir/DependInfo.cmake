
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mct/config.cc" "src/CMakeFiles/mct_core.dir/mct/config.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/config.cc.o.d"
  "/root/repo/src/mct/config_space.cc" "src/CMakeFiles/mct_core.dir/mct/config_space.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/config_space.cc.o.d"
  "/root/repo/src/mct/controller.cc" "src/CMakeFiles/mct_core.dir/mct/controller.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/controller.cc.o.d"
  "/root/repo/src/mct/cyclic_sampler.cc" "src/CMakeFiles/mct_core.dir/mct/cyclic_sampler.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/cyclic_sampler.cc.o.d"
  "/root/repo/src/mct/feature_compressor.cc" "src/CMakeFiles/mct_core.dir/mct/feature_compressor.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/feature_compressor.cc.o.d"
  "/root/repo/src/mct/feature_selection.cc" "src/CMakeFiles/mct_core.dir/mct/feature_selection.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/feature_selection.cc.o.d"
  "/root/repo/src/mct/multicore_controller.cc" "src/CMakeFiles/mct_core.dir/mct/multicore_controller.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/multicore_controller.cc.o.d"
  "/root/repo/src/mct/optimizer.cc" "src/CMakeFiles/mct_core.dir/mct/optimizer.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/optimizer.cc.o.d"
  "/root/repo/src/mct/phase_detector.cc" "src/CMakeFiles/mct_core.dir/mct/phase_detector.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/phase_detector.cc.o.d"
  "/root/repo/src/mct/predictors.cc" "src/CMakeFiles/mct_core.dir/mct/predictors.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/predictors.cc.o.d"
  "/root/repo/src/mct/samplers.cc" "src/CMakeFiles/mct_core.dir/mct/samplers.cc.o" "gcc" "src/CMakeFiles/mct_core.dir/mct/samplers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mct_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
