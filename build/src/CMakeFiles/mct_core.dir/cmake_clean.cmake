file(REMOVE_RECURSE
  "CMakeFiles/mct_core.dir/mct/config.cc.o"
  "CMakeFiles/mct_core.dir/mct/config.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/config_space.cc.o"
  "CMakeFiles/mct_core.dir/mct/config_space.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/controller.cc.o"
  "CMakeFiles/mct_core.dir/mct/controller.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/cyclic_sampler.cc.o"
  "CMakeFiles/mct_core.dir/mct/cyclic_sampler.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/feature_compressor.cc.o"
  "CMakeFiles/mct_core.dir/mct/feature_compressor.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/feature_selection.cc.o"
  "CMakeFiles/mct_core.dir/mct/feature_selection.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/multicore_controller.cc.o"
  "CMakeFiles/mct_core.dir/mct/multicore_controller.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/optimizer.cc.o"
  "CMakeFiles/mct_core.dir/mct/optimizer.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/phase_detector.cc.o"
  "CMakeFiles/mct_core.dir/mct/phase_detector.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/predictors.cc.o"
  "CMakeFiles/mct_core.dir/mct/predictors.cc.o.d"
  "CMakeFiles/mct_core.dir/mct/samplers.cc.o"
  "CMakeFiles/mct_core.dir/mct/samplers.cc.o.d"
  "libmct_core.a"
  "libmct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
