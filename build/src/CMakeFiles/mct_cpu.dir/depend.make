# Empty dependencies file for mct_cpu.
# This may be replaced when dependencies are built.
