file(REMOVE_RECURSE
  "CMakeFiles/mct_cpu.dir/cpu/core.cc.o"
  "CMakeFiles/mct_cpu.dir/cpu/core.cc.o.d"
  "libmct_cpu.a"
  "libmct_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
