file(REMOVE_RECURSE
  "libmct_cpu.a"
)
