file(REMOVE_RECURSE
  "libmct_common.a"
)
