# Empty compiler generated dependencies file for mct_common.
# This may be replaced when dependencies are built.
