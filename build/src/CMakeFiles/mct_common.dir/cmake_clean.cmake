file(REMOVE_RECURSE
  "CMakeFiles/mct_common.dir/common/csv.cc.o"
  "CMakeFiles/mct_common.dir/common/csv.cc.o.d"
  "CMakeFiles/mct_common.dir/common/logging.cc.o"
  "CMakeFiles/mct_common.dir/common/logging.cc.o.d"
  "CMakeFiles/mct_common.dir/common/stats.cc.o"
  "CMakeFiles/mct_common.dir/common/stats.cc.o.d"
  "CMakeFiles/mct_common.dir/common/table.cc.o"
  "CMakeFiles/mct_common.dir/common/table.cc.o.d"
  "libmct_common.a"
  "libmct_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
