file(REMOVE_RECURSE
  "CMakeFiles/mct_nvm.dir/nvm/bank.cc.o"
  "CMakeFiles/mct_nvm.dir/nvm/bank.cc.o.d"
  "CMakeFiles/mct_nvm.dir/nvm/device.cc.o"
  "CMakeFiles/mct_nvm.dir/nvm/device.cc.o.d"
  "CMakeFiles/mct_nvm.dir/nvm/nvm_params.cc.o"
  "CMakeFiles/mct_nvm.dir/nvm/nvm_params.cc.o.d"
  "CMakeFiles/mct_nvm.dir/nvm/start_gap.cc.o"
  "CMakeFiles/mct_nvm.dir/nvm/start_gap.cc.o.d"
  "libmct_nvm.a"
  "libmct_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
