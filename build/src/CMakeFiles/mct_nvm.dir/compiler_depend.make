# Empty compiler generated dependencies file for mct_nvm.
# This may be replaced when dependencies are built.
