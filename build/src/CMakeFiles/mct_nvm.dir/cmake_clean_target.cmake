file(REMOVE_RECURSE
  "libmct_nvm.a"
)
