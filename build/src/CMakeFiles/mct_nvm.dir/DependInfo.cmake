
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvm/bank.cc" "src/CMakeFiles/mct_nvm.dir/nvm/bank.cc.o" "gcc" "src/CMakeFiles/mct_nvm.dir/nvm/bank.cc.o.d"
  "/root/repo/src/nvm/device.cc" "src/CMakeFiles/mct_nvm.dir/nvm/device.cc.o" "gcc" "src/CMakeFiles/mct_nvm.dir/nvm/device.cc.o.d"
  "/root/repo/src/nvm/nvm_params.cc" "src/CMakeFiles/mct_nvm.dir/nvm/nvm_params.cc.o" "gcc" "src/CMakeFiles/mct_nvm.dir/nvm/nvm_params.cc.o.d"
  "/root/repo/src/nvm/start_gap.cc" "src/CMakeFiles/mct_nvm.dir/nvm/start_gap.cc.o" "gcc" "src/CMakeFiles/mct_nvm.dir/nvm/start_gap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
