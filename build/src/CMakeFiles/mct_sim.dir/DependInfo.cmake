
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/energy_model.cc" "src/CMakeFiles/mct_sim.dir/sim/energy_model.cc.o" "gcc" "src/CMakeFiles/mct_sim.dir/sim/energy_model.cc.o.d"
  "/root/repo/src/sim/evaluator.cc" "src/CMakeFiles/mct_sim.dir/sim/evaluator.cc.o" "gcc" "src/CMakeFiles/mct_sim.dir/sim/evaluator.cc.o.d"
  "/root/repo/src/sim/multicore.cc" "src/CMakeFiles/mct_sim.dir/sim/multicore.cc.o" "gcc" "src/CMakeFiles/mct_sim.dir/sim/multicore.cc.o.d"
  "/root/repo/src/sim/stats_report.cc" "src/CMakeFiles/mct_sim.dir/sim/stats_report.cc.o" "gcc" "src/CMakeFiles/mct_sim.dir/sim/stats_report.cc.o.d"
  "/root/repo/src/sim/sweep_cache.cc" "src/CMakeFiles/mct_sim.dir/sim/sweep_cache.cc.o" "gcc" "src/CMakeFiles/mct_sim.dir/sim/sweep_cache.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/mct_sim.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/mct_sim.dir/sim/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mct_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
