file(REMOVE_RECURSE
  "CMakeFiles/mct_sim.dir/sim/energy_model.cc.o"
  "CMakeFiles/mct_sim.dir/sim/energy_model.cc.o.d"
  "CMakeFiles/mct_sim.dir/sim/evaluator.cc.o"
  "CMakeFiles/mct_sim.dir/sim/evaluator.cc.o.d"
  "CMakeFiles/mct_sim.dir/sim/multicore.cc.o"
  "CMakeFiles/mct_sim.dir/sim/multicore.cc.o.d"
  "CMakeFiles/mct_sim.dir/sim/stats_report.cc.o"
  "CMakeFiles/mct_sim.dir/sim/stats_report.cc.o.d"
  "CMakeFiles/mct_sim.dir/sim/sweep_cache.cc.o"
  "CMakeFiles/mct_sim.dir/sim/sweep_cache.cc.o.d"
  "CMakeFiles/mct_sim.dir/sim/system.cc.o"
  "CMakeFiles/mct_sim.dir/sim/system.cc.o.d"
  "libmct_sim.a"
  "libmct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
