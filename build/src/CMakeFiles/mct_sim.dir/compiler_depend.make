# Empty compiler generated dependencies file for mct_sim.
# This may be replaced when dependencies are built.
