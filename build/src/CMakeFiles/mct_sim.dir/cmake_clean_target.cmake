file(REMOVE_RECURSE
  "libmct_sim.a"
)
