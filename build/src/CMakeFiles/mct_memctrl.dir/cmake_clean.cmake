file(REMOVE_RECURSE
  "CMakeFiles/mct_memctrl.dir/memctrl/controller.cc.o"
  "CMakeFiles/mct_memctrl.dir/memctrl/controller.cc.o.d"
  "CMakeFiles/mct_memctrl.dir/memctrl/request.cc.o"
  "CMakeFiles/mct_memctrl.dir/memctrl/request.cc.o.d"
  "CMakeFiles/mct_memctrl.dir/memctrl/wear_quota.cc.o"
  "CMakeFiles/mct_memctrl.dir/memctrl/wear_quota.cc.o.d"
  "libmct_memctrl.a"
  "libmct_memctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
