file(REMOVE_RECURSE
  "libmct_memctrl.a"
)
