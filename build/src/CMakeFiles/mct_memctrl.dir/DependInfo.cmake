
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memctrl/controller.cc" "src/CMakeFiles/mct_memctrl.dir/memctrl/controller.cc.o" "gcc" "src/CMakeFiles/mct_memctrl.dir/memctrl/controller.cc.o.d"
  "/root/repo/src/memctrl/request.cc" "src/CMakeFiles/mct_memctrl.dir/memctrl/request.cc.o" "gcc" "src/CMakeFiles/mct_memctrl.dir/memctrl/request.cc.o.d"
  "/root/repo/src/memctrl/wear_quota.cc" "src/CMakeFiles/mct_memctrl.dir/memctrl/wear_quota.cc.o" "gcc" "src/CMakeFiles/mct_memctrl.dir/memctrl/wear_quota.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mct_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
