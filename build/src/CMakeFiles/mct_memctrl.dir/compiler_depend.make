# Empty compiler generated dependencies file for mct_memctrl.
# This may be replaced when dependencies are built.
