file(REMOVE_RECURSE
  "libmct_ml.a"
)
