file(REMOVE_RECURSE
  "CMakeFiles/mct_ml.dir/ml/gradient_boosting.cc.o"
  "CMakeFiles/mct_ml.dir/ml/gradient_boosting.cc.o.d"
  "CMakeFiles/mct_ml.dir/ml/hierarchical_bayes.cc.o"
  "CMakeFiles/mct_ml.dir/ml/hierarchical_bayes.cc.o.d"
  "CMakeFiles/mct_ml.dir/ml/lasso.cc.o"
  "CMakeFiles/mct_ml.dir/ml/lasso.cc.o.d"
  "CMakeFiles/mct_ml.dir/ml/linalg.cc.o"
  "CMakeFiles/mct_ml.dir/ml/linalg.cc.o.d"
  "CMakeFiles/mct_ml.dir/ml/linear_regression.cc.o"
  "CMakeFiles/mct_ml.dir/ml/linear_regression.cc.o.d"
  "CMakeFiles/mct_ml.dir/ml/metrics.cc.o"
  "CMakeFiles/mct_ml.dir/ml/metrics.cc.o.d"
  "CMakeFiles/mct_ml.dir/ml/offline_predictor.cc.o"
  "CMakeFiles/mct_ml.dir/ml/offline_predictor.cc.o.d"
  "CMakeFiles/mct_ml.dir/ml/quadratic_features.cc.o"
  "CMakeFiles/mct_ml.dir/ml/quadratic_features.cc.o.d"
  "CMakeFiles/mct_ml.dir/ml/regression_tree.cc.o"
  "CMakeFiles/mct_ml.dir/ml/regression_tree.cc.o.d"
  "CMakeFiles/mct_ml.dir/ml/scaler.cc.o"
  "CMakeFiles/mct_ml.dir/ml/scaler.cc.o.d"
  "libmct_ml.a"
  "libmct_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
