# Empty compiler generated dependencies file for mct_ml.
# This may be replaced when dependencies are built.
