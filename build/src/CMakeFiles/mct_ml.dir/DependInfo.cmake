
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/gradient_boosting.cc" "src/CMakeFiles/mct_ml.dir/ml/gradient_boosting.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/gradient_boosting.cc.o.d"
  "/root/repo/src/ml/hierarchical_bayes.cc" "src/CMakeFiles/mct_ml.dir/ml/hierarchical_bayes.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/hierarchical_bayes.cc.o.d"
  "/root/repo/src/ml/lasso.cc" "src/CMakeFiles/mct_ml.dir/ml/lasso.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/lasso.cc.o.d"
  "/root/repo/src/ml/linalg.cc" "src/CMakeFiles/mct_ml.dir/ml/linalg.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/linalg.cc.o.d"
  "/root/repo/src/ml/linear_regression.cc" "src/CMakeFiles/mct_ml.dir/ml/linear_regression.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/linear_regression.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/mct_ml.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/offline_predictor.cc" "src/CMakeFiles/mct_ml.dir/ml/offline_predictor.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/offline_predictor.cc.o.d"
  "/root/repo/src/ml/quadratic_features.cc" "src/CMakeFiles/mct_ml.dir/ml/quadratic_features.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/quadratic_features.cc.o.d"
  "/root/repo/src/ml/regression_tree.cc" "src/CMakeFiles/mct_ml.dir/ml/regression_tree.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/regression_tree.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/CMakeFiles/mct_ml.dir/ml/scaler.cc.o" "gcc" "src/CMakeFiles/mct_ml.dir/ml/scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
