# Empty dependencies file for datacenter_tuning.
# This may be replaced when dependencies are built.
