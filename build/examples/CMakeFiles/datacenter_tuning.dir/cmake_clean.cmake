file(REMOVE_RECURSE
  "CMakeFiles/datacenter_tuning.dir/datacenter_tuning.cc.o"
  "CMakeFiles/datacenter_tuning.dir/datacenter_tuning.cc.o.d"
  "datacenter_tuning"
  "datacenter_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
