file(REMOVE_RECURSE
  "CMakeFiles/lifetime_guarantee.dir/lifetime_guarantee.cc.o"
  "CMakeFiles/lifetime_guarantee.dir/lifetime_guarantee.cc.o.d"
  "lifetime_guarantee"
  "lifetime_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
