file(REMOVE_RECURSE
  "CMakeFiles/embedded_budget.dir/embedded_budget.cc.o"
  "CMakeFiles/embedded_budget.dir/embedded_budget.cc.o.d"
  "embedded_budget"
  "embedded_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
