# Header self-sufficiency: every header under src/ must compile as
# the first include of a translation unit. One tiny TU is generated
# per header; they build into an OBJECT library that is excluded from
# the default build and driven by the `header_self_sufficiency` ctest
# entry (and the CI analysis job).
file(GLOB_RECURSE MCT_CHECK_HEADERS RELATIVE ${CMAKE_SOURCE_DIR}/src
    ${CMAKE_SOURCE_DIR}/src/*.hh)

set(MCT_HC_SOURCES)
foreach(MCT_HC_HEADER IN LISTS MCT_CHECK_HEADERS)
    string(REPLACE "/" "__" _stem "${MCT_HC_HEADER}")
    set(_tu ${CMAKE_BINARY_DIR}/header_check/${_stem}.cc)
    configure_file(${CMAKE_SOURCE_DIR}/cmake/header_check_tu.cc.in
        ${_tu} @ONLY)
    list(APPEND MCT_HC_SOURCES ${_tu})
endforeach()

add_library(mct_header_check OBJECT EXCLUDE_FROM_ALL ${MCT_HC_SOURCES})
target_include_directories(mct_header_check
    PRIVATE ${CMAKE_SOURCE_DIR}/src)

add_test(NAME header_self_sufficiency
    COMMAND ${CMAKE_COMMAND} --build ${CMAKE_BINARY_DIR}
            --target mct_header_check)
