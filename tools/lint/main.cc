/**
 * @file
 * mct_lint command-line driver.
 *
 *     mct_lint [--root DIR] [--rules FILE] [--dump] [ROOT...]
 *
 * Scans ROOT... directories (default: src bench tests) under the
 * repository root, applies every rule in rules.txt, and prints
 * findings as "file:line: [rule-id] message". Exits 0 when clean,
 * 1 when findings exist, 2 on usage/configuration errors.
 *
 * --dump prints the extracted instrumentation contract (stat path
 * patterns and event type names) instead of linting; it is the
 * source of truth for the tables in docs/observability.md.
 */

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: mct_lint [--root DIR] [--rules FILE] [--dump] "
           "[ROOT...]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string rulesPath;
    bool dump = false;
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc)
            root = argv[++i];
        else if (arg == "--rules" && i + 1 < argc)
            rulesPath = argv[++i];
        else if (arg == "--dump")
            dump = true;
        else if (arg == "--help" || arg == "-h")
            return usage();
        else if (!arg.empty() && arg[0] == '-')
            return usage();
        else
            roots.push_back(arg);
    }
    if (roots.empty())
        roots = {"src", "bench", "tests"};
    if (rulesPath.empty())
        rulesPath =
            (std::filesystem::path(root) / "tools/lint/rules.txt")
                .string();

    std::ifstream is(rulesPath, std::ios::binary);
    if (!is) {
        std::cerr << "mct_lint: cannot read rules file " << rulesPath
                  << "\n";
        return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    mct::lint::RulesFile rules;
    std::string error;
    if (!mct::lint::parseRules(buf.str(), rules, error)) {
        std::cerr << "mct_lint: " << rulesPath << ": " << error
                  << "\n";
        return 2;
    }

    mct::lint::Linter linter(std::move(rules), root);
    const auto findings = linter.run(roots);

    if (dump) {
        std::cout << "# stat registrations (pattern  kind  site)\n";
        for (const auto &reg : linter.statRegs())
            std::cout << reg.pattern << "\t" << reg.kind << "\t"
                      << reg.file << ":" << reg.line << "\n";
        std::cout << "# event types\n";
        for (const auto &name : linter.eventNames())
            std::cout << name << "\n";
        return 0;
    }

    for (const auto &f : findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
    if (findings.empty()) {
        std::cout << "mct_lint: clean\n";
        return 0;
    }
    std::cout << "mct_lint: " << findings.size() << " finding(s)\n";
    return 1;
}
