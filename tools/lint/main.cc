/**
 * @file
 * mct_lint command-line driver.
 *
 *     mct_lint [--root DIR] [--rules FILE] [--dump]
 *              [--format=plain|github] [--emit-doc-table]
 *              [--no-include-hygiene] [ROOT...]
 *
 * Scans ROOT... directories (default: src bench tests tools) under
 * the repository root, applies every rule in rules.txt, and prints
 * findings as "file:line: [rule-id] message". Exits 0 when clean,
 * 1 when findings exist, 2 on usage/configuration errors.
 *
 * --format=github renders each finding as a GitHub Actions workflow
 * command ("::error file=F,line=N::...") so the CI analysis job
 * annotates the offending lines in the diff view; exit codes are
 * unchanged.
 *
 * --no-include-hygiene drops every include-hygiene rule before the
 * run — the escape hatch for trees where the heuristic misfires
 * (generated code, umbrella headers) without editing rules.txt.
 *
 * --dump prints the extracted instrumentation contract (stat path
 * patterns and event type names) and the serialization inventory
 * (class -> members with covered/skipped/exempt status) instead of
 * linting; it is the source of truth for the tables in
 * docs/observability.md.
 *
 * --emit-doc-table rewrites the marker-delimited contract tables in
 * the stat-contract rule's docs file in place from that extraction:
 * rows still backed by code are kept verbatim (hand-written
 * placeholders and meanings survive), stale rows are dropped, and
 * new registrations / event types are appended as generated rows to
 * be hand-polished.
 */

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: mct_lint [--root DIR] [--rules FILE] [--dump] "
           "[--format=plain|github] [--emit-doc-table] "
           "[--no-include-hygiene] [ROOT...]\n";
    return 2;
}

/** GitHub workflow commands interpret %, CR, and LF in messages. */
std::string
escapeWorkflowMessage(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '%')
            out += "%25";
        else if (c == '\r')
            out += "%0D";
        else if (c == '\n')
            out += "%0A";
        else
            out += c;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string rulesPath;
    bool dump = false;
    bool emitDocTable = false;
    bool noIncludeHygiene = false;
    bool githubFormat = false;
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc)
            root = argv[++i];
        else if (arg == "--rules" && i + 1 < argc)
            rulesPath = argv[++i];
        else if (arg == "--dump")
            dump = true;
        else if (arg == "--format=github")
            githubFormat = true;
        else if (arg == "--format=plain")
            githubFormat = false;
        else if (arg == "--emit-doc-table")
            emitDocTable = true;
        else if (arg == "--no-include-hygiene")
            noIncludeHygiene = true;
        else if (arg == "--help" || arg == "-h")
            return usage();
        else if (!arg.empty() && arg[0] == '-')
            return usage();
        else
            roots.push_back(arg);
    }
    if (roots.empty())
        roots = {"src", "bench", "tests", "tools"};
    if (rulesPath.empty())
        rulesPath =
            (std::filesystem::path(root) / "tools/lint/rules.txt")
                .string();

    std::ifstream is(rulesPath, std::ios::binary);
    if (!is) {
        std::cerr << "mct_lint: cannot read rules file " << rulesPath
                  << "\n";
        return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    mct::lint::RulesFile rules;
    std::string error;
    if (!mct::lint::parseRules(buf.str(), rules, error)) {
        std::cerr << "mct_lint: " << rulesPath << ": " << error
                  << "\n";
        return 2;
    }

    if (noIncludeHygiene)
        rules.rules.erase(
            std::remove_if(rules.rules.begin(), rules.rules.end(),
                           [](const mct::lint::RuleSpec &r) {
                               return r.builtin == "include-hygiene";
                           }),
            rules.rules.end());

    std::string docsRel = "docs/observability.md";
    for (const auto &r : rules.rules)
        if (r.builtin == "stat-contract" && !r.docs.empty())
            docsRel = r.docs;

    mct::lint::Linter linter(std::move(rules), root);
    const auto findings = linter.run(roots);

    if (emitDocTable) {
        const auto docsPath = std::filesystem::path(root) / docsRel;
        std::ifstream din(docsPath, std::ios::binary);
        if (!din) {
            std::cerr << "mct_lint: cannot read " << docsPath.string()
                      << "\n";
            return 2;
        }
        std::ostringstream dbuf;
        dbuf << din.rdbuf();
        din.close();
        const std::string updated = mct::lint::regenerateDocTables(
            dbuf.str(), linter.statRegs(), linter.eventNames());
        if (updated == dbuf.str()) {
            std::cout << "mct_lint: " << docsRel << " is up to date\n";
            return 0;
        }
        std::ofstream dout(docsPath, std::ios::binary);
        if (!dout) {
            std::cerr << "mct_lint: cannot write " << docsPath.string()
                      << "\n";
            return 2;
        }
        dout << updated;
        std::cout << "mct_lint: regenerated contract tables in "
                  << docsRel << "\n";
        return 0;
    }

    if (dump) {
        std::cout << "# stat registrations (pattern  kind  site)\n";
        for (const auto &reg : linter.statRegs())
            std::cout << reg.pattern << "\t" << reg.kind << "\t"
                      << reg.file << ":" << reg.line << "\n";
        std::cout << "# event types\n";
        for (const auto &name : linter.eventNames())
            std::cout << name << "\n";
        std::cout << "# serialization inventory (class -> members)\n";
        for (const auto &cls : linter.serialClasses()) {
            std::cout << cls.name << "\t" << cls.file << ":"
                      << cls.line
                      << (cls.isTemplate ? "\t(template-exempt)" : "")
                      << "\n";
            for (const auto &m : cls.members) {
                const char *status =
                    cls.isTemplate
                        ? "exempt"
                        : !m.exempt.empty()
                              ? m.exempt.c_str()
                              : m.skipped
                                    ? "skipped"
                                    : m.inSerialize && m.inDeserialize
                                          ? "covered"
                                          : "MISSING";
                std::cout << "  " << m.name << "\t" << status << "\n";
            }
        }
        return 0;
    }

    for (const auto &f : findings) {
        if (githubFormat)
            std::cout << "::error file=" << f.file
                      << ",line=" << f.line << ",title=" << f.rule
                      << "::"
                      << escapeWorkflowMessage("[" + f.rule + "] " +
                                               f.message)
                      << "\n";
        else
            std::cout << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message << "\n";
    }
    if (findings.empty()) {
        std::cout << "mct_lint: clean\n";
        return 0;
    }
    std::cout << "mct_lint: " << findings.size() << " finding(s)\n";
    return 1;
}
