/**
 * @file
 * serialize-contract builtin: checkpoint serialization drift.
 *
 * PR 7's crash-safe resume rests on hand-written
 * `serialize(Serializer&)` / `deserialize(Deserializer&)` pairs in
 * every simulated component. A member added to such a class but
 * forgotten in its pair — or restored in a different order than it
 * was written — silently breaks byte-identical resume. This analysis
 * makes the pair a machine-checked contract:
 *
 *  - every depth-1 data member of a class declaring
 *    serialize(Serializer&) must be touched by both the serialize and
 *    the deserialize body;
 *  - the first-touch order of members must agree between the two
 *    bodies (an asymmetric stream is a corrupted resume);
 *  - deliberate gaps (derived caches, construction-time geometry,
 *    registry-owned wiring) are declared as `skip Class::member`
 *    lines on the rule block in rules.txt — one reviewed manifest,
 *    no inline suppressions, and stale entries are findings too.
 *
 * Auto-exempt, because they cannot or need not round-trip: static /
 * constexpr members, const members, reference members, template
 * classes (no reliable body without instantiation), and pure-virtual
 * interface declarations. "Touched" is a whole-word occurrence in the
 * comment/string-stripped body — deliberately coarse, so loops,
 * size() prefixes, and geometry assertions all count, and the check
 * stays free of false positives on real serializer idioms.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace mct::lint
{

namespace
{

bool
serialPathAllowed(const RuleSpec &rule, const std::string &path)
{
    bool scoped = rule.scopes.empty();
    for (const auto &g : rule.scopes)
        if (globMatch(g, path)) {
            scoped = true;
            break;
        }
    if (!scoped)
        return false;
    for (const auto &g : rule.allow)
        if (globMatch(g, path))
            return false;
    return true;
}

/** Matching '}' for the '{' at @p open, or npos. */
std::size_t
closeBrace(const std::string &s, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        if (s[i] == '{')
            ++depth;
        else if (s[i] == '}' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/** Matching ')' for the '(' at @p open, or npos. */
std::size_t
closeParenAt(const std::string &s, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        if (s[i] == '(')
            ++depth;
        else if (s[i] == ')' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/** Type/cv keywords that can never be a declared member name. */
const std::set<std::string> &
declKeywords()
{
    static const std::set<std::string> kw = {
        "const",    "static",   "constexpr", "mutable",  "inline",
        "volatile", "unsigned", "signed",    "int",      "long",
        "short",    "char",     "bool",      "float",    "double",
        "auto",     "void",     "struct",    "class",    "enum",
        "union",    "typename", "noexcept",  "override", "final"};
    return kw;
}

/** Statements starting with these tokens declare no data member. */
const std::set<std::string> &
nonMemberLeaders()
{
    static const std::set<std::string> kw = {
        "using",    "typedef",  "friend",   "template",
        "static_assert", "enum", "class",   "struct",
        "union",    "operator", "virtual",  "explicit",
        "public",   "private",  "protected"};
    return kw;
}

std::vector<std::string>
tokensOf(const std::string &s)
{
    std::vector<std::string> out;
    static const std::regex re(R"([A-Za-z_]\w*)",
                               std::regex::optimize);
    for (auto it = std::sregex_iterator(s.begin(), s.end(), re);
         it != std::sregex_iterator(); ++it)
        out.push_back(it->str());
    return out;
}

/** Whole-word first occurrence of @p name in @p body, or npos. */
std::size_t
firstTouch(const std::string &body, const std::string &name)
{
    std::size_t from = 0;
    while (true) {
        const std::size_t pos = body.find(name, from);
        if (pos == std::string::npos)
            return std::string::npos;
        const auto isWord = [](char c) {
            return std::isalnum(static_cast<unsigned char>(c)) ||
                   c == '_';
        };
        const bool left = pos > 0 && isWord(body[pos - 1]);
        const bool right = pos + name.size() < body.size() &&
                           isWord(body[pos + name.size()]);
        if (!left && !right)
            return pos;
        from = pos + 1;
    }
}

/**
 * Parse one depth-1 class-body statement into data-member names.
 * @p stmt runs up to (not including) its terminator; @p stmtLine is
 * the line of its first character. Appends to @p members.
 */
void
parseMemberStatement(const std::string &stmt, int stmtLine,
                     std::vector<SerialMember> &members)
{
    // The declarator part: everything before the first top-level '='
    // or '{' (default member initializers and brace-init).
    std::string decl;
    {
        int angle = 0, paren = 0, bracket = 0;
        for (std::size_t i = 0; i < stmt.size(); ++i) {
            const char c = stmt[i];
            if (c == '<')
                ++angle;
            else if (c == '>')
                --angle;
            else if (c == '(')
                ++paren;
            else if (c == ')')
                --paren;
            else if (c == '[')
                ++bracket;
            else if (c == ']')
                --bracket;
            else if ((c == '=' || c == '{') && !angle && !paren &&
                     !bracket)
                break;
            decl += c;
        }
    }

    // Strip leading access labels ("public:" etc. glue to the next
    // statement because they carry no ';' of their own).
    static const std::regex labelRe(
        R"(^\s*(public|private|protected)\s*:)");
    std::smatch lm;
    while (std::regex_search(decl, lm, labelRe))
        decl = decl.substr(static_cast<std::size_t>(lm.length(0)));

    // Strip attributes: [[nodiscard]] and friends.
    decl = std::regex_replace(decl, std::regex(R"(\[\[[^\]]*\]\])"),
                              " ");

    const std::vector<std::string> toks = tokensOf(decl);
    if (toks.empty())
        return;
    if (nonMemberLeaders().count(toks[0]))
        return; // nested type, alias, friend, function specifier, ...
    // An operator anywhere marks a function: "bool operator<(...)"
    // defeats the angle-bracket tracker, so catch it by token.
    if (std::find(toks.begin(), toks.end(), "operator") != toks.end())
        return;

    // A '(' in the declarator means a function declaration (or a
    // function-pointer member — wiring, out of contract scope).
    if (decl.find('(') != std::string::npos)
        return;

    std::string exempt;
    for (const auto &t : toks) {
        if (t == "static" || t == "constexpr") {
            exempt = "static";
            break;
        }
        if (t == "const" && exempt.empty())
            exempt = "const";
    }
    // Reference members are construction-time wiring; a '&' at
    // top level (outside template args) marks one.
    {
        int angle = 0;
        for (const char c : decl) {
            if (c == '<')
                ++angle;
            else if (c == '>')
                --angle;
            else if (c == '&' && !angle)
                exempt = "reference";
        }
    }

    // Split "Type a, b, c" on top-level commas; each chunk's declared
    // name is its last non-keyword identifier outside brackets
    // (ignoring array extents and bitfield widths).
    std::vector<std::string> chunks;
    {
        std::string cur;
        int angle = 0, bracket = 0;
        for (const char c : decl) {
            if (c == '<')
                ++angle;
            else if (c == '>')
                --angle;
            else if (c == '[')
                ++bracket;
            else if (c == ']')
                --bracket;
            if (c == ',' && !angle && !bracket) {
                chunks.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        chunks.push_back(cur);
    }
    for (auto &chunk : chunks) {
        // Bitfield: cut at a single ':' (never '::').
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            if (chunk[i] != ':')
                continue;
            if (i + 1 < chunk.size() && chunk[i + 1] == ':') {
                ++i;
                continue;
            }
            if (i > 0 && chunk[i - 1] == ':')
                continue;
            chunk = chunk.substr(0, i);
            break;
        }
        // Last depth-0 identifier (array extents are depth > 0).
        std::string name;
        {
            int angle = 0, bracket = 0;
            static const std::regex idRe(R"([A-Za-z_]\w*)",
                                         std::regex::optimize);
            std::size_t scan = 0;
            while (scan < chunk.size()) {
                const char c = chunk[scan];
                if (c == '<')
                    ++angle;
                else if (c == '>')
                    --angle;
                else if (c == '[')
                    ++bracket;
                else if (c == ']')
                    --bracket;
                if (!angle && !bracket &&
                    (std::isalpha(static_cast<unsigned char>(c)) ||
                     c == '_')) {
                    std::smatch m;
                    const std::string rest = chunk.substr(scan);
                    if (std::regex_search(rest, m, idRe) &&
                        m.position(0) == 0) {
                        const std::string tok = m[0].str();
                        if (!declKeywords().count(tok))
                            name = tok;
                        scan += tok.size();
                        continue;
                    }
                }
                ++scan;
            }
        }
        // A single-token chunk is a bare type ("Serializer" in a
        // forward declaration) — a member needs type + name, except
        // in follow-up chunks of a comma list.
        if (name.empty())
            continue;
        if (&chunk == &chunks.front() && toks.size() < 2)
            continue;
        SerialMember m;
        m.name = name;
        m.line = stmtLine;
        m.exempt = exempt;
        members.push_back(std::move(m));
    }
}

/**
 * Locate a method declaration inside a class body. Returns the match
 * offset or npos; fills @p bodyBegin/@p bodyEnd with the inline body
 * range (npos when declaration-only) and @p pure for `= 0`.
 */
std::size_t
findMethod(const std::string &body, const std::regex &re,
           std::size_t &bodyBegin, std::size_t &bodyEnd, bool &pure)
{
    bodyBegin = bodyEnd = std::string::npos;
    pure = false;
    std::smatch m;
    if (!std::regex_search(body, m, re))
        return std::string::npos;
    const auto at = static_cast<std::size_t>(m.position(0));
    const std::size_t open = body.find('(', at);
    if (open == std::string::npos)
        return at;
    const std::size_t close = closeParenAt(body, open);
    if (close == std::string::npos)
        return at;
    // After the parameter list: cv-qualifiers / override / noexcept,
    // then '{' (inline definition), ';' (declaration), or '= 0;'.
    for (std::size_t i = close + 1; i < body.size(); ++i) {
        const char c = body[i];
        if (c == '{') {
            const std::size_t end = closeBrace(body, i);
            if (end != std::string::npos) {
                bodyBegin = i;
                bodyEnd = end;
            }
            break;
        }
        if (c == ';')
            break;
        if (c == '0') {
            const std::size_t eq = body.rfind('=', i);
            if (eq != std::string::npos && eq > close)
                pure = true;
        }
    }
    return at;
}

const std::regex &
serDeclRe()
{
    static const std::regex re(
        R"(\bserialize\s*\(\s*(?:mct::)?Serializer\b)",
        std::regex::optimize);
    return re;
}

const std::regex &
deserDeclRe()
{
    static const std::regex re(
        R"(\bdeserialize\s*\(\s*(?:mct::)?Deserializer\b)",
        std::regex::optimize);
    return re;
}

} // namespace

std::vector<SerialClass>
extractSerialClasses(const SourceFile &src)
{
    std::vector<SerialClass> out;
    const std::string &text = src.codeOnly;
    static const std::regex classRe(
        R"(\b(class|struct)\s+([A-Za-z_]\w*))", std::regex::optimize);
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        classRe);
         it != std::sregex_iterator(); ++it) {
        const std::smatch &m = *it;
        const auto at = static_cast<std::size_t>(m.position(0));

        // "enum class X" / "enum struct X" declares an enum.
        {
            std::size_t p = at;
            while (p > 0 && std::isspace(
                                static_cast<unsigned char>(text[p - 1])))
                --p;
            if (p >= 4 && text.compare(p - 4, 4, "enum") == 0)
                continue;
        }

        // A definition has '{' next (optionally past "final" and a
        // base clause); anything else is a forward declaration, a
        // template parameter, or a member type.
        std::size_t p = at + static_cast<std::size_t>(m.length(0));
        while (p < text.size() &&
               std::isspace(static_cast<unsigned char>(text[p])))
            ++p;
        if (text.compare(p, 5, "final") == 0)
            p += 5;
        while (p < text.size() &&
               std::isspace(static_cast<unsigned char>(text[p])))
            ++p;
        if (p < text.size() && text[p] == ':') {
            // Base clause: scan to the body '{' (template arguments
            // in base names may nest '<>' but never braces).
            while (p < text.size() && text[p] != '{' && text[p] != ';')
                ++p;
        }
        if (p >= text.size() || text[p] != '{')
            continue;
        const std::size_t open = p;
        const std::size_t close = closeBrace(text, open);
        if (close == std::string::npos)
            continue;
        const std::string body =
            text.substr(open + 1, close - open - 1);

        SerialClass cls;
        cls.name = m[2].str();
        cls.file = src.path;
        cls.line = lineOfOffset(text, at);

        // Template header directly before the class-head: the tail of
        // the preceding statement mentions `template`.
        {
            const std::size_t lb =
                at > 240 ? at - 240 : static_cast<std::size_t>(0);
            const std::string back = text.substr(lb, at - lb);
            const std::size_t cut = back.find_last_of(";}{");
            const std::string tail =
                cut == std::string::npos ? back : back.substr(cut + 1);
            if (tail.find("template") != std::string::npos)
                cls.isTemplate = true;
        }

        // The contract only covers classes declaring the pair.
        std::size_t sb, se, db, de;
        bool pureS = false, pureD = false;
        const std::size_t serAt =
            findMethod(body, serDeclRe(), sb, se, pureS);
        if (serAt == std::string::npos)
            continue;
        const std::size_t deserAt =
            findMethod(body, deserDeclRe(), db, de, pureD);
        cls.pureSerialize = pureS;
        cls.pureDeserialize = pureD;
        cls.declaresDeserialize = deserAt != std::string::npos;
        if (sb != std::string::npos) {
            cls.serBody = body.substr(sb, se - sb + 1);
            cls.serFile = src.path;
            cls.serLine = lineOfOffset(text, open + 1 + sb);
        }
        if (cls.declaresDeserialize && db != std::string::npos) {
            cls.deserBody = body.substr(db, de - db + 1);
            cls.deserFile = src.path;
            cls.deserLine = lineOfOffset(text, open + 1 + db);
        }

        // --- depth-1 member statements ---
        std::size_t i = 0;
        while (i < body.size()) {
            while (i < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[i])))
                ++i;
            if (i >= body.size())
                break;
            const std::size_t start = i;
            std::size_t end = std::string::npos;
            bool isStatement = false; // ';'-terminated
            while (i < body.size()) {
                const char c = body[i];
                if (c == ';') {
                    end = i;
                    isStatement = true;
                    break;
                }
                if (c == '(') {
                    const std::size_t cp = closeParenAt(body, i);
                    if (cp == std::string::npos) {
                        end = body.size();
                        break;
                    }
                    i = cp + 1;
                    continue;
                }
                if (c == '{') {
                    const std::size_t cb = closeBrace(body, i);
                    if (cb == std::string::npos) {
                        end = body.size();
                        break;
                    }
                    // Brace-init / in-class initializer keeps the
                    // statement open ("std::array<...> a{};"); a
                    // function or nested-type body ends it.
                    std::size_t q = cb + 1;
                    while (q < body.size() &&
                           std::isspace(
                               static_cast<unsigned char>(body[q])))
                        ++q;
                    if (q < body.size() && body[q] == ';') {
                        i = cb + 1;
                        continue;
                    }
                    end = cb;
                    break;
                }
                ++i;
            }
            if (end == std::string::npos)
                end = body.size();
            if (isStatement)
                parseMemberStatement(
                    body.substr(start, end - start),
                    lineOfOffset(text, open + 1 + start),
                    cls.members);
            i = end + 1;
        }
        out.push_back(std::move(cls));
    }
    return out;
}

void
attachSerialBodies(const SourceFile &src,
                   std::vector<SerialClass> &classes)
{
    const std::string &text = src.codeOnly;
    static const std::regex outSerRe(
        R"(\b([A-Za-z_]\w*)::serialize\s*\(\s*(?:mct::)?Serializer\b)",
        std::regex::optimize);
    static const std::regex outDeserRe(
        R"(\b([A-Za-z_]\w*)::deserialize\s*\(\s*(?:mct::)?Deserializer\b)",
        std::regex::optimize);

    const auto attach = [&](const std::regex &re, bool deser) {
        for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                            re);
             it != std::sregex_iterator(); ++it) {
            const std::smatch &m = *it;
            const std::string cname = m[1].str();
            SerialClass *cls = nullptr;
            for (auto &c : classes)
                if (c.name == cname) {
                    cls = &c;
                    break;
                }
            if (!cls)
                continue;
            if ((deser ? cls->deserBody : cls->serBody).size())
                continue; // first definition wins
            const auto at = static_cast<std::size_t>(m.position(0));
            const std::size_t open = text.find('(', at);
            const std::size_t close =
                open == std::string::npos
                    ? std::string::npos
                    : closeParenAt(text, open);
            if (close == std::string::npos)
                continue;
            std::size_t p = close + 1;
            while (p < text.size() && text[p] != '{' && text[p] != ';')
                ++p;
            if (p >= text.size() || text[p] != '{')
                continue; // declaration, not a definition
            const std::size_t end = closeBrace(text, p);
            if (end == std::string::npos)
                continue;
            const std::string body = text.substr(p, end - p + 1);
            if (deser) {
                cls->deserBody = body;
                cls->deserFile = src.path;
                cls->deserLine = lineOfOffset(text, at);
            } else {
                cls->serBody = body;
                cls->serFile = src.path;
                cls->serLine = lineOfOffset(text, at);
            }
        }
    };
    attach(outSerRe, false);
    attach(outDeserRe, true);
}

void
checkSerialContract(const RuleSpec &rule,
                    std::vector<SerialClass> &classes,
                    std::vector<Finding> &out)
{
    // Parse the skip manifest into class -> members.
    std::map<std::string, std::set<std::string>> skips;
    for (const auto &entry : rule.skips) {
        const std::size_t sep = entry.find("::");
        if (sep == std::string::npos || sep == 0 ||
            sep + 2 >= entry.size()) {
            out.push_back({"rules.txt", 0, rule.id,
                           "malformed skip entry '" + entry +
                               "': expected Class::member"});
            continue;
        }
        skips[entry.substr(0, sep)].insert(entry.substr(sep + 2));
    }
    std::set<std::string> usedSkips;

    // Duplicate class names make body attribution ambiguous; stay
    // conservative and exempt every carrier of the name.
    std::map<std::string, int> nameCount;
    for (const auto &c : classes)
        ++nameCount[c.name];

    for (auto &cls : classes) {
        if (cls.isTemplate || nameCount[cls.name] > 1)
            continue;
        if (cls.pureSerialize || cls.pureDeserialize)
            continue; // abstract interface; overriders are checked

        if (!cls.declaresDeserialize) {
            out.push_back({cls.file, cls.line, rule.id,
                           "class '" + cls.name +
                               "' declares serialize(Serializer&) but "
                               "no deserialize(Deserializer&)"});
            continue;
        }
        if (cls.serBody.empty() || cls.deserBody.empty()) {
            out.push_back(
                {cls.file, cls.line, rule.id,
                 "class '" + cls.name + "' declares " +
                     (cls.serBody.empty() ? "serialize"
                                          : "deserialize") +
                     " but no definition was found in the scanned "
                     "tree"});
            continue;
        }

        const auto &clsSkips = skips[cls.name];

        // Per-member coverage, and the first-touch offsets driving
        // the order check.
        struct Touch
        {
            const SerialMember *m;
            std::size_t ser, deser;
        };
        std::vector<Touch> touched;
        for (auto &mem : cls.members) {
            if (!mem.exempt.empty())
                continue;
            if (clsSkips.count(mem.name)) {
                mem.skipped = true;
                usedSkips.insert(cls.name + "::" + mem.name);
                continue;
            }
            const std::size_t inSer =
                firstTouch(cls.serBody, mem.name);
            const std::size_t inDeser =
                firstTouch(cls.deserBody, mem.name);
            mem.inSerialize = inSer != std::string::npos;
            mem.inDeserialize = inDeser != std::string::npos;
            if (!mem.inSerialize)
                out.push_back(
                    {cls.file, mem.line, rule.id,
                     "member '" + mem.name + "' of '" + cls.name +
                         "' is never written in " + cls.name +
                         "::serialize; a checkpoint silently drops "
                         "it (declare 'skip " + cls.name +
                         "::" + mem.name +
                         "' in rules.txt if deliberate)"});
            if (!mem.inDeserialize)
                out.push_back(
                    {cls.file, mem.line, rule.id,
                     "member '" + mem.name + "' of '" + cls.name +
                         "' is never read in " + cls.name +
                         "::deserialize; resume leaves it at its "
                         "constructed value (declare 'skip " +
                         cls.name + "::" + mem.name +
                         "' in rules.txt if deliberate)"});
            if (mem.inSerialize && mem.inDeserialize)
                touched.push_back({&mem, inSer, inDeser});
        }

        // Order: the sequences of first touches must agree, or the
        // restored stream is read against the wrong fields.
        std::vector<const SerialMember *> serOrder, deserOrder;
        for (const auto &t : touched)
            serOrder.push_back(t.m);
        deserOrder = serOrder;
        std::sort(serOrder.begin(), serOrder.end(),
                  [&](const SerialMember *a, const SerialMember *b) {
                      return firstTouch(cls.serBody, a->name) <
                             firstTouch(cls.serBody, b->name);
                  });
        std::sort(deserOrder.begin(), deserOrder.end(),
                  [&](const SerialMember *a, const SerialMember *b) {
                      return firstTouch(cls.deserBody, a->name) <
                             firstTouch(cls.deserBody, b->name);
                  });
        for (std::size_t i = 0; i < serOrder.size(); ++i) {
            if (serOrder[i] == deserOrder[i])
                continue;
            out.push_back(
                {cls.deserFile, cls.deserLine, rule.id,
                 cls.name + "::deserialize reads '" +
                     deserOrder[i]->name + "' where serialize wrote '" +
                     serOrder[i]->name +
                     "' (field order must match byte-for-byte)"});
            break; // one finding per class; the rest cascades
        }
    }

    // Stale skips can only mask future drift; ratchet them out.
    for (const auto &[cname, mems] : skips)
        for (const auto &mname : mems)
            if (!usedSkips.count(cname + "::" + mname))
                out.push_back(
                    {"rules.txt", 0, rule.id,
                     "stale skip entry '" + cname + "::" + mname +
                         "': no such unserialized member in the "
                         "scanned tree"});
}

void
Linter::runSerializeContract(const RuleSpec &rule,
                             const std::vector<SourceFile> &files,
                             std::vector<Finding> &out)
{
    serials_.clear();
    for (const auto &f : files) {
        if (!serialPathAllowed(rule, f.path))
            continue;
        auto classes = extractSerialClasses(f);
        serials_.insert(serials_.end(),
                        std::make_move_iterator(classes.begin()),
                        std::make_move_iterator(classes.end()));
    }
    // Out-of-line bodies may live anywhere in the scanned tree (a
    // class in src/x.hh, its pair in src/x.cc).
    for (const auto &f : files)
        attachSerialBodies(f, serials_);
    checkSerialContract(rule, serials_, out);
}

} // namespace mct::lint
