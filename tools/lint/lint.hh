/**
 * @file
 * mct_lint: project-specific static analysis for the MCT tree.
 *
 * The linter enforces contracts no compiler checks:
 *
 *  - determinism rules (no wall clocks, no libc rand, no unseeded
 *    RNGs outside the sanctioned allowlists), because bit-for-bit
 *    reproducible replay is what the fault-injection harness and the
 *    instruction-clocked event trace are built on;
 *  - the instrumentation contract: every stat path registered through
 *    StatRegistry and every EventTrace event type must stay in sync
 *    with docs/observability.md and the JSONL goldens in tests/;
 *  - I/O hygiene: library code under src/ must route diagnostics
 *    through common/logging.hh instead of raw stream writes;
 *  - non-finite safety heuristics for gauge closures feeding the
 *    stat registry.
 *
 * Pattern rules are pure data: tools/lint/rules.txt declares the
 * regex, the scope globs, the allowlist, and the message, so new bans
 * do not require recompiling the tool. A small set of named builtin
 * analyses (stat-contract, nonfinite-gauge, discarded-result,
 * include-hygiene, serialize-contract, doc-contract) carry the
 * checks that need real parsing; rules.txt still owns their scope,
 * allowlist, and configuration.
 *
 * Findings print as "file:line: [rule-id] message" and the process
 * exits non-zero when any finding survives, so the lint target gates
 * builds and CI.
 */

#ifndef MCT_TOOLS_LINT_LINT_HH
#define MCT_TOOLS_LINT_LINT_HH

#include <string>
#include <vector>

namespace mct::lint
{

/** One declarative rule parsed from rules.txt. */
struct RuleSpec
{
    /** Stable identifier printed with every finding. */
    std::string id;

    /** ECMAScript regex matched line-by-line (empty for builtins). */
    std::string pattern;

    /**
     * Name of a compiled-in analysis ("stat-contract",
     * "nonfinite-gauge", "discarded-result", "include-hygiene",
     * "serialize-contract", "doc-contract"); empty for pattern
     * rules.
     */
    std::string builtin;

    /** Path globs the rule applies to (repo-relative, '**' ok). */
    std::vector<std::string> scopes;

    /** Path globs exempt from the rule. */
    std::vector<std::string> allow;

    /** Function names for the discarded-result builtin. */
    std::vector<std::string> names;

    /**
     * Reviewed skip manifest for the serialize-contract builtin:
     * "Class::member" entries for members deliberately left out of a
     * checkpoint (derived caches, construction-time geometry,
     * registry-owned wiring). No inline suppressions, per house
     * style; stale entries are themselves findings.
     */
    std::vector<std::string> skips;

    /** Documentation file for the stat-contract builtin. */
    std::string docs;

    /** Human-readable explanation printed with findings. */
    std::string message;
};

/** Parsed rules.txt: rules plus global path excludes. */
struct RulesFile
{
    std::vector<RuleSpec> rules;

    /** Globs removed from every scan (e.g. test fixtures). */
    std::vector<std::string> excludes;
};

/**
 * Parse rules.txt text. Grammar (line-oriented):
 *
 *     # comment
 *     exclude <glob>
 *     rule <id>
 *       pattern  <regex to end of line>
 *       builtin  <name>
 *       scope    <glob>        (repeatable)
 *       allow    <glob>        (repeatable)
 *       names    <a,b,c>
 *       docs     <path>
 *       skip     <Class>::<member>   (repeatable)
 *       message  <text to end of line>
 *
 * On error returns false and sets @p error to "line N: why".
 */
bool parseRules(const std::string &text, RulesFile &out,
                std::string &error);

/** One reported violation. */
struct Finding
{
    std::string file; ///< repo-relative path
    int line = 0;     ///< 1-based
    std::string rule;
    std::string message;
};

/** A loaded source file with derived views for matching. */
struct SourceFile
{
    std::string path; ///< repo-relative, forward slashes

    /** Original bytes. */
    std::string raw;

    /**
     * Comments blanked (length-preserving), string literals kept.
     * Used by extraction passes that need literal contents.
     */
    std::string noComments;

    /**
     * Comments and string/char literal *contents* blanked
     * (delimiters kept, length preserved). Regex rules match this so
     * a banned token inside a comment or a message string does not
     * fire.
     */
    std::string codeOnly;
};

/** Build the stripped views of @p content. */
SourceFile preprocess(std::string path, std::string content);

/** fnmatch-lite: '**' crosses directories, '*' stays within one. */
bool globMatch(const std::string &glob, const std::string &path);

/**
 * True when glob patterns @p a and @p b can describe the same
 * string ('*' matches any run of characters on either side). Used to
 * unify registered stat-path patterns against documented ones.
 */
bool patternsUnify(const std::string &a, const std::string &b);

/** A stat registration extracted from source. */
struct StatReg
{
    std::string pattern; ///< literal path or pattern with '*' holes
    std::string file;
    int line = 0;
    std::string kind; ///< "counter" | "gauge" | "histogram"

    /** Trailing string-literal description argument, rendered like
     *  pattern ('*' holes for non-literal pieces); may be empty. */
    std::string desc;
};

/** Extract StatRegistry registrations from one file. */
std::vector<StatReg> extractStatRegs(const SourceFile &src);

/** One data member of a class declaring serialize(Serializer&). */
struct SerialMember
{
    std::string name;
    int line = 0; ///< declaration line (1-based)

    /**
     * Why the member is outside the contract: "" when checked,
     * "static" (static/constexpr), "const", or "reference". Exempt
     * members are inventoried but never produce findings.
     */
    std::string exempt;

    // Coverage, filled by checkSerialContract (for --dump).
    bool skipped = false;      ///< skip manifest entry matched
    bool inSerialize = false;  ///< touched by the serialize body
    bool inDeserialize = false;///< touched by the deserialize body
};

/** A class participating in the checkpoint serialization contract. */
struct SerialClass
{
    std::string name;
    std::string file; ///< file holding the class definition
    int line = 0;     ///< line of the class-head keyword

    /** Template classes are exempt (bodies cannot be located
     *  reliably without instantiation). */
    bool isTemplate = false;

    /** serialize / deserialize declared pure virtual (interface). */
    bool pureSerialize = false;
    bool pureDeserialize = false;

    /** The class body declares deserialize(Deserializer&) at all. */
    bool declaresDeserialize = false;

    /** Depth-1 data members in declaration order. */
    std::vector<SerialMember> members;

    // Bodies (comment/string-stripped), attached from the class body
    // itself when inline or from any scanned file when out-of-line.
    std::string serBody, deserBody;
    std::string serFile, deserFile;
    int serLine = 0, deserLine = 0;
};

/**
 * Extract every non-forward class/struct definition in @p src that
 * declares serialize(Serializer&), with its member inventory and any
 * inline serialize/deserialize bodies.
 */
std::vector<SerialClass> extractSerialClasses(const SourceFile &src);

/**
 * Attach out-of-line `C::serialize` / `C::deserialize` bodies found
 * in @p src to the matching classes (first definition wins).
 */
void attachSerialBodies(const SourceFile &src,
                        std::vector<SerialClass> &classes);

/**
 * Cross-check each class's member inventory against its
 * serialize/deserialize bodies: every non-exempt member must be
 * touched by both bodies, first-touch order must agree, and
 * deliberate gaps must be declared as `skip Class::member` manifest
 * entries on @p rule (stale entries are findings too). Fills the
 * per-member coverage flags as a side effect.
 */
void checkSerialContract(const RuleSpec &rule,
                         std::vector<SerialClass> &classes,
                         std::vector<Finding> &out);

/** Extract TraceEventType names ("phase_change", ...) from a file
 *  containing the toString(TraceEventType) switch. */
std::vector<std::string> extractEventNames(const SourceFile &src);

/**
 * Regenerate the marker-delimited contract tables of a documentation
 * file (--emit-doc-table). Inside the `mct-lint:stat-contract` and
 * `mct-lint:event-contract` sections:
 *
 *  - rows whose backticked name still unifies with a registration
 *    (resp. names an existing event) are kept verbatim, preserving
 *    hand-written placeholders and meanings;
 *  - stale rows are dropped;
 *  - registrations and events matched by no surviving row are
 *    appended as generated rows (stat rows use the extracted pattern
 *    and description; '*' holes read as "any segment").
 *
 * Text outside the marker sections is returned untouched.
 */
std::string regenerateDocTables(const std::string &docText,
                                const std::vector<StatReg> &stats,
                                const std::vector<std::string> &events);

/**
 * The linter. Owns the rule set; run() scans a repo-style tree.
 */
class Linter
{
  public:
    Linter(RulesFile rules, std::string rootDir);

    /**
     * Scan @p roots (directories relative to the root, e.g. "src")
     * for *.cc / *.hh files and apply every rule. Returns findings
     * sorted by file, then line.
     */
    std::vector<Finding> run(const std::vector<std::string> &roots);

    /** Registrations found by the last run's stat-contract pass. */
    const std::vector<StatReg> &statRegs() const { return stats_; }

    /** Event names found by the last run's stat-contract pass. */
    const std::vector<std::string> &eventNames() const
    {
        return events_;
    }

    /** Classes found by the last run's serialize-contract pass,
     *  with per-member coverage filled in (drives --dump). */
    const std::vector<SerialClass> &serialClasses() const
    {
        return serials_;
    }

  private:
    RulesFile rules_;
    std::string root_;
    std::vector<StatReg> stats_;
    std::vector<std::string> events_;
    std::vector<SerialClass> serials_;

    std::vector<SourceFile> gather(const std::vector<std::string> &roots);

    void runPatternRule(const RuleSpec &rule,
                        const std::vector<SourceFile> &files,
                        std::vector<Finding> &out) const;
    void runStatContract(const RuleSpec &rule,
                         const std::vector<SourceFile> &files,
                         std::vector<Finding> &out);
    void runNonfiniteGauge(const RuleSpec &rule,
                           const std::vector<SourceFile> &files,
                           std::vector<Finding> &out) const;
    void runDiscardedResult(const RuleSpec &rule,
                            const std::vector<SourceFile> &files,
                            std::vector<Finding> &out) const;
    void runIncludeHygiene(const RuleSpec &rule,
                           const std::vector<SourceFile> &files,
                           std::vector<Finding> &out) const;
    void runSerializeContract(const RuleSpec &rule,
                              const std::vector<SourceFile> &files,
                              std::vector<Finding> &out);
    void runDocContract(const RuleSpec &rule,
                        const std::vector<SourceFile> &files,
                        std::vector<Finding> &out) const;
};

/** Line number (1-based) of byte offset @p pos in @p text. */
int lineOfOffset(const std::string &text, std::size_t pos);

} // namespace mct::lint

#endif // MCT_TOOLS_LINT_LINT_HH
