/**
 * @file
 * mct_lint builtin analyses: the instrumentation contract
 * (stat-registry paths and event-trace types vs. documentation and
 * test goldens), the non-finite-gauge heuristic, and the
 * discarded-result check. These need real extraction rather than a
 * line regex, but their scope, allowlist, and configuration still
 * come from rules.txt.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace mct::lint
{

namespace
{

bool
pathAllowed(const RuleSpec &rule, const std::string &path)
{
    bool scoped = rule.scopes.empty();
    for (const auto &g : rule.scopes)
        if (globMatch(g, path)) {
            scoped = true;
            break;
        }
    if (!scoped)
        return false;
    for (const auto &g : rule.allow)
        if (globMatch(g, path))
            return false;
    return true;
}

/** Find the matching close paren for the open paren at @p open. */
std::size_t
closeParen(const std::string &s, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < s.size(); ++i) {
        if (s[i] == '(')
            ++depth;
        else if (s[i] == ')' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/**
 * Render the first argument of a registration call as a path
 * pattern: string-literal pieces keep their text, every non-literal
 * subexpression becomes a '*' hole.
 */
std::string
argToPattern(const std::string &arg)
{
    std::string pat;
    std::size_t i = 0;
    while (i < arg.size()) {
        const char c = arg[i];
        if (std::isspace(static_cast<unsigned char>(c)) || c == '+') {
            ++i;
            continue;
        }
        if (c == '"') {
            ++i;
            while (i < arg.size() && arg[i] != '"') {
                if (arg[i] == '\\' && i + 1 < arg.size())
                    ++i;
                pat += arg[i++];
            }
            ++i; // closing quote
            continue;
        }
        // Non-literal chunk: consume to the next top-level '+'.
        int depth = 0;
        while (i < arg.size()) {
            const char d = arg[i];
            if (d == '(')
                ++depth;
            else if (d == ')')
                --depth;
            else if (d == '+' && depth == 0)
                break;
            ++i;
        }
        if (pat.empty() || pat.back() != '*')
            pat += '*';
    }
    return pat;
}

const std::regex &
regCallRe()
{
    static const std::regex re(
        R"(\b(addCounterCell|addCounter|addGauge|addHistogram)\s*\()",
        std::regex::optimize);
    return re;
}

/** Tokens that make a division inside @p text finite-safe. */
bool
guardTokens(const std::string &text)
{
    return text.find("isfinite") != std::string::npos ||
           text.find("clamp") != std::string::npos ||
           text.find("max(") != std::string::npos ||
           text.find("min(") != std::string::npos ||
           text.find('?') != std::string::npos;
}

/**
 * Callee name when the denominator expression starting at @p j inside
 * @p call is a plain, member, or qualified function call
 * (`total()`, `c.total()`, `obj->total()`, `Agg::total()`); empty
 * otherwise.
 */
std::string
denominatorCallee(const std::string &call, std::size_t j)
{
    std::size_t i = j, last = j;
    bool any = false;
    while (i < call.size()) {
        const char c = call[i];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
            ++i;
            any = true;
            continue;
        }
        if (c == ':' && i + 1 < call.size() && call[i + 1] == ':') {
            i += 2;
            last = i;
            continue;
        }
        if (c == '.') {
            ++i;
            last = i;
            continue;
        }
        if (c == '-' && i + 1 < call.size() && call[i + 1] == '>') {
            i += 2;
            last = i;
            continue;
        }
        break;
    }
    if (!any || last >= i)
        return "";
    std::size_t k = i;
    while (k < call.size() &&
           std::isspace(static_cast<unsigned char>(call[k])))
        ++k;
    if (k >= call.size() || call[k] != '(')
        return "";
    return call.substr(last, i - last);
}

/**
 * True when a function named @p name is defined somewhere in
 * @p files with a guard in its body. Recognizes out-of-closure guards
 * (helper functions, member predicates) that the in-closure token scan
 * cannot see.
 */
bool
helperBodyGuarded(const std::string &name,
                  const std::vector<SourceFile> &files)
{
    const std::regex re("\\b" + name + "\\s*\\(",
                        std::regex::optimize);
    for (const auto &f : files) {
        const std::string &text = f.codeOnly;
        for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                            re);
             it != std::sregex_iterator(); ++it) {
            const std::size_t open =
                static_cast<std::size_t>(it->position(0)) +
                it->length(0) - 1;
            const std::size_t close = closeParen(text, open);
            if (close == std::string::npos)
                continue;
            // A definition has a '{' after the parameter list (past
            // cv-qualifiers / noexcept / a trailing return type); a
            // ';', ',' or ')' first means declaration or call site.
            std::size_t k = close + 1;
            while (k < text.size() && text[k] != '{' &&
                   text[k] != ';' && text[k] != ')' &&
                   text[k] != ',' && text[k] != '}')
                ++k;
            if (k >= text.size() || text[k] != '{')
                continue;
            int depth = 0;
            std::size_t end = k;
            for (; end < text.size(); ++end) {
                if (text[end] == '{')
                    ++depth;
                else if (text[end] == '}' && --depth == 0)
                    break;
            }
            if (guardTokens(text.substr(k, end - k + 1)))
                return true;
        }
    }
    return false;
}

} // namespace

std::vector<StatReg>
extractStatRegs(const SourceFile &src)
{
    std::vector<StatReg> out;
    const std::string &text = src.noComments;
    auto begin = std::sregex_iterator(text.begin(), text.end(),
                                      regCallRe());
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::smatch &m = *it;
        const std::string fn = m[1].str();
        const std::size_t open =
            static_cast<std::size_t>(m.position(0)) + m.length(0) - 1;
        const std::size_t close = closeParen(text, open);
        if (close == std::string::npos)
            continue;
        // First argument: up to the first ',' at depth 1.
        int depth = 0;
        std::size_t argEnd = close;
        for (std::size_t i = open; i < close; ++i) {
            if (text[i] == '(' || text[i] == '[' || text[i] == '{')
                ++depth;
            else if (text[i] == ')' || text[i] == ']' || text[i] == '}')
                --depth;
            else if (text[i] == ',' && depth == 1) {
                argEnd = i;
                break;
            }
        }
        StatReg reg;
        reg.pattern =
            argToPattern(text.substr(open + 1, argEnd - open - 1));
        reg.file = src.path;
        reg.line = lineOfOffset(text, static_cast<std::size_t>(
                                          m.position(0)));
        reg.kind = fn == "addGauge"       ? "gauge"
                   : fn == "addHistogram" ? "histogram"
                                          : "counter";
        // Trailing string-literal argument = the description (used by
        // --emit-doc-table as the generated row's meaning).
        {
            int depth = 0;
            std::size_t lastArg = open + 1;
            for (std::size_t i = open; i < close; ++i) {
                if (text[i] == '(' || text[i] == '[' ||
                    text[i] == '{')
                    ++depth;
                else if (text[i] == ')' || text[i] == ']' ||
                         text[i] == '}')
                    --depth;
                else if (text[i] == ',' && depth == 1)
                    lastArg = i + 1;
            }
            if (lastArg > open + 1) {
                const std::string arg =
                    text.substr(lastArg, close - lastArg);
                if (arg.find('"') != std::string::npos)
                    reg.desc = argToPattern(arg);
            }
        }
        if (!reg.pattern.empty())
            out.push_back(std::move(reg));
    }
    return out;
}

std::vector<std::string>
extractEventNames(const SourceFile &src)
{
    std::vector<std::string> out;
    static const std::regex re(
        R"re(TraceEventType::\w+\s*:\s*return\s*"([a-z0-9_]+)")re",
        std::regex::optimize);
    const std::string &text = src.noComments;
    for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
         it != std::sregex_iterator(); ++it)
        out.push_back((*it)[1].str());
    return out;
}

namespace
{

struct DocEntry
{
    std::string pattern; ///< '<hole>' placeholders become '*'
    int line = 0;
};

/** First `backticked` token of a line, if any. */
bool
firstBacktick(const std::string &line, std::string &out)
{
    const auto a = line.find('`');
    if (a == std::string::npos)
        return false;
    const auto b = line.find('`', a + 1);
    if (b == std::string::npos)
        return false;
    out = line.substr(a + 1, b - a - 1);
    return !out.empty();
}

void
extractDocSection(const std::string &text, const std::string &tag,
                  std::vector<DocEntry> &out)
{
    std::istringstream is(text);
    std::string line;
    int n = 0;
    bool in = false;
    const std::string begin = "mct-lint:" + tag + ":begin";
    const std::string end = "mct-lint:" + tag + ":end";
    while (std::getline(is, line)) {
        ++n;
        if (line.find(begin) != std::string::npos) {
            in = true;
            continue;
        }
        if (line.find(end) != std::string::npos) {
            in = false;
            continue;
        }
        if (!in)
            continue;
        std::string name;
        if (!firstBacktick(line, name))
            continue;
        DocEntry e;
        e.pattern = std::regex_replace(name, std::regex("<[^>]*>"), "*");
        e.line = n;
        out.push_back(std::move(e));
    }
}

} // namespace

std::string
regenerateDocTables(const std::string &docText,
                    const std::vector<StatReg> &stats,
                    const std::vector<std::string> &events)
{
    // Dedupe registrations by pattern, first site wins (per-level and
    // per-bank loops register the same pattern many times).
    std::vector<const StatReg *> uniq;
    for (const auto &r : stats) {
        const bool seen =
            std::any_of(uniq.begin(), uniq.end(),
                        [&](const StatReg *u) {
                            return u->pattern == r.pattern;
                        });
        if (!seen)
            uniq.push_back(&r);
    }

    std::ostringstream out;
    std::istringstream is(docText);
    std::string line;
    int section = 0; // 0 outside, 1 stat-contract, 2 event-contract
    std::set<std::string> keptStatRows; // patterns covered by kept rows
    std::set<std::string> keptEventRows;

    const auto emitMissing = [&](int which) {
        if (which == 1) {
            for (const StatReg *r : uniq) {
                const bool covered = std::any_of(
                    keptStatRows.begin(), keptStatRows.end(),
                    [&](const std::string &doc) {
                        return patternsUnify(r->pattern, doc);
                    });
                if (covered)
                    continue;
                out << "| `" << r->pattern << "` | " << r->kind
                    << " | "
                    << (r->desc.empty() ? "(undocumented)" : r->desc)
                    << " |\n";
            }
        } else {
            for (const auto &name : events) {
                if (!keptEventRows.count(name))
                    out << "| `" << name
                        << "` | (undocumented) | — |\n";
            }
        }
    };

    while (std::getline(is, line)) {
        if (line.find("mct-lint:stat-contract:begin") !=
            std::string::npos) {
            section = 1;
            keptStatRows.clear();
            out << line << '\n';
            continue;
        }
        if (line.find("mct-lint:event-contract:begin") !=
            std::string::npos) {
            section = 2;
            keptEventRows.clear();
            out << line << '\n';
            continue;
        }
        if (section &&
            (line.find("mct-lint:stat-contract:end") !=
                 std::string::npos ||
             line.find("mct-lint:event-contract:end") !=
                 std::string::npos)) {
            emitMissing(section);
            section = 0;
            out << line << '\n';
            continue;
        }
        if (!section) {
            out << line << '\n';
            continue;
        }
        std::string name;
        if (!firstBacktick(line, name)) {
            out << line << '\n'; // table header / separator / prose
            continue;
        }
        if (section == 1) {
            const std::string pat = std::regex_replace(
                name, std::regex("<[^>]*>"), "*");
            const bool live =
                std::any_of(uniq.begin(), uniq.end(),
                            [&](const StatReg *r) {
                                return patternsUnify(r->pattern, pat);
                            });
            if (live) {
                keptStatRows.insert(pat);
                out << line << '\n';
            } // stale rows are dropped
        } else {
            const bool live = std::find(events.begin(), events.end(),
                                        name) != events.end();
            if (live) {
                keptEventRows.insert(name);
                out << line << '\n';
            }
        }
    }
    return out.str();
}

void
Linter::runStatContract(const RuleSpec &rule,
                        const std::vector<SourceFile> &files,
                        std::vector<Finding> &out)
{
    stats_.clear();
    events_.clear();

    // --- extract registrations (scope/allow from rules.txt) ---
    for (const auto &f : files) {
        if (!pathAllowed(rule, f.path))
            continue;
        auto regs = extractStatRegs(f);
        stats_.insert(stats_.end(), regs.begin(), regs.end());
    }

    // --- extract event names (precise pattern; every file) ---
    struct EventSite
    {
        std::string file;
        int line = 0;
    };
    std::map<std::string, EventSite> eventSites;
    for (const auto &f : files) {
        for (const auto &name : extractEventNames(f)) {
            if (!eventSites.count(name)) {
                const auto pos = f.noComments.find('"' + name + '"');
                eventSites[name] = {f.path,
                                    pos == std::string::npos
                                        ? 1
                                        : lineOfOffset(f.noComments,
                                                       pos)};
                events_.push_back(name);
            }
        }
    }
    std::sort(events_.begin(), events_.end());

    // --- load the documentation contract ---
    const std::string docsRel =
        rule.docs.empty() ? "docs/observability.md" : rule.docs;
    std::ifstream is(fs::path(root_) / docsRel, std::ios::binary);
    if (!is) {
        out.push_back({docsRel, 0, rule.id,
                       "contract documentation file is missing"});
        return;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string docText = buf.str();
    std::vector<DocEntry> docStats, docEvents;
    extractDocSection(docText, "stat-contract", docStats);
    extractDocSection(docText, "event-contract", docEvents);

    // --- registered but undocumented ---
    for (const auto &reg : stats_) {
        const bool documented =
            std::any_of(docStats.begin(), docStats.end(),
                        [&](const DocEntry &d) {
                            return patternsUnify(reg.pattern,
                                                 d.pattern);
                        });
        if (!documented)
            out.push_back(
                {reg.file, reg.line, rule.id,
                 "stat '" + reg.pattern +
                     "' is registered but not documented in " +
                     docsRel});
    }

    // --- documented but gone ---
    for (const auto &d : docStats) {
        const bool registered =
            std::any_of(stats_.begin(), stats_.end(),
                        [&](const StatReg &r) {
                            return patternsUnify(r.pattern, d.pattern);
                        });
        if (!registered)
            out.push_back({docsRel, d.line, rule.id,
                           "documented stat '" + d.pattern +
                               "' is not registered by any code"});
    }

    // --- duplicate literal registrations ---
    std::map<std::string, const StatReg *> literals;
    for (const auto &reg : stats_) {
        if (reg.pattern.find('*') != std::string::npos)
            continue;
        const auto [it, inserted] =
            literals.emplace(reg.pattern, &reg);
        if (!inserted &&
            (it->second->file != reg.file ||
             it->second->line != reg.line))
            out.push_back({reg.file, reg.line, rule.id,
                           "stat '" + reg.pattern +
                               "' already registered at " +
                               it->second->file + ":" +
                               std::to_string(it->second->line)});
    }

    // --- event types vs. documentation ---
    std::set<std::string> docEventNames;
    for (const auto &d : docEvents)
        docEventNames.insert(d.pattern);
    for (const auto &name : events_) {
        if (!docEventNames.count(name)) {
            const auto &site = eventSites[name];
            out.push_back({site.file, site.line, rule.id,
                           "event type '" + name +
                               "' is not documented in " + docsRel});
        }
    }
    for (const auto &d : docEvents) {
        if (std::find(events_.begin(), events_.end(), d.pattern) ==
            events_.end())
            out.push_back({docsRel, d.line, rule.id,
                           "documented event '" + d.pattern +
                               "' does not exist in code"});
    }

    // --- golden drift: "ev" names embedded in tests ---
    static const std::regex goldenRe(
        "\\\\?\"ev\\\\?\"\\s*:\\s*\\\\?\"([A-Za-z0-9_]+)",
        std::regex::optimize);
    if (!events_.empty()) {
        for (const auto &f : files) {
            if (f.path.rfind("tests/", 0) != 0)
                continue;
            for (auto it = std::sregex_iterator(
                     f.raw.begin(), f.raw.end(), goldenRe);
                 it != std::sregex_iterator(); ++it) {
                const std::string name = (*it)[1].str();
                if (std::find(events_.begin(), events_.end(), name) ==
                    events_.end())
                    out.push_back(
                        {f.path,
                         lineOfOffset(f.raw, static_cast<std::size_t>(
                                                 it->position(0))),
                         rule.id,
                         "golden references event '" + name +
                             "' which no longer exists"});
            }
        }
    }
}

void
Linter::runNonfiniteGauge(const RuleSpec &rule,
                          const std::vector<SourceFile> &files,
                          std::vector<Finding> &out) const
{
    static const std::regex gaugeRe(R"(\baddGauge\s*\()",
                                    std::regex::optimize);
    // Helper-guard verdicts are repo-wide facts; cache across calls.
    std::map<std::string, bool> helperCache;
    const auto helperGuarded = [&](const std::string &name) {
        const auto it = helperCache.find(name);
        if (it != helperCache.end())
            return it->second;
        const bool g = helperBodyGuarded(name, files);
        helperCache.emplace(name, g);
        return g;
    };
    for (const auto &f : files) {
        if (!pathAllowed(rule, f.path))
            continue;
        const std::string &text = f.codeOnly;
        for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                            gaugeRe);
             it != std::sregex_iterator(); ++it) {
            const std::size_t open =
                static_cast<std::size_t>(it->position(0)) +
                it->length(0) - 1;
            const std::size_t close = closeParen(text, open);
            if (close == std::string::npos)
                continue;
            const std::string call =
                text.substr(open, close - open + 1);
            // Divisions with a non-literal denominator (offsets of
            // each denominator's first character).
            std::vector<std::size_t> denoms;
            for (std::size_t i = 0; i + 1 < call.size(); ++i) {
                if (call[i] != '/')
                    continue;
                std::size_t j = i + 1;
                while (j < call.size() &&
                       std::isspace(
                           static_cast<unsigned char>(call[j])))
                    ++j;
                if (j < call.size() &&
                    !std::isdigit(
                        static_cast<unsigned char>(call[j])))
                    denoms.push_back(j);
            }
            if (denoms.empty())
                continue;
            if (guardTokens(call))
                continue;
            // No guard inside the closure: a denominator that is a
            // call into a helper whose own body carries the guard
            // (member predicate, free function) is still safe.
            bool allGuardedOutside = true;
            for (const std::size_t j : denoms) {
                const std::string callee = denominatorCallee(call, j);
                if (callee.empty() || !helperGuarded(callee)) {
                    allGuardedOutside = false;
                    break;
                }
            }
            if (allGuardedOutside)
                continue;
            out.push_back(
                {f.path, lineOfOffset(text, open), rule.id,
                 rule.message.empty()
                     ? "gauge closure divides without a "
                       "zero/non-finite guard"
                     : rule.message});
        }
    }
}

void
Linter::runDiscardedResult(const RuleSpec &rule,
                           const std::vector<SourceFile> &files,
                           std::vector<Finding> &out) const
{
    std::vector<std::regex> res;
    res.reserve(rule.names.size());
    for (const auto &name : rule.names)
        res.emplace_back(
            "^\\s*(?:[A-Za-z_]\\w*(?:::|\\.|->))*" + name +
                "\\s*\\(",
            std::regex::optimize);
    for (const auto &f : files) {
        if (!pathAllowed(rule, f.path))
            continue;
        std::vector<std::string> lines;
        std::vector<std::size_t> starts;
        {
            std::size_t off = 0;
            std::istringstream is(f.codeOnly);
            std::string l;
            while (std::getline(is, l)) {
                starts.push_back(off);
                off += l.size() + 1;
                lines.push_back(std::move(l));
            }
        }
        for (std::size_t i = 0; i < lines.size(); ++i) {
            for (std::size_t r = 0; r < res.size(); ++r) {
                std::smatch m;
                if (!std::regex_search(lines[i], m, res[r]))
                    continue;
                // A discarded call is a full statement: the
                // matching ')' must be followed by ';'. Anything
                // else (a '{' body — this is a definition — or a
                // member access) means the result is used.
                const std::size_t open =
                    starts[i] +
                    static_cast<std::size_t>(m.position(0)) +
                    static_cast<std::size_t>(m.length(0)) - 1;
                const std::size_t close =
                    closeParen(f.codeOnly, open);
                if (close == std::string::npos)
                    continue;
                std::size_t k = close + 1;
                while (k < f.codeOnly.size() &&
                       std::isspace(static_cast<unsigned char>(
                           f.codeOnly[k])))
                    ++k;
                if (k >= f.codeOnly.size() || f.codeOnly[k] != ';')
                    continue;
                // Continuation of an expression? Look at how the
                // previous non-blank line ends.
                std::string prev;
                for (std::size_t k = i; k-- > 0;) {
                    const auto e =
                        lines[k].find_last_not_of(" \t\r");
                    if (e != std::string::npos) {
                        prev = lines[k].substr(0, e + 1);
                        break;
                    }
                }
                bool continuation = false;
                if (!prev.empty()) {
                    const char c = prev.back();
                    if (std::string("=(,&|?:+-*/<>").find(c) !=
                        std::string::npos)
                        continuation = true;
                    if (prev.size() >= 6 &&
                        prev.compare(prev.size() - 6, 6, "return") ==
                            0)
                        continuation = true;
                }
                if (continuation)
                    continue;
                out.push_back(
                    {f.path, static_cast<int>(i + 1), rule.id,
                     "result of '" + rule.names[r] +
                         "' is discarded" +
                         (rule.message.empty() ? ""
                                               : "; " + rule.message)});
            }
        }
    }
}

void
Linter::runDocContract(const RuleSpec &rule,
                       const std::vector<SourceFile> &files,
                       std::vector<Finding> &out) const
{
    // --- collect code-declared document keys ---
    //
    // Writers of JSON documents (run manifests, fleet rollups) list
    // their key spellings in a marker-delimited region:
    //
    //     // mct-lint:doc-keys:begin
    //     constexpr const char *kKeys[] = {
    //         "schema", "artifacts[].path", "fleet.<metric>.mean",
    //     };
    //     // mct-lint:doc-keys:end
    //
    // The first double-quoted token of each line inside the region is
    // a key; '<hole>' placeholders become '*' so they unify with the
    // documented spellings the same way stat paths do.
    struct CodeKey
    {
        std::string pattern;
        std::string file;
        int line = 0;
    };
    std::vector<CodeKey> code;
    const std::string begin = "mct-lint:doc-keys:begin";
    const std::string end = "mct-lint:doc-keys:end";
    for (const auto &f : files) {
        if (!pathAllowed(rule, f.path))
            continue;
        std::istringstream is(f.raw);
        std::string line;
        int n = 0;
        bool in = false;
        while (std::getline(is, line)) {
            ++n;
            if (line.find(begin) != std::string::npos) {
                in = true;
                continue;
            }
            if (line.find(end) != std::string::npos) {
                in = false;
                continue;
            }
            if (!in)
                continue;
            const auto a = line.find('"');
            if (a == std::string::npos)
                continue;
            const auto b = line.find('"', a + 1);
            if (b == std::string::npos)
                continue;
            const std::string name = line.substr(a + 1, b - a - 1);
            if (name.empty())
                continue;
            CodeKey k;
            k.pattern = std::regex_replace(
                name, std::regex("<[^>]*>"), "*");
            k.file = f.path;
            k.line = n;
            code.push_back(std::move(k));
        }
    }

    // --- load the documented keys ---
    const std::string docsRel =
        rule.docs.empty() ? "docs/observability.md" : rule.docs;
    std::ifstream is(fs::path(root_) / docsRel, std::ios::binary);
    if (!is) {
        out.push_back({docsRel, 0, rule.id,
                       "contract documentation file is missing"});
        return;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::vector<DocEntry> doc;
    extractDocSection(buf.str(), "doc-contract", doc);

    // Duplicate keys across regions are fine: "schema" legitimately
    // appears in both the manifest and the fleet key lists, and one
    // documented row covers both.
    for (const auto &k : code) {
        const bool covered = std::any_of(
            doc.begin(), doc.end(), [&](const DocEntry &d) {
                return patternsUnify(k.pattern, d.pattern);
            });
        if (!covered)
            out.push_back({k.file, k.line, rule.id,
                           "document key '" + k.pattern +
                               "' is declared in code but not "
                               "documented in " +
                               docsRel});
    }
    for (const auto &d : doc) {
        const bool exists = std::any_of(
            code.begin(), code.end(), [&](const CodeKey &k) {
                return patternsUnify(k.pattern, d.pattern);
            });
        if (!exists)
            out.push_back({docsRel, d.line, rule.id,
                           "documented document key '" + d.pattern +
                               "' is not declared by any doc-keys "
                               "region in code"});
    }
}

} // namespace mct::lint
