/**
 * @file
 * include-hygiene builtin: unused and missing direct includes.
 *
 * The analysis only reasons about project headers it can resolve to a
 * scanned file (quoted includes; system/external headers are out of
 * scope). Two complementary checks:
 *
 *  - An *unused* direct include: the header declares names (types,
 *    aliases, macros, functions) and none of them occurs in the
 *    including file. Headers declaring nothing extractable are never
 *    reported, and a file's primary header (same basename stem) is
 *    exempt by convention.
 *
 *  - A *missing* direct include: the file uses a type that exactly one
 *    scanned header declares, that header is reachable only through
 *    the transitive include graph, and no directly included header
 *    (or the file itself) declares the name. The uniqueness
 *    requirement keeps the check conservative: a type forward-declared
 *    or re-declared anywhere else disqualifies it. A .cc file's
 *    primary header (same basename stem) is its interface, so every
 *    header the primary reaches counts as covered — only chains
 *    through *other* includes are fragile enough to report.
 *
 * Both checks are heuristics over the comment/string-stripped views;
 * `--no-include-hygiene` (or dropping the rule from rules.txt) turns
 * them off wholesale, and per-path `allow` globs exempt files.
 */

#include "lint.hh"

#include <algorithm>
#include <filesystem>
#include <map>
#include <regex>
#include <set>
#include <vector>

namespace fs = std::filesystem;

namespace mct::lint
{

namespace
{

bool
hygienePathAllowed(const RuleSpec &rule, const std::string &path)
{
    bool scoped = rule.scopes.empty();
    for (const auto &g : rule.scopes)
        if (globMatch(g, path)) {
            scoped = true;
            break;
        }
    if (!scoped)
        return false;
    for (const auto &g : rule.allow)
        if (globMatch(g, path))
            return false;
    return true;
}

/** Identifiers that precede '(' without declaring anything. */
const std::set<std::string> &
callKeywords()
{
    static const std::set<std::string> kw = {
        "if",       "for",      "while",        "switch",
        "return",   "sizeof",   "alignof",      "decltype",
        "noexcept", "catch",    "static_assert", "defined",
        "throw",    "new",      "delete",       "assert",
        "case",     "default",  "operator",     "alignas",
        "int",      "char",     "bool",         "double",
        "float",    "long",     "short",        "unsigned",
        "void",     "auto",     "const_cast",   "static_cast",
        "dynamic_cast", "reinterpret_cast"};
    return kw;
}

/** Basename without directories or the extension ("a/b/x.hh" -> "x"). */
std::string
stemOf(const std::string &path)
{
    return fs::path(path).stem().generic_string();
}

/** One direct `#include "..."` with its source line. */
struct DirectInclude
{
    std::string text;
    int line = 0;
    std::size_t target = SIZE_MAX; ///< index into files, or SIZE_MAX
};

/** Everything the analysis needs about one scanned file. */
struct HygieneInfo
{
    std::vector<DirectInclude> includes;
    /** Every name the file declares (types, aliases, macros, and
     *  anything that syntactically looks like a function). */
    std::set<std::string> provided;
    /** The type-like subset (class/struct/enum/union/using-alias). */
    std::set<std::string> types;
    /** Every identifier occurring anywhere in the stripped code. */
    std::set<std::string> idents;
};

void
extractHygieneInfo(const SourceFile &f, HygieneInfo &info)
{
    const std::string &text = f.codeOnly;

    static const std::regex incRe(R"(#\s*include\s*"([^"]*)\")",
                                  std::regex::optimize);
    // Include paths are string literals, blanked in codeOnly; extract
    // from noComments so the quoted path survives.
    const std::string &incText = f.noComments;
    for (auto it = std::sregex_iterator(incText.begin(), incText.end(),
                                        incRe);
         it != std::sregex_iterator(); ++it) {
        DirectInclude d;
        d.text = (*it)[1].str();
        d.line = lineOfOffset(
            incText, static_cast<std::size_t>(it->position(0)));
        info.includes.push_back(std::move(d));
    }

    static const std::regex typeRe(
        R"(\b(?:class|struct|union|enum\s+class|enum)\s+([A-Za-z_]\w*))",
        std::regex::optimize);
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), typeRe);
         it != std::sregex_iterator(); ++it) {
        info.types.insert((*it)[1].str());
        info.provided.insert((*it)[1].str());
    }

    static const std::regex aliasRe(R"(\busing\s+([A-Za-z_]\w*)\s*=)",
                                    std::regex::optimize);
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), aliasRe);
         it != std::sregex_iterator(); ++it) {
        info.types.insert((*it)[1].str());
        info.provided.insert((*it)[1].str());
    }

    static const std::regex defineRe(R"(#\s*define\s+([A-Za-z_]\w*))",
                                     std::regex::optimize);
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), defineRe);
         it != std::sregex_iterator(); ++it)
        info.provided.insert((*it)[1].str());

    // Function-ish names: any identifier directly before '('. Over a
    // header this sweeps declarations plus calls inside inline bodies;
    // the extra names only make the unused-include check more
    // conservative (more chances to count the include as used).
    static const std::regex callRe(R"(\b([A-Za-z_]\w*)\s*\()",
                                   std::regex::optimize);
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), callRe);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (!callKeywords().count(name))
            info.provided.insert(name);
    }

    static const std::regex identRe(R"([A-Za-z_]\w*)",
                                    std::regex::optimize);
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), identRe);
         it != std::sregex_iterator(); ++it)
        info.idents.insert(it->str());
}

/**
 * Resolve an include text against the scanned tree: relative to the
 * including file's directory first (the in-tree convention for
 * tool-local headers), then against the repo-wide include roots.
 */
std::size_t
resolveInclude(const std::string &includer, const std::string &inc,
               const std::map<std::string, std::size_t> &byPath)
{
    std::vector<std::string> candidates;
    const std::string dir =
        fs::path(includer).parent_path().generic_string();
    if (!dir.empty())
        candidates.push_back(
            (fs::path(dir) / inc).lexically_normal().generic_string());
    candidates.push_back(
        (fs::path("src") / inc).lexically_normal().generic_string());
    candidates.push_back(fs::path(inc).lexically_normal()
                             .generic_string());
    for (const auto &c : candidates) {
        const auto it = byPath.find(c);
        if (it != byPath.end())
            return it->second;
    }
    return SIZE_MAX;
}

} // namespace

void
Linter::runIncludeHygiene(const RuleSpec &rule,
                          const std::vector<SourceFile> &files,
                          std::vector<Finding> &out) const
{
    std::map<std::string, std::size_t> byPath;
    for (std::size_t i = 0; i < files.size(); ++i)
        byPath[files[i].path] = i;

    std::vector<HygieneInfo> info(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        extractHygieneInfo(files[i], info[i]);
        for (auto &d : info[i].includes)
            d.target = resolveInclude(files[i].path, d.text, byPath);
    }

    // How many scanned headers declare each type name. A type with
    // several declarers (forward declarations count) is ambiguous and
    // never drives a missing-include finding.
    std::map<std::string, std::size_t> typeDeclarers;
    std::map<std::string, std::size_t> soleDeclarer;
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (files[i].path.size() < 3 ||
            files[i].path.compare(files[i].path.size() - 3, 3, ".hh"))
            continue;
        for (const auto &t : info[i].types) {
            ++typeDeclarers[t];
            soleDeclarer[t] = i;
        }
    }

    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const SourceFile &f = files[fi];
        if (!hygienePathAllowed(rule, f.path))
            continue;
        const std::string stem = stemOf(f.path);

        std::set<std::size_t> direct;
        for (const auto &d : info[fi].includes)
            if (d.target != SIZE_MAX)
                direct.insert(d.target);

        // --- unused direct includes ---
        for (const auto &d : info[fi].includes) {
            if (d.target == SIZE_MAX)
                continue;
            const std::size_t hi = d.target;
            if (stemOf(files[hi].path) == stem)
                continue; // primary header: always kept
            if (info[hi].provided.empty())
                continue; // nothing extractable; cannot judge
            const bool used = std::any_of(
                info[hi].provided.begin(), info[hi].provided.end(),
                [&](const std::string &name) {
                    return info[fi].idents.count(name) != 0;
                });
            if (!used)
                out.push_back(
                    {f.path, d.line, rule.id,
                     "include \"" + d.text +
                         "\" is unused: none of its declared names "
                         "appears in this file" +
                         (rule.message.empty() ? ""
                                               : "; " + rule.message)});
        }

        // --- missing direct includes ---
        // Names already satisfied: declared here, or by any direct
        // include (the primary header is itself a direct include).
        std::set<std::string> covered = info[fi].provided;
        for (const std::size_t hi : direct)
            covered.insert(info[hi].provided.begin(),
                           info[hi].provided.end());

        const auto closureOf = [&](const std::set<std::size_t> &seed) {
            std::set<std::size_t> closure;
            std::vector<std::size_t> work(seed.begin(), seed.end());
            while (!work.empty()) {
                const std::size_t cur = work.back();
                work.pop_back();
                if (!closure.insert(cur).second)
                    continue;
                for (const auto &d : info[cur].includes)
                    if (d.target != SIZE_MAX)
                        work.push_back(d.target);
            }
            return closure;
        };

        // The primary header is the file's interface: everything it
        // reaches is a dependency the interface already owns, not a
        // fragile back-door, so its whole closure counts as covered.
        std::set<std::size_t> primarySeed;
        for (const std::size_t hi : direct)
            if (stemOf(files[hi].path) == stem)
                primarySeed.insert(hi);
        const std::set<std::size_t> primaryClosure =
            closureOf(primarySeed);

        const std::set<std::size_t> closure = closureOf(direct);
        for (const std::size_t hi : closure) {
            if (direct.count(hi) || hi == fi ||
                primaryClosure.count(hi))
                continue;
            if (stemOf(files[hi].path) == stem)
                continue;
            for (const auto &t : info[hi].types) {
                if (typeDeclarers[t] != 1 || soleDeclarer[t] != hi)
                    continue;
                if (covered.count(t) || !info[fi].idents.count(t))
                    continue;
                // Line of the first whole-word use for the report.
                const std::regex useRe("\\b" + t + "\\b");
                std::smatch m;
                int line = 1;
                if (std::regex_search(f.codeOnly, m, useRe))
                    line = lineOfOffset(
                        f.codeOnly,
                        static_cast<std::size_t>(m.position(0)));
                out.push_back(
                    {f.path, line, rule.id,
                     "uses '" + t + "' declared in \"" +
                         files[hi].path +
                         "\" but reaches it only transitively; "
                         "include it directly" +
                         (rule.message.empty() ? ""
                                               : "; " + rule.message)});
                break; // one finding per missing header
            }
        }
    }
}

} // namespace mct::lint
