/**
 * @file
 * mct_lint engine: rules.txt parsing, source preprocessing, glob
 * matching, and the pattern-rule scanner. The builtin analyses live
 * in contract.cc.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <sstream>

namespace fs = std::filesystem;

namespace mct::lint
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    std::istringstream is(s);
    while (std::getline(is, cur, ','))
        if (!trim(cur).empty())
            out.push_back(trim(cur));
    return out;
}

} // namespace

bool
parseRules(const std::string &text, RulesFile &out, std::string &error)
{
    out = RulesFile{};
    RuleSpec *cur = nullptr;
    std::istringstream is(text);
    std::string raw;
    int lineNo = 0;
    while (std::getline(is, raw)) {
        ++lineNo;
        const std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        const auto sp = line.find_first_of(" \t");
        const std::string key = line.substr(0, sp);
        const std::string val =
            sp == std::string::npos ? "" : trim(line.substr(sp));
        if (key == "exclude") {
            out.excludes.push_back(val);
            continue;
        }
        if (key == "rule") {
            if (val.empty()) {
                error = "line " + std::to_string(lineNo) +
                        ": rule needs an id";
                return false;
            }
            out.rules.push_back(RuleSpec{});
            cur = &out.rules.back();
            cur->id = val;
            continue;
        }
        if (!cur) {
            error = "line " + std::to_string(lineNo) + ": '" + key +
                    "' before any rule";
            return false;
        }
        if (key == "pattern")
            cur->pattern = val;
        else if (key == "builtin")
            cur->builtin = val;
        else if (key == "scope")
            cur->scopes.push_back(val);
        else if (key == "allow")
            cur->allow.push_back(val);
        else if (key == "names")
            cur->names = splitCommas(val);
        else if (key == "docs")
            cur->docs = val;
        else if (key == "skip")
            cur->skips.push_back(val);
        else if (key == "message")
            cur->message = val;
        else {
            error = "line " + std::to_string(lineNo) +
                    ": unknown key '" + key + "'";
            return false;
        }
    }
    for (const auto &r : out.rules) {
        if (r.pattern.empty() == r.builtin.empty()) {
            error = "rule " + r.id +
                    ": needs exactly one of pattern/builtin";
            return false;
        }
    }
    return true;
}

SourceFile
preprocess(std::string path, std::string content)
{
    SourceFile f;
    f.path = std::move(path);
    f.raw = std::move(content);
    f.noComments = f.raw;
    f.codeOnly = f.raw;

    enum class St { Code, Line, Block, Str, Chr, RawStr };
    St st = St::Code;
    std::string rawDelim; // )delim" terminator for raw strings
    const std::string &in = f.raw;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        auto blankBoth = [&](std::size_t k) {
            if (in[k] != '\n') {
                f.noComments[k] = ' ';
                f.codeOnly[k] = ' ';
            }
        };
        auto blankContent = [&](std::size_t k) {
            if (in[k] != '\n')
                f.codeOnly[k] = ' ';
        };
        switch (st) {
          case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                blankBoth(i);
            } else if (c == '/' && n == '*') {
                st = St::Block;
                blankBoth(i);
                blankBoth(i + 1);
                ++i;
            } else if (c == 'R' && n == '"') {
                // Raw string literal: R"delim( ... )delim"
                std::size_t p = i + 2;
                std::string d;
                while (p < in.size() && in[p] != '(')
                    d += in[p++];
                rawDelim = ")" + d + "\"";
                st = St::RawStr;
                i = p; // at '(' (or end)
            } else if (c == '"') {
                st = St::Str;
            } else if (c == '\'') {
                st = St::Chr;
            }
            break;
          case St::Line:
            if (c == '\n')
                st = St::Code;
            else
                blankBoth(i);
            break;
          case St::Block:
            if (c == '*' && n == '/') {
                blankBoth(i);
                blankBoth(i + 1);
                ++i;
                st = St::Code;
            } else {
                blankBoth(i);
            }
            break;
          case St::Str:
            if (c == '\\' && i + 1 < in.size()) {
                blankContent(i);
                blankContent(i + 1);
                ++i;
            } else if (c == '"') {
                st = St::Code;
            } else {
                blankContent(i);
            }
            break;
          case St::Chr:
            if (c == '\\' && i + 1 < in.size()) {
                blankContent(i);
                blankContent(i + 1);
                ++i;
            } else if (c == '\'') {
                st = St::Code;
            } else {
                blankContent(i);
            }
            break;
          case St::RawStr:
            if (in.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1;
                st = St::Code;
            } else {
                blankContent(i);
            }
            break;
        }
    }
    return f;
}

namespace
{

bool
globMatchImpl(const char *g, const char *p)
{
    while (*g) {
        if (g[0] == '*' && g[1] == '*') {
            while (g[0] == '*')
                ++g;
            if (*g == '/')
                ++g;
            for (const char *t = p;; ++t) {
                if (globMatchImpl(g, t))
                    return true;
                if (!*t)
                    return false;
            }
        }
        if (*g == '*') {
            ++g;
            for (const char *t = p;; ++t) {
                if (globMatchImpl(g, t))
                    return true;
                if (!*t || *t == '/')
                    return false;
            }
        }
        if (*g == '?') {
            if (!*p || *p == '/')
                return false;
            ++g;
            ++p;
            continue;
        }
        if (*g != *p)
            return false;
        ++g;
        ++p;
    }
    return *p == '\0';
}

} // namespace

bool
globMatch(const std::string &glob, const std::string &path)
{
    return globMatchImpl(glob.c_str(), path.c_str());
}

bool
patternsUnify(const std::string &a, const std::string &b)
{
    const std::size_t la = a.size(), lb = b.size();
    // memo: 0 unknown, 1 true, 2 false
    std::vector<unsigned char> memo((la + 1) * (lb + 1), 0);
    const auto idx = [lb](std::size_t i, std::size_t j) {
        return i * (lb + 1) + j;
    };
    const std::function<bool(std::size_t, std::size_t)> go =
        [&](std::size_t i, std::size_t j) -> bool {
        unsigned char &m = memo[idx(i, j)];
        if (m)
            return m == 1;
        bool r = false;
        if (i == la && j == lb)
            r = true;
        else if (i < la && a[i] == '*')
            r = go(i + 1, j) || (j < lb && go(i, j + 1));
        else if (j < lb && b[j] == '*')
            r = go(i, j + 1) || (i < la && go(i + 1, j));
        else if (i < la && j < lb && a[i] == b[j])
            r = go(i + 1, j + 1);
        m = r ? 1 : 2;
        return r;
    };
    return go(0, 0);
}

int
lineOfOffset(const std::string &text, std::size_t pos)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(),
                              text.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      std::min(pos, text.size())),
                              '\n'));
}

Linter::Linter(RulesFile rules, std::string rootDir)
    : rules_(std::move(rules)), root_(std::move(rootDir))
{
}

namespace
{

bool
inScope(const RuleSpec &rule, const std::string &path)
{
    bool scoped = rule.scopes.empty();
    for (const auto &g : rule.scopes)
        if (globMatch(g, path)) {
            scoped = true;
            break;
        }
    if (!scoped)
        return false;
    for (const auto &g : rule.allow)
        if (globMatch(g, path))
            return false;
    return true;
}

} // namespace

std::vector<SourceFile>
Linter::gather(const std::vector<std::string> &roots)
{
    std::vector<SourceFile> files;
    std::vector<std::string> paths;
    for (const auto &r : roots) {
        const fs::path dir = fs::path(root_) / r;
        if (!fs::exists(dir))
            continue;
        for (const auto &e : fs::recursive_directory_iterator(dir)) {
            if (!e.is_regular_file())
                continue;
            const std::string ext = e.path().extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".cpp" &&
                ext != ".hpp" && ext != ".h")
                continue;
            std::string rel =
                fs::relative(e.path(), root_).generic_string();
            bool excluded = false;
            for (const auto &g : rules_.excludes)
                if (globMatch(g, rel)) {
                    excluded = true;
                    break;
                }
            if (!excluded)
                paths.push_back(std::move(rel));
        }
    }
    std::sort(paths.begin(), paths.end());
    for (auto &rel : paths) {
        std::ifstream is(fs::path(root_) / rel, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        files.push_back(preprocess(rel, buf.str()));
    }
    return files;
}

void
Linter::runPatternRule(const RuleSpec &rule,
                       const std::vector<SourceFile> &files,
                       std::vector<Finding> &out) const
{
    const std::regex re(rule.pattern,
                        std::regex::ECMAScript | std::regex::optimize);
    for (const auto &f : files) {
        if (!inScope(rule, f.path))
            continue;
        std::istringstream is(f.codeOnly);
        std::string line;
        int n = 0;
        while (std::getline(is, line)) {
            ++n;
            if (std::regex_search(line, re))
                out.push_back({f.path, n, rule.id, rule.message});
        }
    }
}

std::vector<Finding>
Linter::run(const std::vector<std::string> &roots)
{
    const std::vector<SourceFile> files = gather(roots);
    std::vector<Finding> out;
    for (const auto &rule : rules_.rules) {
        if (!rule.pattern.empty())
            runPatternRule(rule, files, out);
        else if (rule.builtin == "stat-contract")
            runStatContract(rule, files, out);
        else if (rule.builtin == "nonfinite-gauge")
            runNonfiniteGauge(rule, files, out);
        else if (rule.builtin == "discarded-result")
            runDiscardedResult(rule, files, out);
        else if (rule.builtin == "include-hygiene")
            runIncludeHygiene(rule, files, out);
        else if (rule.builtin == "serialize-contract")
            runSerializeContract(rule, files, out);
        else if (rule.builtin == "doc-contract")
            runDocContract(rule, files, out);
        else
            out.push_back({"rules.txt", 0, rule.id,
                           "unknown builtin '" + rule.builtin + "'"});
    }
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

} // namespace mct::lint
