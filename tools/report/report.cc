#include "report.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/instrument.hh"
#include "common/json.hh"
#include "common/manifest.hh"
#include "common/table.hh"

namespace mct::report
{

// --------------------------------------------------------------------
// JsonValue
// --------------------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::num(const std::string &key, double dflt) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::Number ? v->number : dflt;
}

std::string
JsonValue::text(const std::string &key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::String ? v->str : dflt;
}

namespace
{

/** Recursive-descent JSON parser over a string. */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : s(text) {}

    JsonParse
    run()
    {
        JsonParse out;
        skipWs();
        if (!parseValue(out.value)) {
            out.error = "offset " + std::to_string(pos) + ": " + what;
            return out;
        }
        skipWs();
        if (pos != s.size()) {
            out.error = "offset " + std::to_string(pos) +
                        ": trailing garbage";
            return out;
        }
        out.ok = true;
        return out;
    }

  private:
    const std::string &s;
    std::size_t pos = 0;
    std::string what;

    bool
    fail(const std::string &msg)
    {
        if (what.empty())
            what = msg;
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s.compare(pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        const char c = s[pos];
        switch (c) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos; // '{'
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return fail("expected object key");
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after key");
            JsonValue val;
            if (!parseValue(val))
                return false;
            out.members.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos; // '['
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue val;
            if (!parseValue(val))
                return false;
            out.arr.push_back(std::move(val));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos < s.size()) {
            const char c = s[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= s.size())
                return fail("dangling escape");
            const char e = s[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                  // The emitters only escape control characters; decode
                  // the BMP code point as UTF-8.
                  if (pos + 4 > s.size())
                      return fail("truncated \\u escape");
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = s[pos++];
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          cp |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          cp |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return fail("bad \\u escape");
                  }
                  if (cp < 0x80) {
                      out.push_back(static_cast<char>(cp));
                  } else if (cp < 0x800) {
                      out.push_back(
                          static_cast<char>(0xC0 | (cp >> 6)));
                      out.push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  } else {
                      out.push_back(
                          static_cast<char>(0xE0 | (cp >> 12)));
                      out.push_back(static_cast<char>(
                          0x80 | ((cp >> 6) & 0x3F)));
                      out.push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  }
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (consume('-')) {}
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        const std::string tok = s.substr(start, pos - start);
        try {
            std::size_t used = 0;
            out.number = std::stod(tok, &used);
            if (used != tok.size())
                return fail("malformed number '" + tok + "'");
        } catch (const std::exception &) {
            return fail("malformed number '" + tok + "'");
        }
        out.kind = JsonValue::Kind::Number;
        return true;
    }
};

/** Slurp a whole file; false when it cannot be opened. */
bool
readFile(const std::string &path, std::string &out, std::string &err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        err = path + ": cannot open";
        return false;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

/** Parse a file that holds one JSON document. */
bool
parseJsonFile(const std::string &path, JsonValue &out, std::string &err)
{
    std::string text;
    if (!readFile(path, text, err))
        return false;
    JsonParse p = parseJson(text);
    if (!p.ok) {
        err = path + ": " + p.error;
        return false;
    }
    out = std::move(p.value);
    return true;
}

} // namespace

JsonParse
parseJson(const std::string &text)
{
    return JsonReader(text).run();
}

// --------------------------------------------------------------------
// Run data
// --------------------------------------------------------------------

double
RunHistogram::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (const auto &[lo, n] : buckets) {
        if (n == 0)
            continue;
        cum += n;
        if (static_cast<double>(cum) >= target) {
            // Buckets are log2: [0,1) then [2^(i-1), 2^i), so the
            // upper edge is always lo*2 (1 for the zero bucket) —
            // identical to LogHistogram::percentile.
            const double hi = lo == 0.0 ? 1.0 : lo * 2.0;
            const double into =
                target - static_cast<double>(cum - n);
            const double frac =
                std::clamp(into / static_cast<double>(n), 0.0, 1.0);
            return lo + (hi - lo) * frac;
        }
    }
    const double lastLo = buckets.back().first;
    return lastLo == 0.0 ? 1.0 : lastLo * 2.0;
}

namespace
{

/** Split a snapshot object into scalar and histogram members. */
void
splitSnapshot(const JsonValue &snap,
              std::map<std::string, double> &scalars,
              std::map<std::string, RunHistogram> *hists)
{
    for (const auto &[path, v] : snap.members) {
        if (v.kind == JsonValue::Kind::Number) {
            scalars[path] = v.number;
        } else if (v.kind == JsonValue::Kind::Object && hists) {
            RunHistogram h;
            h.count =
                static_cast<std::uint64_t>(v.num("count", 0.0));
            h.sum = v.num("sum", 0.0);
            if (const JsonValue *bs = v.find("buckets")) {
                for (const JsonValue &b : bs->arr) {
                    if (b.kind != JsonValue::Kind::Array ||
                        b.arr.size() != 2)
                        continue;
                    h.buckets.emplace_back(
                        b.arr[0].number,
                        static_cast<std::uint64_t>(b.arr[1].number));
                }
            }
            (*hists)[path] = std::move(h);
        }
    }
}

} // namespace

bool
loadSnapshots(const std::string &path, RunData &out, std::string &err)
{
    JsonValue doc;
    if (!parseJsonFile(path, doc, err))
        return false;
    const std::string schema = doc.text("schema", "");
    if (schema != "mct-stats-v1" && schema != "mct-host-v1" &&
        schema != "mct-timeline-v1" && schema != "mct-fleet-v1") {
        err = path + ": unsupported schema '" + schema + "'";
        return false;
    }
    out.path = path;
    out.mode = doc.text("mode", "");
    out.app = doc.text("app", "");
    out.config = doc.text("config", "");
    const JsonValue *final_ = doc.find("final");
    if (!final_ || final_->kind != JsonValue::Kind::Object) {
        err = path + ": missing 'final' snapshot";
        return false;
    }
    splitSnapshot(*final_, out.finalScalars, &out.finalHists);
    if (const JsonValue *kinds = doc.find("kinds")) {
        for (const auto &[name, v] : kinds->members) {
            if (v.kind == JsonValue::Kind::String)
                out.kinds[name] = v.str;
        }
    }
    if (const JsonValue *periodic = doc.find("periodic")) {
        for (const JsonValue &entry : periodic->arr) {
            const JsonValue *delta = entry.find("delta");
            if (!delta)
                continue;
            RunWindow w;
            w.inst =
                static_cast<std::uint64_t>(entry.num("inst", 0.0));
            splitSnapshot(*delta, w.scalars, nullptr);
            out.windows.push_back(std::move(w));
        }
    }
    if (const JsonValue *events = doc.find("events")) {
        for (const auto &[name, v] : events->members) {
            if (v.kind == JsonValue::Kind::Number)
                out.eventCounts[name] = v.number;
        }
    }
    out.eventsRecorded = doc.num("events_recorded", 0.0);
    out.eventsDropped = doc.num("events_dropped", 0.0);
    return true;
}

RunData
medianRuns(const std::vector<RunData> &runs)
{
    RunData out;
    if (runs.empty())
        return out;
    out.path = "median-of-" + std::to_string(runs.size());
    out.mode = runs[0].mode;
    out.app = runs[0].app;
    out.config = runs[0].config;
    for (const auto &[name, v] : runs[0].finalScalars) {
        (void)v;
        std::vector<double> sample;
        for (const RunData &r : runs) {
            const auto it = r.finalScalars.find(name);
            if (it != r.finalScalars.end())
                sample.push_back(it->second);
        }
        if (!sample.empty()) {
            std::sort(sample.begin(), sample.end());
            const std::size_t n = sample.size();
            out.finalScalars[name] =
                n % 2 ? sample[n / 2]
                      : (sample[n / 2 - 1] + sample[n / 2]) / 2.0;
        }
    }
    return out;
}

// --------------------------------------------------------------------
// Run manifests (mct-manifest-v1) + fleet rollup (mct-fleet-v1)
// --------------------------------------------------------------------

std::string
ManifestData::artifactPath(const ManifestArtifactRow &a) const
{
    if (!a.path.empty() && a.path[0] == '/')
        return a.path;
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return a.path;
    return path.substr(0, slash + 1) + a.path;
}

const ManifestArtifactRow *
ManifestData::artifact(const std::string &kind) const
{
    for (const ManifestArtifactRow &a : artifacts)
        if (a.kind == kind)
            return &a;
    return nullptr;
}

bool
ManifestData::groupKey(const std::string &field, std::string &out) const
{
    if (field == "app")
        out = app;
    else if (field == "mode")
        out = mode;
    else if (field == "config")
        out = config;
    else if (field == "seed")
        out = std::to_string(seed);
    else if (field == "fault_plan")
        out = faultPlan;
    else if (field == "run_id")
        out = runId;
    else
        return false;
    return true;
}

bool
loadManifest(const std::string &path, ManifestData &out,
             std::string &err)
{
    JsonValue doc;
    if (!parseJsonFile(path, doc, err))
        return false;
    const std::string schema = doc.text("schema", "");
    if (schema != "mct-manifest-v1") {
        err = path + ": unsupported schema '" + schema + "'";
        return false;
    }
    out.path = path;
    out.runId = doc.text("run_id", "");
    out.mode = doc.text("mode", "");
    out.app = doc.text("app", "");
    out.config = doc.text("config", "");
    out.seed = static_cast<std::uint64_t>(doc.num("seed", 0.0));
    out.faultPlan = doc.text("fault_plan", "");
    out.fingerprint = doc.text("fingerprint", "");
    const JsonValue *arts = doc.find("artifacts");
    if (!arts || arts->kind != JsonValue::Kind::Array) {
        err = path + ": missing 'artifacts' array";
        return false;
    }
    for (const JsonValue &a : arts->arr) {
        ManifestArtifactRow row;
        row.kind = a.text("kind", "");
        row.schema = a.text("schema", "");
        row.path = a.text("path", "");
        row.bytes = static_cast<std::uint64_t>(a.num("bytes", 0.0));
        row.fnv1a = a.text("fnv1a", "");
        if (row.path.empty()) {
            err = path + ": artifact without a path";
            return false;
        }
        out.artifacts.push_back(std::move(row));
    }
    return true;
}

bool
verifyManifest(const ManifestData &m, std::string &err)
{
    for (const ManifestArtifactRow &a : m.artifacts) {
        const std::string full = m.artifactPath(a);
        std::uint64_t checksum = 0, bytes = 0;
        if (!checksumFile(full, checksum, bytes)) {
            err = "integrity error: " + m.path + ": artifact '" +
                  a.path + "' cannot be read";
            return false;
        }
        if (bytes != a.bytes) {
            err = "integrity error: " + m.path + ": artifact '" +
                  a.path + "' is " + std::to_string(bytes) +
                  " bytes, manifest says " + std::to_string(a.bytes);
            return false;
        }
        if (checksumHex(checksum) != a.fnv1a) {
            err = "integrity error: " + m.path + ": artifact '" +
                  a.path + "' checksum " + checksumHex(checksum) +
                  " != manifest " + a.fnv1a;
            return false;
        }
    }
    return true;
}

StatSnapshot
snapshotFromRun(const RunData &run)
{
    StatSnapshot snap;
    for (const auto &[name, v] : run.finalScalars) {
        StatValue sv;
        const auto k = run.kinds.find(name);
        sv.kind = (k != run.kinds.end() && k->second == "counter")
                      ? StatKind::Counter
                      : StatKind::Gauge;
        sv.num = v;
        snap.emplace(name, std::move(sv));
    }
    for (const auto &[name, h] : run.finalHists) {
        StatValue sv;
        sv.kind = StatKind::Histogram;
        sv.num = h.sum;
        sv.count = h.count;
        for (const auto &[lo, n] : h.buckets) {
            // Bucket lows are exact powers of two (or 0), so the
            // dense LogHistogram index round-trips exactly.
            const std::size_t idx =
                lo == 0.0 ? 0
                          : static_cast<std::size_t>(
                                std::lround(std::log2(lo))) +
                                1;
            if (idx >= sv.buckets.size())
                sv.buckets.resize(idx + 1, 0);
            sv.buckets[idx] += n;
        }
        snap.emplace(name, std::move(sv));
    }
    return snap;
}

namespace
{

/** One run's contribution to the rollup. */
struct FleetRun
{
    std::string id;  ///< run id (manifest path tiebreaks duplicates)
    std::string key; ///< group-by value
    StatSnapshot snap;
};

/** Fold a loaded run document into @p snap (first writer wins). */
void
foldIntoSnapshot(const RunData &run, StatSnapshot &snap)
{
    for (auto &[name, v] : snapshotFromRun(run))
        snap.emplace(name, std::move(v));
}

/** Merge one group's runs and flag its dispersion outliers. */
FleetGroup
mergeGroup(const std::string &key,
           const std::vector<const FleetRun *> &runs, double outlierK)
{
    FleetGroup g;
    g.key = key;
    StatMerge sm;
    for (const FleetRun *r : runs) {
        g.runIds.push_back(r->id);
        sm.add(r->id, r->snap);
    }
    std::sort(g.runIds.begin(), g.runIds.end());
    g.merged = sm.merge();

    // Outliers: gauges only, in sorted (metric, run) order so the
    // report is deterministic. stddev 0 (or a single run) flags
    // nothing.
    for (const auto &[metric, cells] : g.merged.gauges) {
        if (cells.count < 2 || cells.stddev <= 0.0)
            continue;
        for (const FleetRun *r : runs) {
            const auto it = r->snap.find(metric);
            if (it == r->snap.end() ||
                it->second.kind != StatKind::Gauge)
                continue;
            const double v = it->second.num;
            if (std::abs(v - cells.mean) <=
                outlierK * cells.stddev)
                continue;
            FleetOutlier o;
            o.runId = r->id;
            o.metric = metric;
            o.value = v;
            o.mean = cells.mean;
            o.stddev = cells.stddev;
            g.outliers.push_back(std::move(o));
        }
    }
    std::sort(g.outliers.begin(), g.outliers.end(),
              [](const FleetOutlier &a, const FleetOutlier &b) {
                  if (a.metric != b.metric)
                      return a.metric < b.metric;
                  return a.runId < b.runId;
              });
    return g;
}

/** Uniform value across runs, or "mixed". */
std::string
uniformOr(std::string acc, const std::string &v, bool first)
{
    if (first)
        return v;
    return acc == v ? acc : std::string("mixed");
}

// Key contract of the mct-fleet-v1 document (doc-contract lint +
// tests; the writer below emits exactly these spellings, with <hole>
// standing for the merged metric names).
// mct-lint:doc-keys:begin
const char *const kFleetKeys[] = {
    "schema",
    "mode",
    "app",
    "config",
    "group_by",
    "runs",
    "final",
    "kinds",
    "groups",
    "groups[].key",
    "groups[].runs",
    "groups[].run_ids",
    "groups[].final",
    "groups[].outliers",
    "groups[].outliers[].run_id",
    "groups[].outliers[].metric",
    "groups[].outliers[].value",
    "groups[].outliers[].mean",
    "groups[].outliers[].stddev",
    "fleet.<metric>.count",
    "fleet.<metric>.mean",
    "fleet.<metric>.min",
    "fleet.<metric>.max",
    "fleet.<metric>.stddev",
    "sim.fleet.runs",
    "sim.fleet.groups",
    "sim.fleet.outliers",
};
// mct-lint:doc-keys:end

/** The flat "final" snapshot of a merge: original names plus the
 *  fleet.* dispersion cells and sim.fleet.* summary scalars. */
StatSnapshot
fleetFinal(const StatMerge::Result &res, std::size_t groups,
           std::size_t outliers)
{
    StatSnapshot s = res.merged;
    const auto gauge = [&s](const std::string &name, double v) {
        StatValue sv;
        sv.kind = StatKind::Gauge;
        sv.num = v;
        s.emplace(name, std::move(sv));
    };
    for (const auto &[metric, c] : res.gauges) {
        gauge("fleet." + metric + ".count",
              static_cast<double>(c.count));
        gauge("fleet." + metric + ".mean", c.mean);
        gauge("fleet." + metric + ".min", c.min);
        gauge("fleet." + metric + ".max", c.max);
        gauge("fleet." + metric + ".stddev", c.stddev);
    }
    gauge("sim.fleet.runs", static_cast<double>(res.runs));
    gauge("sim.fleet.groups", static_cast<double>(groups));
    gauge("sim.fleet.outliers", static_cast<double>(outliers));
    return s;
}

/** Emit a snapshot's "kinds" object (histograms self-describe). */
void
writeKinds(JsonWriter &w, const StatSnapshot &snap)
{
    w.key("kinds").beginObject();
    for (const auto &[path, v] : snap) {
        if (v.kind == StatKind::Histogram)
            continue;
        w.kv(path,
             v.kind == StatKind::Counter ? "counter" : "gauge");
    }
    w.endObject();
}

} // namespace

bool
aggregateManifests(const std::vector<std::string> &paths,
                   const AggregateOptions &opt, FleetReport &out,
                   std::string &err)
{
    out = FleetReport{};
    if (paths.empty()) {
        err = "no manifests to aggregate";
        return false;
    }
    std::vector<FleetRun> runs;
    bool first = true;
    for (const std::string &path : paths) {
        ManifestData m;
        if (!loadManifest(path, m, err))
            return false;
        if (opt.verify && !verifyManifest(m, err))
            return false;

        FleetRun run;
        run.id = m.runId;
        if (!opt.groupBy.empty() &&
            !m.groupKey(opt.groupBy, run.key)) {
            err = "unknown --group-by field '" + opt.groupBy + "'";
            return false;
        }
        bool any = false;
        std::string loadErr;
        if (const ManifestArtifactRow *a = m.artifact("stats")) {
            RunData rd;
            if (!loadSnapshots(m.artifactPath(*a), rd, loadErr)) {
                err = m.path + ": " + loadErr;
                return false;
            }
            foldIntoSnapshot(rd, run.snap);
            any = true;
        }
        if (opt.withHost) {
            if (const ManifestArtifactRow *a = m.artifact("host")) {
                RunData rd;
                if (!loadSnapshots(m.artifactPath(*a), rd, loadErr)) {
                    err = m.path + ": " + loadErr;
                    return false;
                }
                foldIntoSnapshot(rd, run.snap);
                any = true;
            }
        }
        if (!any) {
            err = m.path + ": no aggregatable artifacts (need a "
                  "'stats' artifact, or 'host' with --with-host)";
            return false;
        }
        out.mode = uniformOr(out.mode, m.mode, first);
        out.app = uniformOr(out.app, m.app, first);
        out.config = uniformOr(out.config, m.config, first);
        first = false;
        runs.push_back(std::move(run));
    }

    out.groupBy = opt.groupBy;
    out.outlierK = opt.outlierK;
    out.runs = runs.size();

    // Canonical grouping: keys sorted by std::map, members handed to
    // StatMerge which sorts by (id, content) itself — the caller's
    // path order never reaches a floating-point reduction.
    std::map<std::string, std::vector<const FleetRun *>> byKey;
    for (const FleetRun &r : runs)
        byKey[opt.groupBy.empty() ? std::string("all") : r.key]
            .push_back(&r);
    StatMerge allMerge;
    for (const FleetRun &r : runs)
        allMerge.add(r.id, r.snap);
    out.all = allMerge.merge();
    for (const auto &[key, members] : byKey) {
        FleetGroup g = mergeGroup(key, members, opt.outlierK);
        out.outliers += g.outliers.size();
        out.groups.push_back(std::move(g));
    }
    return true;
}

void
writeFleetDoc(std::ostream &os, const FleetReport &r)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "mct-fleet-v1");
    w.kv("mode", r.mode);
    w.kv("app", r.app);
    w.kv("config", r.config);
    w.kv("group_by", r.groupBy);
    w.kv("runs", static_cast<std::uint64_t>(r.runs));
    const StatSnapshot final_ =
        fleetFinal(r.all, r.groups.size(), r.outliers);
    w.key("final");
    writeSnapshot(w, final_);
    writeKinds(w, final_);
    w.key("groups").beginArray();
    for (const FleetGroup &g : r.groups) {
        w.beginObject();
        w.kv("key", g.key);
        w.kv("runs", static_cast<std::uint64_t>(g.runIds.size()));
        w.key("run_ids").beginArray();
        for (const std::string &id : g.runIds)
            w.value(id);
        w.endArray();
        const StatSnapshot gfinal =
            fleetFinal(g.merged, 1, g.outliers.size());
        w.key("final");
        writeSnapshot(w, gfinal);
        w.key("outliers").beginArray();
        for (const FleetOutlier &o : g.outliers) {
            w.beginObject();
            w.kv("run_id", o.runId);
            w.kv("metric", o.metric);
            w.kv("value", o.value);
            w.kv("mean", o.mean);
            w.kv("stddev", o.stddev);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

void
renderFleet(std::ostream &os, const FleetReport &r)
{
    os << "fleet rollup: " << r.runs << " run"
       << (r.runs == 1 ? "" : "s") << ", " << r.groups.size()
       << " group" << (r.groups.size() == 1 ? "" : "s");
    if (!r.groupBy.empty())
        os << " (group-by " << r.groupBy << ")";
    os << ", outlier k=" << r.outlierK << "\n";
    for (const FleetGroup &g : r.groups) {
        os << "\ngroup " << g.key << " (" << g.runIds.size()
           << " run" << (g.runIds.size() == 1 ? "" : "s") << ":";
        for (const std::string &id : g.runIds)
            os << " " << id;
        os << ")\n";
        TextTable t;
        t.header({"metric", "mean", "min", "max", "stddev", "runs"});
        std::size_t skipped = 0;
        for (const auto &[metric, c] : g.merged.gauges) {
            if (metric.rfind("sim.", 0) != 0) {
                ++skipped;
                continue;
            }
            t.row({metric, fmt(c.mean, 4), fmt(c.min, 4),
                   fmt(c.max, 4), fmt(c.stddev, 4),
                   std::to_string(c.count)});
        }
        t.print(os);
        if (skipped)
            os << "  (" << skipped
               << " more gauges in the fleet document)\n";
        for (const FleetOutlier &o : g.outliers)
            os << "  OUTLIER " << o.metric << " run " << o.runId
               << ": " << o.value << " vs mean " << o.mean
               << " (stddev " << o.stddev << ")\n";
    }
}

const std::vector<std::string> &
fleetDocKeys()
{
    static const std::vector<std::string> keys(std::begin(kFleetKeys),
                                               std::end(kFleetKeys));
    return keys;
}

// --------------------------------------------------------------------
// Timeline (mct-timeline-v1) + alert log (alerts.jsonl)
// --------------------------------------------------------------------

bool
loadTimeline(const std::string &path, TimelineData &out,
             std::string &err)
{
    JsonValue doc;
    if (!parseJsonFile(path, doc, err))
        return false;
    if (doc.text("schema", "") != "mct-timeline-v1") {
        err = path + ": unsupported schema '" +
              doc.text("schema", "") + "'";
        return false;
    }
    out.path = path;
    out.mode = doc.text("mode", "");
    out.app = doc.text("app", "");
    out.config = doc.text("config", "");
    out.capacity = static_cast<std::size_t>(doc.num("capacity", 0.0));
    if (const JsonValue *metrics = doc.find("metrics")) {
        for (const JsonValue &m : metrics->arr)
            if (m.kind == JsonValue::Kind::String)
                out.metrics.push_back(m.str);
    }
    if (const JsonValue *insts = doc.find("inst")) {
        for (const JsonValue &v : insts->arr)
            out.insts.push_back(
                static_cast<std::uint64_t>(v.number));
    }
    const JsonValue *series = doc.find("series");
    if (!series || series->kind != JsonValue::Kind::Object) {
        err = path + ": missing 'series' object";
        return false;
    }
    for (const auto &[metric, vals] : series->members) {
        std::vector<double> &dst = out.series[metric];
        for (const JsonValue &v : vals.arr)
            dst.push_back(v.number);
        if (dst.size() != out.insts.size()) {
            err = path + ": series '" + metric + "' has " +
                  std::to_string(dst.size()) + " values for " +
                  std::to_string(out.insts.size()) + " windows";
            return false;
        }
    }
    if (const JsonValue *final_ = doc.find("final")) {
        for (const auto &[name, v] : final_->members)
            if (v.kind == JsonValue::Kind::Number)
                out.finalScalars[name] = v.number;
    }
    return true;
}

bool
loadAlertLog(const std::string &path, AlertLog &out, std::string &err)
{
    std::string text;
    if (!readFile(path, text, err))
        return false;
    std::istringstream is(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonParse p = parseJson(line);
        if (!p.ok) {
            err = path + ":" + std::to_string(lineNo) + ": " + p.error;
            return false;
        }
        const JsonValue &v = p.value;
        AlertRow row;
        const std::string ev = v.text("ev", "");
        if (ev != "alert_raised" && ev != "alert_cleared") {
            err = path + ":" + std::to_string(lineNo) +
                  ": unknown event '" + ev + "'";
            return false;
        }
        row.raised = ev == "alert_raised";
        row.window = static_cast<std::uint64_t>(v.num("window", 0.0));
        row.inst = static_cast<std::uint64_t>(v.num("inst", 0.0));
        row.value = v.num("value", 0.0);
        row.windowsActive =
            static_cast<std::uint64_t>(v.num("windows_active", 0.0));
        row.rule = v.text("rule", "");
        row.metric = v.text("metric", "");
        row.condition = v.text("condition", "");
        row.severity = v.text("severity", "");
        out.rows.push_back(std::move(row));
    }
    return true;
}

std::string
sparkline(const std::vector<double> &vals)
{
    // 8-level ASCII ramp, low to high. Finite extremes normalize the
    // scale; non-finite samples render as '?'.
    static const char ramp[] = "_.-:=+*#";
    double lo = 0.0, hi = 0.0;
    bool seeded = false;
    for (const double v : vals) {
        if (!std::isfinite(v))
            continue;
        lo = seeded ? std::min(lo, v) : v;
        hi = seeded ? std::max(hi, v) : v;
        seeded = true;
    }
    std::string out;
    out.reserve(vals.size());
    for (const double v : vals) {
        if (!std::isfinite(v)) {
            out.push_back('?');
        } else if (hi == lo) {
            out.push_back(ramp[0]);
        } else {
            const double t = (v - lo) / (hi - lo);
            const auto level = static_cast<std::size_t>(t * 7.0 + 0.5);
            out.push_back(ramp[std::min<std::size_t>(level, 7)]);
        }
    }
    return out;
}

void
renderTimeline(std::ostream &os, const TimelineData &tl,
               const AlertLog &alerts, std::size_t maxWindows)
{
    os << "timeline: " << tl.path << "\n";
    os << "mode " << tl.mode << ", app " << tl.app << ", config "
       << tl.config << "\n";
    const auto fin = [&tl](const char *k) {
        const auto it = tl.finalScalars.find(k);
        return it != tl.finalScalars.end() ? it->second : 0.0;
    };
    os << "windows " << tl.insts.size() << " held (recorded "
       << fmt(fin("sim.timeline.recorded"), 0) << ", dropped "
       << fmt(fin("sim.timeline.dropped"), 0) << ", capacity "
       << tl.capacity << ")\n\n";

    const std::size_t n = tl.insts.size();
    const std::size_t from =
        maxWindows && n > maxWindows ? n - maxWindows : 0;

    // Alert markers aligned to the rendered window range, keyed by
    // the metric the alert bound to. The log's inst stamps are
    // matched against the held windows, so events that wrapped out of
    // the ring simply render no marker.
    std::map<std::string, std::string> markers;
    for (const AlertRow &row : alerts.rows) {
        for (std::size_t i = from; i < n; ++i) {
            if (tl.insts[i] != row.inst)
                continue;
            std::string &m = markers[row.metric];
            if (m.empty())
                m.assign(n - from, ' ');
            m[i - from] = row.raised ? '!' : '/';
            break;
        }
    }

    TextTable t;
    t.header({"metric", "min", "max", "ewma", "series"});
    for (const std::string &metric : tl.metrics) {
        const auto it = tl.series.find(metric);
        if (it == tl.series.end())
            continue;
        const std::vector<double> window(it->second.begin() +
                                             static_cast<long>(from),
                                         it->second.end());
        t.row({metric, fmt(fin(("timeline." + metric + ".min").c_str()), 4),
               fmt(fin(("timeline." + metric + ".max").c_str()), 4),
               fmt(fin(("timeline." + metric + ".ewma").c_str()), 4),
               sparkline(window)});
        const auto mk = markers.find(metric);
        if (mk != markers.end())
            t.row({"  alerts", "", "", "", mk->second});
    }
    t.print(os);

    if (!alerts.rows.empty()) {
        os << "\nalerts (" << alerts.rows.size() << " events):\n";
        TextTable a;
        a.header({"window", "inst", "event", "rule", "severity",
                  "metric", "value"});
        for (const AlertRow &row : alerts.rows) {
            a.row({std::to_string(row.window),
                   std::to_string(row.inst),
                   row.raised ? "raised"
                              : "cleared after " +
                                    std::to_string(row.windowsActive),
                   row.rule, row.severity, row.metric,
                   fmt(row.value, 4)});
        }
        a.print(os);
    }
    const double raised = fin("alert.raised");
    if (fin("alert.rules") > 0.0) {
        os << "\nalert totals: " << fmt(raised, 0) << " raised ("
           << fmt(fin("alert.count.critical"), 0) << " critical, "
           << fmt(fin("alert.count.warn"), 0) << " warn, "
           << fmt(fin("alert.count.info"), 0) << " info), "
           << fmt(fin("alert.cleared"), 0) << " cleared, "
           << fmt(fin("alert.active"), 0) << " still active\n";
    }
}

// --------------------------------------------------------------------
// Span JSONL
// --------------------------------------------------------------------

bool
loadSpans(const std::string &path, SpanSet &out, std::string &err)
{
    std::string text;
    if (!readFile(path, text, err))
        return false;
    std::istringstream is(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonParse p = parseJson(line);
        if (!p.ok) {
            err = path + ":" + std::to_string(lineNo) + ": " + p.error;
            return false;
        }
        const JsonValue &v = p.value;
        SpanRow row;
        row.id = static_cast<std::uint64_t>(v.num("id", 0.0));
        row.hitLevel = static_cast<int>(v.num("hit_level", 0.0));
        row.isWrite = v.num("write", 0.0) != 0.0;
        row.inst = static_cast<std::uint64_t>(v.num("inst", 0.0));
        const double beginPs = v.num("begin_ps", 0.0);
        const double endPs = v.num("end_ps", 0.0);
        row.totalNs = (endPs - beginPs) / 1000.0;
        if (const JsonValue *stages = v.find("stages")) {
            for (const auto &[name, iv] : stages->members) {
                if (iv.kind != JsonValue::Kind::Array ||
                    iv.arr.size() != 2)
                    continue;
                row.stageNs[name] =
                    (iv.arr[1].number - iv.arr[0].number) / 1000.0;
            }
        }
        out.spans.push_back(std::move(row));
    }
    return true;
}

// --------------------------------------------------------------------
// WallProfiler dumps
// --------------------------------------------------------------------

bool
loadProfile(const std::string &path, Profile &out, std::string &err)
{
    JsonValue doc;
    if (!parseJsonFile(path, doc, err))
        return false;
    const JsonValue *stages = doc.find("stages");
    if (!stages || stages->kind != JsonValue::Kind::Array) {
        err = path + ": missing 'stages' array";
        return false;
    }
    for (const JsonValue &s : stages->arr) {
        ProfileStage st;
        st.name = s.text("name", "?");
        st.seconds = s.num("seconds", 0.0);
        st.cpuSeconds = s.num("cpu_seconds", 0.0);
        st.calls = static_cast<std::uint64_t>(s.num("calls", 0.0));
        out.stages.push_back(std::move(st));
    }
    return true;
}

namespace
{

/** Median of a non-empty sample (mean of the middle two when even). */
double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

} // namespace

Profile
medianProfiles(const std::vector<Profile> &profiles)
{
    Profile out;
    if (profiles.empty())
        return out;
    for (const ProfileStage &first : profiles[0].stages) {
        std::vector<double> wall, cpu, calls;
        for (const Profile &p : profiles) {
            for (const ProfileStage &s : p.stages) {
                if (s.name != first.name)
                    continue;
                wall.push_back(s.seconds);
                cpu.push_back(s.cpuSeconds);
                calls.push_back(static_cast<double>(s.calls));
                break;
            }
        }
        ProfileStage st;
        st.name = first.name;
        st.seconds = medianOf(wall);
        st.cpuSeconds = medianOf(cpu);
        st.calls = static_cast<std::uint64_t>(medianOf(calls));
        out.stages.push_back(std::move(st));
    }
    return out;
}

// --------------------------------------------------------------------
// Decision provenance
// --------------------------------------------------------------------

namespace
{

ProvObjective
provObjectiveFromJson(const JsonValue &v)
{
    ProvObjective o;
    o.pred = v.num("pred", 0.0);
    o.sigma = v.num("sigma", 0.0);
    o.real = v.num("real", 0.0);
    o.err = v.num("err", 0.0);
    const JsonValue *valid = v.find("err_valid");
    o.errValid = valid && valid->kind == JsonValue::Kind::Bool &&
                 valid->boolean;
    return o;
}

} // namespace

bool
loadProvenance(const std::string &path, ProvSet &out, std::string &err)
{
    std::string text;
    if (!readFile(path, text, err))
        return false;
    std::istringstream is(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonParse p = parseJson(line);
        if (!p.ok) {
            err = path + ":" + std::to_string(lineNo) + ": " + p.error;
            return false;
        }
        const JsonValue &v = p.value;
        ProvRecord rec;
        rec.seq = static_cast<std::uint64_t>(v.num("seq", 0.0));
        rec.phase = static_cast<std::uint64_t>(v.num("phase", 0.0));
        rec.inst = static_cast<std::uint64_t>(v.num("inst", 0.0));
        rec.closeInst =
            static_cast<std::uint64_t>(v.num("close_inst", 0.0));
        rec.model = v.text("model", "");
        rec.config = v.text("config", "");
        rec.chosen = static_cast<long long>(v.num("chosen", -1.0));
        const JsonValue *fb = v.find("fallback");
        rec.fallback = fb && fb->kind == JsonValue::Kind::Bool &&
                       fb->boolean;
        rec.sampled = static_cast<std::uint64_t>(v.num("sampled", 0.0));
        if (const JsonValue *cons = v.find("constraints")) {
            rec.minLifetimeYears =
                cons->num("min_lifetime_years", 0.0);
            rec.ipcFraction = cons->num("ipc_fraction", 0.0);
            rec.safetyMargin = cons->num("safety_margin", 0.0);
        }
        if (const JsonValue *objs = v.find("objectives")) {
            for (const auto &[name, ov] : objs->members) {
                if (ov.kind == JsonValue::Kind::Object)
                    rec.objectives.emplace_back(
                        name, provObjectiveFromJson(ov));
            }
        }
        if (const JsonValue *rus = v.find("runner_ups")) {
            for (const JsonValue &rv : rus->arr) {
                ProvCandidate c;
                c.config =
                    static_cast<std::uint64_t>(rv.num("config", 0.0));
                c.ipc = rv.num("ipc", 0.0);
                c.lifetimeYears = rv.num("lifetime_years", 0.0);
                c.energyJ = rv.num("energy_j", 0.0);
                const JsonValue *feas = rv.find("feasible");
                c.feasible = feas &&
                             feas->kind == JsonValue::Kind::Bool &&
                             feas->boolean;
                rec.runnerUps.push_back(c);
            }
        }
        rec.bestSampledIpc = v.num("best_sampled_ipc", 0.0);
        rec.regret = v.num("regret", 0.0);
        rec.cumRegret = v.num("cum_regret", 0.0);
        if (const JsonValue *attr = v.find("attribution")) {
            for (const auto &[name, av] : attr->members) {
                if (av.kind != JsonValue::Kind::Array)
                    continue;
                std::vector<double> weights;
                weights.reserve(av.arr.size());
                for (const JsonValue &wv : av.arr)
                    weights.push_back(wv.number);
                rec.attribution.emplace_back(name,
                                             std::move(weights));
            }
        }
        const JsonValue *closed = v.find("closed");
        rec.closed = closed &&
                     closed->kind == JsonValue::Kind::Bool &&
                     closed->boolean;
        out.records.push_back(std::move(rec));
    }
    return true;
}

// --------------------------------------------------------------------
// Thresholds
// --------------------------------------------------------------------

const char *
defaultThresholdsText()
{
    // Built-in gates over the robust end-to-end metrics. Deliberately
    // no percentile gauges here: log-bucket percentiles quantize, so a
    // one-bucket shift would trip a tight relative gate spuriously.
    return R"(# Default mct_report regression gates.
metric sim.objective.ipc
  direction higher
  rel 0.05

metric sim.objective.lifetime_years
  direction higher
  rel 0.05

metric memctrl.avg_read_latency_ns
  direction lower
  rel 0.10

metric memctrl.reads_completed
  direction higher
  rel 0.05

metric cache.*.hit_rate
  direction higher
  rel 0.02
  abs 0.005

metric alert.count.critical
  direction lower
  rel 0.0

metric alert.count.warn
  direction lower
  rel 0.0
  abs 1.0

metric sim.fleet.runs
  direction higher
  rel 0.0

metric sim.fleet.outliers
  direction lower
  rel 0.0
)";
}

bool
metricGlobMatch(const std::string &glob, const std::string &name)
{
    // Iterative '*' glob with backtracking; '*' may cross dots.
    std::size_t g = 0, n = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (n < name.size()) {
        if (g < glob.size() &&
            (glob[g] == name[n])) {
            ++g;
            ++n;
        } else if (g < glob.size() && glob[g] == '*') {
            star = g++;
            mark = n;
        } else if (star != std::string::npos) {
            g = star + 1;
            n = ++mark;
        } else {
            return false;
        }
    }
    while (g < glob.size() && glob[g] == '*')
        ++g;
    return g == glob.size();
}

namespace
{

/** Trim whitespace and a trailing '# ...' comment. */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    if (const std::size_t hash = s.find('#'); hash != std::string::npos)
        s.erase(hash);
    const std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    const std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
parseDouble(const std::string &tok, double &out)
{
    try {
        std::size_t used = 0;
        out = std::stod(tok, &used);
        return used == tok.size();
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

bool
parseThresholds(const std::string &text, Thresholds &out,
                std::string &err)
{
    std::istringstream is(text);
    std::string raw;
    int lineNo = 0;
    ThresholdRule cur;
    bool open = false, haveDirection = false;

    const auto flush = [&]() -> bool {
        if (!open)
            return true;
        if (!haveDirection) {
            err = "line " + std::to_string(cur.line) + ": metric '" +
                  cur.metricGlob + "' has no direction";
            return false;
        }
        out.rules.push_back(cur);
        open = false;
        return true;
    };

    while (std::getline(is, raw)) {
        ++lineNo;
        const std::string line = cleanLine(raw);
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key, value;
        ls >> key;
        std::getline(ls, value);
        value = cleanLine(value);
        if (key == "metric") {
            if (!flush())
                return false;
            if (value.empty()) {
                err = "line " + std::to_string(lineNo) +
                      ": metric needs a glob";
                return false;
            }
            cur = ThresholdRule{};
            cur.metricGlob = value;
            cur.line = lineNo;
            open = true;
            haveDirection = false;
        } else if (!open) {
            err = "line " + std::to_string(lineNo) + ": '" + key +
                  "' outside a metric block";
            return false;
        } else if (key == "direction") {
            if (value == "higher") {
                cur.higherIsBetter = true;
            } else if (value == "lower") {
                cur.higherIsBetter = false;
            } else {
                err = "line " + std::to_string(lineNo) +
                      ": direction must be 'higher' or 'lower'";
                return false;
            }
            haveDirection = true;
        } else if (key == "rel" || key == "abs") {
            double v = 0.0;
            if (!parseDouble(value, v) || v < 0.0) {
                err = "line " + std::to_string(lineNo) + ": " + key +
                      " needs a non-negative number";
                return false;
            }
            (key == "rel" ? cur.rel : cur.abs) = v;
        } else {
            err = "line " + std::to_string(lineNo) +
                  ": unknown key '" + key + "'";
            return false;
        }
    }
    return flush();
}

bool
loadThresholds(const std::string &path, Thresholds &out,
               std::string &err)
{
    std::string text;
    if (!readFile(path, text, err))
        return false;
    if (!parseThresholds(text, out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

// --------------------------------------------------------------------
// Diff
// --------------------------------------------------------------------

DiffReport
diffRuns(const RunData &base, const RunData &cur, const Thresholds &th)
{
    DiffReport rep;
    for (const auto &[metric, curVal] : cur.finalScalars) {
        const ThresholdRule *rule = nullptr;
        for (const ThresholdRule &r : th.rules) {
            if (metricGlobMatch(r.metricGlob, metric)) {
                rule = &r;
                break; // first matching rule wins
            }
        }
        if (!rule)
            continue;
        const auto bit = base.finalScalars.find(metric);
        if (bit == base.finalScalars.end()) {
            rep.missingInBase.push_back(metric);
            continue;
        }
        CheckResult c;
        c.metric = metric;
        c.glob = rule->metricGlob;
        c.higherIsBetter = rule->higherIsBetter;
        c.base = bit->second;
        c.cur = curVal;
        c.allowed = rule->rel * std::fabs(c.base) + rule->abs;
        if (c.base != 0.0)
            c.relChange = (c.cur - c.base) / std::fabs(c.base);
        const double slip =
            rule->higherIsBetter ? c.base - c.cur : c.cur - c.base;
        c.regressed = slip > c.allowed;
        rep.regressions += c.regressed ? 1 : 0;
        rep.checks.push_back(std::move(c));
    }
    return rep;
}

void
renderDiff(std::ostream &os, const RunData &base, const RunData &cur,
           const DiffReport &report)
{
    os << "base: " << base.path << " (app " << base.app << ", config "
       << base.config << ")\n";
    os << "new:  " << cur.path << " (app " << cur.app << ", config "
       << cur.config << ")\n\n";
    TextTable t;
    t.header({"metric", "base", "new", "change", "allowed", "verdict"});
    for (const CheckResult &c : report.checks) {
        std::ostringstream chg;
        chg << (c.relChange >= 0 ? "+" : "")
            << fmt(c.relChange * 100.0, 2) << "%";
        t.row({c.metric, fmt(c.base, 4), fmt(c.cur, 4), chg.str(),
               (c.higherIsBetter ? "-" : "+") + fmt(c.allowed, 4),
               c.regressed ? "REGRESSED" : "ok"});
    }
    t.print(os);
    for (const std::string &m : report.missingInBase)
        os << "note: '" << m << "' matched a rule but is missing from "
           << "the base run\n";
    os << "\n"
       << report.checks.size() << " checks, " << report.regressions
       << " regressions\n";
}

void
writeBenchReport(std::ostream &os, const RunData &base,
                 const RunData &cur, const DiffReport &report)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "mct-bench-report-v1");
    w.key("base").beginObject();
    w.kv("path", base.path);
    w.kv("app", base.app);
    w.kv("config", base.config);
    w.endObject();
    w.key("new").beginObject();
    w.kv("path", cur.path);
    w.kv("app", cur.app);
    w.kv("config", cur.config);
    w.endObject();
    w.key("checks").beginArray();
    for (const CheckResult &c : report.checks) {
        w.beginObject();
        w.kv("metric", c.metric);
        w.kv("rule", c.glob);
        w.kv("direction", c.higherIsBetter ? "higher" : "lower");
        w.kv("base", c.base);
        w.kv("new", c.cur);
        w.kv("rel_change", c.relChange);
        w.kv("allowed", c.allowed);
        w.kv("regressed", c.regressed);
        w.endObject();
    }
    w.endArray();
    w.key("missing_in_base").beginArray();
    for (const std::string &m : report.missingInBase)
        w.value(m);
    w.endArray();
    w.kv("regressions", static_cast<std::uint64_t>(report.regressions));
    w.kv("passed", report.regressions == 0);
    w.endObject();
    os << '\n';
}

// --------------------------------------------------------------------
// Single-run rendering
// --------------------------------------------------------------------

namespace
{

/** The final scalar at @p path, or @p dflt. */
double
scalarOr(const RunData &run, const std::string &path, double dflt)
{
    const auto it = run.finalScalars.find(path);
    return it != run.finalScalars.end() ? it->second : dflt;
}

} // namespace

void
renderRun(std::ostream &os, const RunData &run, std::size_t maxWindows)
{
    os << "run: " << run.path << "\n";
    os << "mode " << run.mode << ", app " << run.app << ", config "
       << run.config << "\n\n";

    TextTable obj;
    obj.header({"objective", "value"});
    obj.row({"ipc", fmt(scalarOr(run, "sim.objective.ipc", 0.0), 4)});
    obj.row({"lifetime_years",
             fmt(scalarOr(run, "sim.objective.lifetime_years", 0.0),
                 2)});
    obj.row({"avg_read_latency_ns",
             fmt(scalarOr(run, "memctrl.avg_read_latency_ns", 0.0),
                 1)});
    obj.print(os);
    os << "\n";

    // Latency attribution: one row per lat.<stage>.ns histogram.
    TextTable lat;
    lat.header({"stage", "spans", "mean_ns", "p50_ns", "p90_ns",
                "p99_ns"});
    for (const auto &[path, h] : run.finalHists) {
        if (path.rfind("lat.", 0) != 0 || h.count == 0)
            continue;
        const std::string stage =
            path.substr(4, path.size() - 4 - 3); // strip lat. / .ns
        lat.row({stage, std::to_string(h.count), fmt(h.mean(), 1),
                 fmt(h.percentile(0.50), 1), fmt(h.percentile(0.90), 1),
                 fmt(h.percentile(0.99), 1)});
    }
    if (lat.rows()) {
        os << "latency attribution (sampled spans):\n";
        lat.print(os);
        os << "\n";
    }

    if (!run.windows.empty()) {
        TextTable win;
        win.header({"inst", "d_instructions", "d_reads", "d_writes",
                    "avg_read_lat_ns"});
        const std::size_t n = run.windows.size();
        const std::size_t from =
            maxWindows && n > maxWindows ? n - maxWindows : 0;
        for (std::size_t i = from; i < n; ++i) {
            const RunWindow &rw = run.windows[i];
            const auto get = [&rw](const char *k) {
                const auto it = rw.scalars.find(k);
                return it != rw.scalars.end() ? it->second : 0.0;
            };
            win.row({std::to_string(rw.inst),
                     fmt(get("sim.instructions"), 0),
                     fmt(get("memctrl.reads_completed"), 0),
                     fmt(get("memctrl.writes_completed"), 0),
                     fmt(get("memctrl.avg_read_latency_ns"), 1)});
        }
        os << "windows (" << (n - from) << " of " << n << "):\n";
        win.print(os);
        os << "\n";
    }

    if (!run.eventCounts.empty()) {
        TextTable ev;
        ev.header({"event", "count"});
        for (const auto &[name, count] : run.eventCounts)
            ev.row({name, fmt(count, 0)});
        os << "events (" << fmt(run.eventsRecorded, 0) << " recorded, "
           << fmt(run.eventsDropped, 0) << " dropped):\n";
        ev.print(os);
    }
}

void
renderSpans(std::ostream &os, const SpanSet &spans)
{
    std::map<std::string, std::pair<std::uint64_t, double>> byStage;
    std::map<int, std::pair<std::uint64_t, double>> byLevel;
    for (const SpanRow &r : spans.spans) {
        auto &lvl = byLevel[r.hitLevel];
        ++lvl.first;
        lvl.second += r.totalNs;
        for (const auto &[stage, ns] : r.stageNs) {
            auto &st = byStage[stage];
            ++st.first;
            st.second += ns;
        }
    }
    os << "spans: " << spans.spans.size() << "\n";
    TextTable lvl;
    lvl.header({"hit_level", "spans", "mean_total_ns"});
    for (const auto &[level, agg] : byLevel) {
        const char *name = level == 0   ? "memory"
                           : level == 1 ? "l1"
                           : level == 2 ? "l2"
                                        : "llc";
        lvl.row({name, std::to_string(agg.first),
                 fmt(agg.second / static_cast<double>(agg.first), 1)});
    }
    lvl.print(os);
    os << "\n";
    TextTable st;
    st.header({"stage", "spans", "mean_ns"});
    for (const auto &[stage, agg] : byStage)
        st.row({stage, std::to_string(agg.first),
                fmt(agg.second / static_cast<double>(agg.first), 1)});
    st.print(os);
}

namespace
{

/** Nearest-rank percentile over raw samples (exact, no buckets). */
double
samplePercentile(std::vector<double> &values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank =
        std::ceil(p * static_cast<double>(values.size()));
    const std::size_t i = rank <= 1.0
        ? 0
        : std::min(values.size() - 1,
                   static_cast<std::size_t>(rank) - 1);
    return values[i];
}

/** "name w, name w, ..." of the top-k attribution weights. */
std::string
topFeatures(const std::vector<double> &weights,
            const std::vector<std::string> &names, std::size_t k)
{
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < weights.size(); ++i)
        if (weights[i] != 0.0)
            idx.push_back(i);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) {
                  if (weights[a] != weights[b])
                      return weights[a] > weights[b];
                  return a < b;
              });
    if (idx.size() > k)
        idx.resize(k);
    std::ostringstream ss;
    for (std::size_t j = 0; j < idx.size(); ++j) {
        const std::size_t i = idx[j];
        ss << (j ? ", " : "")
           << (i < names.size() ? names[i]
                                : "f" + std::to_string(i))
           << " " << fmt(weights[i], 3);
    }
    return idx.empty() ? "(none)" : ss.str();
}

} // namespace

void
renderExplain(std::ostream &os, const ProvSet &prov,
              const std::vector<std::string> &featureNames,
              std::size_t maxDecisions)
{
    std::size_t closed = 0;
    for (const ProvRecord &r : prov.records)
        closed += r.closed ? 1 : 0;
    os << "decisions: " << prov.records.size() << " (" << closed
       << " closed)\n\n";

    const std::size_t n = prov.records.size();
    const std::size_t from =
        maxDecisions && n > maxDecisions ? n - maxDecisions : 0;
    if (from > 0)
        os << "(showing the last " << (n - from) << " of " << n
           << " decisions)\n\n";
    for (std::size_t i = from; i < n; ++i) {
        const ProvRecord &r = prov.records[i];
        os << "decision " << r.seq << " @ inst " << r.inst
           << " (phase " << r.phase << ", model " << r.model << ")\n";
        os << "  config " << r.config
           << (r.chosen >= 0 ? " (#" + std::to_string(r.chosen) + ")"
                             : " (baseline fallback)")
           << ", " << r.sampled << " sampled, constraints: lifetime >= "
           << fmt(r.minLifetimeYears, 1) << "y x "
           << fmt(r.safetyMargin, 2) << ", ipc >= "
           << fmt(r.ipcFraction, 2) << " of best\n";
        TextTable t;
        t.header({"objective", "predicted", "sigma", "realized",
                  "err"});
        for (const auto &[name, o] : r.objectives) {
            t.row({name, fmt(o.pred, 4), fmt(o.sigma, 4),
                   r.closed ? fmt(o.real, 4) : "-",
                   o.errValid ? fmt(o.err * 100.0, 2) + "%" : "-"});
        }
        t.print(os);
        if (r.closed)
            os << "  regret " << fmt(r.regret, 4) << " (cumulative "
               << fmt(r.cumRegret, 4) << ") vs best sampled ipc "
               << fmt(r.bestSampledIpc, 4) << "\n";
        for (const ProvCandidate &c : r.runnerUps)
            os << "  runner-up #" << c.config << ": ipc "
               << fmt(c.ipc, 4) << ", lifetime "
               << fmt(c.lifetimeYears, 2) << "y, energy "
               << fmt(c.energyJ, 5) << (c.feasible ? "" : " (infeasible)")
               << "\n";
        for (const auto &[name, weights] : r.attribution)
            os << "  top features (" << name
               << "): " << topFeatures(weights, featureNames, 5)
               << "\n";
        os << "\n";
    }

    // Calibration summary: exact percentiles over the raw errors.
    TextTable cal;
    cal.header({"objective", "closed", "valid", "mean_err", "p50_err",
                "p90_err"});
    std::vector<std::string> names;
    for (const ProvRecord &r : prov.records)
        for (const auto &[name, o] : r.objectives)
            if (std::find(names.begin(), names.end(), name) ==
                names.end())
                names.push_back(name);
    for (const std::string &name : names) {
        std::vector<double> errs;
        std::size_t total = 0;
        double sum = 0.0;
        for (const ProvRecord &r : prov.records) {
            if (!r.closed)
                continue;
            for (const auto &[oname, o] : r.objectives) {
                if (oname != name)
                    continue;
                ++total;
                if (o.errValid) {
                    errs.push_back(o.err);
                    sum += o.err;
                }
            }
        }
        const double mean =
            errs.empty() ? 0.0
                         : sum / static_cast<double>(errs.size());
        const std::size_t valid = errs.size();
        const double p90 = samplePercentile(errs, 0.90);
        const double p50 = samplePercentile(errs, 0.50);
        cal.row({name, std::to_string(total), std::to_string(valid),
                 fmt(mean * 100.0, 2) + "%",
                 fmt(p50 * 100.0, 2) + "%",
                 fmt(p90 * 100.0, 2) + "%"});
    }
    os << "calibration (relative error, closed decisions):\n";
    cal.print(os);
}

void
renderProfile(std::ostream &os, const Profile &profile)
{
    double total = 0.0;
    bool hasCpu = false;
    for (const ProfileStage &s : profile.stages) {
        total += s.seconds;
        hasCpu = hasCpu || s.cpuSeconds > 0.0;
    }
    TextTable t;
    if (hasCpu)
        t.header({"stage", "seconds", "cpu", "calls", "share"});
    else
        t.header({"stage", "seconds", "calls", "share"});
    for (const ProfileStage &s : profile.stages) {
        const std::string share =
            fmt(total > 0 ? s.seconds / total * 100.0 : 0.0, 1) + "%";
        if (hasCpu)
            t.row({s.name, fmt(s.seconds, 3), fmt(s.cpuSeconds, 3),
                   std::to_string(s.calls), share});
        else
            t.row({s.name, fmt(s.seconds, 3), std::to_string(s.calls),
                   share});
    }
    t.print(os);
}

void
renderHostSummary(std::ostream &os, const RunData &run,
                  const Profile &profile)
{
    const auto scalar = [&run](const char *name) {
        const auto it = run.finalScalars.find(name);
        return it == run.finalScalars.end() ? 0.0 : it->second;
    };
    os << "host telemetry: " << run.path << "\n";
    if (!run.mode.empty())
        os << "mode " << run.mode << ", app " << run.app << ", config "
           << run.config << "\n";
    os << "  sim.mips                 " << fmt(scalar("sim.mips"), 2)
       << "\n";
    os << "  wall seconds             "
       << fmt(scalar("sim.host.wall_seconds"), 3) << "\n";
    os << "  cpu seconds              "
       << fmt(scalar("sim.host.cpu_seconds"), 3) << " (util "
       << fmt(scalar("sim.host.cpu_util"), 2) << ")\n";
    os << "  rss high-water kB        "
       << fmt(scalar("sim.host.rss_hwm_kb"), 0) << "\n";
    os << "  instructions             "
       << fmt(scalar("sim.host.instructions"), 0) << "\n";
    if (!profile.stages.empty()) {
        os << "host attribution:\n";
        renderProfile(os, profile);
    }
}

} // namespace mct::report
