/**
 * @file
 * mct_report — analyze and regression-gate mct_sim telemetry.
 *
 * Usage:
 *   mct_report show --stats-json FILE [--spans FILE] [--profile FILE]
 *                   [--windows N]
 *   mct_report explain [RUN.json] --provenance FILE [--decisions N]
 *   mct_report diff --base FILE --new FILE [--thresholds FILE]
 *                   [--out BENCH_report.json]
 *   mct_report aggregate MANIFEST [MANIFEST ...] [--group-by FIELD]
 *                   [--with-host] [--outlier-k K] [--no-verify]
 *                   [--out FLEET.json]
 *   mct_report perf --host FILE [--base FILE]
 *                   [--thresholds FILE] [--out FILE]
 *   mct_report timeline --timeline FILE [--alerts FILE]
 *                   [--windows N]
 *
 * `show` renders one run: objectives, the lat.* latency-attribution
 * breakdown with p50/p90/p99, per-window tables, event counts, and
 * optional span/WallProfiler summaries.
 *
 * `explain` renders the decision audit from a --provenance-out JSONL
 * stream: per decision the predicted vs realized objectives with the
 * model's uncertainty and relative error, the constraint set, the
 * rejected runner-ups, the IPC regret against the best sampled
 * configuration, and the top attributed features; then a calibration
 * summary (mean/p50/p90 relative error per objective). An optional
 * stats-json run document adds the run header and its mct.audit.*
 * scalars for cross-checking.
 *
 * `diff` gates a new run against a base run. Every final scalar of the
 * new run matching a threshold rule (built-in defaults, or a
 * thresholds.txt given with --thresholds) is checked; a metric that
 * moves against its preferred direction by more than rel*|base| + abs
 * is a regression. --out writes a machine-readable
 * mct-bench-report-v1 document for CI artifacts.
 *
 * `timeline` renders an mct_sim --timeline-out document: one aligned
 * sparkline row per tracked metric with its min/max/EWMA rollups,
 * the alert timeline interleaved as marker rows ('!' raise, '/'
 * clear) when an --alerts-out JSONL stream is given, then the alert
 * event table and severity totals. A timeline document also loads as
 * a run document, so `diff` can gate alert.count.* scalars.
 *
 * `aggregate` scans run manifests (the mct-manifest-v1 documents
 * mct_sim --manifest-out and the bench harness emit), re-checksums
 * every artifact they name (a mismatch is a named "integrity error:"
 * and exits 3), merges the runs' stats documents — counters summed,
 * gauges averaged with count/mean/min/max/stddev dispersion cells,
 * histograms added bucket-wise so merged percentiles stay exact —
 * and renders the fleet table with per-group outlier flags
 * (|value - mean| > k*stddev, --outlier-k, default 3). --group-by
 * buckets runs by a manifest field (app, mode, config, seed,
 * fault_plan, run_id); --with-host also merges each run's host
 * document so sim.mips gates alongside the sim stats; --out writes
 * the mct-fleet-v1 document, which `diff` gates like any stats
 * document. The output is byte-identical for any ordering of the
 * MANIFEST arguments.
 *
 * `perf` renders the host-telemetry document an mct_sim
 * --host-profile-out run writes: sim.mips throughput, wall/CPU
 * seconds, RSS high-water, and the per-stage host attribution table.
 * With --base the run is gated against a pinned baseline exactly
 * like diff. Multi-run noise damping goes through `aggregate` on the
 * runs' manifests (CI gates the mean of three runs).
 *
 * Exit codes: 0 clean, 1 at least one regression, 2 usage error,
 * 3 unreadable or malformed input (including "integrity error:"
 * checksum failures from `aggregate`). `show` uses 0, 2 and 3.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "mct/config.hh"
#include "report.hh"

namespace
{

using namespace mct::report;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mct_report show --stats-json FILE [--spans FILE]\n"
        "                       [--profile FILE] [--host FILE]\n"
        "                       [--windows N]\n"
        "       mct_report explain [RUN.json] --provenance FILE\n"
        "                       [--decisions N]\n"
        "       mct_report diff --base FILE --new FILE\n"
        "                       [--thresholds FILE] [--out FILE]\n"
        "       mct_report aggregate MANIFEST [MANIFEST ...]\n"
        "                       [--group-by FIELD] [--with-host]\n"
        "                       [--outlier-k K] [--no-verify]\n"
        "                       [--out FLEET.json]\n"
        "       mct_report perf --host FILE [--base FILE]\n"
        "                       [--thresholds FILE] [--out FILE]\n"
        "       mct_report timeline --timeline FILE [--alerts FILE]\n"
        "                       [--windows N]\n");
    return 2;
}

/** Fetch the value after a flag; false when it is missing. */
bool
flagValue(int argc, char **argv, int &i, std::string &out)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", argv[i]);
        return false;
    }
    out = argv[++i];
    return true;
}

int
cmdShow(int argc, char **argv)
{
    std::string statsPath, spansPath, profilePath, hostPath;
    std::size_t windows = 8;
    for (int i = 2; i < argc; ++i) {
        std::string v;
        if (!std::strcmp(argv[i], "--stats-json")) {
            if (!flagValue(argc, argv, i, statsPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--spans")) {
            if (!flagValue(argc, argv, i, spansPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--profile")) {
            if (!flagValue(argc, argv, i, profilePath))
                return 2;
        } else if (!std::strcmp(argv[i], "--host")) {
            if (!flagValue(argc, argv, i, hostPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--windows")) {
            if (!flagValue(argc, argv, i, v))
                return 2;
            windows = static_cast<std::size_t>(std::stoul(v));
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (statsPath.empty() && hostPath.empty())
        return usage();

    std::string err;
    if (!statsPath.empty()) {
        RunData run;
        if (!loadSnapshots(statsPath, run, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 3;
        }
        renderRun(std::cout, run, windows);
    }
    if (!spansPath.empty()) {
        SpanSet spans;
        if (!loadSpans(spansPath, spans, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 3;
        }
        std::cout << "\n";
        renderSpans(std::cout, spans);
    }
    if (!profilePath.empty()) {
        Profile prof;
        if (!loadProfile(profilePath, prof, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 3;
        }
        std::cout << "\nself-profile:\n";
        renderProfile(std::cout, prof);
    }
    if (!hostPath.empty()) {
        RunData host;
        Profile prof;
        if (!loadSnapshots(hostPath, host, err) ||
            !loadProfile(hostPath, prof, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 3;
        }
        if (!statsPath.empty())
            std::cout << "\n";
        renderHostSummary(std::cout, host, prof);
    }
    return 0;
}

/**
 * perf: render (and optionally gate) one host-telemetry document;
 * with --base it is diffed against a pinned baseline through the
 * thresholds rules (sim.mips, direction higher). Exit 1 on
 * regression, mirroring diff. Multi-run damping lives in
 * `aggregate` (the mean over the runs' manifests), not here.
 */
int
cmdPerf(int argc, char **argv)
{
    std::string hostPath, basePath, thresholdsPath, outPath;
    for (int i = 2; i < argc; ++i) {
        std::string v;
        if (!std::strcmp(argv[i], "--host")) {
            if (!flagValue(argc, argv, i, v))
                return 2;
            if (!hostPath.empty()) {
                std::fprintf(stderr,
                             "repeated --host: use mct_report "
                             "aggregate for multi-run rollups\n");
                return usage();
            }
            hostPath = v;
        } else if (!std::strcmp(argv[i], "--base")) {
            if (!flagValue(argc, argv, i, basePath))
                return 2;
        } else if (!std::strcmp(argv[i], "--thresholds")) {
            if (!flagValue(argc, argv, i, thresholdsPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--out")) {
            if (!flagValue(argc, argv, i, outPath))
                return 2;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (hostPath.empty())
        return usage();

    std::string err;
    RunData cur;
    Profile prof;
    if (!loadSnapshots(hostPath, cur, err) ||
        !loadProfile(hostPath, prof, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 3;
    }
    renderHostSummary(std::cout, cur, prof);
    if (basePath.empty())
        return 0;

    Thresholds th;
    if (thresholdsPath.empty()) {
        if (!parseThresholds(defaultThresholdsText(), th, err)) {
            std::fprintf(stderr, "internal: bad default thresholds: "
                                 "%s\n",
                         err.c_str());
            return 3;
        }
    } else if (!loadThresholds(thresholdsPath, th, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 3;
    }
    RunData base;
    if (!loadSnapshots(basePath, base, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 3;
    }
    const DiffReport rep = diffRuns(base, cur, th);
    std::cout << "\n";
    renderDiff(std::cout, base, cur, rep);
    if (rep.checks.empty()) {
        std::fprintf(stderr,
                     "error: no metric matched any threshold rule\n");
        return 3;
    }
    if (!outPath.empty()) {
        mct::AtomicFile f(outPath);
        writeBenchReport(f.stream(), base, cur, rep);
        if (!f.commit()) {
            std::fprintf(stderr, "error: cannot write '%s'\n",
                         outPath.c_str());
            return 3;
        }
        std::printf("report written to %s\n", outPath.c_str());
    }
    return rep.regressions ? 1 : 0;
}

/**
 * aggregate: verify + merge N run manifests into one fleet rollup.
 * Exit 0 on success, 2 on usage errors, 3 on unreadable/malformed
 * input — including the named "integrity error:" when an artifact's
 * bytes do not match its manifest checksum.
 */
int
cmdAggregate(int argc, char **argv)
{
    std::vector<std::string> manifests;
    AggregateOptions opt;
    std::string outPath;
    for (int i = 2; i < argc; ++i) {
        std::string v;
        if (!std::strcmp(argv[i], "--group-by")) {
            if (!flagValue(argc, argv, i, opt.groupBy))
                return 2;
        } else if (!std::strcmp(argv[i], "--out")) {
            if (!flagValue(argc, argv, i, outPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--with-host")) {
            opt.withHost = true;
        } else if (!std::strcmp(argv[i], "--no-verify")) {
            opt.verify = false;
        } else if (!std::strcmp(argv[i], "--outlier-k")) {
            if (!flagValue(argc, argv, i, v))
                return 2;
            try {
                opt.outlierK = std::stod(v);
            } catch (...) {
                std::fprintf(stderr, "bad --outlier-k '%s'\n",
                             v.c_str());
                return 2;
            }
        } else if (argv[i][0] != '-') {
            manifests.push_back(argv[i]);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (manifests.empty())
        return usage();
    if (!opt.groupBy.empty()) {
        // Validate the field name up front so a typo is a usage
        // error, not a per-manifest load error.
        ManifestData probe;
        std::string key;
        if (!probe.groupKey(opt.groupBy, key)) {
            std::fprintf(stderr,
                         "unknown --group-by field '%s' (app, mode, "
                         "config, seed, fault_plan, run_id)\n",
                         opt.groupBy.c_str());
            return 2;
        }
    }

    std::string err;
    FleetReport fleet;
    if (!aggregateManifests(manifests, opt, fleet, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 3;
    }
    renderFleet(std::cout, fleet);
    if (!outPath.empty()) {
        mct::AtomicFile f(outPath);
        writeFleetDoc(f.stream(), fleet);
        if (!f.commit()) {
            std::fprintf(stderr, "error: cannot write '%s'\n",
                         outPath.c_str());
            return 3;
        }
        std::printf("fleet document written to %s\n",
                    outPath.c_str());
    }
    return 0;
}

int
cmdTimeline(int argc, char **argv)
{
    std::string timelinePath, alertsPath;
    std::size_t windows = 0; // all held
    for (int i = 2; i < argc; ++i) {
        std::string v;
        if (!std::strcmp(argv[i], "--timeline")) {
            if (!flagValue(argc, argv, i, timelinePath))
                return 2;
        } else if (!std::strcmp(argv[i], "--alerts")) {
            if (!flagValue(argc, argv, i, alertsPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--windows")) {
            if (!flagValue(argc, argv, i, v))
                return 2;
            windows = static_cast<std::size_t>(std::stoul(v));
        } else if (argv[i][0] != '-' && timelinePath.empty()) {
            timelinePath = argv[i]; // positional timeline document
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (timelinePath.empty())
        return usage();

    std::string err;
    TimelineData tl;
    if (!loadTimeline(timelinePath, tl, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 3;
    }
    AlertLog alerts;
    if (!alertsPath.empty() &&
        !loadAlertLog(alertsPath, alerts, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 3;
    }
    renderTimeline(std::cout, tl, alerts, windows);
    return 0;
}

int
cmdExplain(int argc, char **argv)
{
    std::string statsPath, provPath;
    std::size_t decisions = 0; // 0 = all
    for (int i = 2; i < argc; ++i) {
        std::string v;
        if (!std::strcmp(argv[i], "--provenance")) {
            if (!flagValue(argc, argv, i, provPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--stats-json")) {
            if (!flagValue(argc, argv, i, statsPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--decisions")) {
            if (!flagValue(argc, argv, i, v))
                return 2;
            decisions = static_cast<std::size_t>(std::stoul(v));
        } else if (argv[i][0] != '-' && statsPath.empty()) {
            statsPath = argv[i]; // positional run document
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (provPath.empty())
        return usage();

    std::string err;
    if (!statsPath.empty()) {
        RunData run;
        if (!loadSnapshots(statsPath, run, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 3;
        }
        std::cout << "run: " << run.path << "\nmode " << run.mode
                  << ", app " << run.app << ", config " << run.config
                  << "\n";
        bool any = false;
        for (const auto &[name, v] : run.finalScalars) {
            if (name.rfind("mct.audit.", 0) != 0)
                continue;
            if (!any)
                std::cout << "audit stats:\n";
            any = true;
            std::printf("  %-32s %g\n", name.c_str(), v);
        }
        std::cout << "\n";
    }
    ProvSet prov;
    if (!loadProvenance(provPath, prov, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 3;
    }
    renderExplain(std::cout, prov, mct::configDimNames(), decisions);
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    std::string basePath, newPath, thresholdsPath, outPath;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--base")) {
            if (!flagValue(argc, argv, i, basePath))
                return 2;
        } else if (!std::strcmp(argv[i], "--new")) {
            if (!flagValue(argc, argv, i, newPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--thresholds")) {
            if (!flagValue(argc, argv, i, thresholdsPath))
                return 2;
        } else if (!std::strcmp(argv[i], "--out")) {
            if (!flagValue(argc, argv, i, outPath))
                return 2;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return usage();
        }
    }
    if (basePath.empty() || newPath.empty())
        return usage();

    std::string err;
    Thresholds th;
    if (thresholdsPath.empty()) {
        if (!parseThresholds(defaultThresholdsText(), th, err)) {
            std::fprintf(stderr, "internal: bad default thresholds: "
                                 "%s\n",
                         err.c_str());
            return 2;
        }
    } else if (!loadThresholds(thresholdsPath, th, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 3;
    }

    RunData base, cur;
    if (!loadSnapshots(basePath, base, err) ||
        !loadSnapshots(newPath, cur, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 3;
    }

    const DiffReport rep = diffRuns(base, cur, th);
    renderDiff(std::cout, base, cur, rep);
    if (rep.checks.empty()) {
        std::fprintf(stderr,
                     "error: no metric matched any threshold rule\n");
        return 2;
    }
    if (!outPath.empty()) {
        mct::AtomicFile f(outPath);
        writeBenchReport(f.stream(), base, cur, rep);
        if (!f.commit()) {
            std::fprintf(stderr, "error: cannot write '%s'\n",
                         outPath.c_str());
            return 2;
        }
        std::printf("report written to %s\n", outPath.c_str());
    }
    return rep.regressions ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (!std::strcmp(argv[1], "show"))
        return cmdShow(argc, argv);
    if (!std::strcmp(argv[1], "explain"))
        return cmdExplain(argc, argv);
    if (!std::strcmp(argv[1], "diff"))
        return cmdDiff(argc, argv);
    if (!std::strcmp(argv[1], "aggregate"))
        return cmdAggregate(argc, argv);
    if (!std::strcmp(argv[1], "perf"))
        return cmdPerf(argc, argv);
    if (!std::strcmp(argv[1], "timeline"))
        return cmdTimeline(argc, argv);
    std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
    return usage();
}
