/**
 * @file
 * mct_report: offline analysis of mct_sim telemetry.
 *
 * Loads the machine-readable artifacts the simulator emits — the
 * --stats-json document (mct-stats-v1), span/event JSONL streams, and
 * WallProfiler dumps — and either renders a single run (per-window
 * tables plus a latency-attribution breakdown) or diffs two runs
 * metric-by-metric against declarative relative thresholds
 * (thresholds.txt, same data-not-code style as tools/lint/rules.txt),
 * writing a machine-readable BENCH_report.json and exiting nonzero on
 * regression.
 *
 * Everything here is a small library so tests/test_report.cc can
 * exercise the parsing, threshold grammar, and diff semantics without
 * shelling out.
 */

#ifndef MCT_TOOLS_REPORT_REPORT_HH
#define MCT_TOOLS_REPORT_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/instrument.hh"
#include "common/stat_merge.hh"

namespace mct::report
{

// --------------------------------------------------------------------
// Minimal JSON value + parser (the simulator only ever writes; this
// tool is the one place in the repo that needs to read JSON back).
// --------------------------------------------------------------------

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    /** Object members in document order. */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Object member lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Numeric member with a default. */
    double num(const std::string &key, double dflt) const;

    /** String member with a default. */
    std::string text(const std::string &key,
                     const std::string &dflt) const;
};

struct JsonParse
{
    bool ok = false;
    JsonValue value;
    std::string error; ///< "offset N: what" when !ok
};

/** Parse one JSON document (tolerates trailing whitespace). */
[[nodiscard]] JsonParse parseJson(const std::string &text);

// --------------------------------------------------------------------
// Run data (mct-stats-v1)
// --------------------------------------------------------------------

/** A log2-bucketed histogram as serialized in a stats document. */
struct RunHistogram
{
    std::uint64_t count = 0;
    double sum = 0.0;
    /** (bucketLow, count) pairs, ascending. */
    std::vector<std::pair<double, std::uint64_t>> buckets;

    double mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    /** Same interpolation semantics as LogHistogram::percentile. */
    double percentile(double p) const;
};

/** One periodic delta window. */
struct RunWindow
{
    std::uint64_t inst = 0;
    std::map<std::string, double> scalars;
};

/** Everything mct_report needs from one --stats-json document. */
struct RunData
{
    std::string path;
    std::string mode;
    std::string app;
    std::string config;
    std::map<std::string, double> finalScalars;
    std::map<std::string, RunHistogram> finalHists;
    /** Scalar kind map ("counter"/"gauge") from the document's
     *  "kinds" object; empty for documents predating it. */
    std::map<std::string, std::string> kinds;
    std::vector<RunWindow> windows;
    std::map<std::string, double> eventCounts;
    double eventsRecorded = 0.0;
    double eventsDropped = 0.0;
};

/**
 * Load a stats document; false + @p err on parse/shape problems.
 * Accepts mct-stats-v1 (deterministic run document), mct-host-v1
 * (the nondeterministic host-telemetry document written by
 * --host-profile-out; same final/periodic shape, host scalars), and
 * mct-timeline-v1 (--timeline-out; its flat "final" object carries
 * the sim.timeline.* / timeline.<metric>.* / alert.* scalars, so
 * alert counts diff-gate like any other metric), and mct-fleet-v1
 * (the `mct_report aggregate` rollup, whose "final" object carries
 * the merged metrics under their original names plus the
 * fleet.<metric>.* dispersion cells, so a fleet document diff-gates
 * like any stats document).
 */
[[nodiscard]] bool loadSnapshots(const std::string &path, RunData &out,
                                 std::string &err);

/**
 * Per-metric median across @p runs (final scalars only; mode, app
 * and config are taken from the first run). The CI perf-smoke job
 * gates the median of three host-telemetry runs so one noisy run on
 * a shared machine cannot fake a regression.
 */
RunData medianRuns(const std::vector<RunData> &runs);

// --------------------------------------------------------------------
// Run manifests (mct-manifest-v1) + fleet rollup (mct-fleet-v1)
// --------------------------------------------------------------------

/** One artifact row of a loaded run manifest. */
struct ManifestArtifactRow
{
    std::string kind;   ///< stats, host, timeline, spans, ...
    std::string schema; ///< artifact document schema ("" for JSONL)
    std::string path;   ///< as recorded (relative to the manifest)
    std::uint64_t bytes = 0;
    std::string fnv1a; ///< 16-digit hex checksum of the artifact
};

/** One loaded mct-manifest-v1 document. */
struct ManifestData
{
    std::string path; ///< the manifest file itself
    std::string runId;
    std::string mode;
    std::string app;
    std::string config;
    std::uint64_t seed = 0;
    std::string faultPlan;
    std::string fingerprint;
    std::vector<ManifestArtifactRow> artifacts;

    /** @p a's path resolved against this manifest's directory. */
    std::string artifactPath(const ManifestArtifactRow &a) const;

    /** First artifact of @p kind; null when the run produced none. */
    const ManifestArtifactRow *artifact(const std::string &kind) const;

    /** Value of the --group-by field @p field; false on an unknown
     *  field name (app, mode, config, seed, fault_plan, run_id). */
    [[nodiscard]] bool groupKey(const std::string &field,
                                std::string &out) const;
};

/** Load a manifest document; false + @p err on parse/shape issues. */
[[nodiscard]] bool loadManifest(const std::string &path,
                                ManifestData &out, std::string &err);

/**
 * Re-checksum every artifact @p m names. An unreadable artifact or a
 * checksum/size mismatch fails with @p err prefixed
 * "integrity error:" — the named signal CI greps for when it tampers
 * an artifact on purpose.
 */
[[nodiscard]] bool verifyManifest(const ManifestData &m,
                                  std::string &err);

/**
 * Rebuild a typed snapshot from a loaded run document: scalars take
 * their kind from the document's "kinds" object (gauge when absent —
 * correct for host documents, which carry no counters), histograms
 * are re-bucketed into dense LogHistogram form. The result feeds
 * StatMerge, whose merge is order-invariant by construction.
 */
StatSnapshot snapshotFromRun(const RunData &run);

/** One |value - mean| > k*stddev dispersion flag within a group. */
struct FleetOutlier
{
    std::string runId;
    std::string metric;
    double value = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
};

/** One --group-by bucket of the fleet rollup. */
struct FleetGroup
{
    std::string key; ///< group-by field value ("all" when ungrouped)
    std::vector<std::string> runIds; ///< canonical (sorted) order
    StatMerge::Result merged;
    std::vector<FleetOutlier> outliers;
};

/** The whole rollup: per-group merges plus the all-runs merge. */
struct FleetReport
{
    std::string groupBy; ///< "" when ungrouped
    std::string mode;    ///< uniform across runs, else "mixed"
    std::string app;
    std::string config;
    std::size_t runs = 0;
    double outlierK = 3.0;
    StatMerge::Result all;          ///< merged over every run
    std::vector<FleetGroup> groups; ///< sorted by key
    std::size_t outliers = 0;       ///< total across groups
};

struct AggregateOptions
{
    std::string groupBy; ///< "" = single group
    bool withHost = false; ///< also merge each run's host document
    bool verify = true;    ///< re-checksum artifacts before loading
    double outlierK = 3.0;
};

/**
 * Load + verify the manifests at @p paths and merge their stats
 * documents (plus host documents with opt.withHost) into a
 * FleetReport. Deterministic in the order of @p paths: runs are
 * keyed and sorted by (run id, manifest path) before any merge.
 */
[[nodiscard]] bool aggregateManifests(
    const std::vector<std::string> &paths, const AggregateOptions &opt,
    FleetReport &out, std::string &err);

/**
 * Emit @p r as an mct-fleet-v1 document. The top-level "final"
 * object holds the all-runs merge — counters summed, gauges averaged,
 * histograms added bucket-wise, all under their original names — plus
 * the fleet.<metric>.{count,mean,min,max,stddev} dispersion cells and
 * the sim.fleet.{runs,groups,outliers} summary scalars; each entry of
 * "groups" repeats that shape for one group. Byte-identical for any
 * permutation of the aggregated runs.
 */
void writeFleetDoc(std::ostream &os, const FleetReport &r);

/** Human-readable rollup: per group the sim.* gauge dispersion table
 *  and any outlier flags. */
void renderFleet(std::ostream &os, const FleetReport &r);

/** Declared key set of mct-fleet-v1 (doc-contract lint + tests). */
const std::vector<std::string> &fleetDocKeys();

// --------------------------------------------------------------------
// Timeline (mct-timeline-v1) + alert log (alerts.jsonl)
// --------------------------------------------------------------------

/** One --timeline-out document: per-window series + rollups. */
struct TimelineData
{
    std::string path;
    std::string mode;
    std::string app;
    std::string config;
    std::size_t capacity = 0;
    /** Tracked metric names, in document (sorted) order. */
    std::vector<std::string> metrics;
    /** Instruction count at each held window, oldest first. */
    std::vector<std::uint64_t> insts;
    /** Metric -> per-window delta values (same length as insts). */
    std::map<std::string, std::vector<double>> series;
    /** Flat final scalars: sim.timeline.*, timeline.<metric>.*, and
     *  the alert.* counts when an alert engine was armed. */
    std::map<std::string, double> finalScalars;
};

/** Load a timeline document; false + @p err on parse/shape issues. */
[[nodiscard]] bool loadTimeline(const std::string &path,
                                TimelineData &out, std::string &err);

/** One raise/clear row from an --alerts-out JSONL stream. */
struct AlertRow
{
    bool raised = true; ///< alert_raised (true) or alert_cleared
    std::uint64_t window = 0;
    std::uint64_t inst = 0;
    double value = 0.0;
    std::uint64_t windowsActive = 0; ///< clear rows only
    std::string rule;
    std::string metric;
    std::string condition;
    std::string severity;
};

struct AlertLog
{
    std::vector<AlertRow> rows;
};

/** Load an alert JSONL stream; false + @p err on malformed lines. */
[[nodiscard]] bool loadAlertLog(const std::string &path, AlertLog &out,
                                std::string &err);

/**
 * Fixed-width ASCII sparkline of @p vals (one character per value,
 * 8-level ramp, min..max normalized; empty input renders empty).
 */
std::string sparkline(const std::vector<double> &vals);

/**
 * Render a timeline document: header, one aligned row per tracked
 * metric (min/max/EWMA rollups plus a per-window sparkline), the
 * alert timeline interleaved as marker rows ('!' raise, '/' clear)
 * under the metric they fired on, then the alert event table.
 * @p maxWindows caps the rendered window range (0 = all held).
 */
void renderTimeline(std::ostream &os, const TimelineData &tl,
                    const AlertLog &alerts, std::size_t maxWindows);

// --------------------------------------------------------------------
// Span JSONL
// --------------------------------------------------------------------

/** One request-lifecycle span row from a --spans-out stream. */
struct SpanRow
{
    std::uint64_t id = 0;
    int hitLevel = 0;
    bool isWrite = false;
    std::uint64_t inst = 0;
    double totalNs = 0.0;
    /** Stage name -> duration in ns. */
    std::map<std::string, double> stageNs;
};

struct SpanSet
{
    std::vector<SpanRow> spans;
};

/** Load a span JSONL stream; false + @p err on malformed lines. */
[[nodiscard]] bool loadSpans(const std::string &path, SpanSet &out,
                             std::string &err);

// --------------------------------------------------------------------
// WallProfiler dumps
// --------------------------------------------------------------------

struct ProfileStage
{
    std::string name;
    double seconds = 0.0;    ///< wall seconds
    double cpuSeconds = 0.0; ///< CPU seconds (0 for wall-only dumps)
    std::uint64_t calls = 0;
};

struct Profile
{
    std::vector<ProfileStage> stages;
};

/**
 * Load a stage-timing dump ({"stages":[...]}): a bench WallProfiler
 * dump (--profile-out / MCT_BENCH_PROFILE) or the stages section of
 * an mct_sim --host-profile-out document, which adds cpu_seconds.
 */
[[nodiscard]] bool loadProfile(const std::string &path, Profile &out,
                               std::string &err);

/** Per-stage median across @p profiles (order from the first). */
Profile medianProfiles(const std::vector<Profile> &profiles);

// --------------------------------------------------------------------
// Decision provenance (--provenance-out JSONL)
// --------------------------------------------------------------------

/** One objective's predicted-vs-realized audit row. */
struct ProvObjective
{
    double pred = 0.0;
    double sigma = 0.0; ///< model-reported 1-sigma (0 when n/a)
    double real = 0.0;
    double err = 0.0; ///< |pred - real| / |real|
    bool errValid = false;
};

/** A rejected runner-up candidate. */
struct ProvCandidate
{
    std::uint64_t config = 0;
    double ipc = 0.0;
    double lifetimeYears = 0.0;
    double energyJ = 0.0;
    bool feasible = false;
};

/** One decision's provenance record (one JSONL line). */
struct ProvRecord
{
    std::uint64_t seq = 0;
    std::uint64_t phase = 0;
    std::uint64_t inst = 0;
    std::uint64_t closeInst = 0;
    std::string model;
    std::string config;
    long long chosen = -1;
    bool fallback = false;
    std::uint64_t sampled = 0;
    double minLifetimeYears = 0.0;
    double ipcFraction = 0.0;
    double safetyMargin = 0.0;
    /** (objective name, audit row) in the emitter's order. */
    std::vector<std::pair<std::string, ProvObjective>> objectives;
    std::vector<ProvCandidate> runnerUps;
    double bestSampledIpc = 0.0;
    double regret = 0.0;
    double cumRegret = 0.0;
    /** objective -> per-feature attribution (absent when the decision
     *  was not an attribution-snapshot decision). */
    std::vector<std::pair<std::string, std::vector<double>>>
        attribution;
    bool closed = false;
};

struct ProvSet
{
    std::vector<ProvRecord> records;
};

/** Load a provenance JSONL stream; false + @p err on bad lines. */
[[nodiscard]] bool loadProvenance(const std::string &path,
                                  ProvSet &out, std::string &err);

// --------------------------------------------------------------------
// Thresholds (declarative regression gates)
// --------------------------------------------------------------------

/** One gate: metrics matching @p metricGlob may move against their
 *  preferred direction by at most rel * |base| + abs. */
struct ThresholdRule
{
    std::string metricGlob;
    bool higherIsBetter = true;
    double rel = 0.05;
    double abs = 0.0;
    int line = 0; ///< for error messages
};

struct Thresholds
{
    std::vector<ThresholdRule> rules;
};

/**
 * Parse the thresholds grammar:
 *
 *   # comment
 *   metric <glob>            # '*' matches any substring
 *     direction higher|lower # which way is better (required)
 *     rel 0.05               # relative slack (fraction of |base|)
 *     abs 0.0                # absolute slack, same unit as metric
 *
 * Unknown keys, a missing direction, or non-numeric slack are errors.
 */
[[nodiscard]] bool parseThresholds(const std::string &text,
                                   Thresholds &out, std::string &err);

/** parseThresholds over a file. */
[[nodiscard]] bool loadThresholds(const std::string &path,
                                  Thresholds &out, std::string &err);

/** Built-in default gates used when no --thresholds file is given. */
const char *defaultThresholdsText();

/** '*'-glob match ('*' crosses every character, '.' is literal). */
bool metricGlobMatch(const std::string &glob, const std::string &name);

// --------------------------------------------------------------------
// Diff
// --------------------------------------------------------------------

/** Outcome of gating one metric. */
struct CheckResult
{
    std::string metric;
    std::string glob; ///< the rule that matched
    bool higherIsBetter = true;
    double base = 0.0;
    double cur = 0.0;
    double relChange = 0.0; ///< (cur - base) / |base| (0 when base 0)
    double allowed = 0.0;   ///< rel * |base| + abs
    bool regressed = false;
};

struct DiffReport
{
    std::vector<CheckResult> checks;
    std::size_t regressions = 0;
    /** Metrics a rule matched in the new run but missing from base. */
    std::vector<std::string> missingInBase;
};

/**
 * Gate @p cur against @p base: every final scalar of @p cur that
 * matches a threshold rule is checked (first matching rule wins).
 * Histograms gate through their derived percentile gauges, which are
 * final scalars already.
 */
DiffReport diffRuns(const RunData &base, const RunData &cur,
                    const Thresholds &th);

/** Human-readable diff table (one row per check). */
void renderDiff(std::ostream &os, const RunData &base,
                const RunData &cur, const DiffReport &report);

/** Machine-readable BENCH_report.json (schema mct-bench-report-v1). */
void writeBenchReport(std::ostream &os, const RunData &base,
                      const RunData &cur, const DiffReport &report);

// --------------------------------------------------------------------
// Single-run rendering
// --------------------------------------------------------------------

/** Key objectives, latency attribution, and per-window tables. */
void renderRun(std::ostream &os, const RunData &run,
               std::size_t maxWindows);

/** Span summary (count/mean by hit level and stage). */
void renderSpans(std::ostream &os, const SpanSet &spans);

/**
 * Per-decision audit blocks (predicted vs realized per objective,
 * relative error, regret, runner-ups, top attributed features) plus a
 * calibration summary over all loaded records. @p featureNames label
 * attribution entries (falls back to the index when short/empty);
 * @p maxDecisions caps the per-decision blocks (0 = all).
 */
void renderExplain(std::ostream &os, const ProvSet &prov,
                   const std::vector<std::string> &featureNames,
                   std::size_t maxDecisions);

/** Stage-timing table (adds a cpu column when any stage has one). */
void renderProfile(std::ostream &os, const Profile &profile);

/**
 * Host-telemetry summary for one (possibly median) run: simulator
 * throughput (sim.mips), wall/CPU seconds, memory high-water, then
 * the per-stage host attribution table.
 */
void renderHostSummary(std::ostream &os, const RunData &run,
                       const Profile &profile);

} // namespace mct::report

#endif // MCT_TOOLS_REPORT_REPORT_HH
