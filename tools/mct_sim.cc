/**
 * @file
 * mct_sim: command-line driver for the simulator and the MCT runtime.
 *
 * Modes:
 *   mct_sim eval --app lbm [config flags]           one configuration
 *   mct_sim mct  --app lbm [--target 8] [--model gbt|qlasso]
 *                                                   the adaptive runtime
 *   mct_sim sweep --app lbm [--space full|noquota] [--csv out.csv]
 *                                                   brute-force sweep
 *   mct_sim trace --app lbm --ops 100000 --out lbm.trace
 *                                                   capture a trace
 *   mct_sim eval --trace lbm.trace [config flags]   replay a trace
 *   mct_sim eval --app lbm --stats                  full stats dump
 *   mct_sim list                                    applications & mixes
 *
 * Config flags for eval:
 *   --fast R --slow R --bank N --eager N --quota Y
 *   --cancel none|slow|both --pause --retention --fastreads
 *   --startgap
 *
 * Common flags: --warmup N --measure N --seed N
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <fstream>
#include <iostream>

#include "common/csv.hh"
#include "common/table.hh"
#include "mct/config.hh"
#include "mct/config_space.hh"
#include "mct/controller.hh"
#include "sim/stats_report.hh"
#include "sim/sweep_cache.hh"
#include "workloads/mixes.hh"
#include "workloads/trace.hh"

namespace
{

using namespace mct;

struct Args
{
    std::string mode;
    std::map<std::string, std::string> kv;
    std::vector<std::string> flags;

    bool has(const std::string &f) const
    {
        for (const auto &x : flags)
            if (x == f)
                return true;
        return kv.count(f) > 0;
    }

    std::string
    get(const std::string &k, const std::string &dflt) const
    {
        const auto it = kv.find(k);
        return it == kv.end() ? dflt : it->second;
    }

    double
    getD(const std::string &k, double dflt) const
    {
        const auto it = kv.find(k);
        return it == kv.end() ? dflt : std::atof(it->second.c_str());
    }

    long long
    getI(const std::string &k, long long dflt) const
    {
        const auto it = kv.find(k);
        return it == kv.end() ? dflt : std::atoll(it->second.c_str());
    }
};

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc > 1)
        args.mode = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) != 0) {
            std::fprintf(stderr, "unexpected argument '%s'\n",
                         a.c_str());
            std::exit(2);
        }
        a = a.substr(2);
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            args.kv[a] = argv[++i];
        else
            args.flags.push_back(a);
    }
    return args;
}

MellowConfig
configFromArgs(const Args &args)
{
    MellowConfig cfg;
    cfg.fastLatency = args.getD("fast", 1.0);
    if (args.has("slow")) {
        cfg.slowLatency = args.getD("slow", 3.0);
    }
    if (args.has("bank")) {
        cfg.bankAware = true;
        cfg.bankAwareThreshold =
            static_cast<int>(args.getI("bank", 1));
    }
    if (args.has("eager")) {
        cfg.eagerWritebacks = true;
        cfg.eagerThreshold = static_cast<int>(args.getI("eager", 4));
    }
    if (args.has("quota")) {
        cfg.wearQuota = true;
        cfg.wearQuotaTarget = args.getD("quota", 8.0);
    }
    const std::string cancel = args.get("cancel", "none");
    if (cancel == "slow") {
        cfg.slowCancellation = true;
    } else if (cancel == "both") {
        cfg.fastCancellation = true;
        cfg.slowCancellation = true;
    } else if (cancel != "none") {
        std::fprintf(stderr, "--cancel must be none|slow|both\n");
        std::exit(2);
    }
    if (!cfg.usesSlowWrites())
        cfg.slowLatency = cfg.fastLatency;
    cfg.pauseInsteadOfCancel = args.has("pause");
    cfg.shortRetentionWrites = args.has("retention");
    cfg.fastDisturbingReads = args.has("fastreads");
    if (!cfg.valid()) {
        std::fprintf(stderr, "invalid configuration: %s\n",
                     toString(cfg).c_str());
        std::exit(2);
    }
    return cfg;
}

EvalParams
evalFromArgs(const Args &args)
{
    EvalParams ep;
    ep.warmupInsts = static_cast<InstCount>(
        args.getI("warmup", static_cast<long long>(ep.warmupInsts)));
    ep.measureInsts = static_cast<InstCount>(
        args.getI("measure", static_cast<long long>(ep.measureInsts)));
    ep.sys.seed = static_cast<std::uint64_t>(args.getI("seed", 1));
    if (args.has("startgap"))
        ep.sys.nvm.wearLevelMode = WearLevelMode::StartGap;
    return ep;
}

void
printMetrics(const Metrics &m)
{
    std::printf("IPC            %.4f\n", m.ipc);
    std::printf("lifetime       %.3f years\n", m.lifetimeYears);
    std::printf("energy         %.5f J per Minst\n", m.energyJ);
}

int
cmdList()
{
    std::printf("applications:\n");
    for (const auto &name : workloadNames())
        std::printf("  %s\n", name.c_str());
    std::printf("mixes (Table 11):\n");
    for (const auto &mix : multiProgramMixes()) {
        std::printf("  %s:", mix.name.c_str());
        for (const auto &a : mix.apps)
            std::printf(" %s", a.c_str());
        std::printf("\n");
    }
    return 0;
}

int
cmdEval(const Args &args)
{
    const MellowConfig cfg = configFromArgs(args);
    const EvalParams ep = evalFromArgs(args);

    // --trace FILE replays a recorded trace instead of a model.
    if (args.has("trace")) {
        const std::string path = args.get("trace", "");
        auto wl = TraceWorkload::fromFile(
            path, static_cast<unsigned>(args.getI("mlp", 16)));
        System sys(std::move(wl), ep.sys, cfg);
        sys.run(ep.warmupInsts);
        const SysSnapshot s0 = sys.snapshot();
        sys.run(ep.measureInsts);
        std::printf("trace          %s\n", path.c_str());
        std::printf("config         %s\n", toString(cfg).c_str());
        printMetrics(sys.metricsSince(s0));
        return 0;
    }

    const std::string app = args.get("app", "lbm");
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown app '%s' (try: mct_sim list)\n",
                     app.c_str());
        return 2;
    }
    std::printf("app            %s\n", app.c_str());
    std::printf("config         %s\n", toString(cfg).c_str());
    if (args.has("stats")) {
        // Full gem5-style statistics dump instead of the summary.
        SystemParams sp = ep.sys;
        System sys(app, sp, cfg);
        sys.run(ep.warmupInsts + ep.measureInsts);
        dumpStats(sys, std::cout);
        return 0;
    }
    printMetrics(evaluateConfig(app, cfg, ep));
    return 0;
}

int
cmdTrace(const Args &args)
{
    const std::string app = args.get("app", "lbm");
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
        return 2;
    }
    const std::size_t count = static_cast<std::size_t>(
        args.getI("ops", 100 * 1000));
    const std::string out = args.get("out", app + ".trace");
    auto wl = makeWorkload(
        app, static_cast<std::uint64_t>(args.getI("seed", 1)));
    const auto ops = captureTrace(*wl, count);
    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
        return 1;
    }
    TraceWorkload::write(os, ops);
    std::printf("captured %zu operations of %s into %s\n", count,
                app.c_str(), out.c_str());
    return 0;
}

int
cmdMct(const Args &args)
{
    const std::string app = args.get("app", "lbm");
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
        return 2;
    }
    const EvalParams ep = evalFromArgs(args);
    SystemParams sp = ep.sys;
    System sys(app, sp, staticBaselineConfig());
    sys.run(ep.warmupInsts);

    MctParams mp;
    mp.objective.minLifetimeYears = args.getD("target", 8.0);
    const std::string model = args.get("model", "gbt");
    if (model == "gbt")
        mp.predictor = PredictorKind::GradientBoosting;
    else if (model == "qlasso")
        mp.predictor = PredictorKind::QuadraticLasso;
    else {
        std::fprintf(stderr, "--model must be gbt|qlasso\n");
        return 2;
    }
    MctController ctl(sys, mp);
    const SysSnapshot before = sys.snapshot();
    ctl.runFor(static_cast<InstCount>(
        args.getI("insts", 4 * 1000 * 1000)));
    std::printf("app            %s (target %.1f years, %s)\n",
                app.c_str(), mp.objective.minLifetimeYears,
                model.c_str());
    std::printf("decisions      %zu (resamplings %llu, "
                "fallbacks %llu)\n",
                ctl.decisions().size(),
                static_cast<unsigned long long>(ctl.resamplings()),
                static_cast<unsigned long long>(ctl.fallbacks()));
    std::printf("chosen         %s\n",
                toString(ctl.currentConfig()).c_str());
    printMetrics(sys.metricsSince(before));
    return 0;
}

int
cmdSweep(const Args &args)
{
    const std::string app = args.get("app", "lbm");
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
        return 2;
    }
    const std::string spaceName = args.get("space", "noquota");
    const auto space = spaceName == "full" ? enumerateSpace()
                                           : enumerateNoQuotaSpace();
    const EvalParams ep = evalFromArgs(args);
    SweepCache cache(ep, SweepCache::defaultPath());
    std::fprintf(stderr, "sweeping %zu configurations on %s...\n",
                 space.size(), app.c_str());
    const auto metrics = cache.getAll(app, space, true);
    cache.save();

    CsvFile out;
    out.row({"config", "ipc", "lifetime_years", "joules_per_minst"});
    for (std::size_t i = 0; i < space.size(); ++i) {
        out.row({configKey(space[i]), fmt(metrics[i].ipc, 6),
                 fmt(metrics[i].lifetimeYears, 6),
                 fmt(metrics[i].energyJ, 8)});
    }
    const std::string csv = args.get("csv", app + "_sweep.csv");
    if (!out.save(csv)) {
        std::fprintf(stderr, "cannot write %s\n", csv.c_str());
        return 1;
    }
    std::printf("wrote %zu rows to %s\n", space.size(), csv.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.mode == "list")
        return cmdList();
    if (args.mode == "eval")
        return cmdEval(args);
    if (args.mode == "mct")
        return cmdMct(args);
    if (args.mode == "sweep")
        return cmdSweep(args);
    if (args.mode == "trace")
        return cmdTrace(args);
    std::fprintf(stderr,
                 "usage: mct_sim <eval|mct|sweep|trace|list> [flags]\n"
                 "see the header comment of tools/mct_sim.cc\n");
    return 2;
}
