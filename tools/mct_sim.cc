/**
 * @file
 * mct_sim: command-line driver for the simulator and the MCT runtime.
 *
 * Modes:
 *   mct_sim eval --app lbm [config flags]           one configuration
 *   mct_sim mct  --app lbm [--target 8] [--model gbt|qlasso]
 *                                                   the adaptive runtime
 *   mct_sim sweep --app lbm [--space full|noquota] [--csv out.csv]
 *                                                   brute-force sweep
 *   mct_sim trace --app lbm --ops 100000 --out lbm.trace
 *                                                   capture a trace
 *   mct_sim eval --trace lbm.trace [config flags]   replay a trace
 *   mct_sim eval --app lbm --stats                  full stats dump
 *   mct_sim list                                    applications & mixes
 *
 * Config flags for eval:
 *   --fast R --slow R --bank N --eager N --quota Y
 *   --cancel none|slow|both --pause --retention --fastreads
 *   --startgap
 *
 * Common flags: --warmup N --measure N --seed N
 *
 * Telemetry flags (eval and mct modes):
 *   --stats-json FILE    machine-readable stats document (final
 *                        snapshot, periodic deltas, decision and
 *                        health-check history, event counts)
 *   --stats-every N      dump a delta snapshot every N instructions
 *                        into the stats document's "periodic" array
 *   --trace-out FILE     structured event trace as JSONL
 *   --trace-chrome FILE  the same trace in Chrome trace-event format
 *                        (load in chrome://tracing or Perfetto)
 *   --trace-cap N        event ring-buffer capacity (default 65536)
 *   --spans-out FILE     request-lifecycle spans as JSONL (sampled
 *                        per-stage latency attribution)
 *   --spans-chrome FILE  the same spans as Chrome trace-event
 *                        complete events on per-component tracks
 *   --span-sample N      sample every Nth request id (default 64
 *                        when a spans output is requested, else off)
 *   --span-cap N         span ring-buffer capacity (default 16384)
 *
 * Host telemetry (eval and mct modes; nondeterministic by nature, so
 * it lives in its own files and never touches the byte-identical
 * stats/span/provenance surfaces):
 *   --host-profile-out FILE     mct-host-v1 document: sim.mips,
 *                               sim.host.* scalars, periodic samples
 *                               on the --stats-every cadence, and the
 *                               per-stage wall/CPU attribution
 *                               (replay, step, sampling, fit,
 *                               optimize)
 *   --host-profile-chrome FILE  the host stage timeline as Chrome
 *                               trace-event complete events (real
 *                               microseconds)
 *
 * Run manifests (all modes; docs/observability.md):
 *   --manifest-out FILE  mct-manifest-v1 document naming the run
 *                        (mode/app/config, seed, fault plan, run
 *                        fingerprint) and listing every artifact this
 *                        invocation produced with its relative path
 *                        and FNV-1a checksum, so a directory of runs
 *                        is a self-describing corpus for
 *                        `mct_report aggregate`
 *
 * Timelines & alerting (eval and mct modes; both require
 * --stats-every; docs/observability.md):
 *   --timeline-out FILE      mct-timeline-v1 document: per-window
 *                            delta series of the tracked metrics plus
 *                            EWMA/min/max rollups and final alert
 *                            scalars
 *   --timeline-metrics GLOBS comma-separated stat globs to track
 *                            (default "sim.*")
 *   --timeline-cap N         timeline ring capacity in windows
 *                            (default 512)
 *   --alerts FILE            declarative alert rules (see
 *                            docs/observability.md for the grammar);
 *                            rules are evaluated online at every
 *                            --stats-every window
 *   --alerts-out FILE        raised/cleared alert log as JSONL
 *
 * Decision audit (mct mode; docs/observability.md):
 *   --provenance-out FILE     closed decision-provenance records as
 *                             JSONL (predicted vs realized objectives,
 *                             constraints, runner-ups, regret)
 *   --provenance-chrome FILE  the same records as Chrome trace-event
 *                             complete events (decision -> realization)
 *   --provenance-cap N        provenance ring capacity (default 4096)
 *   --audit-every N           feature-attribution snapshot every Nth
 *                             decision (default 1; 0 disables
 *                             attribution, audit errors still accrue)
 *
 * Fault injection (eval, mct and sweep modes; docs/robustness.md):
 *   --faults PLAN        a built-in plan name (drift, degrade,
 *                        counters, garbage, skew, corrupt-cache,
 *                        corrupt-ckpt, storm) or a spec string like
 *                        "latency_drift@500k+1m:mag=3;clock_skew@2m"
 *   --fault-seed N       rng seed for stochastic faults (default 1)
 *
 * Crash-safe checkpoint/restore (eval and mct modes;
 * docs/robustness.md):
 *   --ckpt-out BASE      arm checkpointing into the double-buffered
 *                        slot files BASE.0 / BASE.1 (published via
 *                        temp-file + atomic rename)
 *   --ckpt-every N       checkpoint period in instructions
 *                        (default 1m; boundaries are absolute, so an
 *                        interrupted and an uninterrupted run chunk
 *                        the simulation identically)
 *   --resume             restore the newest valid checkpoint before
 *                        running; corrupt slots are quarantined and
 *                        the previous slot is used instead
 * While armed, SIGTERM/SIGINT finish the current chunk, write a final
 * checkpoint, and exit with status 75 (preempted; no telemetry files
 * are written). A resumed run re-produces the uninterrupted run's
 * stats/spans/provenance surfaces byte for byte.
 *
 * Malformed numeric flag values are fatal errors, never silent zeros.
 * A malformed --faults plan prints the parse error and exits 2.
 */

#include <algorithm>
#include <charconv>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/alerts.hh"
#include "common/atomic_file.hh"
#include "common/csv.hh"
#include "common/fault_plan.hh"
#include "common/instrument.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/manifest.hh"
#include "common/serialize.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "mct/config.hh"
#include "mct/config_space.hh"
#include "mct/controller.hh"
#include "mct/predictors.hh"
#include "memctrl/mellow_config.hh"
#include "nvm/nvm_params.hh"
#include "nvm/start_gap.hh"
#include "sim/checkpoint.hh"
#include "sim/evaluator.hh"
#include "sim/fault_injector.hh"
#include "sim/stats_report.hh"
#include "sim/sweep_cache.hh"
#include "sim/system.hh"
#include "workloads/mixes.hh"
#include "workloads/trace.hh"

namespace
{

using namespace mct;

struct Args
{
    std::string mode;
    std::map<std::string, std::string> kv;
    std::vector<std::string> flags;

    bool has(const std::string &f) const
    {
        for (const auto &x : flags)
            if (x == f)
                return true;
        return kv.count(f) > 0;
    }

    std::string
    get(const std::string &k, const std::string &dflt) const
    {
        const auto it = kv.find(k);
        return it == kv.end() ? dflt : it->second;
    }

    double
    getD(const std::string &k, double dflt) const
    {
        const auto it = kv.find(k);
        if (it == kv.end())
            return dflt;
        const std::string &s = it->second;
        double v = 0.0;
        const auto [end, ec] =
            std::from_chars(s.data(), s.data() + s.size(), v);
        if (ec != std::errc() || end != s.data() + s.size())
            mct_fatal("--", k, " expects a number, got '", s, "'");
        return v;
    }

    long long
    getI(const std::string &k, long long dflt) const
    {
        const auto it = kv.find(k);
        if (it == kv.end())
            return dflt;
        const std::string &s = it->second;
        long long v = 0;
        const auto [end, ec] =
            std::from_chars(s.data(), s.data() + s.size(), v);
        if (ec != std::errc() || end != s.data() + s.size())
            mct_fatal("--", k, " expects an integer, got '", s, "'");
        return v;
    }
};

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc > 1)
        args.mode = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) != 0) {
            std::fprintf(stderr, "unexpected argument '%s'\n",
                         a.c_str());
            std::exit(2);
        }
        a = a.substr(2);
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            args.kv[a] = argv[++i];
        else
            args.flags.push_back(a);
    }
    return args;
}

MellowConfig
configFromArgs(const Args &args)
{
    MellowConfig cfg;
    cfg.fastLatency = args.getD("fast", 1.0);
    if (args.has("slow")) {
        cfg.slowLatency = args.getD("slow", 3.0);
    }
    if (args.has("bank")) {
        cfg.bankAware = true;
        cfg.bankAwareThreshold =
            static_cast<int>(args.getI("bank", 1));
    }
    if (args.has("eager")) {
        cfg.eagerWritebacks = true;
        cfg.eagerThreshold = static_cast<int>(args.getI("eager", 4));
    }
    if (args.has("quota")) {
        cfg.wearQuota = true;
        cfg.wearQuotaTarget = args.getD("quota", 8.0);
    }
    const std::string cancel = args.get("cancel", "none");
    if (cancel == "slow") {
        cfg.slowCancellation = true;
    } else if (cancel == "both") {
        cfg.fastCancellation = true;
        cfg.slowCancellation = true;
    } else if (cancel != "none") {
        std::fprintf(stderr, "--cancel must be none|slow|both\n");
        std::exit(2);
    }
    if (!cfg.usesSlowWrites())
        cfg.slowLatency = cfg.fastLatency;
    cfg.pauseInsteadOfCancel = args.has("pause");
    cfg.shortRetentionWrites = args.has("retention");
    cfg.fastDisturbingReads = args.has("fastreads");
    if (!cfg.valid()) {
        std::fprintf(stderr, "invalid configuration: %s\n",
                     toString(cfg).c_str());
        std::exit(2);
    }
    return cfg;
}

EvalParams
evalFromArgs(const Args &args)
{
    EvalParams ep;
    ep.warmupInsts = static_cast<InstCount>(
        args.getI("warmup", static_cast<long long>(ep.warmupInsts)));
    ep.measureInsts = static_cast<InstCount>(
        args.getI("measure", static_cast<long long>(ep.measureInsts)));
    ep.sys.seed = static_cast<std::uint64_t>(args.getI("seed", 1));
    if (args.has("startgap"))
        ep.sys.nvm.wearLevelMode = WearLevelMode::StartGap;
    return ep;
}

void
printMetrics(const Metrics &m)
{
    std::printf("IPC            %.4f\n", m.ipc);
    std::printf("lifetime       %.3f years\n", m.lifetimeYears);
    std::printf("energy         %.5f J per Minst\n", m.energyJ);
}

/** Telemetry destinations parsed from the common flags. */
struct Telemetry
{
    std::string statsJson;   ///< --stats-json FILE
    std::string traceOut;    ///< --trace-out FILE (JSONL)
    std::string traceChrome; ///< --trace-chrome FILE
    std::string spansOut;    ///< --spans-out FILE (JSONL)
    std::string spansChrome; ///< --spans-chrome FILE
    std::string provOut;     ///< --provenance-out FILE (JSONL)
    std::string provChrome;  ///< --provenance-chrome FILE
    std::string hostOut;     ///< --host-profile-out FILE
    std::string hostChrome;  ///< --host-profile-chrome FILE
    std::string timelineOut; ///< --timeline-out FILE
    std::string alertsOut;   ///< --alerts-out FILE (JSONL)
    std::string manifestOut; ///< --manifest-out FILE
    std::vector<std::string> timelineGlobs; ///< --timeline-metrics
    std::vector<AlertRule> alertRules;      ///< parsed --alerts file
    std::size_t timelineCap = 512;          ///< --timeline-cap N
    InstCount statsEvery = 0;
    std::size_t traceCap = 64 * 1024;
    std::uint64_t spanSample = 0; ///< --span-sample N (0 = off)
    std::size_t spanCap = 16 * 1024;
    std::size_t provCap = 4 * 1024;
    std::uint64_t auditEvery = 1; ///< --audit-every N

    /** Any surface requested at all? */
    bool
    any() const
    {
        return !statsJson.empty() || !traceOut.empty() ||
               !traceChrome.empty() || statsEvery > 0 ||
               wantsSpans() || wantsProvenance() || wantsHost() ||
               wantsTimeline() || wantsAlerts() ||
               !manifestOut.empty();
    }

    /** Should per-window metric deltas be collected into a ring? */
    bool wantsTimeline() const { return !timelineOut.empty(); }

    /** Should alert rules be evaluated at every stats window? */
    bool wantsAlerts() const { return !alertRules.empty(); }

    /** Should the event ring buffer record? */
    bool
    wantsTrace() const
    {
        return !statsJson.empty() || !traceOut.empty() ||
               !traceChrome.empty();
    }

    /** Should request-lifecycle spans be sampled? */
    bool wantsSpans() const { return spanSample > 0; }

    /** Should closed provenance records be kept? */
    bool
    wantsProvenance() const
    {
        return !provOut.empty() || !provChrome.empty();
    }

    /** Should host-side (wall-clock) telemetry be collected? */
    bool
    wantsHost() const
    {
        return !hostOut.empty() || !hostChrome.empty();
    }
};

/** Split a comma-separated glob list, dropping empty fields. */
std::vector<std::string>
splitGlobs(const std::string &spec)
{
    std::vector<std::string> out;
    std::string cur;
    std::istringstream is(spec);
    while (std::getline(is, cur, ','))
        if (!cur.empty())
            out.push_back(cur);
    return out;
}

Telemetry
telemetryFromArgs(const Args &args)
{
    Telemetry t;
    t.statsJson = args.get("stats-json", "");
    t.traceOut = args.get("trace-out", "");
    t.traceChrome = args.get("trace-chrome", "");
    t.statsEvery =
        static_cast<InstCount>(args.getI("stats-every", 0));
    const long long cap = args.getI("trace-cap", 64 * 1024);
    if (cap <= 0)
        mct_fatal("--trace-cap must be positive");
    t.traceCap = static_cast<std::size_t>(cap);
    t.spansOut = args.get("spans-out", "");
    t.spansChrome = args.get("spans-chrome", "");
    const long long sample = args.getI("span-sample", 0);
    if (sample < 0)
        mct_fatal("--span-sample must be non-negative");
    t.spanSample = static_cast<std::uint64_t>(sample);
    const long long scap = args.getI("span-cap", 16 * 1024);
    if (scap <= 0)
        mct_fatal("--span-cap must be positive");
    t.spanCap = static_cast<std::size_t>(scap);
    // A spans output implies sampling at the default period.
    if (t.spanSample == 0 &&
        (!t.spansOut.empty() || !t.spansChrome.empty()))
        t.spanSample = 64;
    t.provOut = args.get("provenance-out", "");
    t.provChrome = args.get("provenance-chrome", "");
    const long long pcap = args.getI("provenance-cap", 4 * 1024);
    if (pcap <= 0)
        mct_fatal("--provenance-cap must be positive");
    t.provCap = static_cast<std::size_t>(pcap);
    const long long audit = args.getI("audit-every", 1);
    if (audit < 0)
        mct_fatal("--audit-every must be non-negative");
    t.auditEvery = static_cast<std::uint64_t>(audit);
    t.hostOut = args.get("host-profile-out", "");
    t.hostChrome = args.get("host-profile-chrome", "");
    t.timelineOut = args.get("timeline-out", "");
    t.timelineGlobs = splitGlobs(args.get("timeline-metrics", "sim.*"));
    if (t.timelineGlobs.empty())
        mct_fatal("--timeline-metrics needs at least one glob");
    const long long tcap = args.getI("timeline-cap", 512);
    if (tcap <= 0)
        mct_fatal("--timeline-cap must be positive");
    t.timelineCap = static_cast<std::size_t>(tcap);
    if (t.timelineOut.empty() &&
        (args.has("timeline-metrics") || args.has("timeline-cap")))
        mct_fatal("--timeline-metrics and --timeline-cap require "
                  "--timeline-out");
    const std::string alertsFile = args.get("alerts", "");
    if (!alertsFile.empty()) {
        std::string err;
        if (!loadAlerts(alertsFile, t.alertRules, err))
            mct_fatal("--alerts: ", err);
    }
    t.alertsOut = args.get("alerts-out", "");
    if (!t.alertsOut.empty() && t.alertRules.empty())
        mct_fatal("--alerts-out requires --alerts");
    t.manifestOut = args.get("manifest-out", "");
    // Both surfaces observe the run at stats-window granularity; with
    // no window cadence there is nothing to observe.
    if ((t.wantsTimeline() || t.wantsAlerts()) && t.statsEvery == 0)
        mct_fatal("--timeline-out and --alerts require --stats-every");
    return t;
}

/**
 * Run in fixed-size chunks so the fault injector (polled at run()
 * boundaries) observes window transitions that would otherwise open
 * and close inside one long run call.
 */
void
runChunked(System &sys, InstCount insts)
{
    constexpr InstCount chunk = 50 * 1000;
    while (insts > 0) {
        const InstCount step = std::min(insts, chunk);
        sys.run(step);
        insts -= step;
    }
}

/** Fault-injection request parsed from --faults / --fault-seed. */
struct FaultArgs
{
    FaultPlan plan;
    std::uint64_t seed = 1;

    bool any() const { return !plan.empty(); }
};

FaultArgs
faultsFromArgs(const Args &args)
{
    FaultArgs f;
    f.seed = static_cast<std::uint64_t>(args.getI("fault-seed", 1));
    const std::string spec = args.get("faults", "");
    if (spec.empty())
        return f;
    const FaultPlanParse parsed = parseFaultPlan(spec);
    if (!parsed.ok) {
        std::fprintf(stderr, "--faults: %s\n", parsed.error.c_str());
        std::fprintf(stderr, "built-in plans:");
        for (const std::string &n : builtinFaultPlanNames())
            std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
        std::exit(2);
    }
    f.plan = parsed.plan;
    return f;
}

/** Human summary of what the injector did and how the run coped. */
void
printFaultSummary(const FaultInjector &inj, const MctController *ctl)
{
    std::printf("faults         %s\n", inj.plan().summary().c_str());
    std::printf("injected       %llu total (",
                static_cast<unsigned long long>(inj.injectedTotal()));
    bool first = true;
    for (std::size_t k = 0; k < numFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        if (inj.injected(kind) == 0)
            continue;
        std::printf("%s%s %llu", first ? "" : ", ", toString(kind),
                    static_cast<unsigned long long>(inj.injected(kind)));
        first = false;
    }
    std::printf("%s)\n", first ? "none" : "");
    if (ctl) {
        std::printf("recovery       quarantined %llu, rejected %llu, "
                    "retries %llu, fallbacks %llu, clamps %llu, "
                    "reengaged %llu\n",
                    static_cast<unsigned long long>(
                        ctl->quarantinedSamples()),
                    static_cast<unsigned long long>(
                        ctl->rejectedPredictions()),
                    static_cast<unsigned long long>(ctl->retryRounds()),
                    static_cast<unsigned long long>(ctl->fallbacks()),
                    static_cast<unsigned long long>(
                        ctl->emergencyClamps()),
                    static_cast<unsigned long long>(
                        ctl->reengagements()));
    }
}

/** One periodic delta record collected during the run. */
struct PeriodicDelta
{
    InstCount inst = 0;
    StatSnapshot delta;
};

/**
 * Drive @p step in chunks of @p t.statsEvery instructions (one chunk
 * of @p total when disabled), capturing a registry delta snapshot per
 * chunk. Without --stats-json the deltas stream to stdout as JSONL so
 * --stats-every is useful on its own.
 */
template <typename StepFn>
std::vector<PeriodicDelta>
runWithPeriodicStats(System &sys, InstCount total, const Telemetry &t,
                     StepFn step)
{
    std::vector<PeriodicDelta> out;
    if (t.statsEvery == 0) {
        step(total);
        return out;
    }
    const InstCount target = sys.retired() + total;
    StatSnapshot prev = sys.statRegistry().snapshot();
    while (sys.retired() < target) {
        step(std::min<InstCount>(t.statsEvery,
                                 target - sys.retired()));
        // Host telemetry refreshes on the same cadence but into its
        // own sample stream, keeping the delta snapshots bit-stable.
        if (HostProfiler *hp = sys.hostProfiler())
            hp->samplePeriodic(
                static_cast<std::uint64_t>(sys.retired()));
        StatSnapshot cur = sys.statRegistry().snapshot();
        PeriodicDelta pd;
        pd.inst = sys.retired();
        pd.delta = StatRegistry::delta(prev, cur);
        prev = std::move(cur);
        // Timeline capture and alert evaluation see the same window
        // delta that the stats document records.
        sys.observeWindow(pd.inst, pd.delta);
        if (t.statsJson.empty()) {
            JsonWriter w(std::cout);
            w.beginObject();
            w.kv("inst", static_cast<std::uint64_t>(pd.inst));
            w.key("delta");
            writeSnapshot(w, pd.delta);
            w.endObject();
            std::cout << '\n';
        } else {
            out.push_back(std::move(pd));
        }
    }
    return out;
}

/** Raised by SIGTERM/SIGINT while checkpointing is armed. */
volatile std::sig_atomic_t gStopRequested = 0;

void
onStopSignal(int)
{
    gStopRequested = 1;
}

/** Arm graceful preemption (only while checkpointing is armed). */
void
installStopHandler()
{
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);
}

/** Exit status of a run preempted by a stop signal (EX_TEMPFAIL). */
constexpr int exitPreempted = 75;

/** Checkpoint/restore request parsed from --ckpt-* / --resume. */
struct CkptArgs
{
    std::string out;     ///< --ckpt-out BASE (slots BASE.0 / BASE.1)
    InstCount every = 0; ///< --ckpt-every N instructions
    bool resume = false; ///< --resume

    bool armed() const { return !out.empty(); }
};

CkptArgs
ckptFromArgs(const Args &args)
{
    CkptArgs c;
    c.out = args.get("ckpt-out", "");
    const long long every = args.getI("ckpt-every", 1000 * 1000);
    if (every <= 0)
        mct_fatal("--ckpt-every must be positive");
    c.every = static_cast<InstCount>(every);
    c.resume = args.has("resume");
    if (c.out.empty() && (c.resume || args.has("ckpt-every")))
        mct_fatal("--resume and --ckpt-every require --ckpt-out");
    return c;
}

/**
 * Driver-side state that must survive a preemption: where the run is
 * relative to its warmup/measure schedule and everything already
 * accumulated for the final stats document.
 */
struct DriverState
{
    bool warmupDone = false;
    SysSnapshot s0;            ///< measure-window base (warmupDone)
    StatSnapshot prev;         ///< periodic-delta baseline
    InstCount lastCapture = 0; ///< inst of the last periodic capture
    std::vector<PeriodicDelta> periodic;

    void
    serialize(Serializer &s) const
    {
        s.putBool(warmupDone);
        s0.serialize(s);
        serializeSnapshot(s, prev);
        s.putU64(lastCapture);
        s.putU64(periodic.size());
        for (const PeriodicDelta &pd : periodic) {
            s.putU64(pd.inst);
            serializeSnapshot(s, pd.delta);
        }
        s.putU64(jsonNonfiniteCount());
    }

    void
    deserialize(Deserializer &d)
    {
        warmupDone = d.getBool();
        s0.deserialize(d);
        prev = deserializeSnapshot(d);
        lastCapture = d.getU64();
        periodic.resize(d.getU64());
        for (PeriodicDelta &pd : periodic) {
            pd.inst = d.getU64();
            pd.delta = deserializeSnapshot(d);
        }
        restoreJsonNonfiniteCount(d.getU64());
    }
};

/**
 * The run identity pinned into every checkpoint. Any flag that shapes
 * simulated behavior or the telemetry ring geometry is included:
 * resuming under a different value would silently diverge from the
 * uninterrupted run, so such resumes are refused up front.
 */
std::string
runFingerprint(const std::string &mode, const std::string &app,
               const std::string &configId, const EvalParams &ep,
               InstCount measureTotal, const Telemetry &t,
               const Args &args, InstCount ckptEvery)
{
    std::ostringstream f;
    f << "mct-ckpt-fp-v2"
      << ";mode=" << mode << ";app=" << app << ";config=" << configId
      << ";seed=" << ep.sys.seed << ";warmup=" << ep.warmupInsts
      << ";measure=" << measureTotal
      << ";stats-every=" << t.statsEvery
      << ";trace=" << (t.wantsTrace() ? 1 : 0)
      << ";trace-cap=" << t.traceCap
      << ";span-sample=" << t.spanSample << ";span-cap=" << t.spanCap
      << ";prov=" << (t.wantsProvenance() ? 1 : 0)
      << ";prov-cap=" << t.provCap
      << ";audit-every=" << t.auditEvery
      << ";ckpt-every=" << ckptEvery
      << ";timeline=" << (t.wantsTimeline() ? 1 : 0)
      << ";timeline-cap=" << t.timelineCap;
    f << ";timeline-metrics=";
    for (const std::string &g : t.timelineGlobs)
        f << g << ',';
    f << ";alerts=" << canonicalAlertRules(t.alertRules)
      << ";faults=" << args.get("faults", "")
      << ";fault-seed=" << args.getI("fault-seed", 1)
      << ";startgap=" << (args.has("startgap") ? 1 : 0);
    return f.str();
}

/**
 * One armed checkpoint schedule around a run. Boundaries live at
 * absolute multiples of the period in retired-instruction space, so
 * an uninterrupted run and a killed-then-resumed run chunk the
 * simulation identically — the foundation of byte-identical resume.
 */
class CkptSession
{
  public:
    CkptSession(CheckpointStore &store, std::string fingerprint,
                InstCount every, System &sys, DriverState &state)
        : store_(store), fp(std::move(fingerprint)), every_(every),
          sys_(sys), ds(state)
    {}

    void attachController(const MctController *c) { ctl = c; }
    void attachInjector(const FaultInjector *f) { inj = f; }

    /** First checkpoint boundary strictly after @p inst. */
    InstCount
    nextBoundary(InstCount inst) const
    {
        return (inst / every_ + 1) * every_;
    }

    /** Serialize everything live and publish one checkpoint. */
    bool
    save() const
    {
        Serializer s;
        s.putBool(ctl != nullptr);
        sys_.serialize(s);
        if (ctl)
            ctl->serialize(s);
        ds.serialize(s);
        s.putBool(inj != nullptr);
        if (inj)
            inj->serialize(s);
        return store_.save(fp, s.data());
    }

    const std::string &fingerprint() const { return fp; }

  private:
    CheckpointStore &store_;
    std::string fp;
    InstCount every_;
    System &sys_;
    DriverState &ds;
    const MctController *ctl = nullptr;
    const FaultInjector *inj = nullptr;
};

/**
 * Run to the absolute instruction @p target in checkpoint-bounded
 * chunks. Returns false when a stop signal preempted the stretch (the
 * caller writes the final checkpoint and exits).
 */
template <typename StepFn>
bool
runArmedTo(System &sys, InstCount target, const CkptSession &ck,
           StepFn step)
{
    while (sys.retired() < target && !gStopRequested) {
        const InstCount ckptAt = ck.nextBoundary(sys.retired());
        step(std::min(target, ckptAt) - sys.retired());
        if (sys.retired() >= ckptAt)
            ck.save();
    }
    return gStopRequested == 0;
}

/**
 * The measure loop under an armed checkpoint schedule: chunk to the
 * next stats or checkpoint boundary (whichever is closer), capturing
 * periodic deltas with the same cadence and content as
 * runWithPeriodicStats. Returns false on preemption.
 */
template <typename StepFn>
bool
runMeasureArmed(System &sys, InstCount target, const Telemetry &t,
                const CkptSession &ck, DriverState &ds, StepFn step)
{
    while (sys.retired() < target && !gStopRequested) {
        InstCount stop = target;
        if (t.statsEvery > 0)
            stop = std::min(stop, ds.lastCapture + t.statsEvery);
        const InstCount ckptAt = ck.nextBoundary(sys.retired());
        stop = std::min(stop, ckptAt);
        step(stop - sys.retired());
        const bool capture =
            t.statsEvery > 0 &&
            (sys.retired() >= ds.lastCapture + t.statsEvery ||
             sys.retired() >= target);
        if (capture) {
            if (HostProfiler *hp = sys.hostProfiler())
                hp->samplePeriodic(
                    static_cast<std::uint64_t>(sys.retired()));
            StatSnapshot cur = sys.statRegistry().snapshot();
            PeriodicDelta pd;
            pd.inst = sys.retired();
            pd.delta = StatRegistry::delta(ds.prev, cur);
            ds.prev = std::move(cur);
            ds.lastCapture = pd.inst;
            // Same hook as the unarmed loop: window content and order
            // are identical, so timeline/alert state (and thus their
            // serialized checkpoints) replay byte for byte.
            sys.observeWindow(pd.inst, pd.delta);
            if (t.statsJson.empty()) {
                JsonWriter w(std::cout);
                w.beginObject();
                w.kv("inst", static_cast<std::uint64_t>(pd.inst));
                w.key("delta");
                writeSnapshot(w, pd.delta);
                w.endObject();
                std::cout << '\n';
            } else {
                ds.periodic.push_back(std::move(pd));
            }
        }
        if (sys.retired() >= ckptAt)
            ck.save();
    }
    return gStopRequested == 0;
}

/** Publish the final checkpoint of a preempted run and exit 75. */
int
preempted(const CkptSession &ck, const System &sys)
{
    ck.save();
    std::printf("checkpoint     preempted at inst %llu\n",
                static_cast<unsigned long long>(sys.retired()));
    return exitPreempted;
}

/**
 * Load the newest valid checkpoint and overlay it onto the freshly
 * constructed system. When the payload carries controller state,
 * @p makeCtl constructs the controller *before* the system overlay so
 * its construction side effects (baseline config, trace events) are
 * overwritten exactly as they were in the uninterrupted run. Returns
 * the constructed controller (null in eval mode).
 */
MctController *
restoreFromCheckpoint(CheckpointStore &store, const CkptSession &sess,
                      System &sys, DriverState &ds, FaultInjector *inj,
                      const std::function<MctController *()> &makeCtl)
{
    if (inj && inj->wantsCkptCorruption() &&
        !store.newestSlot().empty()) {
        // Chaos drill: scramble the newest slot before the load so
        // the checksum-reject -> fall-back-to-previous path runs for
        // real (mirrors the sweep-cache corruption drill).
        inj->corruptCheckpointFile(store.newestSlot());
    }
    const CheckpointLoadResult r = store.load();
    if (!r.ok)
        mct_fatal("--resume: ", r.error);
    if (r.fingerprint != sess.fingerprint()) {
        mct_fatal("--resume: checkpoint was written by a different "
                  "run\n  saved:   ", r.fingerprint,
                  "\n  current: ", sess.fingerprint());
    }
    Deserializer d(r.payload);
    const bool hasCtl = d.getBool();
    if (hasCtl && !makeCtl)
        mct_fatal("--resume: checkpoint carries controller state "
                  "(was it written by mct mode?)");
    MctController *ctl = hasCtl ? makeCtl() : nullptr;
    sys.deserialize(d);
    if (ctl)
        ctl->deserialize(d);
    ds.deserialize(d);
    const bool hasInj = d.getBool();
    if (hasInj) {
        if (!inj)
            mct_fatal("--resume: checkpoint carries fault-injector "
                      "state but no --faults plan was given");
        inj->deserialize(d);
    }
    if (!d.atEnd())
        mct_panic("checkpoint payload has trailing bytes");
    store.noteResume();
    if (r.corruptRejected) {
        sys.eventTrace().record(
            TraceEventType::RecoveryAction,
            static_cast<double>(RecoveryStep::CkptQuarantine), 0.0,
            static_cast<double>(store.corruptLoads()));
    }
    std::printf("checkpoint     resumed seq %llu from %s at inst "
                "%llu%s\n",
                static_cast<unsigned long long>(r.sequence),
                r.slotFile.c_str(),
                static_cast<unsigned long long>(sys.retired()),
                r.corruptRejected ? " (corrupt slot quarantined)"
                                  : "");
    return ctl;
}

/** Human summary of checkpoint activity (host-side; not in stats). */
void
printCkptSummary(const CheckpointStore &store)
{
    std::printf("ckpt           writes %llu, corrupt_loads %llu, "
                "resumes %llu\n",
                static_cast<unsigned long long>(store.writes()),
                static_cast<unsigned long long>(store.corruptLoads()),
                static_cast<unsigned long long>(store.resumes()));
}

/** Run identity recorded into the manifest (--manifest-out). */
struct RunIdentity
{
    std::uint64_t seed = 0;
    std::string faultPlan;   ///< --faults spec ("" when none)
    std::string fingerprint; ///< runFingerprint() of this invocation
};

/**
 * Publish the mct-manifest-v1 document naming this run and every
 * artifact it produced. Artifacts are re-read from disk for their
 * checksums, so the manifest attests to the published bytes, not to
 * what the writer intended.
 */
bool
writeRunManifest(const std::string &path, const std::string &mode,
                 const std::string &app, const std::string &config,
                 const RunIdentity &rid,
                 std::vector<ManifestArtifact> artifacts)
{
    RunManifest m;
    m.runId = manifestRunId(rid.fingerprint);
    m.mode = mode;
    m.app = app;
    m.config = config;
    m.seed = rid.seed;
    m.faultPlan = rid.faultPlan;
    m.fingerprint = rid.fingerprint;
    for (ManifestArtifact &a : artifacts) {
        std::uint64_t sum = 0, bytes = 0;
        if (!checksumFile(a.path, sum, bytes)) {
            std::fprintf(stderr, "cannot checksum '%s'\n",
                         a.path.c_str());
            return false;
        }
        a.checksum = sum;
        a.bytes = bytes;
        a.path = manifestRelative(path, a.path);
        m.artifacts.push_back(std::move(a));
    }
    AtomicFile f(path);
    writeManifestJson(f.stream(), m);
    if (!f.commit()) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return false;
    }
    std::printf("manifest-out   %s (%zu artifacts, run %s)\n",
                path.c_str(), m.artifacts.size(), m.runId.c_str());
    return true;
}

/** Write the machine-readable stats document (--stats-json). */
bool
writeStatsDoc(const Telemetry &t, const std::string &mode,
              const std::string &app, const System &sys,
              const MctController *ctl,
              const std::vector<PeriodicDelta> &periodic)
{
    AtomicFile file(t.statsJson);
    std::ostream &os = file.stream();
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "mct-stats-v1");
    w.kv("mode", mode);
    w.kv("app", app);
    w.kv("config", configKey(sys.config()));
    const StatSnapshot final_ = sys.statRegistry().snapshot();
    w.key("final");
    writeSnapshot(w, final_);
    // Scalar kinds, so cross-run aggregation can tell counters (which
    // sum across a fleet) from gauges (which average). Histograms are
    // self-describing objects and need no entry.
    w.key("kinds").beginObject();
    for (const auto &[path, v] : final_) {
        if (v.kind == StatKind::Counter)
            w.kv(path, "counter");
        else if (v.kind == StatKind::Gauge)
            w.kv(path, "gauge");
    }
    w.endObject();
    w.key("periodic").beginArray();
    for (const PeriodicDelta &pd : periodic) {
        w.beginObject();
        w.kv("inst", static_cast<std::uint64_t>(pd.inst));
        w.key("delta");
        writeSnapshot(w, pd.delta);
        w.endObject();
    }
    w.endArray();
    if (ctl) {
        w.key("decisions").beginArray();
        for (const Decision &d : ctl->decisions()) {
            w.beginObject();
            w.kv("inst",
                 static_cast<std::uint64_t>(d.atInstruction));
            w.kv("config", configKey(d.config));
            w.kv("feasible", d.feasible);
            w.kv("pred_ipc", d.predicted.ipc);
            w.kv("pred_lifetime_years", d.predicted.lifetimeYears);
            w.kv("pred_energy_j", d.predicted.energyJ);
            w.endObject();
        }
        w.endArray();
        w.key("health_checks").beginArray();
        for (const HealthRecord &h : ctl->healthHistory()) {
            w.beginObject();
            w.kv("inst",
                 static_cast<std::uint64_t>(h.atInstruction));
            w.kv("chosen_ipc", h.chosenIpc);
            w.kv("baseline_ipc", h.baselineIpc);
            w.kv("fell_back", h.fellBack);
            w.endObject();
        }
        w.endArray();
    }
    const EventTrace &trace = sys.eventTrace();
    w.key("events").beginObject();
    const auto counts = trace.countsByType();
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i])
            w.kv(toString(static_cast<TraceEventType>(i)), counts[i]);
    }
    w.endObject();
    w.kv("events_recorded", trace.recorded());
    w.kv("events_dropped", trace.dropped());
    w.endObject();
    os << '\n';
    return file.commit();
}

/** Write all requested telemetry surfaces; 0 on success. */
int
finishTelemetry(const Telemetry &t, const std::string &mode,
                const std::string &app, const System &sys,
                const MctController *ctl,
                const std::vector<PeriodicDelta> &periodic,
                const RunIdentity &rid)
{
    std::vector<ManifestArtifact> artifacts;
    const auto note = [&artifacts](const char *kind,
                                   const char *schema,
                                   const std::string &path) {
        ManifestArtifact a;
        a.kind = kind;
        a.schema = schema;
        a.path = path;
        artifacts.push_back(std::move(a));
    };
    if (!t.statsJson.empty()) {
        if (!writeStatsDoc(t, mode, app, sys, ctl, periodic)) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         t.statsJson.c_str());
            return 1;
        }
        std::printf("stats-json     %s\n", t.statsJson.c_str());
        note("stats", "mct-stats-v1", t.statsJson);
    }
    const EventTrace &trace = sys.eventTrace();
    if (!t.traceOut.empty()) {
        AtomicFile f(t.traceOut);
        trace.writeJsonl(f.stream());
        if (!f.commit()) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         t.traceOut.c_str());
            return 1;
        }
        std::printf("trace-out      %s (%llu events, %llu dropped)\n",
                    t.traceOut.c_str(),
                    static_cast<unsigned long long>(trace.size()),
                    static_cast<unsigned long long>(trace.dropped()));
        note("trace", "", t.traceOut);
    }
    if (!t.traceChrome.empty()) {
        AtomicFile f(t.traceChrome);
        trace.writeChromeTrace(f.stream());
        if (!f.commit()) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         t.traceChrome.c_str());
            return 1;
        }
        std::printf("trace-chrome   %s\n", t.traceChrome.c_str());
        note("trace_chrome", "", t.traceChrome);
    }
    const SpanTrace &spans = sys.spanTrace();
    if (!t.spansOut.empty()) {
        AtomicFile f(t.spansOut);
        spans.writeJsonl(f.stream());
        if (!f.commit()) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         t.spansOut.c_str());
            return 1;
        }
        std::printf("spans-out      %s (%llu spans, %llu dropped)\n",
                    t.spansOut.c_str(),
                    static_cast<unsigned long long>(spans.size()),
                    static_cast<unsigned long long>(spans.dropped()));
        note("spans", "", t.spansOut);
    }
    if (!t.spansChrome.empty()) {
        AtomicFile f(t.spansChrome);
        spans.writeChromeTrace(f.stream());
        if (!f.commit()) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         t.spansChrome.c_str());
            return 1;
        }
        std::printf("spans-chrome   %s\n", t.spansChrome.c_str());
        note("spans_chrome", "", t.spansChrome);
    }
    const ProvenanceTrace &prov = sys.provenanceTrace();
    if (!t.provOut.empty()) {
        AtomicFile f(t.provOut);
        prov.writeJsonl(f.stream());
        if (!f.commit()) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         t.provOut.c_str());
            return 1;
        }
        std::printf("provenance-out %s (%llu records, %llu dropped)\n",
                    t.provOut.c_str(),
                    static_cast<unsigned long long>(prov.size()),
                    static_cast<unsigned long long>(prov.dropped()));
        note("provenance", "", t.provOut);
    }
    if (!t.provChrome.empty()) {
        AtomicFile f(t.provChrome);
        prov.writeChromeTrace(f.stream());
        if (!f.commit()) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         t.provChrome.c_str());
            return 1;
        }
        std::printf("provenance-chrome %s\n", t.provChrome.c_str());
        note("provenance_chrome", "", t.provChrome);
    }
    if (!t.timelineOut.empty()) {
        AtomicFile f(t.timelineOut);
        std::map<std::string, double> extra;
        if (sys.alerts().enabled())
            sys.alerts().appendFinal(extra);
        sys.timeline().writeJson(f.stream(), mode, app,
                                 configKey(sys.config()), extra);
        if (!f.commit()) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         t.timelineOut.c_str());
            return 1;
        }
        std::printf("timeline-out   %s (%llu windows, %llu dropped)\n",
                    t.timelineOut.c_str(),
                    static_cast<unsigned long long>(
                        sys.timeline().recorded()),
                    static_cast<unsigned long long>(
                        sys.timeline().dropped()));
        note("timeline", "mct-timeline-v1", t.timelineOut);
    }
    if (!t.alertsOut.empty()) {
        AtomicFile f(t.alertsOut);
        sys.alerts().writeJsonl(f.stream());
        if (!f.commit()) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         t.alertsOut.c_str());
            return 1;
        }
        std::printf("alerts-out     %s (%llu raised, %llu cleared)\n",
                    t.alertsOut.c_str(),
                    static_cast<unsigned long long>(
                        sys.alerts().raised()),
                    static_cast<unsigned long long>(
                        sys.alerts().cleared()));
        note("alerts", "", t.alertsOut);
    }
    if (HostProfiler *hp = sys.hostProfiler()) {
        hp->sampleMemory(); // end-of-run RSS / high-water refresh
        if (!t.hostOut.empty()) {
            AtomicFile f(t.hostOut);
            hp->writeJson(f.stream(), mode, app,
                          configKey(sys.config()));
            if (!f.commit()) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             t.hostOut.c_str());
                return 1;
            }
            std::printf("host-profile   %s (%.2f mips, rss %.0f kB)\n",
                        t.hostOut.c_str(), hp->mips(),
                        hp->rssHighWaterKb());
            note("host", "mct-host-v1", t.hostOut);
        }
        if (!t.hostChrome.empty()) {
            AtomicFile f(t.hostChrome);
            hp->writeChromeTrace(f.stream());
            if (!f.commit()) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             t.hostChrome.c_str());
                return 1;
            }
            std::printf("host-chrome    %s\n", t.hostChrome.c_str());
            note("host_chrome", "", t.hostChrome);
        }
    }
    if (!t.manifestOut.empty() &&
        !writeRunManifest(t.manifestOut, mode, app,
                          configKey(sys.config()), rid,
                          std::move(artifacts)))
        return 1;
    return 0;
}

int
cmdList()
{
    std::printf("applications:\n");
    for (const auto &name : workloadNames())
        std::printf("  %s\n", name.c_str());
    std::printf("mixes (Table 11):\n");
    for (const auto &mix : multiProgramMixes()) {
        std::printf("  %s:", mix.name.c_str());
        for (const auto &a : mix.apps)
            std::printf(" %s", a.c_str());
        std::printf("\n");
    }
    return 0;
}

int
cmdEval(const Args &args)
{
    const MellowConfig cfg = configFromArgs(args);
    const EvalParams ep = evalFromArgs(args);
    const CkptArgs ck = ckptFromArgs(args);
    if (ck.armed() && (args.has("trace") || args.has("stats")))
        mct_fatal("--ckpt-out is not supported with --trace replay "
                  "or --stats");

    // --trace FILE replays a recorded trace instead of a model.
    if (args.has("trace")) {
        const std::string path = args.get("trace", "");
        auto wl = TraceWorkload::fromFile(
            path, static_cast<unsigned>(args.getI("mlp", 16)));
        System sys(std::move(wl), ep.sys, cfg);
        sys.run(ep.warmupInsts);
        const SysSnapshot s0 = sys.snapshot();
        sys.run(ep.measureInsts);
        std::printf("trace          %s\n", path.c_str());
        std::printf("config         %s\n", toString(cfg).c_str());
        printMetrics(sys.metricsSince(s0));
        return 0;
    }

    const std::string app = args.get("app", "lbm");
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown app '%s' (try: mct_sim list)\n",
                     app.c_str());
        return 2;
    }
    std::printf("app            %s\n", app.c_str());
    std::printf("config         %s\n", toString(cfg).c_str());
    if (args.has("stats")) {
        // Full gem5-style statistics dump instead of the summary.
        SystemParams sp = ep.sys;
        System sys(app, sp, cfg);
        sys.run(ep.warmupInsts + ep.measureInsts);
        dumpStats(sys, std::cout);
        return 0;
    }
    const Telemetry tel = telemetryFromArgs(args);
    const FaultArgs faults = faultsFromArgs(args);
    if (tel.any() || faults.any() || ck.armed()) {
        // Faults need a live System to inject into, so a fault plan
        // (or an armed checkpoint schedule) forces the instrumented
        // path even without telemetry flags.
        SystemParams sp = ep.sys;
        System sys(app, sp, cfg);
        FaultInjector inj(faults.plan, faults.seed);
        if (faults.any())
            sys.attachFaultInjector(&inj);
        if (tel.wantsTrace())
            sys.eventTrace().enable(tel.traceCap);
        if (tel.wantsSpans())
            sys.enableSpans(tel.spanSample, tel.spanCap);
        if (tel.wantsTimeline())
            sys.enableTimeline(tel.timelineGlobs, tel.timelineCap);
        if (tel.wantsAlerts())
            sys.enableAlerts(tel.alertRules);
        HostProfiler hostProf;
        if (tel.wantsHost()) {
            hostProf.enable();
            sys.attachHostProfiler(&hostProf);
        }
        const auto step = [&](InstCount n) {
            if (faults.any())
                runChunked(sys, n);
            else
                sys.run(n);
        };
        const RunIdentity rid{
            ep.sys.seed, args.get("faults", ""),
            runFingerprint("eval", app, configKey(cfg), ep,
                           ep.measureInsts, tel, args, ck.every)};
        if (ck.armed()) {
            CheckpointStore store(ck.out);
            store.registerStats(sys.statRegistry());
            DriverState ds;
            CkptSession sess(store, rid.fingerprint, ck.every, sys,
                             ds);
            if (faults.any())
                sess.attachInjector(&inj);
            installStopHandler();
            if (ck.resume)
                restoreFromCheckpoint(store, sess, sys, ds,
                                      faults.any() ? &inj : nullptr,
                                      nullptr);
            if (!ds.warmupDone) {
                bool finished = false;
                {
                    HostProfiler::Scope replay(sys.hostProfiler(),
                                               "replay");
                    finished = runArmedTo(sys, ep.warmupInsts, sess,
                                          step);
                }
                if (!finished)
                    return preempted(sess, sys);
                ds.warmupDone = true;
                ds.s0 = sys.snapshot();
                ds.prev = sys.statRegistry().snapshot();
                ds.lastCapture = sys.retired();
            }
            if (!runMeasureArmed(sys,
                                 ds.s0.instructions + ep.measureInsts,
                                 tel, sess, ds, step))
                return preempted(sess, sys);
            printMetrics(sys.metricsSince(ds.s0));
            if (faults.any())
                printFaultSummary(inj, nullptr);
            printCkptSummary(store);
            return finishTelemetry(tel, "eval", app, sys, nullptr,
                                   ds.periodic, rid);
        }
        {
            HostProfiler::Scope replay(sys.hostProfiler(), "replay");
            if (faults.any())
                runChunked(sys, ep.warmupInsts);
            else
                sys.run(ep.warmupInsts);
        }
        const SysSnapshot s0 = sys.snapshot();
        const auto periodic =
            runWithPeriodicStats(sys, ep.measureInsts, tel, step);
        printMetrics(sys.metricsSince(s0));
        if (faults.any())
            printFaultSummary(inj, nullptr);
        return finishTelemetry(tel, "eval", app, sys, nullptr,
                               periodic, rid);
    }
    printMetrics(evaluateConfig(app, cfg, ep));
    return 0;
}

int
cmdTrace(const Args &args)
{
    const std::string app = args.get("app", "lbm");
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
        return 2;
    }
    const std::size_t count = static_cast<std::size_t>(
        args.getI("ops", 100 * 1000));
    const std::string out = args.get("out", app + ".trace");
    auto wl = makeWorkload(
        app, static_cast<std::uint64_t>(args.getI("seed", 1)));
    const auto ops = captureTrace(*wl, count);
    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
        return 1;
    }
    TraceWorkload::write(os, ops);
    os.close();
    std::printf("captured %zu operations of %s into %s\n", count,
                app.c_str(), out.c_str());
    const std::string manifestOut = args.get("manifest-out", "");
    if (!manifestOut.empty()) {
        std::ostringstream fp;
        fp << "mct-trace-fp-v1;app=" << app << ";ops=" << count
           << ";seed=" << args.getI("seed", 1);
        const RunIdentity rid{
            static_cast<std::uint64_t>(args.getI("seed", 1)), "",
            fp.str()};
        ManifestArtifact a;
        a.kind = "trace_capture";
        a.path = out;
        if (!writeRunManifest(manifestOut, "trace", app, "", rid,
                              {std::move(a)}))
            return 1;
    }
    return 0;
}

int
cmdMct(const Args &args)
{
    const std::string app = args.get("app", "lbm");
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
        return 2;
    }
    const EvalParams ep = evalFromArgs(args);
    const Telemetry tel = telemetryFromArgs(args);
    const FaultArgs faults = faultsFromArgs(args);
    const CkptArgs ck = ckptFromArgs(args);
    const InstCount total =
        static_cast<InstCount>(args.getI("insts", 4 * 1000 * 1000));

    MctParams mp;
    mp.objective.minLifetimeYears = args.getD("target", 8.0);
    mp.auditEvery = tel.auditEvery;
    const std::string model = args.get("model", "gbt");
    if (model == "gbt")
        mp.predictor = PredictorKind::GradientBoosting;
    else if (model == "qlasso")
        mp.predictor = PredictorKind::QuadraticLasso;
    else {
        std::fprintf(stderr, "--model must be gbt|qlasso\n");
        return 2;
    }

    SystemParams sp = ep.sys;
    System sys(app, sp, staticBaselineConfig());
    FaultInjector inj(faults.plan, faults.seed);
    if (faults.any())
        sys.attachFaultInjector(&inj);
    if (tel.wantsTrace())
        sys.eventTrace().enable(tel.traceCap);
    if (tel.wantsSpans())
        sys.enableSpans(tel.spanSample, tel.spanCap);
    if (tel.wantsProvenance())
        sys.provenanceTrace().enable(tel.provCap);
    if (tel.wantsTimeline())
        sys.enableTimeline(tel.timelineGlobs, tel.timelineCap);
    if (tel.wantsAlerts())
        sys.enableAlerts(tel.alertRules);
    HostProfiler hostProf;
    if (tel.wantsHost()) {
        hostProf.enable();
        sys.attachHostProfiler(&hostProf);
    }

    const std::string configId =
        model + ":" + std::to_string(mp.objective.minLifetimeYears);
    const RunIdentity rid{ep.sys.seed, args.get("faults", ""),
                          runFingerprint("mct", app, configId, ep,
                                         total, tel, args, ck.every)};
    if (ck.armed()) {
        CheckpointStore store(ck.out);
        store.registerStats(sys.statRegistry());
        DriverState ds;
        CkptSession sess(store, rid.fingerprint, ck.every, sys, ds);
        if (faults.any())
            sess.attachInjector(&inj);
        installStopHandler();
        std::unique_ptr<MctController> ctl;
        if (ck.resume) {
            restoreFromCheckpoint(
                store, sess, sys, ds,
                faults.any() ? &inj : nullptr, [&] {
                    ctl = std::make_unique<MctController>(sys, mp);
                    return ctl.get();
                });
            if (ctl)
                sess.attachController(ctl.get());
        }
        if (!ds.warmupDone) {
            bool finished = false;
            {
                HostProfiler::Scope replay(sys.hostProfiler(),
                                           "replay");
                finished = runArmedTo(sys, ep.warmupInsts, sess,
                                      [&](InstCount n) { sys.run(n); });
            }
            if (!finished)
                return preempted(sess, sys);
            ctl = std::make_unique<MctController>(sys, mp);
            sess.attachController(ctl.get());
            ds.warmupDone = true;
            ds.s0 = sys.snapshot();
            ds.prev = sys.statRegistry().snapshot();
            ds.lastCapture = sys.retired();
        }
        // Close the observe -> react loop: a critical alert climbs
        // the controller's health-check ladder. Alerts only evaluate
        // at measure-window boundaries, so wiring after construction
        // (and after any resume overlay) cannot miss a firing.
        sys.alerts().setEscalation(
            [&ctl](const AlertRule &, const std::string &) {
                ctl->noteCriticalAlert();
            });
        if (!runMeasureArmed(sys, ds.s0.instructions + total, tel,
                             sess, ds,
                             [&](InstCount n) { ctl->runFor(n); }))
            return preempted(sess, sys);
        // A record opened by the final decision has no realization
        // window left; count it dropped before stats are read.
        ctl->finalizeAudit();
        std::printf("app            %s (target %.1f years, %s)\n",
                    app.c_str(), mp.objective.minLifetimeYears,
                    model.c_str());
        std::printf("decisions      %zu (resamplings %llu, "
                    "fallbacks %llu)\n",
                    ctl->decisions().size(),
                    static_cast<unsigned long long>(
                        ctl->resamplings()),
                    static_cast<unsigned long long>(ctl->fallbacks()));
        std::printf("audit          %llu closed, %llu dropped, "
                    "regret %.4f\n",
                    static_cast<unsigned long long>(ctl->auditClosed()),
                    static_cast<unsigned long long>(
                        ctl->auditDropped()),
                    ctl->cumulativeRegret());
        std::printf("chosen         %s\n",
                    toString(ctl->currentConfig()).c_str());
        printMetrics(sys.metricsSince(ds.s0));
        if (faults.any())
            printFaultSummary(inj, ctl.get());
        printCkptSummary(store);
        if (tel.any())
            return finishTelemetry(tel, "mct", app, sys, ctl.get(),
                                   ds.periodic, rid);
        return 0;
    }

    {
        HostProfiler::Scope replay(sys.hostProfiler(), "replay");
        sys.run(ep.warmupInsts);
    }
    MctController ctl(sys, mp);
    sys.alerts().setEscalation(
        [&ctl](const AlertRule &, const std::string &) {
            ctl.noteCriticalAlert();
        });
    const SysSnapshot before = sys.snapshot();
    const auto periodic = runWithPeriodicStats(
        sys, total, tel, [&](InstCount n) { ctl.runFor(n); });
    // A record opened by the final decision has no realization window
    // left; count it dropped before any stats or traces are read.
    ctl.finalizeAudit();
    std::printf("app            %s (target %.1f years, %s)\n",
                app.c_str(), mp.objective.minLifetimeYears,
                model.c_str());
    std::printf("decisions      %zu (resamplings %llu, "
                "fallbacks %llu)\n",
                ctl.decisions().size(),
                static_cast<unsigned long long>(ctl.resamplings()),
                static_cast<unsigned long long>(ctl.fallbacks()));
    std::printf("audit          %llu closed, %llu dropped, "
                "regret %.4f\n",
                static_cast<unsigned long long>(ctl.auditClosed()),
                static_cast<unsigned long long>(ctl.auditDropped()),
                ctl.cumulativeRegret());
    std::printf("chosen         %s\n",
                toString(ctl.currentConfig()).c_str());
    printMetrics(sys.metricsSince(before));
    if (faults.any())
        printFaultSummary(inj, &ctl);
    if (tel.any())
        return finishTelemetry(tel, "mct", app, sys, &ctl, periodic,
                               rid);
    return 0;
}

int
cmdSweep(const Args &args)
{
    const std::string app = args.get("app", "lbm");
    if (!isWorkloadName(app)) {
        std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
        return 2;
    }
    const std::string spaceName = args.get("space", "noquota");
    const auto space = spaceName == "full" ? enumerateSpace()
                                           : enumerateNoQuotaSpace();
    const EvalParams ep = evalFromArgs(args);
    const FaultArgs faults = faultsFromArgs(args);
    FaultInjector inj(faults.plan, faults.seed);
    if (inj.wantsSweepCorruption()) {
        // Chaos drill: scramble the persisted cache before the load so
        // the recover-and-recompute path runs under real conditions.
        inj.corruptCsvFile(SweepCache::defaultPath());
    }
    SweepCache cache(ep, SweepCache::defaultPath());
    if (faults.any() && cache.recoveredLoads() > 0) {
        std::fprintf(stderr,
                     "sweep cache: recovered from %zu corrupt row(s)\n",
                     cache.recoveredLoads());
    }
    std::fprintf(stderr, "sweeping %zu configurations on %s...\n",
                 space.size(), app.c_str());
    // Sweep progress arrives via mct_inform; make it visible for the
    // duration of the long-running part.
    const LogLevel prevLevel = logLevel();
    if (prevLevel < LogLevel::Inform)
        setLogLevel(LogLevel::Inform);
    const auto metrics = cache.getAll(app, space, true);
    setLogLevel(prevLevel);
    cache.save();

    CsvFile out;
    out.row({"config", "ipc", "lifetime_years", "joules_per_minst"});
    for (std::size_t i = 0; i < space.size(); ++i) {
        out.row({configKey(space[i]), fmt(metrics[i].ipc, 6),
                 fmt(metrics[i].lifetimeYears, 6),
                 fmt(metrics[i].energyJ, 8)});
    }
    const std::string csv = args.get("csv", app + "_sweep.csv");
    if (!out.save(csv)) {
        std::fprintf(stderr, "cannot write %s\n", csv.c_str());
        return 1;
    }
    std::printf("wrote %zu rows to %s\n", space.size(), csv.c_str());
    const std::string manifestOut = args.get("manifest-out", "");
    if (!manifestOut.empty()) {
        std::ostringstream fp;
        fp << "mct-sweep-fp-v1;app=" << app << ";space=" << spaceName
           << ";seed=" << ep.sys.seed << ";warmup=" << ep.warmupInsts
           << ";measure=" << ep.measureInsts
           << ";faults=" << args.get("faults", "");
        const RunIdentity rid{ep.sys.seed, args.get("faults", ""),
                              fp.str()};
        ManifestArtifact a;
        a.kind = "sweep_csv";
        a.path = csv;
        if (!writeRunManifest(manifestOut, "sweep", app, spaceName,
                              rid, {std::move(a)}))
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    if (args.mode == "list")
        return cmdList();
    if (args.mode == "eval")
        return cmdEval(args);
    if (args.mode == "mct")
        return cmdMct(args);
    if (args.mode == "sweep")
        return cmdSweep(args);
    if (args.mode == "trace")
        return cmdTrace(args);
    std::fprintf(stderr,
                 "usage: mct_sim <eval|mct|sweep|trace|list> [flags]\n"
                 "see the header comment of tools/mct_sim.cc\n");
    return 2;
}
