/**
 * @file
 * Lasso (L1-regularized least squares) via cyclic coordinate descent
 * with soft thresholding (Tibshirani 1996; paper Section 4.3). Lasso
 * plays two roles in MCT: it regularizes the quadratic predictor so
 * it converges from few samples, and its zeroed coefficients perform
 * the feature selection of Section 4.4 / Fig 4a.
 */

#ifndef MCT_ML_LASSO_HH
#define MCT_ML_LASSO_HH

#include "ml/linalg.hh"
#include "ml/scaler.hh"

namespace mct::ml
{

/** Lasso hyperparameters. */
struct LassoParams
{
    /**
     * L1 strength as a fraction of lambda_max (the smallest lambda
     * that zeroes every coefficient), so the setting is scale-free.
     */
    double lambdaFrac = 0.01;

    unsigned maxIters = 1000;
    double tol = 1e-7;
};

/**
 * Lasso regression with internal feature standardization; exposed
 * coefficients refer to the standardized features, which is what the
 * effectiveness ranking (Table 6) and the feature selection (Fig 4a)
 * want to compare.
 */
class LassoRegression
{
  public:
    explicit LassoRegression(const LassoParams &params = {})
        : p(params)
    {}

    void fit(const Matrix &x, const Vector &y);

    double predict(const Vector &x) const;
    Vector predictAll(const Matrix &x) const;

    /** Coefficients in standardized-feature space. */
    const Vector &coefficients() const { return w; }

    /** Intercept in standardized-feature space. */
    double intercept() const { return b; }

    /** Indices of features with nonzero coefficients. */
    std::vector<std::size_t> selectedFeatures(double eps = 1e-9) const;

    /** Coordinate-descent sweeps used by the last fit. */
    unsigned itersUsed() const { return iters; }

  private:
    LassoParams p;
    StandardScaler scaler;
    Vector w;
    double b = 0.0;
    unsigned iters = 0;
};

} // namespace mct::ml

#endif // MCT_ML_LASSO_HH
