/**
 * @file
 * Stochastic gradient boosting of regression trees (Friedman 2002;
 * paper Section 4.3). With least-squares loss each stage fits a small
 * tree to the current residuals and is added with shrinkage.
 */

#ifndef MCT_ML_GRADIENT_BOOSTING_HH
#define MCT_ML_GRADIENT_BOOSTING_HH

#include <vector>

#include "common/rng.hh"
#include "ml/regression_tree.hh"

namespace mct::ml
{

/** Boosting hyperparameters. */
struct BoostParams
{
    unsigned nTrees = 120;
    double shrinkage = 0.1;
    double subsample = 0.8;
    TreeParams tree{3, 2};
    std::uint64_t seed = 7;
};

/**
 * Gradient-boosted regression-tree ensemble.
 */
class GradientBoosting
{
  public:
    explicit GradientBoosting(const BoostParams &params = {})
        : p(params)
    {}

    void fit(const Matrix &x, const Vector &y);

    double predict(const Vector &x) const;
    Vector predictAll(const Matrix &x) const;

    /** Trees actually grown. */
    std::size_t size() const { return trees.size(); }

  private:
    BoostParams p;
    double base = 0.0;
    std::vector<RegressionTree> trees;
};

} // namespace mct::ml

#endif // MCT_ML_GRADIENT_BOOSTING_HH
