/**
 * @file
 * Stochastic gradient boosting of regression trees (Friedman 2002;
 * paper Section 4.3). With least-squares loss each stage fits a small
 * tree to the current residuals and is added with shrinkage.
 */

#ifndef MCT_ML_GRADIENT_BOOSTING_HH
#define MCT_ML_GRADIENT_BOOSTING_HH

#include <cstdint>
#include <vector>

#include "ml/linalg.hh"
#include "ml/regression_tree.hh"

namespace mct::ml
{

/** Boosting hyperparameters. */
struct BoostParams
{
    unsigned nTrees = 120;
    double shrinkage = 0.1;
    double subsample = 0.8;
    TreeParams tree{3, 2};
    std::uint64_t seed = 7;
};

/**
 * Gradient-boosted regression-tree ensemble.
 */
class GradientBoosting
{
  public:
    explicit GradientBoosting(const BoostParams &params = {})
        : p(params)
    {}

    void fit(const Matrix &x, const Vector &y);

    double predict(const Vector &x) const;
    Vector predictAll(const Matrix &x) const;

    /** Trees actually grown. */
    std::size_t size() const { return trees.size(); }

    /**
     * Split-gain feature importances: per-feature squared-error
     * reduction summed over every split of every stage, normalized to
     * sum to 1 (all zeros when no stage ever split).
     */
    Vector featureImportance() const;

    /**
     * Staged-estimate uncertainty for one sample: the standard
     * deviation of the staged predictions F_m(x) over the final
     * quarter of the boosting stages. A converged ensemble barely
     * moves late in the sequence, so a large spread flags a sample
     * whose prediction is still churning — a cheap, deterministic
     * confidence proxy.
     */
    double stagedSpread(const Vector &x) const;

    /** stagedSpread for every row of @p x. */
    Vector stagedSpreadAll(const Matrix &x) const;

  private:
    BoostParams p;
    double base = 0.0;
    std::vector<RegressionTree> trees;
};

} // namespace mct::ml

#endif // MCT_ML_GRADIENT_BOOSTING_HH
