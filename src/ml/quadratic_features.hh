/**
 * @file
 * Quadratic feature expansion (paper Section 4.3.1): a d-dimensional
 * input grows to d linear + d square + d(d-1)/2 cross terms. For the
 * 10-dimensional configuration vector this is the 65-dimensional
 * space the paper cites. Feature names are tracked so the Table 6
 * effectiveness ranking can be printed symbolically.
 */

#ifndef MCT_ML_QUADRATIC_FEATURES_HH
#define MCT_ML_QUADRATIC_FEATURES_HH

#include <string>
#include <vector>

#include "ml/linalg.hh"

namespace mct::ml
{

/**
 * Stateless quadratic feature map with named outputs.
 */
class QuadraticFeatureMap
{
  public:
    /** @param inputNames One name per raw input dimension. */
    explicit QuadraticFeatureMap(std::vector<std::string> inputNames);

    /** Number of expanded features. */
    std::size_t outputDim() const { return names.size(); }

    /** Number of raw inputs. */
    std::size_t inputDim() const { return d; }

    /** Expand one sample. */
    Vector expand(const Vector &x) const;

    /** Expand a whole design matrix. */
    Matrix expandAll(const Matrix &x) const;

    /** Human-readable name of expanded feature @p j. */
    const std::string &name(std::size_t j) const { return names[j]; }

    /** All expanded names: linear, squares, then cross terms. */
    const std::vector<std::string> &allNames() const { return names; }

  private:
    std::size_t d;
    std::vector<std::string> names;
};

} // namespace mct::ml

#endif // MCT_ML_QUADRATIC_FEATURES_HH
