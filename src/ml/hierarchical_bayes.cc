#include "ml/hierarchical_bayes.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mct::ml
{

void
HierarchicalBayesPredictor::fitOffline(const Matrix &library)
{
    const std::size_t nApps = library.rows();
    const std::size_t nCfg = library.cols();
    if (nApps == 0 || nCfg == 0)
        mct_fatal("HierarchicalBayesPredictor: empty library");
    const unsigned L = params.latentDim;

    // Center each configuration column so factors model structure,
    // not the global mean.
    colMeans.assign(nCfg, 0.0);
    for (std::size_t a = 0; a < nApps; ++a)
        for (std::size_t c = 0; c < nCfg; ++c)
            colMeans[c] += library(a, c);
    for (auto &m : colMeans)
        m /= static_cast<double>(nApps);

    Matrix y(nApps, nCfg);
    for (std::size_t a = 0; a < nApps; ++a)
        for (std::size_t c = 0; c < nCfg; ++c)
            y(a, c) = library(a, c) - colMeans[c];

    // Alternating least squares for Y ~ W H: W is nApps x L,
    // H is L x nCfg. Random init, ridge-regularized updates.
    Rng rng(params.seed);
    Matrix w(nApps, L);
    h = Matrix(L, nCfg);
    for (std::size_t a = 0; a < nApps; ++a)
        for (unsigned l = 0; l < L; ++l)
            w(a, l) = 0.1 * rng.gaussian();
    for (unsigned l = 0; l < L; ++l)
        for (std::size_t c = 0; c < nCfg; ++c)
            h(l, c) = 0.1 * rng.gaussian();

    const double ridge = params.priorPrecision;
    for (unsigned it = 0; it < params.emIters; ++it) {
        // Update H columns: h_c = (W^T W + rI)^{-1} W^T y_c.
        Matrix g(L, L);
        for (std::size_t a = 0; a < nApps; ++a)
            for (unsigned i = 0; i < L; ++i)
                for (unsigned j = 0; j < L; ++j)
                    g(i, j) += w(a, i) * w(a, j);
        for (unsigned i = 0; i < L; ++i)
            g(i, i) += ridge;
        for (std::size_t c = 0; c < nCfg; ++c) {
            Vector rhs(L, 0.0);
            for (std::size_t a = 0; a < nApps; ++a)
                for (unsigned i = 0; i < L; ++i)
                    rhs[i] += w(a, i) * y(a, c);
            const Vector hc = choleskySolve(g, rhs);
            for (unsigned i = 0; i < L; ++i)
                h(i, c) = hc[i];
        }
        // Update W rows: w_a = (H H^T + rI)^{-1} H y_a.
        Matrix g2(L, L);
        for (std::size_t c = 0; c < nCfg; ++c)
            for (unsigned i = 0; i < L; ++i)
                for (unsigned j = 0; j < L; ++j)
                    g2(i, j) += h(i, c) * h(j, c);
        for (unsigned i = 0; i < L; ++i)
            g2(i, i) += ridge;
        for (std::size_t a = 0; a < nApps; ++a) {
            Vector rhs(L, 0.0);
            for (std::size_t c = 0; c < nCfg; ++c)
                for (unsigned i = 0; i < L; ++i)
                    rhs[i] += h(i, c) * y(a, c);
            const Vector wa = choleskySolve(g2, rhs);
            for (unsigned i = 0; i < L; ++i)
                w(a, i) = wa[i];
        }
    }
    fitted = true;
}

Vector
HierarchicalBayesPredictor::infer(
    const std::vector<std::size_t> &observedIdx,
    const Vector &observedY) const
{
    return inferWithVariance(observedIdx, observedY, nullptr);
}

Vector
HierarchicalBayesPredictor::inferWithVariance(
    const std::vector<std::size_t> &observedIdx,
    const Vector &observedY, Vector *variance) const
{
    if (!fitted)
        mct_fatal("HierarchicalBayesPredictor::infer before fitOffline");
    if (observedIdx.size() != observedY.size() || observedIdx.empty())
        mct_fatal("HierarchicalBayesPredictor::infer: bad observations");
    const unsigned L = params.latentDim;
    const std::size_t nCfg = h.cols();

    // Posterior mean of the new application's loadings:
    // (H_S H_S^T / noise + prior I)^{-1} H_S (y_S - mean_S) / noise.
    Matrix a(L, L);
    Vector rhs(L, 0.0);
    for (std::size_t k = 0; k < observedIdx.size(); ++k) {
        const std::size_t c = observedIdx[k];
        if (c >= nCfg)
            mct_fatal("HierarchicalBayesPredictor: index out of range");
        const double resid = observedY[k] - colMeans[c];
        for (unsigned i = 0; i < L; ++i) {
            rhs[i] += h(i, c) * resid / params.noise;
            for (unsigned j = 0; j < L; ++j)
                a(i, j) += h(i, c) * h(j, c) / params.noise;
        }
    }
    for (unsigned i = 0; i < L; ++i)
        a(i, i) += params.priorPrecision;
    const Vector loadings = choleskySolve(a, rhs);

    Vector out(nCfg, 0.0);
    for (std::size_t c = 0; c < nCfg; ++c) {
        double acc = colMeans[c];
        for (unsigned i = 0; i < L; ++i)
            acc += loadings[i] * h(i, c);
        out[c] = acc;
    }

    if (variance) {
        // var_c = h_c^T A^{-1} h_c + noise, one small solve per
        // configuration column (A is latentDim x latentDim).
        variance->assign(nCfg, 0.0);
        for (std::size_t c = 0; c < nCfg; ++c) {
            Vector hc(L, 0.0);
            for (unsigned i = 0; i < L; ++i)
                hc[i] = h(i, c);
            const Vector z = choleskySolve(a, hc);
            double v = params.noise;
            for (unsigned i = 0; i < L; ++i)
                v += hc[i] * z[i];
            (*variance)[c] = v;
        }
    }
    return out;
}

} // namespace mct::ml
