#include "ml/quadratic_features.hh"

#include "common/logging.hh"

namespace mct::ml
{

QuadraticFeatureMap::QuadraticFeatureMap(
    std::vector<std::string> inputNames)
    : d(inputNames.size())
{
    if (d == 0)
        mct_fatal("QuadraticFeatureMap: no inputs");
    names.reserve(d + d + d * (d - 1) / 2);
    for (const auto &n : inputNames)
        names.push_back(n);
    for (const auto &n : inputNames)
        names.push_back(n + "^2");
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = i + 1; j < d; ++j)
            names.push_back(inputNames[i] + " * " + inputNames[j]);
}

Vector
QuadraticFeatureMap::expand(const Vector &x) const
{
    if (x.size() != d)
        mct_fatal("QuadraticFeatureMap::expand: dimension mismatch");
    Vector out;
    out.reserve(outputDim());
    for (std::size_t i = 0; i < d; ++i)
        out.push_back(x[i]);
    for (std::size_t i = 0; i < d; ++i)
        out.push_back(x[i] * x[i]);
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = i + 1; j < d; ++j)
            out.push_back(x[i] * x[j]);
    return out;
}

Matrix
QuadraticFeatureMap::expandAll(const Matrix &x) const
{
    Matrix out(x.rows(), outputDim());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        Vector row(d);
        for (std::size_t c = 0; c < d; ++c)
            row[c] = x(r, c);
        const Vector e = expand(row);
        for (std::size_t c = 0; c < e.size(); ++c)
            out(r, c) = e[c];
    }
    return out;
}

} // namespace mct::ml
