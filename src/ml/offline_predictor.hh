/**
 * @file
 * The paper's "offline" baseline predictor (Table 7): the prediction
 * for every configuration is simply the average of the training
 * applications' measurements for that configuration. No online data,
 * no runtime cost, poor accuracy.
 */

#ifndef MCT_ML_OFFLINE_PREDICTOR_HH
#define MCT_ML_OFFLINE_PREDICTOR_HH

#include "ml/linalg.hh"

namespace mct::ml
{

/**
 * Average-of-training-applications predictor over a fixed
 * configuration list.
 */
class OfflinePredictor
{
  public:
    /**
     * @param library One row per training application, one column per
     *        configuration (all applications share the column order).
     */
    void fit(const Matrix &library);

    /** Predicted value for configuration @p configIdx. */
    double predict(std::size_t configIdx) const;

    /** Predictions for every configuration. */
    const Vector &predictAll() const { return means; }

  private:
    Vector means;
};

} // namespace mct::ml

#endif // MCT_ML_OFFLINE_PREDICTOR_HH
