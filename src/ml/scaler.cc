#include "ml/scaler.hh"

#include <cmath>

#include "common/logging.hh"

namespace mct::ml
{

void
StandardScaler::fit(const Matrix &x)
{
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    if (n == 0)
        mct_fatal("StandardScaler: empty design matrix");
    mu.assign(d, 0.0);
    sigma.assign(d, 1.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            mu[c] += x(r, c);
    for (auto &m : mu)
        m /= static_cast<double>(n);
    Vector ss(d, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            const double dlt = x(r, c) - mu[c];
            ss[c] += dlt * dlt;
        }
    }
    for (std::size_t c = 0; c < d; ++c) {
        const double sd = std::sqrt(ss[c] / static_cast<double>(n));
        sigma[c] = sd > 1e-12 ? sd : 1.0;
    }
}

Matrix
StandardScaler::transform(const Matrix &x) const
{
    if (x.cols() != mu.size())
        mct_fatal("StandardScaler::transform: dimension mismatch");
    Matrix out(x.rows(), x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            out(r, c) = (x(r, c) - mu[c]) / sigma[c];
    return out;
}

Vector
StandardScaler::transformRow(const Vector &x) const
{
    if (x.size() != mu.size())
        mct_fatal("StandardScaler::transformRow: dimension mismatch");
    Vector out(x.size());
    for (std::size_t c = 0; c < x.size(); ++c)
        out[c] = (x[c] - mu[c]) / sigma[c];
    return out;
}

Matrix
StandardScaler::fitTransform(const Matrix &x)
{
    fit(x);
    return transform(x);
}

} // namespace mct::ml
