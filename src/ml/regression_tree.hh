/**
 * @file
 * CART-style least-squares regression tree: the weak learner inside
 * gradient boosting. Exact split search over every feature value is
 * affordable at MCT's sample counts (tens to hundreds of samples).
 */

#ifndef MCT_ML_REGRESSION_TREE_HH
#define MCT_ML_REGRESSION_TREE_HH

#include <cstddef>
#include <vector>

#include "ml/linalg.hh"

namespace mct::ml
{

/** Tree hyperparameters. */
struct TreeParams
{
    unsigned maxDepth = 3;
    unsigned minSamplesLeaf = 2;
};

/**
 * Binary regression tree with axis-aligned splits.
 */
class RegressionTree
{
  public:
    explicit RegressionTree(const TreeParams &params = {}) : p(params) {}

    /** Fit on the subset of rows given by @p idx (all rows if empty). */
    void fit(const Matrix &x, const Vector &y,
             const std::vector<std::size_t> &idx = {});

    double predict(const Vector &x) const;
    Vector predictAll(const Matrix &x) const;

    /** Number of nodes (diagnostics). */
    std::size_t nodeCount() const { return nodes.size(); }

    /**
     * Per-feature squared-error reduction accumulated over every
     * split of the last fit (length: feature count). The classic
     * split-gain importance; all zeros for a stump.
     */
    const Vector &splitGains() const { return gains; }

  private:
    struct Node
    {
        bool leaf = true;
        double value = 0.0;
        std::size_t feature = 0;
        double threshold = 0.0;
        int left = -1;
        int right = -1;
    };

    TreeParams p;
    std::vector<Node> nodes;
    Vector gains;

    int build(const Matrix &x, const Vector &y,
              std::vector<std::size_t> &idx, unsigned depth);
};

} // namespace mct::ml

#endif // MCT_ML_REGRESSION_TREE_HH
