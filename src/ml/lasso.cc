#include "ml/lasso.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mct::ml
{

namespace
{

double
softThreshold(double z, double gamma)
{
    if (z > gamma)
        return z - gamma;
    if (z < -gamma)
        return z + gamma;
    return 0.0;
}

} // namespace

void
LassoRegression::fit(const Matrix &xRaw, const Vector &y)
{
    const std::size_t n = xRaw.rows();
    const std::size_t d = xRaw.cols();
    if (n == 0 || y.size() != n)
        mct_fatal("LassoRegression::fit: bad shapes");

    const Matrix x = scaler.fitTransform(xRaw);

    double yMean = 0.0;
    for (double v : y)
        yMean += v;
    yMean /= static_cast<double>(n);
    b = yMean;

    // lambda_max = max_j |x_j . yc| / n zeroes all coefficients.
    Vector yc(n);
    for (std::size_t r = 0; r < n; ++r)
        yc[r] = y[r] - yMean;
    double lambdaMax = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
        double corr = 0.0;
        for (std::size_t r = 0; r < n; ++r)
            corr += x(r, j) * yc[r];
        lambdaMax = std::max(lambdaMax,
                             std::fabs(corr) / static_cast<double>(n));
    }
    const double lambda = p.lambdaFrac * lambdaMax;

    // Column squared norms (columns are standardized: ~n each, but
    // compute exactly for constant-column robustness).
    Vector colSq(d, 0.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t j = 0; j < d; ++j)
            colSq[j] += x(r, j) * x(r, j);

    w.assign(d, 0.0);
    Vector residual = yc; // y - X w with w = 0

    iters = 0;
    for (unsigned it = 0; it < p.maxIters; ++it) {
        double maxDelta = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
            if (colSq[j] <= 1e-12)
                continue;
            // rho = x_j . (residual + x_j w_j)
            double rho = 0.0;
            for (std::size_t r = 0; r < n; ++r)
                rho += x(r, j) * residual[r];
            rho += colSq[j] * w[j];
            const double newW =
                softThreshold(rho / static_cast<double>(n),
                              lambda) /
                (colSq[j] / static_cast<double>(n));
            const double delta = newW - w[j];
            if (delta != 0.0) {
                for (std::size_t r = 0; r < n; ++r)
                    residual[r] -= x(r, j) * delta;
                w[j] = newW;
                maxDelta = std::max(maxDelta, std::fabs(delta));
            }
        }
        ++iters;
        if (maxDelta < p.tol)
            break;
    }
}

double
LassoRegression::predict(const Vector &xRaw) const
{
    const Vector x = scaler.transformRow(xRaw);
    return dot(w, x) + b;
}

Vector
LassoRegression::predictAll(const Matrix &xRaw) const
{
    Vector out(xRaw.rows());
    for (std::size_t r = 0; r < xRaw.rows(); ++r) {
        Vector row(xRaw.cols());
        for (std::size_t c = 0; c < xRaw.cols(); ++c)
            row[c] = xRaw(r, c);
        out[r] = predict(row);
    }
    return out;
}

std::vector<std::size_t>
LassoRegression::selectedFeatures(double eps) const
{
    std::vector<std::size_t> idx;
    for (std::size_t j = 0; j < w.size(); ++j) {
        if (std::fabs(w[j]) > eps)
            idx.push_back(j);
    }
    return idx;
}

} // namespace mct::ml
