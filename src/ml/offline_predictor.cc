#include "ml/offline_predictor.hh"

#include "common/logging.hh"

namespace mct::ml
{

void
OfflinePredictor::fit(const Matrix &library)
{
    if (library.rows() == 0)
        mct_fatal("OfflinePredictor: empty library");
    means.assign(library.cols(), 0.0);
    for (std::size_t r = 0; r < library.rows(); ++r)
        for (std::size_t c = 0; c < library.cols(); ++c)
            means[c] += library(r, c);
    for (auto &m : means)
        m /= static_cast<double>(library.rows());
}

double
OfflinePredictor::predict(std::size_t configIdx) const
{
    if (configIdx >= means.size())
        mct_fatal("OfflinePredictor::predict: index out of range");
    return means[configIdx];
}

} // namespace mct::ml
