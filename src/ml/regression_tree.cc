#include "ml/regression_tree.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.hh"

namespace mct::ml
{

void
RegressionTree::fit(const Matrix &x, const Vector &y,
                    const std::vector<std::size_t> &idxIn)
{
    if (x.rows() == 0 || x.rows() != y.size())
        mct_fatal("RegressionTree::fit: bad shapes");
    nodes.clear();
    gains.assign(x.cols(), 0.0);
    std::vector<std::size_t> idx = idxIn;
    if (idx.empty()) {
        idx.resize(x.rows());
        std::iota(idx.begin(), idx.end(), 0);
    }
    build(x, y, idx, 0);
}

int
RegressionTree::build(const Matrix &x, const Vector &y,
                      std::vector<std::size_t> &idx, unsigned depth)
{
    const int self = static_cast<int>(nodes.size());
    nodes.push_back(Node{});

    double mean = 0.0;
    for (auto i : idx)
        mean += y[i];
    mean /= static_cast<double>(idx.size());
    nodes[self].value = mean;

    if (depth >= p.maxDepth || idx.size() < 2 * p.minSamplesLeaf)
        return self;

    // Exact best split: minimize total squared error, evaluated via
    // prefix sums over each feature's sorted order.
    double bestGain = 1e-12;
    std::size_t bestFeat = 0;
    double bestThresh = 0.0;

    double total = 0.0, totalSq = 0.0;
    for (auto i : idx) {
        total += y[i];
        totalSq += y[i] * y[i];
    }
    const double sseParent =
        totalSq - total * total / static_cast<double>(idx.size());

    std::vector<std::size_t> order(idx);
    for (std::size_t f = 0; f < x.cols(); ++f) {
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return x(a, f) < x(b, f);
                  });
        double leftSum = 0.0, leftSq = 0.0;
        for (std::size_t k = 0; k + 1 < order.size(); ++k) {
            const double yi = y[order[k]];
            leftSum += yi;
            leftSq += yi * yi;
            const std::size_t nl = k + 1;
            const std::size_t nr = order.size() - nl;
            if (nl < p.minSamplesLeaf || nr < p.minSamplesLeaf)
                continue;
            const double xa = x(order[k], f);
            const double xb = x(order[k + 1], f);
            if (xb <= xa)
                continue; // no separating threshold here
            const double rightSum = total - leftSum;
            const double rightSq = totalSq - leftSq;
            const double sse =
                (leftSq - leftSum * leftSum / static_cast<double>(nl)) +
                (rightSq -
                 rightSum * rightSum / static_cast<double>(nr));
            const double gain = sseParent - sse;
            if (gain > bestGain) {
                bestGain = gain;
                bestFeat = f;
                bestThresh = 0.5 * (xa + xb);
            }
        }
    }

    if (bestGain <= 1e-12)
        return self;

    std::vector<std::size_t> leftIdx, rightIdx;
    for (auto i : idx) {
        if (x(i, bestFeat) <= bestThresh)
            leftIdx.push_back(i);
        else
            rightIdx.push_back(i);
    }
    if (leftIdx.empty() || rightIdx.empty())
        return self;

    nodes[self].leaf = false;
    nodes[self].feature = bestFeat;
    nodes[self].threshold = bestThresh;
    gains[bestFeat] += bestGain;
    const int l = build(x, y, leftIdx, depth + 1);
    const int r = build(x, y, rightIdx, depth + 1);
    nodes[self].left = l;
    nodes[self].right = r;
    return self;
}

double
RegressionTree::predict(const Vector &x) const
{
    if (nodes.empty())
        mct_fatal("RegressionTree::predict before fit");
    int cur = 0;
    while (!nodes[cur].leaf) {
        cur = x[nodes[cur].feature] <= nodes[cur].threshold
                  ? nodes[cur].left
                  : nodes[cur].right;
    }
    return nodes[cur].value;
}

Vector
RegressionTree::predictAll(const Matrix &x) const
{
    Vector out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        Vector row(x.cols());
        for (std::size_t c = 0; c < x.cols(); ++c)
            row[c] = x(r, c);
        out[r] = predict(row);
    }
    return out;
}

} // namespace mct::ml
