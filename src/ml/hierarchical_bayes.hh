/**
 * @file
 * Hierarchical Bayesian predictor in the spirit of LEO (Mishra et al.
 * ASPLOS'15), the model the paper evaluates in Table 7 / Fig 2.
 *
 * Instead of learning a direct input->output function, the model
 * assumes latent structure shared across applications: the offline
 * library (applications x configurations) is factorized into latent
 * configuration factors by alternating least squares (EM for a
 * probabilistic matrix factorization). A new application observes a
 * few configurations; its latent loadings get a Gaussian posterior
 * whose mean is ridge-regressed against the factor matrix, and
 * predictions for all configurations follow. Accuracy therefore
 * depends on the training library containing applications that
 * correlate with the new one — exactly the property the paper
 * discusses.
 */

#ifndef MCT_ML_HIERARCHICAL_BAYES_HH
#define MCT_ML_HIERARCHICAL_BAYES_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/linalg.hh"

namespace mct::ml
{

/** Hyperparameters of the hierarchical model. */
struct HierBayesParams
{
    /** Latent dimensionality (shared factors across applications). */
    unsigned latentDim = 6;

    /** ALS/EM sweeps during offline factorization. */
    unsigned emIters = 60;

    /** Gaussian prior precision on loadings (ridge strength). */
    double priorPrecision = 1e-3;

    /** Observation noise variance. */
    double noise = 1e-4;

    std::uint64_t seed = 11;
};

/**
 * Offline factorization plus per-application posterior inference.
 */
class HierarchicalBayesPredictor
{
  public:
    explicit HierarchicalBayesPredictor(const HierBayesParams &p = {})
        : params(p)
    {}

    /**
     * Factorize the offline library (rows: training applications,
     * cols: configurations). Must be called before infer().
     */
    void fitOffline(const Matrix &library);

    /**
     * Condition on the new application's observed configurations and
     * return predictions for every configuration column.
     *
     * @param observedIdx Column indices that were sampled online.
     * @param observedY Measured values at those columns.
     */
    Vector infer(const std::vector<std::size_t> &observedIdx,
                 const Vector &observedY) const;

    /**
     * infer() plus the per-configuration posterior predictive
     * variance: var_c = h_c^T A^{-1} h_c + noise, where A is the
     * posterior precision of the loadings. When @p variance is
     * non-null it is resized to the configuration count.
     */
    Vector inferWithVariance(const std::vector<std::size_t> &observedIdx,
                             const Vector &observedY,
                             Vector *variance) const;

    /** Latent factors (latentDim x nConfigs) after fitOffline. */
    const Matrix &factors() const { return h; }

  private:
    HierBayesParams params;
    Matrix h;          // latentDim x nConfigs
    Vector colMeans;   // per-configuration mean across library apps
    bool fitted = false;
};

} // namespace mct::ml

#endif // MCT_ML_HIERARCHICAL_BAYES_HH
