/**
 * @file
 * Ordinary least squares / ridge regression with intercept, solved via
 * the normal equations (the design matrices here are tiny: at most a
 * few hundred samples by 65 quadratic features).
 */

#ifndef MCT_ML_LINEAR_REGRESSION_HH
#define MCT_ML_LINEAR_REGRESSION_HH

#include "ml/linalg.hh"
#include "ml/scaler.hh"

namespace mct::ml
{

/**
 * Linear model y = w.x + b. With ridge > 0 the weights are L2
 * penalized (the intercept is never penalized).
 */
class LinearRegression
{
  public:
    explicit LinearRegression(double ridge = 0.0) : lambda(ridge) {}

    /** Fit on rows of @p x against targets @p y. */
    void fit(const Matrix &x, const Vector &y);

    /** Predict one sample. */
    double predict(const Vector &x) const;

    /** Predict many samples. */
    Vector predictAll(const Matrix &x) const;

    /** Learned weights in the original (unscaled) feature space. */
    const Vector &weights() const { return w; }

    /** Learned intercept. */
    double intercept() const { return b; }

  private:
    double lambda;
    Vector w;
    double b = 0.0;
};

} // namespace mct::ml

#endif // MCT_ML_LINEAR_REGRESSION_HH
