/**
 * @file
 * Prediction-quality metrics. The paper's accuracy metric is the
 * coefficient of determination clamped at zero (Eq. 3).
 */

#ifndef MCT_ML_METRICS_HH
#define MCT_ML_METRICS_HH

#include "ml/linalg.hh"

namespace mct::ml
{

/**
 * acc = max(0, 1 - ||Y' - Y||^2 / ||Y - mean(Y)||^2)  (paper Eq. 3).
 * Returns 1 when Y is constant and perfectly predicted, 0 when
 * constant and mispredicted.
 */
double coefficientOfDetermination(const Vector &predicted,
                                  const Vector &truth);

/** Mean absolute error. */
double meanAbsoluteError(const Vector &predicted, const Vector &truth);

/** Root mean squared error. */
double rootMeanSquaredError(const Vector &predicted,
                            const Vector &truth);

} // namespace mct::ml

#endif // MCT_ML_METRICS_HH
