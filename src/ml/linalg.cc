#include "ml/linalg.hh"

#include <cmath>

#include "common/logging.hh"

namespace mct::ml
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : nRows(rows), nCols(cols), data(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<Vector> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows[0].size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols())
            mct_fatal("Matrix::fromRows: ragged rows");
        for (std::size_t c = 0; c < m.cols(); ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

Vector
Matrix::multiply(const Vector &x) const
{
    if (x.size() != nCols)
        mct_fatal("Matrix::multiply: dimension mismatch");
    Vector y(nRows, 0.0);
    for (std::size_t r = 0; r < nRows; ++r) {
        const double *rp = row(r);
        double acc = 0.0;
        for (std::size_t c = 0; c < nCols; ++c)
            acc += rp[c] * x[c];
        y[r] = acc;
    }
    return y;
}

Vector
Matrix::multiplyTransposed(const Vector &x) const
{
    if (x.size() != nRows)
        mct_fatal("Matrix::multiplyTransposed: dimension mismatch");
    Vector y(nCols, 0.0);
    for (std::size_t r = 0; r < nRows; ++r) {
        const double *rp = row(r);
        const double xr = x[r];
        for (std::size_t c = 0; c < nCols; ++c)
            y[c] += rp[c] * xr;
    }
    return y;
}

Matrix
Matrix::gram() const
{
    Matrix g(nCols, nCols);
    for (std::size_t r = 0; r < nRows; ++r) {
        const double *rp = row(r);
        for (std::size_t i = 0; i < nCols; ++i) {
            const double v = rp[i];
            if (v == 0.0)
                continue;
            for (std::size_t j = i; j < nCols; ++j)
                g(i, j) += v * rp[j];
        }
    }
    for (std::size_t i = 0; i < nCols; ++i)
        for (std::size_t j = 0; j < i; ++j)
            g(i, j) = g(j, i);
    return g;
}

Vector
choleskySolve(Matrix a, Vector b)
{
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        mct_fatal("choleskySolve: dimension mismatch");

    // Scale-aware jitter keeps the factorization alive for rank-
    // deficient normal equations (duplicate features are common after
    // quadratic expansion of boolean knobs).
    double maxDiag = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        maxDiag = std::max(maxDiag, std::fabs(a(i, i)));
    const double jitter = std::max(1e-12, 1e-10 * maxDiag);
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) += jitter;

    // In-place lower Cholesky.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= a(i, k) * a(j, k);
            if (i == j) {
                if (sum <= 0.0)
                    sum = jitter;
                a(i, i) = std::sqrt(sum);
            } else {
                a(i, j) = sum / a(j, j);
            }
        }
    }
    // Forward substitution: L z = b.
    Vector z(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= a(i, k) * z[k];
        z[i] = sum / a(i, i);
    }
    // Back substitution: L^T x = z.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double sum = z[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            sum -= a(k, ii) * x[k];
        x[ii] = sum / a(ii, ii);
    }
    return x;
}

double
dot(const Vector &a, const Vector &b)
{
    if (a.size() != b.size())
        mct_fatal("dot: dimension mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

} // namespace mct::ml
