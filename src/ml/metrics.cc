#include "ml/metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mct::ml
{

double
coefficientOfDetermination(const Vector &predicted, const Vector &truth)
{
    if (predicted.size() != truth.size() || truth.empty())
        mct_fatal("coefficientOfDetermination: bad shapes");
    double mean = 0.0;
    for (double v : truth)
        mean += v;
    mean /= static_cast<double>(truth.size());

    double ssRes = 0.0, ssTot = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        ssRes += (predicted[i] - truth[i]) * (predicted[i] - truth[i]);
        ssTot += (truth[i] - mean) * (truth[i] - mean);
    }
    if (ssTot <= 0.0)
        return ssRes <= 1e-18 ? 1.0 : 0.0;
    return std::max(0.0, 1.0 - ssRes / ssTot);
}

double
meanAbsoluteError(const Vector &predicted, const Vector &truth)
{
    if (predicted.size() != truth.size() || truth.empty())
        mct_fatal("meanAbsoluteError: bad shapes");
    double acc = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i)
        acc += std::fabs(predicted[i] - truth[i]);
    return acc / static_cast<double>(truth.size());
}

double
rootMeanSquaredError(const Vector &predicted, const Vector &truth)
{
    if (predicted.size() != truth.size() || truth.empty())
        mct_fatal("rootMeanSquaredError: bad shapes");
    double acc = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i)
        acc += (predicted[i] - truth[i]) * (predicted[i] - truth[i]);
    return std::sqrt(acc / static_cast<double>(truth.size()));
}

} // namespace mct::ml
