#include "ml/gradient_boosting.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mct::ml
{

void
GradientBoosting::fit(const Matrix &x, const Vector &y)
{
    const std::size_t n = x.rows();
    if (n == 0 || y.size() != n)
        mct_fatal("GradientBoosting::fit: bad shapes");
    trees.clear();

    base = 0.0;
    for (double v : y)
        base += v;
    base /= static_cast<double>(n);

    Vector residual(n);
    Vector current(n, base);
    Rng rng(p.seed);

    const std::size_t sampleN = std::max<std::size_t>(
        2, static_cast<std::size_t>(p.subsample *
                                    static_cast<double>(n)));
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), 0);

    for (unsigned m = 0; m < p.nTrees; ++m) {
        for (std::size_t i = 0; i < n; ++i)
            residual[i] = y[i] - current[i];

        // Stochastic subsample (Friedman 2002) decorrelates stages.
        std::vector<std::size_t> idx;
        if (sampleN < n) {
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t j =
                    i + static_cast<std::size_t>(rng.below(n - i));
                std::swap(pool[i], pool[j]);
            }
            idx.assign(pool.begin(),
                       pool.begin() + static_cast<long>(sampleN));
        }

        RegressionTree tree(p.tree);
        tree.fit(x, residual, idx);

        for (std::size_t i = 0; i < n; ++i) {
            Vector row(x.cols());
            for (std::size_t c = 0; c < x.cols(); ++c)
                row[c] = x(i, c);
            current[i] += p.shrinkage * tree.predict(row);
        }
        trees.push_back(std::move(tree));
    }
}

double
GradientBoosting::predict(const Vector &x) const
{
    double acc = base;
    for (const auto &tree : trees)
        acc += p.shrinkage * tree.predict(x);
    return acc;
}

Vector
GradientBoosting::featureImportance() const
{
    if (trees.empty())
        return {};
    Vector imp(trees.front().splitGains().size(), 0.0);
    for (const auto &tree : trees) {
        const Vector &g = tree.splitGains();
        for (std::size_t f = 0; f < imp.size() && f < g.size(); ++f)
            imp[f] += g[f];
    }
    double sum = 0.0;
    for (double v : imp)
        sum += v;
    if (sum > 0.0)
        for (double &v : imp)
            v /= sum;
    return imp;
}

double
GradientBoosting::stagedSpread(const Vector &x) const
{
    if (trees.empty())
        return 0.0;
    const std::size_t m = trees.size();
    const std::size_t tail = std::max<std::size_t>(2, m / 4);
    const std::size_t first = m - tail;
    double acc = base;
    double sum = 0.0, sumSq = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        acc += p.shrinkage * trees[i].predict(x);
        if (i >= first) {
            sum += acc;
            sumSq += acc * acc;
        }
    }
    const auto n = static_cast<double>(tail);
    const double var = sumSq / n - (sum / n) * (sum / n);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Vector
GradientBoosting::stagedSpreadAll(const Matrix &x) const
{
    Vector out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        Vector row(x.cols());
        for (std::size_t c = 0; c < x.cols(); ++c)
            row[c] = x(r, c);
        out[r] = stagedSpread(row);
    }
    return out;
}

Vector
GradientBoosting::predictAll(const Matrix &x) const
{
    Vector out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        Vector row(x.cols());
        for (std::size_t c = 0; c < x.cols(); ++c)
            row[c] = x(r, c);
        out[r] = predict(row);
    }
    return out;
}

} // namespace mct::ml
