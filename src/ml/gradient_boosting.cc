#include "ml/gradient_boosting.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace mct::ml
{

void
GradientBoosting::fit(const Matrix &x, const Vector &y)
{
    const std::size_t n = x.rows();
    if (n == 0 || y.size() != n)
        mct_fatal("GradientBoosting::fit: bad shapes");
    trees.clear();

    base = 0.0;
    for (double v : y)
        base += v;
    base /= static_cast<double>(n);

    Vector residual(n);
    Vector current(n, base);
    Rng rng(p.seed);

    const std::size_t sampleN = std::max<std::size_t>(
        2, static_cast<std::size_t>(p.subsample *
                                    static_cast<double>(n)));
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), 0);

    for (unsigned m = 0; m < p.nTrees; ++m) {
        for (std::size_t i = 0; i < n; ++i)
            residual[i] = y[i] - current[i];

        // Stochastic subsample (Friedman 2002) decorrelates stages.
        std::vector<std::size_t> idx;
        if (sampleN < n) {
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t j =
                    i + static_cast<std::size_t>(rng.below(n - i));
                std::swap(pool[i], pool[j]);
            }
            idx.assign(pool.begin(),
                       pool.begin() + static_cast<long>(sampleN));
        }

        RegressionTree tree(p.tree);
        tree.fit(x, residual, idx);

        for (std::size_t i = 0; i < n; ++i) {
            Vector row(x.cols());
            for (std::size_t c = 0; c < x.cols(); ++c)
                row[c] = x(i, c);
            current[i] += p.shrinkage * tree.predict(row);
        }
        trees.push_back(std::move(tree));
    }
}

double
GradientBoosting::predict(const Vector &x) const
{
    double acc = base;
    for (const auto &tree : trees)
        acc += p.shrinkage * tree.predict(x);
    return acc;
}

Vector
GradientBoosting::predictAll(const Matrix &x) const
{
    Vector out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        Vector row(x.cols());
        for (std::size_t c = 0; c < x.cols(); ++c)
            row[c] = x(r, c);
        out[r] = predict(row);
    }
    return out;
}

} // namespace mct::ml
