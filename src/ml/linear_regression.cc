#include "ml/linear_regression.hh"

#include "common/logging.hh"

namespace mct::ml
{

void
LinearRegression::fit(const Matrix &x, const Vector &y)
{
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    if (n == 0 || y.size() != n)
        mct_fatal("LinearRegression::fit: bad shapes");

    // Center targets and features so the intercept separates out and
    // the ridge penalty leaves it alone.
    Vector xMean(d, 0.0);
    double yMean = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        yMean += y[r];
        for (std::size_t c = 0; c < d; ++c)
            xMean[c] += x(r, c);
    }
    yMean /= static_cast<double>(n);
    for (auto &m : xMean)
        m /= static_cast<double>(n);

    Matrix xc(n, d);
    Vector yc(n);
    for (std::size_t r = 0; r < n; ++r) {
        yc[r] = y[r] - yMean;
        for (std::size_t c = 0; c < d; ++c)
            xc(r, c) = x(r, c) - xMean[c];
    }

    Matrix g = xc.gram();
    for (std::size_t i = 0; i < d; ++i)
        g(i, i) += lambda;
    const Vector rhs = xc.multiplyTransposed(yc);
    w = choleskySolve(std::move(g), rhs);
    b = yMean - dot(w, xMean);
}

double
LinearRegression::predict(const Vector &x) const
{
    return dot(w, x) + b;
}

Vector
LinearRegression::predictAll(const Matrix &x) const
{
    Vector out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
        double acc = b;
        const double *rp = x.row(r);
        for (std::size_t c = 0; c < x.cols(); ++c)
            acc += w[c] * rp[c];
        out[r] = acc;
    }
    return out;
}

} // namespace mct::ml
