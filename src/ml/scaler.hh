/**
 * @file
 * Per-feature standardization (zero mean, unit variance), used by the
 * lasso coordinate descent and by the regression models. The paper's
 * "normalization" of objectives to the baseline configuration lives
 * in the MCT layer; this is plain feature scaling.
 */

#ifndef MCT_ML_SCALER_HH
#define MCT_ML_SCALER_HH

#include "ml/linalg.hh"

namespace mct::ml
{

/**
 * Standardizes columns of a design matrix; constant columns are left
 * centered with unit divisor so they cannot blow up.
 */
class StandardScaler
{
  public:
    /** Learn column means and standard deviations. */
    void fit(const Matrix &x);

    /** Apply the learned transform. */
    Matrix transform(const Matrix &x) const;

    /** Transform a single row vector. */
    Vector transformRow(const Vector &x) const;

    /** fit + transform. */
    Matrix fitTransform(const Matrix &x);

    const Vector &means() const { return mu; }
    const Vector &stddevs() const { return sigma; }

  private:
    Vector mu;
    Vector sigma;
};

} // namespace mct::ml

#endif // MCT_ML_SCALER_HH
