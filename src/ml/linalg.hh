/**
 * @file
 * Minimal dense linear algebra for the learning framework: row-major
 * matrices, matrix products against vectors, and a Cholesky solver
 * for symmetric positive-definite systems (normal equations).
 */

#ifndef MCT_ML_LINALG_HH
#define MCT_ML_LINALG_HH

#include <cstddef>
#include <vector>

namespace mct::ml
{

using Vector = std::vector<double>;

/**
 * Row-major dense matrix.
 */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols, zero-initialized. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initializer data (rows of equal length). */
    static Matrix fromRows(const std::vector<Vector> &rows);

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }

    double &operator()(std::size_t r, std::size_t c)
    {
        return data[r * nCols + c];
    }

    double operator()(std::size_t r, std::size_t c) const
    {
        return data[r * nCols + c];
    }

    /** Pointer to row r. */
    double *row(std::size_t r) { return &data[r * nCols]; }
    const double *row(std::size_t r) const { return &data[r * nCols]; }

    /** y = A x. */
    Vector multiply(const Vector &x) const;

    /** y = A^T x. */
    Vector multiplyTransposed(const Vector &x) const;

    /** G = A^T A (cols x cols). */
    Matrix gram() const;

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    Vector data;
};

/**
 * Solve A x = b for symmetric positive-definite A via Cholesky.
 * A small ridge is added automatically if factorization stalls.
 */
Vector choleskySolve(Matrix a, Vector b);

/** Dot product. */
double dot(const Vector &a, const Vector &b);

} // namespace mct::ml

#endif // MCT_ML_LINALG_HH
