#include "mct/phase_detector.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

PhaseDetector::PhaseDetector(const PhaseDetectorParams &params)
    : p(params), history(params.historyWindows)
{
    if (p.recentWindows == 0 || p.recentWindows >= p.historyWindows)
        mct_fatal("PhaseDetector: recentWindows must be in (0, history)");
}

bool
PhaseDetector::push(double workload)
{
    history.push(workload);
    score = 0.0;
    if (history.size() < p.minWindows)
        return false;

    const std::size_t k = p.recentWindows;
    // Welch's t between the last k windows and the older history
    // record (the paper tests the last 100*I against the past
    // 1000*I; excluding the recent windows from the reference keeps
    // a genuine shift from diluting its own baseline).
    const double recentMu = history.recentMean(k);
    const double recentVar = history.recentVariance(k);
    const double histMu = history.olderMean(k);
    const double histVar = history.olderVariance(k);
    score = welchTScore(recentMu, recentVar, k, histMu, histVar,
                        history.size() - k);
    const double relShift =
        std::fabs(recentMu - histMu) /
        std::max(std::fabs(histMu), 1e-12);
    if (score > p.scoreThreshold && relShift > p.minRelativeShift) {
        ++nPhases;
        history.clear();
        return true;
    }
    return false;
}

void
PhaseDetector::reset()
{
    history.clear();
    score = 0.0;
}

void
PhaseDetector::serialize(Serializer &s) const
{
    history.serialize(s);
    s.putF64(score);
    s.putU64(nPhases);
}

void
PhaseDetector::deserialize(Deserializer &d)
{
    history.deserialize(d);
    score = d.getF64();
    nPhases = d.getU64();
}

} // namespace mct
