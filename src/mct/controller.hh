/**
 * @file
 * The MCT runtime (paper Section 5, Fig 5): phase detection drives
 * cyclic fine-grained sampling; predictions over the quota-free
 * learning space feed the constrained optimizer; the chosen
 * configuration gets a wear-quota fixup guaranteeing the lifetime
 * floor; and periodic health checks re-measure the baseline, refresh
 * the normalization, and fall back to the baseline whenever the
 * chosen configuration underperforms it.
 */

#ifndef MCT_MCT_CONTROLLER_HH
#define MCT_MCT_CONTROLLER_HH

#include <functional>
#include <vector>

#include "mct/config_space.hh"
#include "mct/cyclic_sampler.hh"
#include "mct/optimizer.hh"
#include "mct/phase_detector.hh"
#include "mct/predictors.hh"
#include "sim/system.hh"

namespace mct
{

/** Runtime parameters (defaults follow the paper's ratios, scaled). */
struct MctParams
{
    PredictorKind predictor = PredictorKind::GradientBoosting;

    /** Default objective with a 1.15 safety margin: see
     *  LifetimeObjective::safetyMargin. */
    LifetimeObjective objective{8.0, 0.95, 1.15};

    /** Cyclic sampling schedule (t and round count, Section 5.2). */
    CyclicSamplerParams sampling{};

    /** Instructions of the baseline window measured per sampling
     *  period (normalization anchor, Section 4.4). */
    InstCount baselineWindow = 40 * 1000;

    /** Phase-monitor window I (Section 5.1). */
    InstCount phaseWindowInsts = 20 * 1000;
    PhaseDetectorParams phase{};

    /** Instructions between health checks; 0 disables them. */
    InstCount healthCheckPeriod = 500 * 1000;
    InstCount healthCheckLen = 20 * 1000;

    /** Apply the Section 5.3 wear-quota fixup to chosen configs. */
    bool wearQuotaFixup = true;

    /**
     * Instructions run under the chosen configuration (without its
     * fixup quota) before the quota arms. The reconfiguration
     * transient — flushing the sampling period's dirty backlog under
     * the new policy — would otherwise be charged against the fresh
     * quota budget and throttle the configuration unfairly.
     */
    InstCount stabilizeInsts = 100 * 1000;

    /** The baseline (static) configuration used for normalization,
     *  health checks, and fallback. */
    MellowConfig baseline = staticBaselineConfig();

    /** Knob discretization of the learning space. */
    SpaceOptions spaceOpts{};

    /**
     * Optional steady-state measurement source for the sampling
     * stage. The paper's sampling period (1B instructions) is long
     * enough that each sample's measurement approximates its steady
     * state; our scaled-down runs are not, so the bench harnesses
     * supply steady-state evaluations of the same 77 samples here
     * while the live cyclic sampler still runs (and is charged) for
     * overhead accounting. Leave empty for fully-live operation.
     */
    std::function<Metrics(const MellowConfig &)> steadyMeasure;

    /** Run the live cyclic sampler even when steadyMeasure is set,
     *  so the sampling overhead (Fig 9) stays accounted. */
    bool liveSamplingOverhead = true;

    /**
     * Optional wall-clock stage profiler (bench self-profiling). When
     * set, the controller charges its sampling / fit / optimize
     * stages so harness-level timings become attributable. Never
     * feeds back into simulated state.
     */
    WallProfiler *profiler = nullptr;

    std::uint64_t seed = 42;
};

/** One prediction/selection round, kept for inspection. */
struct Decision
{
    MellowConfig config;
    Metrics predicted;
    bool feasible = true; // lifetime floor satisfiable per prediction
    InstCount atInstruction = 0;
};

/** One health check's outcome, kept for inspection. */
struct HealthRecord
{
    InstCount atInstruction = 0;
    double chosenIpc = 0.0;
    double baselineIpc = 0.0;
    bool fellBack = false;
};

/**
 * Drives a live System through the MCT state machine.
 */
class MctController
{
  public:
    MctController(System &system, const MctParams &params);

    /** Run the managed system for at least @p insts instructions. */
    void runFor(InstCount insts);

    /** Currently applied configuration (baseline until first choice). */
    const MellowConfig &currentConfig() const { return current; }

    /** All selection rounds so far. */
    const std::vector<Decision> &decisions() const { return history; }

    /** All health checks so far (empty under steadyMeasure). */
    const std::vector<HealthRecord> &healthHistory() const
    {
        return healthLog;
    }

    /** Aggregate cost of all sampling periods (Fig 9). */
    const WindowAccum &samplingAccum() const { return samplingAcc; }

    /** Aggregate of all post-selection execution (Fig 9). */
    const WindowAccum &testingAccum() const { return testingAcc; }

    /** Phase-triggered re-samplings. */
    std::uint64_t resamplings() const { return nResamplings; }

    /** Health-check fallbacks to the baseline. */
    std::uint64_t fallbacks() const { return nFallbacks; }

    /** The phase detector (tests/benches). */
    const PhaseDetector &detector() const { return det; }

    /** The learning space (wear quota excluded). */
    const std::vector<MellowConfig> &space() const { return space_; }

    /** The sample configurations. */
    const std::vector<MellowConfig> &samples() const { return samples_; }

    /** Most recent absolute baseline measurements. */
    const Metrics &baselineMetrics() const { return baseMetrics; }

  private:
    System &sys;
    MctParams p;
    std::vector<MellowConfig> space_;
    std::vector<MellowConfig> samples_;
    std::vector<std::size_t> sampleIdx_;
    PhaseDetector det;

    enum class State { NeedSampling, Running };
    State state = State::NeedSampling;
    MellowConfig current;
    Metrics baseMetrics;
    std::vector<Decision> history;
    std::vector<HealthRecord> healthLog;
    WindowAccum samplingAcc;
    WindowAccum testingAcc;
    InstCount sinceHealthCheck = 0;
    unsigned consecutiveBadChecks = 0;
    std::uint64_t nResamplings = 0;
    std::uint64_t nFallbacks = 0;
    std::uint64_t nHealthChecks = 0;

    /** Histogram of instructions consumed per sampling period
     *  (lives in the system's registry as mct.sampling.period_insts). */
    LogHistogram *samplingHist = nullptr;

    /** Register mct.* stats in the managed system's registry. */
    void registerStats();

    /** Measure the baseline configuration for @p insts. */
    Metrics measureBaseline(InstCount insts, WindowAccum &acc);

    /** Full sampling + prediction + selection round. */
    void sampleAndChoose();

    /** One monitored execution window of the chosen configuration. */
    void runMonitoredWindow(InstCount insts);

    /** Health check: re-measure baseline, maybe fall back. */
    void healthCheck();
};

} // namespace mct

#endif // MCT_MCT_CONTROLLER_HH
