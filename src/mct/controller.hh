/**
 * @file
 * The MCT runtime (paper Section 5, Fig 5): phase detection drives
 * cyclic fine-grained sampling; predictions over the quota-free
 * learning space feed the constrained optimizer; the chosen
 * configuration gets a wear-quota fixup guaranteeing the lifetime
 * floor; and periodic health checks re-measure the baseline, refresh
 * the normalization, and fall back to the baseline whenever the
 * chosen configuration underperforms it.
 */

#ifndef MCT_MCT_CONTROLLER_HH
#define MCT_MCT_CONTROLLER_HH

#include <array>
#include <deque>
#include <functional>
#include <vector>

#include "common/instrument.hh"
#include "common/types.hh"
#include "mct/config_space.hh"
#include "mct/cyclic_sampler.hh"
#include "mct/optimizer.hh"
#include "mct/phase_detector.hh"
#include "mct/predictors.hh"
#include "memctrl/mellow_config.hh"
#include "sim/system.hh"

namespace mct
{

/**
 * Graceful-degradation knobs (see docs/robustness.md). The defaults
 * keep the happy path byte-identical: sanitization only rewrites
 * values that are already non-finite or absurd, and the emergency
 * clamp only engages when the measured wear rate genuinely breaks the
 * lifetime floor.
 */
struct RecoveryParams
{
    /** Master switch for sanitization, retries, and the clamp. */
    bool enabled = true;

    /** Sanity bounds on predicted objective *ratios* (a config
     *  predicted <1% or >100x of baseline is garbage, not insight —
     *  legitimate lifetime ratios in this space reach ~16x, and
     *  scaled-down windows add noise on top). */
    double minPredRatio = 0.01;
    double maxPredRatio = 100.0;

    /** Reject the whole prediction round when more than this fraction
     *  of the space fails the sanity bounds. */
    double maxRejectFraction = 0.5;

    /** Rejected rounds are retried at most this many times... */
    unsigned maxSampleRetries = 2;

    /** ...after running the baseline this long between attempts
     *  (backoff: transient corruption gets a chance to clear). */
    InstCount retryBackoffInsts = 20 * 1000;

    /** Baseline cooldown after a fallback before the optimizer is
     *  re-engaged. */
    InstCount cooldownInsts = 400 * 1000;

    /** Trailing wear window for the emergency lifetime projection. */
    InstCount emergencyWindowInsts = 400 * 1000;

    /**
     * Clamp to the safest config when the projected lifetime falls
     * below margin * ref; release above release * ref, where ref is
     * min(lifetime floor, last good baseline lifetime) — scaled-down
     * windows measure lifetimes far below the absolute floor even on
     * healthy runs. The margins leave a wide band between healthy
     * operation (projected ~ baseline) and a cheated quota (projected
     * near zero, e.g. under a skewed quota clock).
     */
    double emergencyMargin = 0.25;
    double emergencyRelease = 0.4;
};

/** The degradation steps recorded as RecoveryAction trace events and
 *  mct.recovery.* counters. */
enum class RecoveryStep
{
    QuarantineSample = 0,   ///< corrupt sample replaced by its anchor
    BaselineRepair = 1,     ///< corrupt baseline replaced by last good
    RoundRetry = 2,         ///< prediction round rejected, re-sampling
    RetryStrike = 3,        ///< ladder 1: bad check, keep and re-check
    ResampleEscalation = 4, ///< ladder 2: bad check, force re-sampling
    Fallback = 5,           ///< ladder 3: back to baseline + cooldown
    Reengage = 6,           ///< cooldown expired, optimizer re-engaged
    EmergencyClampOn = 7,   ///< lifetime floor broken: safest config
    EmergencyClampOff = 8,  ///< wear rate recovered, leaving the clamp
    CkptQuarantine = 9,     ///< corrupt checkpoint rejected on resume
    AlertEscalation = 10,   ///< critical alert climbed the ladder
};

/** Runtime parameters (defaults follow the paper's ratios, scaled). */
struct MctParams
{
    PredictorKind predictor = PredictorKind::GradientBoosting;

    /** Default objective with a 1.15 safety margin: see
     *  LifetimeObjective::safetyMargin. */
    LifetimeObjective objective{8.0, 0.95, 1.15};

    /** Cyclic sampling schedule (t and round count, Section 5.2). */
    CyclicSamplerParams sampling{};

    /** Instructions of the baseline window measured per sampling
     *  period (normalization anchor, Section 4.4). */
    InstCount baselineWindow = 40 * 1000;

    /** Phase-monitor window I (Section 5.1). */
    InstCount phaseWindowInsts = 20 * 1000;
    PhaseDetectorParams phase{};

    /** Instructions between health checks; 0 disables them. */
    InstCount healthCheckPeriod = 500 * 1000;
    InstCount healthCheckLen = 20 * 1000;

    /** Apply the Section 5.3 wear-quota fixup to chosen configs. */
    bool wearQuotaFixup = true;

    /**
     * Instructions run under the chosen configuration (without its
     * fixup quota) before the quota arms. The reconfiguration
     * transient — flushing the sampling period's dirty backlog under
     * the new policy — would otherwise be charged against the fresh
     * quota budget and throttle the configuration unfairly.
     */
    InstCount stabilizeInsts = 100 * 1000;

    /** The baseline (static) configuration used for normalization,
     *  health checks, and fallback. */
    MellowConfig baseline = staticBaselineConfig();

    /** Knob discretization of the learning space. */
    SpaceOptions spaceOpts{};

    /**
     * Optional steady-state measurement source for the sampling
     * stage. The paper's sampling period (1B instructions) is long
     * enough that each sample's measurement approximates its steady
     * state; our scaled-down runs are not, so the bench harnesses
     * supply steady-state evaluations of the same 77 samples here
     * while the live cyclic sampler still runs (and is charged) for
     * overhead accounting. Leave empty for fully-live operation.
     */
    std::function<Metrics(const MellowConfig &)> steadyMeasure;

    /** Run the live cyclic sampler even when steadyMeasure is set,
     *  so the sampling overhead (Fig 9) stays accounted. */
    bool liveSamplingOverhead = true;

    /**
     * Optional wall-clock stage profiler (bench self-profiling). When
     * set, the controller charges its sampling / fit / optimize
     * stages so harness-level timings become attributable. Never
     * feeds back into simulated state. A HostProfiler attached to the
     * managed System (System::attachHostProfiler) is charged the same
     * stages with wall *and* CPU time, no extra wiring needed.
     */
    WallProfiler *profiler = nullptr;

    /** Graceful-degradation behavior (see RecoveryParams). */
    RecoveryParams recovery{};

    /**
     * Test hook: replace predictAllConfigs with a stub. Called once
     * per objective ("ipc", "lifetime", "energy") with the trained
     * data; must return one ratio per space configuration. Used to
     * force mispredictions in fallback tests.
     */
    std::function<ml::Vector(const TrainData &, const char *objective)>
        predictOverride;

    /**
     * Decision-audit attribution cadence: every Nth decision
     * snapshots the model's feature attribution into its provenance
     * record and the mct.audit.attr.* gauges. 0 disables attribution
     * snapshots; error calibration and regret accounting always run.
     */
    std::uint64_t auditEvery = 1;

    /** Rejected runner-up candidates kept per provenance record. */
    std::size_t provenanceRunnerUps = 3;

    std::uint64_t seed = 42;
};

/** One prediction/selection round, kept for inspection. */
struct Decision
{
    MellowConfig config;
    Metrics predicted;
    bool feasible = true; // lifetime floor satisfiable per prediction
    InstCount atInstruction = 0;
};

/** One health check's outcome, kept for inspection. */
struct HealthRecord
{
    InstCount atInstruction = 0;
    double chosenIpc = 0.0;
    double baselineIpc = 0.0;
    bool fellBack = false;

    /** Escalation-ladder level after this check (0 = healthy). */
    unsigned ladder = 0;
};

/**
 * Drives a live System through the MCT state machine.
 */
class MctController
{
  public:
    MctController(System &system, const MctParams &params);

    /** Run the managed system for at least @p insts instructions. */
    void runFor(InstCount insts);

    /** Currently applied configuration (baseline until first choice). */
    const MellowConfig &currentConfig() const { return current; }

    /** All selection rounds so far. */
    const std::vector<Decision> &decisions() const { return history; }

    /** All health checks so far (empty under steadyMeasure). */
    const std::vector<HealthRecord> &healthHistory() const
    {
        return healthLog;
    }

    /** Aggregate cost of all sampling periods (Fig 9). */
    const WindowAccum &samplingAccum() const { return samplingAcc; }

    /** Aggregate of all post-selection execution (Fig 9). */
    const WindowAccum &testingAccum() const { return testingAcc; }

    /** Phase-triggered re-samplings. */
    std::uint64_t resamplings() const { return nResamplings; }

    /** Health-check fallbacks to the baseline. */
    std::uint64_t fallbacks() const { return nFallbacks; }

    /** The phase detector (tests/benches). */
    const PhaseDetector &detector() const { return det; }

    /** The learning space (wear quota excluded). */
    const std::vector<MellowConfig> &space() const { return space_; }

    /** The sample configurations. */
    const std::vector<MellowConfig> &samples() const { return samples_; }

    /** Most recent absolute baseline measurements. */
    const Metrics &baselineMetrics() const { return baseMetrics; }

    // --- graceful-degradation observability (tests/benches) ---

    /** Corrupt samples replaced by their paired anchor. */
    std::uint64_t quarantinedSamples() const { return nQuarantined; }

    /** Space configs whose predictions failed the sanity bounds. */
    std::uint64_t rejectedPredictions() const { return nPredRejected; }

    /** Whole prediction rounds rejected and retried. */
    std::uint64_t retryRounds() const { return nRetryRounds; }

    /** Corrupt baseline measurements repaired from the last good one. */
    std::uint64_t baselineRepairs() const { return nBaseRepairs; }

    /** Times the emergency wear clamp engaged. */
    std::uint64_t emergencyClamps() const { return nEmergency; }

    /** Times the optimizer was re-engaged after cooldown/clamp. */
    std::uint64_t reengagements() const { return nReengage; }

    /** True while the emergency clamp holds the safest config. */
    bool emergencyEngaged() const { return emergencyOn; }

    /** True during the post-fallback baseline cooldown. */
    bool inCooldown() const { return cooldownActive; }

    /** Current escalation-ladder level (0 = healthy). */
    unsigned ladderLevel() const { return ladder; }

    /**
     * Feed a critical alert into the escalation ladder: climbs one
     * rung exactly like a failed health check (retry strike ->
     * forced re-sampling -> baseline fallback + cooldown), recording
     * an AlertEscalation RecoveryAction and bumping
     * mct.recovery.alert_escalations. Wired as the AlertEngine's
     * escalation hook by the driver, closing the observe -> react
     * loop. No-op while the emergency clamp or cooldown already has
     * the system pinned to a safe configuration.
     */
    void noteCriticalAlert();

    /** Critical alerts that climbed the escalation ladder. */
    std::uint64_t alertEscalations() const
    {
        return nAlertEscalations;
    }

    /** The clamp target: baseline knobs at the slowest latencies. */
    MellowConfig safestConfig() const;

    // --- decision provenance / prediction-accuracy audit ---

    /**
     * End-of-run audit closeout: a still-open provenance record whose
     * realization window never arrived (the run ended first) is
     * counted under mct.audit.dropped and discarded. Idempotent; call
     * after the final runFor before reading stats or traces.
     */
    void finalizeAudit();

    /** Cumulative positive IPC regret vs the best sampled config. */
    double cumulativeRegret() const { return cumRegret_; }

    /** Provenance records closed with realized objectives. */
    std::uint64_t auditClosed() const { return nAuditClosed_; }

    /** Provenance records dropped before a window realized them. */
    std::uint64_t auditDropped() const { return nAuditDropped_; }

    /**
     * Checkpoint the runtime's decision state: phase detector,
     * applied configuration, decision/health histories, recovery
     * ladder, audit cursors, and the open provenance record. The
     * controller must be reconstructed with identical parameters
     * (and the same managed System) before restoring.
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    System &sys;
    MctParams p;
    std::vector<MellowConfig> space_;
    std::vector<MellowConfig> samples_;
    std::vector<std::size_t> sampleIdx_;
    PhaseDetector det;

    enum class State { NeedSampling, Running };
    State state = State::NeedSampling;
    MellowConfig current;
    Metrics baseMetrics;
    std::vector<Decision> history;
    std::vector<HealthRecord> healthLog;
    WindowAccum samplingAcc;
    WindowAccum testingAcc;
    InstCount sinceHealthCheck = 0;
    std::uint64_t nResamplings = 0;
    std::uint64_t nFallbacks = 0;
    std::uint64_t nHealthChecks = 0;

    // Graceful-degradation state (see docs/robustness.md).
    unsigned ladder = 0;
    bool cooldownActive = false;
    InstCount cooldownUntil = 0;
    bool emergencyOn = false;
    Metrics lastGoodBase;
    bool haveGoodBase = false;
    std::deque<SysSnapshot> wearTrail;
    std::uint64_t nQuarantined = 0;
    std::uint64_t nPredRejected = 0;
    std::uint64_t nPredCorrupted = 0;
    std::uint64_t nRetryRounds = 0;
    std::uint64_t nBaseRepairs = 0;
    std::uint64_t nResampleEscalations = 0;
    std::uint64_t nEmergency = 0;
    std::uint64_t nReengage = 0;
    std::uint64_t nAlertEscalations = 0;

    /** Histogram of instructions consumed per sampling period
     *  (lives in the system's registry as mct.sampling.period_insts). */
    LogHistogram *samplingHist = nullptr;

    // Decision provenance / prediction-accuracy audit state: one
    // record is open between a decision and the next execution
    // window, which closes it with realized objectives.
    ProvenanceRecord openProv_;
    bool openProvValid_ = false;
    std::uint64_t provSeq_ = 0;
    double cumRegret_ = 0.0;
    std::uint64_t nAuditClosed_ = 0;
    std::uint64_t nAuditDropped_ = 0;
    std::uint64_t nErrInvalid_ = 0;
    std::uint64_t nRegretPos_ = 0;
    std::uint64_t nAttrSnapshots_ = 0;
    std::array<ml::Vector, numProvenanceObjectives> lastAttr_{};

    /** Calibration histograms of |pred-real|/real in basis points,
     *  one per objective (registry-owned, model-tagged paths). */
    std::array<LogHistogram *, numProvenanceObjectives> errHist_{};

    /** Register mct.* stats in the managed system's registry. */
    void registerStats();

    /** Measure the baseline configuration for @p insts. */
    Metrics measureBaseline(InstCount insts, WindowAccum &acc);

    /** Full sampling + prediction + selection round (with bounded
     *  reject -> resample retries under RecoveryParams). */
    void sampleAndChoose();

    /**
     * One sampling + prediction attempt. Returns false when the
     * prediction round failed the sanity bounds and should be
     * retried; on success fills @p decision (fixup applied).
     */
    bool samplingRound(Decision &decision);

    /** One monitored execution window of the chosen configuration. */
    void runMonitoredWindow(InstCount insts);

    /** One window under the post-fallback baseline cooldown. */
    void runCooldownWindow(InstCount insts);

    /** One window under the emergency wear clamp. */
    void runEmergencyWindow(InstCount insts);

    /** Health check: re-measure baseline, climb the escalation
     *  ladder (retry -> resample -> fallback + cooldown). */
    void healthCheck();

    /** True when every field of @p m is finite and plausible. */
    static bool saneMetrics(const Metrics &m);

    /** Last known-good baseline, or a conservative synthetic one. */
    Metrics fallbackBaseline() const;

    /** Quarantine corrupt sample/anchor pairs (neutral ratio 1). */
    void sanitizeSamples(std::vector<Metrics> &sampled,
                         std::vector<Metrics> &pairBase);

    /** Run one predictor objective (honoring predictOverride and the
     *  fault injector's garbage hook); carries the model's audit
     *  surface (identity, uncertainty, attribution) along. */
    Prediction predictObjective(TrainData &data, const ml::Vector &y,
                                const char *objective);

    /** Open @p decision's provenance record (constraints, predicted
     *  objectives + uncertainty, runner-ups, regret oracle,
     *  attribution snapshot every auditEvery decisions). */
    void beginProvenance(const Decision &decision, int idx,
                         const std::vector<Metrics> &predicted,
                         const std::vector<bool> &badCfg,
                         const Prediction &pIpc,
                         const Prediction &pLife,
                         const Prediction &pEnergy,
                         const ml::Vector &yIpc);

    /** Minimal record for a decision with no surviving prediction
     *  round (total sampling failure -> baseline fallback). */
    void beginFallbackProvenance(const Decision &decision);

    /** Shared open-record bootstrap for the two begin paths. */
    ProvenanceRecord startProvenance(const Decision &decision);

    /** Close the open record against a window's realized metrics:
     *  relative errors (guarded), regret, calibration histograms. */
    void closeProvenance(const Metrics &realized);

    /** Record a RecoveryAction trace event. */
    void traceRecovery(RecoveryStep step, double detail = 0.0);

    /** Start the post-fallback baseline cooldown. */
    void enterCooldown();

    /** Track the trailing wear window; engage/release the emergency
     *  clamp when the projected lifetime crosses the floor. */
    void noteWearWindow(const SysSnapshot &after);
};

} // namespace mct

#endif // MCT_MCT_CONTROLLER_HH
