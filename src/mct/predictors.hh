/**
 * @file
 * Unified interface over the predictor family the paper compares
 * (Table 7, Fig 2): offline averaging, linear and quadratic
 * regression with and without lasso, gradient boosting, and the
 * hierarchical Bayesian model. Each predictor consumes measurements
 * of a few sampled configurations and produces predictions for every
 * configuration in the space.
 */

#ifndef MCT_MCT_PREDICTORS_HH
#define MCT_MCT_PREDICTORS_HH

#include <string>
#include <vector>

#include "mct/config.hh"
#include "memctrl/mellow_config.hh"
#include "ml/linalg.hh"

namespace mct
{

/** The models of Table 7. */
enum class PredictorKind
{
    Offline,
    Linear,
    LinearLasso,
    Quadratic,
    QuadraticLasso,
    GradientBoosting,
    HierBayes,
};

/** Table 7 row label. */
std::string toString(PredictorKind kind);

/** Short machine-friendly tag (stat paths, CLI): offline, linear,
 *  lasso, quad, qlasso, gbt, hb. */
std::string predictorTag(PredictorKind kind);

/** All predictor kinds in Table 7 order. */
const std::vector<PredictorKind> &allPredictorKinds();

/** Training inputs for one objective. */
struct TrainData
{
    /** The full configuration space being predicted. */
    const std::vector<MellowConfig> *space = nullptr;

    /** Indices (into the space) of the sampled configurations. */
    std::vector<std::size_t> sampleIdx;

    /** Measured objective at each sampled configuration. */
    ml::Vector sampleY;

    /**
     * Offline library for Offline / HierBayes: one row per training
     * application, one column per space configuration.
     */
    const ml::Matrix *library = nullptr;
};

/**
 * Predict the objective for every configuration in the space.
 */
ml::Vector predictAllConfigs(PredictorKind kind, const TrainData &data);

/**
 * predictAllConfigs plus the audit surface of the fitted model: its
 * identity label, a per-configuration uncertainty where the model has
 * one (hierarchical-Bayes posterior 1-sigma, gradient-boosting staged
 * -estimate spread; empty otherwise), and a per-base-feature
 * attribution where the model is feature-based (|weights| for the
 * linear family with quadratic terms folded onto their base
 * dimensions, split-gain importances for gradient boosting; empty for
 * the latent/offline models).
 */
struct Prediction
{
    ml::Vector values;      ///< predicted objective per configuration
    ml::Vector uncertainty; ///< per-configuration 1-sigma (may be empty)
    ml::Vector attribution; ///< per-feature weight, configDims long
    std::string model;      ///< Table 7 row label
};

[[nodiscard]] Prediction
predictAllConfigsDetailed(PredictorKind kind, const TrainData &data);

/** True when the predictor requires offline (library) data. */
bool needsOfflineData(PredictorKind kind);

/** Encode the whole space as an Eq. 1 design matrix. */
ml::Matrix encodeSpace(const std::vector<MellowConfig> &space);

} // namespace mct

#endif // MCT_MCT_PREDICTORS_HH
