/**
 * @file
 * Unified interface over the predictor family the paper compares
 * (Table 7, Fig 2): offline averaging, linear and quadratic
 * regression with and without lasso, gradient boosting, and the
 * hierarchical Bayesian model. Each predictor consumes measurements
 * of a few sampled configurations and produces predictions for every
 * configuration in the space.
 */

#ifndef MCT_MCT_PREDICTORS_HH
#define MCT_MCT_PREDICTORS_HH

#include <string>
#include <vector>

#include "mct/config.hh"
#include "ml/linalg.hh"

namespace mct
{

/** The models of Table 7. */
enum class PredictorKind
{
    Offline,
    Linear,
    LinearLasso,
    Quadratic,
    QuadraticLasso,
    GradientBoosting,
    HierBayes,
};

/** Table 7 row label. */
std::string toString(PredictorKind kind);

/** All predictor kinds in Table 7 order. */
const std::vector<PredictorKind> &allPredictorKinds();

/** Training inputs for one objective. */
struct TrainData
{
    /** The full configuration space being predicted. */
    const std::vector<MellowConfig> *space = nullptr;

    /** Indices (into the space) of the sampled configurations. */
    std::vector<std::size_t> sampleIdx;

    /** Measured objective at each sampled configuration. */
    ml::Vector sampleY;

    /**
     * Offline library for Offline / HierBayes: one row per training
     * application, one column per space configuration.
     */
    const ml::Matrix *library = nullptr;
};

/**
 * Predict the objective for every configuration in the space.
 */
ml::Vector predictAllConfigs(PredictorKind kind, const TrainData &data);

/** True when the predictor requires offline (library) data. */
bool needsOfflineData(PredictorKind kind);

/** Encode the whole space as an Eq. 1 design matrix. */
ml::Matrix encodeSpace(const std::vector<MellowConfig> &space);

} // namespace mct

#endif // MCT_MCT_PREDICTORS_HH
