#include "mct/feature_compressor.hh"


namespace mct
{

const std::vector<std::string> &
compressedFeatureNames()
{
    static const std::vector<std::string> names = {
        "bank_aware", "eager_writebacks", "fast_latency",
        "slow_latency", "cancellation"};
    return names;
}

ml::Vector
compressConfig(const MellowConfig &cfg)
{
    ml::Vector v(compressedDims, 0.0);
    v[0] = cfg.bankAware ? cfg.bankAwareThreshold : 0;
    if (cfg.eagerWritebacks) {
        // Map threshold {4, 8, 16, 32} to level 1..4.
        int level = 0;
        for (int t = cfg.eagerThreshold; t > 2; t /= 2)
            ++level;
        v[1] = level; // 4 -> 1, 8 -> 2, 16 -> 3, 32 -> 4
    }
    v[2] = cfg.fastLatency;
    v[3] = cfg.usesSlowWrites() ? cfg.slowLatency : 0.0;
    if (cfg.fastCancellation)
        v[4] = 2.0;
    else if (cfg.usesSlowWrites() && cfg.slowCancellation)
        v[4] = 1.0;
    return v;
}

ml::Matrix
compressAll(const std::vector<MellowConfig> &cfgs)
{
    ml::Matrix x(cfgs.size(), compressedDims);
    for (std::size_t r = 0; r < cfgs.size(); ++r) {
        const ml::Vector v = compressConfig(cfgs[r]);
        for (std::size_t c = 0; c < compressedDims; ++c)
            x(r, c) = v[c];
    }
    return x;
}

const std::vector<std::size_t> &
primaryFeatureIndices()
{
    static const std::vector<std::size_t> idx = {2, 3, 4};
    return idx;
}

} // namespace mct
