#include "mct/config_space.hh"

#include "common/logging.hh"

namespace mct
{

namespace
{

/** The three legal cancellation pairs when slow writes exist. */
struct CancelPair
{
    bool fast;
    bool slow;
};

constexpr CancelPair cancelPairs[] = {
    {false, false}, {false, true}, {true, true}};

void
emitQuotaVariants(MellowConfig base, const SpaceOptions &opts,
                  std::vector<MellowConfig> &out)
{
    if (opts.includeQuotaOff) {
        base.wearQuota = false;
        out.push_back(base);
    }
    for (double target : opts.quotaTargets) {
        base.wearQuota = true;
        base.wearQuotaTarget = target;
        out.push_back(base);
    }
}

} // namespace

std::vector<MellowConfig>
enumerateSpace(const SpaceOptions &opts)
{
    std::vector<MellowConfig> out;

    // Technique levels: off plus each threshold.
    std::vector<int> bankLevels = {0};
    for (int t : opts.bankThresholds)
        bankLevels.push_back(t);
    std::vector<int> eagerLevels = {0};
    for (int t : opts.eagerThresholds)
        eagerLevels.push_back(t);

    for (int bank : bankLevels) {
        for (int eager : eagerLevels) {
            MellowConfig base;
            base.bankAware = bank > 0;
            if (bank > 0)
                base.bankAwareThreshold = bank;
            base.eagerWritebacks = eager > 0;
            if (eager > 0)
                base.eagerThreshold = eager;

            const bool slowUsed = base.usesSlowWrites();
            for (std::size_t fi = 0; fi < opts.latencies.size(); ++fi) {
                base.fastLatency = opts.latencies[fi];
                if (!slowUsed) {
                    // Default-technique-only configurations: no slow
                    // write parameters, cancellation on fast writes
                    // only.
                    base.slowLatency = base.fastLatency;
                    base.slowCancellation = false;
                    for (bool fc : {false, true}) {
                        base.fastCancellation = fc;
                        base.slowCancellation = fc; // constraint
                        emitQuotaVariants(base, opts, out);
                    }
                    continue;
                }
                for (std::size_t si = fi + 1;
                     si < opts.latencies.size(); ++si) {
                    base.slowLatency = opts.latencies[si];
                    for (const auto &cp : cancelPairs) {
                        base.fastCancellation = cp.fast;
                        base.slowCancellation = cp.slow;
                        emitQuotaVariants(base, opts, out);
                    }
                }
            }
        }
    }

    for (const auto &cfg : out) {
        if (!cfg.valid())
            mct_panic("enumerateSpace produced invalid configuration");
    }
    return out;
}

std::vector<MellowConfig>
enumerateNoQuotaSpace(const SpaceOptions &optsIn)
{
    SpaceOptions opts = optsIn;
    opts.quotaTargets.clear();
    opts.includeQuotaOff = true;
    return enumerateSpace(opts);
}

} // namespace mct
