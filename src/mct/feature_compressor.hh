/**
 * @file
 * Manual feature compression (paper Section 4.4, "Feature
 * selection"): the 8 non-quota knobs are merged by domain knowledge
 * into 5 features:
 *
 *   bank_aware        0 (off) .. 4        (usage + threshold merged)
 *   eager_writebacks  0 (off), 1..4       (usage + level merged;
 *                                          levels index {4,8,16,32})
 *   fast_latency      1.0 .. 4.0
 *   slow_latency      0 (unused) .. 4.0
 *   cancellation      0 none, 1 slow only, 2 fast+slow
 */

#ifndef MCT_MCT_FEATURE_COMPRESSOR_HH
#define MCT_MCT_FEATURE_COMPRESSOR_HH

#include <string>
#include <vector>

#include "memctrl/mellow_config.hh"
#include "ml/linalg.hh"

namespace mct
{

/** Number of compressed features. */
constexpr std::size_t compressedDims = 5;

/** Names of the compressed features. */
const std::vector<std::string> &compressedFeatureNames();

/** Compress one configuration. */
ml::Vector compressConfig(const MellowConfig &cfg);

/** Compress many configurations into a design matrix. */
ml::Matrix compressAll(const std::vector<MellowConfig> &cfgs);

/** Indices (into the compressed features) of the three primary
 *  features the paper identifies: fast_latency, slow_latency,
 *  cancellation. */
const std::vector<std::size_t> &primaryFeatureIndices();

} // namespace mct

#endif // MCT_MCT_FEATURE_COMPRESSOR_HH
