/**
 * @file
 * Lightweight phase detector (paper Section 5.1, Fig 6).
 *
 * Memory workload (demand reads + writebacks) is counted per window
 * of I instructions from existing performance counters. A two-sided
 * Student's (Welch's) t-test compares the recent windows against the
 * longer history; when the score exceeds a threshold, a dramatic
 * phase change is declared and the history restarts. Fine-grained
 * bursts are tolerated by the window averaging; only coarse shifts
 * trip the detector.
 */

#ifndef MCT_MCT_PHASE_DETECTOR_HH
#define MCT_MCT_PHASE_DETECTOR_HH

#include <cstdint>

#include "common/stats.hh"

namespace mct
{

class Serializer;
class Deserializer;

/** Detector parameters. The paper uses I = 1M instructions with a
 *  1000-window history and 100-window recency; scaled runs keep the
 *  10:1 history:recent ratio. */
struct PhaseDetectorParams
{
    unsigned historyWindows = 100;
    unsigned recentWindows = 10;
    double scoreThreshold = 15.0;

    /**
     * Additionally require the recent mean to shift by this fraction
     * of the history mean. On near-constant workload series the t
     * statistic is hair-triggered (any drift is "significant"); real
     * phase changes move the level materially.
     */
    double minRelativeShift = 0.10;

    /** Minimum history before scores are meaningful. */
    unsigned minWindows = 30;
};

/**
 * Streaming t-test phase detector.
 */
class PhaseDetector
{
  public:
    explicit PhaseDetector(const PhaseDetectorParams &params = {});

    /**
     * Feed one window's memory-workload count.
     *
     * @return true when a new phase is declared (history restarts).
     */
    bool push(double workload);

    /** t score of the most recent push. */
    double lastScore() const { return score; }

    /** Phases declared so far. */
    std::uint64_t phasesDetected() const { return nPhases; }

    /** Mean workload over the current history (sampling-unit sizing,
     *  Section 5.2). */
    double historyMean() const { return history.mean(); }

    /** Windows observed since the last phase restart. */
    std::size_t windowsInPhase() const { return history.size(); }

    /** Forget everything (uses on configuration change). */
    void reset();

    /** Checkpoint the history window and phase counters. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    PhaseDetectorParams p;
    SlidingWindow history;
    double score = 0.0;
    std::uint64_t nPhases = 0;
};

} // namespace mct

#endif // MCT_MCT_PHASE_DETECTOR_HH
