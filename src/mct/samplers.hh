/**
 * @file
 * Sample-configuration selection (paper Section 4.4, Fig 4b).
 *
 * Feature-based sampling grids the three primary features uniformly
 * (fast_latency, slow_latency, cancellation) and randomizes the rest:
 * 63 slow-write samples (21 latency pairs x 3 cancellation pairs)
 * plus 14 fast-only samples (7 latencies x 2 cancellation choices)
 * = 77 samples, the count the paper reports. Random sampling draws
 * uniformly from a supplied space.
 */

#ifndef MCT_MCT_SAMPLERS_HH
#define MCT_MCT_SAMPLERS_HH

#include <cstdint>
#include <vector>

#include "memctrl/mellow_config.hh"
#include "mct/config_space.hh"

namespace mct
{

/**
 * The 77 feature-guided samples. Wear quota is always off (it is
 * excluded from learning, Section 4.4).
 */
std::vector<MellowConfig> featureBasedSamples(
    std::uint64_t seed, const SpaceOptions &opts = {});

/** @p n configurations drawn uniformly without replacement. */
std::vector<MellowConfig> randomSamples(
    const std::vector<MellowConfig> &space, std::size_t n,
    std::uint64_t seed);

/**
 * Indices of @p samples within @p space (fatal if a sample is
 * missing; used to align sampled measurements with library columns).
 */
std::vector<std::size_t> indicesInSpace(
    const std::vector<MellowConfig> &space,
    const std::vector<MellowConfig> &samples);

} // namespace mct

#endif // MCT_MCT_SAMPLERS_HH
