/**
 * @file
 * Enumeration of the combined-technique configuration space under the
 * constraints of paper Section 3.3.1:
 *
 *  - parameters exist only when their technique is enabled;
 *  - slow_latency > fast_latency;
 *  - fast cancellation implies slow cancellation, so the cancellation
 *    pairs are (off, off), (off, slow), (fast, slow).
 *
 * The paper's exact discretization is unpublished; ours (latencies in
 * 0.5x steps, bank thresholds 1..4, eager thresholds {4,8,16,32},
 * wear-quota {off, 8y} by default) yields a space of the same
 * magnitude as the paper's 3,164 configurations.
 */

#ifndef MCT_MCT_CONFIG_SPACE_HH
#define MCT_MCT_CONFIG_SPACE_HH

#include <vector>

#include "memctrl/mellow_config.hh"

namespace mct
{

/** Knob discretization for enumeration. */
struct SpaceOptions
{
    /** Latency grid for fast and slow writes. */
    std::vector<double> latencies = {1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};

    /** Bank-aware thresholds when the technique is on. */
    std::vector<int> bankThresholds = {1, 2, 3, 4};

    /** Eager thresholds when the technique is on. */
    std::vector<int> eagerThresholds = {4, 8, 16, 32};

    /** Wear-quota targets; empty means "quota never enabled". */
    std::vector<double> quotaTargets = {8.0};

    /** Also include wear-quota-off variants (always true in paper). */
    bool includeQuotaOff = true;
};

/** Enumerate every valid configuration for the given options. */
std::vector<MellowConfig> enumerateSpace(const SpaceOptions &opts = {});

/** The learning subspace: wear quota excluded (paper Section 4.4). */
std::vector<MellowConfig> enumerateNoQuotaSpace(
    const SpaceOptions &opts = {});

} // namespace mct

#endif // MCT_MCT_CONFIG_SPACE_HH
