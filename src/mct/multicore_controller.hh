/**
 * @file
 * MCT selection for multi-program workloads (paper Section 6.2.5).
 *
 * On the 4-core machine the design space cannot be brute-forced (the
 * paper calls it computationally intractable), but MCT still works:
 * sample the 77 feature-guided configurations, predict the geomean-
 * IPC / lifetime / energy of the whole space, optimize under the
 * lifetime floor, and apply the wear-quota fixup. Sample objectives
 * come from short dedicated runs of the mix under each configuration
 * (the quasi-steady stand-in for the paper's long sampling windows;
 * see MctParams::steadyMeasure for the single-core analogue).
 */

#ifndef MCT_MCT_MULTICORE_CONTROLLER_HH
#define MCT_MCT_MULTICORE_CONTROLLER_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "mct/config_space.hh"
#include "mct/optimizer.hh"
#include "mct/predictors.hh"
#include "memctrl/mellow_config.hh"
#include "sim/multicore.hh"

namespace mct
{

/** Selection parameters for the multi-core machine. */
struct MultiMctParams
{
    PredictorKind predictor = PredictorKind::GradientBoosting;
    LifetimeObjective objective{8.0, 0.95, 1.15};
    MellowConfig baseline = staticBaselineConfig();
    SpaceOptions spaceOpts{};

    /** Per-core warm-up before each sample measurement. */
    InstCount sampleWarmup = 60 * 1000;

    /** Per-core instructions measured per sample. */
    InstCount sampleMeasure = 100 * 1000;

    /**
     * Take every k-th feature-guided sample (multi-core sample
     * evaluations are expensive; the latency/cancellation grid stays
     * covered at stride 3, which keeps 26 of the 77 samples).
     */
    unsigned sampleStride = 1;

    /** Apply the Section 5.3 wear-quota fixup to the choice. */
    bool wearQuotaFixup = true;

    std::uint64_t seed = 42;
};

/** Outcome of one multi-core selection round. */
struct MultiMctResult
{
    MellowConfig chosen;
    Metrics predicted;       ///< at the chosen configuration
    bool feasible = true;    ///< lifetime floor satisfiable per model
    Metrics baselineMeasured;
    std::vector<Metrics> sampled; ///< per feature-guided sample
};

/**
 * Run the sampling + prediction + constrained-optimization round for
 * a 4-program mix and return the chosen configuration.
 */
MultiMctResult chooseMultiCoreConfig(
    const std::vector<std::string> &apps, const MultiCoreParams &mp,
    const MultiMctParams &params);

} // namespace mct

#endif // MCT_MCT_MULTICORE_CONTROLLER_HH
