#include "mct/multicore_controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "mct/samplers.hh"

namespace mct
{

namespace
{

Metrics
measureMix(const std::vector<std::string> &apps,
           const MultiCoreParams &mp, const MellowConfig &cfg,
           InstCount warmup, InstCount measure)
{
    MultiCoreSystem sys(apps, mp, cfg);
    sys.run(warmup);
    const MultiSnapshot s0 = sys.snapshot();
    sys.run(measure);
    const MultiMetrics m = sys.metricsBetween(s0, sys.snapshot());
    return Metrics{m.geomeanIpc, m.lifetimeYears, m.energyJ};
}

} // namespace

MultiMctResult
chooseMultiCoreConfig(const std::vector<std::string> &apps,
                      const MultiCoreParams &mp,
                      const MultiMctParams &params)
{
    const auto space = enumerateNoQuotaSpace(params.spaceOpts);
    auto samples = featureBasedSamples(params.seed, params.spaceOpts);
    if (params.sampleStride > 1) {
        std::vector<MellowConfig> kept;
        for (std::size_t i = 0; i < samples.size();
             i += params.sampleStride)
            kept.push_back(samples[i]);
        samples = std::move(kept);
    }
    const auto sampleIdx = indicesInSpace(space, samples);

    MultiMctResult res;
    res.baselineMeasured =
        measureMix(apps, mp, params.baseline, params.sampleWarmup,
                   params.sampleMeasure);
    res.sampled.reserve(samples.size());
    for (const auto &cfg : samples) {
        res.sampled.push_back(measureMix(apps, mp, cfg,
                                         params.sampleWarmup,
                                         params.sampleMeasure));
    }

    // Baseline-normalized training targets per objective.
    TrainData d;
    d.space = &space;
    d.sampleIdx = sampleIdx;
    auto predict = [&](auto pick) {
        const double base = std::max(pick(res.baselineMeasured),
                                     1e-12);
        d.sampleY.clear();
        for (const auto &m : res.sampled)
            d.sampleY.push_back(pick(m) / base);
        ml::Vector out = predictAllConfigs(params.predictor, d);
        for (auto &v : out)
            v *= base;
        return out;
    };
    const ml::Vector pIpc =
        predict([](const Metrics &m) { return m.ipc; });
    const ml::Vector pLife =
        predict([](const Metrics &m) { return m.lifetimeYears; });
    const ml::Vector pEnergy =
        predict([](const Metrics &m) { return m.energyJ; });

    std::vector<Metrics> predicted(space.size());
    for (std::size_t i = 0; i < space.size(); ++i)
        predicted[i] = Metrics{pIpc[i], pLife[i], pEnergy[i]};

    const int idx = chooseOptimal(predicted, params.objective);
    if (idx >= 0) {
        res.chosen = space[static_cast<std::size_t>(idx)];
        res.predicted = predicted[static_cast<std::size_t>(idx)];
        res.feasible = true;
    } else {
        res.chosen = params.baseline;
        res.predicted = res.baselineMeasured;
        res.feasible = false;
    }
    if (params.wearQuotaFixup) {
        res.chosen.wearQuota = true;
        res.chosen.wearQuotaTarget = std::clamp(
            params.objective.minLifetimeYears, 4.0, 10.0);
    }
    if (!res.chosen.valid())
        mct_panic("chooseMultiCoreConfig produced invalid config");
    return res;
}

} // namespace mct
