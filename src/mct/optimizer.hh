/**
 * @file
 * Constrained configuration selection (paper Section 3.2):
 *
 *   minimize    E_i
 *   subject to  T_i >= t            (lifetime floor)
 *               P_i >= 0.95 * P*    (near-maximal IPC)
 *
 * plus the alternative user-defined objectives Section 3.2 sketches
 * for embedded systems and data centers, which swap the roles of the
 * three metrics.
 */

#ifndef MCT_MCT_OPTIMIZER_HH
#define MCT_MCT_OPTIMIZER_HH

#include <vector>

#include "sim/system.hh"

namespace mct
{

/** The paper's default objective. */
struct LifetimeObjective
{
    double minLifetimeYears = 8.0;
    double ipcFraction = 0.95;

    /**
     * Feasibility is tested against minLifetimeYears * safetyMargin.
     * Lifetime estimates from finite windows are biased high (the
     * cold-cache transient under-counts writes), and configurations
     * selected exactly at the floor force the wear-quota fixup into
     * heavy throttling; a margin keeps the choice clear of both.
     * 1.0 reproduces the paper's literal constraint.
     */
    double safetyMargin = 1.0;
};

/** Data-center objective: hold performance, prefer low energy. */
struct PerfTargetObjective
{
    double minIpc = 0.0;
};

/** Embedded objective: cap energy, prefer performance. */
struct EnergyCapObjective
{
    double maxEnergyJ = 0.0;
    double minLifetimeYears = 0.0;
};

/**
 * Index of the optimal configuration under the default objective, or
 * -1 when no configuration satisfies the lifetime floor.
 */
int chooseOptimal(const std::vector<Metrics> &predicted,
                  const LifetimeObjective &obj);

/**
 * Index of the configuration with the longest predicted lifetime
 * (the fallback when nothing is feasible).
 */
int chooseMostDurable(const std::vector<Metrics> &predicted);

/** Data-center selection: min energy s.t. IPC >= target; falls back
 *  to max IPC when infeasible. */
int chooseForPerfTarget(const std::vector<Metrics> &predicted,
                        const PerfTargetObjective &obj);

/** Embedded selection: max IPC s.t. energy <= cap and lifetime >=
 *  floor; -1 when infeasible. */
int chooseForEnergyCap(const std::vector<Metrics> &predicted,
                       const EnergyCapObjective &obj);

} // namespace mct

#endif // MCT_MCT_OPTIMIZER_HH
