#include "mct/cyclic_sampler.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "sim/fault_injector.hh"

namespace
{

/**
 * Counter corruption (FaultKind::CounterCorrupt) strikes where raw
 * counters become objectives: the reduced Metrics of each measured
 * window. The controller's sanitization layer is responsible for
 * surviving whatever comes back.
 */
void
maybeCorrupt(mct::System &sys, mct::Metrics &m)
{
    if (mct::FaultInjector *inj = sys.faultInjector())
        inj->corruptMetrics(m);
}

} // namespace

namespace mct
{

void
WindowAccum::add(const SysSnapshot &from, const SysSnapshot &to)
{
    time += to.time - from.time;
    insts += to.instructions - from.instructions;
    const CtrlStats dc = to.ctrl.delta(from.ctrl);
    reads += dc.readsCompleted;
    writeEnergyUnits += dc.writeEnergyUnits;
    if (wearDelta.empty())
        wearDelta.assign(to.bankWear.size(), 0.0);
    for (std::size_t b = 0; b < wearDelta.size(); ++b)
        wearDelta[b] += to.bankWear[b] - from.bankWear[b];
}

void
WindowAccum::serialize(Serializer &s) const
{
    s.putU64(time);
    s.putU64(insts);
    s.putU64(reads);
    s.putF64(writeEnergyUnits);
    s.putU64(wearDelta.size());
    for (const double w : wearDelta)
        s.putF64(w);
}

void
WindowAccum::deserialize(Deserializer &d)
{
    time = d.getU64();
    insts = d.getU64();
    reads = d.getU64();
    writeEnergyUnits = d.getF64();
    wearDelta.assign(d.getU64(), 0.0);
    for (double &w : wearDelta)
        w = d.getF64();
}

Metrics
WindowAccum::metrics(const System &sys) const
{
    Metrics m;
    if (time > 0) {
        m.ipc = static_cast<double>(insts) /
                (static_cast<double>(time) /
                 static_cast<double>(cpuCyclePs));
    }
    const std::vector<double> zero(wearDelta.size(), 0.0);
    m.lifetimeYears =
        windowLifetimeYears(sys.params().nvm, zero, wearDelta, time);
    const double joules = sys.energyModel().energyJ(
        time, insts, reads, writeEnergyUnits, 1);
    if (insts > 0)
        m.energyJ = joules * 1e6 / static_cast<double>(insts);
    return m;
}

std::pair<Metrics, std::vector<Metrics>>
CyclicSampler::runWithAnchor(const MellowConfig &anchor,
                             const std::vector<MellowConfig> &samples)
{
    std::vector<MellowConfig> all;
    all.reserve(samples.size() + 1);
    all.push_back(anchor);
    all.insert(all.end(), samples.begin(), samples.end());
    std::vector<Metrics> metrics = run(all);
    const Metrics anchorMetrics = metrics.front();
    metrics.erase(metrics.begin());
    return {anchorMetrics, std::move(metrics)};
}

CyclicSampler::PairedResult
CyclicSampler::runPaired(const MellowConfig &anchor,
                         const std::vector<MellowConfig> &samples)
{
    if (samples.empty())
        mct_fatal("CyclicSampler: no samples");
    std::vector<WindowAccum> sampleAcc(samples.size());
    std::vector<WindowAccum> anchorAcc(samples.size());
    WindowAccum anchorAll;
    period = WindowAccum{};

    Rng rng(p.shuffleSeed);
    std::vector<std::size_t> order(samples.size());
    std::iota(order.begin(), order.end(), 0);
    auto unit = [&](const MellowConfig &cfg, WindowAccum *accs,
                    std::size_t i) {
        sys.setConfig(cfg);
        const SysSnapshot atSwitch = sys.snapshot();
        settle();
        const SysSnapshot before = sys.snapshot();
        sys.run(p.unitInsts);
        const SysSnapshot after = sys.snapshot();
        if (accs)
            accs[i].add(before, after);
        period.add(atSwitch, after);
        return std::make_pair(before, after);
    };
    for (unsigned round = 0; round < p.rounds; ++round) {
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            const std::size_t j =
                i + static_cast<std::size_t>(
                        rng.below(order.size() - i));
            std::swap(order[i], order[j]);
        }
        for (std::size_t i : order) {
            const auto [ab, aa] = unit(anchor, anchorAcc.data(), i);
            anchorAll.add(ab, aa);
            unit(samples[i], sampleAcc.data(), i);
        }
    }

    PairedResult res;
    res.anchor = anchorAll.metrics(sys);
    maybeCorrupt(sys, res.anchor);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        res.sample.push_back(sampleAcc[i].metrics(sys));
        res.pairedAnchor.push_back(anchorAcc[i].metrics(sys));
        maybeCorrupt(sys, res.sample.back());
        maybeCorrupt(sys, res.pairedAnchor.back());
    }
    return res;
}

void
CyclicSampler::settle()
{
    if (p.settleInsts == 0)
        return;
    // Drain the previous configuration's write backlog so its
    // deferred costs are not charged to the next measured window.
    const InstCount chunk = std::max<InstCount>(p.settleInsts / 4, 500);
    InstCount budget = p.settleInsts * p.maxSettleFactor;
    InstCount ran = 0;
    while (ran < p.settleInsts ||
           (ran < budget &&
            sys.controller().writeQSize() > p.settleDrainTarget)) {
        sys.run(chunk);
        ran += chunk;
    }
}

std::vector<Metrics>
CyclicSampler::run(const std::vector<MellowConfig> &samples)
{
    if (samples.empty())
        mct_fatal("CyclicSampler: no samples");
    std::vector<WindowAccum> accums(samples.size());
    period = WindowAccum{};

    Rng rng(p.shuffleSeed);
    std::vector<std::size_t> order(samples.size());
    std::iota(order.begin(), order.end(), 0);
    for (unsigned round = 0; round < p.rounds; ++round) {
        // Fisher-Yates re-shuffle per round (see shuffleSeed doc).
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            const std::size_t j =
                i + static_cast<std::size_t>(
                        rng.below(order.size() - i));
            std::swap(order[i], order[j]);
        }
        for (std::size_t i : order) {
            sys.setConfig(samples[i]);
            const SysSnapshot atSwitch = sys.snapshot();
            settle();
            const SysSnapshot before = sys.snapshot();
            sys.run(p.unitInsts);
            const SysSnapshot after = sys.snapshot();
            accums[i].add(before, after);
            period.add(atSwitch, after); // settle cost is overhead
        }
    }

    std::vector<Metrics> out;
    out.reserve(samples.size());
    for (const auto &acc : accums) {
        out.push_back(acc.metrics(sys));
        maybeCorrupt(sys, out.back());
    }
    return out;
}

} // namespace mct
