/**
 * @file
 * Lasso-driven feature analysis (paper Section 4.2 Table 6 and
 * Section 4.4 Fig 4a): linear-lasso coefficients over the compressed
 * 5-feature space identify the primary knobs, and quadratic-lasso
 * weights rank the most effective single knobs and knob pairs per
 * application.
 */

#ifndef MCT_MCT_FEATURE_SELECTION_HH
#define MCT_MCT_FEATURE_SELECTION_HH

#include <string>
#include <vector>

#include "memctrl/mellow_config.hh"
#include "ml/linalg.hh"
#include "sim/system.hh"

namespace mct
{

/** Lasso coefficients per objective over the compressed features. */
struct FeatureSelectionResult
{
    /** coefficients[obj][feature]; obj order: IPC, lifetime, energy. */
    std::vector<ml::Vector> coefficients;

    /** Features whose influence survives the lasso (indices into
     *  compressedFeatureNames()). */
    std::vector<std::size_t> primary;
};

/**
 * Fit linear lasso per objective on compressed features (targets are
 * standardized internally so coefficient magnitudes compare across
 * objectives).
 */
FeatureSelectionResult selectFeatures(
    const std::vector<MellowConfig> &configs,
    const std::vector<Metrics> &measured,
    double keepFraction = 0.15);

/** A named, signed feature weight. */
struct RankedFeature
{
    std::string name;
    double weight;
};

/**
 * Table 6: the top-k quadratic-lasso features for one objective
 * (positive weight = increases the objective).
 */
std::vector<RankedFeature> topQuadraticFeatures(
    const std::vector<MellowConfig> &configs, const ml::Vector &y,
    std::size_t k);

} // namespace mct

#endif // MCT_MCT_FEATURE_SELECTION_HH
