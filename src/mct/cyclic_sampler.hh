/**
 * @file
 * Cyclic fine-grained runtime sampling (paper Section 5.2).
 *
 * The sampling period of T instructions is divided into units of t
 * instructions; the schedule loops over all N sample configurations
 * T/(N*t) times so every sample experiences the same mix of bursty
 * and idle memory behavior. Per-sample statistics are accumulated
 * across a sample's units and reduced to the three objectives.
 */

#ifndef MCT_MCT_CYCLIC_SAMPLER_HH
#define MCT_MCT_CYCLIC_SAMPLER_HH

#include <vector>

#include "common/types.hh"
#include "memctrl/mellow_config.hh"
#include "sim/system.hh"

namespace mct
{

/** Accumulated deltas of several disjoint execution windows. */
struct WindowAccum
{
    Tick time = 0;
    InstCount insts = 0;
    std::uint64_t reads = 0;
    double writeEnergyUnits = 0.0;
    std::vector<double> wearDelta;

    /** Fold in the window between two snapshots. */
    void add(const SysSnapshot &from, const SysSnapshot &to);

    /** Reduce to the three objectives on the given system. */
    Metrics metrics(const System &sys) const;

    /** Checkpoint the accumulated window. */
    void serialize(Serializer &s) const;

    /** Restore a window written by serialize(). */
    void deserialize(Deserializer &d);
};

/** Sampling schedule parameters. */
struct CyclicSamplerParams
{
    /** Measured instructions per sampling unit (t). */
    InstCount unitInsts = 2000;

    /**
     * Instructions run after each configuration switch before the
     * measured unit starts. Without this, a configuration's deferred
     * costs (a write queue it filled cheaply) land in the next
     * sample's window and bias every measurement. The settle phase is
     * adaptive: it ends early once the write queue has drained, and
     * extends (up to maxSettleFactor * settleInsts) while a backlog
     * from the previous configuration persists.
     */
    InstCount settleInsts = 1000;

    /** Upper bound on adaptive settling, as a factor of settleInsts;
     *  1 disables the adaptive extension (empirically the fixed-length
     *  settle pairs better with the rotating anchor). */
    unsigned maxSettleFactor = 1;

    /** The write-queue level considered "drained" during settle. */
    unsigned settleDrainTarget = 4;

    /** Passes over the whole sample list (many small scattered units
     *  approximate the paper's T/(N*t) ~ 100 loops; raise this when
     *  the sampling budget allows — estimate quality grows with
     *  scattered coverage of the workload's bursts). */
    unsigned rounds = 4;

    /**
     * Sample order is re-shuffled every round so the schedule period
     * cannot alias against the workload's burst period (with a fixed
     * order, every sample would re-visit the same burst phase each
     * round).
     */
    std::uint64_t shuffleSeed = 99;
};

/**
 * Runs the schedule on a live system and reports per-sample
 * objectives plus the aggregate cost of the sampling period.
 */
class CyclicSampler
{
  public:
    CyclicSampler(System &system, const CyclicSamplerParams &params)
        : sys(system), p(params)
    {}

    /**
     * Execute the schedule: rounds x samples units of unitInsts each.
     * The system is left configured with the last sample.
     *
     * @return per-sample objectives, index-aligned with @p samples.
     */
    std::vector<Metrics> run(const std::vector<MellowConfig> &samples);

    /**
     * Like run(), but rotates an extra anchor configuration (the
     * normalization baseline, Section 4.4) through the same schedule
     * so its measurement sees the same burst mix as every sample.
     *
     * @return the anchor's objectives and the per-sample objectives.
     */
    std::pair<Metrics, std::vector<Metrics>> runWithAnchor(
        const MellowConfig &anchor,
        const std::vector<MellowConfig> &samples);

    /** Result of the paired schedule. */
    struct PairedResult
    {
        /** Pooled objectives per sample. */
        std::vector<Metrics> sample;

        /** Pooled objectives of each sample's adjacent anchor
         *  units (same burst mix as that sample's units). */
        std::vector<Metrics> pairedAnchor;

        /** Anchor pooled over the whole period (absolute scale). */
        Metrics anchor;
    };

    /**
     * Paired schedule: each sample unit is immediately preceded by an
     * anchor unit, so per-sample normalization divides out the burst
     * state both units shared. This is how short scaled-down sampling
     * periods recover the stability the paper gets from looping
     * T/(N*t) ~ 100 times over each sample.
     */
    PairedResult runPaired(const MellowConfig &anchor,
                           const std::vector<MellowConfig> &samples);

    /** Aggregate window over the whole last sampling period. */
    const WindowAccum &periodAccum() const { return period; }

    /** Total instructions the last run consumed. */
    InstCount instsUsed() const { return period.insts; }

  private:
    System &sys;
    CyclicSamplerParams p;
    WindowAccum period;

    /** Adaptive post-switch settling (see settleInsts). */
    void settle();
};

} // namespace mct

#endif // MCT_MCT_CYCLIC_SAMPLER_HH
