/**
 * @file
 * Vector encoding of the Mellow-Writes configuration space (paper
 * Eq. 1): every configuration is a 10-dimensional vector
 *
 *   [bank_aware, bank_aware_threshold, eager_writebacks,
 *    eager_threshold, wear_quota, wear_quota_target, fast_latency,
 *    slow_latency, fast_cancellation, slow_cancellation]
 *
 * with disabled techniques contributing zeros. The learning models
 * consume these vectors (and their 65-dimensional quadratic
 * expansion).
 */

#ifndef MCT_MCT_CONFIG_HH
#define MCT_MCT_CONFIG_HH

#include <string>
#include <vector>

#include "memctrl/mellow_config.hh"
#include "ml/linalg.hh"

namespace mct
{

/** Dimension of the configuration vector. */
constexpr std::size_t configDims = 10;

/** Names of the 10 dimensions, in Eq. 1 order. */
const std::vector<std::string> &configDimNames();

/** Encode a configuration as the Eq. 1 vector. */
ml::Vector configToVector(const MellowConfig &cfg);

/**
 * Decode an Eq. 1 vector back to a configuration (inverse of
 * configToVector for vectors it produced).
 */
MellowConfig configFromVector(const ml::Vector &v);

/** One-line human-readable rendering. */
std::string toString(const MellowConfig &cfg);

/** Paper-style table row (Tables 4, 5, 10 column order). */
std::vector<std::string> configTableRow(const MellowConfig &cfg);

/** Header matching configTableRow. */
std::vector<std::string> configTableHeader();

} // namespace mct

#endif // MCT_MCT_CONFIG_HH
