#include "mct/feature_selection.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "mct/config.hh"
#include "mct/feature_compressor.hh"
#include "ml/lasso.hh"
#include "ml/quadratic_features.hh"

namespace mct
{

namespace
{

ml::Vector
standardize(const ml::Vector &y)
{
    double mu = 0.0;
    for (double v : y)
        mu += v;
    mu /= static_cast<double>(y.size());
    double ss = 0.0;
    for (double v : y)
        ss += (v - mu) * (v - mu);
    const double sd = std::sqrt(ss / static_cast<double>(y.size()));
    ml::Vector out(y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        out[i] = sd > 1e-12 ? (y[i] - mu) / sd : 0.0;
    return out;
}

} // namespace

FeatureSelectionResult
selectFeatures(const std::vector<MellowConfig> &configs,
               const std::vector<Metrics> &measured,
               double keepFraction)
{
    if (configs.size() != measured.size() || configs.empty())
        mct_fatal("selectFeatures: bad inputs");

    const ml::Matrix x = compressAll(configs);
    std::vector<ml::Vector> targets(3, ml::Vector(configs.size()));
    for (std::size_t i = 0; i < configs.size(); ++i) {
        targets[0][i] = measured[i].ipc;
        targets[1][i] = measured[i].lifetimeYears;
        targets[2][i] = measured[i].energyJ;
    }

    FeatureSelectionResult res;
    ml::Vector maxAbs(compressedDims, 0.0);
    for (const auto &y : targets) {
        ml::LassoParams lp;
        lp.lambdaFrac = 0.05;
        ml::LassoRegression lasso(lp);
        lasso.fit(x, standardize(y));
        res.coefficients.push_back(lasso.coefficients());
        for (std::size_t j = 0; j < compressedDims; ++j) {
            maxAbs[j] = std::max(maxAbs[j],
                                 std::fabs(lasso.coefficients()[j]));
        }
    }

    double overallMax = 0.0;
    for (double v : maxAbs)
        overallMax = std::max(overallMax, v);
    for (std::size_t j = 0; j < compressedDims; ++j) {
        if (maxAbs[j] >= keepFraction * overallMax && maxAbs[j] > 1e-9)
            res.primary.push_back(j);
    }
    return res;
}

std::vector<RankedFeature>
topQuadraticFeatures(const std::vector<MellowConfig> &configs,
                     const ml::Vector &y, std::size_t k)
{
    if (configs.size() != y.size() || configs.empty())
        mct_fatal("topQuadraticFeatures: bad inputs");

    ml::QuadraticFeatureMap qmap(configDimNames());
    ml::Matrix x(configs.size(), qmap.outputDim());
    for (std::size_t r = 0; r < configs.size(); ++r) {
        const ml::Vector e = qmap.expand(configToVector(configs[r]));
        for (std::size_t c = 0; c < e.size(); ++c)
            x(r, c) = e[c];
    }

    ml::LassoParams lp;
    lp.lambdaFrac = 0.02;
    ml::LassoRegression lasso(lp);
    lasso.fit(x, standardize(y));

    std::vector<std::size_t> order(qmap.outputDim());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
        return std::fabs(lasso.coefficients()[a]) >
               std::fabs(lasso.coefficients()[b]);
    });

    std::vector<RankedFeature> out;
    for (std::size_t i = 0; i < std::min(k, order.size()); ++i) {
        const std::size_t j = order[i];
        if (std::fabs(lasso.coefficients()[j]) <= 1e-12)
            break;
        out.push_back({qmap.name(j), lasso.coefficients()[j]});
    }
    return out;
}

} // namespace mct
