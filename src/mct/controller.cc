#include "mct/controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "mct/samplers.hh"

namespace mct
{

namespace
{

/** Safe ratio for normalization (Section 4.4). */
double
ratio(double value, double base)
{
    return value / std::max(base, 1e-12);
}

} // namespace

MctController::MctController(System &system, const MctParams &params)
    : sys(system), p(params), det(params.phase)
{
    space_ = enumerateNoQuotaSpace(p.spaceOpts);
    samples_ = featureBasedSamples(p.seed, p.spaceOpts);
    sampleIdx_ = indicesInSpace(space_, samples_);
    current = p.baseline;
    registerStats();
    sys.setConfig(current);
}

void
MctController::registerStats()
{
    StatRegistry &reg = sys.statRegistry();
    reg.addCounter("mct.decisions",
                   [this] { return history.size(); },
                   "prediction/selection rounds completed");
    reg.addCounter("mct.resamplings", [this] { return nResamplings; },
                   "phase-triggered re-sampling rounds");
    reg.addCounter("mct.health_checks",
                   [this] { return nHealthChecks; });
    reg.addCounter("mct.fallbacks", [this] { return nFallbacks; },
                   "health-check fallbacks to the baseline");
    reg.addGauge("mct.phase.last_score",
                 [this] { return det.lastScore(); });
    reg.addCounter("mct.phase.phases_detected",
                   [this] { return det.phasesDetected(); });
    reg.addGauge("mct.phase.windows_in_phase", [this] {
        return static_cast<double>(det.windowsInPhase());
    });
    reg.addGauge("mct.phase.history_mean",
                 [this] { return det.historyMean(); });
    reg.addCounter("mct.sampling.insts",
                   [this] { return samplingAcc.insts; },
                   "instructions charged to sampling periods (Fig 9)");
    reg.addCounter("mct.testing.insts",
                   [this] { return testingAcc.insts; },
                   "instructions under chosen configurations (Fig 9)");
    reg.addGauge("mct.baseline.ipc",
                 [this] { return baseMetrics.ipc; });
    reg.addGauge("mct.baseline.lifetime_years",
                 [this] { return baseMetrics.lifetimeYears; });
    reg.addGauge("mct.baseline.energy_j",
                 [this] { return baseMetrics.energyJ; });
    reg.addGauge("mct.current.slow_latency",
                 [this] { return current.slowLatency; });
    reg.addGauge("mct.current.wear_quota",
                 [this] { return current.wearQuota ? 1.0 : 0.0; });
    reg.addGauge("mct.current.is_baseline", [this] {
        return current == p.baseline ? 1.0 : 0.0;
    });
    reg.addGauge("mct.last_decision.feasible", [this] {
        return history.empty() ? 1.0
                               : (history.back().feasible ? 1.0 : 0.0);
    });
    reg.addGauge("mct.last_decision.pred_ipc", [this] {
        return history.empty() ? 0.0 : history.back().predicted.ipc;
    });
    samplingHist = &reg.addHistogram(
        "mct.sampling.period_insts",
        "instructions consumed by each sampling period");
}

Metrics
MctController::measureBaseline(InstCount insts, WindowAccum &acc)
{
    const MellowConfig prev = sys.config();
    sys.setConfig(p.baseline);
    const SysSnapshot before = sys.snapshot();
    sys.run(insts);
    const SysSnapshot after = sys.snapshot();
    acc.add(before, after);
    WindowAccum w;
    w.add(before, after);
    sys.setConfig(prev);
    return w.metrics(sys);
}

void
MctController::sampleAndChoose()
{
    // Cyclic fine-grained sampling over the 77 feature-based samples
    // with a paired baseline anchor (Section 4.4 normalization): each
    // sample unit is normalized against an adjacent anchor unit that
    // saw the same burst state.
    CyclicSampler sampler(sys, p.sampling);
    EventTrace &trace = sys.eventTrace();
    const double round = static_cast<double>(history.size());
    trace.record(TraceEventType::SamplingRoundStart, round,
                 static_cast<double>(samples_.size()),
                 static_cast<double>(p.sampling.unitInsts));
    const InstCount samplingStart = sys.retired();
    if (p.profiler)
        p.profiler->begin("sampling");
    std::vector<Metrics> sampled;
    std::vector<Metrics> pairBase;
    if (!p.steadyMeasure || p.liveSamplingOverhead) {
        const CyclicSampler::PairedResult paired =
            sampler.runPaired(p.baseline, samples_);
        baseMetrics = paired.anchor;
        sampled = paired.sample;
        pairBase = paired.pairedAnchor;
        // Fold the sampler's cost into the sampling aggregate.
        const WindowAccum &pa = sampler.periodAccum();
        samplingAcc.time += pa.time;
        samplingAcc.insts += pa.insts;
        samplingAcc.reads += pa.reads;
        samplingAcc.writeEnergyUnits += pa.writeEnergyUnits;
        if (samplingAcc.wearDelta.empty())
            samplingAcc.wearDelta.assign(pa.wearDelta.size(), 0.0);
        for (std::size_t b = 0; b < pa.wearDelta.size(); ++b)
            samplingAcc.wearDelta[b] += pa.wearDelta[b];
    }
    if (p.steadyMeasure) {
        // Scaled-run substitution (see MctParams::steadyMeasure): the
        // sample objectives come from steady-state measurements of
        // the same configurations.
        baseMetrics = p.steadyMeasure(p.baseline);
        sampled.clear();
        pairBase.assign(samples_.size(), baseMetrics);
        for (const auto &cfg : samples_)
            sampled.push_back(p.steadyMeasure(cfg));
    }
    if (p.profiler)
        p.profiler->end("sampling");
    if (samplingHist)
        samplingHist->record(
            static_cast<double>(sys.retired() - samplingStart));
    trace.record(TraceEventType::SamplingRoundEnd, round,
                 static_cast<double>(sys.retired() - samplingStart),
                 baseMetrics.ipc);

    // Train one predictor per objective on baseline-normalized data.
    TrainData data;
    data.space = &space_;
    data.sampleIdx = sampleIdx_;

    ml::Vector yIpc(samples_.size()), yLife(samples_.size()),
        yEnergy(samples_.size());
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        yIpc[i] = ratio(sampled[i].ipc, pairBase[i].ipc);
        yLife[i] = ratio(sampled[i].lifetimeYears,
                         pairBase[i].lifetimeYears);
        yEnergy[i] = ratio(sampled[i].energyJ, pairBase[i].energyJ);
    }

    if (p.profiler)
        p.profiler->begin("fit");
    data.sampleY = yIpc;
    const ml::Vector predIpc = predictAllConfigs(p.predictor, data);
    data.sampleY = yLife;
    const ml::Vector predLife = predictAllConfigs(p.predictor, data);
    data.sampleY = yEnergy;
    const ml::Vector predEnergy = predictAllConfigs(p.predictor, data);
    if (p.profiler)
        p.profiler->end("fit");

    // De-normalize back to absolute objectives (Section 4.4: multiply
    // by the periodically re-measured baseline).
    std::vector<Metrics> predicted(space_.size());
    for (std::size_t i = 0; i < space_.size(); ++i) {
        predicted[i].ipc = predIpc[i] * baseMetrics.ipc;
        predicted[i].lifetimeYears =
            predLife[i] * baseMetrics.lifetimeYears;
        predicted[i].energyJ = predEnergy[i] * baseMetrics.energyJ;
    }
    Decision decision;
    decision.atInstruction = sys.retired();
    if (p.profiler)
        p.profiler->begin("optimize");
    int idx = chooseOptimal(predicted, p.objective);
    if (p.profiler)
        p.profiler->end("optimize");
    if (idx >= 0 && p.steadyMeasure) {
        // With steady measurements available, the Section 5.4
        // never-worse-than-baseline guarantee is enforced at
        // selection time instead of via noisy runtime windows.
        const Metrics chosenSteady =
            p.steadyMeasure(space_[static_cast<std::size_t>(idx)]);
        if (chosenSteady.ipc < baseMetrics.ipc)
            idx = -1;
    }
    if (idx >= 0) {
        decision.config = space_[static_cast<std::size_t>(idx)];
        decision.predicted = predicted[static_cast<std::size_t>(idx)];
        decision.feasible = true;
    } else {
        // Nothing predicted feasible: fall back to the baseline,
        // whose wear quota enforces the floor by construction.
        decision.config = p.baseline;
        decision.predicted = baseMetrics;
        decision.feasible = false;
    }

    // Wear-quota fixup (Section 5.3): guarantee the lifetime floor
    // against lifetime overestimation.
    if (p.wearQuotaFixup) {
        decision.config.wearQuota = true;
        decision.config.wearQuotaTarget = std::clamp(
            p.objective.minLifetimeYears, 4.0, 10.0);
    }
    if (!decision.config.valid())
        mct_panic("MctController selected an invalid configuration");
    trace.record(TraceEventType::PredictionMade, decision.predicted.ipc,
                 decision.predicted.lifetimeYears,
                 decision.feasible ? 1.0 : 0.0);

    // Let the reconfiguration transient pass before the fixup quota
    // arms (see MctParams::stabilizeInsts).
    if (p.stabilizeInsts > 0) {
        MellowConfig grace = decision.config;
        grace.wearQuota = false;
        sys.setConfig(grace);
        const SysSnapshot g0 = sys.snapshot();
        sys.run(p.stabilizeInsts);
        samplingAcc.add(g0, sys.snapshot());
    }
    current = decision.config;
    sys.setConfig(current);
    history.push_back(decision);
    det.reset();
    sinceHealthCheck = 0;
    consecutiveBadChecks = 0;
    state = State::Running;
}

void
MctController::runMonitoredWindow(InstCount insts)
{
    const SysSnapshot before = sys.snapshot();
    sys.run(insts);
    const SysSnapshot after = sys.snapshot();
    testingAcc.add(before, after);

    // Memory workload for the phase detector: demand reads plus
    // writebacks observed by existing performance counters.
    const CoreStats dc = after.core.delta(before.core);
    const double workload =
        static_cast<double>(dc.memReads + dc.memWrites);
    if (det.push(workload)) {
        ++nResamplings;
        sys.eventTrace().record(
            TraceEventType::PhaseChange, det.lastScore(),
            static_cast<double>(det.windowsInPhase()),
            det.historyMean());
        state = State::NeedSampling;
        return;
    }

    sinceHealthCheck += insts;
    // With a steady measurement source the never-worse guarantee was
    // enforced at selection time; running the check anyway would
    // charge the baseline's (higher) wear rate against the chosen
    // configuration's quota budget and throttle floor-adjacent
    // choices for behavior that is not theirs.
    if (!p.steadyMeasure && p.healthCheckPeriod > 0 &&
        sinceHealthCheck >= p.healthCheckPeriod) {
        sinceHealthCheck = 0;
        healthCheck();
    }
}

void
MctController::healthCheck()
{
    // Alternate short chosen/baseline segments so both sides see the
    // same burst mix (a single window lands wherever the burst cycle
    // happens to be and misfires the comparison).
    const MellowConfig chosenCfg = current;
    WindowAccum chosenW, baseW;
    const InstCount seg = std::max<InstCount>(p.healthCheckLen / 2, 1);
    for (int pair = 0; pair < 3; ++pair) {
        sys.setConfig(chosenCfg);
        const SysSnapshot c0 = sys.snapshot();
        sys.run(seg);
        const SysSnapshot c1 = sys.snapshot();
        chosenW.add(c0, c1);
        testingAcc.add(c0, c1);

        sys.setConfig(p.baseline);
        const SysSnapshot b0 = sys.snapshot();
        sys.run(seg);
        const SysSnapshot b1 = sys.snapshot();
        baseW.add(b0, b1);
        testingAcc.add(b0, b1);
    }
    sys.setConfig(chosenCfg);
    const Metrics chosenNow = chosenW.metrics(sys);
    baseMetrics = baseW.metrics(sys); // refresh the normalization
    ++nHealthChecks;

    HealthRecord rec;
    rec.atInstruction = sys.retired();
    rec.chosenIpc = chosenNow.ipc;
    rec.baselineIpc = baseMetrics.ipc;

    // Never (persistently) worse than the baseline (Section 5.4).
    // Both the guard band and the two-strikes rule exist because a
    // single check is still burst-window noise at this scale. With a
    // steady measurement source the guarantee was already enforced at
    // selection time, and window noise could only undo a verified
    // choice.
    if (!p.steadyMeasure &&
        chosenNow.ipc < 0.9 * baseMetrics.ipc &&
        current != p.baseline) {
        if (++consecutiveBadChecks >= 2) {
            ++nFallbacks;
            rec.fellBack = true;
            current = p.baseline;
            sys.setConfig(current);
            consecutiveBadChecks = 0;
        }
    } else {
        consecutiveBadChecks = 0;
    }
    healthLog.push_back(rec);
    sys.eventTrace().record(
        rec.fellBack ? TraceEventType::HealthCheckFallback
                     : TraceEventType::HealthCheckPass,
        rec.chosenIpc, rec.baselineIpc,
        rec.fellBack ? static_cast<double>(nFallbacks)
                     : static_cast<double>(consecutiveBadChecks));
}

void
MctController::runFor(InstCount insts)
{
    const InstCount target = sys.retired() + insts;
    while (sys.retired() < target) {
        if (state == State::NeedSampling) {
            sampleAndChoose();
            continue;
        }
        const InstCount remaining = target - sys.retired();
        runMonitoredWindow(
            std::min<InstCount>(remaining, p.phaseWindowInsts));
    }
}

} // namespace mct
