#include "mct/controller.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "mct/samplers.hh"
#include "sim/fault_injector.hh"

namespace mct
{

namespace
{

/** Safe ratio for normalization (Section 4.4). */
double
ratio(double value, double base)
{
    return value / std::max(base, 1e-12);
}

} // namespace

MctController::MctController(System &system, const MctParams &params)
    : sys(system), p(params), det(params.phase)
{
    space_ = enumerateNoQuotaSpace(p.spaceOpts);
    samples_ = featureBasedSamples(p.seed, p.spaceOpts);
    sampleIdx_ = indicesInSpace(space_, samples_);
    current = p.baseline;
    registerStats();
    sys.setConfig(current);
}

void
MctController::registerStats()
{
    StatRegistry &reg = sys.statRegistry();
    reg.addCounter("mct.decisions",
                   [this] { return history.size(); },
                   "prediction/selection rounds completed");
    reg.addCounter("mct.resamplings", [this] { return nResamplings; },
                   "phase-triggered re-sampling rounds");
    reg.addCounter("mct.health_checks",
                   [this] { return nHealthChecks; });
    reg.addCounter("mct.fallbacks", [this] { return nFallbacks; },
                   "health-check fallbacks to the baseline");
    reg.addGauge("mct.phase.last_score",
                 [this] { return det.lastScore(); });
    reg.addCounter("mct.phase.phases_detected",
                   [this] { return det.phasesDetected(); });
    reg.addGauge("mct.phase.windows_in_phase", [this] {
        return static_cast<double>(det.windowsInPhase());
    });
    reg.addGauge("mct.phase.history_mean",
                 [this] { return det.historyMean(); });
    reg.addCounter("mct.sampling.insts",
                   [this] { return samplingAcc.insts; },
                   "instructions charged to sampling periods (Fig 9)");
    reg.addCounter("mct.testing.insts",
                   [this] { return testingAcc.insts; },
                   "instructions under chosen configurations (Fig 9)");
    reg.addGauge("mct.baseline.ipc",
                 [this] { return baseMetrics.ipc; });
    reg.addGauge("mct.baseline.lifetime_years",
                 [this] { return baseMetrics.lifetimeYears; });
    reg.addGauge("mct.baseline.energy_j",
                 [this] { return baseMetrics.energyJ; });
    reg.addGauge("mct.current.slow_latency",
                 [this] { return current.slowLatency; });
    reg.addGauge("mct.current.wear_quota",
                 [this] { return current.wearQuota ? 1.0 : 0.0; });
    reg.addGauge("mct.current.is_baseline", [this] {
        return current == p.baseline ? 1.0 : 0.0;
    });
    reg.addGauge("mct.last_decision.feasible", [this] {
        return history.empty() ? 1.0
                               : (history.back().feasible ? 1.0 : 0.0);
    });
    reg.addGauge("mct.last_decision.pred_ipc", [this] {
        return history.empty() ? 0.0 : history.back().predicted.ipc;
    });
    reg.addCounter("mct.recovery.quarantined_samples",
                   [this] { return nQuarantined; },
                   "corrupt sample windows replaced by their anchor");
    reg.addCounter("mct.recovery.rejected_predictions",
                   [this] { return nPredRejected; },
                   "space configs whose predictions failed sanity bounds");
    reg.addCounter("mct.recovery.corrupted_predictions",
                   [this] { return nPredCorrupted; },
                   "prediction values scrambled by the fault injector");
    reg.addCounter("mct.recovery.retry_rounds",
                   [this] { return nRetryRounds; },
                   "prediction rounds rejected and re-sampled");
    reg.addCounter("mct.recovery.baseline_repairs",
                   [this] { return nBaseRepairs; },
                   "corrupt baseline measurements repaired");
    reg.addCounter("mct.recovery.resample_escalations",
                   [this] { return nResampleEscalations; },
                   "health-check ladder level-2 escalations");
    reg.addCounter("mct.recovery.emergency_clamps",
                   [this] { return nEmergency; },
                   "lifetime-floor emergency clamp engagements");
    reg.addCounter("mct.recovery.reengagements",
                   [this] { return nReengage; },
                   "optimizer re-engagements after cooldown/clamp");
    reg.addCounter("mct.recovery.alert_escalations",
                   [this] { return nAlertEscalations; },
                   "critical alerts that climbed the health ladder");
    reg.addGauge("mct.recovery.ladder_level", [this] {
        return static_cast<double>(ladder);
    });
    reg.addGauge("mct.recovery.in_cooldown", [this] {
        return cooldownActive ? 1.0 : 0.0;
    });
    reg.addGauge("mct.recovery.emergency_active", [this] {
        return emergencyOn ? 1.0 : 0.0;
    });
    samplingHist = &reg.addHistogram(
        "mct.sampling.period_insts",
        "instructions consumed by each sampling period");

    // Decision provenance / prediction-accuracy audit.
    reg.addCounter("mct.audit.decisions", [this] { return provSeq_; },
                   "provenance records opened (one per decision)");
    reg.addCounter("mct.audit.closed",
                   [this] { return nAuditClosed_; },
                   "provenance records closed with realized objectives");
    reg.addCounter("mct.audit.dropped",
                   [this] { return nAuditDropped_; },
                   "provenance records never realized (run ended first)");
    reg.addCounter("mct.audit.err_invalid",
                   [this] { return nErrInvalid_; },
                   "objective errors skipped (realized value ~0 or NaN)");
    reg.addCounter("mct.audit.regret.positive",
                   [this] { return nRegretPos_; },
                   "decisions realizing below the best sampled config");
    reg.addCounter("mct.audit.attr.snapshots",
                   [this] { return nAttrSnapshots_; },
                   "feature-attribution snapshots taken");
    reg.addGauge("mct.audit.regret.cum",
                 [this] { return cumRegret_; },
                 "cumulative positive IPC regret vs best sampled");
    const std::string tag = predictorTag(p.predictor);
    for (std::size_t i = 0; i < numProvenanceObjectives; ++i) {
        const std::string obj = provenanceObjectiveName(i);
        errHist_[i] = &reg.addHistogram(
            "mct.audit.err_bp." + tag + "." + obj,
            "calibration: |pred-real|/real in basis points");
        reg.addGauge("mct.audit.attr." + obj + ".nonzero",
                     [this, i] {
                         double n = 0.0;
                         for (double w : lastAttr_[i])
                             if (w != 0.0)
                                 n += 1.0;
                         return n;
                     },
                     "nonzero attributed features, last snapshot");
    }
    // Literal rolling-error paths so thresholds.txt can gate them.
    reg.addGauge("mct.audit.err.ipc.p50", [this] {
        return errHist_[0]->percentile(50.0) / 1e4;
    });
    reg.addGauge("mct.audit.err.ipc.p90", [this] {
        return errHist_[0]->percentile(90.0) / 1e4;
    });
    reg.addGauge("mct.audit.err.lifetime.p50", [this] {
        return errHist_[1]->percentile(50.0) / 1e4;
    });
    reg.addGauge("mct.audit.err.lifetime.p90", [this] {
        return errHist_[1]->percentile(90.0) / 1e4;
    });
    reg.addGauge("mct.audit.err.energy.p50", [this] {
        return errHist_[2]->percentile(50.0) / 1e4;
    });
    reg.addGauge("mct.audit.err.energy.p90", [this] {
        return errHist_[2]->percentile(90.0) / 1e4;
    });
}

Metrics
MctController::measureBaseline(InstCount insts, WindowAccum &acc)
{
    const MellowConfig prev = sys.config();
    sys.setConfig(p.baseline);
    const SysSnapshot before = sys.snapshot();
    sys.run(insts);
    const SysSnapshot after = sys.snapshot();
    acc.add(before, after);
    WindowAccum w;
    w.add(before, after);
    sys.setConfig(prev);
    return w.metrics(sys);
}

bool
MctController::saneMetrics(const Metrics &m)
{
    return std::isfinite(m.ipc) && m.ipc > 0.0 &&
           std::isfinite(m.lifetimeYears) && m.lifetimeYears > 0.0 &&
           std::isfinite(m.energyJ) && m.energyJ >= 0.0;
}

Metrics
MctController::fallbackBaseline() const
{
    if (haveGoodBase)
        return lastGoodBase;
    // No sane measurement has ever been seen (pathological start):
    // synthesize a conservative anchor that keeps every ratio finite.
    Metrics m;
    m.ipc = 1.0;
    m.lifetimeYears = p.objective.minLifetimeYears;
    m.energyJ = 1.0;
    return m;
}

void
MctController::traceRecovery(RecoveryStep step, double detail)
{
    sys.eventTrace().record(TraceEventType::RecoveryAction,
                            static_cast<double>(step),
                            static_cast<double>(ladder), detail);
}

void
MctController::sanitizeSamples(std::vector<Metrics> &sampled,
                               std::vector<Metrics> &pairBase)
{
    for (std::size_t i = 0; i < sampled.size(); ++i) {
        const bool badAnchor = !saneMetrics(pairBase[i]);
        const bool badSample = !saneMetrics(sampled[i]);
        if (!badAnchor && !badSample)
            continue;
        // Quarantine: a corrupt pair contributes the neutral ratio
        // 1.0 instead of feeding NaN/Inf/outliers into the fit.
        if (badAnchor)
            pairBase[i] = fallbackBaseline();
        if (badSample)
            sampled[i] = pairBase[i];
        ++nQuarantined;
        traceRecovery(RecoveryStep::QuarantineSample,
                      static_cast<double>(i));
    }
}

Prediction
MctController::predictObjective(TrainData &data, const ml::Vector &y,
                                const char *objective)
{
    data.sampleY = y;
    Prediction pred;
    if (p.predictOverride) {
        pred.values = p.predictOverride(data, objective);
        pred.model = "override";
    } else {
        pred = predictAllConfigsDetailed(p.predictor, data);
    }
    if (pred.values.size() != space_.size())
        mct_panic("predictor returned ", pred.values.size(),
                  " predictions for a space of ", space_.size());
    if (FaultInjector *inj = sys.faultInjector())
        nPredCorrupted += inj->corruptPredictions(pred.values);
    return pred;
}

ProvenanceRecord
MctController::startProvenance(const Decision &decision)
{
    if (openProvValid_) {
        // The previous decision never saw an execution window, so its
        // record can never be realized.
        ++nAuditDropped_;
        openProvValid_ = false;
    }
    ProvenanceRecord rec;
    rec.seq = provSeq_++;
    rec.phase = nResamplings;
    rec.inst = decision.atInstruction;
    rec.configKey = toString(decision.config);
    rec.sampledConfigs = static_cast<std::uint32_t>(samples_.size());
    rec.minLifetimeYears = p.objective.minLifetimeYears;
    rec.ipcFraction = p.objective.ipcFraction;
    rec.safetyMargin = p.objective.safetyMargin;
    rec.objectives[0].predicted = decision.predicted.ipc;
    rec.objectives[1].predicted = decision.predicted.lifetimeYears;
    rec.objectives[2].predicted = decision.predicted.energyJ;
    return rec;
}

void
MctController::beginProvenance(const Decision &decision, int idx,
                               const std::vector<Metrics> &predicted,
                               const std::vector<bool> &badCfg,
                               const Prediction &pIpc,
                               const Prediction &pLife,
                               const Prediction &pEnergy,
                               const ml::Vector &yIpc)
{
    ProvenanceRecord rec = startProvenance(decision);
    rec.model = pIpc.model;
    rec.chosen = idx;
    rec.fallback = idx < 0;

    // The model's ratio-space 1-sigma for the chosen config,
    // denormalized by the same baseline anchor as the prediction.
    const std::array<const Prediction *, numProvenanceObjectives> ps =
        {&pIpc, &pLife, &pEnergy};
    const std::array<double, numProvenanceObjectives> scale = {
        baseMetrics.ipc, baseMetrics.lifetimeYears,
        baseMetrics.energyJ};
    if (idx >= 0) {
        const auto c = static_cast<std::size_t>(idx);
        for (std::size_t i = 0; i < numProvenanceObjectives; ++i)
            if (c < ps[i]->uncertainty.size())
                rec.objectives[i].uncertainty =
                    ps[i]->uncertainty[c] * scale[i];
    }

    // Regret oracle: the best IPC actually *measured* this round
    // (best paired sample ratio times the baseline anchor).
    double bestRatio = 0.0;
    for (double r : yIpc)
        bestRatio = std::max(bestRatio, r);
    rec.bestSampledIpc = bestRatio * baseMetrics.ipc;

    // Highest-ranked rejected candidates: feasible first, then by
    // predicted IPC (the optimizer's primary objective).
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (static_cast<int>(i) == idx)
            continue;
        if (!badCfg.empty() && badCfg[i])
            continue;
        order.push_back(i);
    }
    const double floor =
        p.objective.minLifetimeYears * p.objective.safetyMargin;
    const auto feasible = [&](std::size_t i) {
        return predicted[i].lifetimeYears >= floor;
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const bool fa = feasible(a), fb = feasible(b);
                  if (fa != fb)
                      return fa;
                  if (predicted[a].ipc != predicted[b].ipc)
                      return predicted[a].ipc > predicted[b].ipc;
                  return a < b;
              });
    if (order.size() > p.provenanceRunnerUps)
        order.resize(p.provenanceRunnerUps);
    for (std::size_t i : order) {
        ProvenanceCandidate c;
        c.config = static_cast<std::uint32_t>(i);
        c.ipc = predicted[i].ipc;
        c.lifetimeYears = predicted[i].lifetimeYears;
        c.energyJ = predicted[i].energyJ;
        c.feasible = feasible(i);
        rec.runnerUps.push_back(c);
    }

    // Feature-attribution snapshot every auditEvery decisions.
    if (p.auditEvery > 0 && rec.seq % p.auditEvery == 0) {
        bool any = false;
        for (std::size_t i = 0; i < numProvenanceObjectives; ++i) {
            rec.attribution[i] = ps[i]->attribution;
            lastAttr_[i] = ps[i]->attribution;
            any = any || !ps[i]->attribution.empty();
        }
        if (any)
            ++nAttrSnapshots_;
    }

    openProv_ = std::move(rec);
    openProvValid_ = true;
}

void
MctController::beginFallbackProvenance(const Decision &decision)
{
    // Every attempted round failed the sanity bounds: there is no
    // surviving model output, but the decision (run the baseline)
    // still gets audited against what the baseline then realizes.
    ProvenanceRecord rec = startProvenance(decision);
    rec.model = "none (round rejected)";
    rec.chosen = -1;
    rec.fallback = true;
    openProv_ = std::move(rec);
    openProvValid_ = true;
}

void
MctController::closeProvenance(const Metrics &realized)
{
    nErrInvalid_ += closeProvenanceRecord(
        openProv_, realized.ipc, realized.lifetimeYears,
        realized.energyJ, sys.retired());
    // Calibration histograms hold basis points (x1e4): relative
    // errors live almost entirely below 1.0, where the log-bucketed
    // histogram has a single bucket.
    for (std::size_t i = 0; i < numProvenanceObjectives; ++i) {
        const ProvenanceObjective &o = openProv_.objectives[i];
        if (o.errorValid && errHist_[i])
            errHist_[i]->record(o.relError * 1e4);
    }
    if (openProv_.regret > 0.0) {
        ++nRegretPos_;
        cumRegret_ += openProv_.regret;
    }
    openProv_.cumRegret = cumRegret_;
    ++nAuditClosed_;
    sys.provenanceTrace().record(openProv_);
    openProvValid_ = false;
}

void
MctController::finalizeAudit()
{
    if (!openProvValid_)
        return;
    ++nAuditDropped_;
    openProvValid_ = false;
}

MellowConfig
MctController::safestConfig() const
{
    // Baseline techniques at the slowest (least wearing) latencies
    // with the quota pinned to the floor: the configuration of last
    // resort when measured wear outruns the lifetime constraint.
    MellowConfig c = p.baseline;
    c.fastLatency = 4.0;
    c.slowLatency = 4.0;
    c.fastCancellation = false;
    c.slowCancellation = true;
    c.wearQuota = true;
    c.wearQuotaTarget =
        std::clamp(p.objective.minLifetimeYears, 4.0, 10.0);
    return c;
}

void
MctController::enterCooldown()
{
    if (!p.recovery.enabled || p.recovery.cooldownInsts == 0)
        return;
    cooldownActive = true;
    cooldownUntil = sys.retired() + p.recovery.cooldownInsts;
}

void
MctController::sampleAndChoose()
{
    Decision decision;
    bool chose = false;
    const unsigned rounds =
        p.recovery.enabled ? p.recovery.maxSampleRetries + 1 : 1;
    for (unsigned attempt = 0; attempt < rounds; ++attempt) {
        if (attempt > 0) {
            // Backoff under the baseline before re-sampling so a
            // transient corruption source can clear.
            ++nRetryRounds;
            traceRecovery(RecoveryStep::RoundRetry,
                          static_cast<double>(attempt));
            if (p.recovery.retryBackoffInsts > 0)
                measureBaseline(p.recovery.retryBackoffInsts,
                                samplingAcc);
        }
        if (samplingRound(decision)) {
            chose = true;
            break;
        }
    }
    if (!chose) {
        // Every attempt produced garbage predictions: run the
        // baseline (whose quota enforces the floor by construction)
        // and only re-engage the optimizer after a cooldown.
        decision.atInstruction = sys.retired();
        decision.config = p.baseline;
        decision.predicted = baseMetrics;
        decision.feasible = false;
        traceRecovery(RecoveryStep::Fallback, 1.0);
        beginFallbackProvenance(decision);
        enterCooldown();
    } else if (p.stabilizeInsts > 0) {
        // Let the reconfiguration transient pass before the fixup
        // quota arms (see MctParams::stabilizeInsts).
        MellowConfig grace = decision.config;
        grace.wearQuota = false;
        sys.setConfig(grace);
        const SysSnapshot g0 = sys.snapshot();
        sys.run(p.stabilizeInsts);
        samplingAcc.add(g0, sys.snapshot());
    }
    current = decision.config;
    sys.setConfig(current);
    history.push_back(decision);
    det.reset();
    sinceHealthCheck = 0;
    // The sampling period's wear is overhead, not the chosen
    // configuration's doing: restart the emergency projection.
    wearTrail.clear();
    state = State::Running;
}

bool
MctController::samplingRound(Decision &decision)
{
    // Cyclic fine-grained sampling over the 77 feature-based samples
    // with a paired baseline anchor (Section 4.4 normalization): each
    // sample unit is normalized against an adjacent anchor unit that
    // saw the same burst state.
    CyclicSampler sampler(sys, p.sampling);
    EventTrace &trace = sys.eventTrace();
    const double round = static_cast<double>(history.size());
    trace.record(TraceEventType::SamplingRoundStart, round,
                 static_cast<double>(samples_.size()),
                 static_cast<double>(p.sampling.unitInsts));
    const InstCount samplingStart = sys.retired();
    if (p.profiler)
        p.profiler->begin("sampling");
    if (HostProfiler *hp = sys.hostProfiler())
        hp->begin("sampling");
    std::vector<Metrics> sampled;
    std::vector<Metrics> pairBase;
    if (!p.steadyMeasure || p.liveSamplingOverhead) {
        const CyclicSampler::PairedResult paired =
            sampler.runPaired(p.baseline, samples_);
        baseMetrics = paired.anchor;
        sampled = paired.sample;
        pairBase = paired.pairedAnchor;
        // Fold the sampler's cost into the sampling aggregate.
        const WindowAccum &pa = sampler.periodAccum();
        samplingAcc.time += pa.time;
        samplingAcc.insts += pa.insts;
        samplingAcc.reads += pa.reads;
        samplingAcc.writeEnergyUnits += pa.writeEnergyUnits;
        if (samplingAcc.wearDelta.empty())
            samplingAcc.wearDelta.assign(pa.wearDelta.size(), 0.0);
        for (std::size_t b = 0; b < pa.wearDelta.size(); ++b)
            samplingAcc.wearDelta[b] += pa.wearDelta[b];
    }
    if (p.steadyMeasure) {
        // Scaled-run substitution (see MctParams::steadyMeasure): the
        // sample objectives come from steady-state measurements of
        // the same configurations.
        baseMetrics = p.steadyMeasure(p.baseline);
        sampled.clear();
        pairBase.assign(samples_.size(), baseMetrics);
        for (const auto &cfg : samples_)
            sampled.push_back(p.steadyMeasure(cfg));
    }
    if (p.profiler)
        p.profiler->end("sampling");
    if (HostProfiler *hp = sys.hostProfiler())
        hp->end("sampling");
    if (samplingHist)
        samplingHist->record(
            static_cast<double>(sys.retired() - samplingStart));
    trace.record(TraceEventType::SamplingRoundEnd, round,
                 static_cast<double>(sys.retired() - samplingStart),
                 baseMetrics.ipc);

    if (p.recovery.enabled) {
        // Corrupt counters must not poison the normalization anchor
        // or the training set (CounterCorrupt survival).
        if (!saneMetrics(baseMetrics)) {
            ++nBaseRepairs;
            baseMetrics = fallbackBaseline();
            traceRecovery(RecoveryStep::BaselineRepair);
        } else {
            lastGoodBase = baseMetrics;
            haveGoodBase = true;
        }
        sanitizeSamples(sampled, pairBase);
    }

    // Train one predictor per objective on baseline-normalized data.
    TrainData data;
    data.space = &space_;
    data.sampleIdx = sampleIdx_;

    ml::Vector yIpc(samples_.size()), yLife(samples_.size()),
        yEnergy(samples_.size());
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        yIpc[i] = ratio(sampled[i].ipc, pairBase[i].ipc);
        yLife[i] = ratio(sampled[i].lifetimeYears,
                         pairBase[i].lifetimeYears);
        yEnergy[i] = ratio(sampled[i].energyJ, pairBase[i].energyJ);
    }

    if (p.profiler)
        p.profiler->begin("fit");
    if (HostProfiler *hp = sys.hostProfiler())
        hp->begin("fit");
    const Prediction pIpc = predictObjective(data, yIpc, "ipc");
    const Prediction pLife = predictObjective(data, yLife, "lifetime");
    const Prediction pEnergy =
        predictObjective(data, yEnergy, "energy");
    if (p.profiler)
        p.profiler->end("fit");
    if (HostProfiler *hp = sys.hostProfiler())
        hp->end("fit");
    const ml::Vector &predIpc = pIpc.values;
    const ml::Vector &predLife = pLife.values;
    const ml::Vector &predEnergy = pEnergy.values;

    // Prediction sanity bounds: a ratio outside [min, max] (or
    // non-finite) is garbage, not insight. Individually bad configs
    // are excluded from optimization; a mostly-bad round is rejected
    // outright so the caller can retry.
    std::vector<bool> badCfg;
    if (p.recovery.enabled) {
        badCfg.assign(space_.size(), false);
        const auto saneRatio = [this](double r) {
            return std::isfinite(r) && r >= p.recovery.minPredRatio &&
                   r <= p.recovery.maxPredRatio;
        };
        std::size_t nBad = 0;
        for (std::size_t i = 0; i < space_.size(); ++i) {
            if (saneRatio(predIpc[i]) && saneRatio(predLife[i]) &&
                saneRatio(predEnergy[i]))
                continue;
            badCfg[i] = true;
            ++nBad;
        }
        nPredRejected += nBad;
        if (static_cast<double>(nBad) >
            p.recovery.maxRejectFraction *
                static_cast<double>(space_.size())) {
            return false;
        }
    }

    // De-normalize back to absolute objectives (Section 4.4: multiply
    // by the periodically re-measured baseline).
    std::vector<Metrics> predicted(space_.size());
    for (std::size_t i = 0; i < space_.size(); ++i) {
        if (!badCfg.empty() && badCfg[i])
            continue; // zero metrics: never feasible, never chosen
        predicted[i].ipc = predIpc[i] * baseMetrics.ipc;
        predicted[i].lifetimeYears =
            predLife[i] * baseMetrics.lifetimeYears;
        predicted[i].energyJ = predEnergy[i] * baseMetrics.energyJ;
    }
    decision = Decision{};
    decision.atInstruction = sys.retired();
    if (p.profiler)
        p.profiler->begin("optimize");
    if (HostProfiler *hp = sys.hostProfiler())
        hp->begin("optimize");
    int idx = chooseOptimal(predicted, p.objective);
    if (p.profiler)
        p.profiler->end("optimize");
    if (HostProfiler *hp = sys.hostProfiler())
        hp->end("optimize");
    if (idx >= 0 && p.steadyMeasure) {
        // With steady measurements available, the Section 5.4
        // never-worse-than-baseline guarantee is enforced at
        // selection time instead of via noisy runtime windows.
        const Metrics chosenSteady =
            p.steadyMeasure(space_[static_cast<std::size_t>(idx)]);
        if (chosenSteady.ipc < baseMetrics.ipc)
            idx = -1;
    }
    if (idx >= 0) {
        decision.config = space_[static_cast<std::size_t>(idx)];
        decision.predicted = predicted[static_cast<std::size_t>(idx)];
        decision.feasible = true;
    } else {
        // Nothing predicted feasible: fall back to the baseline,
        // whose wear quota enforces the floor by construction.
        decision.config = p.baseline;
        decision.predicted = baseMetrics;
        decision.feasible = false;
    }

    // Wear-quota fixup (Section 5.3): guarantee the lifetime floor
    // against lifetime overestimation.
    if (p.wearQuotaFixup) {
        decision.config.wearQuota = true;
        decision.config.wearQuotaTarget = std::clamp(
            p.objective.minLifetimeYears, 4.0, 10.0);
    }
    if (!decision.config.valid())
        mct_panic("MctController selected an invalid configuration");
    trace.record(TraceEventType::PredictionMade, decision.predicted.ipc,
                 decision.predicted.lifetimeYears,
                 decision.feasible ? 1.0 : 0.0);
    beginProvenance(decision, idx, predicted, badCfg, pIpc, pLife,
                    pEnergy, yIpc);
    return true;
}

void
MctController::runMonitoredWindow(InstCount insts)
{
    const SysSnapshot before = sys.snapshot();
    sys.run(insts);
    const SysSnapshot after = sys.snapshot();
    testingAcc.add(before, after);
    if (openProvValid_) {
        WindowAccum w;
        w.add(before, after);
        closeProvenance(w.metrics(sys));
    }
    noteWearWindow(after);
    if (emergencyOn)
        return; // the clamp just engaged; runFor takes over

    // Memory workload for the phase detector: demand reads plus
    // writebacks observed by existing performance counters.
    const CoreStats dc = after.core.delta(before.core);
    const double workload =
        static_cast<double>(dc.memReads + dc.memWrites);
    if (det.push(workload)) {
        ++nResamplings;
        sys.eventTrace().record(
            TraceEventType::PhaseChange, det.lastScore(),
            static_cast<double>(det.windowsInPhase()),
            det.historyMean());
        state = State::NeedSampling;
        ladder = 0; // a new phase starts the ladder over
        return;
    }

    sinceHealthCheck += insts;
    // With a steady measurement source the never-worse guarantee was
    // enforced at selection time; running the check anyway would
    // charge the baseline's (higher) wear rate against the chosen
    // configuration's quota budget and throttle floor-adjacent
    // choices for behavior that is not theirs.
    if (!p.steadyMeasure && p.healthCheckPeriod > 0 &&
        sinceHealthCheck >= p.healthCheckPeriod) {
        sinceHealthCheck = 0;
        healthCheck();
    }
}

void
MctController::healthCheck()
{
    // Alternate short chosen/baseline segments so both sides see the
    // same burst mix (a single window lands wherever the burst cycle
    // happens to be and misfires the comparison).
    const MellowConfig chosenCfg = current;
    WindowAccum chosenW, baseW;
    const InstCount seg = std::max<InstCount>(p.healthCheckLen / 2, 1);
    for (int pair = 0; pair < 3; ++pair) {
        sys.setConfig(chosenCfg);
        const SysSnapshot c0 = sys.snapshot();
        sys.run(seg);
        const SysSnapshot c1 = sys.snapshot();
        chosenW.add(c0, c1);
        testingAcc.add(c0, c1);

        sys.setConfig(p.baseline);
        const SysSnapshot b0 = sys.snapshot();
        sys.run(seg);
        const SysSnapshot b1 = sys.snapshot();
        baseW.add(b0, b1);
        testingAcc.add(b0, b1);
    }
    sys.setConfig(chosenCfg);
    const Metrics chosenNow = chosenW.metrics(sys);
    baseMetrics = baseW.metrics(sys); // refresh the normalization
    ++nHealthChecks;

    HealthRecord rec;
    rec.atInstruction = sys.retired();
    rec.chosenIpc = chosenNow.ipc;
    rec.baselineIpc = baseMetrics.ipc;

    // Never (persistently) worse than the baseline (Section 5.4).
    // The guard band exists because a single check is still
    // burst-window noise at this scale; repeated bad checks climb an
    // explicit escalation ladder: 1 = keep the config and re-check,
    // 2 = force a fresh sampling round, 3 = fall back to the baseline
    // and cool down before the optimizer is re-engaged. With a steady
    // measurement source the guarantee was already enforced at
    // selection time, and window noise could only undo a verified
    // choice.
    if (!p.steadyMeasure &&
        chosenNow.ipc < 0.9 * baseMetrics.ipc &&
        current != p.baseline) {
        ++ladder;
        rec.ladder = ladder;
        if (ladder == 1) {
            traceRecovery(RecoveryStep::RetryStrike, chosenNow.ipc);
        } else if (ladder == 2) {
            ++nResampleEscalations;
            traceRecovery(RecoveryStep::ResampleEscalation,
                          chosenNow.ipc);
            state = State::NeedSampling;
        } else {
            ++nFallbacks;
            rec.fellBack = true;
            current = p.baseline;
            sys.setConfig(current);
            traceRecovery(RecoveryStep::Fallback, chosenNow.ipc);
            enterCooldown();
            ladder = 0;
        }
    } else {
        ladder = 0;
    }
    healthLog.push_back(rec);
    sys.eventTrace().record(
        rec.fellBack ? TraceEventType::HealthCheckFallback
                     : TraceEventType::HealthCheckPass,
        rec.chosenIpc, rec.baselineIpc,
        rec.fellBack ? static_cast<double>(nFallbacks)
                     : static_cast<double>(rec.ladder));
}

void
MctController::noteCriticalAlert()
{
    // A critical alert climbs the same ladder as a failed health
    // check. While the cooldown or emergency clamp already has the
    // system pinned to a safe configuration there is nothing further
    // to degrade to, so the alert is absorbed without a climb.
    if (cooldownActive || emergencyOn)
        return;
    ++nAlertEscalations;
    ++ladder;
    traceRecovery(RecoveryStep::AlertEscalation,
                  static_cast<double>(nAlertEscalations));
    if (ladder == 2) {
        ++nResampleEscalations;
        state = State::NeedSampling;
    } else if (ladder >= 3) {
        ++nFallbacks;
        current = p.baseline;
        sys.setConfig(current);
        enterCooldown();
        ladder = 0;
    }
}

void
MctController::runCooldownWindow(InstCount insts)
{
    // Baseline-only window while the optimizer is benched after a
    // fallback: no phase detection, no health checks, just progress.
    const SysSnapshot before = sys.snapshot();
    sys.run(insts);
    const SysSnapshot after = sys.snapshot();
    testingAcc.add(before, after);
    if (openProvValid_) {
        // A fallback decision's record realizes under the baseline it
        // chose — the audit must cover the bad rounds too.
        WindowAccum w;
        w.add(before, after);
        closeProvenance(w.metrics(sys));
    }
    noteWearWindow(after);
}

void
MctController::runEmergencyWindow(InstCount insts)
{
    // Safest-configuration window while the lifetime clamp holds: the
    // only exit is the wear projection recovering past the release
    // threshold (checked by noteWearWindow).
    const SysSnapshot before = sys.snapshot();
    sys.run(insts);
    const SysSnapshot after = sys.snapshot();
    testingAcc.add(before, after);
    if (openProvValid_) {
        WindowAccum w;
        w.add(before, after);
        closeProvenance(w.metrics(sys));
    }
    noteWearWindow(after);
}

void
MctController::noteWearWindow(const SysSnapshot &after)
{
    if (!p.recovery.enabled || p.recovery.emergencyWindowInsts == 0)
        return;
    wearTrail.push_back(after);
    // Keep just enough trail to span the projection window.
    while (wearTrail.size() > 2 &&
           wearTrail[1].instructions + p.recovery.emergencyWindowInsts <=
               after.instructions) {
        wearTrail.pop_front();
    }
    const SysSnapshot &front = wearTrail.front();
    const InstCount span = after.instructions - front.instructions;
    if (span < p.recovery.emergencyWindowInsts / 2)
        return; // not enough evidence yet
    const double projected = windowLifetimeYears(
        sys.params().nvm, front.bankWear, after.bankWear,
        after.time - front.time);
    // Scaled-down windows measure lifetimes far below the absolute
    // floor even on healthy runs, so the clamp references whichever is
    // lower: the floor, or what the baseline itself achieves here.
    const double floor = haveGoodBase
        ? std::min(p.objective.minLifetimeYears,
                   lastGoodBase.lifetimeYears)
        : p.objective.minLifetimeYears;
    if (!emergencyOn &&
        projected < p.recovery.emergencyMargin * floor) {
        // Measured wear is outrunning the constraint no matter what
        // the quota believes (e.g. its clock is skewed): clamp to the
        // safest configuration until the projection recovers.
        ++nEmergency;
        emergencyOn = true;
        current = safestConfig();
        sys.setConfig(current);
        traceRecovery(RecoveryStep::EmergencyClampOn, projected);
    } else if (emergencyOn &&
               projected > p.recovery.emergencyRelease * floor) {
        emergencyOn = false;
        ++nReengage;
        state = State::NeedSampling;
        wearTrail.clear();
        traceRecovery(RecoveryStep::EmergencyClampOff, projected);
    }
}

void
MctController::runFor(InstCount insts)
{
    const InstCount target = sys.retired() + insts;
    while (sys.retired() < target) {
        const InstCount remaining = target - sys.retired();
        const InstCount window =
            std::min<InstCount>(remaining, p.phaseWindowInsts);
        if (emergencyOn) {
            runEmergencyWindow(window);
            continue;
        }
        if (cooldownActive) {
            if (sys.retired() < cooldownUntil) {
                runCooldownWindow(window);
                continue;
            }
            cooldownActive = false;
            ++nReengage;
            state = State::NeedSampling;
            traceRecovery(RecoveryStep::Reengage);
        }
        if (state == State::NeedSampling) {
            sampleAndChoose();
            continue;
        }
        runMonitoredWindow(window);
    }
}

void
MctController::serialize(Serializer &s) const
{
    det.serialize(s);
    s.putU8(static_cast<std::uint8_t>(state));
    current.serialize(s);
    baseMetrics.serialize(s);
    s.putU64(history.size());
    for (const Decision &dec : history) {
        dec.config.serialize(s);
        dec.predicted.serialize(s);
        s.putBool(dec.feasible);
        s.putU64(dec.atInstruction);
    }
    s.putU64(healthLog.size());
    for (const HealthRecord &h : healthLog) {
        s.putU64(h.atInstruction);
        s.putF64(h.chosenIpc);
        s.putF64(h.baselineIpc);
        s.putBool(h.fellBack);
        s.putU32(h.ladder);
    }
    samplingAcc.serialize(s);
    testingAcc.serialize(s);
    s.putU64(sinceHealthCheck);
    s.putU64(nResamplings);
    s.putU64(nFallbacks);
    s.putU64(nHealthChecks);
    s.putU32(ladder);
    s.putBool(cooldownActive);
    s.putU64(cooldownUntil);
    s.putBool(emergencyOn);
    lastGoodBase.serialize(s);
    s.putBool(haveGoodBase);
    s.putU64(wearTrail.size());
    for (const SysSnapshot &snap : wearTrail)
        snap.serialize(s);
    s.putU64(nQuarantined);
    s.putU64(nPredRejected);
    s.putU64(nPredCorrupted);
    s.putU64(nRetryRounds);
    s.putU64(nBaseRepairs);
    s.putU64(nResampleEscalations);
    s.putU64(nEmergency);
    s.putU64(nReengage);
    s.putU64(nAlertEscalations);
    openProv_.serialize(s);
    s.putBool(openProvValid_);
    s.putU64(provSeq_);
    s.putF64(cumRegret_);
    s.putU64(nAuditClosed_);
    s.putU64(nAuditDropped_);
    s.putU64(nErrInvalid_);
    s.putU64(nRegretPos_);
    s.putU64(nAttrSnapshots_);
    for (const ml::Vector &attr : lastAttr_) {
        s.putU64(attr.size());
        for (const double v : attr)
            s.putF64(v);
    }
}

void
MctController::deserialize(Deserializer &d)
{
    det.deserialize(d);
    state = static_cast<State>(d.getU8());
    current.deserialize(d);
    baseMetrics.deserialize(d);
    history.resize(d.getU64());
    for (Decision &dec : history) {
        dec.config.deserialize(d);
        dec.predicted.deserialize(d);
        dec.feasible = d.getBool();
        dec.atInstruction = d.getU64();
    }
    healthLog.resize(d.getU64());
    for (HealthRecord &h : healthLog) {
        h.atInstruction = d.getU64();
        h.chosenIpc = d.getF64();
        h.baselineIpc = d.getF64();
        h.fellBack = d.getBool();
        h.ladder = d.getU32();
    }
    samplingAcc.deserialize(d);
    testingAcc.deserialize(d);
    sinceHealthCheck = d.getU64();
    nResamplings = d.getU64();
    nFallbacks = d.getU64();
    nHealthChecks = d.getU64();
    ladder = d.getU32();
    cooldownActive = d.getBool();
    cooldownUntil = d.getU64();
    emergencyOn = d.getBool();
    lastGoodBase.deserialize(d);
    haveGoodBase = d.getBool();
    wearTrail.clear();
    const std::uint64_t nTrail = d.getU64();
    for (std::uint64_t i = 0; i < nTrail && d.ok(); ++i) {
        SysSnapshot snap;
        snap.deserialize(d);
        wearTrail.push_back(std::move(snap));
    }
    nQuarantined = d.getU64();
    nPredRejected = d.getU64();
    nPredCorrupted = d.getU64();
    nRetryRounds = d.getU64();
    nBaseRepairs = d.getU64();
    nResampleEscalations = d.getU64();
    nEmergency = d.getU64();
    nReengage = d.getU64();
    nAlertEscalations = d.getU64();
    openProv_.deserialize(d);
    openProvValid_ = d.getBool();
    provSeq_ = d.getU64();
    cumRegret_ = d.getF64();
    nAuditClosed_ = d.getU64();
    nAuditDropped_ = d.getU64();
    nErrInvalid_ = d.getU64();
    nRegretPos_ = d.getU64();
    nAttrSnapshots_ = d.getU64();
    for (ml::Vector &attr : lastAttr_) {
        attr.assign(d.getU64(), 0.0);
        for (double &v : attr)
            v = d.getF64();
    }
}

} // namespace mct
