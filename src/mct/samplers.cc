#include "mct/samplers.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/sweep_cache.hh"

namespace mct
{

std::vector<MellowConfig>
featureBasedSamples(std::uint64_t seed, const SpaceOptions &opts)
{
    Rng rng(seed);
    std::vector<MellowConfig> out;

    // Secondary knobs are randomized per sample ("randomly sampling
    // from the left", Section 4.4).
    auto randomizeSecondary = [&](MellowConfig &cfg, bool needSlow) {
        // At least one slow-write technique must be on when the
        // sample grids a slow latency.
        while (true) {
            const bool bank = rng.flip(0.5);
            const bool eager = rng.flip(0.5);
            if (needSlow && !bank && !eager)
                continue;
            cfg.bankAware = bank;
            cfg.eagerWritebacks = eager;
            break;
        }
        if (cfg.bankAware) {
            cfg.bankAwareThreshold = opts.bankThresholds[rng.below(
                opts.bankThresholds.size())];
        }
        if (cfg.eagerWritebacks) {
            cfg.eagerThreshold = opts.eagerThresholds[rng.below(
                opts.eagerThresholds.size())];
        }
        cfg.wearQuota = false;
    };

    // 21 latency pairs x 3 cancellation pairs = 63 slow-write samples.
    const auto &lat = opts.latencies;
    const bool cancelFast[] = {false, false, true};
    const bool cancelSlow[] = {false, true, true};
    for (std::size_t fi = 0; fi < lat.size(); ++fi) {
        for (std::size_t si = fi + 1; si < lat.size(); ++si) {
            for (int c = 0; c < 3; ++c) {
                MellowConfig cfg;
                cfg.fastLatency = lat[fi];
                cfg.slowLatency = lat[si];
                cfg.fastCancellation = cancelFast[c];
                cfg.slowCancellation = cancelSlow[c];
                randomizeSecondary(cfg, true);
                if (!cfg.valid())
                    mct_panic("featureBasedSamples: invalid sample");
                out.push_back(cfg);
            }
        }
    }
    // 7 latencies x 2 cancellation choices = 14 fast-only samples.
    for (double f : lat) {
        for (bool fc : {false, true}) {
            MellowConfig cfg;
            cfg.fastLatency = f;
            cfg.slowLatency = f;
            cfg.fastCancellation = fc;
            cfg.slowCancellation = fc;
            cfg.bankAware = false;
            cfg.eagerWritebacks = false;
            cfg.wearQuota = false;
            if (!cfg.valid())
                mct_panic("featureBasedSamples: invalid sample");
            out.push_back(cfg);
        }
    }
    return out;
}

std::vector<MellowConfig>
randomSamples(const std::vector<MellowConfig> &space, std::size_t n,
              std::uint64_t seed)
{
    if (n > space.size())
        mct_fatal("randomSamples: asked for ", n, " of ", space.size());
    Rng rng(seed);
    std::vector<std::size_t> idx(space.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.below(idx.size() - i));
        std::swap(idx[i], idx[j]);
    }
    std::vector<MellowConfig> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(space[idx[i]]);
    return out;
}

std::vector<std::size_t>
indicesInSpace(const std::vector<MellowConfig> &space,
               const std::vector<MellowConfig> &samples)
{
    std::vector<std::size_t> out;
    out.reserve(samples.size());
    for (const auto &s : samples) {
        const std::string key = configKey(s);
        bool found = false;
        for (std::size_t i = 0; i < space.size(); ++i) {
            if (configKey(space[i]) == key) {
                out.push_back(i);
                found = true;
                break;
            }
        }
        if (!found)
            mct_fatal("indicesInSpace: sample not in space: ", key);
    }
    return out;
}

} // namespace mct
