#include "mct/config.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace mct
{

const std::vector<std::string> &
configDimNames()
{
    static const std::vector<std::string> names = {
        "bank_aware",
        "bank_aware_threshold",
        "eager_writebacks",
        "eager_threshold",
        "wear_quota",
        "wear_quota_target",
        "fast_latency",
        "slow_latency",
        "fast_cancellation",
        "slow_cancellation",
    };
    return names;
}

ml::Vector
configToVector(const MellowConfig &cfg)
{
    ml::Vector v(configDims, 0.0);
    v[0] = cfg.bankAware ? 1.0 : 0.0;
    v[1] = cfg.bankAware ? cfg.bankAwareThreshold : 0.0;
    v[2] = cfg.eagerWritebacks ? 1.0 : 0.0;
    v[3] = cfg.eagerWritebacks ? cfg.eagerThreshold : 0.0;
    v[4] = cfg.wearQuota ? 1.0 : 0.0;
    v[5] = cfg.wearQuota ? cfg.wearQuotaTarget : 0.0;
    v[6] = cfg.fastLatency;
    v[7] = cfg.usesSlowWrites() ? cfg.slowLatency : 0.0;
    v[8] = cfg.fastCancellation ? 1.0 : 0.0;
    v[9] = cfg.usesSlowWrites() && cfg.slowCancellation ? 1.0 : 0.0;
    return v;
}

MellowConfig
configFromVector(const ml::Vector &v)
{
    if (v.size() != configDims)
        mct_fatal("configFromVector: expected ", configDims, " dims");
    MellowConfig cfg;
    cfg.bankAware = v[0] != 0.0;
    cfg.bankAwareThreshold = cfg.bankAware
        ? static_cast<int>(v[1]) : 1;
    cfg.eagerWritebacks = v[2] != 0.0;
    cfg.eagerThreshold = cfg.eagerWritebacks
        ? static_cast<int>(v[3]) : 4;
    cfg.wearQuota = v[4] != 0.0;
    cfg.wearQuotaTarget = cfg.wearQuota ? v[5] : 8.0;
    cfg.fastLatency = v[6];
    cfg.slowLatency = cfg.usesSlowWrites() ? v[7] : v[6];
    cfg.fastCancellation = v[8] != 0.0;
    cfg.slowCancellation = v[9] != 0.0 || cfg.fastCancellation;
    if (!cfg.valid())
        mct_fatal("configFromVector: decoded invalid configuration");
    return cfg;
}

std::string
toString(const MellowConfig &cfg)
{
    std::ostringstream os;
    os << "{";
    if (cfg.bankAware)
        os << "bank_aware(" << cfg.bankAwareThreshold << ") ";
    if (cfg.eagerWritebacks)
        os << "eager(" << cfg.eagerThreshold << ") ";
    if (cfg.wearQuota)
        os << "wear_quota(" << fmt(cfg.wearQuotaTarget, 1) << "y) ";
    os << "fast=" << fmt(cfg.fastLatency, 1);
    if (cfg.usesSlowWrites())
        os << " slow=" << fmt(cfg.slowLatency, 1);
    os << " cancel=" << (cfg.fastCancellation ? "F" : "")
       << (cfg.usesSlowWrites() && cfg.slowCancellation ? "S" : "")
       << ((cfg.fastCancellation ||
            (cfg.usesSlowWrites() && cfg.slowCancellation))
               ? ""
               : "none")
       << "}";
    return os.str();
}

std::vector<std::string>
configTableHeader()
{
    return {"bank_aware", "bank_aware_th", "eager_wb", "eager_th",
            "wear_quota", "wq_target", "fast_lat", "slow_lat",
            "fast_cancel", "slow_cancel"};
}

std::vector<std::string>
configTableRow(const MellowConfig &cfg)
{
    return {
        fmtBool(cfg.bankAware),
        cfg.bankAware ? std::to_string(cfg.bankAwareThreshold) : "N/A",
        fmtBool(cfg.eagerWritebacks),
        cfg.eagerWritebacks ? std::to_string(cfg.eagerThreshold)
                            : "N/A",
        fmtBool(cfg.wearQuota),
        fmtOrNa(cfg.wearQuota, cfg.wearQuotaTarget, 1),
        fmt(cfg.fastLatency, 1),
        fmtOrNa(cfg.usesSlowWrites(), cfg.slowLatency, 1),
        fmtBool(cfg.fastCancellation),
        cfg.usesSlowWrites() ? fmtBool(cfg.slowCancellation) : "N/A",
    };
}

} // namespace mct
