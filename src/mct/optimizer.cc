#include "mct/optimizer.hh"

#include "common/logging.hh"

namespace mct
{

int
chooseOptimal(const std::vector<Metrics> &predicted,
              const LifetimeObjective &obj)
{
    if (predicted.empty())
        mct_fatal("chooseOptimal: no predictions");

    const double floor = obj.minLifetimeYears * obj.safetyMargin;

    // Pass 1: P* among lifetime-feasible configurations.
    double bestIpc = -1.0;
    for (const auto &m : predicted) {
        if (m.lifetimeYears >= floor)
            bestIpc = std::max(bestIpc, m.ipc);
    }
    if (bestIpc < 0.0)
        return -1;

    // Pass 2: minimal energy among those within ipcFraction of P*.
    int best = -1;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const Metrics &m = predicted[i];
        if (m.lifetimeYears < floor)
            continue;
        if (m.ipc < obj.ipcFraction * bestIpc)
            continue;
        if (best < 0 || m.energyJ < predicted[best].energyJ)
            best = static_cast<int>(i);
    }
    return best;
}

int
chooseMostDurable(const std::vector<Metrics> &predicted)
{
    if (predicted.empty())
        mct_fatal("chooseMostDurable: no predictions");
    int best = 0;
    for (std::size_t i = 1; i < predicted.size(); ++i) {
        if (predicted[i].lifetimeYears >
            predicted[best].lifetimeYears) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

int
chooseForPerfTarget(const std::vector<Metrics> &predicted,
                    const PerfTargetObjective &obj)
{
    if (predicted.empty())
        mct_fatal("chooseForPerfTarget: no predictions");
    int best = -1;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (predicted[i].ipc < obj.minIpc)
            continue;
        if (best < 0 || predicted[i].energyJ < predicted[best].energyJ)
            best = static_cast<int>(i);
    }
    if (best >= 0)
        return best;
    // Infeasible: deliver as much performance as possible.
    best = 0;
    for (std::size_t i = 1; i < predicted.size(); ++i) {
        if (predicted[i].ipc > predicted[best].ipc)
            best = static_cast<int>(i);
    }
    return best;
}

int
chooseForEnergyCap(const std::vector<Metrics> &predicted,
                   const EnergyCapObjective &obj)
{
    if (predicted.empty())
        mct_fatal("chooseForEnergyCap: no predictions");
    int best = -1;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const Metrics &m = predicted[i];
        if (m.energyJ > obj.maxEnergyJ)
            continue;
        if (m.lifetimeYears < obj.minLifetimeYears)
            continue;
        if (best < 0 || m.ipc > predicted[best].ipc)
            best = static_cast<int>(i);
    }
    return best;
}

} // namespace mct
