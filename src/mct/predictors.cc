#include "mct/predictors.hh"

#include "common/logging.hh"
#include "ml/gradient_boosting.hh"
#include "ml/hierarchical_bayes.hh"
#include "ml/lasso.hh"
#include "ml/linear_regression.hh"
#include "ml/metrics.hh"
#include "ml/offline_predictor.hh"
#include "ml/quadratic_features.hh"

namespace mct
{

std::string
toString(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Offline:
        return "offline";
      case PredictorKind::Linear:
        return "linear model, no regularization";
      case PredictorKind::LinearLasso:
        return "linear model, lasso regularization";
      case PredictorKind::Quadratic:
        return "quadratic model, no regularization";
      case PredictorKind::QuadraticLasso:
        return "quadratic model, lasso regularization";
      case PredictorKind::GradientBoosting:
        return "gradient boosting";
      case PredictorKind::HierBayes:
        return "hierarchical Bayesian model";
    }
    return "unknown";
}

const std::vector<PredictorKind> &
allPredictorKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::Offline,
        PredictorKind::Linear,
        PredictorKind::LinearLasso,
        PredictorKind::Quadratic,
        PredictorKind::QuadraticLasso,
        PredictorKind::GradientBoosting,
        PredictorKind::HierBayes,
    };
    return kinds;
}

bool
needsOfflineData(PredictorKind kind)
{
    return kind == PredictorKind::Offline ||
           kind == PredictorKind::HierBayes;
}

ml::Matrix
encodeSpace(const std::vector<MellowConfig> &space)
{
    ml::Matrix x(space.size(), configDims);
    for (std::size_t r = 0; r < space.size(); ++r) {
        const ml::Vector v = configToVector(space[r]);
        for (std::size_t c = 0; c < configDims; ++c)
            x(r, c) = v[c];
    }
    return x;
}

namespace
{

ml::Matrix
gatherRows(const ml::Matrix &x, const std::vector<std::size_t> &idx)
{
    ml::Matrix out(idx.size(), x.cols());
    for (std::size_t r = 0; r < idx.size(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            out(r, c) = x(idx[r], c);
    return out;
}

void
validate(const TrainData &data, PredictorKind kind)
{
    if (!data.space || data.space->empty())
        mct_fatal("predictAllConfigs: no configuration space");
    if (!needsOfflineData(kind) &&
        (data.sampleIdx.size() != data.sampleY.size() ||
         data.sampleIdx.empty())) {
        mct_fatal("predictAllConfigs: bad samples");
    }
    if (needsOfflineData(kind)) {
        if (!data.library)
            mct_fatal(toString(kind), " needs offline library data");
        if (data.library->cols() != data.space->size())
            mct_fatal("library column count must match the space");
    }
    for (auto i : data.sampleIdx) {
        if (i >= data.space->size())
            mct_fatal("sample index out of range");
    }
}

} // namespace

ml::Vector
predictAllConfigs(PredictorKind kind, const TrainData &data)
{
    validate(data, kind);
    const auto &space = *data.space;

    switch (kind) {
      case PredictorKind::Offline: {
        ml::OfflinePredictor model;
        model.fit(*data.library);
        return model.predictAll();
      }
      case PredictorKind::HierBayes: {
        ml::HierarchicalBayesPredictor model;
        model.fitOffline(*data.library);
        return model.infer(data.sampleIdx, data.sampleY);
      }
      case PredictorKind::Linear:
      case PredictorKind::LinearLasso: {
        const ml::Matrix xAll = encodeSpace(space);
        const ml::Matrix xs = gatherRows(xAll, data.sampleIdx);
        if (kind == PredictorKind::Linear) {
            ml::LinearRegression model(0.0);
            model.fit(xs, data.sampleY);
            return model.predictAll(xAll);
        }
        ml::LassoRegression model;
        model.fit(xs, data.sampleY);
        return model.predictAll(xAll);
      }
      case PredictorKind::Quadratic:
      case PredictorKind::QuadraticLasso: {
        const ml::QuadraticFeatureMap qmap(configDimNames());
        const ml::Matrix xAll = qmap.expandAll(encodeSpace(space));
        const ml::Matrix xs = gatherRows(xAll, data.sampleIdx);
        if (kind == PredictorKind::Quadratic) {
            ml::LinearRegression model(0.0);
            model.fit(xs, data.sampleY);
            return model.predictAll(xAll);
        }
        ml::LassoRegression model;
        model.fit(xs, data.sampleY);
        return model.predictAll(xAll);
      }
      case PredictorKind::GradientBoosting: {
        const ml::Matrix xAll = encodeSpace(space);
        const ml::Matrix xs = gatherRows(xAll, data.sampleIdx);
        ml::GradientBoosting model;
        model.fit(xs, data.sampleY);
        return model.predictAll(xAll);
      }
    }
    mct_panic("unreachable predictor kind");
}

} // namespace mct
