#include "mct/predictors.hh"

#include <cmath>

#include "common/logging.hh"
#include "ml/gradient_boosting.hh"
#include "ml/hierarchical_bayes.hh"
#include "ml/lasso.hh"
#include "ml/linear_regression.hh"
#include "ml/offline_predictor.hh"
#include "ml/quadratic_features.hh"

namespace mct
{

std::string
toString(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Offline:
        return "offline";
      case PredictorKind::Linear:
        return "linear model, no regularization";
      case PredictorKind::LinearLasso:
        return "linear model, lasso regularization";
      case PredictorKind::Quadratic:
        return "quadratic model, no regularization";
      case PredictorKind::QuadraticLasso:
        return "quadratic model, lasso regularization";
      case PredictorKind::GradientBoosting:
        return "gradient boosting";
      case PredictorKind::HierBayes:
        return "hierarchical Bayesian model";
    }
    return "unknown";
}

std::string
predictorTag(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Offline:
        return "offline";
      case PredictorKind::Linear:
        return "linear";
      case PredictorKind::LinearLasso:
        return "lasso";
      case PredictorKind::Quadratic:
        return "quad";
      case PredictorKind::QuadraticLasso:
        return "qlasso";
      case PredictorKind::GradientBoosting:
        return "gbt";
      case PredictorKind::HierBayes:
        return "hb";
    }
    return "unknown";
}

const std::vector<PredictorKind> &
allPredictorKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::Offline,
        PredictorKind::Linear,
        PredictorKind::LinearLasso,
        PredictorKind::Quadratic,
        PredictorKind::QuadraticLasso,
        PredictorKind::GradientBoosting,
        PredictorKind::HierBayes,
    };
    return kinds;
}

bool
needsOfflineData(PredictorKind kind)
{
    return kind == PredictorKind::Offline ||
           kind == PredictorKind::HierBayes;
}

ml::Matrix
encodeSpace(const std::vector<MellowConfig> &space)
{
    ml::Matrix x(space.size(), configDims);
    for (std::size_t r = 0; r < space.size(); ++r) {
        const ml::Vector v = configToVector(space[r]);
        for (std::size_t c = 0; c < configDims; ++c)
            x(r, c) = v[c];
    }
    return x;
}

namespace
{

ml::Matrix
gatherRows(const ml::Matrix &x, const std::vector<std::size_t> &idx)
{
    ml::Matrix out(idx.size(), x.cols());
    for (std::size_t r = 0; r < idx.size(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            out(r, c) = x(idx[r], c);
    return out;
}

void
validate(const TrainData &data, PredictorKind kind)
{
    if (!data.space || data.space->empty())
        mct_fatal("predictAllConfigs: no configuration space");
    if (!needsOfflineData(kind) &&
        (data.sampleIdx.size() != data.sampleY.size() ||
         data.sampleIdx.empty())) {
        mct_fatal("predictAllConfigs: bad samples");
    }
    if (needsOfflineData(kind)) {
        if (!data.library)
            mct_fatal(toString(kind), " needs offline library data");
        if (data.library->cols() != data.space->size())
            mct_fatal("library column count must match the space");
    }
    for (auto i : data.sampleIdx) {
        if (i >= data.space->size())
            mct_fatal("sample index out of range");
    }
}

/**
 * Fold a weight vector over the (possibly quadratic-expanded) design
 * onto the base configuration dimensions: linear terms map directly,
 * squares map to their dimension, and cross terms split evenly
 * between their two participants. Magnitudes only — the attribution
 * answers "which knobs mattered", not the sign of their effect.
 */
ml::Vector
foldToBaseFeatures(const ml::Vector &w, std::size_t d)
{
    ml::Vector out(d, 0.0);
    std::size_t j = 0;
    for (; j < w.size() && j < d; ++j)
        out[j] += std::abs(w[j]);
    for (; j < w.size() && j < 2 * d; ++j)
        out[j - d] += std::abs(w[j]);
    for (std::size_t i = 0; i < d && j < w.size(); ++i)
        for (std::size_t k = i + 1; k < d && j < w.size(); ++k, ++j) {
            out[i] += 0.5 * std::abs(w[j]);
            out[k] += 0.5 * std::abs(w[j]);
        }
    return out;
}

} // namespace

ml::Vector
predictAllConfigs(PredictorKind kind, const TrainData &data)
{
    return predictAllConfigsDetailed(kind, data).values;
}

Prediction
predictAllConfigsDetailed(PredictorKind kind, const TrainData &data)
{
    validate(data, kind);
    const auto &space = *data.space;
    Prediction out;
    out.model = toString(kind);

    switch (kind) {
      case PredictorKind::Offline: {
        ml::OfflinePredictor model;
        model.fit(*data.library);
        out.values = model.predictAll();
        return out;
      }
      case PredictorKind::HierBayes: {
        ml::HierarchicalBayesPredictor model;
        model.fitOffline(*data.library);
        ml::Vector variance;
        out.values = model.inferWithVariance(data.sampleIdx,
                                             data.sampleY, &variance);
        out.uncertainty.resize(variance.size());
        for (std::size_t c = 0; c < variance.size(); ++c)
            out.uncertainty[c] =
                variance[c] > 0.0 ? std::sqrt(variance[c]) : 0.0;
        return out;
      }
      case PredictorKind::Linear:
      case PredictorKind::LinearLasso: {
        const ml::Matrix xAll = encodeSpace(space);
        const ml::Matrix xs = gatherRows(xAll, data.sampleIdx);
        if (kind == PredictorKind::Linear) {
            ml::LinearRegression model(0.0);
            model.fit(xs, data.sampleY);
            out.values = model.predictAll(xAll);
            out.attribution =
                foldToBaseFeatures(model.weights(), configDims);
            return out;
        }
        ml::LassoRegression model;
        model.fit(xs, data.sampleY);
        out.values = model.predictAll(xAll);
        out.attribution =
            foldToBaseFeatures(model.coefficients(), configDims);
        return out;
      }
      case PredictorKind::Quadratic:
      case PredictorKind::QuadraticLasso: {
        const ml::QuadraticFeatureMap qmap(configDimNames());
        const ml::Matrix xAll = qmap.expandAll(encodeSpace(space));
        const ml::Matrix xs = gatherRows(xAll, data.sampleIdx);
        if (kind == PredictorKind::Quadratic) {
            ml::LinearRegression model(0.0);
            model.fit(xs, data.sampleY);
            out.values = model.predictAll(xAll);
            out.attribution =
                foldToBaseFeatures(model.weights(), configDims);
            return out;
        }
        ml::LassoRegression model;
        model.fit(xs, data.sampleY);
        out.values = model.predictAll(xAll);
        out.attribution =
            foldToBaseFeatures(model.coefficients(), configDims);
        return out;
      }
      case PredictorKind::GradientBoosting: {
        const ml::Matrix xAll = encodeSpace(space);
        const ml::Matrix xs = gatherRows(xAll, data.sampleIdx);
        ml::GradientBoosting model;
        model.fit(xs, data.sampleY);
        out.values = model.predictAll(xAll);
        out.uncertainty = model.stagedSpreadAll(xAll);
        out.attribution = model.featureImportance();
        if (out.attribution.size() < configDims)
            out.attribution.resize(configDims, 0.0);
        return out;
      }
    }
    mct_panic("unreachable predictor kind");
}

} // namespace mct
