/**
 * @file
 * Crash-safe checkpoint store (see docs/robustness.md).
 *
 * A checkpoint is one self-validating binary file:
 *
 *     magic "MCTCKPT\0" | u32 format version | u64 sequence
 *     | fingerprint string | payload string | u64 FNV-1a checksum
 *
 * where both strings are length-prefixed and the checksum covers
 * every preceding byte. The store double-buffers two slot files
 * (<base>.0 and <base>.1), always overwriting the older slot through
 * a temp-file + atomic-rename publish, so a crash mid-write can never
 * destroy the last good checkpoint. Loading validates both slots,
 * quarantines any that fail (renamed to <slot>.corrupt), and resumes
 * from the highest surviving sequence number.
 *
 * The fingerprint pins the run identity (mode, workload, seed, flag
 * set); resuming under different flags is refused by the driver, not
 * silently mis-replayed. All ckpt.* stats are host-scoped: checkpoint
 * activity never perturbs the deterministic Sim stat surfaces.
 *
 * The payload is a tagless field stream, so every component's
 * serialize/deserialize pair must stay in lockstep — statically
 * enforced by mct_lint's serialize-contract builtin (see
 * docs/static-analysis.md).
 */

#ifndef MCT_SIM_CHECKPOINT_HH
#define MCT_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>

namespace mct
{

class StatRegistry;

/** Current checkpoint format version. Version 2 appended the
 *  MetricTimeline and AlertEngine state to System's payload. */
constexpr std::uint32_t checkpointFormatVersion = 2;

/** Outcome of CheckpointStore::load(). */
struct CheckpointLoadResult
{
    /** A valid checkpoint was found and decoded. */
    bool ok = false;

    /** The serialized simulation state (valid when ok). */
    std::string payload;

    /** The run fingerprint recorded at save time (valid when ok). */
    std::string fingerprint;

    /** Monotonic save sequence of the loaded slot (valid when ok). */
    std::uint64_t sequence = 0;

    /** Slot file the state was loaded from (valid when ok). */
    std::string slotFile;

    /** At least one slot existed but failed validation and was
     *  quarantined (can be true even when ok: the fall-back slot
     *  survived). */
    bool corruptRejected = false;

    /** Human-readable reason when !ok. */
    std::string error;
};

/**
 * Double-buffered checkpoint slots around a base path.
 */
class CheckpointStore
{
  public:
    /** @param basePath Slot files are <basePath>.0 and <basePath>.1. */
    explicit CheckpointStore(std::string basePath);

    /**
     * Publish a checkpoint of @p payload into the older slot via
     * temp-file + atomic rename. Returns false (with a warning) when
     * the write failed; the previous checkpoint is untouched either
     * way.
     */
    [[nodiscard]] bool save(const std::string &fingerprint,
                            const std::string &payload);

    /**
     * Validate both slots and decode the one with the highest
     * sequence. Slots that fail validation (truncated, bit-flipped,
     * unknown version) are renamed to <slot>.corrupt and counted
     * under ckpt.corrupt_loads; load falls back to the surviving
     * slot.
     */
    CheckpointLoadResult load();

    /** Path of the most recently written slot ("" before any save). */
    const std::string &newestSlot() const { return lastWritten; }

    /** Count one successful resume (driver calls after restoring). */
    void noteResume() { ++nResumes; }

    /** Register the host-scoped ckpt.* stats. */
    void registerStats(StatRegistry &reg);

    /** Checkpoints written. */
    std::uint64_t writes() const { return nWrites; }

    /** Slots rejected by validation and quarantined. */
    std::uint64_t corruptLoads() const { return nCorruptLoads; }

    /** Successful restores noted via noteResume(). */
    std::uint64_t resumes() const { return nResumes; }

  private:
    std::string base;
    std::string slots[2];
    std::uint64_t nextSeq = 1;
    std::string lastWritten;
    std::uint64_t nWrites = 0;
    std::uint64_t nBytesWritten = 0;
    std::uint64_t nCorruptLoads = 0;
    std::uint64_t nResumes = 0;

    /** Decode one slot; ok=false with error when invalid/missing. */
    CheckpointLoadResult tryLoadSlot(const std::string &file) const;

    /** Rename a failed slot to <slot>.corrupt and count it. */
    void quarantine(const std::string &file);
};

} // namespace mct

#endif // MCT_SIM_CHECKPOINT_HH
