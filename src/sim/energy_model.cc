#include "sim/energy_model.hh"

// Header-only logic; this translation unit anchors the target.
