#include "sim/stats_report.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace mct
{

void
StatsReport::add(const std::string &path, double value,
                 const std::string &annotation)
{
    std::ostringstream os;
    os << std::setprecision(6) << value;
    rows.push_back({path, os.str(), annotation});
}

void
StatsReport::add(const std::string &path, std::uint64_t value,
                 const std::string &annotation)
{
    rows.push_back({path, std::to_string(value), annotation});
}

void
StatsReport::print(std::ostream &os) const
{
    std::size_t pathW = 0, valueW = 0;
    for (const auto &r : rows) {
        pathW = std::max(pathW, r.path.size());
        valueW = std::max(valueW, r.value.size());
    }
    for (const auto &r : rows) {
        os << std::left << std::setw(static_cast<int>(pathW) + 2)
           << r.path << std::right
           << std::setw(static_cast<int>(valueW)) << r.value;
        if (!r.annotation.empty())
            os << "  # " << r.annotation;
        os << '\n';
    }
}

namespace
{

void
addCache(StatsReport &rep, const std::string &path, const Cache &c)
{
    const CacheStats &s = c.stats();
    rep.add(path + ".accesses", s.accesses);
    rep.add(path + ".hits", s.hits);
    const double hr = s.accesses
        ? static_cast<double>(s.hits) /
              static_cast<double>(s.accesses)
        : 0.0;
    rep.add(path + ".hit_rate", hr);
    rep.add(path + ".evictions", s.evictions);
    rep.add(path + ".dirty_evictions", s.dirtyEvictions);
    rep.add(path + ".eager_cleaned", s.eagerCleaned,
            "lines cleaned by eager mellow writebacks");
    rep.add(path + ".rewrites", s.rewrites,
            "eagerly-cleaned lines dirtied again");
}

} // namespace

StatsReport
collectStats(const System &sys)
{
    StatsReport rep;

    const CoreStats &core = sys.core().stats();
    rep.add("core.instructions", core.instructions);
    rep.add("core.ipc", sys.core().ipc());
    rep.add("core.mem_ops", core.memOps);
    rep.add("core.l1_hits", core.l1Hits);
    rep.add("core.l2_hits", core.l2Hits);
    rep.add("core.l3_hits", core.l3Hits);
    rep.add("core.nvm_reads", core.memReads);
    rep.add("core.nvm_writebacks", core.memWrites);
    rep.add("core.eager_submitted", core.eagerSubmitted);
    rep.add("core.mem_stall_ticks", core.memStallTicks);
    rep.add("core.wb_stall_ticks", core.wbStallTicks);

    const System &s = sys;
    addCache(rep, "cache.l1d", s.caches().l1d());
    addCache(rep, "cache.l2", s.caches().l2c());
    addCache(rep, "cache.llc", s.caches().llc());

    const CtrlStats &ctrl = s.controller().stats();
    rep.add("memctrl.reads_completed", ctrl.readsCompleted);
    rep.add("memctrl.row_hits", ctrl.rowHits);
    const double rowHitRate = ctrl.readsCompleted
        ? static_cast<double>(ctrl.rowHits) /
              static_cast<double>(ctrl.readsCompleted)
        : 0.0;
    rep.add("memctrl.row_hit_rate", rowHitRate);
    rep.add("memctrl.avg_read_latency_ns",
            ctrl.avgReadLatency() / static_cast<double>(tickNs));
    rep.add("memctrl.writes_completed", ctrl.writesCompleted);
    rep.add("memctrl.fast_writes", ctrl.fastWrites);
    rep.add("memctrl.slow_writes", ctrl.slowWrites);
    rep.add("memctrl.quota_writes", ctrl.quotaWrites,
            "forced 4x writes in restricted slices");
    rep.add("memctrl.eager_writes", ctrl.eagerWrites);
    rep.add("memctrl.scrub_writes", ctrl.scrubWrites,
            "retention / disturbance refreshes");
    rep.add("memctrl.cancellations", ctrl.cancellations);
    rep.add("memctrl.paused_writes", ctrl.pausedWrites);
    rep.add("memctrl.readq_rejects", ctrl.readQRejects);
    rep.add("memctrl.writeq_rejects", ctrl.writeQRejects);
    rep.add("memctrl.eagerq_rejects", ctrl.eagerQRejects);
    rep.add("memctrl.wear_added", ctrl.wearAdded,
            "fast-write-equivalent line writes");
    rep.add("memctrl.quota.restricted_slices",
            s.controller().wearQuota().restrictedSlices());

    const NvmDevice &dev = s.device();
    const double busySec = static_cast<double>(ctrl.bankBusyTicks) /
                           static_cast<double>(tickSec);
    const double elapsedSec = static_cast<double>(s.now()) /
                              static_cast<double>(tickSec);
    rep.add("nvm.total_wear", dev.totalWear());
    rep.add("nvm.max_bank_wear", dev.maxBankWear());
    const double util = elapsedSec > 0.0
        ? busySec / (elapsedSec * dev.numBanks())
        : 0.0;
    rep.add("nvm.bank_utilization", util,
            "busy ticks / (elapsed * banks)");
    for (unsigned b = 0; b < dev.numBanks(); ++b) {
        const Bank &bank = dev.bank(b);
        std::ostringstream path;
        path << "nvm.bank" << std::setw(2) << std::setfill('0') << b;
        rep.add(path.str() + ".reads", bank.reads);
        rep.add(path.str() + ".writes", bank.writes);
        rep.add(path.str() + ".wear", bank.wear);
    }

    rep.add("objective.ipc", sys.core().ipc());
    rep.add("objective.lifetime_years", dev.lifetimeYears(s.now()));
    return rep;
}

void
dumpStats(const System &sys, std::ostream &os)
{
    collectStats(sys).print(os);
}

} // namespace mct
