#include "sim/evaluator.hh"

namespace mct
{

Metrics
evaluateConfig(const std::string &app, const MellowConfig &cfg,
               const EvalParams &ep)
{
    System sys(app, ep.sys, cfg);
    sys.run(ep.warmupInsts);
    const SysSnapshot start = sys.snapshot();
    sys.run(ep.measureInsts);
    return sys.metricsSince(start);
}

} // namespace mct
