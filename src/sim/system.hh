/**
 * @file
 * The single-core simulated system: one workload-driven core, a
 * three-level cache hierarchy, the Mellow-Writes memory controller,
 * and the NVM device (Tables 8 and 9). Exposes snapshot-based window
 * metrics (IPC, lifetime, energy) and live configuration switching,
 * which is what the MCT runtime needs.
 */

#ifndef MCT_SIM_SYSTEM_HH
#define MCT_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/alerts.hh"
#include "common/instrument.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "memctrl/controller.hh"
#include "memctrl/mellow_config.hh"
#include "nvm/device.hh"
#include "nvm/nvm_params.hh"
#include "sim/energy_model.hh"
#include "workloads/workload.hh"

namespace mct
{

class FaultInjector;

/** All tunables of the simulated machine. */
struct SystemParams
{
    NvmParams nvm;
    MemCtrlParams memctrl;
    HierarchyParams caches;
    CoreParams core;
    EnergyParams energy;
    std::uint64_t seed = 1;
};

/**
 * The three optimization objectives (paper Section 4.1.2). Energy is
 * reported per million instructions (an intensive measure) so windows
 * of different lengths compare meaningfully; for the fixed-length
 * evaluation windows of the benches this is simply total energy
 * rescaled.
 */
struct Metrics
{
    double ipc = 0.0;
    double lifetimeYears = 0.0;
    double energyJ = 0.0; ///< Joules per 1M instructions

    /** Checkpoint the three objectives. */
    void serialize(Serializer &s) const;

    /** Restore objectives written by serialize(). */
    void deserialize(Deserializer &d);
};

/** A point-in-time capture used to compute window metrics. */
struct SysSnapshot
{
    CoreStats core;
    CtrlStats ctrl;
    Tick time = 0;
    InstCount instructions = 0;
    std::vector<double> bankWear;

    /** Checkpoint the captured counters. */
    void serialize(Serializer &s) const;

    /** Restore a capture written by serialize(). */
    void deserialize(Deserializer &d);
};

/**
 * Owns and wires all components of the single-core machine.
 */
class System
{
  public:
    /** Build the system around a named application model. */
    System(const std::string &workloadName, const SystemParams &params,
           const MellowConfig &config);

    /** Build the system around a caller-supplied workload. */
    System(std::unique_ptr<Workload> workload,
           const SystemParams &params, const MellowConfig &config);

    /** Run at least @p insts further instructions. */
    void run(InstCount insts);

    /** Switch the active Mellow-Writes configuration immediately. */
    void setConfig(const MellowConfig &config);

    /** Active configuration. */
    const MellowConfig &config() const { return ctrl_->config(); }

    /** Capture current counters. */
    SysSnapshot snapshot() const;

    /** Objectives over the window between two snapshots. */
    Metrics metricsBetween(const SysSnapshot &from,
                           const SysSnapshot &to) const;

    /** Objectives since a snapshot, at the current instant. */
    Metrics metricsSince(const SysSnapshot &from) const;

    /** Components, exposed for tests and the MCT runtime. */
    Core &core() { return *core_; }
    const Core &core() const { return *core_; }
    MemController &controller() { return *ctrl_; }
    const MemController &controller() const { return *ctrl_; }
    NvmDevice &device() { return *dev_; }
    const NvmDevice &device() const { return *dev_; }
    CacheHierarchy &caches() { return *hier_; }
    const CacheHierarchy &caches() const { return *hier_; }
    Workload &workload() { return *wl_; }
    const SystemParams &params() const { return p; }
    const EnergyModel &energyModel() const { return energy_; }

    /** Total instructions retired. */
    InstCount retired() const { return core_->retired(); }

    /** Current time (core clock). */
    Tick now() const { return core_->now(); }

    /**
     * The system-wide stat registry. Every component's counters are
     * registered under dotted paths (cpu.*, cache.*, memctrl.*,
     * nvm.*, sim.*) at construction; snapshot() may be called at any
     * instruction boundary and snapshots subtract for delta windows.
     */
    StatRegistry &statRegistry() { return reg_; }
    const StatRegistry &statRegistry() const { return reg_; }

    /**
     * The system-wide event trace. Disabled (zero-cost) until
     * eventTrace().enable(capacity); its instruction clock follows
     * this system's core.
     */
    EventTrace &eventTrace() { return trace_; }
    const EventTrace &eventTrace() const { return trace_; }

    /**
     * The request-lifecycle span trace. Disabled until enableSpans();
     * while disabled no component carries a span pointer, so the
     * per-request cost is a single null-pointer branch.
     */
    SpanTrace &spanTrace() { return spans_; }
    const SpanTrace &spanTrace() const { return spans_; }

    /**
     * The decision-provenance trace (closed MCT audit records).
     * Disabled until provenanceTrace().enable(capacity); while
     * disabled each closed record costs one branch. Enabling also
     * echoes DecisionProvenance events into the event trace.
     */
    ProvenanceTrace &provenanceTrace() { return prov_; }
    const ProvenanceTrace &provenanceTrace() const { return prov_; }

    /**
     * The windowed metric timeline. Disabled until enableTimeline();
     * the driver feeds it the delta snapshot of every --stats-every
     * window. Serialized with the rest of the system so a resumed run
     * reproduces the identical timeline.
     */
    MetricTimeline &timeline() { return timeline_; }
    const MetricTimeline &timeline() const { return timeline_; }

    /**
     * The online alert engine. Disabled until enableAlerts(); observes
     * the same windowed deltas as the timeline and escalates critical
     * raises through an attached hook.
     */
    AlertEngine &alerts() { return alerts_; }
    const AlertEngine &alerts() const { return alerts_; }

    /**
     * Start timeline collection over Sim-scoped metrics matching any
     * of @p globs (empty: all), in a ring of @p capacity windows. The
     * sim.timeline.* gauges register host-scoped, keeping the
     * deterministic snapshot surfaces byte-identical.
     */
    void enableTimeline(std::vector<std::string> globs,
                        std::size_t capacity);

    /**
     * Arm the alert engine with @p rules. Wires the engine to the
     * event trace and registers the host-scoped alert.* stats.
     */
    void enableAlerts(std::vector<AlertRule> rules);

    /**
     * Feed one --stats-every window's delta snapshot to the timeline
     * and alert engine (both single branches while disabled).
     */
    void observeWindow(InstCount inst, const StatSnapshot &delta)
    {
        timeline_.observe(inst, delta);
        alerts_.observe(inst, delta);
    }

    /**
     * Start span sampling: every @p sampleEvery-th request id carries
     * a span through cache, core, controller and device into a ring
     * of @p capacity completed spans, feeding the lat.* stats and the
     * SpanComplete event stream.
     */
    void enableSpans(std::uint64_t sampleEvery, std::size_t capacity);

    /**
     * Attach (or detach with null) a fault injector. The injector is
     * wired to this system's instruction clock, event trace, and stat
     * registry, polled once immediately, and then re-polled at every
     * run() boundary. Caller keeps ownership and must outlive the
     * attachment.
     */
    void attachFaultInjector(FaultInjector *f);

    /** The attached injector, or null (the default). */
    FaultInjector *faultInjector() const { return faults_; }

    /**
     * Attach (or detach with null) a host profiler. The profiler must
     * be enabled by the caller; attaching registers the host-scoped
     * sim.mips / sim.host.* gauges and makes run() charge the "step"
     * stage and credit retired instructions. Host stats never appear
     * in default (StatScope::Sim) snapshots, so the deterministic
     * surfaces are unchanged. Caller keeps ownership and must outlive
     * the attachment.
     */
    void attachHostProfiler(HostProfiler *hp);

    /** The attached host profiler, or null (the default). */
    HostProfiler *hostProfiler() const { return hostProf_; }

    /**
     * Checkpoint the full deterministic state of the machine:
     * workload cursor, core, caches, controller, device, all trace
     * rings, and the registry-owned stat cells. The system must be
     * reconstructed with identical parameters before restoring.
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    SystemParams p;
    EnergyModel energy_;
    StatRegistry reg_;
    EventTrace trace_;
    SpanTrace spans_;
    ProvenanceTrace prov_;
    MetricTimeline timeline_;
    AlertEngine alerts_;
    std::unique_ptr<Workload> wl_;
    std::unique_ptr<NvmDevice> dev_;
    std::unique_ptr<MemController> ctrl_;
    std::unique_ptr<CacheHierarchy> hier_;
    std::unique_ptr<CompletionRouter> router_;
    std::unique_ptr<Core> core_;
    FaultInjector *faults_ = nullptr;
    HostProfiler *hostProf_ = nullptr;

    void wire(const MellowConfig &config);

    /** Register every component under its layer's dotted prefix. */
    void registerAllStats();
};

/** Lifetime of a wear window (helper shared with the multicore sim). */
double windowLifetimeYears(const NvmParams &nvm,
                           const std::vector<double> &wearFrom,
                           const std::vector<double> &wearTo,
                           Tick elapsed);

} // namespace mct

#endif // MCT_SIM_SYSTEM_HH
