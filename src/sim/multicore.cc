#include "sim/multicore.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"

namespace mct
{

MultiCoreSystem::MultiCoreSystem(const std::vector<std::string> &apps,
                                 const MultiCoreParams &params,
                                 const MellowConfig &config)
    : p(params), energy_(params.base.energy)
{
    if (apps.size() != p.nCores)
        mct_fatal("MultiCoreSystem: ", p.nCores, " cores but ",
                  apps.size(), " applications");
    dev_ = std::make_unique<NvmDevice>(p.base.nvm);
    ctrl_ = std::make_unique<MemController>(*dev_, p.base.memctrl,
                                            config);
    router_ = std::make_unique<CompletionRouter>(*ctrl_);
    sharedL3_ = std::make_shared<Cache>(p.base.caches.l3);

    const Addr slice = p.base.nvm.capacityBytes / p.nCores;
    for (unsigned i = 0; i < p.nCores; ++i) {
        auto wl = makeWorkload(apps[i], p.base.seed + i);
        wl->setAddrBase(static_cast<Addr>(i) * slice);
        wls_.push_back(std::move(wl));
        hiers_.push_back(std::make_unique<CacheHierarchy>(
            p.base.caches, sharedL3_));
        cores_.push_back(std::make_unique<Core>(
            i, p.base.core, *wls_.back(), *hiers_.back(), *ctrl_,
            *router_));
    }
}

void
MultiCoreSystem::run(InstCount instsPerCore)
{
    std::vector<InstCount> targets(p.nCores);
    for (unsigned i = 0; i < p.nCores; ++i)
        targets[i] = cores_[i]->retired() + instsPerCore;

    while (true) {
        // Advance the laggard core so the shared controller sees
        // near-monotonic submission times.
        Core *next = nullptr;
        for (unsigned i = 0; i < p.nCores; ++i) {
            if (cores_[i]->retired() >= targets[i])
                continue;
            if (!next || cores_[i]->now() < next->now())
                next = cores_[i].get();
        }
        if (!next)
            break;
        const unsigned i = next->id();
        const InstCount left = targets[i] - next->retired();
        next->run(std::min(left, p.quantum));
    }
    ctrl_->advance(now());
}

void
MultiCoreSystem::setConfig(const MellowConfig &config)
{
    ctrl_->setConfig(config, ctrl_->now());
}

MultiSnapshot
MultiCoreSystem::snapshot() const
{
    MultiSnapshot s;
    for (const auto &core : cores_) {
        s.cores.push_back(core->stats());
        s.coreTimes.push_back(core->now());
    }
    s.ctrl = ctrl_->stats();
    for (unsigned b = 0; b < dev_->numBanks(); ++b)
        s.bankWear.push_back(dev_->bank(b).wear);
    return s;
}

MultiMetrics
MultiCoreSystem::metricsBetween(const MultiSnapshot &from,
                                const MultiSnapshot &to) const
{
    MultiMetrics m;
    Tick maxElapsed = 0;
    InstCount insts = 0;
    for (unsigned i = 0; i < p.nCores; ++i) {
        const Tick elapsed = to.coreTimes[i] - from.coreTimes[i];
        maxElapsed = std::max(maxElapsed, elapsed);
        const CoreStats dc = to.cores[i].delta(from.cores[i]);
        insts += dc.instructions;
        double ipc = 0.0;
        if (elapsed > 0) {
            ipc = static_cast<double>(dc.instructions) /
                  (static_cast<double>(elapsed) /
                   static_cast<double>(cpuCyclePs));
        }
        m.coreIpc.push_back(ipc);
    }
    m.geomeanIpc = geomean(m.coreIpc);
    m.lifetimeYears = windowLifetimeYears(p.base.nvm, from.bankWear,
                                          to.bankWear, maxElapsed);
    const CtrlStats dc = to.ctrl.delta(from.ctrl);
    const double joules = energy_.energyJ(maxElapsed, insts,
                                          dc.readsCompleted,
                                          dc.writeEnergyUnits,
                                          p.nCores);
    if (insts > 0)
        m.energyJ = joules * 1e6 / static_cast<double>(insts);
    return m;
}

InstCount
MultiCoreSystem::retired() const
{
    InstCount total = 0;
    for (const auto &core : cores_)
        total += core->retired();
    return total;
}

Tick
MultiCoreSystem::now() const
{
    Tick latest = 0;
    for (const auto &core : cores_)
        latest = std::max(latest, core->now());
    return latest;
}

} // namespace mct
