/**
 * @file
 * Memoized configuration-space sweeps.
 *
 * Every table and figure of the evaluation reuses the same artifact:
 * the objectives of (application, configuration) pairs. The cache
 * memoizes evaluations in memory and optionally persists them to a
 * CSV file so successive bench binaries share one brute-force sweep.
 */

#ifndef MCT_SIM_SWEEP_CACHE_HH
#define MCT_SIM_SWEEP_CACHE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "memctrl/mellow_config.hh"
#include "sim/evaluator.hh"

namespace mct
{

class StatRegistry;

/** Canonical, parse-stable text key of a configuration. */
std::string configKey(const MellowConfig &cfg);

/**
 * Evaluation memoizer with CSV persistence.
 */
class SweepCache
{
  public:
    /**
     * @param ep Evaluation parameters (identical for all entries; the
     *        cache file is only valid for one EvalParams set, which
     *        the default bench setup guarantees).
     * @param path CSV backing file; empty for in-memory only.
     */
    explicit SweepCache(const EvalParams &ep, std::string path = "");

    ~SweepCache();

    /** Evaluate (memoized). */
    [[nodiscard]] Metrics get(const std::string &app,
                              const MellowConfig &cfg);

    /** Evaluate many configurations, reporting progress. */
    [[nodiscard]] std::vector<Metrics>
    getAll(const std::string &app,
           const std::vector<MellowConfig> &cfgs,
           bool progress = false);

    /** Entries currently cached. */
    std::size_t size() const { return table.size(); }

    /** Evaluations actually executed (cache misses). */
    std::size_t misses() const { return nMisses; }

    /**
     * Rows of the backing file that were malformed (wrong arity,
     * non-numeric, or non-finite) and skipped at load. Skipped
     * entries simply re-evaluate on demand, so a truncated or
     * corrupted cache degrades to recomputation instead of aborting.
     */
    std::size_t recoveredLoads() const { return nRecovered; }

    /** Persist now (no-op for in-memory caches). */
    void save();

    const EvalParams &evalParams() const { return ep; }

    /** Default on-disk location: `mct_sweep_cache.csv` in the build
     *  tree (or the working directory when built without CMake),
     *  overridable via the MCT_SWEEP_CACHE environment variable. */
    [[nodiscard]] static std::string defaultPath();

    /** Register the recovery counter (fault.recovered_loads). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix = "fault") const;

  private:
    EvalParams ep;
    std::string path;
    std::unordered_map<std::string, Metrics> table;
    std::size_t nMisses = 0;
    std::size_t unsaved = 0;
    std::size_t nRecovered = 0;

    void load();
};

} // namespace mct

#endif // MCT_SIM_SWEEP_CACHE_HH
