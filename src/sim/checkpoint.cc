#include "sim/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/instrument.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

namespace
{

constexpr char checkpointMagic[8] = {'M', 'C', 'T', 'C',
                                     'K', 'P', 'T', '\0'};

} // namespace

CheckpointStore::CheckpointStore(std::string basePath)
    : base(std::move(basePath))
{
    if (base.empty())
        mct_fatal("CheckpointStore: empty base path");
    slots[0] = base + ".0";
    slots[1] = base + ".1";
    // Continue the sequence past any checkpoints already on disk so a
    // resumed run never overwrites its newest slot with a lower
    // sequence number.
    for (const auto &slot : slots) {
        const CheckpointLoadResult r = tryLoadSlot(slot);
        if (r.ok && r.sequence >= nextSeq) {
            nextSeq = r.sequence + 1;
            lastWritten = slot;
        }
    }
}

bool
CheckpointStore::save(const std::string &fingerprint,
                      const std::string &payload)
{
    Serializer s;
    for (const char c : checkpointMagic)
        s.putU8(static_cast<std::uint8_t>(c));
    s.putU32(checkpointFormatVersion);
    s.putU64(nextSeq);
    s.putStr(fingerprint);
    s.putStr(payload);
    s.putU64(fnv1a(s.data().data(), s.size()));

    // Alternate slots so the previous checkpoint survives until this
    // one is fully published.
    const std::string &slot = slots[nextSeq % 2];
    if (!writeFileAtomic(slot, s.data())) {
        mct_warn("checkpoint save failed: ", slot);
        return false;
    }
    lastWritten = slot;
    ++nextSeq;
    ++nWrites;
    nBytesWritten += s.size();
    return true;
}

CheckpointLoadResult
CheckpointStore::tryLoadSlot(const std::string &file) const
{
    CheckpointLoadResult r;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
        r.error = "missing";
        return r;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string body = buf.str();

    // Footer first: nothing is decoded until the checksum verifies.
    constexpr std::size_t minSize = sizeof(checkpointMagic) + 4 + 8 +
                                    8 + 8 + 8;
    if (body.size() < minSize) {
        r.error = "truncated (" + std::to_string(body.size()) +
                  " bytes)";
        return r;
    }
    const std::size_t csumAt = body.size() - 8;
    Deserializer footer(body.data() + csumAt, 8);
    const std::uint64_t stored = footer.getU64();
    const std::uint64_t computed = fnv1a(body.data(), csumAt);
    if (stored != computed) {
        r.error = "checksum mismatch";
        return r;
    }

    Deserializer d(body.data(), csumAt);
    for (const char c : checkpointMagic) {
        if (d.getU8() != static_cast<std::uint8_t>(c)) {
            r.error = "bad magic";
            return r;
        }
    }
    const std::uint32_t version = d.getU32();
    if (version != checkpointFormatVersion) {
        r.error = "format version " + std::to_string(version) +
                  " (expected " +
                  std::to_string(checkpointFormatVersion) + ")";
        return r;
    }
    r.sequence = d.getU64();
    r.fingerprint = d.getStr();
    r.payload = d.getStr();
    if (!d.atEnd()) {
        r.error = "malformed body";
        return r;
    }
    r.slotFile = file;
    r.ok = true;
    return r;
}

void
CheckpointStore::quarantine(const std::string &file)
{
    const std::string target = file + ".corrupt";
    std::remove(target.c_str());
    if (std::rename(file.c_str(), target.c_str()) != 0)
        mct_warn("cannot quarantine corrupt checkpoint ", file);
    ++nCorruptLoads;
}

CheckpointLoadResult
CheckpointStore::load()
{
    CheckpointLoadResult best;
    bool sawCorrupt = false;
    std::string errors;
    for (const auto &slot : slots) {
        CheckpointLoadResult r = tryLoadSlot(slot);
        if (r.ok) {
            if (!best.ok || r.sequence > best.sequence)
                best = std::move(r);
            continue;
        }
        if (r.error != "missing") {
            mct_warn("checkpoint slot ", slot, " rejected: ", r.error);
            quarantine(slot);
            sawCorrupt = true;
        }
        if (!errors.empty())
            errors += "; ";
        errors += slot + ": " + r.error;
    }
    best.corruptRejected = sawCorrupt;
    if (!best.ok)
        best.error = errors.empty() ? "no checkpoint found" : errors;
    return best;
}

void
CheckpointStore::registerStats(StatRegistry &reg)
{
    reg.addCounter("ckpt.writes", [this] { return nWrites; },
                   "checkpoints published");
    reg.addCounter("ckpt.bytes", [this] { return nBytesWritten; },
                   "checkpoint bytes written");
    reg.addCounter("ckpt.corrupt_loads",
                   [this] { return nCorruptLoads; },
                   "slots rejected by validation and quarantined");
    reg.addCounter("ckpt.resumes", [this] { return nResumes; },
                   "successful restores from a checkpoint");
    // Host-scoped: checkpoint activity depends on --ckpt-* flags and
    // signals, not simulated state; it must never perturb the
    // byte-identical Sim snapshot surfaces.
    reg.markHost("ckpt.writes");
    reg.markHost("ckpt.bytes");
    reg.markHost("ckpt.corrupt_loads");
    reg.markHost("ckpt.resumes");
}

} // namespace mct
