#include "sim/fault_injector.hh"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/instrument.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "sim/system.hh"

namespace mct
{

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : plan_(plan), rng(seed), wasActive(plan.specs.size(), false)
{
}

void
FaultInjector::registerStats(StatRegistry &reg,
                             const std::string &prefix)
{
    for (std::size_t k = 0; k < numFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        reg.addCounter(prefix + ".injected." + toString(kind),
                       [this, kind] { return injected(kind); },
                       "window armings / stochastic firings");
    }
    reg.addCounter(prefix + ".injected.total",
                   [this] { return injectedTotal(); });
    reg.addGauge(prefix + ".active",
                 [this] { return static_cast<double>(activeCount()); },
                 "fault-plan specs currently armed");
}

std::uint64_t
FaultInjector::injected(FaultKind kind) const
{
    return nInjected[static_cast<std::size_t>(kind)];
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::uint64_t total = 0;
    for (const auto n : nInjected)
        total += n;
    return total;
}

std::size_t
FaultInjector::activeCount() const
{
    const InstCount inst = instNow();
    std::size_t n = 0;
    for (const auto &s : plan_.specs)
        n += s.activeAt(inst) ? 1 : 0;
    return n;
}

void
FaultInjector::poll(System &sys)
{
    const InstCount inst = instNow();
    bool changed = false;
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
        const FaultSpec &s = plan_.specs[i];
        const bool active = s.activeAt(inst);
        if (active == wasActive[i])
            continue;
        wasActive[i] = active;
        changed = true;
        if (active)
            ++nInjected[static_cast<std::size_t>(s.kind)];
        if (trace)
            trace->record(TraceEventType::FaultInjected,
                          static_cast<double>(s.kind),
                          active ? 1.0 : 0.0, s.magnitude);
    }
    if (!changed)
        return;

    // Recompute the full degradation state from armed windows. Window
    // effects compose multiplicatively when they overlap.
    const unsigned banks = sys.device().numBanks();
    std::vector<double> latF(banks, 1.0);
    std::vector<double> wearF(banks, 1.0);
    double skew = 1.0;
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
        if (!wasActive[i])
            continue;
        const FaultSpec &s = plan_.specs[i];
        switch (s.kind) {
          case FaultKind::LatencyDrift:
            for (auto &f : latF)
                f *= s.magnitude;
            break;
          case FaultKind::BankDegrade:
            for (unsigned b = 0; b < banks; ++b) {
                if (s.bank >= 0 && static_cast<unsigned>(s.bank) != b)
                    continue;
                latF[b] *= s.magnitude;
                wearF[b] *= s.magnitude;
            }
            break;
          case FaultKind::WearClockSkew:
            skew *= s.magnitude;
            break;
          default:
            break; // stochastic kinds are sampled on demand
        }
    }
    for (unsigned b = 0; b < banks; ++b)
        sys.device().setBankDegradation(static_cast<int>(b), latF[b],
                                        wearF[b]);
    sys.controller().setQuotaClockSkew(skew);
}

double
FaultInjector::garbleValue(double v, double mag)
{
    switch (rng.below(5)) {
      case 0:
        return std::numeric_limits<double>::quiet_NaN();
      case 1:
        return std::numeric_limits<double>::infinity();
      case 2:
        return -std::numeric_limits<double>::infinity();
      case 3:
        return -v; // sign flip (plausible-looking garbage)
      default:
        return v * rng.uniform(0.0, mag) + mag; // wild outlier
    }
}

bool
FaultInjector::corruptMetrics(Metrics &m)
{
    bool corrupted = false;
    forEachArmed(FaultKind::CounterCorrupt, [&](const FaultSpec &s) {
        if (!rng.flip(s.prob))
            return;
        switch (rng.below(3)) {
          case 0: m.ipc = garbleValue(m.ipc, s.magnitude); break;
          case 1:
            m.lifetimeYears = garbleValue(m.lifetimeYears, s.magnitude);
            break;
          default:
            m.energyJ = garbleValue(m.energyJ, s.magnitude);
            break;
        }
        ++nInjected[static_cast<std::size_t>(FaultKind::CounterCorrupt)];
        corrupted = true;
    });
    return corrupted;
}

bool
FaultInjector::predictorGarbageArmed() const
{
    bool armed = false;
    forEachArmed(FaultKind::PredictorGarbage,
                 [&](const FaultSpec &) { armed = true; });
    return armed;
}

std::size_t
FaultInjector::corruptPredictions(std::vector<double> &ratios)
{
    std::size_t corrupted = 0;
    forEachArmed(FaultKind::PredictorGarbage, [&](const FaultSpec &s) {
        for (auto &r : ratios) {
            if (!rng.flip(s.prob))
                continue;
            r = garbleValue(r, s.magnitude);
            ++corrupted;
        }
    });
    if (corrupted) {
        nInjected[static_cast<std::size_t>(FaultKind::PredictorGarbage)]
            += corrupted;
    }
    return corrupted;
}

bool
FaultInjector::corruptCsvFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string body = buf.str();
    in.close();
    if (body.empty())
        return false;

    // Truncate mid-row somewhere past the start, then append a line
    // of non-numeric junk: both failure modes loaders must survive.
    const std::size_t keep =
        body.size() / 2 + rng.below(body.size() / 2);
    body.resize(keep);
    body += "\ncorrupt,not-a-number,###,nan?,";

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << body;
    ++nInjected[static_cast<std::size_t>(FaultKind::SweepCacheCorrupt)];
    mct_warn("fault injector corrupted '", path, "' (", keep,
             " of ", buf.str().size(), " bytes kept)");
    return static_cast<bool>(out);
}

bool
FaultInjector::corruptCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string body = buf.str();
    in.close();
    if (body.size() < 16)
        return false;

    std::size_t keep = body.size();
    if (rng.flip(0.5)) {
        // Truncation: the checksum footer (and possibly more) is gone.
        keep = body.size() / 2 + rng.below(body.size() / 4);
        body.resize(keep);
    } else {
        // Bit rot: flip a handful of payload bits; the FNV footer no
        // longer matches.
        for (int i = 0; i < 8; ++i) {
            const std::size_t at = rng.below(body.size());
            body[at] = static_cast<char>(
                static_cast<unsigned char>(body[at]) ^
                (1u << rng.below(8)));
        }
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << body;
    ++nInjected[static_cast<std::size_t>(FaultKind::CkptCorrupt)];
    mct_warn("fault injector corrupted checkpoint '", path, "' (",
             keep, " of ", buf.str().size(), " bytes kept)");
    return static_cast<bool>(out);
}

void
FaultInjector::serialize(Serializer &s) const
{
    rng.serialize(s);
    s.putU64(wasActive.size());
    for (std::size_t i = 0; i < wasActive.size(); ++i)
        s.putBool(wasActive[i]);
    for (const std::uint64_t n : nInjected)
        s.putU64(n);
}

void
FaultInjector::deserialize(Deserializer &d)
{
    rng.deserialize(d);
    if (d.getU64() != wasActive.size())
        mct_panic("checkpoint fault-plan size mismatch");
    for (std::size_t i = 0; i < wasActive.size(); ++i)
        wasActive[i] = d.getBool();
    for (std::uint64_t &n : nInjected)
        n = d.getU64();
}

} // namespace mct
