/**
 * @file
 * Analytic system energy model standing in for McPAT + NVSim
 * (paper Section 6.1). Captures the terms the paper's energy results
 * hinge on: static/leakage power grows with runtime, core dynamic
 * energy tracks retired instructions, NVM dynamic energy tracks reads
 * and (power-scaled) writes, and cancelled writes waste energy.
 */

#ifndef MCT_SIM_ENERGY_MODEL_HH
#define MCT_SIM_ENERGY_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace mct
{

/** Energy model coefficients (values inspired by McPAT/NVSim scale). */
struct EnergyParams
{
    /** Core static + uncore leakage power per core (W). */
    double coreStaticW = 5.0;

    /** Core dynamic energy per retired instruction (J). */
    double corePerInstJ = 1.5e-9;

    /** NVM array + peripheral static power (W). */
    double memStaticW = 0.4;

    /** Energy per 64 B NVM read (J). */
    double readJ = 2.0e-9;

    /**
     * Energy of a ratio-1.0 line write (J). The controller accumulates
     * sum(r^exp) per write, so slow writes cost slightly less energy
     * each while stretching runtime.
     */
    double writeBaseJ = 8.0e-9;
};

/**
 * Computes Joules for an execution window.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params) : p(params) {}

    /**
     * @param elapsedTicks Window wall-clock length.
     * @param instructions Instructions retired in the window.
     * @param reads Completed NVM reads.
     * @param writeEnergyUnits Controller-accumulated sum of r^exp over
     *        write activity (including cancelled fractions).
     * @param nCores Number of active cores.
     */
    double
    energyJ(Tick elapsedTicks, InstCount instructions,
            std::uint64_t reads, double writeEnergyUnits,
            unsigned nCores = 1) const
    {
        const double sec = static_cast<double>(elapsedTicks) /
                           static_cast<double>(tickSec);
        double e = sec * (p.coreStaticW * nCores + p.memStaticW);
        e += p.corePerInstJ * static_cast<double>(instructions);
        e += p.readJ * static_cast<double>(reads);
        e += p.writeBaseJ * writeEnergyUnits;
        return e;
    }

    const EnergyParams &params() const { return p; }

  private:
    EnergyParams p;
};

} // namespace mct

#endif // MCT_SIM_ENERGY_MODEL_HH
