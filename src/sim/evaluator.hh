/**
 * @file
 * One-shot configuration evaluation: build a fresh system, warm it
 * up, measure a window, return the three objectives. This is the unit
 * of work behind the brute-force "ideal policy" sweep (the paper's
 * 300,000 computing hours, feasible here because the substrate is a
 * fast synthetic simulator).
 */

#ifndef MCT_SIM_EVALUATOR_HH
#define MCT_SIM_EVALUATOR_HH

#include <string>

#include "common/types.hh"
#include "memctrl/mellow_config.hh"
#include "sim/system.hh"

namespace mct
{

/** Run lengths and machine description for evaluations. */
struct EvalParams
{
    SystemParams sys;

    /** Warm-up instructions (paper: 6 B, scaled down). */
    InstCount warmupInsts = 200 * 1000;

    /** Measured instructions (paper: 2 B, scaled down). */
    InstCount measureInsts = 1000 * 1000;
};

/** Evaluate one configuration on one application. */
Metrics evaluateConfig(const std::string &app, const MellowConfig &cfg,
                       const EvalParams &ep);

} // namespace mct

#endif // MCT_SIM_EVALUATOR_HH
