#include "sim/system.hh"

#include <algorithm>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "sim/fault_injector.hh"

namespace mct
{

System::System(const std::string &workloadName,
               const SystemParams &params, const MellowConfig &config)
    : System(makeWorkload(workloadName, params.seed), params, config)
{
}

System::System(std::unique_ptr<Workload> workload,
               const SystemParams &params, const MellowConfig &config)
    : p(params), energy_(params.energy), wl_(std::move(workload))
{
    if (!wl_)
        mct_fatal("System: null workload");
    wire(config);
}

void
System::wire(const MellowConfig &config)
{
    dev_ = std::make_unique<NvmDevice>(p.nvm);
    ctrl_ = std::make_unique<MemController>(*dev_, p.memctrl, config);
    hier_ = std::make_unique<CacheHierarchy>(p.caches);
    router_ = std::make_unique<CompletionRouter>(*ctrl_);
    core_ = std::make_unique<Core>(0, p.core, *wl_, *hier_, *ctrl_,
                                   *router_);
    trace_.setClock(&core_->stats().instructions);
    ctrl_->attachTrace(&trace_);
    prov_.attachTrace(&trace_);
    registerAllStats();
}

void
System::registerAllStats()
{
    core_->registerStats(reg_, "cpu.core0");
    hier_->registerStats(reg_, "cache");
    ctrl_->registerStats(reg_, "memctrl");
    dev_->registerStats(reg_, "nvm");
    reg_.addGauge("sim.seconds", [this] {
        return static_cast<double>(now()) * secPerTick;
    });
    reg_.addCounter("sim.instructions", [this] { return retired(); });
    reg_.addGauge("sim.objective.ipc", [this] { return core_->ipc(); });
    reg_.addGauge("sim.objective.lifetime_years",
                  [this] { return dev_->lifetimeYears(now()); });
    reg_.addGauge("sim.trace.recorded", [this] {
        return static_cast<double>(trace_.recorded());
    });
    reg_.addGauge("sim.trace.dropped", [this] {
        return static_cast<double>(trace_.dropped());
    });
    reg_.addGauge("sim.spans.recorded", [this] {
        return static_cast<double>(spans_.recorded());
    });
    reg_.addGauge("sim.spans.dropped", [this] {
        return static_cast<double>(spans_.dropped());
    });
    reg_.addGauge("sim.provenance.recorded", [this] {
        return static_cast<double>(prov_.recorded());
    });
    reg_.addGauge("sim.provenance.dropped", [this] {
        return static_cast<double>(prov_.dropped());
    });
    reg_.addCounter("stats.nonfinite", [] { return jsonNonfiniteCount(); },
                    "NaN/Inf values that reached a JSON emitter");

    // Latency attribution of sampled request-lifecycle spans. The
    // histograms are registry-owned; the span trace records into them
    // whenever a sampled span closes (empty while spans are off).
    const auto addLatStats =
        [this](const std::string &stage) -> LogHistogram & {
        LogHistogram &h = reg_.addHistogram(
            "lat." + stage + ".ns",
            "per-span " + stage + " time of sampled requests (ns)");
        reg_.addGauge("lat." + stage + ".p50_ns",
                      [&h] { return h.percentile(0.50); },
                      "median " + stage + " span time (ns)");
        reg_.addGauge("lat." + stage + ".p90_ns",
                      [&h] { return h.percentile(0.90); },
                      "90th-percentile " + stage + " span time (ns)");
        reg_.addGauge("lat." + stage + ".p99_ns",
                      [&h] { return h.percentile(0.99); },
                      "99th-percentile " + stage + " span time (ns)");
        return h;
    };
    for (std::size_t s = 0; s < numSpanStages; ++s) {
        const auto stage = static_cast<SpanStage>(s);
        spans_.setStageHistogram(stage, &addLatStats(toString(stage)));
    }
    spans_.setTotalHistogram(&addLatStats("total"));
}

void
System::enableSpans(std::uint64_t sampleEvery, std::size_t capacity)
{
    spans_.enable(sampleEvery, capacity);
    spans_.setClock(&core_->stats().instructions);
    spans_.attachTrace(&trace_);
    core_->attachSpans(&spans_);
    hier_->attachSpans(&spans_);
    ctrl_->attachSpans(&spans_);
    dev_->attachSpans(&spans_);
}

void
System::enableTimeline(std::vector<std::string> globs,
                       std::size_t capacity)
{
    timeline_.enable(std::move(globs), capacity);
    // Host-scoped: collection is deterministic, but registering these
    // must not perturb the byte-identical Sim snapshot surfaces, so
    // an armed run's --stats-json matches a disarmed run's.
    reg_.addGauge("sim.timeline.windows", [this] {
        return static_cast<double>(timeline_.size());
    }, "timeline windows currently held in the ring");
    reg_.addGauge("sim.timeline.recorded", [this] {
        return static_cast<double>(timeline_.recorded());
    }, "timeline windows ever observed");
    reg_.addGauge("sim.timeline.dropped", [this] {
        return static_cast<double>(timeline_.dropped());
    }, "timeline windows overwritten by ring wraparound");
    reg_.addGauge("sim.timeline.metrics", [this] {
        return static_cast<double>(timeline_.metrics().size());
    }, "metrics bound to the timeline's tracked set");
    for (const char *path :
         {"sim.timeline.windows", "sim.timeline.recorded",
          "sim.timeline.dropped", "sim.timeline.metrics"})
        reg_.markHost(path);
}

void
System::enableAlerts(std::vector<AlertRule> rules)
{
    alerts_.enable(std::move(rules));
    alerts_.attachTrace(&trace_);
    alerts_.registerStats(reg_);
}

void
System::attachFaultInjector(FaultInjector *f)
{
    faults_ = f;
    if (!faults_)
        return;
    faults_->setClock(&core_->stats().instructions);
    faults_->attachTrace(&trace_);
    faults_->registerStats(reg_);
    faults_->poll(*this); // apply faults armed from instruction 0
}

void
System::attachHostProfiler(HostProfiler *hp)
{
    hostProf_ = hp;
    if (hostProf_)
        hostProf_->registerStats(reg_);
}

void
System::run(InstCount insts)
{
    if (faults_)
        faults_->poll(*this);
    const InstCount before = core_->retired();
    {
        HostProfiler::Scope step(hostProf_, "step");
        core_->run(insts);
        // Let in-flight memory work that already fits inside the
        // elapsed window complete so snapshot deltas line up with
        // CPU time.
        ctrl_->advance(core_->now());
    }
    if (hostProf_)
        hostProf_->addInstructions(
            static_cast<std::uint64_t>(core_->retired() - before));
}

void
System::setConfig(const MellowConfig &config)
{
    trace_.record(TraceEventType::ConfigApplied, config.slowLatency,
                  config.wearQuota ? 1.0 : 0.0,
                  (config.fastCancellation ? 2.0
                   : config.slowCancellation ? 1.0
                                             : 0.0));
    ctrl_->setConfig(config, core_->now());
}

SysSnapshot
System::snapshot() const
{
    SysSnapshot s;
    s.core = core_->stats();
    s.ctrl = ctrl_->stats();
    s.time = core_->now();
    s.instructions = core_->retired();
    s.bankWear.reserve(dev_->numBanks());
    for (unsigned b = 0; b < dev_->numBanks(); ++b)
        s.bankWear.push_back(dev_->bank(b).wear);
    return s;
}

double
windowLifetimeYears(const NvmParams &nvm,
                    const std::vector<double> &wearFrom,
                    const std::vector<double> &wearTo, Tick elapsed)
{
    if (elapsed == 0 || wearTo.size() != wearFrom.size())
        return nvm.maxLifetimeYears;
    double worstRate = 0.0;
    const double sec = static_cast<double>(elapsed) /
                       static_cast<double>(tickSec);
    for (std::size_t b = 0; b < wearTo.size(); ++b) {
        const double dw = wearTo[b] - wearFrom[b];
        worstRate = std::max(worstRate, dw / sec);
    }
    if (worstRate <= 0.0)
        return nvm.maxLifetimeYears;
    const double years =
        nvm.bankWearCapacity() / worstRate / secondsPerYear;
    return std::min(years, nvm.maxLifetimeYears);
}

Metrics
System::metricsBetween(const SysSnapshot &from,
                       const SysSnapshot &to) const
{
    Metrics m;
    const Tick elapsed = to.time - from.time;
    const InstCount insts = to.instructions - from.instructions;
    if (elapsed > 0) {
        const double cycles = static_cast<double>(elapsed) /
                              static_cast<double>(cpuCyclePs);
        m.ipc = static_cast<double>(insts) / cycles;
    }
    m.lifetimeYears =
        windowLifetimeYears(p.nvm, from.bankWear, to.bankWear, elapsed);
    const CtrlStats dc = to.ctrl.delta(from.ctrl);
    const double joules = energy_.energyJ(elapsed, insts,
                                          dc.readsCompleted,
                                          dc.writeEnergyUnits, 1);
    if (insts > 0)
        m.energyJ = joules * 1e6 / static_cast<double>(insts);
    return m;
}

Metrics
System::metricsSince(const SysSnapshot &from) const
{
    return metricsBetween(from, snapshot());
}

void
Metrics::serialize(Serializer &s) const
{
    s.putF64(ipc);
    s.putF64(lifetimeYears);
    s.putF64(energyJ);
}

void
Metrics::deserialize(Deserializer &d)
{
    ipc = d.getF64();
    lifetimeYears = d.getF64();
    energyJ = d.getF64();
}

void
SysSnapshot::serialize(Serializer &s) const
{
    core.serialize(s);
    ctrl.serialize(s);
    s.putU64(time);
    s.putU64(instructions);
    s.putU64(bankWear.size());
    for (const double w : bankWear)
        s.putF64(w);
}

void
SysSnapshot::deserialize(Deserializer &d)
{
    core.deserialize(d);
    ctrl.deserialize(d);
    time = d.getU64();
    instructions = d.getU64();
    bankWear.assign(d.getU64(), 0.0);
    for (double &w : bankWear)
        w = d.getF64();
}

void
System::serialize(Serializer &s) const
{
    wl_->serialize(s);
    core_->serialize(s);
    hier_->serialize(s);
    ctrl_->serialize(s);
    dev_->serialize(s);
    trace_.serialize(s);
    spans_.serialize(s);
    prov_.serialize(s);
    timeline_.serialize(s);
    alerts_.serialize(s);
    reg_.serializeOwned(s);
}

void
System::deserialize(Deserializer &d)
{
    wl_->deserialize(d);
    core_->deserialize(d);
    hier_->deserialize(d);
    ctrl_->deserialize(d);
    dev_->deserialize(d);
    trace_.deserialize(d);
    spans_.deserialize(d);
    prov_.deserialize(d);
    timeline_.deserialize(d);
    alerts_.deserialize(d);
    reg_.deserializeOwned(d);
}

} // namespace mct
