/**
 * @file
 * The 4-core system of Section 6.2.5: private L1/L2 per core, a
 * shared 8 MB L3, and an 8 GB, 32-bank resistive main memory behind
 * one controller. Cores are interleaved in small instruction quanta,
 * always advancing the core with the earliest clock, so the shared
 * controller observes near-monotonic request times.
 */

#ifndef MCT_SIM_MULTICORE_HH
#define MCT_SIM_MULTICORE_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "memctrl/controller.hh"
#include "memctrl/mellow_config.hh"
#include "nvm/device.hh"
#include "sim/energy_model.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace mct
{

/** Multi-core machine parameters (Section 6.2.5 defaults). */
struct MultiCoreParams
{
    SystemParams base;
    unsigned nCores = 4;
    InstCount quantum = 2000;

    MultiCoreParams()
    {
        base.nvm.capacityBytes = 8ULL << 30;
        base.nvm.numBanks = 32;
        base.caches.l3 = CacheParams{"L3", 8 * 1024 * 1024, 16};
    }
};

/** Multi-core snapshot: per-core counters plus shared-memory state. */
struct MultiSnapshot
{
    std::vector<CoreStats> cores;
    std::vector<Tick> coreTimes;
    CtrlStats ctrl;
    std::vector<double> bankWear;
};

/** Window results for the multi-core machine. */
struct MultiMetrics
{
    /** Per-core IPC over the window. */
    std::vector<double> coreIpc;

    /** Geometric mean of the per-core IPCs. */
    double geomeanIpc = 0.0;

    /** Shared-memory lifetime (min over banks). */
    double lifetimeYears = 0.0;

    /** Total system energy over the window. */
    double energyJ = 0.0;
};

/**
 * Owns the cores, per-core workloads/hierarchies, and the shared
 * controller; schedules cores oldest-clock-first.
 */
class MultiCoreSystem
{
  public:
    MultiCoreSystem(const std::vector<std::string> &apps,
                    const MultiCoreParams &params,
                    const MellowConfig &config);

    /** Run until every core retires @p instsPerCore more insts. */
    void run(InstCount instsPerCore);

    /** Switch the shared controller's configuration. */
    void setConfig(const MellowConfig &config);

    /** Active configuration. */
    const MellowConfig &config() const { return ctrl_->config(); }

    MultiSnapshot snapshot() const;

    MultiMetrics metricsBetween(const MultiSnapshot &from,
                                const MultiSnapshot &to) const;

    /** Aggregate instructions retired across cores. */
    InstCount retired() const;

    /** Latest core clock. */
    Tick now() const;

    MemController &controller() { return *ctrl_; }
    const MultiCoreParams &params() const { return p; }
    unsigned nCores() const { return p.nCores; }
    Core &core(unsigned i) { return *cores_[i]; }

  private:
    MultiCoreParams p;
    EnergyModel energy_;
    std::unique_ptr<NvmDevice> dev_;
    std::unique_ptr<MemController> ctrl_;
    std::unique_ptr<CompletionRouter> router_;
    std::shared_ptr<Cache> sharedL3_;
    std::vector<std::unique_ptr<Workload>> wls_;
    std::vector<std::unique_ptr<CacheHierarchy>> hiers_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace mct

#endif // MCT_SIM_MULTICORE_HH
