/**
 * @file
 * Hierarchical plain-text statistics dump of a simulated system, in
 * the spirit of gem5's stats.txt: every component reports its
 * counters under a dotted path, with derived rates alongside the raw
 * values. Useful for debugging workload calibrations and for
 * downstream users validating their own configurations.
 */

#ifndef MCT_SIM_STATS_REPORT_HH
#define MCT_SIM_STATS_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace mct
{

/**
 * Collects (path, value, annotation) rows and renders them aligned.
 */
class StatsReport
{
  public:
    /** Append one scalar statistic. */
    void add(const std::string &path, double value,
             const std::string &annotation = "");

    /** Append an integer statistic. */
    void add(const std::string &path, std::uint64_t value,
             const std::string &annotation = "");

    /** Render all rows, gem5-style (path, value, # annotation). */
    void print(std::ostream &os) const;

    /** Number of rows collected. */
    std::size_t size() const { return rows.size(); }

  private:
    struct Row
    {
        std::string path;
        std::string value;
        std::string annotation;
    };
    std::vector<Row> rows;
};

/**
 * Build the full report of a system at its current state: core,
 * cache levels, memory controller, wear quota, and per-bank device
 * statistics, plus the three derived objectives.
 */
StatsReport collectStats(const System &sys);

/** Convenience: collect and print to the stream. */
void dumpStats(const System &sys, std::ostream &os);

} // namespace mct

#endif // MCT_SIM_STATS_REPORT_HH
