#include "sim/sweep_cache.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/csv.hh"
#include "common/instrument.hh"
#include "common/logging.hh"

namespace mct
{

std::string
configKey(const MellowConfig &cfg)
{
    std::ostringstream os;
    os << "ba";
    if (cfg.bankAware)
        os << cfg.bankAwareThreshold;
    else
        os << "-";
    os << "_ew";
    if (cfg.eagerWritebacks)
        os << cfg.eagerThreshold;
    else
        os << "-";
    os << "_wq";
    if (cfg.wearQuota) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.1f", cfg.wearQuotaTarget);
        os << buf;
    } else {
        os << "-";
    }
    char lat[32];
    std::snprintf(lat, sizeof(lat), "_f%.1f_s", cfg.fastLatency);
    os << lat;
    if (cfg.usesSlowWrites()) {
        std::snprintf(lat, sizeof(lat), "%.1f", cfg.slowLatency);
        os << lat;
    } else {
        os << "-";
    }
    os << "_c" << (cfg.fastCancellation ? "F" : "")
       << (cfg.usesSlowWrites() && cfg.slowCancellation ? "S" : "");
    if (cfg.pauseInsteadOfCancel)
        os << "_P"; // extension: write pausing
    if (cfg.shortRetentionWrites)
        os << "_R"; // extension: short-retention writes
    if (cfg.fastDisturbingReads)
        os << "_D"; // extension: fast disturbing reads
    return os.str();
}

SweepCache::SweepCache(const EvalParams &evalParams, std::string csvPath)
    : ep(evalParams), path(std::move(csvPath))
{
    load();
}

SweepCache::~SweepCache()
{
    save();
}

std::string
SweepCache::defaultPath()
{
    if (const char *env = std::getenv("MCT_SWEEP_CACHE"))
        return env;
#ifdef MCT_SWEEP_CACHE_DIR
    return std::string(MCT_SWEEP_CACHE_DIR) + "/mct_sweep_cache.csv";
#else
    return "mct_sweep_cache.csv";
#endif
}

void
SweepCache::load()
{
    if (path.empty())
        return;
    CsvFile csv;
    if (!csv.load(path))
        return;
    for (const auto &row : csv.data()) {
        // A truncated or corrupted file must not abort the run: skip
        // rows that fail to parse and let misses recompute them.
        if (row.size() != 5) {
            ++nRecovered;
            continue;
        }
        Metrics m;
        if (!CsvFile::tryDouble(row[2], m.ipc) ||
            !CsvFile::tryDouble(row[3], m.lifetimeYears) ||
            !CsvFile::tryDouble(row[4], m.energyJ) ||
            !std::isfinite(m.ipc) || !std::isfinite(m.lifetimeYears) ||
            !std::isfinite(m.energyJ)) {
            ++nRecovered;
            continue;
        }
        table[row[0] + "|" + row[1]] = m;
    }
    if (nRecovered) {
        mct_warn("SweepCache: skipped ", nRecovered,
                 " corrupt row(s) in ", path,
                 "; they will be recomputed on demand");
    }
    mct_inform("SweepCache: loaded ", table.size(), " entries from ",
               path);
}

void
SweepCache::save()
{
    if (path.empty() || unsaved == 0)
        return;
    CsvFile csv;
    for (const auto &[key, m] : table) {
        const auto bar = key.find('|');
        std::ostringstream ipc, life, en;
        ipc.precision(17);
        life.precision(17);
        en.precision(17);
        ipc << m.ipc;
        life << m.lifetimeYears;
        en << m.energyJ;
        csv.row({key.substr(0, bar), key.substr(bar + 1), ipc.str(),
                 life.str(), en.str()});
    }
    if (!csv.save(path))
        mct_warn("SweepCache: could not write ", path);
    else
        unsaved = 0;
}

Metrics
SweepCache::get(const std::string &app, const MellowConfig &cfg)
{
    const std::string key = app + "|" + configKey(cfg);
    const auto it = table.find(key);
    if (it != table.end())
        return it->second;
    const Metrics m = evaluateConfig(app, cfg, ep);
    table[key] = m;
    ++nMisses;
    if (++unsaved >= 500)
        save();
    return m;
}

void
SweepCache::registerStats(StatRegistry &reg,
                          const std::string &prefix) const
{
    reg.addCounter(prefix + ".recovered_loads",
                   [this] { return std::uint64_t(nRecovered); },
                   "corrupt cache rows skipped and recomputed");
}

std::vector<Metrics>
SweepCache::getAll(const std::string &app,
                   const std::vector<MellowConfig> &cfgs, bool progress)
{
    std::vector<Metrics> out;
    out.reserve(cfgs.size());
    std::size_t done = 0;
    for (const auto &cfg : cfgs) {
        out.push_back(get(app, cfg));
        if (progress && (++done % 500 == 0)) {
            mct_inform("sweep ", app, ": ", done, "/", cfgs.size());
        }
    }
    return out;
}

} // namespace mct
