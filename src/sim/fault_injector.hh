/**
 * @file
 * Deterministic fault-injection harness (the "chaos" half of the
 * robustness story; see docs/robustness.md).
 *
 * A FaultInjector executes a declarative FaultPlan against a live
 * System. Window faults (latency drift, bank degradation, wear-clock
 * skew) are applied to device/controller state when their instruction
 * window opens and reverted when it closes — polled from System::run,
 * so no component below the sim layer knows the injector exists.
 * Stochastic faults (counter corruption, predictor garbage) are
 * sampled on demand by the MCT runtime through the corrupt* hooks.
 *
 * Every draw comes from a private seeded Rng, so a given (plan, seed,
 * workload) triple reproduces the exact same fault sequence — chaos
 * runs are diffable evidence like every other run in this repo.
 */

#ifndef MCT_SIM_FAULT_INJECTOR_HH
#define MCT_SIM_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_plan.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace mct
{

class EventTrace;
class StatRegistry;
class System;
struct Metrics;
class Serializer;
class Deserializer;

/**
 * Drives a FaultPlan against a System. One injector serves one system;
 * attach it via System::attachFaultInjector.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan,
                           std::uint64_t seed = 1);

    const FaultPlan &plan() const { return plan_; }

    /** Follow a live instruction counter (timestamps + windows). */
    void setClock(const InstCount *instClock) { clock = instClock; }

    /** Record arm/clear transitions into @p t (null detaches). */
    void attachTrace(EventTrace *t) { trace = t; }

    /** Register fault.* counters/gauges. */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix = "fault");

    /**
     * Re-evaluate window faults at the current instruction count and
     * (re)apply device degradation and quota clock skew on
     * transitions. Called from System::run; cheap when nothing
     * changes.
     */
    void poll(System &sys);

    /**
     * CounterCorrupt hook: with an armed spec firing, scramble one or
     * more fields of @p m (NaN, Inf, sign flip, or a mag-scaled
     * outlier). Returns true when anything was corrupted.
     */
    bool corruptMetrics(Metrics &m);

    /** True while any PredictorGarbage spec is armed. */
    bool predictorGarbageArmed() const;

    /**
     * PredictorGarbage hook: scramble elements of a predicted ratio
     * vector. Returns the number of elements corrupted.
     */
    std::size_t corruptPredictions(std::vector<double> &ratios);

    /** True when the plan asks for sweep-cache corruption. */
    bool
    wantsSweepCorruption() const
    {
        return plan_.has(FaultKind::SweepCacheCorrupt);
    }

    /**
     * SweepCacheCorrupt hook: deterministically truncate and scramble
     * the file at @p path (missing files are left alone). Returns
     * true when the file was rewritten.
     */
    bool corruptCsvFile(const std::string &path);

    /** True when the plan asks for checkpoint corruption. */
    bool
    wantsCkptCorruption() const
    {
        return plan_.has(FaultKind::CkptCorrupt);
    }

    /**
     * CkptCorrupt hook: bit-flip or truncate the binary checkpoint at
     * @p path so its checksum can no longer verify (missing files are
     * left alone). Returns true when the file was rewritten.
     */
    bool corruptCheckpointFile(const std::string &path);

    /** Checkpoint the injector's RNG and arming state. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize() (same plan). */
    void deserialize(Deserializer &d);

    /** Times a window fault of @p kind armed / a stochastic one fired. */
    std::uint64_t injected(FaultKind kind) const;

    /** Sum of injected() over all kinds. */
    std::uint64_t injectedTotal() const;

    /** Number of currently armed specs. */
    std::size_t activeCount() const;

  private:
    FaultPlan plan_;
    Rng rng;
    const InstCount *clock = nullptr;
    EventTrace *trace = nullptr;
    std::vector<bool> wasActive;
    std::array<std::uint64_t, numFaultKinds> nInjected{};

    InstCount instNow() const { return clock ? *clock : 0; }

    /** Armed specs of @p kind at the current instruction. */
    template <typename Fn>
    void
    forEachArmed(FaultKind kind, Fn &&fn) const
    {
        const InstCount inst = instNow();
        for (const auto &s : plan_.specs)
            if (s.kind == kind && s.activeAt(inst))
                fn(s);
    }

    /** Replace @p v with one corrupted value (shared helper). */
    double garbleValue(double v, double mag);
};

} // namespace mct

#endif // MCT_SIM_FAULT_INJECTOR_HH
