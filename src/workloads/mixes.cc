#include "workloads/mixes.hh"

#include "common/logging.hh"

namespace mct
{

const std::vector<MixSpec> &
multiProgramMixes()
{
    static const std::vector<MixSpec> mixes = {
        {"mix1", {"lbm", "libquantum", "stream", "ocean"}},
        {"mix2", {"leslie3d", "bwaves", "stream", "ocean"}},
        {"mix3", {"GemsFDTD", "milc", "zeusmp", "bwaves"}},
        {"mix4", {"lbm", "leslie3d", "zeusmp", "GemsFDTD"}},
        {"mix5", {"GemsFDTD", "milc", "bwaves", "libquantum"}},
        {"mix6", {"libquantum", "bwaves", "stream", "ocean"}},
    };
    return mixes;
}

const MixSpec &
mixByName(const std::string &name)
{
    for (const auto &mix : multiProgramMixes()) {
        if (mix.name == name)
            return mix;
    }
    mct_fatal("unknown mix '", name, "'");
}

} // namespace mct
