/**
 * @file
 * Synthetic workload models.
 *
 * The paper drove gem5 with SPEC CPU2006 / SPLASH-2 binaries plus the
 * gups and stream microbenchmarks. We replace the binaries with
 * parameterized generators that reproduce each benchmark's memory
 * character: working-set size, stream/random mix, write fraction,
 * memory intensity, burstiness (Section 5.2: bursts of >= 10M
 * instructions, scaled down here), coarse phase structure (Fig 6) and
 * memory-level parallelism. DESIGN.md documents the substitution.
 */

#ifndef MCT_WORKLOADS_WORKLOAD_HH
#define MCT_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace mct
{

class Serializer;
class Deserializer;

/** One generated operation: gap of plain instructions, then a memory
 *  access. */
struct WorkloadOp
{
    /** Non-memory instructions retiring before the access. */
    std::uint32_t gap = 0;

    /** True for a store. */
    bool isWrite = false;

    /** Byte address of the access (line-aligned by the caller). */
    Addr addr = 0;

    /** True when a load must complete before execution continues
     *  (dependent pointer chase). */
    bool dependent = false;
};

/** Static characteristics the core model needs. */
struct WorkloadTraits
{
    std::string name = "synthetic";

    /** Maximum useful outstanding NVM reads (ROB-limited MLP). */
    unsigned mlp = 16;
};

/**
 * Abstract workload: an infinite, deterministic operation stream.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Static traits. */
    virtual const WorkloadTraits &traits() const = 0;

    /** Produce the next operation. */
    virtual void next(WorkloadOp &op) = 0;

    /** Restart the stream with a new seed. */
    virtual void reset(std::uint64_t seed) = 0;

    /** Offset every generated address (multi-program isolation). */
    virtual void setAddrBase(Addr base) = 0;

    /** Checkpoint the generator's position in its stream. */
    virtual void serialize(Serializer &s) const = 0;

    /** Restore state written by serialize() (same construction). */
    virtual void deserialize(Deserializer &d) = 0;
};

/** One access-pattern regime within a workload. */
struct PatternSpec
{
    /** Fraction of accesses that follow sequential streams. */
    double streamFrac = 0.5;

    /** Number of concurrent sequential streams. */
    unsigned numStreams = 4;

    /** Bytes each stream walks before wrapping. */
    std::uint64_t streamBytes = 64ULL << 20;

    /** Stream advance per access in bytes. */
    std::uint64_t stride = lineBytes;

    /** Working set for the random component. */
    std::uint64_t wsBytes = 64ULL << 20;

    /** Fraction of random accesses confined to a hot subset. */
    double reuseFrac = 0.0;

    /** Size of the hot subset. */
    std::uint64_t hotBytes = 1ULL << 20;

    /** Fraction of memory ops that are stores. */
    double writeFrac = 0.3;

    /** Memory ops per instruction while bursting. */
    double memIntensity = 0.1;

    /** Fraction of each burst period spent bursting. */
    double burstDuty = 1.0;

    /** Instructions per burst period. */
    std::uint64_t burstPeriod = 200 * 1000;

    /** Intensity multiplier outside bursts. */
    double idleScale = 0.1;

    /** Probability that a load is dependency-blocking. */
    double depProb = 0.05;

    /** Read-modify-write mode (gups): each address is read then
     *  written; writeFrac is ignored. */
    bool rmw = false;
};

/** A phase: run the pattern for a fixed number of instructions. */
struct PhaseSpec
{
    InstCount insts = 1000 * 1000;
    PatternSpec pattern;
};

/**
 * The generic generator behind every application model: cycles
 * through its phases forever, producing stream/random accesses with
 * bursty intensity modulation.
 */
class PatternWorkload : public Workload
{
  public:
    PatternWorkload(WorkloadTraits traits, std::vector<PhaseSpec> phases,
                    std::uint64_t seed);

    const WorkloadTraits &traits() const override { return tr; }
    void next(WorkloadOp &op) override;
    void reset(std::uint64_t seed) override;
    void setAddrBase(Addr base) override { addrBase = base; }
    void serialize(Serializer &s) const override;
    void deserialize(Deserializer &d) override;

    /** Index of the phase currently generating (for tests). */
    std::size_t currentPhase() const { return phaseIdx; }

  private:
    WorkloadTraits tr;
    std::vector<PhaseSpec> phases;
    std::uint64_t seed0;
    Rng rng;
    Addr addrBase = 0;

    std::size_t phaseIdx = 0;
    InstCount instInPhase = 0;
    InstCount totalInsts = 0;
    std::vector<std::uint64_t> streamPos;
    bool rmwPending = false;
    Addr rmwAddr = 0;

    void enterPhase(std::size_t idx);
    const PatternSpec &pat() const { return phases[phaseIdx].pattern; }
    Addr genAddr();
};

/** Construct one of the named application models (fatal if unknown). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       std::uint64_t seed);

/** The 10 evaluated applications, in the paper's order. */
const std::vector<std::string> &workloadNames();

/** The SPEC-only subset used in some experiments. */
bool isWorkloadName(const std::string &name);

} // namespace mct

#endif // MCT_WORKLOADS_WORKLOAD_HH
