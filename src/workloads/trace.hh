/**
 * @file
 * Trace-replay workload: drives the simulated system from a recorded
 * memory-access trace instead of a synthetic model. This is the
 * adoption path for downstream users who have traces of their own
 * applications (e.g. from a PIN/DynamoRIO tool or another simulator).
 *
 * Trace format (text, one record per line, '#' comments allowed):
 *
 *     <gap> <R|W> <hex-or-dec address> [D]
 *
 * gap     non-memory instructions retiring before this access
 * R/W     load or store
 * address byte address (0x-prefixed hex or decimal)
 * D       optional: the load is dependency-blocking
 *
 * The trace loops when exhausted (the paper's cyclic-execution
 * lifetime assumption). Traces can also be captured from any
 * Workload via captureTrace(), making the format self-hosting.
 */

#ifndef MCT_WORKLOADS_TRACE_HH
#define MCT_WORKLOADS_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workloads/workload.hh"

namespace mct
{

/**
 * Replays a fixed operation sequence, looping forever.
 */
class TraceWorkload : public Workload
{
  public:
    /**
     * @param name Reported trait name.
     * @param ops The recorded operations (at least one).
     * @param mlp Memory-level-parallelism bound for the core model.
     */
    TraceWorkload(std::string name, std::vector<WorkloadOp> ops,
                  unsigned mlp = 16);

    /** Parse a trace stream (fatal on malformed records). */
    static std::vector<WorkloadOp> parse(std::istream &in);

    /** Load a trace file (fatal if unreadable). */
    static std::unique_ptr<TraceWorkload> fromFile(
        const std::string &path, unsigned mlp = 16);

    /** Serialize operations in the trace format. */
    static void write(std::ostream &out,
                      const std::vector<WorkloadOp> &ops);

    const WorkloadTraits &traits() const override { return tr; }
    void next(WorkloadOp &op) override;
    void reset(std::uint64_t seed) override;
    void setAddrBase(Addr base) override { addrBase = base; }
    void serialize(Serializer &s) const override;
    void deserialize(Deserializer &d) override;

    /** Number of recorded operations. */
    std::size_t size() const { return ops.size(); }

    /** Times the trace has wrapped around. */
    std::uint64_t loops() const { return nLoops; }

  private:
    WorkloadTraits tr;
    std::vector<WorkloadOp> ops;
    Addr addrBase = 0;
    std::size_t cursor = 0;
    std::uint64_t nLoops = 0;
};

/**
 * Record @p count operations from any workload into trace form
 * (useful to snapshot a synthetic model or convert formats).
 */
std::vector<WorkloadOp> captureTrace(Workload &source,
                                     std::size_t count);

} // namespace mct

#endif // MCT_WORKLOADS_TRACE_HH
