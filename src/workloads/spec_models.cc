/**
 * @file
 * The ten evaluated application models (paper Section 6.1): seven
 * memory-intensive SPEC CPU2006 benchmarks, ocean from SPLASH-2, and
 * the gups / stream microbenchmarks.
 *
 * Parameter choices are synthetic but shaped by each benchmark's
 * published memory character (Jaleel's SPEC CPU2006 memory workload
 * characterization; the Mellow Writes evaluation): working-set sizes
 * far above the 2 MB LLC for the memory-bound codes, stream-dominated
 * access for lbm/libquantum/bwaves/stream, stencil-like many-stream
 * patterns for leslie3d/GemsFDTD, random-dominant behavior for
 * milc/gups, a mostly cache-resident set for zeusmp, and strongly
 * phased behavior for ocean (Fig 6 drives its phase detector demo).
 */

#include <functional>
#include <map>

#include "common/logging.hh"
#include "workloads/workload.hh"

namespace mct
{

namespace
{

using Maker = std::function<std::unique_ptr<Workload>(std::uint64_t)>;

std::unique_ptr<Workload>
makePattern(const std::string &name, unsigned mlp,
            std::vector<PhaseSpec> phases, std::uint64_t seed)
{
    WorkloadTraits tr;
    tr.name = name;
    tr.mlp = mlp;
    return std::make_unique<PatternWorkload>(tr, std::move(phases), seed);
}

/** lbm: lattice-Boltzmann; stream-dominated, exceptionally
 *  write-heavy, strongly bursty, large working set. */
std::unique_ptr<Workload>
makeLbm(std::uint64_t seed)
{
    PatternSpec pt;
    pt.streamFrac = 0.90;
    pt.numStreams = 6;
    pt.streamBytes = 48ULL << 20;
    pt.stride = 8;
    pt.wsBytes = 320ULL << 20;
    pt.writeFrac = 0.45;
    pt.memIntensity = 0.30;
    pt.burstDuty = 0.60;
    pt.burstPeriod = 160 * 1000;
    pt.idleScale = 0.15;
    pt.depProb = 0.04;
    return makePattern("lbm", 12, {{4 * 1000 * 1000, pt}}, seed);
}

/** leslie3d: stencil computation with many concurrent streams. */
std::unique_ptr<Workload>
makeLeslie3d(std::uint64_t seed)
{
    PatternSpec pt;
    pt.streamFrac = 0.72;
    pt.numStreams = 12;
    pt.streamBytes = 10ULL << 20;
    pt.stride = 8;
    pt.wsBytes = 128ULL << 20;
    pt.writeFrac = 0.30;
    pt.memIntensity = 0.22;
    pt.burstDuty = 0.75;
    pt.burstPeriod = 220 * 1000;
    pt.idleScale = 0.25;
    pt.depProb = 0.08;
    return makePattern("leslie3d", 10, {{4 * 1000 * 1000, pt}}, seed);
}

/** zeusmp: computational fluid dynamics; the working set largely
 *  fits in the LLC, so NVM traffic is light (the one application the
 *  paper's default configuration satisfies at 8 years). */
std::unique_ptr<Workload>
makeZeusmp(std::uint64_t seed)
{
    PatternSpec pt;
    pt.streamFrac = 0.30;
    pt.numStreams = 4;
    pt.streamBytes = 512ULL << 10;
    pt.stride = 8;
    pt.wsBytes = 4ULL << 20;
    pt.reuseFrac = 0.93;
    pt.hotBytes = 1200ULL << 10;
    pt.writeFrac = 0.25;
    pt.memIntensity = 0.16;
    pt.burstDuty = 0.85;
    pt.burstPeriod = 250 * 1000;
    pt.idleScale = 0.4;
    pt.depProb = 0.05;
    return makePattern("zeusmp", 10, {{4 * 1000 * 1000, pt}}, seed);
}

/** GemsFDTD: finite-difference time domain; long strided sweeps with
 *  alternating read-heavy and update-heavy phases. */
std::unique_ptr<Workload>
makeGems(std::uint64_t seed)
{
    PatternSpec sweep;
    sweep.streamFrac = 0.85;
    sweep.numStreams = 10;
    sweep.streamBytes = 20ULL << 20;
    sweep.stride = 24;
    sweep.wsBytes = 200ULL << 20;
    sweep.writeFrac = 0.18;
    sweep.memIntensity = 0.20;
    sweep.burstDuty = 0.7;
    sweep.burstPeriod = 200 * 1000;
    sweep.idleScale = 0.2;
    sweep.depProb = 0.06;

    PatternSpec update = sweep;
    update.writeFrac = 0.40;
    update.memIntensity = 0.16;

    return makePattern("GemsFDTD", 12,
                       {{900 * 1000, sweep}, {600 * 1000, update}}, seed);
}

/** milc: lattice QCD; random-dominant over a large working set. */
std::unique_ptr<Workload>
makeMilc(std::uint64_t seed)
{
    PatternSpec pt;
    pt.streamFrac = 0.30;
    pt.numStreams = 4;
    pt.streamBytes = 16ULL << 20;
    pt.stride = 16;
    pt.wsBytes = 160ULL << 20;
    pt.writeFrac = 0.33;
    pt.memIntensity = 0.14;
    pt.burstDuty = 0.65;
    pt.burstPeriod = 180 * 1000;
    pt.idleScale = 0.2;
    pt.depProb = 0.15;
    return makePattern("milc", 8, {{4 * 1000 * 1000, pt}}, seed);
}

/** bwaves: blast-wave solver; many wide read streams, few writes. */
std::unique_ptr<Workload>
makeBwaves(std::uint64_t seed)
{
    PatternSpec pt;
    pt.streamFrac = 0.92;
    pt.numStreams = 8;
    pt.streamBytes = 24ULL << 20;
    pt.stride = 8;
    pt.wsBytes = 192ULL << 20;
    pt.writeFrac = 0.16;
    pt.memIntensity = 0.24;
    pt.burstDuty = 0.8;
    pt.burstPeriod = 240 * 1000;
    pt.idleScale = 0.3;
    pt.depProb = 0.05;
    return makePattern("bwaves", 16, {{4 * 1000 * 1000, pt}}, seed);
}

/** libquantum: quantum simulation; a single long stream swept again
 *  and again with strong bursts. */
std::unique_ptr<Workload>
makeLibquantum(std::uint64_t seed)
{
    PatternSpec pt;
    pt.streamFrac = 0.97;
    pt.numStreams = 2;
    pt.streamBytes = 32ULL << 20;
    pt.stride = 16;
    pt.wsBytes = 64ULL << 20;
    pt.writeFrac = 0.28;
    pt.memIntensity = 0.30;
    pt.burstDuty = 0.55;
    pt.burstPeriod = 150 * 1000;
    pt.idleScale = 0.12;
    pt.depProb = 0.02;
    return makePattern("libquantum", 16, {{4 * 1000 * 1000, pt}}, seed);
}

/** ocean (SPLASH-2): strongly phased multigrid solver. The phases
 *  exercise the coarse-grained phase detector (Fig 6). */
std::unique_ptr<Workload>
makeOcean(std::uint64_t seed)
{
    // Phase lengths and intra-phase burstiness are scaled so the
    // coarse phase steps dominate window-level noise, as in the
    // paper's Fig 6 (their windows averaged 1M instructions against
    // >= 10M-instruction bursts; ours keep the same separation).
    PatternSpec relax;          // stencil relaxation: stream heavy
    relax.streamFrac = 0.85;
    relax.numStreams = 8;
    relax.streamBytes = 12ULL << 20;
    relax.stride = 8;
    relax.wsBytes = 96ULL << 20;
    relax.writeFrac = 0.34;
    relax.memIntensity = 0.26;
    relax.burstDuty = 1.0;
    relax.burstPeriod = 120 * 1000;
    relax.idleScale = 0.35;
    relax.depProb = 0.05;

    PatternSpec compute = relax; // mostly in-cache compute phase
    compute.streamFrac = 0.3;
    compute.wsBytes = 3ULL << 20;
    compute.reuseFrac = 0.92;
    compute.hotBytes = 1ULL << 20;
    compute.memIntensity = 0.08;
    compute.writeFrac = 0.2;

    PatternSpec exchange = relax; // boundary exchange: write heavy
    exchange.streamFrac = 0.6;
    exchange.writeFrac = 0.55;
    exchange.memIntensity = 0.24;

    return makePattern("ocean", 12,
                       {{1200 * 1000, relax},
                        {800 * 1000, compute},
                        {600 * 1000, exchange},
                        {700 * 1000, compute}},
                       seed);
}

/** gups: random read-modify-write over a huge table; dependent loads
 *  keep the memory-level parallelism minimal. */
std::unique_ptr<Workload>
makeGups(std::uint64_t seed)
{
    PatternSpec pt;
    pt.streamFrac = 0.0;
    pt.numStreams = 0;
    pt.wsBytes = 1ULL << 30;
    pt.writeFrac = 0.5; // ignored: rmw
    pt.memIntensity = 0.12;
    pt.burstDuty = 1.0;
    pt.burstPeriod = 200 * 1000;
    pt.depProb = 1.0;
    pt.rmw = true;
    return makePattern("gups", 4, {{4 * 1000 * 1000, pt}}, seed);
}

/** stream: the McCalpin triad; pure streaming at maximal intensity
 *  with one write stream per two read streams. */
std::unique_ptr<Workload>
makeStream(std::uint64_t seed)
{
    PatternSpec pt;
    pt.streamFrac = 1.0;
    pt.numStreams = 3;
    pt.streamBytes = 128ULL << 20;
    pt.stride = 8;
    pt.wsBytes = 384ULL << 20;
    pt.writeFrac = 0.34;
    pt.memIntensity = 0.34;
    pt.burstDuty = 1.0;
    pt.burstPeriod = 200 * 1000;
    pt.depProb = 0.0;
    return makePattern("stream", 24, {{4 * 1000 * 1000, pt}}, seed);
}

const std::map<std::string, Maker> &
registry()
{
    static const std::map<std::string, Maker> reg = {
        {"lbm", makeLbm},
        {"leslie3d", makeLeslie3d},
        {"zeusmp", makeZeusmp},
        {"GemsFDTD", makeGems},
        {"milc", makeMilc},
        {"bwaves", makeBwaves},
        {"libquantum", makeLibquantum},
        {"ocean", makeOcean},
        {"gups", makeGups},
        {"stream", makeStream},
    };
    return reg;
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, std::uint64_t seed)
{
    const auto &reg = registry();
    const auto it = reg.find(name);
    if (it == reg.end())
        mct_fatal("unknown workload '", name, "'");
    return it->second(seed);
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "lbm", "leslie3d", "zeusmp", "GemsFDTD", "milc",
        "bwaves", "libquantum", "ocean", "gups", "stream",
    };
    return names;
}

bool
isWorkloadName(const std::string &name)
{
    return registry().count(name) > 0;
}

} // namespace mct
