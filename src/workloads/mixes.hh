/**
 * @file
 * The six multi-program workloads of Table 11.
 */

#ifndef MCT_WORKLOADS_MIXES_HH
#define MCT_WORKLOADS_MIXES_HH

#include <string>
#include <vector>

namespace mct
{

/** A named 4-program mix. */
struct MixSpec
{
    std::string name;
    std::vector<std::string> apps;
};

/** Table 11: mix1..mix6. */
const std::vector<MixSpec> &multiProgramMixes();

/** Look up a mix by name (fatal if unknown). */
const MixSpec &mixByName(const std::string &name);

} // namespace mct

#endif // MCT_WORKLOADS_MIXES_HH
