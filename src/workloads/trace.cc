#include "workloads/trace.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

TraceWorkload::TraceWorkload(std::string name,
                             std::vector<WorkloadOp> operations,
                             unsigned mlp)
    : ops(std::move(operations))
{
    if (ops.empty())
        mct_fatal("TraceWorkload '", name, "': empty trace");
    tr.name = std::move(name);
    tr.mlp = mlp;
}

std::vector<WorkloadOp>
TraceWorkload::parse(std::istream &in)
{
    std::vector<WorkloadOp> out;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::uint64_t gap;
        std::string rw, addrTok, depTok;
        if (!(ls >> gap))
            continue; // blank line
        if (!(ls >> rw >> addrTok))
            mct_fatal("trace line ", lineNo, ": expected <gap> <R|W> "
                      "<addr>");
        WorkloadOp op;
        op.gap = static_cast<std::uint32_t>(gap);
        if (rw == "R" || rw == "r")
            op.isWrite = false;
        else if (rw == "W" || rw == "w")
            op.isWrite = true;
        else
            mct_fatal("trace line ", lineNo, ": op must be R or W");
        op.addr = static_cast<Addr>(
            std::stoull(addrTok, nullptr, 0));
        if (ls >> depTok) {
            if (depTok == "D" || depTok == "d")
                op.dependent = !op.isWrite;
            else
                mct_fatal("trace line ", lineNo,
                          ": trailing token must be D");
        }
        out.push_back(op);
    }
    return out;
}

std::unique_ptr<TraceWorkload>
TraceWorkload::fromFile(const std::string &path, unsigned mlp)
{
    std::ifstream in(path);
    if (!in)
        mct_fatal("cannot open trace file '", path, "'");
    auto ops = parse(in);
    if (ops.empty())
        mct_fatal("trace file '", path, "' contains no operations");
    return std::make_unique<TraceWorkload>(path, std::move(ops), mlp);
}

void
TraceWorkload::write(std::ostream &out,
                     const std::vector<WorkloadOp> &ops)
{
    out << "# gap R|W address [D]\n";
    for (const auto &op : ops) {
        out << op.gap << ' ' << (op.isWrite ? 'W' : 'R') << " 0x"
            << std::hex << op.addr << std::dec;
        if (op.dependent && !op.isWrite)
            out << " D";
        out << '\n';
    }
}

void
TraceWorkload::next(WorkloadOp &op)
{
    op = ops[cursor];
    op.addr += addrBase;
    if (++cursor == ops.size()) {
        cursor = 0;
        ++nLoops;
    }
}

void
TraceWorkload::reset(std::uint64_t)
{
    cursor = 0;
    nLoops = 0;
}

void
TraceWorkload::serialize(Serializer &s) const
{
    s.putU64(ops.size());
    s.putU64(addrBase);
    s.putU64(cursor);
    s.putU64(nLoops);
}

void
TraceWorkload::deserialize(Deserializer &d)
{
    // The operations themselves are reloaded from the trace file; the
    // count guards against replaying against a different trace.
    if (d.getU64() != ops.size())
        mct_panic("checkpoint trace length mismatch");
    addrBase = d.getU64();
    cursor = d.getU64();
    if (cursor >= ops.size())
        mct_panic("checkpoint trace cursor out of range");
    nLoops = d.getU64();
}

std::vector<WorkloadOp>
captureTrace(Workload &source, std::size_t count)
{
    std::vector<WorkloadOp> out;
    out.reserve(count);
    WorkloadOp op;
    for (std::size_t i = 0; i < count; ++i) {
        source.next(op);
        out.push_back(op);
    }
    return out;
}

} // namespace mct
